(* asim — the ASIM II reproduction's command-line front end.

   Subcommands: check, run, codegen, pipeline, netlist, gates, profile,
   coverage, asm, wavediff, fuzz, batch, bench, serve, fmt, example. *)

open Cmdliner
module Obs_clock = Asim_obs.Clock
module Obs_tracer = Asim_obs.Tracer

let load path =
  try Ok (Asim.load_file path) with
  | Asim.Error.Error e -> Error (Asim.Error.to_string e)
  | Sys_error msg -> Error msg

let write_text_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let or_die = function
  | Ok v -> v
  | Error msg ->
      prerr_endline ("asim: " ^ msg);
      exit 1

let print_warnings (analysis : Asim.Analysis.t) =
  List.iter
    (fun w -> prerr_endline (Asim.Error.warning_to_string w))
    analysis.Asim.Analysis.warnings

(* --- common arguments ---------------------------------------------------- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SPEC" ~doc:"Specification file.")

let cycles_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "n"; "cycles" ] ~docv:"N"
        ~doc:"Number of cycles to simulate (default: the spec's = directive).")

let engine_arg_with default =
  let engine_conv =
    Arg.conv
      ( (fun s ->
          match Asim.engine_of_string s with
          | Some e -> Ok e
          | None -> Error (`Msg ("unknown engine " ^ s))),
        fun ppf e -> Format.pp_print_string ppf (Asim.engine_to_string e) )
  in
  Arg.(
    value
    & opt engine_conv default
    & info [ "e"; "engine" ] ~docv:"ENGINE"
        ~doc:
          "Simulation engine: $(b,interp) (the ASIM baseline), $(b,compiled) \
           (ASIM II), $(b,flat) (int-coded flat kernel with activity-driven \
           scheduling), $(b,native) (spec compiled to an OCaml module by \
           the host toolchain and Dynlinked in; needs ocamlfind/ocamlopt on \
           PATH), $(b,tiered) (starts on $(b,flat), compiles in a \
           background domain and hot-swaps to $(b,native) at a cycle \
           boundary; runs entirely on $(b,flat) when no toolchain answers) \
           or $(b,par) (the flat kernel partitioned across domains and run \
           bulk-synchronously; see $(b,--domains)).")

let engine_arg = engine_arg_with Asim.Compiled

let opt_level_conv =
  Arg.conv
    ( (fun s ->
        match Asim.Opt.level_of_string s with
        | Some l -> Ok l
        | None -> Error (`Msg ("unknown opt level " ^ s ^ " (expected 0, 1 or 2)"))),
      fun ppf l -> Format.pp_print_string ppf (Asim.Opt.level_to_string l) )

let opt_arg =
  Arg.(
    value
    & opt (some opt_level_conv) None
    & info [ "O"; "opt-level" ] ~docv:"LEVEL"
        ~doc:
          "Middle-end optimization level for the shared codegen IR \
           (docs/optimizer.md): $(b,0) disables it, $(b,1) runs constant \
           propagation, atom fusion and width narrowing, $(b,2) adds \
           common-subexpression elimination, dead-component elimination and \
           cost-driven scheduling.  Defaults to $(b,ASIM_OPT) when set, \
           else 2.  Every engine consumes the optimized spec; observables \
           (traces, I/O, memory images, statistics, faults, errors) are \
           preserved at every level.")

(* The env default is resolved per command so junk in ASIM_OPT only fails
   commands that consult it. *)
let resolve_opt = function
  | Some l -> l
  | None -> (
      match Asim.Opt.env_level () with
      | l -> l
      | exception Asim.Error.Error e ->
          prerr_endline ("asim: " ^ Asim.Error.to_string e);
          exit 2)

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON of pipeline and runtime spans to \
           FILE — load it in Perfetto (ui.perfetto.dev) or chrome://tracing.  \
           See docs/observability.md.")

(* Build the tracer for a --trace-out flag; [None] costs nothing. *)
let tracer_for = function
  | None -> Obs_tracer.null
  | Some _ -> Obs_tracer.create ()

let write_trace trace_out tracer =
  match trace_out with None -> () | Some path -> Obs_tracer.write tracer path

(* --- check ---------------------------------------------------------------- *)

let check_cmd =
  let run path =
    let analysis = or_die (load path) in
    print_warnings analysis;
    let spec = analysis.Asim.Analysis.spec in
    Printf.printf "%d components read.\n" (List.length spec.Asim.Spec.components);
    Printf.printf "combinational order: %s\n"
      (String.concat " "
         (List.map
            (fun (c : Asim.Component.t) -> c.name)
            analysis.Asim.Analysis.order));
    let widths = Asim.Width.infer spec in
    List.iter
      (fun (c : Asim.Component.t) ->
        Printf.printf "  %c %-14s %2d bits\n" (Asim.Component.kind_letter c) c.name
          (try List.assoc c.name widths with Not_found -> 31))
      spec.Asim.Spec.components;
    List.iter
      (fun lint -> print_endline (Asim.Analysis.lint_to_string lint))
      (Asim.Analysis.lints analysis)
  in
  Cmd.v (Cmd.info "check" ~doc:"Parse, analyze and report on a specification.")
    Term.(const run $ file_arg)

(* --- run ------------------------------------------------------------------ *)

let fault_conv =
  (* component=stuck@V[:FROM[-TO]] or component=flip@BIT[:FROM[-TO]] *)
  let parse s =
    let fail () =
      Error
        (`Msg
          (Printf.sprintf
             "bad fault %S (expected comp=stuck@V[:FROM[-TO]] or comp=flip@BIT[:FROM[-TO]])"
             s))
    in
    match String.index_opt s '=' with
    | None -> fail ()
    | Some eq -> (
        let component = String.sub s 0 eq in
        let rest = String.sub s (eq + 1) (String.length s - eq - 1) in
        let spec, window =
          match String.index_opt rest ':' with
          | None -> (rest, None)
          | Some c ->
              ( String.sub rest 0 c,
                Some (String.sub rest (c + 1) (String.length rest - c - 1)) )
        in
        let first_cycle, last_cycle =
          match window with
          | None -> (0, None)
          | Some w -> (
              match String.index_opt w '-' with
              | None -> (int_of_string w, None)
              | Some d ->
                  ( int_of_string (String.sub w 0 d),
                    Some (int_of_string (String.sub w (d + 1) (String.length w - d - 1)))
                  ))
        in
        match String.index_opt spec '@' with
        | None -> fail ()
        | Some at -> (
            let kind = String.sub spec 0 at in
            let value = int_of_string (String.sub spec (at + 1) (String.length spec - at - 1)) in
            match kind with
            | "stuck" ->
                Ok (Asim.Fault.stuck_at ~first_cycle ?last_cycle component value)
            | "flip" ->
                Ok (Asim.Fault.flip_bit ~first_cycle ?last_cycle component value)
            | _ -> fail ()))
  in
  let parse s = try parse s with Failure _ -> Error (`Msg ("bad fault " ^ s)) in
  Arg.conv (parse, fun ppf (f : Asim.Fault.fault) -> Format.pp_print_string ppf f.component)

(* --par-profile accepts either shape a profile travels in: the `asim
   profile --json` document itself, or an `asim run --stats-json` file with
   the profile embedded under "profile".  Memory rows are dropped — the
   partitioner balances combinational work only. *)
let par_costs_of_file path =
  let json =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          Asim_batch.Json.parse (really_input_string ic (in_channel_length ic)))
    with
    | Sys_error msg ->
        prerr_endline ("asim: --par-profile: " ^ msg);
        exit 2
    | Failure msg ->
        prerr_endline ("asim: --par-profile: " ^ path ^ ": " ^ msg);
        exit 2
  in
  let open Asim_batch.Json in
  let doc = match member "profile" json with Some p -> p | None -> json in
  match Option.bind (member "components" doc) to_list with
  | None ->
      prerr_endline
        ("asim: --par-profile: " ^ path
       ^ ": no \"components\" list (expected `asim profile --json` or `asim \
          run --profile --stats-json` output)");
      exit 2
  | Some rows ->
      List.filter_map
        (fun row ->
          match
            ( Option.bind (member "name" row) to_string_opt,
              Option.bind (member "kind" row) to_string_opt,
              Option.bind (member "cost" row) to_int )
          with
          | Some _, Some "M", _ -> None
          | Some name, _, Some cost -> Some (name, float_of_int cost)
          | _ -> None)
        rows

let run_cmd =
  let run path engine cycles stats quiet vcd faults interactive trace_out stats_json
      profile domains par_profile opt =
    let tracer = tracer_for trace_out in
    (* Stage timings come from {!Asim_obs.Clock} so --stats-json is
       deterministic under a mock clock; the same boundaries become
       pipeline.* spans when --trace-out is on. *)
    let timed name f =
      let t0 = Obs_clock.now () in
      match Obs_tracer.span tracer name f with
      | v -> (v, Obs_clock.now () -. t0)
      | exception Asim.Error.Error e ->
          write_trace trace_out tracer;
          prerr_endline ("asim: " ^ Asim.Error.to_string e);
          exit 1
      | exception Sys_error msg ->
          write_trace trace_out tracer;
          prerr_endline ("asim: " ^ msg);
          exit 1
    in
    let spec, parse_s = timed "pipeline.parse" (fun () -> Asim.Parser.parse_file path) in
    let analysis, analyze_s =
      timed "pipeline.analyze" (fun () -> Asim.Analysis.analyze spec)
    in
    print_warnings analysis;
    (* One middle-end run covers every engine below, including the tiered
       engine's direct [create_status] path; fault targets stay live. *)
    let level = resolve_opt opt in
    let analysis, optimize_s =
      match level with
      | Asim.Opt.O0 -> (analysis, 0.0)
      | _ ->
          timed "pipeline.optimize" (fun () ->
              Asim.Opt.run ~level ~keep:(Asim.Fault.targets faults) analysis)
    in
    let trace = if quiet then Asim.Trace.null_sink else Asim.Trace.channel_sink stdout in
    let config = { Asim.Machine.default_config with trace; faults } in
    let prof = if profile then Some (Asim.Prof.create analysis) else None in
    let par_costs = Option.map par_costs_of_file par_profile in
    let (machine, tiered_status), build_s =
      (* The tiered engine is built through [create_status] so --stats-json
         can record how the swap resolved (swapped/pending/unavailable/...). *)
      timed "pipeline.build" (fun () ->
          match engine with
          | Asim.TieredEngine ->
              let m, status =
                Asim.Tiered.create_status ~config ~tracer ?prof analysis
              in
              (m, Some status)
          | _ ->
              ( Asim.machine ~config ~engine ~tracer ?prof ?domains
                  ?par_costs analysis,
                None ))
    in
    let cycles =
      match cycles with Some n -> n | None -> Asim.Machine.spec_cycles machine ~default:0
    in
    let run_t0 = Obs_clock.now () in
    (try
       match vcd with
       | Some path ->
           Obs_tracer.span tracer "pipeline.simulate" (fun () ->
               Asim.Vcd.record_to_file machine ~cycles ~path)
       | None ->
           if interactive then begin
             (* The original's dialogue (Appendix A): ask for the cycle
                count when none is given, then keep offering to continue to
                an absolute cycle number; 0 quits. *)
             let read_int () = try Scanf.scanf " %d" (fun d -> d) with _ -> 0 in
             let target = ref cycles in
             if !target = 0 then begin
               print_endline "Number of cycles to trace";
               target := read_int ()
             end;
             let continue = ref true in
             while !continue && !target > 0 do
               let done_so_far = machine.Asim.Machine.current_cycle () in
               if !target > done_so_far then
                 Asim.Machine.run machine ~cycles:(!target - done_so_far);
               print_endline "Continue to cycle (0 to quit)";
               target := read_int ();
               if !target <= machine.Asim.Machine.current_cycle () then
                 continue := false
             done
           end
           else if Obs_tracer.is_active tracer then begin
             (* Chunked so the trace shows simulation progress over time
                rather than one opaque block. *)
             let chunk = 1000 in
             let rec go done_ =
               if done_ < cycles then begin
                 let n = min chunk (cycles - done_) in
                 Obs_tracer.span tracer "pipeline.simulate"
                   ~args:
                     [
                       ("start_cycle", string_of_int done_);
                       ("cycles", string_of_int n);
                     ]
                   (fun () -> Asim.Machine.run machine ~cycles:n);
                 go (done_ + n)
               end
             in
             go 0
           end
           else Asim.Machine.run machine ~cycles
     with Asim.Error.Error e ->
       write_trace trace_out tracer;
       prerr_endline ("asim: " ^ Asim.Error.to_string e);
       exit 1);
    let run_s = Obs_clock.now () -. run_t0 in
    if stats then print_endline (Asim.Stats.to_string machine.Asim.Machine.stats);
    let prof_source =
      match prof with
      | None -> None
      | Some _ -> (
          try
            let ic = open_in_bin path in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> Some (really_input_string ic (in_channel_length ic)))
          with Sys_error _ -> None)
    in
    (match prof with
    | None -> ()
    | Some p ->
        Asim.Prof.finalize p;
        Asim.Prof.emit_spans p tracer;
        print_string (Asim.Prof.report ?source:prof_source p));
    (match stats_json with
    | None -> ()
    | Some out ->
        let open Asim_batch.Json in
        let json =
          Obj
            [
              ("spec", String path);
              ("engine", String (Asim.engine_to_string engine));
              ("cycles", Int (machine.Asim.Machine.current_cycle ()));
              ("stats", Asim_batch.Runner.stats_to_json machine.Asim.Machine.stats);
              ( "timings",
                Obj
                  [
                    ("parse_s", Float parse_s);
                    ("analyze_s", Float analyze_s);
                    ("optimize_s", Float optimize_s);
                    ("build_s", Float build_s);
                    ("run_s", Float run_s);
                  ] );
            ]
        in
        let json =
          match (json, prof) with
          | Obj fields, Some p ->
              Obj
                (fields
                @ [
                    ( "profile",
                      Asim_batch.Runner.prof_to_json ?source:prof_source p );
                  ])
          | _ -> json
        in
        let json =
          match (json, tiered_status) with
          | Obj fields, Some status ->
              let s = status () in
              Obj
                (fields
                @ [
                    ( "swap",
                      String (Asim.Tiered.swap_state_to_string s.Asim.Tiered.state)
                    );
                    ( "swap_cycle",
                      match s.Asim.Tiered.state with
                      | Asim.Tiered.Swapped c -> Int c
                      | _ -> Null );
                    ("executing_engine", String s.Asim.Tiered.engine);
                  ])
          | _ -> json
        in
        write_text_file out (to_string json ^ "\n"));
    write_trace trace_out tracer
  in
  let stats_arg =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print cycle and memory-access statistics.")
  in
  let stats_json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:
            "Write machine statistics, cycle count and per-stage wall-clock \
             timings to FILE as JSON.")
  in
  let quiet_arg = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress trace output.") in
  let vcd_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "vcd" ] ~docv:"FILE" ~doc:"Record traced components to a VCD waveform file.")
  in
  let faults_arg =
    Arg.(
      value
      & opt_all fault_conv []
      & info [ "fault" ] ~docv:"FAULT"
          ~doc:
            "Inject a fault, e.g. $(b,alu=stuck@0:100-200) or $(b,count=flip@3).  Repeatable.")
  in
  let interactive_arg =
    Arg.(
      value & flag
      & info [ "i"; "interactive" ]
          ~doc:
            "The original's dialogue: prompt for the cycle count and offer to \
             continue to further cycles.")
  in
  let profile_arg =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Attach per-component performance counters to the simulated \
             machine and print the profile report after the run (also \
             embedded in $(b,--stats-json) output).  Unsupported on the \
             $(b,native) engine; pins $(b,tiered) to the flat kernel.")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Partition count for the $(b,par) engine (default: \
             ASIM_PAR_DOMAINS, else the machine's core count, capped at 8).  \
             Behavior is identical at every count — only the schedule \
             changes.  Other engines ignore this.")
  in
  let par_profile_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "par-profile" ] ~docv:"FILE"
          ~doc:
            "Feed a measured cost model to the $(b,par) engine's \
             partitioner: FILE is $(b,asim profile --json) output (or an \
             $(b,asim run --profile --stats-json) file) from an earlier run \
             of the same spec.  Components the profile does not cover fall \
             back to static flat-program word counts.  Other engines ignore \
             this.")
  in
  Cmd.v (Cmd.info "run" ~doc:"Simulate a specification.")
    Term.(
      const run $ file_arg $ engine_arg $ cycles_arg $ stats_arg $ quiet_arg $ vcd_arg
      $ faults_arg $ interactive_arg $ trace_out_arg $ stats_json_arg $ profile_arg
      $ domains_arg $ par_profile_arg $ opt_arg)

(* --- codegen --------------------------------------------------------------- *)

let lang_arg =
  let lang_conv =
    Arg.conv
      ( (fun s ->
          match Asim_codegen.Codegen.lang_of_string s with
          | Some l -> Ok l
          | None -> Error (`Msg ("unknown language " ^ s))),
        fun ppf l ->
          Format.pp_print_string ppf (Asim_codegen.Codegen.lang_to_string l) )
  in
  Arg.(
    value
    & opt lang_conv Asim_codegen.Codegen.Pascal
    & info [ "l"; "lang" ] ~docv:"LANG"
        ~doc:"Target language: $(b,pascal) (the original's), $(b,ocaml) or $(b,c).")

let codegen_cmd =
  let run path lang output =
    let analysis = or_die (load path) in
    print_warnings analysis;
    let code = Asim_codegen.Codegen.generate lang analysis in
    match output with
    | None -> print_string code
    | Some path ->
        let oc = open_out path in
        output_string oc code;
        close_out oc
  in
  let output_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout.")
  in
  Cmd.v
    (Cmd.info "codegen"
       ~doc:"Compile a specification to simulator source code (the ASIM II pipeline).")
    Term.(const run $ file_arg $ lang_arg $ output_arg)

(* --- pipeline --------------------------------------------------------------- *)

let pipeline_cmd =
  let run path lang cycles show_output trace_out =
    let analysis = or_die (load path) in
    let lang =
      match lang with
      | Asim_codegen.Codegen.Pascal ->
          prerr_endline "asim: no Pascal compiler here; using the OCaml backend";
          Asim_codegen.Codegen.Ocaml
      | l -> l
    in
    let tracer = tracer_for trace_out in
    let result = Asim_codegen.Pipeline.run ?cycles ~tracer ~lang analysis in
    write_trace trace_out tracer;
    match result with
    | Error msg ->
        prerr_endline ("asim: " ^ msg);
        exit 1
    | Ok r ->
        Printf.printf "Generate code    %8.3f s\n" r.timings.generate_s;
        Printf.printf "Compile          %8.3f s\n" r.timings.compile_s;
        Printf.printf "Simulation time  %8.3f s\n" r.timings.run_s;
        Printf.printf "(source: %s)\n" r.source_path;
        if show_output then print_string r.output
  in
  let show_output_arg =
    Arg.(value & flag & info [ "show-output" ] ~doc:"Echo the generated simulator's stdout.")
  in
  Cmd.v
    (Cmd.info "pipeline"
       ~doc:"Generate, compile and execute a simulator binary; report stage timings.")
    Term.(const run $ file_arg $ lang_arg $ cycles_arg $ show_output_arg $ trace_out_arg)

(* --- netlist ---------------------------------------------------------------- *)

let netlist_cmd =
  let run path format =
    let analysis = or_die (load path) in
    let net = Asim_netlist.Synth.synthesize analysis.Asim.Analysis.spec in
    let text =
      match format with
      | "bom" -> Asim_netlist.Synth.bom_to_string net
      | "wiring" -> Asim_netlist.Synth.wiring_to_string net
      | "instances" -> Asim_netlist.Synth.instances_to_string net
      | "dot" -> Asim_netlist.Synth.to_dot net
      | other ->
          prerr_endline ("asim: unknown netlist format " ^ other);
          exit 1
    in
    print_endline text
  in
  let format_arg =
    Arg.(
      value
      & opt string "bom"
      & info [ "f"; "format" ] ~docv:"FORMAT"
          ~doc:"Output: $(b,bom), $(b,instances), $(b,wiring) or $(b,dot).")
  in
  Cmd.v
    (Cmd.info "netlist"
       ~doc:"Map a specification onto catalog hardware (Appendix F's construction aid).")
    Term.(const run $ file_arg $ format_arg)

(* --- asm --------------------------------------------------------------------- *)

let asm_cmd =
  let run path machine output run_it cycles =
    let read_source () =
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    in
    let spec =
      try
        match machine with
        | `Stack ->
            let program = Asim_stackm.Asmtext.assemble (read_source ()) in
            Asim_stackm.Microcode.spec ?cycles ~program ()
        | `Tiny ->
            let program = Asim_tinyc.Asmtext.assemble (read_source ()) in
            Asim_tinyc.Machine.spec ?cycles
              ~traced:[ "pc"; "ac"; "borrow" ]
              ~program ()
      with
      | Asim.Error.Error e ->
          prerr_endline ("asim: " ^ Asim.Error.to_string e);
          exit 1
      | Sys_error msg ->
          prerr_endline ("asim: " ^ msg);
          exit 1
    in
    let source = Asim.Pretty.spec spec in
    (match output with
    | Some path ->
        let oc = open_out path in
        output_string oc source;
        close_out oc
    | None -> if not run_it then print_string source);
    if run_it then begin
      let analysis = Asim.Analysis.analyze spec in
      let io, events = Asim.Io.recording () in
      let config = { Asim.Machine.quiet_config with io } in
      let m = Asim.machine ~config analysis in
      let cycles = match cycles with Some n -> n | None -> 100_000 in
      (try Asim.Machine.run m ~cycles
       with Asim.Error.Error e ->
         prerr_endline ("asim: " ^ Asim.Error.to_string e);
         exit 1);
      List.iter
        (fun ev -> print_endline (Asim.Io.event_to_string ev))
        (events ())
    end
  in
  let machine_conv =
    Arg.conv
      ( (fun s ->
          match String.lowercase_ascii s with
          | "stack" | "stackm" -> Ok `Stack
          | "tiny" | "tinyc" -> Ok `Tiny
          | other -> Error (`Msg ("unknown machine " ^ other))),
        fun ppf m ->
          Format.pp_print_string ppf (match m with `Stack -> "stack" | `Tiny -> "tiny") )
  in
  let machine_arg =
    Arg.(
      value
      & opt machine_conv `Stack
      & info [ "m"; "machine" ] ~docv:"MACHINE"
          ~doc:"Target machine: $(b,stack) (Appendix D) or $(b,tiny) (Appendix F).")
  in
  let output_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the generated machine specification to FILE.")
  in
  let run_arg =
    Arg.(value & flag & info [ "run" ] ~doc:"Run the program and print its I/O events.")
  in
  Cmd.v
    (Cmd.info "asm"
       ~doc:
         "Assemble a program for one of the thesis machines and emit (or run) the \
          complete machine specification.")
    Term.(const run $ file_arg $ machine_arg $ output_arg $ run_arg $ cycles_arg)

(* --- profile ----------------------------------------------------------------- *)

let profile_cmd =
  let occupancy engine cycles components (analysis : Asim.Analysis.t) =
    (* The original occupancy-histogram mode, kept under -c NAME: sample the
       named components every cycle and histogram their values. *)
    let machine = Asim.machine ~config:Asim.Machine.quiet_config ~engine analysis in
    let cycles =
      match cycles with Some n -> n | None -> Asim.Machine.spec_cycles machine ~default:100
    in
    let profiles =
      try Asim.Profile.run machine ~cycles ~components
      with Asim.Error.Error e ->
        prerr_endline ("asim: " ^ Asim.Error.to_string e);
        exit 1
    in
    Printf.printf "%d cycles\n\n" cycles;
    print_string (Asim.Profile.to_string profiles)
  in
  let run path engine schedule cycles components top sample_every json flame
      trace_out =
    let analysis = or_die (load path) in
    if components <> [] then occupancy engine cycles components analysis
    else begin
      let prof =
        try Asim.Prof.create ~sample_every analysis
        with Invalid_argument msg ->
          prerr_endline ("asim: " ^ msg);
          exit 2
      in
      let tracer = tracer_for trace_out in
      (try
         let m =
           Asim.machine ~config:Asim.Machine.quiet_config ~engine ?schedule
             ~tracer ~prof analysis
         in
         let cycles =
           match cycles with
           | Some n -> n
           | None -> Asim.Machine.spec_cycles m ~default:100
         in
         Asim.Machine.run m ~cycles
       with Asim.Error.Error e ->
         prerr_endline ("asim: " ^ Asim.Error.to_string e);
         exit 1);
      Asim.Prof.finalize prof;
      let source =
        try
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> Some (really_input_string ic (in_channel_length ic)))
        with Sys_error _ -> None
      in
      (match flame with
      | Some out -> write_text_file out (Asim.Prof.to_flame ?source prof)
      | None -> ());
      (match trace_out with
      | Some _ ->
          Asim.Prof.emit_spans prof tracer;
          write_trace trace_out tracer
      | None -> ());
      if json then
        print_endline
          (Asim_batch.Json.to_string (Asim_batch.Runner.prof_to_json ?source prof))
      else print_string (Asim.Prof.report ~top ?source prof)
    end
  in
  let components_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "c"; "component" ] ~docv:"NAME"
          ~doc:
            "Switch to the original occupancy-histogram mode: sample NAME \
             every cycle and report its value histogram (repeatable).")
  in
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N"
          ~doc:"Hot components to list in the report (default 10).")
  in
  let sample_every_arg =
    Arg.(
      value & opt int 256
      & info [ "sample-every" ] ~docv:"N"
          ~doc:
            "Cycle-profiler period: every Nth cycle is timed per topological \
             level (default 256; lower is finer but slower).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the full profile as JSON on stdout (the cost-model \
             document; schema in docs/profile.schema.json) instead of the \
             human-readable report.")
  in
  let flame_arg =
    Arg.(
      value & opt (some string) None
      & info [ "flame" ] ~docv:"FILE"
          ~doc:
            "Also write folded flame stacks (collapsed-stack format for \
             flamegraph tools) to FILE.")
  in
  let schedule_arg =
    Arg.(
      value
      & opt
          (some
             (enum
                [ ("activity", Asim.Flat.Activity); ("full", Asim.Flat.Full) ]))
          None
      & info [ "schedule" ] ~docv:"SCHED"
          ~doc:
            "Flat-kernel scheduling: $(b,activity) (dirty-bit skipping, the \
             default — skip counts show what was quiescent) or $(b,full) \
             (re-evaluate everything every cycle — evaluation counts match \
             an interpreter recount exactly).  Flat engine only.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Profile the simulated machine: per-component evaluation counts, \
          dirty-skips, memory traffic and a sampled per-level cycle \
          profile, with source positions and an estimated cost model.  \
          With $(b,-c NAME), the original occupancy-histogram mode \
          instead.  Unsupported on the $(b,native) engine.")
    Term.(
      const run $ file_arg $ engine_arg_with Asim.FlatKernel $ schedule_arg
      $ cycles_arg $ components_arg $ top_arg $ sample_every_arg $ json_arg
      $ flame_arg $ trace_out_arg)

(* --- gates ------------------------------------------------------------------ *)

let gates_cmd =
  let run path check_cycles =
    let analysis = or_die (load path) in
    let circuit =
      try Asim_gates.Circuit.of_analysis analysis
      with Asim.Error.Error e ->
        prerr_endline ("asim: " ^ Asim.Error.to_string e);
        exit 1
    in
    print_endline (Asim_gates.Circuit.describe circuit);
    let s = Asim_gates.Circuit.stats circuit in
    Printf.printf "\ntotal: %d gates, %d flip-flops, %d behavioral macros\n"
      s.Asim_gates.Circuit.gate_count s.Asim_gates.Circuit.dff_count
      s.Asim_gates.Circuit.macro_count;
    match check_cycles with
    | None -> ()
    | Some cycles ->
        (* run gate level against the RTL engine and compare every component *)
        let rtl = Asim.machine ~config:Asim.Machine.quiet_config analysis in
        let names =
          List.map
            (fun (c : Asim.Component.t) -> c.name)
            analysis.Asim.Analysis.spec.Asim.Spec.components
        in
        let diverged = ref 0 in
        for cyc = 1 to cycles do
          Asim.Machine.run rtl ~cycles:1;
          Asim_gates.Circuit.step circuit;
          List.iter
            (fun name ->
              let w = max 1 (min 31 (Asim_gates.Circuit.width circuit name)) in
              let expected = rtl.Asim.Machine.read name land Asim.Bits.ones w in
              let got = Asim_gates.Circuit.read circuit name in
              if expected <> got then begin
                incr diverged;
                if !diverged <= 5 then
                  Printf.printf "cycle %d: %s rtl=%d gates=%d\n" cyc name expected got
              end)
            names
        done;
        if !diverged = 0 then
          Printf.printf "gate level matches the RTL engine over %d cycles\n" cycles
        else begin
          Printf.printf "%d divergences\n" !diverged;
          exit 1
        end
  in
  let check_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "verify" ] ~docv:"N"
          ~doc:"Run N cycles at both the gate level and the RTL and compare.")
  in
  Cmd.v
    (Cmd.info "gates"
       ~doc:"Lower a specification to a boolean network (logic-gate level) and report it.")
    Term.(const run $ file_arg $ check_arg)

(* --- coverage ---------------------------------------------------------------- *)

let coverage_cmd =
  let run path engine cycles bits all_values =
    let analysis = or_die (load path) in
    let faults = Asim.Coverage.stuck_at_faults ~bits_per_component:bits analysis in
    let observe = if all_values then Some Asim.Coverage.All_values else None in
    let engine_fn config a = Asim.machine ~config ~engine a in
    let report =
      try Asim.Coverage.run ?observe ?cycles ~engine:engine_fn analysis ~faults
      with Asim.Error.Error e ->
        prerr_endline ("asim: " ^ Asim.Error.to_string e);
        exit 1
    in
    print_string (Asim.Coverage.to_string report)
  in
  let bits_arg =
    Arg.(
      value
      & opt int 8
      & info [ "bits" ] ~docv:"N"
          ~doc:"Inject stuck-at faults on the low N bits of each component (default 8).")
  in
  let all_values_arg =
    Arg.(
      value & flag
      & info [ "all-values" ]
          ~doc:"Observe every component, not just the traced ones and I/O.")
  in
  Cmd.v
    (Cmd.info "coverage"
       ~doc:
         "Fault-coverage analysis: inject every single stuck-at fault and report which \
          ones the workload detects.")
    Term.(const run $ file_arg $ engine_arg $ cycles_arg $ bits_arg $ all_values_arg)

(* --- wavediff ---------------------------------------------------------------- *)

let wavediff_cmd =
  let run a b =
    let read path =
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    in
    let parse path =
      try Asim.Vcd.parse (read path) with
      | Asim.Error.Error e ->
          prerr_endline ("asim: " ^ path ^ ": " ^ Asim.Error.to_string e);
          exit 1
      | Sys_error msg ->
          prerr_endline ("asim: " ^ msg);
          exit 1
    in
    match Asim.Vcd.diff (parse a) (parse b) with
    | [] -> print_endline "waveforms are equivalent"
    | diffs ->
        List.iter
          (fun (signal, times) ->
            match times with
            | [ -1 ] -> Printf.printf "%-16s only in one dump\n" signal
            | times ->
                Printf.printf "%-16s differs at %d times (first %s)\n" signal
                  (List.length times)
                  (String.concat ", "
                     (List.filteri (fun i _ -> i < 6) (List.map string_of_int times))))
          diffs;
        exit 1
  in
  let vcd_pos n doc = Arg.(required & pos n (some file) None & info [] ~docv:"VCD" ~doc) in
  Cmd.v
    (Cmd.info "wavediff"
       ~doc:"Compare two VCD waveform dumps (e.g. a healthy and a fault-injected run).")
    Term.(const run $ vcd_pos 0 "First waveform." $ vcd_pos 1 "Second waveform.")

(* --- fuzz ------------------------------------------------------------------- *)

let fuzz_cmd =
  let run seed count start max_comb max_mem cycles wide engines artifacts
      time_budget inject_bug print_specs no_shrink quiet fuzz_jobs trace_out opt =
    let opt = resolve_opt opt in
    let size = { Asim_fuzz.Gen.max_comb; max_mem; cycles; wide } in
    let engines = if inject_bug then engines @ [ Asim_fuzz.Oracle.Buggy ] else engines in
    (match engines with
    | [] | [ _ ] ->
        prerr_endline "asim: fuzz needs at least two engines to compare";
        exit 2
    | _ -> ());
    let on_spec index spec =
      if print_specs then
        Printf.printf "# --- spec %d ---\n%s" index (Asim.Pretty.spec spec)
    in
    let log = if quiet then fun _ -> () else print_endline in
    let tracer = tracer_for trace_out in
    let outcome =
      Asim_fuzz.Runner.run ?artifacts_dir:artifacts ?time_budget ~tracer ~opt
        ~engines ~start ~shrink:(not no_shrink) ~on_spec ~log ~jobs:fuzz_jobs
        ~seed ~count ~size ()
    in
    write_trace trace_out tracer;
    List.iter
      (fun r -> print_endline (Asim_fuzz.Runner.report_to_string r))
      outcome.Asim_fuzz.Runner.reports;
    (* The summary names what actually ran: the campaign drops engines
       that cannot run here (native without a toolchain). *)
    let engines = List.filter Asim_fuzz.Oracle.available engines in
    print_endline (Asim_fuzz.Runner.summary ~seed ~engines outcome);
    if outcome.Asim_fuzz.Runner.reports <> [] then exit 1
  in
  let engine_conv =
    Arg.conv
      ( (fun s ->
          match Asim_fuzz.Oracle.engine_of_string s with
          | Some e -> Ok e
          | None -> Error (`Msg ("unknown engine " ^ s))),
        fun ppf e -> Format.pp_print_string ppf (Asim_fuzz.Oracle.engine_to_string e) )
  in
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed.")
  in
  let count_arg =
    Arg.(
      value & opt int 100
      & info [ "count" ] ~docv:"N" ~doc:"Number of random specifications to test.")
  in
  let start_arg =
    Arg.(
      value & opt int 0
      & info [ "start" ] ~docv:"N"
          ~doc:
            "First campaign index (reproducer bundles name the index of the \
             diverging spec; replay it with $(b,--start N --count 1)).")
  in
  let max_components_arg =
    Arg.(
      value & opt int 6
      & info [ "max-components" ] ~docv:"N"
          ~doc:"Upper bound on combinational components per spec.")
  in
  let max_memories_arg =
    Arg.(
      value & opt int 3
      & info [ "max-memories" ] ~docv:"N" ~doc:"Upper bound on memories per spec.")
  in
  let fuzz_cycles_arg =
    Arg.(
      value & opt int 20
      & info [ "cycles" ] ~docv:"N" ~doc:"Cycles to simulate each spec for.")
  in
  let wide_arg =
    Arg.(
      value & flag
      & info [ "wide" ]
          ~doc:
            "Also generate filling atoms (whole-word references, un-suffixed \
             constants): full-word values and negative intermediates.")
  in
  let engines_arg =
    Arg.(
      value
      & opt (list engine_conv) Asim_fuzz.Oracle.all
      & info [ "engines" ] ~docv:"LIST"
          ~doc:
            "Comma-separated engines to compare (first is the reference): \
             $(b,interp), $(b,compiled), $(b,unoptimized), $(b,lowered), \
             $(b,flat), $(b,flat-full), $(b,native), $(b,tiered), \
             $(b,buggy).  $(b,native) is dropped with a warning when no \
             OCaml toolchain answers on PATH ($(b,tiered) stays: it \
             degrades to flat-only with identical observables).")
  in
  let artifacts_arg =
    Arg.(
      value
      & opt (some string) (Some "fuzz-artifacts")
      & info [ "artifacts-dir" ] ~docv:"DIR"
          ~doc:"Where to write reproducer bundles (created on first failure).")
  in
  let time_budget_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "time-budget" ] ~docv:"SECONDS"
          ~doc:"Stop starting new specs once this much wall-clock time has elapsed.")
  in
  let inject_bug_arg =
    Arg.(
      value & flag
      & info [ "inject-bug" ]
          ~doc:
            "Add the deliberately faulty engine (constant ALU add computes \
             sub) to the comparison set — a self-test that the oracle \
             detects divergences and the shrinker minimizes them.")
  in
  let print_specs_arg =
    Arg.(
      value & flag
      & info [ "print-specs" ]
          ~doc:"Print every generated specification (deterministic per seed).")
  in
  let no_shrink_arg =
    Arg.(value & flag & info [ "no-shrink" ] ~doc:"Skip minimizing failures.")
  in
  let quiet_arg =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress progress lines.")
  in
  let fuzz_jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains to spread campaign indices over.  Reporting stays \
             deterministic for any N; $(b,--jobs 1) is byte-identical to the \
             sequential driver.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate random well-formed specifications \
          and check that every simulation engine observes identical behavior \
          (the paper's compiled-equals-interpreted claim); shrink and save \
          any counterexample.")
    Term.(
      const run $ seed_arg $ count_arg $ start_arg $ max_components_arg
      $ max_memories_arg $ fuzz_cycles_arg $ wide_arg $ engines_arg
      $ artifacts_arg $ time_budget_arg $ inject_bug_arg $ print_specs_arg
      $ no_shrink_arg $ quiet_arg $ fuzz_jobs_arg $ trace_out_arg $ opt_arg)

(* --- batch / serve ----------------------------------------------------------- *)

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Worker domains to run jobs on (1 = in the calling domain).")

let cache_capacity_arg =
  Arg.(
    value & opt int 64
    & info [ "cache-capacity" ] ~docv:"N"
        ~doc:"Maximum analyzed specs held in the compiled-spec cache.")

let no_metrics_arg =
  Arg.(
    value & flag
    & info [ "no-metrics" ] ~doc:"Suppress the end-of-run metrics summary on stderr.")

let batch_cmd =
  let run manifest jobs cache_capacity output no_metrics trace_out profile opt =
    let tracer = tracer_for trace_out in
    let t =
      Asim_batch.Runner.create ~cache_capacity ~tracer
        ~force_want:(if profile then [ Asim_batch.Proto.Profile ] else [])
        ~opt:(resolve_opt opt) ()
    in
    let t0 = Obs_clock.now () in
    let ic =
      try open_in manifest
      with Sys_error msg ->
        prerr_endline ("asim: " ^ msg);
        exit 2
    in
    let oc, close_oc =
      match output with
      | None -> (stdout, fun () -> flush stdout)
      | Some path ->
          let oc = open_out path in
          (oc, fun () -> close_out oc)
    in
    let next () = try Some (input_line ic) with End_of_file -> None in
    let emit line =
      output_string oc line;
      output_char oc '\n'
    in
    let _jobs_run = Asim_batch.Runner.process t ~jobs ~next ~emit in
    close_in ic;
    close_oc ();
    write_trace trace_out tracer;
    let s = Asim_batch.Runner.summary t ~wall_s:(Obs_clock.now () -. t0) in
    if not no_metrics then prerr_string (Asim_batch.Metrics.to_string s);
    if s.Asim_batch.Metrics.errors + s.Asim_batch.Metrics.timeouts > 0 then exit 1
  in
  let manifest_arg =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"MANIFEST" ~doc:"JSONL manifest: one job object per line.")
  in
  let output_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write result lines to FILE instead of stdout.")
  in
  let profile_arg =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Add $(b,profile) to every job's $(b,want) list: each result \
             line gains a per-component $(b,profile) object (jobs on the \
             $(b,native) engine answer with an error).")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Run a JSONL manifest of simulation jobs on a worker-domain pool with a \
          shared compiled-spec cache; emit one result line per job, in job order.")
    Term.(
      const run $ manifest_arg $ jobs_arg $ cache_capacity_arg $ output_arg
      $ no_metrics_arg $ trace_out_arg $ profile_arg $ opt_arg)

let serve_cmd =
  let run jobs cache_capacity socket tcp host port_file no_metrics metrics_file
      metrics_interval queue_depth max_in_flight max_line_bytes store_capacity
      timeout_s trace_out log_json opt =
    let tracer = tracer_for trace_out in
    let config =
      {
        Asim_serve.Server.shards = jobs;
        cache_capacity;
        queue_depth;
        max_in_flight;
        max_line_bytes;
        store_capacity;
        default_timeout_s = timeout_s;
        opt = resolve_opt opt;
        tracer;
      }
    in
    let server = Asim_serve.Server.create ~config () in
    if log_json then Asim_serve.Server.log_json server stderr;
    (* Flush the Chrome-trace buffer as part of the drain itself: a
       SIGTERM/SIGINT shutdown then leaves a complete --trace-out file even
       though control never returns through the normal exit path. *)
    (match trace_out with
    | Some _ ->
        Asim_serve.Server.on_drain server (fun () -> write_trace trace_out tracer)
    | None -> ());
    (match metrics_file with
    | None -> ()
    | Some path ->
        Asim_serve.Server.metrics_file server ~path
          ~interval:(Float.max 0.1 metrics_interval));
    (* SIGINT/SIGTERM drain in-flight jobs, flush a final metrics snapshot
       and exit 0; Server.shutdown is safe to call from a handler. *)
    let handler = Sys.Signal_handle (fun _ -> Asim_serve.Server.shutdown server) in
    (try Sys.set_signal Sys.sigint handler with Invalid_argument _ | Sys_error _ -> ());
    (try Sys.set_signal Sys.sigterm handler with Invalid_argument _ | Sys_error _ -> ());
    let finish () =
      Asim_serve.Server.drain server;
      write_trace trace_out tracer;
      if not no_metrics then
        prerr_string (Asim_batch.Metrics.to_string (Asim_serve.Server.summary server))
    in
    match (tcp, socket) with
    | Some port, _ ->
        let addr =
          try Unix.inet_addr_of_string host
          with Failure _ ->
            prerr_endline ("asim: bad --host address " ^ host);
            exit 2
        in
        let port = Asim_serve.Server.listen server (Unix.ADDR_INET (addr, port)) in
        Printf.eprintf "asim serve: listening on %s:%d (%d shards)\n%!" host port
          jobs;
        (match port_file with
        | Some path -> write_text_file path (string_of_int port ^ "\n")
        | None -> ());
        Asim_serve.Server.serve server;
        finish ()
    | None, Some path ->
        ignore (Asim_serve.Server.listen server (Unix.ADDR_UNIX path));
        Printf.eprintf "asim serve: listening on %s (%d shards)\n%!" path jobs;
        Asim_serve.Server.serve server;
        finish ()
    | None, None ->
        (* the stdio loop is the same core with one attached client *)
        Asim_serve.Server.attach server Unix.stdin Unix.stdout;
        finish ()
  in
  let socket_arg =
    Arg.(
      value & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Listen on a Unix socket instead of stdin/stdout; connections are \
             served concurrently and share the spec store and shard caches.")
  in
  let tcp_arg =
    Arg.(
      value & opt (some int) None
      & info [ "tcp" ] ~docv:"PORT"
          ~doc:
            "Listen on a TCP port (0 picks a free one; the bound port is \
             printed on stderr).  Takes precedence over $(b,--socket).")
  in
  let host_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind $(b,--tcp) on.")
  in
  let port_file_arg =
    Arg.(
      value & opt (some string) None
      & info [ "port-file" ] ~docv:"FILE"
          ~doc:"Write the bound TCP port to FILE (for scripts and CI).")
  in
  let metrics_file_arg =
    Arg.(
      value & opt (some string) None
      & info [ "metrics-file" ] ~docv:"FILE"
          ~doc:
            "Periodically write the live metrics in Prometheus text format to \
             FILE (atomically, via rename).  Clients can also request the same \
             text in-band with a $(b,{\"control\":\"metrics\"}) line.")
  in
  let metrics_interval_arg =
    Arg.(
      value & opt float 10.0
      & info [ "metrics-interval" ] ~docv:"SECONDS"
          ~doc:"Seconds between $(b,--metrics-file) writes (default 10).")
  in
  let queue_depth_arg =
    Arg.(
      value & opt int 256
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "Jobs a shard will queue before answering $(b,overload) (explicit \
             backpressure).")
  in
  let max_in_flight_arg =
    Arg.(
      value & opt int 64
      & info [ "max-in-flight" ] ~docv:"N"
          ~doc:"Unanswered jobs one client may have before being $(b,rejected).")
  in
  let max_line_bytes_arg =
    Arg.(
      value & opt int (1 lsl 20)
      & info [ "max-line-bytes" ] ~docv:"N"
          ~doc:"Longest accepted request line; longer lines get an error reply.")
  in
  let store_capacity_arg =
    Arg.(
      value & opt int 1024
      & info [ "store-capacity" ] ~docv:"N"
          ~doc:"Specs held by the content-addressed upload store.")
  in
  let timeout_arg =
    Arg.(
      value & opt (some float) None
      & info [ "timeout-s" ] ~docv:"SECONDS"
          ~doc:
            "Default per-job wall-clock budget for jobs that set none \
             (cooperative: long simulations stop at a cycle boundary).")
  in
  let log_json_arg =
    Arg.(
      value & flag
      & info [ "log-json" ]
          ~doc:
            "Structured logging: one JSON object per lifecycle event \
             (accept, reject, disconnect, drain) on stderr, each with a \
             $(b,ts) timestamp.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "The simulation service: accept JSONL jobs on stdin, a Unix socket or \
          a TCP port; route them to hash-sharded worker domains with warm \
          compiled-spec caches; stream results back in completion order.  \
          Specs can be uploaded once ($(b,{\"control\":\"upload\",...})) and \
          submitted by hash.  SIGINT/SIGTERM drain and exit cleanly.")
    Term.(
      const run $ jobs_arg $ cache_capacity_arg $ socket_arg $ tcp_arg $ host_arg
      $ port_file_arg $ no_metrics_arg $ metrics_file_arg $ metrics_interval_arg
      $ queue_depth_arg $ max_in_flight_arg $ max_line_bytes_arg
      $ store_capacity_arg $ timeout_arg $ trace_out_arg $ log_json_arg $ opt_arg)

let loadgen_cmd =
  let run host port connections jobs_per_connection example spec_file cycles
      engine no_scrape out =
    let spec =
      match spec_file with
      | Some path -> (
          try
            let ic = open_in_bin path in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          with Sys_error msg ->
            prerr_endline ("asim: " ^ msg);
            exit 2)
      | None -> (
          match List.assoc_opt example Asim.Specs.all with
          | Some s -> s
          | None ->
              prerr_endline ("asim: unknown example " ^ example);
              exit 2)
    in
    let cfg =
      {
        Asim_serve.Loadgen.host;
        port;
        connections;
        jobs_per_connection;
        spec;
        cycles;
        engine;
        scrape = not no_scrape;
      }
    in
    let r = Asim_serve.Loadgen.run cfg in
    print_string (Asim_serve.Loadgen.report_to_string r);
    (match out with
    | Some path ->
        write_text_file path
          (Asim_batch.Json.to_string (Asim_serve.Loadgen.report_to_json r) ^ "\n")
    | None -> ());
    if
      r.Asim_serve.Loadgen.dropped > 0
      || r.Asim_serve.Loadgen.duplicates > 0
      || r.Asim_serve.Loadgen.upload_failures > 0
      || r.Asim_serve.Loadgen.ok = 0
    then begin
      prerr_endline "asim loadgen: integrity check failed";
      exit 1
    end
  in
  let host_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Server address.")
  in
  let port_arg =
    Arg.(
      required & opt (some int) None
      & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server TCP port.")
  in
  let connections_arg =
    Arg.(
      value & opt int 256
      & info [ "c"; "connections" ] ~docv:"N"
          ~doc:"Concurrent client connections (default 256).")
  in
  let jobs_per_connection_arg =
    Arg.(
      value & opt int 4
      & info [ "n"; "jobs-per-connection" ] ~docv:"N"
          ~doc:"Jobs pipelined per connection after its upload (default 4).")
  in
  let example_arg =
    Arg.(
      value & opt string "counter"
      & info [ "example" ] ~docv:"NAME"
          ~doc:"Built-in example spec every connection uploads and runs.")
  in
  let spec_file_arg =
    Arg.(
      value & opt (some file) None
      & info [ "spec-file" ] ~docv:"FILE"
          ~doc:"Upload this spec file instead of a built-in example.")
  in
  let cycles_arg =
    Arg.(
      value & opt (some int) None
      & info [ "n-cycles"; "cycles" ] ~docv:"N"
          ~doc:"Cycle budget per job (default: the spec's own declaration).")
  in
  let no_scrape_arg =
    Arg.(
      value & flag
      & info [ "no-scrape" ]
          ~doc:"Skip the final in-band metrics scrape (cache hit rate).")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Also write the report as JSON.")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Load-test a running $(b,asim serve --tcp) instance: open many \
          concurrent connections, upload one spec each (deduplicated by the \
          content-addressed store), pipeline submit-by-hash jobs, and report \
          throughput, latency percentiles and result integrity (zero dropped \
          or duplicated replies).  Exits nonzero on any integrity failure.")
    Term.(
      const run $ host_arg $ port_arg $ connections_arg $ jobs_per_connection_arg
      $ example_arg $ spec_file_arg $ cycles_arg $ engine_arg $ no_scrape_arg
      $ out_arg)

(* --- bench ------------------------------------------------------------------ *)

(* --- genspec ---------------------------------------------------------------- *)

let genspec_cmd =
  let run kind cores depth width height seed cycles out =
    let spec =
      match kind with
      | `Pipeline -> Asim_fuzz.Gen.pipeline ?cycles ~cores ~depth ~seed ()
      | `Mesh -> Asim_fuzz.Gen.mesh ?cycles ~width ~height ~seed ()
    in
    let text = Asim.Pretty.spec spec in
    match out with
    | None -> print_string text
    | Some path ->
        write_text_file path text;
        Printf.eprintf "wrote %s (%d components)\n" path
          (List.length spec.Asim.Spec.components)
  in
  let kind_arg =
    Arg.(
      value
      & opt (enum [ ("pipeline", `Pipeline); ("mesh", `Mesh) ]) `Pipeline
      & info [ "k"; "kind" ] ~docv:"KIND"
          ~doc:
            "Workload shape: $(b,pipeline) (replicated cores of chained \
             stages with deliberate cross-core combinational edges — the \
             partitioned engine's hard case) or $(b,mesh) (a 2-D grid whose \
             inter-row traffic flows through registers — its best case).")
  in
  let cores_arg =
    Arg.(
      value & opt int 10
      & info [ "cores" ] ~docv:"N"
          ~doc:"Pipeline replicas (components = cores x (depth+1)).")
  in
  let depth_arg =
    Arg.(
      value & opt int 9
      & info [ "depth" ] ~docv:"N" ~doc:"Combinational stages per pipeline core.")
  in
  let width_arg =
    Arg.(
      value & opt int 10
      & info [ "mesh-width" ] ~docv:"N"
          ~doc:"Mesh columns (components = height x (width+1)).")
  in
  let height_arg =
    Arg.(
      value & opt int 10 & info [ "mesh-height" ] ~docv:"N" ~doc:"Mesh rows.")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Generator seed.  Output is a pure function of the shape \
             parameters and the seed — the same invocation always prints \
             byte-identical text.")
  in
  let gen_cycles_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "n"; "cycles" ] ~docv:"N"
          ~doc:"The emitted spec's = directive (default 200).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout.")
  in
  Cmd.v
    (Cmd.info "genspec"
       ~doc:
         "Generate a structured benchmark specification (1k-100k components) \
          for exercising the partitioned engine: replicated pipelined cores \
          or a 2-D mesh, deterministic for a fixed seed, always within the \
          width/select/memory-op envelope every engine and the differential \
          oracle accept.")
    Term.(
      const run $ kind_arg $ cores_arg $ depth_arg $ width_arg $ height_arg
      $ seed_arg $ gen_cycles_arg $ out_arg)

let bench_cmd =
  let run cycles reps check_cycles par_cycles out =
    let t =
      Asim_benchkit.Benchkit.run ?cycles ~reps ~check_cycles ~par_cycles ()
    in
    print_string (Asim_benchkit.Benchkit.table t);
    (match out with
    | None -> ()
    | Some path ->
        Asim_benchkit.Benchkit.write_json t ~path;
        Printf.printf "wrote %s\n" path);
    if not (Asim_benchkit.Benchkit.agree t) then begin
      prerr_endline "asim: bench differential check failed — engines disagree";
      exit 1
    end
  in
  let bench_cycles_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "n"; "cycles" ] ~docv:"N"
          ~doc:
            "Cycle budget per timed run (default: the sieve's 5545 cycles, \
             the paper's Figure 5.1 configuration).")
  in
  let reps_arg =
    Arg.(
      value & opt int 3
      & info [ "reps" ] ~docv:"R"
          ~doc:"Timed repetitions per engine; the best is kept (default 3).")
  in
  let check_cycles_arg =
    Arg.(
      value & opt int 300
      & info [ "check-cycles" ] ~docv:"N"
          ~doc:"Cycle budget for the differential-oracle agreement check.")
  in
  let par_cycles_arg =
    Arg.(
      value & opt int 200
      & info [ "par-cycles" ] ~docv:"N"
          ~doc:
            "Cycle budget for the 10k-component par-scaling workloads \
             (default 200).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Also write the results as JSON (the BENCH_engines.json format).")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:
         "Compare the simulation engines (interp, compiled, lowered, flat, \
          flat-full, par, and native when a toolchain is on PATH) on the \
          stack-machine sieve and the tiny computer, including raw and \
          prep-inclusive speedups and the native engine's amortization \
          point, plus the partitioned engine's 1/2/4/8-domain scaling curve \
          and par@1-vs-flat overhead on generated 10k-component specs; \
          exits nonzero if any engine disagrees with the differential \
          oracle or the par engine falls out of lockstep with flat.")
    Term.(
      const run $ bench_cycles_arg $ reps_arg $ check_cycles_arg
      $ par_cycles_arg $ out_arg)

(* --- fmt -------------------------------------------------------------------- *)

let fmt_cmd =
  let run path =
    let analysis = or_die (load path) in
    print_string (Asim.Pretty.spec analysis.Asim.Analysis.spec)
  in
  Cmd.v
    (Cmd.info "fmt" ~doc:"Echo a specification in canonical form (macros expanded).")
    Term.(const run $ file_arg)

(* --- example ---------------------------------------------------------------- *)

let example_cmd =
  let run name =
    match name with
    | None ->
        print_endline "available examples:";
        List.iter (fun (n, _) -> print_endline ("  " ^ n)) Asim.Specs.all
    | Some name -> (
        match List.assoc_opt name Asim.Specs.all with
        | Some source -> print_string source
        | None ->
            prerr_endline ("asim: unknown example " ^ name);
            exit 1)
  in
  let name_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Example name.")
  in
  Cmd.v
    (Cmd.info "example" ~doc:"Print a built-in example specification (or list them).")
    Term.(const run $ name_arg)

let () =
  let doc = "ASIM II: architecture simulation using a register transfer language" in
  let info = Cmd.info "asim" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
    [ check_cmd; run_cmd; codegen_cmd; pipeline_cmd; netlist_cmd; gates_cmd;
      profile_cmd; asm_cmd; coverage_cmd; wavediff_cmd; fuzz_cmd; genspec_cmd;
      batch_cmd; bench_cmd; serve_cmd; loadgen_cmd; fmt_cmd; example_cmd ]))
