(** A thread-safe registry of named metrics — counters, gauges and
    log-scale histograms — with a Prometheus text-format exporter.

    Metrics are identified by (name, labels); registering the same
    identity twice returns the existing instrument, so any code path can
    say [Registry.counter reg "asim_jobs_total"] without coordinating who
    created it first.  All instruments may be updated from any domain.

    Naming follows the Prometheus conventions documented in
    docs/observability.md: [asim_] prefix, snake_case, base units in the
    name ([_seconds], [_bytes]), counters ending in [_total]. *)

type t

val create : unit -> t

val default : t
(** A process-global registry for code without an obvious owner. *)

(** {2 Instruments} *)

type counter
type gauge
type histogram

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter
(** Monotonically increasing value.  Raises [Invalid_argument] if the name
    is already registered as a different kind. *)

val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val histogram :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?buckets:float array ->
  string ->
  histogram
(** Distribution sketch over fixed bucket upper bounds (default:
    {!log_buckets} from 1 µs to ~128 s, factor 2 — latency-shaped).
    [buckets] must be strictly increasing. *)

val log_buckets : lo:float -> hi:float -> factor:float -> float array
(** Upper bounds [lo, lo*factor, …] up to and including the first bound
    >= [hi].  [factor] must exceed 1. *)

val inc : counter -> unit
val add : counter -> float -> unit
(** [add] ignores negative amounts (counters are monotonic). *)

val counter_value : counter -> float

val set : gauge -> float -> unit
val gauge_add : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit

val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_max : histogram -> float
(** 0 when empty. *)

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [0,1]: the upper bound of the bucket holding
    the nearest-rank sample, clamped to the exact observed min/max (so a
    single-sample histogram answers that sample for every [q], and [q=1]
    is always the exact max).  0 when empty. *)

(** {2 Export} *)

val to_prometheus : t -> string
(** Prometheus text exposition format, families sorted by name, series
    sorted by labels — deterministic for a given registry state.
    Histograms render cumulative [_bucket{le=…}] series plus [_sum] and
    [_count]. *)
