type event = {
  name : string;
  ts_us : float;
  dur_us : float;
  tid : int;
  args : (string * string) list;
}

type active = { mutex : Mutex.t; mutable events : event list; mutable count : int }

type t =
  | Null
  | Active of active
  | Tagged of active * (string * string) list
      (** shares an [Active] buffer; appends its context args to every span *)

let null = Null

let create () = Active { mutex = Mutex.create (); events = []; count = 0 }

let is_active = function Null -> false | Active _ | Tagged _ -> true

let with_args t args =
  match (t, args) with
  | Null, _ | _, [] -> t
  | Active a, args -> Tagged (a, args)
  | Tagged (a, base), args -> Tagged (a, base @ args)

let record a ev =
  Mutex.lock a.mutex;
  a.events <- ev :: a.events;
  a.count <- a.count + 1;
  Mutex.unlock a.mutex

let domain_id () = (Domain.self () :> int)

let span t ?(args = []) name f =
  match t with
  | Null -> f ()
  | Active _ | Tagged _ ->
      let a, args =
        match t with
        | Active a -> (a, args)
        | Tagged (a, base) -> (a, args @ base)
        | Null -> assert false
      in
      let t0 = Clock.now () in
      Fun.protect
        ~finally:(fun () ->
          let t1 = Clock.now () in
          record a
            {
              name;
              ts_us = t0 *. 1e6;
              dur_us = (t1 -. t0) *. 1e6;
              tid = domain_id ();
              args;
            })
        f

let span_at t ?(args = []) name ~ts ~dur =
  match t with
  | Null -> ()
  | Active a ->
      record a
        { name; ts_us = ts *. 1e6; dur_us = dur *. 1e6; tid = domain_id (); args }
  | Tagged (a, base) ->
      record a
        {
          name;
          ts_us = ts *. 1e6;
          dur_us = dur *. 1e6;
          tid = domain_id ();
          args = args @ base;
        }

let events = function
  | Null -> []
  | Active a | Tagged (a, _) ->
      Mutex.lock a.mutex;
      let evs = List.rev a.events in
      Mutex.unlock a.mutex;
      evs

let event_count = function
  | Null -> 0
  | Active a | Tagged (a, _) ->
      Mutex.lock a.mutex;
      let n = a.count in
      Mutex.unlock a.mutex;
      n

(* Self-contained JSON string escaping: the obs layer sits below the batch
   protocol, so it cannot borrow that codec. *)
let escape_json buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_chrome_json t =
  let pid = Unix.getpid () in
  let buf = Buffer.create 4096 in
  Buffer.add_char buf '[';
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf "{\"name\":";
      escape_json buf ev.name;
      Buffer.add_string buf ",\"cat\":\"asim\",\"ph\":\"X\"";
      Buffer.add_string buf (Printf.sprintf ",\"ts\":%.3f,\"dur\":%.3f" ev.ts_us ev.dur_us);
      Buffer.add_string buf (Printf.sprintf ",\"pid\":%d,\"tid\":%d" pid ev.tid);
      if ev.args <> [] then begin
        Buffer.add_string buf ",\"args\":{";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_char buf ',';
            escape_json buf k;
            Buffer.add_char buf ':';
            escape_json buf v)
          ev.args;
        Buffer.add_char buf '}'
      end;
      Buffer.add_char buf '}')
    (events t);
  Buffer.add_string buf "]\n";
  Buffer.contents buf

let write t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_chrome_json t))
