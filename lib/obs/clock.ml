let default = Unix.gettimeofday

let source = Atomic.make default

let now () = (Atomic.get source) ()

let elapsed t0 = now () -. t0

let set_source f = Atomic.set source f

let reset () = Atomic.set source default

let with_source f body =
  set_source f;
  Fun.protect ~finally:reset body

type manual = { mutex : Mutex.t; mutable t : float }

let manual ?(start = 0.0) () = { mutex = Mutex.create (); t = start }

let manual_source m () =
  Mutex.lock m.mutex;
  let t = m.t in
  Mutex.unlock m.mutex;
  t

let advance m dt =
  Mutex.lock m.mutex;
  m.t <- m.t +. dt;
  Mutex.unlock m.mutex
