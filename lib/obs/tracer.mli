(** Span-based tracing with Chrome trace-event JSON export.

    A tracer collects timed spans — named intervals with optional string
    attributes — from any domain.  {!to_chrome_json} renders them as a
    JSON array of complete ([ph:"X"]) trace events with microsecond
    [ts]/[dur], loadable directly in Perfetto (https://ui.perfetto.dev) or
    chrome://tracing.  Spans on different domains land on different track
    ids ([tid]), so pipeline stages and worker-pool activity lay out as
    parallel tracks.

    The {!null} tracer is free: [span null name f] is just [f ()] — no
    clock reads, no allocation — so instrumented code paths cost nothing
    unless a [--trace-out] flag switched tracing on.

    Timestamps come from {!Clock.now}, so traces are deterministic under a
    mock clock. *)

type t

type event = {
  name : string;
  ts_us : float;  (** span start, microseconds *)
  dur_us : float;
  tid : int;  (** domain id *)
  args : (string * string) list;
}

val null : t
(** The disabled tracer. *)

val create : unit -> t

val is_active : t -> bool

val with_args : t -> (string * string) list -> t
(** A derived tracer sharing the same event buffer that appends the given
    context args to every span it records — how per-job identity
    ([job_id], [trace_id]) gets stamped onto pipeline, codegen and engine
    spans without threading labels through every call site.  Deriving from
    {!null} is still {!null} (and costs nothing); deriving twice
    accumulates args (outer context first).  Explicit per-span [args] win:
    they render before the inherited context. *)

val span : t -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a timed span.  The span is recorded even when the
    thunk raises.  Nested calls nest naturally in the viewer (enclosing
    time ranges on the same track). *)

val span_at : t -> ?args:(string * string) list -> string -> ts:float -> dur:float -> unit
(** Record a span from explicit wall-clock endpoints ([ts] start seconds,
    [dur] seconds) — for intervals that cannot wrap a closure, like the
    queue wait between job submission and worker pickup. *)

val events : t -> event list
(** Recorded events, oldest first.  Empty for {!null}. *)

val event_count : t -> int

val to_chrome_json : t -> string
(** The JSON array of trace events ([{"name":…,"ph":"X","ts":…,"dur":…,
    "pid":…,"tid":…,"args":{…}}]). *)

val write : t -> string -> unit
(** Write {!to_chrome_json} to a file. *)
