type counter = { c_mutex : Mutex.t; mutable c_value : float }

type gauge = { g_mutex : Mutex.t; mutable g_value : float }

type histogram = {
  h_mutex : Mutex.t;
  bounds : float array;  (** strictly increasing upper bounds *)
  buckets : int array;  (** length = |bounds| + 1; last is the overflow bucket *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type family = {
  kind : [ `Counter | `Gauge | `Histogram ];
  help : string;
  mutable series : ((string * string) list * instrument) list;
}

type t = {
  mutex : Mutex.t;
  families : (string, family) Hashtbl.t;
}

let create () = { mutex = Mutex.create (); families = Hashtbl.create 16 }

let default = create ()

let log_buckets ~lo ~hi ~factor =
  if not (lo > 0.0 && hi > lo && factor > 1.0) then
    invalid_arg "Registry.log_buckets: need 0 < lo < hi and factor > 1";
  let rec go acc b = if b >= hi then List.rev (b :: acc) else go (b :: acc) (b *. factor) in
  Array.of_list (go [] lo)

let default_buckets = log_buckets ~lo:1e-6 ~hi:128.0 ~factor:2.0

let kind_name = function
  | `Counter -> "counter"
  | `Gauge -> "gauge"
  | `Histogram -> "histogram"

let normalize_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

(* Find or create the (name, labels) series, enforcing kind consistency. *)
let register t ~kind ~help ~labels name make =
  let labels = normalize_labels labels in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      let family =
        match Hashtbl.find_opt t.families name with
        | Some f ->
            if f.kind <> kind then
              invalid_arg
                (Printf.sprintf "Registry: %s already registered as a %s, not a %s" name
                   (kind_name f.kind) (kind_name kind));
            f
        | None ->
            let f = { kind; help; series = [] } in
            Hashtbl.replace t.families name f;
            f
      in
      match List.assoc_opt labels family.series with
      | Some i -> i
      | None ->
          let i = make () in
          family.series <- family.series @ [ (labels, i) ];
          i)

let counter t ?(help = "") ?(labels = []) name =
  match
    register t ~kind:`Counter ~help ~labels name (fun () ->
        Counter { c_mutex = Mutex.create (); c_value = 0.0 })
  with
  | Counter c -> c
  | _ -> assert false

let gauge t ?(help = "") ?(labels = []) name =
  match
    register t ~kind:`Gauge ~help ~labels name (fun () ->
        Gauge { g_mutex = Mutex.create (); g_value = 0.0 })
  with
  | Gauge g -> g
  | _ -> assert false

let histogram t ?(help = "") ?(labels = []) ?(buckets = default_buckets) name =
  Array.iteri
    (fun i b ->
      if i > 0 && not (b > buckets.(i - 1)) then
        invalid_arg "Registry.histogram: bucket bounds must be strictly increasing")
    buckets;
  match
    register t ~kind:`Histogram ~help ~labels name (fun () ->
        Histogram
          {
            h_mutex = Mutex.create ();
            bounds = buckets;
            buckets = Array.make (Array.length buckets + 1) 0;
            h_count = 0;
            h_sum = 0.0;
            h_min = infinity;
            h_max = neg_infinity;
          })
  with
  | Histogram h -> h
  | _ -> assert false

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let add c amount =
  if amount > 0.0 then locked c.c_mutex (fun () -> c.c_value <- c.c_value +. amount)

let inc c = add c 1.0

let counter_value c = locked c.c_mutex (fun () -> c.c_value)

let set g v = locked g.g_mutex (fun () -> g.g_value <- v)

let gauge_add g v = locked g.g_mutex (fun () -> g.g_value <- g.g_value +. v)

let gauge_value g = locked g.g_mutex (fun () -> g.g_value)

let bucket_index bounds v =
  (* First bound >= v, else the overflow bucket. *)
  let n = Array.length bounds in
  let rec go i = if i >= n then n else if v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  locked h.h_mutex (fun () ->
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v;
      let i = bucket_index h.bounds v in
      h.buckets.(i) <- h.buckets.(i) + 1)

let hist_count h = locked h.h_mutex (fun () -> h.h_count)

let hist_sum h = locked h.h_mutex (fun () -> h.h_sum)

let hist_max h = locked h.h_mutex (fun () -> if h.h_count = 0 then 0.0 else h.h_max)

let quantile h q =
  locked h.h_mutex (fun () ->
      if h.h_count = 0 then 0.0
      else begin
        let target = max 1 (int_of_float (ceil (q *. float_of_int h.h_count))) in
        let target = min target h.h_count in
        let n = Array.length h.bounds in
        let rec go i cum =
          let cum = cum + h.buckets.(i) in
          if cum >= target || i >= n then i else go (i + 1) cum
        in
        let i = go 0 0 in
        let upper = if i >= n then h.h_max else h.bounds.(i) in
        (* The bucket bound over-approximates; the exact extrema bound it. *)
        Float.max h.h_min (Float.min upper h.h_max)
      end)

(* --- Prometheus text exposition -------------------------------------------- *)

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_labels labels =
  match labels with
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) labels)
      ^ "}"

let render_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let to_prometheus t =
  Mutex.lock t.mutex;
  let families =
    Hashtbl.fold (fun name f acc -> (name, f) :: acc) t.families []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Mutex.unlock t.mutex;
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun (name, f) ->
      if f.help <> "" then line "# HELP %s %s" name f.help;
      line "# TYPE %s %s" name (kind_name f.kind);
      let series =
        List.sort
          (fun (la, _) (lb, _) -> compare (render_labels la) (render_labels lb))
          f.series
      in
      List.iter
        (fun (labels, instrument) ->
          match instrument with
          | Counter c -> line "%s%s %s" name (render_labels labels) (render_float (counter_value c))
          | Gauge g -> line "%s%s %s" name (render_labels labels) (render_float (gauge_value g))
          | Histogram h ->
              let bounds, buckets, count, sum =
                locked h.h_mutex (fun () ->
                    (h.bounds, Array.copy h.buckets, h.h_count, h.h_sum))
              in
              let cum = ref 0 in
              Array.iteri
                (fun i b ->
                  cum := !cum + buckets.(i);
                  line "%s_bucket%s %d" name
                    (render_labels (labels @ [ ("le", Printf.sprintf "%g" b) ]))
                    !cum)
                bounds;
              line "%s_bucket%s %d" name (render_labels (labels @ [ ("le", "+Inf") ])) count;
              line "%s_sum%s %s" name (render_labels labels) (render_float sum);
              line "%s_count%s %d" name (render_labels labels) count)
        series)
    families;
  Buffer.contents buf
