(** The one clock every subsystem reads.

    All wall-clock decisions — span timestamps, per-job [elapsed_s] fields,
    fuzz campaign deadlines, batch throughput numbers — go through
    {!now}, so a test can override the time source once and every layer
    becomes deterministic.  The default source is [Unix.gettimeofday].

    The override is process-global and atomic; workers on other domains
    observe it immediately. *)

val now : unit -> float
(** Seconds since the epoch, per the current source. *)

val elapsed : float -> float
(** [elapsed t0] is [now () -. t0]. *)

val set_source : (unit -> float) -> unit
(** Replace the time source (tests, replay). *)

val reset : unit -> unit
(** Restore [Unix.gettimeofday]. *)

val with_source : (unit -> float) -> (unit -> 'a) -> 'a
(** Run a thunk under a temporary source; always restores the default
    afterwards (also on exceptions). *)

(** {2 Manual clocks for tests} *)

type manual
(** A hand-cranked clock: time only moves when the test says so. *)

val manual : ?start:float -> unit -> manual
(** A manual clock reading [start] (default 0). *)

val manual_source : manual -> unit -> float
(** The closure to hand to {!set_source} / {!with_source}. *)

val advance : manual -> float -> unit
(** Move a manual clock forward by the given seconds. *)
