(** Metrics for a batch/serve session: job counts by status, throughput,
    cache effectiveness, and per-engine latency percentiles.  Thread-safe —
    workers record from any domain.

    Since PR 3 this is a view over an {!Asim_obs.Registry}: every
    [record] updates live Prometheus instruments ([asim_jobs_total{status}]
    counters, [asim_job_duration_seconds{engine}] histograms) as well as
    the exact per-engine samples behind the end-of-run {!summary}.  The
    registry is what `asim serve` exposes on a [{"control":"metrics"}]
    request and via [--metrics-file]; the summary keeps its historical
    exact-percentile semantics. *)

type t

val create : unit -> t

val registry : t -> Asim_obs.Registry.t
(** The live registry backing this session (for Prometheus export). *)

val record :
  t -> engine:string -> status:[ `Ok | `Error | `Timeout ] -> elapsed:float -> unit
(** Record one finished job ([elapsed] in seconds). *)

val set_cache : t -> Cache.stats -> unit
(** Refresh the [asim_cache_*] gauges from a cache snapshot. *)

type engine_latency = {
  engine : string;
  count : int;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

type summary = {
  jobs : int;
  ok : int;
  errors : int;
  timeouts : int;
  wall_s : float;
  jobs_per_sec : float;
  cache : Cache.stats;
  latencies : engine_latency list;  (** sorted by engine name *)
}

val percentile : float array -> float -> float
(** [percentile sorted p] for [p] in 0..100 (so p99 is [99.0], unlike
    {!Asim_obs.Registry.quantile}'s 0..1): nearest rank over a sorted
    array — 0 for the empty array, the single element for n=1 at any rank,
    and the maximum for any percentile whose rank rounds to n (e.g. p99
    with n < 100). *)

val summarize : t -> cache:Cache.stats -> wall_s:float -> summary
(** Exact percentiles from the recorded samples.  [jobs_per_sec] is 0 when
    [wall_s] is not a positive finite number (never [inf]/[nan]). *)

val to_string : summary -> string
(** Multi-line human-readable report (the CLI prints it to stderr). *)

val to_json : summary -> Json.t
