(** End-of-run metrics for a batch/serve session: job counts by status,
    throughput, cache effectiveness, and per-engine latency percentiles.
    Thread-safe — workers record from any domain. *)

type t

val create : unit -> t

val record :
  t -> engine:string -> status:[ `Ok | `Error | `Timeout ] -> elapsed:float -> unit
(** Record one finished job ([elapsed] in seconds). *)

type engine_latency = {
  engine : string;
  count : int;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

type summary = {
  jobs : int;
  ok : int;
  errors : int;
  timeouts : int;
  wall_s : float;
  jobs_per_sec : float;
  cache : Cache.stats;
  latencies : engine_latency list;  (** sorted by engine name *)
}

val summarize : t -> cache:Cache.stats -> wall_s:float -> summary

val to_string : summary -> string
(** Multi-line human-readable report (the CLI prints it to stderr). *)

val to_json : summary -> Json.t
