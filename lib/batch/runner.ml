open Asim_core
module Clock = Asim_obs.Clock
module Tracer = Asim_obs.Tracer

type t = {
  cache : Asim_analysis.Analysis.t Cache.t;
  metrics : Metrics.t;
  tracer : Tracer.t;
  force_want : Proto.want list;
  opt : Asim.Opt.level;
}

let create ?(cache_capacity = 64) ?metrics ?(tracer = Tracer.null)
    ?(force_want = []) ?(opt = Asim.Opt.O2) () =
  {
    cache = Cache.create ~capacity:cache_capacity;
    metrics = (match metrics with Some m -> m | None -> Metrics.create ());
    tracer;
    force_want;
    opt;
  }

let metrics t = t.metrics
let cache_stats t = Cache.stats t.cache

let cache_key ?(opt = Asim.Opt.O0) ?(keep_all = false) ~engine ~optimize spec =
  let canonical = Pretty.spec spec in
  (* The cached value is the post-middle-end analysis, so the key carries
     the opt level and whether every component was pinned live (jobs that
     want raw outputs must see real values for all of them). *)
  Printf.sprintf "%s:%s:%s:O%s%s"
    (Digest.to_hex (Digest.string canonical))
    (Asim.engine_to_string engine)
    (if optimize then "opt" else "noopt")
    (Asim.Opt.level_to_string opt)
    (if keep_all then ":keepall" else "")

let resolve_source = function
  | Proto.Inline s -> s
  | Proto.Hash h ->
      failwith
        (Printf.sprintf
           "job names spec by hash %s but this mode has no spec store (upload/submit \
            by hash needs asim serve)"
           h)
  | Proto.File path ->
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
  | Proto.Example name -> (
      match List.assoc_opt name Asim.Specs.all with
      | Some source -> source
      | None -> failwith (Printf.sprintf "unknown example %S" name))

let stats_to_json stats =
  Json.Obj
    [
      ("cycles", Json.Int (Asim.Stats.cycles stats));
      ( "memories",
        Json.Obj
          (List.map
             (fun (name, (c : Asim.Stats.memory_counters)) ->
               ( name,
                 Json.Obj
                   [
                     ("reads", Json.Int c.reads);
                     ("writes", Json.Int c.writes);
                     ("inputs", Json.Int c.inputs);
                     ("outputs", Json.Int c.outputs);
                   ] ))
             (Asim.Stats.per_memory stats)) );
      ("total_accesses", Json.Int (Asim.Stats.total_accesses stats));
    ]

let prof_to_json ?source (p : Asim.Prof.t) =
  Asim.Prof.finalize p;
  let rows = Asim.Prof.rows ?source p in
  Json.Obj
    [
      ("engine", Json.String p.engine);
      ("schedule", Json.String p.schedule);
      ("cycles", Json.Int p.cycles);
      ("sample_every", Json.Int p.sample_every);
      ("sampled_cycles", Json.Int p.sampled_cycles);
      ("levels", Json.Int p.nlevels);
      ( "components",
        Json.List
          (List.map
             (fun (r : Asim.Prof.row) ->
               Json.Obj
                 [
                   ("slot", Json.Int r.r_slot);
                   ("name", Json.String r.r_name);
                   ("kind", Json.String (String.make 1 r.r_kind));
                   ("level", Json.Int r.r_level);
                   ("line", Json.Int r.r_line);
                   ("evals", Json.Int r.r_evals);
                   ("skips", Json.Int r.r_skips);
                   ("reads", Json.Int r.r_reads);
                   ("writes", Json.Int r.r_writes);
                   ("inputs", Json.Int r.r_inputs);
                   ("outputs", Json.Int r.r_outputs);
                   ("faults", Json.Int r.r_faults);
                   ("words", Json.Int r.r_words);
                   ("cost", Json.Int r.r_cost);
                 ])
             rows) );
      ( "sampled",
        Json.Obj
          [
            ( "level_ns",
              Json.List
                (Array.to_list (Array.map (fun v -> Json.Float v) p.level_ns))
            );
            ("mem_ns", Json.Float p.mem_ns);
            ("total_ns", Json.Float p.sampled_ns);
          ] );
      ( "io",
        Json.Obj
          [ ("events", Json.Int p.io_events); ("wait_ns", Json.Float p.io_ns) ]
      );
    ]

let memory_images (analysis : Asim.Analysis.t) (m : Asim.Machine.t) =
  List.filter_map
    (fun (c : Component.t) ->
      match c.kind with
      | Component.Memory { cells; _ } ->
          Some (c.name, List.init cells (fun i -> m.Asim.Machine.read_cell c.name i))
      | Component.Alu _ | Component.Selector _ -> None)
    analysis.Asim_analysis.Analysis.spec.Spec.components

let run_job t (job : Proto.job) =
  let job =
    match t.force_want with
    | [] -> job
    | extra ->
        {
          job with
          Proto.want =
            job.Proto.want
            @ List.filter (fun w -> not (List.mem w job.Proto.want)) extra;
        }
  in
  (* Client identity rides on a derived tracer, so every span the job emits
     — pipeline stages, batch internals, codegen, engine internals like
     tiered.swap — carries [id]/[trace_id] and one Perfetto filter
     isolates the job end to end. *)
  let ident =
    (match job.Proto.id with Some id -> [ ("id", id) ] | None -> [])
    @ match job.Proto.trace_id with Some x -> [ ("trace_id", x) ] | None -> []
  in
  let tr = Tracer.with_args t.tracer ident in
  let job_attr = [ ("engine", Asim.engine_to_string job.Proto.engine) ] in
  let t0 = Clock.now () in
  let wanted w = List.mem w job.Proto.want in
  let trace_sink, trace_lines =
    if wanted Proto.Trace then Asim.Trace.list_sink ()
    else (Asim.Trace.null_sink, fun () -> [])
  in
  let io, events = Asim.Io.recording ~feed:job.Proto.inputs () in
  let outcome =
    try
      let source = resolve_source job.Proto.source in
      let spec =
        Tracer.span tr ~args:job_attr "pipeline.parse" (fun () ->
            Asim_syntax.Parser.parse_string source)
      in
      let opt = Option.value job.Proto.opt ~default:t.opt in
      (* Jobs that want raw final outputs observe every component, so DCE
         (and the rest of the middle-end) must keep them all live. *)
      let keep_all = wanted Proto.Outputs in
      let key =
        cache_key ~opt ~keep_all ~engine:job.Proto.engine
          ~optimize:job.Proto.optimize spec
      in
      let hit = ref true in
      let lookup_t0 = Clock.now () in
      let analysis =
        Cache.find_or_compute t.cache ~key (fun () ->
            hit := false;
            let analysis =
              Tracer.span tr ~args:job_attr "pipeline.analyze" (fun () ->
                  Asim_analysis.Analysis.analyze spec)
            in
            match opt with
            | Asim.Opt.O0 -> analysis
            | level ->
                Tracer.span tr
                  ~args:(("level", Asim.Opt.level_to_string level) :: job_attr)
                  "pipeline.optimize"
                  (fun () ->
                    let keep =
                      if keep_all then
                        List.map
                          (fun (c : Component.t) -> c.name)
                          spec.Spec.components
                      else []
                    in
                    Asim.Opt.run ~level ~keep analysis))
      in
      Tracer.span_at tr
        ~args:(("outcome", if !hit then "hit" else "miss") :: job_attr)
        "batch.cache_lookup" ~ts:lookup_t0
        ~dur:(if Tracer.is_active tr then Clock.now () -. lookup_t0 else 0.0);
      let config = { Asim.Machine.io; trace = trace_sink; faults = Asim.Fault.none } in
      let prof =
        if wanted Proto.Profile then Some (Asim.Prof.create analysis) else None
      in
      let m =
        Tracer.span tr ~args:job_attr "pipeline.build" (fun () ->
            Asim.machine ~config ~engine:job.Proto.engine ~optimize:job.Proto.optimize
              ~tracer:tr ?prof analysis)
      in
      let cycles =
        match job.Proto.cycles with
        | Some n -> n
        | None -> Asim.Machine.spec_cycles m ~default:0
      in
      let status =
        Tracer.span tr
          ~args:(("cycles", string_of_int cycles) :: job_attr)
          "pipeline.simulate"
          (fun () ->
            try
              match job.Proto.timeout_s with
              | None ->
                  Asim.Machine.run m ~cycles;
                  Proto.Ok_
              | Some budget -> (
                  let deadline = t0 +. budget in
                  match
                    Asim.Machine.run_bounded m ~cycles
                      ~should_stop:(fun () -> Clock.now () > deadline)
                      ()
                  with
                  | Asim.Machine.Completed -> Proto.Ok_
                  | Asim.Machine.Stopped done_ -> Proto.Timeout done_)
            with Error.Error e -> Proto.Error_ (Error.to_string e))
      in
      {
        Proto.job;
        status;
        cycles_run = m.Asim.Machine.current_cycle ();
        outputs =
          (if wanted Proto.Outputs then
             List.map
               (fun (c : Component.t) -> (c.name, m.Asim.Machine.read c.name))
               analysis.Asim_analysis.Analysis.spec.Spec.components
           else []);
        cells = (if wanted Proto.Memory then memory_images analysis m else []);
        trace = trace_lines ();
        events =
          (if wanted Proto.Events then List.map Asim.Io.event_to_string (events ())
           else []);
        stats_json = (if wanted Proto.Stats then Some (stats_to_json m.Asim.Machine.stats) else None);
        profile_json =
          (match prof with
          | None -> None
          | Some p ->
              Asim.Prof.finalize p;
              (* Accumulate into the shared registry under a short spec
                 digest label, and surface the sampled levels as synthetic
                 spans next to the job's pipeline spans. *)
              Asim.Prof.export p ~spec:(String.sub key 0 12)
                (Metrics.registry t.metrics);
              Asim.Prof.emit_spans p tr;
              Some (prof_to_json ~source p));
        elapsed_s = Clock.now () -. t0;
      }
    with
    | Error.Error e ->
        {
          Proto.job;
          status = Proto.Error_ (Error.to_string e);
          cycles_run = 0;
          outputs = [];
          cells = [];
          trace = trace_lines ();
          events = [];
          stats_json = None;
          profile_json = None;
          elapsed_s = Clock.now () -. t0;
        }
    | Sys_error msg | Failure msg ->
        {
          Proto.job;
          status = Proto.Error_ msg;
          cycles_run = 0;
          outputs = [];
          cells = [];
          trace = trace_lines ();
          events = [];
          stats_json = None;
          profile_json = None;
          elapsed_s = Clock.now () -. t0;
        }
  in
  Metrics.record t.metrics
    ~engine:(Asim.engine_to_string job.Proto.engine)
    ~status:(Proto.status_class outcome.Proto.status)
    ~elapsed:outcome.Proto.elapsed_s;
  outcome

let prometheus t =
  Metrics.set_cache t.metrics (Cache.stats t.cache);
  Asim_obs.Registry.to_prometheus (Metrics.registry t.metrics)

(* --- the JSONL stream driver ------------------------------------------------ *)

let is_blank line = String.trim line = ""

let malformed_result t ~index ~lineno msg =
  Metrics.record t.metrics ~engine:"manifest" ~status:`Error ~elapsed:0.0;
  Json.to_string
    (Json.Obj
       [
         ("index", Json.Int index);
         ("line", Json.Int lineno);
         ("status", Json.String "error");
         ("error", Json.String (Printf.sprintf "line %d: %s" lineno msg));
       ])

let metrics_result t ~index =
  Json.to_string
    (Json.Obj
       [
         ("index", Json.Int index);
         ("control", Json.String "metrics");
         ("status", Json.String "ok");
         ("metrics", Json.String (prometheus t));
       ])

let process t ~jobs ~next ~emit =
  let tr = t.tracer in
  let pool =
    Pool.create ~jobs
      ~on_crash:(fun index exn ->
        Metrics.record t.metrics ~engine:"internal" ~status:`Error ~elapsed:0.0;
        Json.to_string
          (Json.Obj
             [
               ("index", Json.Int index);
               ("status", Json.String "error");
               ("error", Json.String ("internal: " ^ Printexc.to_string exn));
             ]))
      ~emit:(fun index line ->
        Tracer.span tr
          ~args:[ ("index", string_of_int index) ]
          "batch.emit"
          (fun () -> emit line))
  in
  let lineno = ref 0 in
  let rec pump () =
    match next () with
    | None -> ()
    | Some line ->
        incr lineno;
        let lineno = !lineno in
        if not (is_blank line) then begin
          let submitted = if Tracer.is_active tr then Clock.now () else 0.0 in
          Pool.submit pool (fun index ->
              if Tracer.is_active tr then
                Tracer.span_at tr
                  ~args:[ ("index", string_of_int index) ]
                  "batch.queue_wait" ~ts:submitted
                  ~dur:(Clock.now () -. submitted);
              Tracer.span tr
                ~args:[ ("index", string_of_int index); ("line", string_of_int lineno) ]
                "batch.worker_execute"
                (fun () ->
                  match Json.parse line with
                  | exception Json.Parse_error msg -> malformed_result t ~index ~lineno msg
                  | json -> (
                      match Proto.request_of_json json with
                      | Error msg -> malformed_result t ~index ~lineno msg
                      | Ok Proto.Metrics -> metrics_result t ~index
                      | Ok (Proto.Upload _) ->
                          malformed_result t ~index ~lineno
                            "no spec store in batch mode (upload needs asim serve)"
                      | Ok (Proto.Run job) ->
                          Json.to_string (Proto.result_to_json ~index (run_job t job)))))
        end;
        pump ()
  in
  pump ();
  Pool.finish pool

let summary t ~wall_s = Metrics.summarize t.metrics ~cache:(Cache.stats t.cache) ~wall_s
