type source =
  | File of string
  | Inline of string
  | Example of string
  | Hash of string

type want =
  | Outputs
  | Memory
  | Trace
  | Events
  | Stats
  | Timing
  | Profile

type job = {
  id : string option;
  trace_id : string option;
  source : source;
  engine : Asim.engine;
  optimize : bool;
  opt : Asim.Opt.level option;
      (* middle-end level for this job; [None] defers to the session default *)
  cycles : int option;
  inputs : int list;
  want : want list;
  timeout_s : float option;
}

let want_of_string = function
  | "outputs" -> Some Outputs
  | "memory" -> Some Memory
  | "trace" -> Some Trace
  | "events" -> Some Events
  | "stats" -> Some Stats
  | "timing" -> Some Timing
  | "profile" -> Some Profile
  | _ -> None

let want_to_string = function
  | Outputs -> "outputs"
  | Memory -> "memory"
  | Trace -> "trace"
  | Events -> "events"
  | Stats -> "stats"
  | Timing -> "timing"
  | Profile -> "profile"

let known_fields =
  [ "id"; "trace_id"; "spec_file"; "spec"; "example"; "spec_hash"; "engine"; "optimize";
    "opt"; "cycles"; "inputs"; "want"; "timeout_s" ]

let is_md5_hex s =
  String.length s = 32
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

let ( let* ) = Result.bind

let field_opt json key decode ~expected =
  match Json.member key json with
  | None -> Ok None
  | Some v -> (
      match decode v with
      | Some x -> Ok (Some x)
      | None -> Error (Printf.sprintf "field %S must be %s" key expected))

type upload = { upload_id : string option; source_text : string }

type request =
  | Run of job
  | Metrics
  | Upload of upload

let job_of_json json =
  match json with
  | Json.Obj fields ->
      let* () =
        match List.find_opt (fun (k, _) -> not (List.mem k known_fields)) fields with
        | Some (k, _) -> Error (Printf.sprintf "unknown field %S" k)
        | None -> Ok ()
      in
      let* id = field_opt json "id" Json.to_string_opt ~expected:"a string" in
      let* trace_id = field_opt json "trace_id" Json.to_string_opt ~expected:"a string" in
      let* spec_file = field_opt json "spec_file" Json.to_string_opt ~expected:"a string" in
      let* inline = field_opt json "spec" Json.to_string_opt ~expected:"a string" in
      let* example = field_opt json "example" Json.to_string_opt ~expected:"a string" in
      let* hash = field_opt json "spec_hash" Json.to_string_opt ~expected:"a string" in
      let* hash =
        match hash with
        | None -> Ok None
        | Some h ->
            let h = String.lowercase_ascii h in
            if is_md5_hex h then Ok (Some h)
            else Error "field \"spec_hash\" must be a 32-character MD5 hex digest"
      in
      let* source =
        match (spec_file, inline, example, hash) with
        | Some p, None, None, None -> Ok (File p)
        | None, Some s, None, None -> Ok (Inline s)
        | None, None, Some e, None -> Ok (Example e)
        | None, None, None, Some h -> Ok (Hash h)
        | None, None, None, None ->
            Error "job needs one of \"spec_file\", \"spec\", \"example\" or \"spec_hash\""
        | _ ->
            Error
              "job must name exactly one of \"spec_file\", \"spec\", \"example\" or \
               \"spec_hash\""
      in
      let* engine =
        let* name = field_opt json "engine" Json.to_string_opt ~expected:"a string" in
        match name with
        | None -> Ok Asim.Compiled
        | Some name -> (
            match Asim.engine_of_string name with
            | Some e -> Ok e
            | None -> Error (Printf.sprintf "unknown engine %S" name))
      in
      let* optimize = field_opt json "optimize" Json.to_bool ~expected:"a boolean" in
      let optimize = Option.value optimize ~default:true in
      let* opt =
        field_opt json "opt"
          (fun v ->
            match Json.to_int v with
            | Some n -> Asim.Opt.level_of_string (string_of_int n)
            | None ->
                Option.bind (Json.to_string_opt v) Asim.Opt.level_of_string)
          ~expected:"an opt level (0, 1 or 2)"
      in
      let* cycles = field_opt json "cycles" Json.to_int ~expected:"an integer" in
      let* () =
        match cycles with
        | Some n when n < 0 -> Error "field \"cycles\" must be non-negative"
        | _ -> Ok ()
      in
      let* inputs =
        match Json.member "inputs" json with
        | None -> Ok []
        | Some v -> (
            match Json.to_list v with
            | None -> Error "field \"inputs\" must be a list of integers"
            | Some items ->
                let ints = List.filter_map Json.to_int items in
                if List.length ints = List.length items then Ok ints
                else Error "field \"inputs\" must be a list of integers")
      in
      let* want =
        match Json.member "want" json with
        | None -> Ok [ Outputs ]
        | Some v -> (
            match Json.to_list v with
            | None -> Error "field \"want\" must be a list of strings"
            | Some items ->
                List.fold_left
                  (fun acc item ->
                    let* acc = acc in
                    match Option.bind (Json.to_string_opt item) want_of_string with
                    | Some w -> Ok (w :: acc)
                    | None ->
                        Error
                          (Printf.sprintf "field \"want\" has an unknown entry %s"
                             (Json.to_string item)))
                  (Ok []) items
                |> Result.map List.rev)
      in
      let* timeout_s = field_opt json "timeout_s" Json.to_float ~expected:"a number" in
      let* () =
        match timeout_s with
        | Some s when s < 0.0 -> Error "field \"timeout_s\" must be non-negative"
        | _ -> Ok ()
      in
      Ok { id; trace_id; source; engine; optimize; opt; cycles; inputs; want; timeout_s }
  | _ -> Error "job must be a JSON object"

let request_of_json json =
  match Json.member "control" json with
  | Some v -> (
      match Json.to_string_opt v with
      | Some "metrics" -> (
          match json with
          | Json.Obj [ _ ] -> Ok Metrics
          | _ -> Error "a metrics control request carries no other fields")
      | Some "upload" -> (
          match json with
          | Json.Obj fields -> (
              let* () =
                match
                  List.find_opt
                    (fun (k, _) -> not (List.mem k [ "control"; "spec"; "id" ]))
                    fields
                with
                | Some (k, _) ->
                    Error (Printf.sprintf "unknown field %S in upload request" k)
                | None -> Ok ()
              in
              let* upload_id = field_opt json "id" Json.to_string_opt ~expected:"a string" in
              match Json.member "spec" json with
              | Some (Json.String source_text) -> Ok (Upload { upload_id; source_text })
              | Some _ -> Error "field \"spec\" must be a string"
              | None -> Error "an upload request needs a \"spec\" field")
          | _ -> Error "an upload request must be a JSON object")
      | Some other -> Error (Printf.sprintf "unknown control request %S" other)
      | None -> Error "field \"control\" must be a string")
  | None -> Result.map (fun j -> Run j) (job_of_json json)

let job_to_json job =
  let fields = ref [] in
  let add key value = fields := (key, value) :: !fields in
  Option.iter (fun s -> add "timeout_s" (Json.Float s)) job.timeout_s;
  add "want" (Json.List (List.map (fun w -> Json.String (want_to_string w)) job.want));
  if job.inputs <> [] then
    add "inputs" (Json.List (List.map (fun i -> Json.Int i) job.inputs));
  Option.iter (fun n -> add "cycles" (Json.Int n)) job.cycles;
  if not job.optimize then add "optimize" (Json.Bool false);
  Option.iter
    (fun l -> add "opt" (Json.String (Asim.Opt.level_to_string l)))
    job.opt;
  add "engine" (Json.String (Asim.engine_to_string job.engine));
  (match job.source with
  | File p -> add "spec_file" (Json.String p)
  | Inline s -> add "spec" (Json.String s)
  | Example e -> add "example" (Json.String e)
  | Hash h -> add "spec_hash" (Json.String h));
  Option.iter (fun i -> add "trace_id" (Json.String i)) job.trace_id;
  Option.iter (fun i -> add "id" (Json.String i)) job.id;
  Json.Obj !fields

(* --- results ---------------------------------------------------------------- *)

type status =
  | Ok_
  | Error_ of string
  | Timeout of int

type outcome = {
  job : job;
  status : status;
  cycles_run : int;
  outputs : (string * int) list;
  cells : (string * int list) list;
  trace : string list;
  events : string list;
  stats_json : Json.t option;
  profile_json : Json.t option;
  elapsed_s : float;
}

let status_class = function
  | Ok_ -> `Ok
  | Error_ _ -> `Error
  | Timeout _ -> `Timeout

let result_to_json ~index outcome =
  let job = outcome.job in
  let wanted w = List.mem w job.want in
  let fields = ref [] in
  let add key value = fields := (key, value) :: !fields in
  (* Built in reverse; [add] order below is the reverse of field order. *)
  if wanted Timing then add "elapsed_ms" (Json.Float (outcome.elapsed_s *. 1000.0));
  (match outcome.profile_json with
  | Some p when wanted Profile -> add "profile" p
  | _ -> ());
  (match outcome.stats_json with Some s when wanted Stats -> add "stats" s | _ -> ());
  if wanted Events then
    add "events" (Json.List (List.map (fun e -> Json.String e) outcome.events));
  if wanted Trace then
    add "trace" (Json.List (List.map (fun l -> Json.String l) outcome.trace));
  if wanted Memory && outcome.status = Ok_ then
    add "memory"
      (Json.Obj
         (List.map
            (fun (name, cells) ->
              (name, Json.List (List.map (fun c -> Json.Int c) cells)))
            outcome.cells));
  if wanted Outputs && outcome.status = Ok_ then
    add "outputs" (Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) outcome.outputs));
  (match outcome.status with
  | Ok_ -> ()
  | Error_ msg -> add "error" (Json.String msg)
  | Timeout done_ -> add "cycles_done" (Json.Int done_));
  add "cycles" (Json.Int outcome.cycles_run);
  add "status"
    (Json.String
       (match outcome.status with Ok_ -> "ok" | Error_ _ -> "error" | Timeout _ -> "timeout"));
  Option.iter (fun i -> add "id" (Json.String i)) job.id;
  add "index" (Json.Int index);
  Json.Obj !fields
