module Registry = Asim_obs.Registry

type t = {
  mutex : Mutex.t;
  registry : Registry.t;
  ok_c : Registry.counter;
  error_c : Registry.counter;
  timeout_c : Registry.counter;
  by_engine : (string, float list ref) Hashtbl.t;  (** elapsed seconds, unordered *)
  hists : (string, Registry.histogram) Hashtbl.t;
}

let status_counter registry status =
  Registry.counter registry ~help:"Finished jobs by status"
    ~labels:[ ("status", status) ]
    "asim_jobs_total"

let create () =
  let registry = Registry.create () in
  {
    mutex = Mutex.create ();
    registry;
    ok_c = status_counter registry "ok";
    error_c = status_counter registry "error";
    timeout_c = status_counter registry "timeout";
    by_engine = Hashtbl.create 4;
    hists = Hashtbl.create 4;
  }

let registry t = t.registry

let engine_hist t engine =
  match Hashtbl.find_opt t.hists engine with
  | Some h -> h
  | None ->
      let h =
        Registry.histogram t.registry ~help:"Job wall-clock duration"
          ~labels:[ ("engine", engine) ]
          "asim_job_duration_seconds"
      in
      Hashtbl.replace t.hists engine h;
      h

let record t ~engine ~status ~elapsed =
  Mutex.lock t.mutex;
  Registry.inc
    (match status with `Ok -> t.ok_c | `Error -> t.error_c | `Timeout -> t.timeout_c);
  Registry.observe (engine_hist t engine) elapsed;
  (match Hashtbl.find_opt t.by_engine engine with
  | Some cell -> cell := elapsed :: !cell
  | None -> Hashtbl.replace t.by_engine engine (ref [ elapsed ]));
  Mutex.unlock t.mutex

let set_cache t (cache : Cache.stats) =
  let g name help = Registry.gauge t.registry ~help name in
  Registry.set (g "asim_cache_hits" "Compiled-spec cache hits") (float_of_int cache.Cache.hits);
  Registry.set (g "asim_cache_misses" "Compiled-spec cache misses") (float_of_int cache.Cache.misses);
  Registry.set
    (g "asim_cache_evictions" "Compiled-spec cache evictions")
    (float_of_int cache.Cache.evictions);
  Registry.set (g "asim_cache_entries" "Compiled-spec cache live entries") (float_of_int cache.Cache.entries);
  Registry.set (g "asim_cache_capacity" "Compiled-spec cache capacity") (float_of_int cache.Cache.capacity);
  Registry.set (g "asim_cache_hit_ratio" "Compiled-spec cache hit ratio") (Cache.hit_rate cache)

type engine_latency = {
  engine : string;
  count : int;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

type summary = {
  jobs : int;
  ok : int;
  errors : int;
  timeouts : int;
  wall_s : float;
  jobs_per_sec : float;
  cache : Cache.stats;
  latencies : engine_latency list;
}

(* Nearest-rank percentile over a sorted array. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let count_of c = int_of_float (Registry.counter_value c)

let summarize t ~cache ~wall_s =
  Mutex.lock t.mutex;
  let latencies =
    Hashtbl.fold
      (fun engine cell acc ->
        let sorted = Array.of_list !cell in
        Array.sort compare sorted;
        let ms p = percentile sorted p *. 1000.0 in
        {
          engine;
          count = Array.length sorted;
          p50_ms = ms 50.0;
          p90_ms = ms 90.0;
          p99_ms = ms 99.0;
          max_ms = (if Array.length sorted = 0 then 0.0 else sorted.(Array.length sorted - 1) *. 1000.0);
        }
        :: acc)
      t.by_engine []
    |> List.sort (fun a b -> String.compare a.engine b.engine)
  in
  let ok = count_of t.ok_c and errors = count_of t.error_c and timeouts = count_of t.timeout_c in
  let jobs = ok + errors + timeouts in
  let jobs_per_sec =
    (* Guard the division: a sub-resolution wall clock (or a frozen mock
       clock) must not turn throughput into inf/nan. *)
    if Float.is_finite wall_s && wall_s > 0.0 then float_of_int jobs /. wall_s else 0.0
  in
  let s = { jobs; ok; errors; timeouts; wall_s; jobs_per_sec; cache; latencies } in
  Mutex.unlock t.mutex;
  set_cache t cache;
  s

let to_string s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "batch: %d jobs (%d ok, %d errors, %d timeouts) in %.3fs — %.1f jobs/sec\n"
       s.jobs s.ok s.errors s.timeouts s.wall_s s.jobs_per_sec);
  Buffer.add_string buf
    (Printf.sprintf "cache: %d hits, %d misses, %d evictions (%.1f%% hit rate, %d/%d entries)\n"
       s.cache.Cache.hits s.cache.Cache.misses s.cache.Cache.evictions
       (100.0 *. Cache.hit_rate s.cache)
       s.cache.Cache.entries s.cache.Cache.capacity);
  List.iter
    (fun l ->
      Buffer.add_string buf
        (Printf.sprintf
           "engine %-10s %5d jobs  p50 %8.2f ms  p90 %8.2f ms  p99 %8.2f ms  max %8.2f ms\n"
           l.engine l.count l.p50_ms l.p90_ms l.p99_ms l.max_ms))
    s.latencies;
  Buffer.contents buf

let to_json s =
  Json.Obj
    [
      ("jobs", Json.Int s.jobs);
      ("ok", Json.Int s.ok);
      ("errors", Json.Int s.errors);
      ("timeouts", Json.Int s.timeouts);
      ("wall_s", Json.Float s.wall_s);
      ("jobs_per_sec", Json.Float s.jobs_per_sec);
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Int s.cache.Cache.hits);
            ("misses", Json.Int s.cache.Cache.misses);
            ("evictions", Json.Int s.cache.Cache.evictions);
            ("hit_rate", Json.Float (Cache.hit_rate s.cache));
            ("entries", Json.Int s.cache.Cache.entries);
            ("capacity", Json.Int s.cache.Cache.capacity);
          ] );
      ( "engines",
        Json.List
          (List.map
             (fun l ->
               Json.Obj
                 [
                   ("engine", Json.String l.engine);
                   ("jobs", Json.Int l.count);
                   ("p50_ms", Json.Float l.p50_ms);
                   ("p90_ms", Json.Float l.p90_ms);
                   ("p99_ms", Json.Float l.p99_ms);
                   ("max_ms", Json.Float l.max_ms);
                 ])
             s.latencies) );
    ]
