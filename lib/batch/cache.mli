(** The compiled-spec cache: a thread-safe, single-flight LRU map from
    content-hash keys to prepared artifacts.

    "Single-flight" means concurrent requests for the same missing key
    block while exactly one of them computes the value — so a 64-job
    manifest over one spec compiles it once (1 miss, 63 hits) even when
    four domains race on a cold cache.

    Counters: a [find_or_compute] that finds a ready or in-flight entry is
    a hit; one that starts the compute is a miss; every entry dropped to
    make room is an eviction.  In-flight entries are never evicted. *)

type 'v t

val create : capacity:int -> 'v t
(** [capacity] is clamped to at least 1. *)

val find_or_compute : 'v t -> key:string -> (unit -> 'v) -> 'v
(** Return the cached value for [key], computing and inserting it on a
    miss.  If the compute raises, the exception propagates to the computing
    caller and to every waiter, and the entry is removed (a later call
    retries). *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

val stats : 'v t -> stats

val hit_rate : stats -> float
(** [hits / (hits + misses)], or 0 when empty. *)
