(** Job execution: resolve a spec, compile it through the cache, run it
    under a deadline, collect requested observables — and the JSONL drivers
    behind [asim batch] and [asim serve]. *)

type t
(** A batch session: one compiled-spec cache plus one metrics accumulator,
    shared by every worker domain. *)

val create :
  ?cache_capacity:int ->
  ?metrics:Metrics.t ->
  ?tracer:Asim_obs.Tracer.t ->
  ?force_want:Proto.want list ->
  ?opt:Asim.Opt.level ->
  unit ->
  t
(** [cache_capacity] defaults to 64 analyzed specs.  [metrics] lets several
    sessions share one accumulator — the serving layer gives every shard
    its own cache (and so its own [t]) while keeping one set of job
    counters and latency histograms.  [tracer] (default
    {!Asim_obs.Tracer.null}) receives spans for batch internals — queue
    wait, worker execute, cache lookup, emit — and for each pipeline stage
    of every job (parse, analyze, build, simulate).  [force_want] is
    unioned into every job's [want] list (how [asim batch --profile]
    profiles a whole manifest without editing it).  [opt] (default [O2]) is
    the session's middle-end level for jobs that don't name one in their
    ["opt"] field; jobs wanting raw outputs pin every component live so the
    middle-end cannot change what they observe. *)

val metrics : t -> Metrics.t
(** The session's metrics accumulator (the one passed to {!create}, or the
    private one it made). *)

val cache_stats : t -> Cache.stats
(** Live counters of this session's compiled-spec cache. *)

val cache_key :
  ?opt:Asim.Opt.level -> ?keep_all:bool -> engine:Asim.engine ->
  optimize:bool -> Asim_core.Spec.t -> string
(** The cache key: an MD5 content hash of the spec's canonical
    pretty-printed form, qualified by engine, optimization flag, middle-end
    level (default [O0]) and whether every component was pinned live
    (default [false]).  Canonicalizing first makes the key stable across
    formatting (any source that parses to the same spec shares an entry);
    the cached value is the post-middle-end analysis, so the last two
    qualifiers keep differently-optimized rewrites apart. *)

val stats_to_json : Asim.Stats.t -> Json.t
(** Machine statistics (cycles, per-memory access counters, total) as JSON
    — shared by batch results and [asim run --stats-json]. *)

val prof_to_json : ?source:string -> Asim.Prof.t -> Json.t
(** A finalized {!Asim.Prof} profile as JSON: run header, one object per
    component (slot, kind, level, source line, counters, cost model), the
    sampled per-level timings and the I/O wait totals.  This is the
    ["profile"] field of batch/serve result lines and the
    [asim profile --json] document (docs/profile.schema.json describes
    it).  [source] locates component definition lines. *)

val run_job : t -> Proto.job -> Proto.outcome
(** Execute one job.  Never raises: spec resolution failures, runtime
    errors and deadline expiry all come back as structured statuses.
    Timeouts are cooperative — the deadline is polled between simulation
    cycles, so it cannot interrupt spec parsing or compilation. *)

val prometheus : t -> string
(** The session's live metrics (jobs, latencies, cache) in Prometheus text
    exposition format.  Refreshes the cache gauges before rendering. *)

val process : t -> jobs:int -> next:(unit -> string option) -> emit:(string -> unit) -> int
(** Drive a JSONL stream: pull manifest lines from [next] until it returns
    [None], run them on a [jobs]-wide pool, and hand each rendered result
    line (no trailing newline) to [emit] in job order.  Blank lines are
    skipped; a malformed line yields an error result naming its 1-based
    line number while the rest of the stream still runs.  A
    [{"control":"metrics"}] line yields a result line carrying
    {!prometheus} output instead of a simulation.  Returns the number of
    result lines emitted. *)

val summary : t -> wall_s:float -> Metrics.summary
(** Metrics snapshot for the end-of-run report. *)
