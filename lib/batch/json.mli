(** A minimal JSON codec for the batch job protocol.

    The container carries no JSON library, so the protocol brings its own:
    a strict recursive-descent parser (full value, no trailing input) and a
    compact printer whose output is deterministic — object fields print in
    the order given, which is what lets batch results be compared byte for
    byte across scheduling orders. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Message includes the 1-based character offset of the failure. *)

val parse : string -> t
(** Parse one complete JSON value.  Raises {!Parse_error} on malformed
    input or trailing non-whitespace. *)

val to_string : t -> string
(** Compact rendering (no spaces, fields in given order). *)

(** {2 Accessors} — total functions returning [option]. *)

val member : string -> t -> t option
(** Field lookup; [None] for absent fields and non-objects. *)

val to_int : t -> int option
val to_float : t -> float option
(** [to_float] also accepts [Int]. *)

val to_string_opt : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
