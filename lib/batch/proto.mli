(** The JSONL job protocol: one job request per input line, one result per
    output line, results in job order.  The schema is documented in
    docs/batch.md; this module is its single point of truth in code.

    Determinism contract: every result field except ["elapsed_ms"] (only
    present when ["timing"] is requested) is a pure function of the job, so
    result lines are byte-identical across [--jobs] settings. *)

type source =
  | File of string  (** ["spec_file"]: path to a specification *)
  | Inline of string  (** ["spec"]: the specification source itself *)
  | Example of string  (** ["example"]: a built-in {!Asim.Specs} name *)
  | Hash of string
      (** ["spec_hash"]: the canonical-form MD5 of a spec previously
          uploaded to the serving layer's content-addressed store
          (lowercased on decode).  Only [asim serve] can resolve it;
          [asim batch] answers such jobs with a structured error. *)

type want =
  | Outputs  (** final value of every component *)
  | Memory  (** final memory images *)
  | Trace  (** per-cycle trace lines *)
  | Events  (** I/O events *)
  | Stats  (** cycle and memory-access statistics *)
  | Timing  (** wall-clock elapsed_ms (breaks byte-determinism) *)
  | Profile
      (** per-component profile of the simulated design (evaluation
          counts, dirty-skips, memory traffic, fault triggers, cost
          model).  Unsupported on the [native] engine — such jobs answer
          with a structured error.  The level timing fields inside the
          reply are wall-clock, so like [Timing] this breaks
          byte-determinism across runs. *)

type job = {
  id : string option;
  trace_id : string option;
      (** client-supplied correlation id; stamped (with [id]) onto every
          span the job emits — pipeline, batch, codegen, engine — so one
          Perfetto filter isolates a job end to end *)
  source : source;
  engine : Asim.engine;  (** default [Compiled] *)
  optimize : bool;  (** default [true]; §4.4 optimizations *)
  opt : Asim.Opt.level option;
      (** the middle-end level for this job (field ["opt"], accepting 0/1/2
          as number or string); [None] defers to the session default
          ({!Runner.create}'s [?opt]) *)
  cycles : int option;  (** default: the spec's [= N] directive, else 0 *)
  inputs : int list;  (** feed served to input (op 2) memories *)
  want : want list;  (** default [[Outputs]] *)
  timeout_s : float option;  (** per-job wall-clock budget *)
}

val job_of_json : Json.t -> (job, string) result
(** Strict: unknown fields, missing/duplicate spec sources, and ill-typed
    values are errors. *)

type upload = { upload_id : string option; source_text : string }

type request =
  | Run of job
  | Metrics
      (** [{"control":"metrics"}]: answer with the session's live metrics in
          Prometheus text format instead of running a simulation. *)
  | Upload of upload
      (** [{"control":"upload","spec":"…"}]: canonicalize the spec source
          and remember it in the content-addressed spec store, answering
          with its MD5 digest; later jobs may submit by ["spec_hash"]. *)

val request_of_json : Json.t -> (request, string) result
(** A line with a ["control"] field is a control request; anything else is
    decoded as a job via {!job_of_json}. *)

val is_md5_hex : string -> bool
(** 32 chars of lowercase [0-9a-f] — the shape every spec digest has. *)

val job_to_json : job -> Json.t

type status =
  | Ok_
  | Error_ of string
  | Timeout of int  (** cycles completed when the deadline fired *)

type outcome = {
  job : job;
  status : status;
  cycles_run : int;
  outputs : (string * int) list;
  cells : (string * int list) list;
  trace : string list;
  events : string list;
  stats_json : Json.t option;
  profile_json : Json.t option;
  elapsed_s : float;
}

val result_to_json : index:int -> outcome -> Json.t
(** The result line for job [index], fields in fixed order. *)

val status_class : status -> [ `Ok | `Error | `Timeout ]
