(** A work queue and worker pool on OCaml 5 domains, with deterministic
    in-order result emission.

    Jobs are numbered by submission order.  Workers complete them in any
    order, but [emit] is always called with consecutive indices 0, 1, 2, …
    and never concurrently, so output streamed through it is byte-identical
    regardless of scheduling — the property the batch protocol and the
    parallel fuzz driver both rely on.

    Crash isolation: a job that raises yields [on_crash index exn] as its
    result instead of killing its worker or the pool.

    With [jobs <= 1] no domains are spawned at all: [submit] runs the job
    and emits synchronously in the calling domain, which keeps single-job
    runs exactly as deterministic as a plain loop. *)

type 'r t

val create : jobs:int -> on_crash:(int -> exn -> 'r) -> emit:(int -> 'r -> unit) -> 'r t
(** [jobs] is clamped to at least 1.  [emit] must not raise; if it does the
    exception is swallowed (the pool cannot deliver it anywhere useful). *)

val submit : 'r t -> (int -> 'r) -> unit
(** Enqueue the next job; it is applied to its own index (the number of
    prior submissions) when a worker picks it up. *)

val finish : 'r t -> int
(** Close the queue, wait for every submitted job to complete and be
    emitted, and join the workers.  Returns the number of jobs processed.
    The pool must not be used afterwards. *)

val run_list : jobs:int -> on_crash:(int -> exn -> 'r) -> (int -> 'r) list -> 'r list
(** Convenience: run a fixed job list, returning results in job order. *)
