type 'r shared = {
  mutex : Mutex.t;
  work_available : Condition.t;  (** signalled on submit and on close *)
  all_emitted : Condition.t;  (** signalled when next_to_emit advances *)
  queue : (int * (int -> 'r)) Queue.t;
  mutable closed : bool;
  pending : (int, 'r) Hashtbl.t;  (** completed but not yet emitted *)
  mutable next_to_emit : int;
  mutable submitted : int;
  on_crash : int -> exn -> 'r;
  emit : int -> 'r -> unit;
}

type 'r t =
  | Sync of {
      mutable count : int;
      on_crash : int -> exn -> 'r;
      emit : int -> 'r -> unit;
    }
  | Parallel of { shared : 'r shared; workers : unit Domain.t array }

let guarded_emit emit index r = try emit index r with _ -> ()

(* Emit every consecutive completed result.  Called with [s.mutex] held;
   emission happens under the lock, which serializes it across workers. *)
let drain s =
  let advanced = ref false in
  let rec go () =
    match Hashtbl.find_opt s.pending s.next_to_emit with
    | None -> ()
    | Some r ->
        Hashtbl.remove s.pending s.next_to_emit;
        guarded_emit s.emit s.next_to_emit r;
        s.next_to_emit <- s.next_to_emit + 1;
        advanced := true;
        go ()
  in
  go ();
  if !advanced then Condition.broadcast s.all_emitted

let worker_loop s () =
  let rec next () =
    Mutex.lock s.mutex;
    let rec wait () =
      if not (Queue.is_empty s.queue) then Some (Queue.pop s.queue)
      else if s.closed then None
      else begin
        Condition.wait s.work_available s.mutex;
        wait ()
      end
    in
    let job = wait () in
    Mutex.unlock s.mutex;
    match job with
    | None -> ()
    | Some (index, thunk) ->
        let result = try thunk index with exn -> s.on_crash index exn in
        Mutex.lock s.mutex;
        Hashtbl.replace s.pending index result;
        drain s;
        Mutex.unlock s.mutex;
        next ()
  in
  next ()

let create ~jobs ~on_crash ~emit =
  if jobs <= 1 then Sync { count = 0; on_crash; emit }
  else begin
    let shared =
      {
        mutex = Mutex.create ();
        work_available = Condition.create ();
        all_emitted = Condition.create ();
        queue = Queue.create ();
        closed = false;
        pending = Hashtbl.create 64;
        next_to_emit = 0;
        submitted = 0;
        on_crash;
        emit;
      }
    in
    let workers = Array.init jobs (fun _ -> Domain.spawn (worker_loop shared)) in
    Parallel { shared; workers }
  end

let submit t thunk =
  match t with
  | Sync s ->
      let index = s.count in
      s.count <- index + 1;
      let result = try thunk index with exn -> s.on_crash index exn in
      guarded_emit s.emit index result
  | Parallel { shared = s; _ } ->
      Mutex.lock s.mutex;
      if s.closed then begin
        Mutex.unlock s.mutex;
        invalid_arg "Pool.submit: pool already finished"
      end;
      Queue.push (s.submitted, thunk) s.queue;
      s.submitted <- s.submitted + 1;
      Condition.signal s.work_available;
      Mutex.unlock s.mutex

let finish t =
  match t with
  | Sync s -> s.count
  | Parallel { shared = s; workers } ->
      Mutex.lock s.mutex;
      s.closed <- true;
      Condition.broadcast s.work_available;
      while s.next_to_emit < s.submitted do
        Condition.wait s.all_emitted s.mutex
      done;
      Mutex.unlock s.mutex;
      Array.iter Domain.join workers;
      s.submitted

let run_list ~jobs ~on_crash thunks =
  let results = ref [] in
  let pool = create ~jobs ~on_crash ~emit:(fun _ r -> results := r :: !results) in
  List.iter (fun thunk -> submit pool thunk) thunks;
  let _ = finish pool in
  List.rev !results
