type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- parsing --------------------------------------------------------------- *)

type state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg (st.pos + 1)))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

(* Encode a Unicode scalar as UTF-8 bytes. *)
let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string_body st =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
                let hex = String.sub st.src st.pos 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with Failure _ -> fail st "bad \\u escape"
                in
                st.pos <- st.pos + 4;
                add_utf8 buf code
            | _ -> fail st "bad escape");
            go ())
    | Some c when Char.code c < 0x20 -> fail st "control character in string"
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_float = ref false in
  let rec go () =
    match peek st with
    | Some ('0' .. '9' | '-' | '+') ->
        advance st;
        go ()
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st (Printf.sprintf "bad number %S" text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> fail st (Printf.sprintf "bad number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec fields_loop () =
          skip_ws st;
          expect st '"';
          let key = parse_string_body st in
          skip_ws st;
          expect st ':';
          let value = parse_value st in
          fields := (key, value) :: !fields;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              fields_loop ()
          | Some '}' -> advance st
          | _ -> fail st "expected ',' or '}'"
        in
        fields_loop ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let items = ref [] in
        let rec items_loop () =
          let value = parse_value st in
          items := value :: !items;
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items_loop ()
          | Some ']' -> advance st
          | _ -> fail st "expected ',' or ']'"
        in
        items_loop ();
        List (List.rev !items)
      end
  | Some '"' ->
      advance st;
      String (parse_string_body st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)

let parse src =
  let st = { src; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  (match peek st with
  | None -> ()
  | Some c -> fail st (Printf.sprintf "trailing input starting with '%c'" c));
  v

(* --- printing -------------------------------------------------------------- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string v =
  let buf = Buffer.create 256 in
  let rec emit = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        (* %.17g is lossless for doubles; trim to a deterministic short form. *)
        let s = Printf.sprintf "%.17g" f in
        let short = Printf.sprintf "%.12g" f in
        Buffer.add_string buf (if float_of_string short = f then short else s)
    | String s -> escape_into buf s
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            emit item)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (key, value) ->
            if i > 0 then Buffer.add_char buf ',';
            escape_into buf key;
            Buffer.add_char buf ':';
            emit value)
          fields;
        Buffer.add_char buf '}'
  in
  emit v;
  Buffer.contents buf

(* --- accessors ------------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None

let to_string_opt = function String s -> Some s | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_list = function List items -> Some items | _ -> None
