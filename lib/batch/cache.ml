type 'v slot =
  | Pending
  | Ready of 'v
  | Failed of exn

type 'v entry = { mutable slot : 'v slot; mutable last_use : int }

type 'v t = {
  mutex : Mutex.t;
  settled : Condition.t;  (** signalled when a Pending slot resolves *)
  table : (string, 'v entry) Hashtbl.t;
  capacity : int;
  mutable tick : int;  (** monotonic use counter driving LRU order *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  {
    mutex = Mutex.create ();
    settled = Condition.create ();
    table = Hashtbl.create 16;
    capacity = max 1 capacity;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let touch t entry =
  t.tick <- t.tick + 1;
  entry.last_use <- t.tick

(* Evict least-recently-used ready entries until there is room.  Pending
   entries are skipped: their computer holds no lock while working, so the
   entry is the only rendezvous point for its waiters. *)
let make_room t =
  while
    Hashtbl.length t.table > t.capacity
    &&
    let victim = ref None in
    Hashtbl.iter
      (fun key entry ->
        match entry.slot with
        | Ready _ -> (
            match !victim with
            | Some (_, best) when best.last_use <= entry.last_use -> ()
            | _ -> victim := Some (key, entry))
        | Pending | Failed _ -> ())
      t.table;
    match !victim with
    | None -> false
    | Some (key, _) ->
        Hashtbl.remove t.table key;
        t.evictions <- t.evictions + 1;
        true
  do
    ()
  done

let find_or_compute t ~key compute =
  Mutex.lock t.mutex;
  let rec obtain () =
    match Hashtbl.find_opt t.table key with
    | Some entry -> (
        match entry.slot with
        | Ready v ->
            t.hits <- t.hits + 1;
            touch t entry;
            Mutex.unlock t.mutex;
            v
        | Pending ->
            t.hits <- t.hits + 1;
            let rec await () =
              match entry.slot with
              | Pending ->
                  Condition.wait t.settled t.mutex;
                  await ()
              | Ready v ->
                  touch t entry;
                  Mutex.unlock t.mutex;
                  v
              | Failed exn ->
                  Mutex.unlock t.mutex;
                  raise exn
            in
            await ()
        | Failed _ ->
            (* A previous compute failed and its waiters have been notified;
               drop the tombstone and retry from scratch. *)
            Hashtbl.remove t.table key;
            obtain ())
    | None ->
        t.misses <- t.misses + 1;
        let entry = { slot = Pending; last_use = 0 } in
        touch t entry;
        Hashtbl.replace t.table key entry;
        Mutex.unlock t.mutex;
        let outcome = try Ok (compute ()) with exn -> Error exn in
        Mutex.lock t.mutex;
        (match outcome with
        | Ok v ->
            entry.slot <- Ready v;
            touch t entry;
            make_room t
        | Error exn ->
            (* Waiters hold the entry itself, so they still observe [Failed]
               after it leaves the table; fresh lookups retry from scratch. *)
            entry.slot <- Failed exn;
            (match Hashtbl.find_opt t.table key with
            | Some e when e == entry -> Hashtbl.remove t.table key
            | _ -> ()));
        Condition.broadcast t.settled;
        Mutex.unlock t.mutex;
        (match outcome with Ok v -> v | Error exn -> raise exn)
  in
  obtain ()

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
      entries = Hashtbl.length t.table;
      capacity = t.capacity;
    }
  in
  Mutex.unlock t.mutex;
  s

let hit_rate s =
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total
