open Asim_core

let dependencies spec (c : Component.t) =
  let comb = Hashtbl.create 64 in
  List.iter
    (fun (c : Component.t) ->
      if not (Component.is_memory c) then Hashtbl.replace comb c.name ())
    spec.Spec.components;
  let inputs = Component.combinational_inputs c in
  let referenced = List.concat_map Expr.names inputs in
  let seen = Hashtbl.create 8 in
  List.filter
    (fun name ->
      if Hashtbl.mem seen name then false
      else begin
        Hashtbl.add seen name ();
        Hashtbl.mem comb name
      end)
    referenced

let order spec =
  let comb =
    List.filter (fun c -> not (Component.is_memory c)) spec.Spec.components
    |> Array.of_list
  in
  let n = Array.length comb in
  let index = Hashtbl.create (max 16 n) in
  Array.iteri (fun i (c : Component.t) -> Hashtbl.replace index c.name i) comb;
  (* Combinational-only dependency edges, by declaration index.  The
     de-duplication mirrors [dependencies] but resolves names through one
     shared table instead of a per-reference list scan (the former
     list-based lookup went quadratic on generated 10k-component specs). *)
  let deps_of i =
    let seen = Hashtbl.create 8 in
    List.filter_map
      (fun name ->
        if Hashtbl.mem seen name then None
        else begin
          Hashtbl.add seen name ();
          Hashtbl.find_opt index name
        end)
      (List.concat_map Expr.names (Component.combinational_inputs comb.(i)))
  in
  let dependents = Array.make (max 1 n) [] in
  let indegree = Array.make (max 1 n) 0 in
  for i = 0 to n - 1 do
    List.iter
      (fun d ->
        dependents.(d) <- i :: dependents.(d);
        indegree.(i) <- indegree.(i) + 1)
      (deps_of i)
  done;
  (* Kahn's algorithm in rounds: each round places every ready component in
     declaration order, so the result is deterministic and close to the
     source (identical to the original list-partition formulation, minus
     its quadratic rescans). *)
  let round = ref [] in
  for i = n - 1 downto 0 do
    if indegree.(i) = 0 then round := i :: !round
  done;
  let placed = ref [] in
  let nplaced = ref 0 in
  while !round <> [] do
    let next = ref [] in
    List.iter
      (fun i ->
        placed := comb.(i) :: !placed;
        incr nplaced;
        List.iter
          (fun j ->
            indegree.(j) <- indegree.(j) - 1;
            if indegree.(j) = 0 then next := j :: !next)
          dependents.(i))
      !round;
    round := List.sort compare !next
  done;
  if !nplaced < n then begin
    (* Every remaining component is on or behind a cycle; report the first
       two (in declaration order) for a diagnostic in the paper's style. *)
    let blocked = ref [] in
    for i = n - 1 downto 0 do
      if indegree.(i) > 0 then blocked := comb.(i).Component.name :: !blocked
    done;
    let names = !blocked in
    let a = List.nth names 0 in
    let b = if List.length names > 1 then List.nth names 1 else a in
    Error.failf ~component:a Error.Analysis
      "Circular dependency with %s and/or %s." a b
  end;
  List.rev !placed
