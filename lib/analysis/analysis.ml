open Asim_core

type trace_condition =
  | Trace_never
  | Trace_always
  | Trace_runtime

type t = {
  spec : Spec.t;
  order : Component.t list;
  memories : Component.t list;
  warnings : Error.warning list;
}

(* Name-existence checks resolve through one hash table per pass instead of
   scanning the component list per reference — [Spec.find] is a linear
   search, which made these passes quadratic on generated 10k-component
   specs. *)
let component_names (spec : Spec.t) =
  let table = Hashtbl.create (max 16 (List.length spec.components)) in
  List.iter
    (fun (c : Component.t) -> Hashtbl.replace table c.name ())
    spec.components;
  table

let check_references (spec : Spec.t) =
  let defined = component_names spec in
  List.iter
    (fun (c : Component.t) ->
      List.iter
        (fun e ->
          List.iter
            (fun name ->
              if not (Hashtbl.mem defined name) then
                Error.failf ~component:c.name Error.Analysis
                  "Component <%s> not found." name)
            (Expr.names e))
        (Component.inputs c))
    spec.components

let declaration_warnings (spec : Spec.t) =
  let defined_names = component_names spec in
  let defined name = Hashtbl.mem defined_names name in
  let declared_names = Hashtbl.create (max 16 (List.length spec.decls)) in
  List.iter
    (fun (d : Spec.decl) -> Hashtbl.replace declared_names d.name ())
    spec.decls;
  let declared name = Hashtbl.mem declared_names name in
  let not_defined =
    List.filter_map
      (fun (d : Spec.decl) ->
        if defined d.name then None else Some (Error.Declared_not_defined d.name))
      spec.decls
  in
  let not_declared =
    List.filter_map
      (fun (c : Component.t) ->
        if declared c.name then None else Some (Error.Defined_not_declared c.name))
      spec.components
  in
  not_defined @ not_declared

(* A memory's data expression is evaluated while earlier-declared memories
   have already latched their new values (§4.3's temporaries are updated in
   declaration order).  Reading such a memory sees this cycle's value, not
   last cycle's — legal, but almost always a surprise. *)
let update_order_warnings memories =
  let rec go earlier acc = function
    | [] -> List.rev acc
    | (c : Component.t) :: rest ->
        let acc =
          match c.kind with
          | Component.Memory { data; _ } ->
              List.fold_left
                (fun acc name ->
                  if List.mem name earlier then
                    Error.Memory_update_order
                      { reader = c.name; written_before = name }
                    :: acc
                  else acc)
                acc (Expr.names data)
          | Component.Alu _ | Component.Selector _ -> acc
        in
        go (c.name :: earlier) acc rest
  in
  go [] [] memories

let analyze spec =
  Spec.validate spec;
  check_references spec;
  let order = Depgraph.order spec in
  let memories = List.filter Component.is_memory spec.Spec.components in
  let warnings = declaration_warnings spec @ update_order_warnings memories in
  { spec; order; memories; warnings }

let trace_condition ~const_test ~min_width (m : Component.memory) =
  match Expr.const_value m.op with
  | Some v -> if const_test v then Trace_always else Trace_never
  | None -> if Expr.width m.op >= min_width then Trace_runtime else Trace_never

let write_trace_condition m =
  trace_condition ~const_test:(fun v -> Component.traces_writes v) ~min_width:3 m

let read_trace_condition m =
  trace_condition ~const_test:(fun v -> Component.traces_reads v) ~min_width:4 m

type lint =
  | Selector_possible_overrun of { selector : string; cases : int; select_width : int }
  | Address_possible_overrun of { memory : string; cells : int; addr_width : int }

let lints t =
  let env = Width.infer t.spec in
  List.filter_map
    (fun (c : Component.t) ->
      match c.kind with
      | Component.Alu _ -> None
      | Component.Selector { select; cases } -> (
          let n = Array.length cases in
          match Expr.const_value select with
          | Some v when v >= 0 && v < n -> None
          | _ ->
              let w = Width.expr_width env select in
              if w < Bits.word_bits && 1 lsl w <= n then None
              else
                Some
                  (Selector_possible_overrun
                     { selector = c.name; cases = n; select_width = w }))
      | Component.Memory { addr; cells; _ } -> (
          match Expr.const_value addr with
          | Some v when v >= 0 && v < cells -> None
          | _ ->
              let w = Width.expr_width env addr in
              if w < Bits.word_bits && 1 lsl w <= cells then None
              else
                Some
                  (Address_possible_overrun
                     { memory = c.name; cells; addr_width = w })))
    t.spec.Spec.components

let lint_to_string = function
  | Selector_possible_overrun { selector; cases; select_width } ->
      Printf.sprintf
        "Lint: selector %s has %d values but its select expression is %d bits \
         wide; out-of-range values are a runtime error."
        selector cases select_width
  | Address_possible_overrun { memory; cells; addr_width } ->
      Printf.sprintf
        "Lint: memory %s has %d cells but its address expression is %d bits \
         wide; out-of-range addresses are a runtime error."
        memory cells addr_width

let memory_output_used t name =
  List.mem name (Spec.traced_names t.spec)
  || List.exists
       (fun (c : Component.t) ->
         List.exists (fun e -> List.mem name (Expr.names e)) (Component.inputs c))
       t.spec.Spec.components
  ||
  (* read/write trace lines print the temporary *)
  match Spec.find t.spec name with
  | Some { Component.kind = Component.Memory m; _ } ->
      write_trace_condition m <> Trace_never || read_trace_condition m <> Trace_never
  | Some _ | None -> false

let memory_io_possible (m : Component.memory) =
  match Expr.const_value m.op with
  | Some v -> v land 3 >= 2
  | None ->
      (* a single-bit operation can only read or write *)
      Expr.width m.op >= 2
