open Asim_core

type env = (string * int) list

let lookup env name =
  match List.assoc_opt name env with Some w -> w | None -> Bits.word_bits

let cap w = max 1 (min Bits.word_bits w)

(* The width rules are written against an abstract [look]up so the public
   assoc-list [env] API and the fixpoint's internal hash table share one
   implementation (the assoc-list lookup inside the fixpoint was quadratic
   on generated 10k-component specs). *)
let atom_width_with look atom =
  match Expr.atom_width atom with
  | Some w -> max w 0
  | None -> (
      match atom with
      | Expr.Ref { name; _ } -> look name
      | Expr.Const { number; _ } -> Bits.width_needed (Number.value number)
      | Expr.Bitstring _ -> assert false)

let expr_width_with look atoms =
  cap (List.fold_left (fun acc atom -> acc + atom_width_with look atom) 0 atoms)

let alu_width_with look ({ fn; left; right } : Component.alu) =
  let l = expr_width_with look left and r = expr_width_with look right in
  match Expr.const_value fn with
  | None ->
      (* A runtime-selected function can be NOT (mask - left), which fills
         the whole word regardless of operand widths. *)
      Bits.word_bits
  | Some code -> (
      match Component.alu_function_of_code code with
      | Component.Fn_zero | Component.Fn_unused -> 1
      | Component.Fn_right -> r
      | Component.Fn_left -> l
      | Component.Fn_not -> Bits.word_bits
      | Component.Fn_add -> cap (max l r + 1)
      | Component.Fn_sub -> Bits.word_bits (* may go negative *)
      | Component.Fn_shift_left -> Bits.word_bits
      | Component.Fn_mul -> cap (l + r)
      | Component.Fn_and -> min l r
      | Component.Fn_or | Component.Fn_xor -> max l r
      | Component.Fn_eq | Component.Fn_lt -> 1)

let component_width_with look (c : Component.t) =
  match c.kind with
  | Component.Alu alu -> alu_width_with look alu
  | Component.Selector { cases; _ } ->
      Array.fold_left (fun acc case -> max acc (expr_width_with look case)) 1 cases
  | Component.Memory { data; init; op; _ } ->
      (* A memory that can perform input latches values of any width. *)
      let input_possible =
        match Expr.const_value op with
        | Some v -> v land 3 = 2
        | None -> expr_width_with look op >= 2
      in
      if input_possible then Bits.word_bits
      else
        let from_init =
          match init with
          | None -> 1
          | Some values ->
              Array.fold_left
                (fun acc v -> max acc (Bits.width_needed (abs v)))
                1 values
        in
        max (expr_width_with look data) from_init

let expr_width env atoms = expr_width_with (lookup env) atoms

let component_width env c = component_width_with (lookup env) c

let infer (spec : Spec.t) =
  let components = spec.components in
  let table = Hashtbl.create (max 16 (List.length components)) in
  (* Start from the narrowest estimate and widen until stable; widths are
     monotone in the environment and bounded by the word size, so the
     fixpoint is reached after at most [word_bits * n] in-place sweeps (in
     practice: the longest reference chain). *)
  List.iter (fun (c : Component.t) -> Hashtbl.replace table c.name 1) components;
  let look name =
    match Hashtbl.find_opt table name with
    | Some w -> w
    | None -> Bits.word_bits
  in
  let fuel = ref ((Bits.word_bits * List.length components) + 8) in
  let changed = ref true in
  while !changed && !fuel > 0 do
    changed := false;
    decr fuel;
    List.iter
      (fun (c : Component.t) ->
        let w = component_width_with look c in
        if w <> look c.name then begin
          Hashtbl.replace table c.name w;
          changed := true
        end)
      components
  done;
  List.map (fun (c : Component.t) -> (c.name, look c.name)) components
