open Asim_core
open Asim_sim

type schedule = Activity | Full

let schedule_to_string = function Activity -> "activity" | Full -> "full"

(* --- the instruction set ------------------------------------------------ *)
(* A flat program is one int array: an opcode word followed by its operands
   inline.  Evaluation threads three registers through a tail-recursive
   dispatch ([acc] — the running sum of the current expression, [tmp] — the
   saved left operand, [tmp2] — the saved ALU function code), so an
   expression block is

     CONST k; <one term op per reference>; ...

   leaving the expression value in [acc], and a component block ends in RET
   (or jumps through SEL into a case block that does).  Every name, bit
   field and width is already an index, mask or shift count. *)

let op_ret = 0 (* -> acc *)
let op_const = 1 (* v                acc <- v *)
let op_term = 2 (* src mask          acc += vals.(src) land mask *)
let op_term_lsl = 3 (* src mask s    acc += (vals.(src) land mask) lsl s *)
let op_term_lsr = 4 (* src mask s    acc += (vals.(src) land mask) lsr s *)
let op_whole = 5 (* src              acc += vals.(src) *)
let op_whole_lsl = 6 (* src s        acc += vals.(src) lsl s *)
let op_save = 7 (* tmp <- acc *)
let op_save2 = 8 (* tmp2 <- acc *)
let op_not = 9 (* acc <- mask - acc *)
let op_add = 10 (* acc <- tmp + acc *)
let op_sub = 11 (* acc <- tmp - acc *)
let op_shl = 12 (* acc <- shift_left_masked tmp acc *)
let op_mul = 13 (* acc <- tmp * acc *)
let op_and = 14 (* acc <- tmp land acc *)
let op_or = 15 (* acc <- tmp + acc - (tmp land acc) *)
let op_xor = 16 (* acc <- tmp + acc - 2*(tmp land acc) *)
let op_eq = 17 (* acc <- tmp = acc *)
let op_lt = 18 (* acc <- tmp < acc *)
let op_dyn = 19 (* acc <- dologic tmp2 tmp acc *)
let op_sel = 20 (* comp_id ncases pc0 .. pc_{n-1}; jump on acc *)

type emitter = { mutable buf : int array; mutable len : int }

let emitter () = { buf = Array.make 256 0; len = 0 }

let emit e v =
  (if e.len = Array.length e.buf then (
     let bigger = Array.make (2 * Array.length e.buf) 0 in
     Array.blit e.buf 0 bigger 0 e.len;
     e.buf <- bigger));
  e.buf.(e.len) <- v;
  e.len <- e.len + 1

(* --- expression flattening ---------------------------------------------- *)

let component_id ids name =
  match Hashtbl.find_opt ids name with
  | Some id -> id
  | None -> Error.failf Error.Analysis "Component <%s> not found." name

(* One reference atom, placed with its least-significant bit at the shift.
   [t_mask = -1] encodes a whole-word reference (no masking); a negative
   [t_shift] means shift right by [-t_shift]. *)
type term = { t_src : int; t_mask : int; t_shift : int }

(* Mirror of [Asim_compile.compile_atom]'s width accounting: the constant
   part folds into one int, every reference becomes a (src, mask, shift)
   term; the expression value is [const + sum of terms]. *)
let flatten ids (expr : Expr.t) =
  let const = ref 0 and terms = ref [] in
  let place numbits atom =
    match atom with
    | Expr.Const { number; width } -> (
        let v = Number.value number in
        match width with
        | None ->
            const := !const + (v lsl numbits);
            Bits.word_bits
        | Some w ->
            let w = Number.value w in
            const := !const + ((v land Bits.ones w) lsl numbits);
            numbits + w)
    | Expr.Bitstring s ->
        let v =
          String.fold_left (fun acc c -> (acc * 2) + if c = '1' then 1 else 0) 0 s
        in
        const := !const + (v lsl numbits);
        numbits + String.length s
    | Expr.Ref { name; field } -> (
        let src = component_id ids name in
        match field with
        | Expr.Whole ->
            terms := { t_src = src; t_mask = -1; t_shift = numbits } :: !terms;
            Bits.word_bits
        | Expr.Bit fnum ->
            let lo = Number.value fnum in
            let mask = Bits.field_mask ~lo ~hi:lo in
            terms := { t_src = src; t_mask = mask; t_shift = numbits - lo } :: !terms;
            numbits + 1
        | Expr.Range (fnum, tnum) ->
            let lo = Number.value fnum and hi = Number.value tnum in
            let mask = Bits.field_mask ~lo ~hi in
            terms := { t_src = src; t_mask = mask; t_shift = numbits - lo } :: !terms;
            numbits + (hi - lo + 1))
  in
  let rec go numbits = function
    | [] -> ()
    | atom :: rest -> go (place numbits atom) rest
  in
  go 0 (List.rev expr);
  (!const, List.rev !terms)

(* Peephole: fuse adjacent term loads of the same source with the same
   placement shift and disjoint masks into one masked load.  The classic
   producer is a concatenation reassembling neighboring fields of one
   register ([x<7:4> & x<3:0>]): both atoms land at the same shift with
   disjoint masks, so [(v land m1) <<s + (v land m2) <<s] equals
   [(v land (m1 lor m2)) <<s] — for a left shift because the sum of disjoint
   parts is their union, and for a right shift because disjointness survives
   the shift, so no carries and no truncated cross-talk in either direction.
   Whole-word references (mask -1) never fuse: their implicit mask is not
   disjoint from anything. *)
let fuse_terms terms =
  let rec go = function
    | ({ t_src = s1; t_mask = m1; t_shift = sh1 } as a)
      :: ({ t_src = s2; t_mask = m2; t_shift = sh2 } :: rest as tail) ->
        if s1 = s2 && sh1 = sh2 && m1 >= 0 && m2 >= 0 && m1 land m2 = 0 then
          go ({ a with t_mask = m1 lor m2 } :: rest)
        else a :: go tail
    | terms -> terms
  in
  go terms

(* Emit a flattened expression; the block leaves its value in [acc].  Every
   referenced slot is appended to [refs] (the dependency edges the activity
   scheduler wires up). *)
let emit_flat ?(peephole = true) e refs (const, terms) =
  let terms = if peephole then fuse_terms terms else terms in
  emit e op_const;
  emit e const;
  List.iter
    (fun { t_src; t_mask; t_shift } ->
      refs := t_src :: !refs;
      if t_mask < 0 then
        if t_shift = 0 then (
          emit e op_whole;
          emit e t_src)
        else (
          emit e op_whole_lsl;
          emit e t_src;
          emit e t_shift)
      else if t_shift = 0 then (
        emit e op_term;
        emit e t_src;
        emit e t_mask)
      else if t_shift > 0 then (
        emit e op_term_lsl;
        emit e t_src;
        emit e t_mask;
        emit e t_shift)
      else (
        emit e op_term_lsr;
        emit e t_src;
        emit e t_mask;
        emit e (-t_shift)))
    terms

let emit_expr ?peephole e ids refs expr =
  emit_flat ?peephole e refs (flatten ids expr)

(* --- component blocks --------------------------------------------------- *)

let emit_alu ?peephole e ids refs ({ fn; left; right } : Component.alu) =
  (* Both operands are flattened unconditionally so missing-name errors
     surface at compile time exactly as in [Asim_compile]; only the
     operands an ALU function actually consumes are emitted (and hence
     scheduled on). *)
  let fl = flatten ids left and fr = flatten ids right in
  let use flat = emit_flat ?peephole e refs flat in
  let binary op =
    use fl;
    emit e op_save;
    use fr;
    emit e op;
    emit e op_ret
  in
  match flatten ids fn with
  | code, [] -> (
      (* §4.4: constant function — specialize the operation inline. *)
      match Component.alu_function_of_code code with
      | Component.Fn_zero | Component.Fn_unused ->
          emit e op_const;
          emit e 0;
          emit e op_ret
      | Component.Fn_right ->
          use fr;
          emit e op_ret
      | Component.Fn_left ->
          use fl;
          emit e op_ret
      | Component.Fn_not ->
          use fl;
          emit e op_not;
          emit e op_ret
      | Component.Fn_add -> binary op_add
      | Component.Fn_sub -> binary op_sub
      | Component.Fn_shift_left -> binary op_shl
      | Component.Fn_mul -> binary op_mul
      | Component.Fn_and -> binary op_and
      | Component.Fn_or -> binary op_or
      | Component.Fn_xor -> binary op_xor
      | Component.Fn_eq -> binary op_eq
      | Component.Fn_lt -> binary op_lt)
  | flat_fn ->
      emit_flat e refs flat_fn;
      emit e op_save2;
      use fl;
      emit e op_save;
      use fr;
      emit e op_dyn;
      emit e op_ret

let emit_selector ?(peephole = true) e ids refs comp_id
    ({ select; cases } : Component.selector) =
  let const_select =
    match flatten ids select with
    | c, [] when peephole -> Some c
    | _ -> None
  in
  match const_select with
  | Some c when c >= 0 && c < Array.length cases ->
      (* Peephole: the control input is a compile-time constant in range, so
         the dispatch (and every dead case block) folds away.  An
         out-of-range constant keeps the op_sel so the runtime range error
         still raises every cycle. *)
      emit_expr ~peephole e ids refs cases.(c);
      emit e op_ret
  | _ ->
      emit_expr ~peephole e ids refs select;
      emit e op_sel;
      emit e comp_id;
      let n = Array.length cases in
      emit e n;
      let slots = e.len in
      for _ = 1 to n do
        emit e 0
      done;
      Array.iteri
        (fun i case ->
          e.buf.(slots + i) <- e.len;
          emit_expr ~peephole e ids refs case;
          emit e op_ret)
        cases

(* --- compiled program --------------------------------------------------- *)

type mem_desc = {
  m_id : int;  (** slot of the registered output *)
  m_name : string;
  m_addr_pc : int;
  m_op_pc : int;
  m_data_pc : int;
  m_off : int;  (** offset into the shared cell array *)
  m_len : int;  (** number of cells *)
  m_init : int array option;
}

type program = {
  p_code : int array;
  p_names : string array;  (** by component slot *)
  p_ids : (string, int) Hashtbl.t;
  p_comb_entry : int array;  (** block entry pc, by evaluation-order position *)
  p_comb_id : int array;  (** output slot, by evaluation-order position *)
  p_mems : mem_desc array;  (** in declaration order *)
  p_cells_len : int;
  p_deps : int array;
      (** concatenated dependent positions: the evaluation-order positions of
          every combinational component reading a given slot *)
  p_dep_off : int array;  (** by producer slot *)
  p_dep_len : int array;  (** by producer slot *)
}

let compile ?peephole ?(tracer = Asim_obs.Tracer.null) ?slots ?comb_order
    (analysis : Asim_analysis.Analysis.t) =
  let spec = analysis.Asim_analysis.Analysis.spec in
  let components = spec.Spec.components in
  let ncomp = List.length components in
  Asim_obs.Tracer.span tracer
    ~args:[ ("components", string_of_int ncomp) ]
    "codegen.flat.compile"
  @@ fun () ->
  (* [slots] overrides the name → state-slot assignment (default:
     declaration order) and [comb_order] the combinational evaluation order
     (default: the analysis's topological order).  The partitioned engine
     uses both to lay each partition's slots and code out contiguously; a
     custom order must still be a valid dependency order, and a custom slot
     table must be a bijection onto [0 .. ncomp-1]. *)
  let ids =
    match slots with
    | Some ids -> ids
    | None ->
        let ids = Hashtbl.create (max 16 ncomp) in
        List.iteri
          (fun i (c : Component.t) -> Hashtbl.replace ids c.name i)
          components;
        ids
  in
  let names = Array.make (max 1 ncomp) "" in
  List.iter
    (fun (c : Component.t) -> names.(component_id ids c.name) <- c.name)
    components;
  let order =
    match comb_order with
    | Some order -> order
    | None -> analysis.Asim_analysis.Analysis.order
  in
  let ncomb = List.length order in
  let comb_entry = Array.make ncomb 0 in
  let comb_id = Array.make ncomb 0 in
  let dependents = Array.make ncomp [] in
  let e = emitter () in
  List.iteri
    (fun pos (c : Component.t) ->
      comb_entry.(pos) <- e.len;
      let id = component_id ids c.name in
      comb_id.(pos) <- id;
      let refs = ref [] in
      (match c.kind with
      | Component.Alu alu -> emit_alu ?peephole e ids refs alu
      | Component.Selector sel -> emit_selector ?peephole e ids refs id sel
      | Component.Memory _ -> assert false);
      List.sort_uniq compare !refs
      |> List.iter (fun src -> dependents.(src) <- pos :: dependents.(src)))
    order;
  (* Memory expressions are latched every cycle regardless of activity, so
     their references create no scheduling edges. *)
  let sink = ref [] in
  let off = ref 0 in
  let mems =
    analysis.Asim_analysis.Analysis.memories
    |> List.map (fun (c : Component.t) ->
           match c.kind with
           | Component.Memory m ->
               let addr_pc = e.len in
               emit_expr ?peephole e ids sink m.addr;
               emit e op_ret;
               let op_pc = e.len in
               emit_expr ?peephole e ids sink m.op;
               emit e op_ret;
               let data_pc = e.len in
               emit_expr ?peephole e ids sink m.data;
               emit e op_ret;
               let d =
                 {
                   m_id = component_id ids c.name;
                   m_name = c.name;
                   m_addr_pc = addr_pc;
                   m_op_pc = op_pc;
                   m_data_pc = data_pc;
                   m_off = !off;
                   m_len = m.cells;
                   m_init = m.init;
                 }
               in
               off := !off + m.cells;
               d
           | Component.Alu _ | Component.Selector _ -> assert false)
    |> Array.of_list
  in
  let dep_off = Array.make ncomp 0 and dep_len = Array.make ncomp 0 in
  let total = Array.fold_left (fun acc l -> acc + List.length l) 0 dependents in
  let deps = Array.make (max 1 total) 0 in
  let cursor = ref 0 in
  Array.iteri
    (fun id l ->
      dep_off.(id) <- !cursor;
      dep_len.(id) <- List.length l;
      List.iter
        (fun pos ->
          deps.(!cursor) <- pos;
          incr cursor)
        l)
    dependents;
  {
    p_code = Array.sub e.buf 0 e.len;
    p_names = names;
    p_ids = ids;
    p_comb_entry = comb_entry;
    p_comb_id = comb_id;
    p_mems = mems;
    p_cells_len = !off;
    p_deps = deps;
    p_dep_off = dep_off;
    p_dep_len = dep_len;
  }

let program_size ?peephole analysis =
  Array.length (compile ?peephole analysis).p_code

(* --- the evaluator ------------------------------------------------------ *)

(* The kernel: all-int state threaded through tail calls, no allocation.
   Shared by the flat machine below and by every domain of the partitioned
   engine ([Asim_par]), each over its own [vals] array. *)
let make_exec (p : program) ~(vals : int array) ~(cycle : int ref) =
  let code = p.p_code and names = p.p_names in
  let rec exec pc acc tmp tmp2 =
    match Array.unsafe_get code pc with
    | 0 (* ret *) -> acc
    | 1 (* const *) -> exec (pc + 2) (Array.unsafe_get code (pc + 1)) tmp tmp2
    | 2 (* term *) ->
        let src = Array.unsafe_get code (pc + 1) in
        let m = Array.unsafe_get code (pc + 2) in
        exec (pc + 3) (acc + (Array.unsafe_get vals src land m)) tmp tmp2
    | 3 (* term lsl *) ->
        let src = Array.unsafe_get code (pc + 1) in
        let m = Array.unsafe_get code (pc + 2) in
        let s = Array.unsafe_get code (pc + 3) in
        exec (pc + 4) (acc + ((Array.unsafe_get vals src land m) lsl s)) tmp tmp2
    | 4 (* term lsr *) ->
        let src = Array.unsafe_get code (pc + 1) in
        let m = Array.unsafe_get code (pc + 2) in
        let s = Array.unsafe_get code (pc + 3) in
        exec (pc + 4) (acc + ((Array.unsafe_get vals src land m) lsr s)) tmp tmp2
    | 5 (* whole *) ->
        exec (pc + 2)
          (acc + Array.unsafe_get vals (Array.unsafe_get code (pc + 1)))
          tmp tmp2
    | 6 (* whole lsl *) ->
        let src = Array.unsafe_get code (pc + 1) in
        let s = Array.unsafe_get code (pc + 2) in
        exec (pc + 3) (acc + (Array.unsafe_get vals src lsl s)) tmp tmp2
    | 7 (* save *) -> exec (pc + 1) acc acc tmp2
    | 8 (* save2 *) -> exec (pc + 1) acc tmp acc
    | 9 (* not *) -> exec (pc + 1) (Bits.mask - acc) tmp tmp2
    | 10 (* add *) -> exec (pc + 1) (tmp + acc) tmp tmp2
    | 11 (* sub *) -> exec (pc + 1) (tmp - acc) tmp tmp2
    | 12 (* shl *) -> exec (pc + 1) (Bits.shift_left_masked tmp acc) tmp tmp2
    | 13 (* mul *) -> exec (pc + 1) (tmp * acc) tmp tmp2
    | 14 (* and *) -> exec (pc + 1) (tmp land acc) tmp tmp2
    | 15 (* or *) -> exec (pc + 1) (tmp + acc - (tmp land acc)) tmp tmp2
    | 16 (* xor *) -> exec (pc + 1) (tmp + acc - (2 * (tmp land acc))) tmp tmp2
    | 17 (* eq *) -> exec (pc + 1) (if tmp = acc then 1 else 0) tmp tmp2
    | 18 (* lt *) -> exec (pc + 1) (if tmp < acc then 1 else 0) tmp tmp2
    | 19 (* dyn *) ->
        exec (pc + 1) (Component.apply_alu_code tmp2 ~left:tmp ~right:acc) tmp tmp2
    | 20 (* sel *) ->
        let n = Array.unsafe_get code (pc + 2) in
        if acc < 0 || acc >= n then
          Machine.selector_out_of_range
            ~component:(Array.unsafe_get names (Array.unsafe_get code (pc + 1)))
            ~cycle:!cycle ~index:acc ~cases:n
        else exec (Array.unsafe_get code (pc + 3 + acc)) 0 tmp tmp2
    | _ -> assert false
  in
  exec

(* --- the machine -------------------------------------------------------- *)

type state = { s_vals : int array; s_cells : int array }

let create_full ?(config = Machine.default_config) ?(schedule = Activity)
    ?(tracer = Asim_obs.Tracer.null) ?peephole ?prof
    (analysis : Asim_analysis.Analysis.t) =
  let module Prof = Asim_prof.Prof in
  let module T = Asim_obs.Tracer in
  let p =
    T.span tracer
      ~args:[ ("schedule", schedule_to_string schedule) ]
      "codegen.flat.emit"
      (fun () -> compile ?peephole ~tracer analysis)
  in
  let code = p.p_code in
  let names = p.p_names in
  let ncomp = Array.length names in
  let ncomb = Array.length p.p_comb_entry in
  let nmem = Array.length p.p_mems in
  let vals, cells, maddr, mop =
    T.span tracer
      ~args:
        [
          ("words", string_of_int (Array.length code));
          ("slots", string_of_int ncomp);
          ("cells", string_of_int p.p_cells_len);
        ]
      "codegen.flat.layout"
      (fun () ->
        let vals = Array.make (max 1 ncomp) 0 in
        let cells = Array.make (max 1 p.p_cells_len) 0 in
        Array.iter
          (fun m ->
            match m.m_init with
            | Some init -> Array.blit init 0 cells m.m_off (Array.length init)
            | None -> ())
          p.p_mems;
        (vals, cells, Array.make (max 1 nmem) 0, Array.make (max 1 nmem) 0))
  in
  T.span tracer "codegen.flat.wire" @@ fun () ->
  let cycle = ref 0 in
  let stats =
    Stats.create
      ~memories:(Array.to_list (Array.map (fun m -> m.m_name) p.p_mems))
  in
  (* Profiling is wired at construction time: with [?prof] absent every
     closure below is exactly the uninstrumented one — the off path carries
     no per-cycle branch at all (the zero-allocation test pins this). *)
  (match prof with
  | None -> ()
  | Some pr ->
      Prof.attach_stats pr stats;
      pr.Prof.engine <- "flat";
      pr.Prof.schedule <- schedule_to_string schedule;
      (* Static cost model: flat-program words per component.  Blocks are
         laid out combinational (evaluation order) then memories
         (declaration order), so each block ends where the next begins. *)
      let code_len = Array.length code in
      for i = 0 to ncomb - 1 do
        let stop =
          if i + 1 < ncomb then p.p_comb_entry.(i + 1)
          else if nmem > 0 then p.p_mems.(0).m_addr_pc
          else code_len
        in
        pr.Prof.words.(p.p_comb_id.(i)) <- stop - p.p_comb_entry.(i)
      done;
      Array.iteri
        (fun k m ->
          let stop =
            if k + 1 < nmem then p.p_mems.(k + 1).m_addr_pc else code_len
          in
          pr.Prof.words.(m.m_id) <- stop - m.m_addr_pc)
        p.p_mems);
  let io =
    match prof with
    | None -> config.Machine.io
    | Some pr -> Prof.instrument_io pr config.Machine.io
  in
  let count_fault =
    match prof with
    | None -> fun (_ : int) -> ()
    | Some pr ->
        let pf = pr.Prof.faults in
        fun id -> Array.unsafe_set pf id (Array.unsafe_get pf id + 1)
  in
  let trace = config.Machine.trace in
  let trace_active = not (trace == Trace.null_sink) in
  let faults = config.Machine.faults in
  let fault_targets = Fault.targets faults in
  let comb_id = p.p_comb_id and comb_entry = p.p_comb_entry in
  let dep_off = p.p_dep_off and dep_len = p.p_dep_len and deps = p.p_deps in
  (* Everything starts dirty; a faulted component is pinned dirty so a
     cycle-windowed fault keeps firing even over quiescent logic. *)
  let dirty = Bytes.make (max 1 ncomb) '\001' in
  let comb_fault = Bytes.make (max 1 ncomb) '\000' in
  for i = 0 to ncomb - 1 do
    if List.mem names.(comb_id.(i)) fault_targets then
      Bytes.set comb_fault i '\001'
  done;
  let evals = Array.make (max 1 ncomb) 0 in
  let exec = make_exec p ~vals ~cycle in
  let activity = match schedule with Activity -> true | Full -> false in
  let comb_full () =
    for i = 0 to ncomb - 1 do
      let id = Array.unsafe_get comb_id i in
      let v = exec (Array.unsafe_get comb_entry i) 0 0 0 in
      Array.unsafe_set evals i (Array.unsafe_get evals i + 1);
      let v =
        if Bytes.unsafe_get comb_fault i = '\000' then v
        else
          Fault.apply faults ~cycle:!cycle
            ~component:(Array.unsafe_get names id)
            v
      in
      Array.unsafe_set vals id v
    done
  in
  let comb_activity () =
    for i = 0 to ncomb - 1 do
      if Bytes.unsafe_get dirty i <> '\000' then (
        let id = Array.unsafe_get comb_id i in
        let v = exec (Array.unsafe_get comb_entry i) 0 0 0 in
        (* Cleared only after a successful evaluation, so a runtime error
           (selector out of range) re-raises if the machine is stepped
           again — same observable behavior as the closure engines. *)
        Bytes.unsafe_set dirty i (Bytes.unsafe_get comb_fault i);
        Array.unsafe_set evals i (Array.unsafe_get evals i + 1);
        let v =
          if Bytes.unsafe_get comb_fault i = '\000' then v
          else
            Fault.apply faults ~cycle:!cycle
              ~component:(Array.unsafe_get names id)
              v
        in
        if Array.unsafe_get vals id <> v then (
          Array.unsafe_set vals id v;
          (* The value changed: wake the combinational cone.  Dependents
             always sit later in evaluation order, so they re-evaluate
             this same cycle and clear their own bits. *)
          let o = Array.unsafe_get dep_off id in
          let stop = o + Array.unsafe_get dep_len id in
          for j = o to stop - 1 do
            Bytes.unsafe_set dirty (Array.unsafe_get deps j) '\001'
          done))
    done
  in
  (* Instrumented twins of the two loops above.  One preallocated-array
     increment per evaluation, slot-indexed (it replaces the
     position-indexed [evals] bump, so the per-eval work is unchanged);
     fault triggers count only when the injected fault actually perturbed
     the value.  Dirty skips are not counted here — every combinational
     position is considered exactly once per cycle, so [Prof.finalize]
     derives them as [cycles - evals]. *)
  let comb_full_prof pe () =
    for i = 0 to ncomb - 1 do
      let id = Array.unsafe_get comb_id i in
      let v = exec (Array.unsafe_get comb_entry i) 0 0 0 in
      Array.unsafe_set pe id (Array.unsafe_get pe id + 1);
      let v =
        if Bytes.unsafe_get comb_fault i = '\000' then v
        else begin
          let v' =
            Fault.apply faults ~cycle:!cycle
              ~component:(Array.unsafe_get names id)
              v
          in
          if v' <> v then count_fault id;
          v'
        end
      in
      Array.unsafe_set vals id v
    done
  in
  let comb_activity_prof pe () =
    for i = 0 to ncomb - 1 do
      if Bytes.unsafe_get dirty i <> '\000' then begin
        let id = Array.unsafe_get comb_id i in
        let v = exec (Array.unsafe_get comb_entry i) 0 0 0 in
        Bytes.unsafe_set dirty i (Bytes.unsafe_get comb_fault i);
        Array.unsafe_set pe id (Array.unsafe_get pe id + 1);
        let v =
          if Bytes.unsafe_get comb_fault i = '\000' then v
          else begin
            let v' =
              Fault.apply faults ~cycle:!cycle
                ~component:(Array.unsafe_get names id)
                v
            in
            if v' <> v then count_fault id;
            v'
          end
        in
        if Array.unsafe_get vals id <> v then begin
          Array.unsafe_set vals id v;
          let o = Array.unsafe_get dep_off id in
          let stop = o + Array.unsafe_get dep_len id in
          for j = o to stop - 1 do
            Bytes.unsafe_set dirty (Array.unsafe_get deps j) '\001'
          done
        end
      end
    done
  in
  let mems = p.p_mems in
  let mcount = Array.map (fun m -> Stats.memory stats m.m_name) mems in
  let mfault = Array.map (fun m -> List.mem m.m_name fault_targets) mems in
  let snap k =
    let m = Array.unsafe_get mems k in
    Array.unsafe_set maddr k (exec m.m_addr_pc 0 0 0);
    Array.unsafe_set mop k (exec m.m_op_pc 0 0 0)
  in
  let update k =
    let m = Array.unsafe_get mems k in
    let id = m.m_id in
    let old = Array.unsafe_get vals id in
    let a = Array.unsafe_get maddr k in
    let op = Array.unsafe_get mop k in
    let c = Array.unsafe_get mcount k in
    (match op land 3 with
    | 0 ->
        (* §4.3: read/write check the address; input/output do not. *)
        if a < 0 || a >= m.m_len then
          Machine.address_out_of_range ~component:m.m_name ~cycle:!cycle
            ~address:a ~cells:m.m_len;
        Array.unsafe_set vals id (Array.unsafe_get cells (m.m_off + a));
        c.Stats.reads <- c.Stats.reads + 1
    | 1 ->
        if a < 0 || a >= m.m_len then
          Machine.address_out_of_range ~component:m.m_name ~cycle:!cycle
            ~address:a ~cells:m.m_len;
        let v = exec m.m_data_pc 0 0 0 in
        Array.unsafe_set vals id v;
        Array.unsafe_set cells (m.m_off + a) v;
        c.Stats.writes <- c.Stats.writes + 1
    | 2 ->
        Array.unsafe_set vals id (io.Io.input ~address:a);
        c.Stats.inputs <- c.Stats.inputs + 1
    | _ ->
        let v = exec m.m_data_pc 0 0 0 in
        Array.unsafe_set vals id v;
        io.Io.output ~address:a ~data:v;
        c.Stats.outputs <- c.Stats.outputs + 1);
    if trace_active then (
      if Component.traces_writes op then
        trace (Trace.write_line ~memory:m.m_name ~address:a ~data:vals.(id));
      if Component.traces_reads op then
        trace (Trace.read_line ~memory:m.m_name ~address:a ~data:vals.(id)));
    (if Array.unsafe_get mfault k then begin
       let before = Array.unsafe_get vals id in
       let v = Fault.apply faults ~cycle:!cycle ~component:m.m_name before in
       if v <> before then count_fault id;
       Array.unsafe_set vals id v
     end);
    if activity && Array.unsafe_get vals id <> old then (
      let o = Array.unsafe_get dep_off id in
      let stop = o + Array.unsafe_get dep_len id in
      for j = o to stop - 1 do
        Bytes.unsafe_set dirty (Array.unsafe_get deps j) '\001'
      done)
  in
  let traced =
    Spec.traced_names analysis.Asim_analysis.Analysis.spec
    |> List.map (fun name -> (name, component_id p.p_ids name))
    |> Array.of_list
  in
  let emit_cycle_line =
    if not trace_active then fun () -> ()
    else fun () ->
      trace
        (Trace.cycle_line ~cycle:!cycle
           (Array.to_list (Array.map (fun (name, id) -> (name, vals.(id))) traced)))
  in
  let do_comb = if activity then comb_activity else comb_full in
  let step () =
    do_comb ();
    emit_cycle_line ();
    for k = 0 to nmem - 1 do
      snap k
    done;
    for k = 0 to nmem - 1 do
      update k
    done;
    incr cycle;
    Stats.bump_cycle stats
  in
  let step =
    match prof with
    | None -> step
    | Some pr ->
        let pe = pr.Prof.evals in
        let do_comb_prof =
          if activity then comb_activity_prof pe else comb_full_prof pe
        in
        (* Sampled cycle profiler.  Every [sample_every]-th cycle the
           combinational wave is evaluated level by level with a clock read
           per level.  Level-major order is still a valid dependency order
           (every dependency sits at a strictly smaller level), so dirty
           marks still only ever point forward and the sampled cycle
           computes exactly what the position-order cycle would. *)
        let nlev = max 1 pr.Prof.nlevels in
        let lvl_of_pos i = pr.Prof.levels.(Array.unsafe_get comb_id i) in
        let perm = Array.init ncomb (fun i -> i) in
        Array.sort
          (fun a b ->
            match compare (lvl_of_pos a) (lvl_of_pos b) with
            | 0 -> compare a b
            | c -> c)
          perm;
        let level_start = Array.make (nlev + 1) 0 in
        Array.iter
          (fun i -> level_start.(lvl_of_pos i + 1) <- level_start.(lvl_of_pos i + 1) + 1)
          perm;
        for l = 0 to nlev - 1 do
          level_start.(l + 1) <- level_start.(l + 1) + level_start.(l)
        done;
        let eval_pos i =
          if (not activity) || Bytes.unsafe_get dirty i <> '\000' then begin
            let id = Array.unsafe_get comb_id i in
            let v = exec (Array.unsafe_get comb_entry i) 0 0 0 in
            if activity then
              Bytes.unsafe_set dirty i (Bytes.unsafe_get comb_fault i);
            Array.unsafe_set pe id (Array.unsafe_get pe id + 1);
            let v =
              if Bytes.unsafe_get comb_fault i = '\000' then v
              else begin
                let v' =
                  Fault.apply faults ~cycle:!cycle
                    ~component:(Array.unsafe_get names id)
                    v
                in
                if v' <> v then count_fault id;
                v'
              end
            in
            if activity then begin
              if Array.unsafe_get vals id <> v then begin
                Array.unsafe_set vals id v;
                let o = Array.unsafe_get dep_off id in
                let stop = o + Array.unsafe_get dep_len id in
                for j = o to stop - 1 do
                  Bytes.unsafe_set dirty (Array.unsafe_get deps j) '\001'
                done
              end
            end
            else Array.unsafe_set vals id v
          end
        in
        let level_ns = pr.Prof.level_ns in
        let comb_sampled () =
          for l = 0 to nlev - 1 do
            let t0 = Asim_obs.Clock.now () in
            for j = level_start.(l) to level_start.(l + 1) - 1 do
              eval_pos (Array.unsafe_get perm j)
            done;
            level_ns.(l) <-
              level_ns.(l) +. ((Asim_obs.Clock.now () -. t0) *. 1e9)
          done
        in
        let sample_every = pr.Prof.sample_every in
        let togo = ref 1 in
        fun () ->
          let c = !togo - 1 in
          togo := c;
          if c = 0 then begin
            togo := sample_every;
            let t0 = Asim_obs.Clock.now () in
            comb_sampled ();
            emit_cycle_line ();
            let tm = Asim_obs.Clock.now () in
            for k = 0 to nmem - 1 do
              snap k
            done;
            for k = 0 to nmem - 1 do
              update k
            done;
            let t1 = Asim_obs.Clock.now () in
            pr.Prof.mem_ns <- pr.Prof.mem_ns +. ((t1 -. tm) *. 1e9);
            pr.Prof.sampled_ns <- pr.Prof.sampled_ns +. ((t1 -. t0) *. 1e9);
            pr.Prof.sampled_cycles <- pr.Prof.sampled_cycles + 1
          end
          else begin
            do_comb_prof ();
            emit_cycle_line ();
            for k = 0 to nmem - 1 do
              snap k
            done;
            for k = 0 to nmem - 1 do
              update k
            done
          end;
          pr.Prof.cycles <- pr.Prof.cycles + 1;
          incr cycle;
          Stats.bump_cycle stats
  in
  let mem_by_name name =
    match Array.find_opt (fun m -> String.equal m.m_name name) mems with
    | Some m -> m
    | None -> Error.failf Error.Runtime "Component <%s> is not a memory." name
  in
  let read_cell name index =
    let m = mem_by_name name in
    if index < 0 || index >= m.m_len then
      invalid_arg "Flat: cell index out of range"
    else cells.(m.m_off + index)
  in
  let write_cell name index value =
    let m = mem_by_name name in
    if index < 0 || index >= m.m_len then
      invalid_arg "Flat: cell index out of range"
    else cells.(m.m_off + index) <- value
  in
  let machine =
    {
      Machine.analysis;
      step;
      read = (fun name -> vals.(component_id p.p_ids name));
      read_cell;
      write_cell;
      current_cycle = (fun () -> !cycle);
      stats;
    }
  in
  let counts () =
    match prof with
    | None -> List.init ncomb (fun i -> (names.(comb_id.(i)), evals.(i)))
    | Some pr ->
        (* The instrumented loops count into the profile's slot-indexed
           array instead of the position-indexed one. *)
        List.init ncomb (fun i ->
            (names.(comb_id.(i)), pr.Asim_prof.Prof.evals.(comb_id.(i))))
  in
  (machine, counts, { s_vals = vals; s_cells = cells })

let create_debug ?config ?schedule ?tracer ?peephole ?prof analysis =
  let machine, counts, _ =
    create_full ?config ?schedule ?tracer ?peephole ?prof analysis
  in
  (machine, counts)

let create_exposed ?config ?schedule ?tracer ?peephole ?prof analysis =
  let machine, _, state =
    create_full ?config ?schedule ?tracer ?peephole ?prof analysis
  in
  (machine, state)

let create ?config ?schedule ?tracer ?peephole ?prof analysis =
  let machine, _, _ =
    create_full ?config ?schedule ?tracer ?peephole ?prof analysis
  in
  machine
