(** The flat-kernel engine: ASIM II compiled one rung further down.

    [Asim_compile] reproduces the paper's compiled-simulation idea with one
    OCaml closure per component; every cycle still pays a closure call, a
    hashtable-free but pointer-chasing walk, and re-evaluates components
    whose inputs did not change.  This engine removes both costs:

    {b Flat program.}  [create] compiles the analyzed specification into a
    contiguous int-coded instruction array over preallocated [int array]
    state (one slot per component output, one shared cell array for all
    memories, latched address/operation arrays).  Names, bit fields and
    widths are resolved at compile time into slot indices, masks and shift
    counts; evaluation is a tight tail-recursive dispatch loop over the
    instruction stream with no bounds checks (indices are validated when the
    program is emitted) and zero per-cycle heap allocation when tracing and
    I/O are quiet.

    {b Activity-driven scheduling.}  With [~schedule:Activity] (the
    default), each combinational component carries a dirty bit seeded from
    the specification's dependency graph.  A cycle only re-evaluates the
    combinational cone downstream of registers, memories and inputs whose
    {e values} actually changed; a producer whose output is recomputed but
    equal wakes nobody.  Memories always latch (they are sequential), and
    fault-injected components are pinned permanently dirty so cycle-windowed
    faults keep firing.  [~schedule:Full] re-evaluates everything every
    cycle — the ablation baseline for the benchmark harness.

    The result is observationally identical to [Asim_interp] and
    [Asim_compile] (the differential-fuzz oracle enforces this): same
    per-cycle outputs, traces, I/O events, statistics, runtime errors and
    fault behavior. *)

(** Combinational evaluation policy. *)
type schedule =
  | Activity  (** dirty-bit scheduling: skip quiescent logic (default) *)
  | Full  (** re-evaluate every component every cycle (ablation baseline) *)

val schedule_to_string : schedule -> string

val create :
  ?config:Asim_sim.Machine.config ->
  ?schedule:schedule ->
  ?tracer:Asim_obs.Tracer.t ->
  ?peephole:bool ->
  ?prof:Asim_prof.Prof.t ->
  Asim_analysis.Analysis.t ->
  Asim_sim.Machine.t
(** Compile the analyzed spec to a flat program and return a runnable
    machine.  When [tracer] is active, compilation emits
    [codegen.flat.layout], [codegen.flat.emit] and [codegen.flat.wire]
    spans, so flat-compile time shows up next to the [pipeline.*] spans in
    a {{!Asim_obs.Tracer}Chrome trace}.  [peephole] (default [true])
    controls the emit-time peephole pass: constant selectors are folded to
    their live case and adjacent disjoint mask/shift loads of the same slot
    are fused into one term.  [peephole] is a deprecated alias kept for
    ablation: the [Asim_opt] middle-end's [Fuse] pass performs the same
    rewrites (and more) spec-side before any backend runs, so under [-O1]
    and above the emit-time pass usually finds nothing left to fold.

    [prof] attaches an {!Asim_prof.Prof} profile: evaluation and fault
    counters tick in the kernel's hot loops (one preallocated-array
    increment per evaluation), the flat program's per-component word counts
    fill the profile's static cost model, the I/O handler is wrapped with a
    wait timer, and every [sample_every]-th cycle is timed per topological
    level.  Without [prof] the machine is built from the exact
    uninstrumented closures — the off path adds no per-cycle work at all. *)

val create_debug :
  ?config:Asim_sim.Machine.config ->
  ?schedule:schedule ->
  ?tracer:Asim_obs.Tracer.t ->
  ?peephole:bool ->
  ?prof:Asim_prof.Prof.t ->
  Asim_analysis.Analysis.t ->
  Asim_sim.Machine.t * (unit -> (string * int) list)
(** Like {!create}, but also returns an inspection function giving the
    number of times each combinational component has actually been
    evaluated (in evaluation order).  Under [Activity] scheduling the
    counts expose which parts of the design were quiescent; under [Full]
    every count equals the cycle count.  For tests and the benchmark
    harness's skip-rate metric. *)

(** The engine's mutable core, exposed for the tiered engine's hot-swap:
    [s_vals] holds one slot per component in specification order (the same
    layout {!Asim_jit.Jit} generates against), [s_cells] every memory's
    cells concatenated in [Analysis.memories] declaration order.  A machine
    built over these arrays by another engine observes — and continues —
    the exact simulation state. *)
type state = { s_vals : int array; s_cells : int array }

val create_exposed :
  ?config:Asim_sim.Machine.config ->
  ?schedule:schedule ->
  ?tracer:Asim_obs.Tracer.t ->
  ?peephole:bool ->
  ?prof:Asim_prof.Prof.t ->
  Asim_analysis.Analysis.t ->
  Asim_sim.Machine.t * state
(** Like {!create}, but also hands back the machine's live state arrays.
    At a cycle boundary the arrays (plus [Machine.stats] and the cycle
    count) are the machine's entire future-determining state: the
    combinational slots are recomputed from scratch at the top of every
    cycle, and the latched address/op temporaries never cross a boundary —
    which is what makes the tiered engine's pointer-exchange handoff
    sound. *)

(** {1 Compiled-program internals}

    Exposed for the partitioned BSP engine ([Asim_par]), which compiles its
    own flat program with a partition-major slot layout and runs each
    partition's block range with its own {!make_exec} instance. *)

(** One memory's compiled form: entry pcs for the latched address /
    operation / data expressions, plus its window into the shared cell
    array. *)
type mem_desc = {
  m_id : int;  (** slot of the registered output *)
  m_name : string;
  m_addr_pc : int;
  m_op_pc : int;
  m_data_pc : int;
  m_off : int;  (** offset into the shared cell array *)
  m_len : int;  (** number of cells *)
  m_init : int array option;
}

(** A compiled flat program: the instruction stream plus every index needed
    to drive it (block entries by evaluation position, output slots, memory
    descriptors, and the inverted dependency table used for activity
    wake-ups). *)
type program = {
  p_code : int array;
  p_names : string array;  (** by component slot *)
  p_ids : (string, int) Hashtbl.t;
  p_comb_entry : int array;  (** block entry pc, by evaluation-order position *)
  p_comb_id : int array;  (** output slot, by evaluation-order position *)
  p_mems : mem_desc array;  (** in declaration order *)
  p_cells_len : int;
  p_deps : int array;
      (** concatenated dependent positions: the evaluation-order positions of
          every combinational component reading a given slot *)
  p_dep_off : int array;  (** by producer slot *)
  p_dep_len : int array;  (** by producer slot *)
}

val compile :
  ?peephole:bool ->
  ?tracer:Asim_obs.Tracer.t ->
  ?slots:(string, int) Hashtbl.t ->
  ?comb_order:Asim_core.Component.t list ->
  Asim_analysis.Analysis.t ->
  program
(** Emit the flat program.  [slots] overrides the name → state-slot
    assignment (default: declaration order) and [comb_order] the
    combinational evaluation order (default: the analysis's topological
    order); a custom order must still be a valid dependency order and a
    custom slot table a bijection onto [0 .. ncomp-1].  When [tracer] is
    active the emission is wrapped in a [codegen.flat.compile] span tagged
    with the component count. *)

val make_exec :
  program -> vals:int array -> cycle:int ref -> int -> int -> int -> int -> int
(** [make_exec p ~vals ~cycle] is the evaluator for [p] over the state
    array [vals]: [exec pc acc tmp tmp2] runs the block starting at [pc]
    and returns the computed value.  Call as [exec entry 0 0 0].  [cycle]
    is read only to report a selector-range {!Asim_core.Error.Error}.
    Allocation-free; distinct instances over distinct [vals] arrays may run
    in parallel (the program itself is only read). *)

val program_size : ?peephole:bool -> Asim_analysis.Analysis.t -> int
(** Number of instruction words the flat program for this spec occupies —
    a compile-time metric (reported by benchmarks, no machine built).
    Pass [~peephole:false] for the pre-peephole size; the benchmark harness
    reports both so the pass's effect is visible.  For spec-level
    optimization effects, run the analysis through [Asim_opt.Opt.run]
    first — the opt-ablation benchmark measures program size that way. *)
