(** Umbrella entry point: load a specification and run it under either
    engine.  Also re-exports the sub-libraries under short aliases so most
    users need only [Asim]. *)

module Bits = Asim_core.Bits
module Number = Asim_core.Number
module Expr = Asim_core.Expr
module Component = Asim_core.Component
module Spec = Asim_core.Spec
module Pretty = Asim_core.Pretty
module Error = Asim_core.Error
module Parser = Asim_syntax.Parser
module Macro = Asim_syntax.Macro
module Analysis = Asim_analysis.Analysis
module Depgraph = Asim_analysis.Depgraph
module Width = Asim_analysis.Width
module Io = Asim_sim.Io
module Trace = Asim_sim.Trace
module Stats = Asim_sim.Stats
module Fault = Asim_sim.Fault
module Profile = Asim_sim.Profile
module Coverage = Asim_sim.Coverage
module Machine = Asim_sim.Machine
module Vcd = Asim_sim.Vcd
module Interp = Asim_interp.Interp
module Compile = Asim_compile.Compile
module Flat = Asim_flat.Flat
module Jit = Asim_jit.Jit
module Tiered = Asim_tiered.Tiered
module Par = Asim_par.Par
module Prof = Asim_prof.Prof
module Opt = Asim_opt.Opt

module Specs : module type of Specs
(** Embedded example specifications. *)

(** Which simulation engine to use.  [Interpreter] is the ASIM baseline;
    [Compiled] is the ASIM II contribution; [FlatKernel] is the int-coded
    flat program with activity-driven scheduling ({!Flat}); [Native] is the
    Dynlink-JIT over the codegen backend ({!Jit} — needs an OCaml toolchain
    on PATH); [TieredEngine] starts on the flat kernel and hot-swaps to the
    native engine at a cycle boundary once a background compile finishes
    ({!Tiered} — degrades to flat-only without a toolchain);
    [Partitioned] is the flat kernel partitioned across domains and run
    bulk-synchronously ({!Par} — domain count from [?domains], then
    [ASIM_PAR_DOMAINS], then the core count). *)
type engine =
  | Interpreter
  | Compiled
  | FlatKernel
  | Native
  | TieredEngine
  | Partitioned

val engine_of_string : string -> engine option
(** ["interp"]/["asim"], ["compiled"]/["asim2"], ["flat"],
    ["native"]/["jit"], ["tiered"] and ["par"]/["bsp"]
    (case-insensitive). *)

val engine_to_string : engine -> string

val load_string : string -> Analysis.t
(** Parse and analyze a specification source.  Raises {!Error.Error}. *)

val load_file : string -> Analysis.t

val machine :
  ?config:Machine.config ->
  ?engine:engine ->
  ?optimize:bool ->
  ?opt:Opt.level ->
  ?opt_costs:(string * float) list ->
  ?schedule:Flat.schedule ->
  ?tracer:Asim_obs.Tracer.t ->
  ?prof:Prof.t ->
  ?domains:int ->
  ?par_costs:(string * float) list ->
  Analysis.t ->
  Machine.t
(** Instantiate a runnable machine.  Defaults: [Compiled] engine, paper
    optimizations on, {!Machine.default_config}.  [opt] runs the {!Opt}
    middle-end over the analysis before the engine is built (default: no
    middle-end, i.e. [O0]) — every engine consumes the rewritten spec;
    fault-plan targets from [config] are kept verbatim.  [opt_costs] feeds
    the scheduler's cost model.  [optimize] applies to the [Compiled]
    engine's own §4.4 closure optimizations only (the deprecated
    [?peephole]-era knob); [schedule] and [tracer] to [FlatKernel] only;
    [domains] and [par_costs] (a measured per-component cost model for the
    partitioner) to [Partitioned] only.  [prof] attaches an {!Prof} profile
    to any engine except [Native] (whose generated plugin carries no
    counters) and [Partitioned] (whose counters would race across domains)
    — requesting either raises {!Error.Error}; a profiled [TieredEngine]
    run is pinned to the instrumented flat kernel. *)

val run_string :
  ?config:Machine.config -> ?engine:engine -> ?cycles:int -> string -> Machine.t
(** Convenience: load, build, and run.  The cycle count is [cycles] if given,
    else the spec's [= N], else 0 steps.  Returns the machine (stats, cells
    and outputs are inspectable afterwards). *)

val run_file :
  ?config:Machine.config -> ?engine:engine -> ?cycles:int -> string -> Machine.t
