module Bits = Asim_core.Bits
module Number = Asim_core.Number
module Expr = Asim_core.Expr
module Component = Asim_core.Component
module Spec = Asim_core.Spec
module Pretty = Asim_core.Pretty
module Error = Asim_core.Error
module Parser = Asim_syntax.Parser
module Macro = Asim_syntax.Macro
module Analysis = Asim_analysis.Analysis
module Depgraph = Asim_analysis.Depgraph
module Width = Asim_analysis.Width
module Io = Asim_sim.Io
module Trace = Asim_sim.Trace
module Stats = Asim_sim.Stats
module Fault = Asim_sim.Fault
module Profile = Asim_sim.Profile
module Coverage = Asim_sim.Coverage
module Machine = Asim_sim.Machine
module Vcd = Asim_sim.Vcd
module Interp = Asim_interp.Interp
module Compile = Asim_compile.Compile
module Flat = Asim_flat.Flat
module Jit = Asim_jit.Jit
module Tiered = Asim_tiered.Tiered
module Par = Asim_par.Par
module Prof = Asim_prof.Prof
module Opt = Asim_opt.Opt
module Specs = Specs

type engine =
  | Interpreter
  | Compiled
  | FlatKernel
  | Native
  | TieredEngine
  | Partitioned

let engine_of_string s =
  match String.lowercase_ascii s with
  | "interp" | "interpreter" | "asim" -> Some Interpreter
  | "compiled" | "compile" | "asim2" | "asimii" -> Some Compiled
  | "flat" | "flat-kernel" | "flatkernel" -> Some FlatKernel
  | "native" | "jit" -> Some Native
  | "tiered" | "tier" -> Some TieredEngine
  | "par" | "bsp" | "partitioned" -> Some Partitioned
  | _ -> None

let engine_to_string = function
  | Interpreter -> "interpreter"
  | Compiled -> "compiled"
  | FlatKernel -> "flat"
  | Native -> "native"
  | TieredEngine -> "tiered"
  | Partitioned -> "par"

let load_string source = Analysis.analyze (Parser.parse_string source)

let load_file path = Analysis.analyze (Parser.parse_file path)

let machine ?config ?(engine = Compiled) ?optimize ?opt ?opt_costs ?schedule
    ?tracer ?prof ?domains ?par_costs analysis =
  (* The middle-end runs once, up front, on the analyzed spec — every engine
     below consumes the rewritten analysis unchanged.  Fault targets are kept
     verbatim (their widths can't be trusted and their values are observable
     through the perturbation). *)
  let analysis =
    match opt with
    | None | Some Asim_opt.Opt.O0 -> analysis
    | Some level ->
        let keep =
          match config with
          | Some { Machine.faults; _ } -> Fault.targets faults
          | None -> []
        in
        Opt.run ~level ~keep ?costs:opt_costs analysis
  in
  match engine with
  | Interpreter -> Interp.create ?config ?prof analysis
  | Compiled -> Compile.create ?config ?optimize ?prof analysis
  | FlatKernel -> Flat.create ?config ?schedule ?tracer ?prof analysis
  | Native -> (
      match prof with
      | None -> Jit.create ?config ?tracer analysis
      | Some _ ->
          Error.failf Error.Runtime
            "the native engine does not support profiling (the generated \
             plugin carries no counters); use flat, tiered, compiled or \
             interp")
  | TieredEngine -> Tiered.create ?config ?tracer ?prof analysis
  | Partitioned -> (
      match prof with
      | None -> Par.create ?config ?tracer ?domains ?costs:par_costs analysis
      | Some _ ->
          Error.failf Error.Runtime
            "the partitioned engine does not support profiling (per-eval \
             counters would race across domains); collect the profile on \
             flat and feed its cost model back with --par-profile")

let run_analysis ?config ?engine ?cycles analysis =
  let m = machine ?config ?engine analysis in
  let cycles =
    match cycles with Some n -> n | None -> Machine.spec_cycles m ~default:0
  in
  Machine.run m ~cycles;
  m

let run_string ?config ?engine ?cycles source =
  run_analysis ?config ?engine ?cycles (load_string source)

let run_file ?config ?engine ?cycles path =
  run_analysis ?config ?engine ?cycles (load_file path)
