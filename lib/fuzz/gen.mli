(** Seedable, size-parameterized generator of random well-formed
    specifications.

    This is the generator behind both the equivalence property tests
    ([test/test_equiv.ml]) and the [asim fuzz] campaign driver: one source of
    specs, consumed by QCheck in the tests (a [Random.State.t -> 'a] function
    {e is} a [QCheck.Gen.t]) and by {!Runner} in the CLI.

    Guarantees on every generated spec:
    - structurally valid and analyzable (no undefined references, no
      combinational cycles: combinational component [ci] only reads
      [c0..c(i-1)] and memories);
    - every expression respects the paper's width accounting (narrow fields
      always fit in the 31-bit word; wide mode additionally places one
      filling atom, only ever leftmost);
    - it pretty-prints ({!Asim_core.Pretty.spec}) to text the parser reads
      back to an equal spec;
    - selector selects and memory addresses are field-narrowed to the case
      count / cell count, so the documented runtime range errors cannot fire
      spuriously (engines must agree on errors too, but a spec that always
      traps makes a poor equivalence witness). *)

type size = {
  max_comb : int;  (** upper bound on combinational components (>= 1) *)
  max_mem : int;  (** upper bound on memories (>= 1) *)
  cycles : int;  (** the generated spec's [= N] directive *)
  wide : bool;
      (** also generate filling atoms (whole-component references,
          un-suffixed constants): full-word values, negative intermediates *)
}

val default_size : size
(** [{ max_comb = 6; max_mem = 3; cycles = 20; wide = false }] — the shape
    the original in-test generator used. *)

val spec : size -> Random.State.t -> Asim_core.Spec.t
(** Draw one spec.  Deterministic in the state; usable directly as a
    [QCheck.Gen.t]. *)

(** {1 Structured workloads}

    Deterministic generators of {e large} well-formed specs (1k-100k
    components) with partitionable structure, behind [asim genspec] and the
    partitioned engine's benchmarks.  They obey the same safety discipline
    as the random generator (narrow fields, field-narrowed selects,
    constant plain-write memory ops), so the specs are analyzable, run
    without spurious range errors, and pretty-print/parse round-trip.
    About one component in ten is a selector; a deterministic ~1% sample of
    components is traced.  The spec's comment records kind, parameters and
    seed. *)

val pipeline :
  ?cycles:int -> cores:int -> depth:int -> seed:int -> unit -> Asim_core.Spec.t
(** [cores] replicated pipelines of [depth] combinational stages, each core
    closed through a single-cell register.  Stage [s] of core [r] reads
    stage [s-1] of its own core and (for [r > 0], [s > 0]) stage [s] of
    core [r-1] — neighbouring replicas are coupled, so partitioners must
    co-locate neighbours or pay cross-partition traffic.
    [cores * (depth + 1)] components. *)

val mesh :
  ?cycles:int -> width:int -> height:int -> seed:int -> unit -> Asim_core.Spec.t
(** A [width * height] grid: each row is a west-to-east combinational chain
    seeded from a per-row register, and rows communicate only through the
    previous row's register — a row-aligned partitioning has zero
    cross-partition combinational edges.  [height * (width + 1)]
    components. *)

val spec_at : size -> seed:int -> index:int -> Asim_core.Spec.t
(** The [index]-th spec of the campaign seeded with [seed]: each index gets
    its own derived generator state, so any single spec of a run can be
    replayed without regenerating its predecessors.  The spec's comment
    records seed and index. *)
