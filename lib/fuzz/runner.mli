(** The fuzz campaign driver behind [asim fuzz].

    Generates a deterministic sequence of specs from a seed, checks each one
    through the {!Oracle} (and through a pretty-print/reparse round trip),
    shrinks every failure with {!Shrink}, and writes a reproducer bundle per
    failure to the artifacts directory. *)

type failure =
  | Divergence of Oracle.divergence
  | Roundtrip_mismatch
      (** the pretty-printed spec did not reparse to an equal spec *)

type report = {
  index : int;  (** campaign index; replay with [--seed SEED --start INDEX] *)
  failure : failure;
  original : Asim_core.Spec.t;
  shrunk : Asim_core.Spec.t;
  bundle : string option;  (** reproducer directory, when artifacts are on *)
}

type outcome = {
  tested : int;  (** specs actually generated and checked *)
  reports : report list;  (** failures, in discovery order *)
  elapsed : float;  (** wall-clock seconds *)
}

val run :
  ?artifacts_dir:string ->
  ?time_budget:float ->
  ?tracer:Asim_obs.Tracer.t ->
  ?feed:int list ->
  ?opt:Asim_opt.Opt.level ->
  ?engines:Oracle.engine list ->
  ?start:int ->
  ?shrink:bool ->
  ?on_spec:(int -> Asim_core.Spec.t -> unit) ->
  ?log:(string -> unit) ->
  ?jobs:int ->
  seed:int ->
  count:int ->
  size:Gen.size ->
  unit ->
  outcome
(** Check specs [start .. start + count - 1] of the campaign [seed], stopping
    early once [time_budget] seconds have elapsed.  [on_spec] sees every
    generated spec before it is checked (the CLI's [--print-specs]); [log]
    receives human-readable progress lines.  Bundles are only written when
    [artifacts_dir] is given; [shrink:false] skips minimization (bundles
    then contain the original spec twice).

    Wall-clock (the [time_budget] deadline and [elapsed]) comes from
    {!Asim_obs.Clock}, so campaigns are deterministic under a mock clock;
    [tracer] (default null) records [fuzz.generate] / [fuzz.check] /
    [fuzz.shrink] spans per index.

    [jobs] (default 1) spreads campaign indices across that many worker
    domains via {!Asim_batch.Pool}.  Generation, checking and shrinking are
    per-index pure, and [on_spec]/[log]/report emission is serialized in
    index order, so reports are deterministic for every width and the
    output is byte-identical to the sequential driver; with a time budget
    and [jobs > 1] the set of indices tested before the deadline may
    differ. *)

val report_to_string : report -> string

val summary : seed:int -> engines:Oracle.engine list -> outcome -> string
(** One-line campaign result for the CLI. *)
