(** A fourth simulation engine: an interpreter over the lowered IR.

    [Asim_codegen.Lower] reduces every expression to a sum of shifted,
    masked bit-fields plus a folded constant; the source backends (Pascal,
    OCaml, C, Verilog) all render that term list.  This engine {e executes}
    the same term list directly, so differential runs against it exercise
    the lowering arithmetic the generated simulators rely on — without
    needing a Pascal compiler in the loop.

    Cycle semantics (evaluation order, memory snapshotting, trace output,
    statistics, fault application) are identical to the other engines; only
    expression evaluation goes through {!Asim_codegen.Lower.lower}. *)

val create :
  ?config:Asim_sim.Machine.config ->
  Asim_analysis.Analysis.t ->
  Asim_sim.Machine.t

val of_spec : ?config:Asim_sim.Machine.config -> Asim_core.Spec.t -> Asim_sim.Machine.t
