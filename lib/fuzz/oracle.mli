(** Multi-engine differential oracle.

    Runs one spec through every requested engine and compares everything the
    paper treats as observable: per-cycle component outputs, trace text, I/O
    event streams, final memory images, memory-access statistics, and
    runtime errors.  The first engine of the list is the reference; the
    first pair that disagrees yields a {!divergence}. *)

type engine =
  | Interp  (** the ASIM baseline interpreter *)
  | Compiled  (** the ASIM II closure compiler, §4.4 optimizations on *)
  | Unoptimized  (** the closure compiler with the optimizations disabled *)
  | Lowered  (** the codegen lowering executed directly ({!Loweval}) *)
  | Flat  (** the flat-kernel engine, activity scheduling on *)
  | FlatFull  (** the flat-kernel engine, full re-evaluation (ablation) *)
  | Par
      (** the partitioned engine ([Asim_par.Par]): the flat kernel split
          across domains and run bulk-synchronously; domain count from
          [ASIM_PAR_DOMAINS], and [ASIM_PAR_SKEW=1] plants a lost update
          this oracle must catch *)
  | Native
      (** the native-compiled engine ([Asim_jit.Jit]): spec lowered to an
          OCaml module, compiled by the host toolchain and Dynlinked in *)
  | Tiered
      (** the tiered engine ([Asim_tiered.Tiered]): flat kernel first, with
          a background-compiled hot-swap to native at a cycle boundary;
          degrades to flat-only without a toolchain, so it is always
          available *)
  | Buggy
      (** [Compiled] over a deliberately corrupted spec (every constant
          ALU-function 4/add becomes 5/sub) — a fault-injected engine for
          exercising the oracle and shrinker end to end *)

val all : engine list
(** The nine honest engines: [Interp] (the reference), [Compiled],
    [Unoptimized], [Lowered], [Flat], [FlatFull], [Par], [Native],
    [Tiered]. *)

val available : engine -> bool
(** Whether the engine can run here at all.  Only [Native] can be
    unavailable (no OCaml toolchain on PATH); campaign drivers should drop
    unavailable engines with a warning instead of aborting. *)

val engine_of_string : string -> engine option

val engine_to_string : engine -> string

val build :
  engine -> config:Asim_sim.Machine.config -> Asim_analysis.Analysis.t ->
  Asim_sim.Machine.t

val inject_bug : Asim_core.Spec.t -> Asim_core.Spec.t
(** The [Buggy] engine's corruption, exposed for tests: constant ALU
    function add becomes sub.  Specs without a constant-add ALU are returned
    unchanged (the buggy engine then behaves honestly). *)

type observation = {
  snapshots : (string * int) list array;
      (** component outputs after each completed cycle *)
  trace : string;
  events : Asim_sim.Io.event list;
  cells : (string * int list) list;  (** final memory images *)
  outputs : (string * int) list;  (** final component outputs *)
  total_accesses : int;
  error : string option;  (** runtime error, if the run trapped *)
}

val default_feed : int list
(** The input stream served to [op = 2] memories: the first 20 digits of pi,
    repeated as needed. *)

val observe :
  ?feed:int list -> ?cycles:int -> ?opt:Asim_opt.Opt.level -> engine ->
  Asim_core.Spec.t -> observation
(** Run [spec] on one engine for [cycles] (default: the spec's [= N]
    directive, else 20), recording all observables.  A runtime error stops
    the run and is recorded, not raised.  With [opt] above [O0] the
    optimized-class engines (flat, flat-full, par, native, tiered) consume
    the [Asim_opt.Opt.run] rewrite while the reference class (interp,
    compiled, unoptimized, lowered, buggy) stays on the raw spec — a
    middle-end miscompile therefore surfaces as a divergence.  Components
    stubbed by dead-component elimination are masked to 0 in the snapshots
    and final outputs of {e every} engine so DCE itself is not reported. *)

type divergence = {
  engine_a : engine;  (** the reference *)
  engine_b : engine;
  first_cycle : int option;
      (** earliest cycle whose component outputs differ, if any do *)
  reason : string;  (** which observables disagree, with the first detail *)
}

val diff :
  engine_a:engine -> engine_b:engine -> observation -> observation ->
  divergence option

val check :
  ?feed:int list -> ?cycles:int -> ?opt:Asim_opt.Opt.level ->
  ?engines:engine list -> Asim_core.Spec.t -> divergence option
(** Observe [spec] on every engine (default {!all}) and compare each against
    the first; [None] means all engines agree on everything.  [opt] (default
    [O0]) optimizes the optimized-class engines as in {!observe}. *)

val divergence_to_string : divergence -> string
