open Asim_core

type failure =
  | Divergence of Oracle.divergence
  | Roundtrip_mismatch

type report = {
  index : int;
  failure : failure;
  original : Spec.t;
  shrunk : Spec.t;
  bundle : string option;
}

type outcome = {
  tested : int;
  reports : report list;
  elapsed : float;
}

let failure_to_string = function
  | Divergence d -> Oracle.divergence_to_string d
  | Roundtrip_mismatch -> "pretty-print/reparse round trip lost the spec"

(* --- reproducer bundles ---------------------------------------------------- *)

let rec ensure_dir path =
  if not (Sys.file_exists path) then begin
    let parent = Filename.dirname path in
    if parent <> path then ensure_dir parent;
    (try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let roundtrips spec =
  match Asim_syntax.Parser.parse_string (Pretty.spec spec) with
  | reparsed -> reparsed = spec
  | exception Error.Error _ -> false

let write_bundle ~dir ~seed ~index ~failure ~original ~shrunk =
  ensure_dir dir;
  write_file (Filename.concat dir "repro.asim") (Pretty.spec shrunk);
  write_file (Filename.concat dir "original.asim") (Pretty.spec original);
  let meta =
    String.concat "\n"
      [
        "asim fuzz reproducer";
        Printf.sprintf "seed: %d" seed;
        Printf.sprintf "index: %d" index;
        Printf.sprintf "failure: %s" (failure_to_string failure);
        (match failure with
        | Divergence { engine_a; engine_b; first_cycle; _ } ->
            Printf.sprintf "engine pair: %s vs %s%s"
              (Oracle.engine_to_string engine_a)
              (Oracle.engine_to_string engine_b)
              (match first_cycle with
              | Some c -> Printf.sprintf "\nfirst divergent cycle: %d" c
              | None -> "")
        | Roundtrip_mismatch -> "engine pair: pretty vs parser");
        Printf.sprintf "components in shrunk repro: %d"
          (List.length shrunk.Spec.components);
        Printf.sprintf "replay the generated spec: asim fuzz --seed %d --start %d --count 1"
          seed index;
        "rerun the shrunk repro directly: asim run repro.asim (per engine via -e)";
        "";
      ]
  in
  write_file (Filename.concat dir "META.txt") meta

(* --- the campaign ----------------------------------------------------------- *)

let run ?artifacts_dir ?time_budget ?feed ?(engines = Oracle.all) ?(start = 0)
    ?(shrink = true) ?(on_spec = fun _ _ -> ()) ?(log = fun _ -> ()) ~seed ~count
    ~size () =
  let t0 = Unix.gettimeofday () in
  let deadline = Option.map (fun b -> t0 +. b) time_budget in
  let tested = ref 0 in
  let reports = ref [] in
  let out_of_time () =
    match deadline with None -> false | Some d -> Unix.gettimeofday () > d
  in
  let check_spec index spec =
    if not (roundtrips spec) then Some Roundtrip_mismatch
    else
      match Oracle.check ?feed ~engines spec with
      | Some d -> Some (Divergence d)
      | None -> None
      | exception Error.Error e ->
          (* Engine construction itself failed: report it as a divergence of
             the whole engine set rather than crashing the campaign. *)
          Some
            (Divergence
               {
                 Oracle.engine_a = List.hd engines;
                 engine_b = List.hd engines;
                 first_cycle = None;
                 reason =
                   Printf.sprintf "spec %d broke the oracle: %s" index
                     (Error.to_string e);
               })
  in
  let i = ref start in
  let stop = start + count in
  while !i < stop && not (out_of_time ()) do
    let index = !i in
    let spec = Gen.spec_at size ~seed ~index in
    on_spec index spec;
    incr tested;
    (match check_spec index spec with
    | None -> ()
    | Some failure ->
        log (Printf.sprintf "spec %d: %s" index (failure_to_string failure));
        let keep =
          match failure with
          | Divergence _ -> fun s -> Oracle.check ?feed ~engines s <> None
          | Roundtrip_mismatch -> fun s -> not (roundtrips s)
        in
        let shrunk = if shrink then Shrink.spec ~keep spec else spec in
        (* Re-diagnose the shrunk spec so the report names the engine pair
           and cycle of the *minimized* witness. *)
        let failure =
          match failure with
          | Roundtrip_mismatch -> Roundtrip_mismatch
          | Divergence d -> (
              match Oracle.check ?feed ~engines shrunk with
              | Some d' -> Divergence d'
              | None -> Divergence d)
        in
        let bundle =
          match artifacts_dir with
          | None -> None
          | Some root ->
              let dir =
                Filename.concat root (Printf.sprintf "repro-seed%d-%d" seed index)
              in
              write_bundle ~dir ~seed ~index ~failure ~original:spec ~shrunk;
              log (Printf.sprintf "spec %d: reproducer bundle written to %s" index dir);
              Some dir
        in
        reports := { index; failure; original = spec; shrunk; bundle } :: !reports);
    incr i
  done;
  { tested = !tested; reports = List.rev !reports; elapsed = Unix.gettimeofday () -. t0 }

let report_to_string r =
  Printf.sprintf "spec %d: %s (shrunk to %d components%s)" r.index
    (failure_to_string r.failure)
    (List.length r.shrunk.Spec.components)
    (match r.bundle with Some dir -> "; bundle: " ^ dir | None -> "")

let summary ~seed ~engines outcome =
  Printf.sprintf "fuzz: %d specs tested (seed %d, engines %s) in %.1fs — %s" outcome.tested
    seed
    (String.concat "," (List.map Oracle.engine_to_string engines))
    outcome.elapsed
    (match outcome.reports with
    | [] -> "no divergences"
    | rs -> Printf.sprintf "%d failure(s)" (List.length rs))
