open Asim_core

type failure =
  | Divergence of Oracle.divergence
  | Roundtrip_mismatch

type report = {
  index : int;
  failure : failure;
  original : Spec.t;
  shrunk : Spec.t;
  bundle : string option;
}

type outcome = {
  tested : int;
  reports : report list;
  elapsed : float;
}

let failure_to_string = function
  | Divergence d -> Oracle.divergence_to_string d
  | Roundtrip_mismatch -> "pretty-print/reparse round trip lost the spec"

(* --- reproducer bundles ---------------------------------------------------- *)

let rec ensure_dir path =
  if not (Sys.file_exists path) then begin
    let parent = Filename.dirname path in
    if parent <> path then ensure_dir parent;
    (try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  end

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let roundtrips spec =
  match Asim_syntax.Parser.parse_string (Pretty.spec spec) with
  | reparsed -> reparsed = spec
  | exception Error.Error _ -> false

let write_bundle ~dir ~seed ~index ~failure ~original ~shrunk =
  ensure_dir dir;
  write_file (Filename.concat dir "repro.asim") (Pretty.spec shrunk);
  write_file (Filename.concat dir "original.asim") (Pretty.spec original);
  let meta =
    String.concat "\n"
      [
        "asim fuzz reproducer";
        Printf.sprintf "seed: %d" seed;
        Printf.sprintf "index: %d" index;
        Printf.sprintf "failure: %s" (failure_to_string failure);
        (match failure with
        | Divergence { engine_a; engine_b; first_cycle; _ } ->
            Printf.sprintf "engine pair: %s vs %s%s"
              (Oracle.engine_to_string engine_a)
              (Oracle.engine_to_string engine_b)
              (match first_cycle with
              | Some c -> Printf.sprintf "\nfirst divergent cycle: %d" c
              | None -> "")
        | Roundtrip_mismatch -> "engine pair: pretty vs parser");
        Printf.sprintf "components in shrunk repro: %d"
          (List.length shrunk.Spec.components);
        Printf.sprintf "replay the generated spec: asim fuzz --seed %d --start %d --count 1"
          seed index;
        "rerun the shrunk repro directly: asim run repro.asim (per engine via -e)";
        "";
      ]
  in
  write_file (Filename.concat dir "META.txt") meta

(* --- the campaign ----------------------------------------------------------- *)

(* What a worker hands back for one campaign index.  Checking and shrinking
   run on the worker; everything with observable order (on_spec, log lines,
   bundle writes, report accumulation) happens at emission, which
   [Asim_batch.Pool] serializes in index order — so campaign output is
   deterministic for any --jobs width, and byte-identical to the historical
   sequential driver. *)
type work_result = {
  w_spec : Asim_core.Spec.t option;  (** [None]: skipped (out of time budget) *)
  w_failure : (failure * Asim_core.Spec.t) option;  (** failure and shrunk witness *)
}

let run ?artifacts_dir ?time_budget ?(tracer = Asim_obs.Tracer.null) ?feed ?opt
    ?(engines = Oracle.all) ?(start = 0) ?(shrink = true) ?(on_spec = fun _ _ -> ())
    ?(log = fun _ -> ()) ?(jobs = 1) ~seed ~count ~size () =
  (* Engines that cannot run here (native without a toolchain) are dropped
     with a warning rather than aborting the campaign. *)
  let engines =
    List.filter
      (fun e ->
        Oracle.available e
        ||
        (log
           (Printf.sprintf
              "warning: engine %s unavailable here (no toolchain) — dropped \
               from the comparison set"
              (Oracle.engine_to_string e));
         false))
      engines
  in
  let t0 = Asim_obs.Clock.now () in
  let deadline = Option.map (fun b -> t0 +. b) time_budget in
  let tested = ref 0 in
  let reports = ref [] in
  let out_of_time () =
    match deadline with None -> false | Some d -> Asim_obs.Clock.now () > d
  in
  let check_spec index spec =
    if not (roundtrips spec) then Some Roundtrip_mismatch
    else
      match Oracle.check ?feed ?opt ~engines spec with
      | Some d -> Some (Divergence d)
      | None -> None
      | exception Error.Error e ->
          (* Engine construction itself failed: report it as a divergence of
             the whole engine set rather than crashing the campaign. *)
          Some
            (Divergence
               {
                 Oracle.engine_a = List.hd engines;
                 engine_b = List.hd engines;
                 first_cycle = None;
                 reason =
                   Printf.sprintf "spec %d broke the oracle: %s" index
                     (Error.to_string e);
               })
  in
  let work index =
    if out_of_time () then { w_spec = None; w_failure = None }
    else begin
      let attr = [ ("index", string_of_int index) ] in
      let spec =
        Asim_obs.Tracer.span tracer ~args:attr "fuzz.generate" (fun () ->
            Gen.spec_at size ~seed ~index)
      in
      match
        Asim_obs.Tracer.span tracer ~args:attr "fuzz.check" (fun () ->
            check_spec index spec)
      with
      | None -> { w_spec = Some spec; w_failure = None }
      | Some failure ->
          let keep =
            match failure with
            | Divergence _ -> fun s -> Oracle.check ?feed ?opt ~engines s <> None
            | Roundtrip_mismatch -> fun s -> not (roundtrips s)
          in
          let shrunk =
            if shrink then
              Asim_obs.Tracer.span tracer ~args:attr "fuzz.shrink" (fun () ->
                  Shrink.spec ~keep spec)
            else spec
          in
          (* Re-diagnose the shrunk spec so the report names the engine pair
             and cycle of the *minimized* witness. *)
          let failure =
            match failure with
            | Roundtrip_mismatch -> Roundtrip_mismatch
            | Divergence d -> (
                match Oracle.check ?feed ?opt ~engines shrunk with
                | Some d' -> Divergence d'
                | None -> Divergence d)
          in
          { w_spec = Some spec; w_failure = Some (failure, shrunk) }
    end
  in
  let finalize pool_index r =
    let index = start + pool_index in
    match r.w_spec with
    | None -> ()
    | Some spec ->
        incr tested;
        on_spec index spec;
        (match r.w_failure with
        | None -> ()
        | Some (failure, shrunk) ->
            log (Printf.sprintf "spec %d: %s" index (failure_to_string failure));
            let bundle =
              match artifacts_dir with
              | None -> None
              | Some root ->
                  let dir =
                    Filename.concat root (Printf.sprintf "repro-seed%d-%d" seed index)
                  in
                  write_bundle ~dir ~seed ~index ~failure ~original:spec ~shrunk;
                  log
                    (Printf.sprintf "spec %d: reproducer bundle written to %s" index dir);
                  Some dir
            in
            reports := { index; failure; original = spec; shrunk; bundle } :: !reports)
  in
  let pool =
    Asim_batch.Pool.create ~jobs
      ~on_crash:(fun pool_index exn ->
        (* A bug outside the oracle's own error handling: isolate it to this
           index as a structured failure instead of killing the campaign. *)
        let reason =
          Printf.sprintf "spec %d crashed the campaign: %s" (start + pool_index)
            (Printexc.to_string exn)
        in
        let empty = Asim_core.Spec.make [] in
        {
          w_spec = Some empty;
          w_failure =
            Some
              ( Divergence
                  {
                    Oracle.engine_a = List.hd engines;
                    engine_b = List.hd engines;
                    first_cycle = None;
                    reason;
                  },
                empty );
        })
      ~emit:finalize
  in
  for pool_index = 0 to count - 1 do
    ignore pool_index;
    Asim_batch.Pool.submit pool (fun pool_index -> work (start + pool_index))
  done;
  let _processed = Asim_batch.Pool.finish pool in
  { tested = !tested; reports = List.rev !reports; elapsed = Asim_obs.Clock.now () -. t0 }

let report_to_string r =
  Printf.sprintf "spec %d: %s (shrunk to %d components%s)" r.index
    (failure_to_string r.failure)
    (List.length r.shrunk.Spec.components)
    (match r.bundle with Some dir -> "; bundle: " ^ dir | None -> "")

let summary ~seed ~engines outcome =
  Printf.sprintf "fuzz: %d specs tested (seed %d, engines %s) in %.1fs — %s" outcome.tested
    seed
    (String.concat "," (List.map Oracle.engine_to_string engines))
    outcome.elapsed
    (match outcome.reports with
    | [] -> "no divergences"
    | rs -> Printf.sprintf "%d failure(s)" (List.length rs))
