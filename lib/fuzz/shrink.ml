open Asim_core

let well_formed spec =
  match Asim_analysis.Analysis.analyze spec with
  | (_ : Asim_analysis.Analysis.t) -> true
  | exception Error.Error _ -> false

(* --- size measure --------------------------------------------------------- *)

(* References weigh more than constants: rewriting a ref into a literal cuts
   a dependency edge and can unlock dropping the referenced component. *)
let atom_weight = function Expr.Ref _ -> 2 | Expr.Const _ | Expr.Bitstring _ -> 1

let expr_weight (e : Expr.t) =
  List.fold_left (fun acc a -> acc + atom_weight a) 0 e

let component_weight (c : Component.t) =
  match c.kind with
  | Component.Alu { fn; left; right } ->
      expr_weight fn + expr_weight left + expr_weight right
  | Component.Selector { select; cases } ->
      expr_weight select
      + Array.fold_left (fun acc case -> acc + 1 + expr_weight case) 0 cases
  | Component.Memory { addr; data; op; cells; init } ->
      expr_weight addr + expr_weight data + expr_weight op + (cells / 4)
      + (match init with Some _ -> 1 | None -> 0)

let weight (spec : Spec.t) =
  (1000 * List.length spec.components)
  + List.fold_left (fun acc c -> acc + component_weight c) 0 spec.components
  + List.length (List.filter (fun d -> d.Spec.traced) spec.decls)
  + Option.value spec.cycles ~default:0

(* --- candidate transformations -------------------------------------------- *)

let zero_expr = [ Expr.num_w 0 ~width:1 ]

(* Ways to make one expression smaller. *)
let shrink_expr (e : Expr.t) : Expr.t list =
  let replace_whole = if e = zero_expr then [] else [ zero_expr ] in
  let truncations =
    match e with
    | [] | [ _ ] -> []
    | first :: rest -> [ [ first ]; rest ]
  in
  let atom_to_const =
    List.concat
      (List.mapi
         (fun i atom ->
           match atom with
           | Expr.Ref _ ->
               (* 0 first; 1 as a fallback for sites whose divergence needs a
                  non-zero value flowing through. *)
               [
                 List.mapi (fun j a -> if i = j then Expr.num_w 0 ~width:1 else a) e;
                 List.mapi (fun j a -> if i = j then Expr.num_w 1 ~width:1 else a) e;
               ]
           | _ -> [])
         e)
  in
  replace_whole @ truncations @ atom_to_const

let with_component (spec : Spec.t) i (c : Component.t) =
  { spec with Spec.components = List.mapi (fun j cj -> if i = j then c else cj) spec.components }

(* Candidates from rewriting one expression site of component [i]. *)
let shrink_component_exprs (spec : Spec.t) i (c : Component.t) =
  let rebuild kind = with_component spec i { c with Component.kind } in
  match c.kind with
  | Component.Alu alu ->
      List.map (fun fn -> rebuild (Component.Alu { alu with fn })) (shrink_expr alu.fn)
      @ List.map (fun left -> rebuild (Component.Alu { alu with left })) (shrink_expr alu.left)
      @ List.map (fun right -> rebuild (Component.Alu { alu with right })) (shrink_expr alu.right)
  | Component.Selector sel ->
      let halve =
        let n = Array.length sel.cases in
        if n > 1 then
          [ rebuild (Component.Selector { sel with cases = Array.sub sel.cases 0 (n / 2) }) ]
        else []
      in
      halve
      @ List.map
          (fun select -> rebuild (Component.Selector { sel with select }))
          (shrink_expr sel.select)
      @ List.concat
          (List.init (Array.length sel.cases) (fun k ->
               List.map
                 (fun case ->
                   let cases = Array.copy sel.cases in
                   cases.(k) <- case;
                   rebuild (Component.Selector { sel with cases }))
                 (shrink_expr sel.cases.(k))))
  | Component.Memory m ->
      let halve_cells =
        if m.cells > 1 then
          let cells = m.cells / 2 in
          let init = Option.map (fun a -> Array.sub a 0 cells) m.init in
          [ rebuild (Component.Memory { m with cells; init }) ]
        else []
      in
      let drop_init =
        match m.init with
        | Some _ -> [ rebuild (Component.Memory { m with init = None }) ]
        | None -> []
      in
      halve_cells @ drop_init
      @ List.map (fun addr -> rebuild (Component.Memory { m with addr })) (shrink_expr m.addr)
      @ List.map (fun data -> rebuild (Component.Memory { m with data })) (shrink_expr m.data)
      @ List.map (fun op -> rebuild (Component.Memory { m with op })) (shrink_expr m.op)

let drop_component (spec : Spec.t) i =
  let victim = List.nth spec.components i in
  {
    spec with
    Spec.components = List.filteri (fun j _ -> j <> i) spec.components;
    decls = List.filter (fun d -> d.Spec.name <> victim.Component.name) spec.decls;
  }

let shrink_cycles (spec : Spec.t) =
  match spec.cycles with
  | Some n when n > 1 -> [ { spec with Spec.cycles = Some (n / 2) } ]
  | _ -> []

let untrace (spec : Spec.t) =
  List.filter_map
    (fun (d : Spec.decl) ->
      if d.traced then
        Some
          {
            spec with
            Spec.decls =
              List.map
                (fun (d' : Spec.decl) ->
                  if d'.name = d.name then { d' with Spec.traced = false } else d')
                spec.decls;
          }
      else None)
    spec.decls

(* Ordered, lazily-consumed: the big wins (whole components, run length)
   come first. *)
let candidates (spec : Spec.t) =
  let n = List.length spec.components in
  List.init n (drop_component spec)
  @ shrink_cycles spec
  @ List.concat (List.mapi (fun i c -> shrink_component_exprs spec i c) spec.components)
  @ untrace spec

(* --- the greedy loop ------------------------------------------------------- *)

let spec ~keep spec0 =
  let keep s = well_formed s && (try keep s with _ -> false) in
  if not (keep spec0) then spec0
  else begin
    let rec loop current =
      let w = weight current in
      match
        List.find_opt (fun cand -> weight cand < w && keep cand) (candidates current)
      with
      | Some smaller -> loop smaller
      | None -> current
    in
    loop spec0
  end
