open Asim_core
open Asim_sim

type engine =
  | Interp
  | Compiled
  | Unoptimized
  | Lowered
  | Flat
  | FlatFull
  | Par
  | Native
  | Tiered
  | Buggy

(* [Tiered] sits after [Native] so a toolchain-equipped campaign's native
   observation has already populated the in-process plugin memo: the tiered
   machine then swaps at cycle 0 without spawning a compile domain. *)
let all =
  [ Interp; Compiled; Unoptimized; Lowered; Flat; FlatFull; Par; Native; Tiered ]

(* [Native] shells out to the host toolchain; a campaign on a box without one
   should drop the engine (with a warning) rather than abort.  [Tiered] is
   always available: without a toolchain it degrades to flat-only with the
   same observables. *)
let available = function Native -> Asim_jit.Jit.available () | _ -> true

(* Which engines consume the optimized analysis when the oracle runs at
   [-O1]/[-O2].  The reference interpreters/compilers stay on the raw spec so
   a middle-end miscompile shows up as a divergence instead of agreeing with
   itself on both sides. *)
let optimized_class = function
  | Flat | FlatFull | Par | Native | Tiered -> true
  | Interp | Compiled | Unoptimized | Lowered | Buggy -> false

let engine_to_string = function
  | Interp -> "interp"
  | Compiled -> "compiled"
  | Unoptimized -> "unoptimized"
  | Lowered -> "lowered"
  | Flat -> "flat"
  | FlatFull -> "flat-full"
  | Par -> "par"
  | Native -> "native"
  | Tiered -> "tiered"
  | Buggy -> "buggy"

let engine_of_string s =
  match String.lowercase_ascii s with
  | "interp" | "interpreter" | "asim" -> Some Interp
  | "compiled" | "compile" | "asim2" | "asimii" -> Some Compiled
  | "unoptimized" | "unopt" -> Some Unoptimized
  | "lowered" | "lower" | "ir" -> Some Lowered
  | "flat" -> Some Flat
  | "flat-full" | "flat_full" | "flatfull" -> Some FlatFull
  | "par" | "bsp" | "partitioned" -> Some Par
  | "native" | "jit" -> Some Native
  | "tiered" | "tier" -> Some Tiered
  | "buggy" -> Some Buggy
  | _ -> None

(* The deliberate semantic bug behind the [Buggy] engine: every ALU whose
   function expression is the constant 4 (add) computes 5 (sub) instead. *)
let inject_bug (spec : Spec.t) =
  let corrupt (c : Component.t) =
    match c.kind with
    | Component.Alu ({ fn; _ } as alu) when Expr.const_value fn = Some 4 ->
        { c with Component.kind = Component.Alu { alu with fn = [ Expr.num 5 ] } }
    | _ -> c
  in
  { spec with Spec.components = List.map corrupt spec.Spec.components }

let build engine ~config (analysis : Asim_analysis.Analysis.t) =
  match engine with
  | Interp -> Asim_interp.Interp.create ~config analysis
  | Compiled -> Asim_compile.Compile.create ~config analysis
  | Unoptimized -> Asim_compile.Compile.create ~config ~optimize:false analysis
  | Lowered -> Loweval.create ~config analysis
  | Flat -> Asim_flat.Flat.create ~config ~schedule:Asim_flat.Flat.Activity analysis
  | FlatFull -> Asim_flat.Flat.create ~config ~schedule:Asim_flat.Flat.Full analysis
  | Par ->
      (* Domain count from ASIM_PAR_DOMAINS (else the core count) — the CI
         smoke pins 4 so the BSP path is exercised even on small boxes, and
         ASIM_PAR_SKEW=1 must make this engine diverge (a must-fail check,
         like the tiered engine's swap skew). *)
      Asim_par.Par.create ~config analysis
  | Native -> Asim_jit.Jit.create ~config analysis
  | Tiered ->
      (* The swap policy comes from ASIM_TIERED_SWAP_AT when set (how the
         swap-point harness forces adversarial handoffs), else [Auto] —
         correctness must be swap-timing invariant either way.  The
         no-toolchain warning is silenced: a campaign would repeat it per
         observation and it is already reported once by the default
         warner. *)
      Asim_tiered.Tiered.create ~config ~on_warning:ignore analysis
  | Buggy ->
      Asim_compile.Compile.create ~config
        (Asim_analysis.Analysis.analyze
           (inject_bug analysis.Asim_analysis.Analysis.spec))

type observation = {
  snapshots : (string * int) list array;
  trace : string;
  events : Io.event list;
  cells : (string * int list) list;
  outputs : (string * int) list;
  total_accesses : int;
  error : string option;
}

let default_feed = [ 3; 1; 4; 1; 5; 9; 2; 6; 5; 3; 5; 8; 9; 7; 9; 3; 2; 3; 8; 4 ]

let observe ?(feed = default_feed) ?cycles ?(opt = Asim_opt.Opt.O0) engine
    (spec : Spec.t) =
  let cycles =
    match cycles with
    | Some n -> n
    | None -> Option.value spec.Spec.cycles ~default:20
  in
  let analysis = Asim_analysis.Analysis.analyze spec in
  (* The dead list is a property of (spec, opt level), not of the engine: it
     must mask the same names in every observation — reference included —
     or DCE itself would read as a divergence. *)
  let opt_result =
    match opt with
    | Asim_opt.Opt.O0 -> None
    | level -> Some (Asim_opt.Opt.run_result ~level analysis)
  in
  let analysis =
    match opt_result with
    | Some r when optimized_class engine -> r.Asim_opt.Opt.analysis
    | _ -> analysis
  in
  let masked = Hashtbl.create 8 in
  (match opt_result with
  | Some r -> List.iter (fun n -> Hashtbl.replace masked n ()) r.Asim_opt.Opt.dead
  | None -> ());
  let buf = Buffer.create 512 in
  let io, events = Io.recording ~feed () in
  let config = { Machine.io; trace = Trace.buffer_sink buf; faults = [] } in
  let m = build engine ~config analysis in
  let read n = if Hashtbl.mem masked n then 0 else m.Machine.read n in
  let names = List.map (fun (c : Component.t) -> c.name) spec.Spec.components in
  let snaps = ref [] in
  let error = ref None in
  (try
     for _ = 1 to cycles do
       Machine.run m ~cycles:1;
       snaps := List.map (fun n -> (n, read n)) names :: !snaps
     done
   with Error.Error { phase = Error.Runtime; message; _ } -> error := Some message);
  let cells =
    List.filter_map
      (fun (c : Component.t) ->
        match c.kind with
        | Component.Memory { cells; _ } ->
            Some (c.name, List.init cells (fun i -> m.Machine.read_cell c.name i))
        | _ -> None)
      spec.Spec.components
  in
  {
    snapshots = Array.of_list (List.rev !snaps);
    trace = Buffer.contents buf;
    events = events ();
    cells;
    outputs = List.map (fun n -> (n, read n)) names;
    total_accesses = Stats.total_accesses m.Machine.stats;
    error = !error;
  }

type divergence = {
  engine_a : engine;
  engine_b : engine;
  first_cycle : int option;
  reason : string;
}

let first_trace_diff a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go i = function
    | [], [] -> None
    | x :: xs, y :: ys -> if x = y then go (i + 1) (xs, ys) else Some (i, x, y)
    | x :: _, [] -> Some (i, x, "<end of trace>")
    | [], y :: _ -> Some (i, "<end of trace>", y)
  in
  go 1 (la, lb)

let diff ~engine_a ~engine_b (a : observation) (b : observation) =
  if a = b then None
  else begin
    let first_cycle =
      let n = min (Array.length a.snapshots) (Array.length b.snapshots) in
      let rec go i =
        if i >= n then
          if Array.length a.snapshots <> Array.length b.snapshots then Some n
          else None
        else if a.snapshots.(i) <> b.snapshots.(i) then Some i
        else go (i + 1)
      in
      go 0
    in
    let aspects =
      List.filter_map
        (fun (label, differs) -> if differs then Some label else None)
        [
          ("per-cycle outputs", a.snapshots <> b.snapshots);
          ("trace", a.trace <> b.trace);
          ("I/O events", a.events <> b.events);
          ("memory cells", a.cells <> b.cells);
          ("final outputs", a.outputs <> b.outputs);
          ("statistics", a.total_accesses <> b.total_accesses);
          ("runtime error", a.error <> b.error);
        ]
    in
    let detail =
      match first_trace_diff a.trace b.trace with
      | Some (line, x, y) ->
          Printf.sprintf "; trace line %d: %S vs %S" line x y
      | None -> (
          match (a.error, b.error) with
          | ea, eb when ea <> eb ->
              Printf.sprintf "; error %S vs %S"
                (Option.value ~default:"-" ea)
                (Option.value ~default:"-" eb)
          | _ -> "")
    in
    Some
      {
        engine_a;
        engine_b;
        first_cycle;
        reason = String.concat ", " aspects ^ detail;
      }
  end

let check ?feed ?cycles ?opt ?(engines = all) spec =
  match engines with
  | [] | [ _ ] -> None
  | reference :: rest ->
      let ref_obs = observe ?feed ?cycles ?opt reference spec in
      List.fold_left
        (fun acc engine ->
          match acc with
          | Some _ -> acc
          | None ->
              diff ~engine_a:reference ~engine_b:engine ref_obs
                (observe ?feed ?cycles ?opt engine spec))
        None rest

let divergence_to_string d =
  Printf.sprintf "%s vs %s diverge%s: %s"
    (engine_to_string d.engine_a)
    (engine_to_string d.engine_b)
    (match d.first_cycle with
    | Some c -> Printf.sprintf " (first divergent cycle %d)" c
    | None -> "")
    d.reason
