(** Greedy spec minimizer.

    Given a property [keep] that holds of a spec (typically "this spec makes
    two engines diverge"), [shrink] repeatedly applies the first
    size-reducing transformation under which the property still holds:
    dropping whole components, halving the cycle count, replacing
    expressions with constants or truncating them, halving selector case
    lists and memory cell counts, and untracing components.  Candidates that
    break well-formedness (dangling references, circularity) are discarded
    before [keep] is consulted, so [keep] only ever sees analyzable specs. *)

val weight : Asim_core.Spec.t -> int
(** The strictly-decreasing size measure the shrinker minimizes: components
    dominate, then expression atoms, selector cases, cell counts, traced
    names and the cycle count. *)

val spec :
  keep:(Asim_core.Spec.t -> bool) -> Asim_core.Spec.t -> Asim_core.Spec.t
(** Minimize under [keep].  If [keep] does not hold of the input (or raises),
    the input is returned unchanged.  Exceptions raised by [keep] on
    candidates are treated as "property lost". *)
