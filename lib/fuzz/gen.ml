open Asim_core

type size = {
  max_comb : int;
  max_mem : int;
  cycles : int;
  wide : bool;
}

let default_size = { max_comb = 6; max_mem = 3; cycles = 20; wide = false }

(* Draws, [a..b] and [0..n] inclusive. *)
let range st a b = if b <= a then a else a + Random.State.int st (b - a + 1)

let upto st n = if n <= 0 then 0 else Random.State.int st (n + 1)

let mem_name i = Printf.sprintf "m%d" i

let comb_name i = Printf.sprintf "c%d" i

(* The shape fixes how many components exist, so atom generators can pick
   names that are guaranteed to resolve. *)
type shape = { n_comb : int; n_mem : int }

(* A narrow atom reading earlier combinational components (index < limit) or
   any memory; every atom is a small field, so widths always fit. *)
let gen_atom st ~shape ~limit =
  let gen_ref () =
    let use_mem =
      if limit = 0 then true
      else if shape.n_mem = 0 then false
      else Random.State.bool st
    in
    let name =
      if use_mem then mem_name (upto st (shape.n_mem - 1))
      else comb_name (upto st (limit - 1))
    in
    let lo = upto st 8 in
    let w = range st 1 4 in
    Expr.ref_range name lo (lo + w - 1)
  and gen_const () =
    let v = upto st 15 in
    let w = range st 1 4 in
    Expr.num_w v ~width:w
  in
  if limit = 0 && shape.n_mem = 0 then gen_const ()
  else if Random.State.bool st then gen_ref ()
  else gen_const ()

let gen_expr st ~shape ~limit =
  let n = range st 1 3 in
  List.init n (fun _ -> gen_atom st ~shape ~limit)

(* A filling atom: a whole-component reference or an un-suffixed constant.
   Legal only leftmost; exercises full-word values and negative
   intermediates. *)
let gen_filling_atom st ~shape ~limit =
  let gen_ref () =
    let use_mem =
      if limit = 0 then true
      else if shape.n_mem = 0 then false
      else Random.State.bool st
    in
    let name =
      if use_mem then mem_name (upto st (shape.n_mem - 1))
      else comb_name (upto st (limit - 1))
    in
    Expr.ref_ name
  in
  if (limit > 0 || shape.n_mem > 0) && Random.State.bool st then gen_ref ()
  else Expr.num (upto st 65535)

let gen_expr_wide st ~shape ~limit =
  let narrow = gen_expr st ~shape ~limit in
  match range st 0 2 with
  | 0 -> narrow
  | 1 -> gen_filling_atom st ~shape ~limit :: narrow
  | _ -> [ gen_filling_atom st ~shape ~limit ]

let gen_alu st ~shape ~limit ~wide name =
  let fn =
    if Random.State.bool st then [ Expr.num (upto st 13) ]
    else gen_expr st ~shape ~limit
  in
  let operand = if wide then gen_expr_wide else gen_expr in
  let left = operand st ~shape ~limit in
  let right = operand st ~shape ~limit in
  { Component.name; kind = Component.Alu { fn; left; right } }

let gen_selector st ~shape ~limit name =
  let bits = range st 1 3 in
  let cases_n = 1 lsl bits in
  let select =
    if limit = 0 && shape.n_mem = 0 then [ Expr.num (upto st (cases_n - 1)) ]
    else
      match gen_atom st ~shape ~limit with
      | Expr.Ref { name; _ } -> [ Expr.ref_range name 0 (bits - 1) ]
      | _ -> [ Expr.num (upto st (cases_n - 1)) ]
  in
  let cases = Array.init cases_n (fun _ -> gen_expr st ~shape ~limit) in
  { Component.name; kind = Component.Selector { select; cases } }

let gen_memory st ~shape ~wide name =
  let limit = shape.n_comb in
  let addr_bits = range st 0 4 in
  let cells = 1 lsl addr_bits in
  let addr =
    if addr_bits = 0 then [ Expr.num 0 ]
    else
      match gen_atom st ~shape ~limit with
      | Expr.Ref { name; _ } -> [ Expr.ref_range name 0 (addr_bits - 1) ]
      | _ -> [ Expr.num (upto st (cells - 1)) ]
  in
  let data =
    if wide then gen_expr_wide st ~shape ~limit else gen_expr st ~shape ~limit
  in
  let op =
    if Random.State.bool st then [ Expr.num (upto st 15) ]
    else [ gen_atom st ~shape ~limit ]
  in
  let init =
    if Random.State.bool st then None
    else Some (Array.init cells (fun _ -> upto st 1000))
  in
  { Component.name; kind = Component.Memory { addr; data; op; cells; init } }

let spec size st =
  let wide = size.wide in
  let n_comb = range st 1 (max 1 size.max_comb) in
  let n_mem = range st 1 (max 1 size.max_mem) in
  let shape = { n_comb; n_mem } in
  let combs =
    List.init n_comb (fun i ->
        if Random.State.bool st then gen_alu st ~shape ~limit:i ~wide (comb_name i)
        else gen_selector st ~shape ~limit:i (comb_name i))
  in
  let mems = List.init n_mem (fun i -> gen_memory st ~shape ~wide (mem_name i)) in
  let components = combs @ mems in
  let decls =
    List.map
      (fun (c : Component.t) ->
        { Spec.name = c.name; traced = wide || Random.State.bool st })
      components
  in
  {
    Spec.comment = (if wide then "random-wide" else "random");
    cycles = Some size.cycles;
    decls;
    components;
  }

(* --- structured workloads ------------------------------------------------ *)

(* The structured generators below scale the same width/range discipline as
   the random generator (narrow fields, field-narrowed selects, constant
   memory ops) up to 1k-100k components, arranged so the component graph has
   a shape a partitioner can exploit.  Names are letters+digits only, as
   [Spec.validate] requires. *)

let struct_field st name =
  let lo = upto st 4 in
  let w = range st 1 4 in
  Expr.ref_range name lo (lo + w - 1)

(* Replica-crossing reads take the low bits: the values flowing through a
   generated design are a few bits wide, so a random high-bit field of a
   neighbouring replica is too often constant zero — a cross edge the
   dependency graph sees but no observable ever feels, which would let the
   planted ASIM_PAR_SKEW lost update slip past the oracle. *)
let struct_low_field st name = Expr.ref_range name 0 (range st 1 4 - 1)

let struct_const st = Expr.num_w (upto st 15) ~width:(range st 1 4)

(* ALU functions that propagate every change of the right operand; a cross
   value fed through [Fn_zero] or [Fn_left] would be another dead edge. *)
let right_sensitive_fns = [| 4 (* add *); 5 (* sub *); 9 (* or *); 10 (* xor *) |]

(* A combinational stage reading [prev] (its upstream neighbour, possibly a
   memory) and optionally [cross] (a component in another replica, creating
   deliberate cross-partition traffic).  Roughly one stage in ten is a
   selector, keyed on two bits of [prev] with exactly four cases so the
   select can never leave range. *)
let struct_stage st ~prev ~cross name =
  if range st 0 9 = 0 then
    let select = [ Expr.ref_range prev 0 1 ] in
    let case () =
      match cross with
      | Some c when Random.State.bool st ->
          [ struct_low_field st c; struct_const st ]
      | _ -> [ struct_field st prev; struct_const st ]
    in
    {
      Component.name;
      kind = Component.Selector { select; cases = Array.init 4 (fun _ -> case ()) };
    }
  else
    let left = [ struct_field st prev; struct_const st ] in
    let fn, right =
      match cross with
      | Some c ->
          ( [ Expr.num right_sensitive_fns.(upto st 3) ],
            [ struct_low_field st c ] )
      | None -> ([ Expr.num (range st 0 13) ], [ struct_const st ])
    in
    { Component.name; kind = Component.Alu { fn; left; right } }

(* One single-cell register: plain write (op 1 traces nothing), data fed by
   a narrow field of [src]. *)
let struct_reg st ~src name =
  {
    Component.name;
    kind =
      Component.Memory
        {
          addr = [ Expr.num 0 ];
          data = [ struct_field st src; struct_const st ];
          op = [ Expr.num 1 ];
          cells = 1;
          init = Some [| upto st 1000 |];
        };
  }

(* Tracing a deterministic ~1% sample keeps engine-diffing through the trace
   stream meaningful without drowning large runs in output. *)
let struct_decls components =
  List.mapi
    (fun i (c : Component.t) -> { Spec.name = c.name; traced = i mod 97 = 0 })
    components

let pipeline ?(cycles = 200) ~cores ~depth ~seed () =
  let cores = max 1 cores and depth = max 1 depth in
  let st = Random.State.make [| 0x6e57; 0x91be; seed |] in
  let stage_name r s = Printf.sprintf "g%ds%d" r s in
  let reg_name r = Printf.sprintf "g%dm" r in
  (* Core [r]: stages s0 .. s(depth-1) in a chain fed from the core's
     register, each stage past the first also tapping the matching stage of
     core [r-1] — so replicas are *not* independent and a partitioner must
     either co-locate neighbouring cores or pay mailbox traffic.  The
     register latches the last stage, closing the cycle through state. *)
  let core r =
    let stages =
      List.init depth (fun s ->
          let prev = if s = 0 then reg_name r else stage_name r (s - 1) in
          let cross = if r > 0 && s > 0 then Some (stage_name (r - 1) s) else None in
          struct_stage st ~prev ~cross (stage_name r s))
    in
    stages @ [ struct_reg st ~src:(stage_name r (depth - 1)) (reg_name r) ]
  in
  let components = List.concat (List.init cores core) in
  {
    Spec.comment =
      Printf.sprintf "genspec pipeline cores=%d depth=%d seed=%d" cores depth seed;
    cycles = Some cycles;
    decls = struct_decls components;
    components;
  }

let mesh ?(cycles = 200) ~width ~height ~seed () =
  let w = max 1 width and h = max 1 height in
  let st = Random.State.make [| 0x6e57; 0x3e54; seed |] in
  let node_name x y = Printf.sprintf "n%dx%d" x y in
  let reg_name y = Printf.sprintf "r%dm" y in
  (* Row [y]: a west-to-east combinational chain seeded from the row's
     register, every node also reading the *previous* row's register — all
     inter-row traffic flows through state, so a row-aligned partitioning
     has zero cross-partition combinational edges (the per-cycle-barrier
     best case). *)
  let row y =
    let nodes =
      List.init w (fun x ->
          let prev = if x = 0 then reg_name y else node_name (x - 1) y in
          let name = node_name x y in
          let north = reg_name ((y + h - 1) mod h) in
          let stage = struct_stage st ~prev ~cross:None name in
          match stage.Component.kind with
          | Component.Alu a ->
              (* Grafting the north field onto the right operand only makes
                 the inter-row edge live if [fn] propagates right-operand
                 changes — redraw it like the pipeline generator's cross
                 path does. *)
              {
                stage with
                Component.kind =
                  Component.Alu
                    {
                      a with
                      Component.fn =
                        [ Expr.num right_sensitive_fns.(upto st 3) ];
                      right = [ struct_low_field st north ];
                    };
              }
          | _ -> stage)
    in
    nodes @ [ struct_reg st ~src:(node_name (w - 1) y) (reg_name y) ]
  in
  let components = List.concat (List.init h row) in
  {
    Spec.comment =
      Printf.sprintf "genspec mesh width=%d height=%d seed=%d" w h seed;
    cycles = Some cycles;
    decls = struct_decls components;
    components;
  }

let spec_at size ~seed ~index =
  (* Each index derives its own state, so replaying spec [index] never needs
     the indices before it. *)
  let st = Random.State.make [| 0x5eed; seed; index |] in
  let s = spec size st in
  { s with Spec.comment = Printf.sprintf "fuzz seed=%d index=%d" seed index }
