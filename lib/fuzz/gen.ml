open Asim_core

type size = {
  max_comb : int;
  max_mem : int;
  cycles : int;
  wide : bool;
}

let default_size = { max_comb = 6; max_mem = 3; cycles = 20; wide = false }

(* Draws, [a..b] and [0..n] inclusive. *)
let range st a b = if b <= a then a else a + Random.State.int st (b - a + 1)

let upto st n = if n <= 0 then 0 else Random.State.int st (n + 1)

let mem_name i = Printf.sprintf "m%d" i

let comb_name i = Printf.sprintf "c%d" i

(* The shape fixes how many components exist, so atom generators can pick
   names that are guaranteed to resolve. *)
type shape = { n_comb : int; n_mem : int }

(* A narrow atom reading earlier combinational components (index < limit) or
   any memory; every atom is a small field, so widths always fit. *)
let gen_atom st ~shape ~limit =
  let gen_ref () =
    let use_mem =
      if limit = 0 then true
      else if shape.n_mem = 0 then false
      else Random.State.bool st
    in
    let name =
      if use_mem then mem_name (upto st (shape.n_mem - 1))
      else comb_name (upto st (limit - 1))
    in
    let lo = upto st 8 in
    let w = range st 1 4 in
    Expr.ref_range name lo (lo + w - 1)
  and gen_const () =
    let v = upto st 15 in
    let w = range st 1 4 in
    Expr.num_w v ~width:w
  in
  if limit = 0 && shape.n_mem = 0 then gen_const ()
  else if Random.State.bool st then gen_ref ()
  else gen_const ()

let gen_expr st ~shape ~limit =
  let n = range st 1 3 in
  List.init n (fun _ -> gen_atom st ~shape ~limit)

(* A filling atom: a whole-component reference or an un-suffixed constant.
   Legal only leftmost; exercises full-word values and negative
   intermediates. *)
let gen_filling_atom st ~shape ~limit =
  let gen_ref () =
    let use_mem =
      if limit = 0 then true
      else if shape.n_mem = 0 then false
      else Random.State.bool st
    in
    let name =
      if use_mem then mem_name (upto st (shape.n_mem - 1))
      else comb_name (upto st (limit - 1))
    in
    Expr.ref_ name
  in
  if (limit > 0 || shape.n_mem > 0) && Random.State.bool st then gen_ref ()
  else Expr.num (upto st 65535)

let gen_expr_wide st ~shape ~limit =
  let narrow = gen_expr st ~shape ~limit in
  match range st 0 2 with
  | 0 -> narrow
  | 1 -> gen_filling_atom st ~shape ~limit :: narrow
  | _ -> [ gen_filling_atom st ~shape ~limit ]

let gen_alu st ~shape ~limit ~wide name =
  let fn =
    if Random.State.bool st then [ Expr.num (upto st 13) ]
    else gen_expr st ~shape ~limit
  in
  let operand = if wide then gen_expr_wide else gen_expr in
  let left = operand st ~shape ~limit in
  let right = operand st ~shape ~limit in
  { Component.name; kind = Component.Alu { fn; left; right } }

let gen_selector st ~shape ~limit name =
  let bits = range st 1 3 in
  let cases_n = 1 lsl bits in
  let select =
    if limit = 0 && shape.n_mem = 0 then [ Expr.num (upto st (cases_n - 1)) ]
    else
      match gen_atom st ~shape ~limit with
      | Expr.Ref { name; _ } -> [ Expr.ref_range name 0 (bits - 1) ]
      | _ -> [ Expr.num (upto st (cases_n - 1)) ]
  in
  let cases = Array.init cases_n (fun _ -> gen_expr st ~shape ~limit) in
  { Component.name; kind = Component.Selector { select; cases } }

let gen_memory st ~shape ~wide name =
  let limit = shape.n_comb in
  let addr_bits = range st 0 4 in
  let cells = 1 lsl addr_bits in
  let addr =
    if addr_bits = 0 then [ Expr.num 0 ]
    else
      match gen_atom st ~shape ~limit with
      | Expr.Ref { name; _ } -> [ Expr.ref_range name 0 (addr_bits - 1) ]
      | _ -> [ Expr.num (upto st (cells - 1)) ]
  in
  let data =
    if wide then gen_expr_wide st ~shape ~limit else gen_expr st ~shape ~limit
  in
  let op =
    if Random.State.bool st then [ Expr.num (upto st 15) ]
    else [ gen_atom st ~shape ~limit ]
  in
  let init =
    if Random.State.bool st then None
    else Some (Array.init cells (fun _ -> upto st 1000))
  in
  { Component.name; kind = Component.Memory { addr; data; op; cells; init } }

let spec size st =
  let wide = size.wide in
  let n_comb = range st 1 (max 1 size.max_comb) in
  let n_mem = range st 1 (max 1 size.max_mem) in
  let shape = { n_comb; n_mem } in
  let combs =
    List.init n_comb (fun i ->
        if Random.State.bool st then gen_alu st ~shape ~limit:i ~wide (comb_name i)
        else gen_selector st ~shape ~limit:i (comb_name i))
  in
  let mems = List.init n_mem (fun i -> gen_memory st ~shape ~wide (mem_name i)) in
  let components = combs @ mems in
  let decls =
    List.map
      (fun (c : Component.t) ->
        { Spec.name = c.name; traced = wide || Random.State.bool st })
      components
  in
  {
    Spec.comment = (if wide then "random-wide" else "random");
    cycles = Some size.cycles;
    decls;
    components;
  }

let spec_at size ~seed ~index =
  (* Each index derives its own state, so replaying spec [index] never needs
     the indices before it. *)
  let st = Random.State.make [| 0x5eed; seed; index |] in
  let s = spec size st in
  { s with Spec.comment = Printf.sprintf "fuzz seed=%d index=%d" seed index }
