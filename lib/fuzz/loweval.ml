open Asim_core
open Asim_sim
module Lower = Asim_codegen.Lower

(* One lowered term, with the component name resolved to a value slot.  A
   [mask] of 0 with [whole = true] means "no masking" (a filling reference);
   its shift is always >= 0 because filling atoms are leftmost. *)
type term =
  | Tconst of int
  | Tfield of { id : int; mask : int; whole : bool; shift : int }

type prog = term array

type mem = {
  mm_name : string;
  mm_id : int;
  mm_addr : prog;
  mm_data : prog;
  mm_op : prog;
  mm_cells : int array;
  mutable mm_addr_snap : int;
  mutable mm_op_snap : int;
}

type comb =
  | Lalu of { l_name : string; l_id : int; l_fn : prog; l_left : prog; l_right : prog }
  | Lsel of { l_name : string; l_id : int; l_select : prog; l_cases : prog array }

type state = {
  config : Machine.config;
  stats : Stats.t;
  vals : int array;
  combs : comb array;
  mems : mem array;
  traced : (string * int) array;
  has_faults : bool;
  mutable cycle : int;
}

let compile_expr ids e : prog =
  Lower.lower e
  |> List.map (function
       | Lower.Const c -> Tconst c
       | Lower.Field { name; mask; shift } -> (
           let id =
             match Hashtbl.find_opt ids name with
             | Some id -> id
             | None -> Error.failf Error.Analysis "Component <%s> not found." name
           in
           match mask with
           | None -> Tfield { id; mask = 0; whole = true; shift }
           | Some m -> Tfield { id; mask = m; whole = false; shift }))
  |> Array.of_list

let eval st (p : prog) =
  let acc = ref 0 in
  for i = 0 to Array.length p - 1 do
    match p.(i) with
    | Tconst c -> acc := !acc + c
    | Tfield { id; mask; whole; shift } ->
        let v = st.vals.(id) in
        let v = if whole then v else v land mask in
        let v = if shift >= 0 then v lsl shift else v lsr -shift in
        acc := !acc + v
  done;
  !acc

let fault st name value =
  if st.has_faults then
    Fault.apply st.config.Machine.faults ~cycle:st.cycle ~component:name value
  else value

let eval_comb st = function
  | Lalu { l_name; l_id; l_fn; l_left; l_right } ->
      let v =
        Component.apply_alu_code (eval st l_fn) ~left:(eval st l_left)
          ~right:(eval st l_right)
      in
      st.vals.(l_id) <- fault st l_name v
  | Lsel { l_name; l_id; l_select; l_cases } ->
      let index = eval st l_select in
      if index < 0 || index >= Array.length l_cases then
        Machine.selector_out_of_range ~component:l_name ~cycle:st.cycle ~index
          ~cases:(Array.length l_cases)
      else st.vals.(l_id) <- fault st l_name (eval st l_cases.(index))

let update_memory st m =
  let address = m.mm_addr_snap and op = m.mm_op_snap in
  let check_address () =
    if address < 0 || address >= Array.length m.mm_cells then
      Machine.address_out_of_range ~component:m.mm_name ~cycle:st.cycle ~address
        ~cells:(Array.length m.mm_cells)
  in
  let kind = Component.memory_op_of_code op in
  (match kind with
  | Component.Op_read ->
      check_address ();
      st.vals.(m.mm_id) <- m.mm_cells.(address)
  | Component.Op_write ->
      check_address ();
      st.vals.(m.mm_id) <- eval st m.mm_data;
      m.mm_cells.(address) <- st.vals.(m.mm_id)
  | Component.Op_input -> st.vals.(m.mm_id) <- st.config.Machine.io.Io.input ~address
  | Component.Op_output ->
      st.vals.(m.mm_id) <- eval st m.mm_data;
      st.config.Machine.io.Io.output ~address ~data:st.vals.(m.mm_id));
  Stats.count_op st.stats m.mm_name kind;
  if Component.traces_writes op then
    st.config.Machine.trace
      (Trace.write_line ~memory:m.mm_name ~address ~data:st.vals.(m.mm_id));
  if Component.traces_reads op then
    st.config.Machine.trace
      (Trace.read_line ~memory:m.mm_name ~address ~data:st.vals.(m.mm_id));
  st.vals.(m.mm_id) <- fault st m.mm_name st.vals.(m.mm_id)

let step st () =
  Array.iter (eval_comb st) st.combs;
  if st.config.Machine.trace != Trace.null_sink then
    st.config.Machine.trace
      (Trace.cycle_line ~cycle:st.cycle
         (Array.to_list
            (Array.map (fun (name, id) -> (name, st.vals.(id))) st.traced)));
  Array.iter
    (fun m ->
      m.mm_addr_snap <- eval st m.mm_addr;
      m.mm_op_snap <- eval st m.mm_op)
    st.mems;
  Array.iter (update_memory st) st.mems;
  st.cycle <- st.cycle + 1;
  Stats.bump_cycle st.stats

let create ?(config = Machine.default_config) (analysis : Asim_analysis.Analysis.t) =
  let spec = analysis.Asim_analysis.Analysis.spec in
  let components = spec.Spec.components in
  let ids = Hashtbl.create 64 in
  List.iteri (fun i (c : Component.t) -> Hashtbl.replace ids c.name i) components;
  let id name = Hashtbl.find ids name in
  let combs =
    analysis.Asim_analysis.Analysis.order
    |> List.map (fun (c : Component.t) ->
           match c.kind with
           | Component.Alu { fn; left; right } ->
               Lalu
                 {
                   l_name = c.name;
                   l_id = id c.name;
                   l_fn = compile_expr ids fn;
                   l_left = compile_expr ids left;
                   l_right = compile_expr ids right;
                 }
           | Component.Selector { select; cases } ->
               Lsel
                 {
                   l_name = c.name;
                   l_id = id c.name;
                   l_select = compile_expr ids select;
                   l_cases = Array.map (compile_expr ids) cases;
                 }
           | Component.Memory _ -> assert false)
    |> Array.of_list
  in
  let mems =
    analysis.Asim_analysis.Analysis.memories
    |> List.map (fun (c : Component.t) ->
           match c.kind with
           | Component.Memory m ->
               {
                 mm_name = c.name;
                 mm_id = id c.name;
                 mm_addr = compile_expr ids m.addr;
                 mm_data = compile_expr ids m.data;
                 mm_op = compile_expr ids m.op;
                 mm_cells =
                   (match m.init with
                   | Some values -> Array.copy values
                   | None -> Array.make m.cells 0);
                 mm_addr_snap = 0;
                 mm_op_snap = 0;
               }
           | Component.Alu _ | Component.Selector _ -> assert false)
    |> Array.of_list
  in
  let st =
    {
      config;
      stats =
        Stats.create
          ~memories:(Array.to_list (Array.map (fun m -> m.mm_name) mems));
      vals = Array.make (List.length components) 0;
      combs;
      mems;
      traced =
        Spec.traced_names spec
        |> List.map (fun name -> (name, id name))
        |> Array.of_list;
      has_faults = config.Machine.faults <> [];
      cycle = 0;
    }
  in
  let memory_by_name name =
    match Array.find_opt (fun m -> String.equal m.mm_name name) mems with
    | Some m -> m
    | None -> Error.failf Error.Runtime "Component <%s> is not a memory." name
  in
  let read_cell name index =
    let m = memory_by_name name in
    if index < 0 || index >= Array.length m.mm_cells then
      invalid_arg "Loweval: cell index out of range"
    else m.mm_cells.(index)
  in
  let write_cell name index value =
    let m = memory_by_name name in
    if index < 0 || index >= Array.length m.mm_cells then
      invalid_arg "Loweval: cell index out of range"
    else m.mm_cells.(index) <- value
  in
  let read name =
    match Hashtbl.find_opt ids name with
    | Some i -> st.vals.(i)
    | None -> Error.failf Error.Runtime "Component <%s> not found." name
  in
  {
    Machine.analysis;
    step = step st;
    read;
    read_cell;
    write_cell;
    current_cycle = (fun () -> st.cycle);
    stats = st.stats;
  }

let of_spec ?config spec = create ?config (Asim_analysis.Analysis.analyze spec)
