type timings = {
  generate_s : float;
  compile_s : float;
  run_s : float;
}

type result = {
  timings : timings;
  output : string;
  source_path : string;
  binary_path : string;
}

let command_exists cmd =
  Sys.command (Printf.sprintf "command -v %s > /dev/null 2>&1" (Filename.quote cmd)) = 0

let compile_command lang ~source ~binary =
  match lang with
  | Codegen.Ocaml ->
      Some
        (Printf.sprintf "ocamlopt %s -o %s > /dev/null 2>&1" (Filename.quote source)
           (Filename.quote binary))
  | Codegen.C ->
      Some
        (Printf.sprintf "cc -O2 -o %s %s > /dev/null 2>&1" (Filename.quote binary)
           (Filename.quote source))
  | Codegen.Pascal | Codegen.Verilog -> None

let compiler_available = function
  | Codegen.Ocaml -> command_exists "ocamlopt"
  | Codegen.C -> command_exists "cc"
  | Codegen.Pascal | Codegen.Verilog -> false

let timed tracer name f =
  let t0 = Asim_obs.Clock.now () in
  let v = Asim_obs.Tracer.span tracer name f in
  (v, Asim_obs.Clock.now () -. t0)

let fresh_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec try_n n =
    let dir = Filename.concat base (Printf.sprintf "asim-pipeline-%d-%d" (Unix.getpid ()) n) in
    if Sys.file_exists dir then try_n (n + 1)
    else begin
      Unix.mkdir dir 0o755;
      dir
    end
  in
  try_n 0

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run ?dir ?cycles ?(tracer = Asim_obs.Tracer.null) ~lang
    (analysis : Asim_analysis.Analysis.t) =
  if not (compiler_available lang) then
    Error
      (Printf.sprintf "no compiler available for %s in this environment"
         (Codegen.lang_to_string lang))
  else begin
    let dir = match dir with Some d -> d | None -> fresh_dir () in
    let source_path = Filename.concat dir ("simulator" ^ Codegen.extension lang) in
    let binary_path = Filename.concat dir "simulator.exe" in
    let source, generate_s =
      timed tracer "codegen.generate" (fun () -> Codegen.generate lang analysis)
    in
    write_file source_path source;
    match compile_command lang ~source:source_path ~binary:binary_path with
    | None -> Error "language has no compile command"
    | Some cmd ->
        (* ocamlopt drops its artifacts in the cwd; run it from [dir]. *)
        let in_dir = Printf.sprintf "cd %s && %s" (Filename.quote dir) cmd in
        let status, compile_s = timed tracer "codegen.compile" (fun () -> Sys.command in_dir) in
        if status <> 0 then
          Error (Printf.sprintf "compilation failed (%s, exit %d)" cmd status)
        else begin
          let cycles =
            match cycles with
            | Some n -> n
            | None -> (
                match analysis.Asim_analysis.Analysis.spec.Asim_core.Spec.cycles with
                | Some n -> n
                | None -> 0)
          in
          let out_path = Filename.concat dir "stdout.txt" in
          let run_cmd =
            Printf.sprintf "%s %d > %s 2>&1 < /dev/null" (Filename.quote binary_path)
              cycles (Filename.quote out_path)
          in
          let status, run_s = timed tracer "codegen.execute" (fun () -> Sys.command run_cmd) in
          if status <> 0 then
            Error (Printf.sprintf "generated simulator failed (exit %d)" status)
          else
            Ok
              {
                timings = { generate_s; compile_s; run_s };
                output = read_file out_path;
                source_path;
                binary_path;
              }
        end
  end
