(** The full ASIM II pipeline: generate → compile → execute.

    This is the shape Figure 5.1 times: the paper generated Pascal (34.2 s),
    compiled it (43.2 s), and ran the binary (15.0 s).  Here the target is
    the OCaml or C backend, built with the sealed toolchain's
    [ocamlfind ocamlopt] / [cc]. *)

type timings = {
  generate_s : float;  (** spec → source text (Fig 5.1 "Generate code") *)
  compile_s : float;  (** source → native binary (Fig 5.1 "Pascal Compile") *)
  run_s : float;  (** binary execution (Fig 5.1 "Simulation time") *)
}

type result = {
  timings : timings;
  output : string;  (** the binary's stdout (trace + I/O) *)
  source_path : string;
  binary_path : string;
}

val compiler_available : Codegen.lang -> bool
(** Can this language's compiler be invoked here?  (Pascal: no.) *)

val run :
  ?dir:string ->
  ?cycles:int ->
  ?tracer:Asim_obs.Tracer.t ->
  lang:Codegen.lang ->
  Asim_analysis.Analysis.t ->
  (result, string) Stdlib.result
(** Generate the simulator for [lang], compile it in [dir] (default: a fresh
    directory under the system temp dir), execute it for [cycles] (default:
    the spec's [= N]) and capture stdout.  Returns [Error reason] when the
    toolchain is unavailable or a stage fails.  Stage wall-clock comes from
    {!Asim_obs.Clock}; [tracer] (default null) additionally records
    [codegen.generate] / [codegen.compile] / [codegen.execute] spans. *)
