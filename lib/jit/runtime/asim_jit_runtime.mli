(** Host/plugin rendezvous for the native-compiled engine.

    Generated plugins are compiled against this interface only, so it is
    deliberately stdlib-typed: arrays for the hot state and counters, plain
    closures for every side effect (tracing, I/O, faults, runtime errors).
    The host builds a {!ctx}, Dynlinks the plugin, and claims the step-function
    factory the plugin deposited with {!register}. *)

type ctx = {
  vals : int array;  (** one slot per component output, spec order *)
  cells : int array;  (** all memories' cells, concatenated *)
  faulted : bool array;  (** per component slot: is it a fault target? *)
  fault : int -> int -> int;  (** slot -> value -> possibly-faulted value *)
  io_input : int -> int;  (** address -> data (memory-mapped input) *)
  io_output : int -> int -> unit;  (** address -> data -> () *)
  trace_active : bool;  (** false when the trace sink is the null sink *)
  trace_cycle : unit -> unit;  (** emit the per-cycle register trace line *)
  trace_write : int -> int -> int -> unit;  (** memory index, address, data *)
  trace_read : int -> int -> int -> unit;  (** memory index, address, data *)
  reads : int array;  (** per memory index: read-op counter *)
  writes : int array;
  inputs : int array;
  outputs : int array;
  sel_error : int -> int -> int -> int;
      (** slot, index, case count; raises the selector range error *)
  addr_error : int -> int -> unit;
      (** memory index, address; raises the address range error *)
}

val register : (ctx -> unit -> unit) -> unit
(** Called by the plugin's toplevel initializer to deposit its step-function
    factory. *)

val take : unit -> (ctx -> unit -> unit) option
(** Claim (and clear) the most recently registered factory. *)
