(* The rendezvous between the host and a Dynlinked plugin.

   A generated plugin module is compiled against this interface alone (its
   [.cmi] is the only compile-time dependency we hand the toolchain), so the
   record below must stay stdlib-typed: every engine-specific behavior —
   tracing, memory-mapped I/O, fault injection, runtime errors — enters the
   generated code as a host-provided closure or preallocated array.  That is
   what keeps the native engine observably identical to the interpreted ones:
   the plugin owns only the arithmetic; the host owns every side effect.

   The plugin's last toplevel definition is [register make]; the host calls
   [take] immediately after [Dynlink.loadfile_private] to claim the factory.
   Single-slot hand-off is safe because the loader serializes loads under a
   lock. *)

type ctx = {
  vals : int array;  (** one slot per component output, spec order *)
  cells : int array;  (** all memories' cells, concatenated *)
  faulted : bool array;  (** per component slot: is it a fault target? *)
  fault : int -> int -> int;  (** slot -> value -> possibly-faulted value *)
  io_input : int -> int;  (** address -> data (memory-mapped input) *)
  io_output : int -> int -> unit;  (** address -> data -> () *)
  trace_active : bool;  (** false when the trace sink is the null sink *)
  trace_cycle : unit -> unit;  (** emit the per-cycle register trace line *)
  trace_write : int -> int -> int -> unit;  (** memory index, address, data *)
  trace_read : int -> int -> int -> unit;  (** memory index, address, data *)
  reads : int array;  (** per memory index: read-op counter *)
  writes : int array;
  inputs : int array;
  outputs : int array;
  sel_error : int -> int -> int -> int;
      (** slot, index, case count; raises the selector range error *)
  addr_error : int -> int -> unit;
      (** memory index, address; raises the address range error *)
}

let pending : (ctx -> unit -> unit) option ref = ref None

let register make = pending := Some make

let take () =
  let f = !pending in
  pending := None;
  f
