(** The native-compiled engine: the spec lowered to an OCaml module, compiled
    by the host toolchain out of process, and Dynlinked back in — the paper's
    own translate/compile/execute build, with a content-addressed artifact
    cache so repeat runs pay the compiler once.

    Observable behavior (tracing, memory-mapped I/O, statistics, fault
    injection, runtime errors) is identical to the in-process engines: the
    generated code depends only on the canonical spec, and every side effect
    enters through host closures in {!Asim_jit_runtime.ctx}. *)

val available : unit -> bool
(** Whether a usable toolchain answered [-version] ([ocamlfind ocamlopt] or
    [ocamlopt] under native code; [ocamlfind ocamlc]/[ocamlc] under
    bytecode).  When false, {!create} raises a one-line actionable
    [Asim_core.Error.Error]. *)

val toolchain_description : unit -> string option
(** The selected compiler command and its reported version, e.g.
    ["ocamlfind ocamlopt 5.1.1"] — used to tag benchmark rows. *)

val default_cache_dir : unit -> string
(** [$ASIM_JIT_CACHE_DIR], else [$XDG_CACHE_HOME|$HOME/.cache]/asim/jit. *)

val artifact_path : cache_dir:string -> Asim_analysis.Analysis.t -> string
(** Where the compiled artifact for this analysis lives (or would live) under
    [cache_dir] — keyed by the canonical-form MD5 inside a subdirectory naming
    the compiler version and the runtime interface digest. *)

val generate_source : Asim_analysis.Analysis.t -> string
(** The self-contained OCaml module handed to the toolchain.  Deterministic,
    and independent of any [Machine.config]: one artifact serves every
    tracing/I/O/fault configuration. *)

val clear_memory_cache : unit -> unit
(** Drop the in-process factory memo (test hook: forces the next {!create} to
    go back to the disk cache and Dynlink again). *)

val prepare :
  ?tracer:Asim_obs.Tracer.t ->
  ?cache_dir:string ->
  Asim_analysis.Analysis.t ->
  unit
(** Compile (or fetch from the artifact cache) and Dynlink the plugin for
    this spec into the in-process factory memo without building a machine,
    so a later {!create} is instant.  This is the tiered engine's background
    half: safe to call from another domain — the memo lock serializes
    compiles and Dynlink across domains, and the on-disk lock file keeps the
    single-flight guarantee across processes.  Raises exactly like
    {!create}. *)

val prepared : Asim_analysis.Analysis.t -> bool
(** Whether the in-process factory memo already holds this spec — i.e. a
    {!create} would succeed without touching the toolchain or the disk. *)

val create :
  ?config:Asim_sim.Machine.config ->
  ?tracer:Asim_obs.Tracer.t ->
  ?cache_dir:string ->
  ?state:int array * int array ->
  ?stats:Asim_sim.Stats.t ->
  ?start_cycle:int ->
  Asim_analysis.Analysis.t ->
  Asim_sim.Machine.t
(** Build (or reuse) the compiled plugin for this spec and wire it into a
    {!Asim_sim.Machine.t}.  Emits [codegen.native.compile] and
    [codegen.native.dynlink] spans (with [cache=hit|miss] args) on [tracer].
    Raises [Asim_core.Error.Error] with phase [Runtime] when no toolchain is
    available or the out-of-process compile fails.

    The three adoption parameters exist for the tiered engine's mid-run
    hot-swap; they default to a fresh machine.  [state] is a live
    [(vals, cells)] pair in the flat layout (slot per component in spec
    order; cells concatenated in memory declaration order — the same layout
    {!Asim_flat.Flat.create_exposed} exposes): the machine runs directly
    over the given arrays, skips the init-image blit, and raises when the
    shapes disagree.  [stats] continues an existing counter set instead of
    starting at zero.  [start_cycle] (default 0) numbers the first executed
    cycle — trace lines, fault windows and runtime-error messages all key
    off it. *)

val of_spec :
  ?config:Asim_sim.Machine.config ->
  ?tracer:Asim_obs.Tracer.t ->
  ?cache_dir:string ->
  Asim_core.Spec.t ->
  Asim_sim.Machine.t
