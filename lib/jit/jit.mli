(** The native-compiled engine: the spec lowered to an OCaml module, compiled
    by the host toolchain out of process, and Dynlinked back in — the paper's
    own translate/compile/execute build, with a content-addressed artifact
    cache so repeat runs pay the compiler once.

    Observable behavior (tracing, memory-mapped I/O, statistics, fault
    injection, runtime errors) is identical to the in-process engines: the
    generated code depends only on the canonical spec, and every side effect
    enters through host closures in {!Asim_jit_runtime.ctx}. *)

val available : unit -> bool
(** Whether a usable toolchain answered [-version] ([ocamlfind ocamlopt] or
    [ocamlopt] under native code; [ocamlfind ocamlc]/[ocamlc] under
    bytecode).  When false, {!create} raises a one-line actionable
    [Asim_core.Error.Error]. *)

val toolchain_description : unit -> string option
(** The selected compiler command and its reported version, e.g.
    ["ocamlfind ocamlopt 5.1.1"] — used to tag benchmark rows. *)

val default_cache_dir : unit -> string
(** [$ASIM_JIT_CACHE_DIR], else [$XDG_CACHE_HOME|$HOME/.cache]/asim/jit. *)

val artifact_path : cache_dir:string -> Asim_analysis.Analysis.t -> string
(** Where the compiled artifact for this analysis lives (or would live) under
    [cache_dir] — keyed by the canonical-form MD5 inside a subdirectory naming
    the compiler version and the runtime interface digest. *)

val generate_source : Asim_analysis.Analysis.t -> string
(** The self-contained OCaml module handed to the toolchain.  Deterministic,
    and independent of any [Machine.config]: one artifact serves every
    tracing/I/O/fault configuration. *)

val clear_memory_cache : unit -> unit
(** Drop the in-process factory memo (test hook: forces the next {!create} to
    go back to the disk cache and Dynlink again). *)

val create :
  ?config:Asim_sim.Machine.config ->
  ?tracer:Asim_obs.Tracer.t ->
  ?cache_dir:string ->
  Asim_analysis.Analysis.t ->
  Asim_sim.Machine.t
(** Build (or reuse) the compiled plugin for this spec and wire it into a
    {!Asim_sim.Machine.t}.  Emits [codegen.native.compile] and
    [codegen.native.dynlink] spans (with [cache=hit|miss] args) on [tracer].
    Raises [Asim_core.Error.Error] with phase [Runtime] when no toolchain is
    available or the out-of-process compile fails. *)

val of_spec :
  ?config:Asim_sim.Machine.config ->
  ?tracer:Asim_obs.Tracer.t ->
  ?cache_dir:string ->
  Asim_core.Spec.t ->
  Asim_sim.Machine.t
