(* Re-export so hosts can say [Asim_jit.Runtime]; the standalone
   [Asim_jit_runtime] library exists because generated plugins must compile
   against exactly one .cmi. *)
include Asim_jit_runtime
