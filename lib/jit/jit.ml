(* The native-compiled engine (the paper's own build: translate the spec to a
   host-language program, hand it to the host compiler, run machine code).

   The analyzed spec is lowered through the same IR the source backends print
   ([Asim_codegen.Lower]) into one self-contained OCaml module over the flat
   [int array] state layout, compiled out of process with the host toolchain
   (`ocamlfind ocamlopt -shared` -> .cmxs; `ocamlc -c` -> .cmo under
   bytecode), and Dynlinked into this process.  The generated code depends
   only on the canonical spec text: tracing, memory-mapped I/O, fault
   injection and runtime errors all enter through host closures in
   [Asim_jit_runtime.ctx], so one cached artifact serves every config and the
   engine stays observably identical to the interpreted ones.

   Artifacts are cached on disk keyed by the canonical-form MD5 (the same
   keying as the batch compiled-spec cache) under a subdirectory naming the
   compiler version and the runtime interface digest, with a lock file for
   cross-process single-flight and an in-process memo for repeat builds. *)

open Asim_core
open Asim_sim
module Analysis = Asim_analysis.Analysis
module Lower = Asim_codegen.Lower
module Emitter = Asim_codegen.Emitter
module Tracer = Asim_obs.Tracer
module Runtime = Asim_jit_runtime

(* --- toolchain probing ------------------------------------------------------ *)

let probed_commands =
  if Dynlink.is_native then [ "ocamlfind ocamlopt"; "ocamlopt" ]
  else [ "ocamlfind ocamlc"; "ocamlc" ]

let command_answers cmd = Sys.command (cmd ^ " -version > /dev/null 2>&1") = 0

let toolchain = lazy (List.find_opt command_answers probed_commands)

let available () = Lazy.force toolchain <> None

let first_output_line cmd =
  try
    let ic = Unix.open_process_in (cmd ^ " 2>/dev/null") in
    let line = try input_line ic with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    if line = "" then None else Some line
  with _ -> None

let toolchain_description () =
  match Lazy.force toolchain with
  | None -> None
  | Some cc -> (
      match first_output_line (cc ^ " -version") with
      | Some v -> Some (cc ^ " " ^ v)
      | None -> Some cc)

let require_toolchain () =
  match Lazy.force toolchain with
  | Some cc -> cc
  | None ->
      Error.failf Error.Runtime
        "the native engine needs an OCaml toolchain: none of [%s] answered \
         -version on PATH (install one, or pick another engine via -e)"
        (String.concat "; " probed_commands)

(* --- locating the runtime interface ----------------------------------------- *)

(* The plugin is compiled against exactly one interface: asim_jit_runtime.cmi.
   In a dune tree it lives in the library's .objs/byte directory; walk up from
   the running executable (works for bin/, test/ and bench/ executables alike).
   ASIM_JIT_INCLUDE_DIR overrides the search for installed setups. *)
let cmi_name = "asim_jit_runtime.cmi"

let cmi_rel_dir =
  Filename.concat
    (Filename.concat (Filename.concat "lib" "jit") "runtime")
    (Filename.concat ".asim_jit_runtime.objs" "byte")

let find_include_dir () =
  match Sys.getenv_opt "ASIM_JIT_INCLUDE_DIR" with
  | Some d when d <> "" -> if Sys.file_exists (Filename.concat d cmi_name) then Some d else None
  | _ ->
      let rec up dir =
        let cand = Filename.concat dir cmi_rel_dir in
        if Sys.file_exists (Filename.concat cand cmi_name) then Some cand
        else
          let parent = Filename.dirname dir in
          if String.equal parent dir then None else up parent
      in
      up (Filename.dirname Sys.executable_name)

let require_include_dir () =
  match find_include_dir () with
  | Some d -> d
  | None ->
      Error.failf Error.Runtime
        "the native engine cannot locate %s (searched %s upward from %s; set \
         ASIM_JIT_INCLUDE_DIR to the directory holding it)"
        cmi_name cmi_rel_dir
        (Filename.dirname Sys.executable_name)

(* --- cache layout ------------------------------------------------------------ *)

(* Bump when the generated code's shape changes so stale artifacts from an
   older generator are never Dynlinked.  2: the cache key covers the
   evaluation order (the optimizer's scheduler reorders components without
   changing the pretty-printed spec text). *)
let generator_version = 2

let default_cache_dir () =
  match Sys.getenv_opt "ASIM_JIT_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ ->
      let base =
        match Sys.getenv_opt "XDG_CACHE_HOME" with
        | Some d when d <> "" -> d
        | _ -> (
            match Sys.getenv_opt "HOME" with
            | Some h when h <> "" -> Filename.concat h ".cache"
            | _ -> Filename.get_temp_dir_name ())
      in
      Filename.concat (Filename.concat base "asim") "jit"

let rec ensure_dir path =
  if not (Sys.file_exists path) then begin
    let parent = Filename.dirname path in
    if not (String.equal parent path) then ensure_dir parent;
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* The generated module bakes in the evaluation order, and the optimizer's
   scheduler can permute it without altering the spec text — so the order is
   part of the key. *)
let spec_md5 (analysis : Analysis.t) =
  let order_names =
    List.map (fun (c : Component.t) -> c.name) analysis.Analysis.order
  in
  Digest.to_hex
    (Digest.string
       (String.concat "\x00" (Pretty.spec analysis.Analysis.spec :: order_names)))

let artifact_ext = if Dynlink.is_native then ".cmxs" else ".cmo"

(* The artifact is only valid for the exact runtime interface it was compiled
   against and the compiler that built it, so both digests name the cache
   subdirectory; a rebuilt _build tree or a compiler upgrade starts a fresh
   shelf instead of tripping Dynlink interface mismatches. *)
let version_dir ~cache_dir ~include_dir =
  let cmi_digest =
    try String.sub (Digest.to_hex (Digest.file (Filename.concat include_dir cmi_name))) 0 8
    with _ -> "nocmi"
  in
  Filename.concat cache_dir
    (Printf.sprintf "%s-%s-g%d" Sys.ocaml_version cmi_digest generator_version)

let plugin_unit md5 = "asim_jit_plugin_" ^ md5

let artifact_path ~cache_dir (analysis : Analysis.t) =
  let include_dir = require_include_dir () in
  Filename.concat
    (version_dir ~cache_dir ~include_dir)
    (plugin_unit (spec_md5 analysis) ^ artifact_ext)

(* --- code generation ---------------------------------------------------------- *)

type mem_layout = {
  g_name : string;
  g_id : int;  (** component slot *)
  g_index : int;  (** memory index (stats counters, trace lines) *)
  g_off : int;  (** offset into the shared cell array *)
  g_len : int;
  g_init : int array option;
  g_mem : Component.memory;
}

let layout_memories (analysis : Analysis.t) ids =
  let off = ref 0 in
  analysis.Analysis.memories
  |> List.mapi (fun k (c : Component.t) ->
         match c.kind with
         | Component.Memory m ->
             let g =
               {
                 g_name = c.name;
                 g_id = Hashtbl.find ids c.name;
                 g_index = k;
                 g_off = !off;
                 g_len = m.Component.cells;
                 g_init = m.Component.init;
                 g_mem = m;
               }
             in
             off := !off + m.Component.cells;
             g
         | Component.Alu _ | Component.Selector _ -> assert false)
  |> fun l -> (Array.of_list l, !off)

let slot ids name =
  match Hashtbl.find_opt ids name with
  | Some id -> id
  | None -> Error.failf Error.Analysis "Component <%s> not found." name

let int_lit n = if n < 0 then Printf.sprintf "(%d)" n else string_of_int n

let render_term ids = function
  | Lower.Const c -> int_lit c
  | Lower.Field { name; mask; shift } ->
      let base = Printf.sprintf "(Array.unsafe_get vals %d)" (slot ids name) in
      let masked =
        match mask with
        | None -> base
        | Some m -> Printf.sprintf "(%s land %d)" base m
      in
      if shift > 0 then Printf.sprintf "(%s lsl %d)" masked shift
      else if shift < 0 then Printf.sprintf "(%s lsr %d)" masked (-shift)
      else masked

let render_expr ids e =
  match Lower.lower e with
  | [ t ] -> render_term ids t
  | ts -> "(" ^ String.concat " + " (List.map (render_term ids) ts) ^ ")"

(* §4.4 as real code generation: a constant function expression becomes the
   inlined operation; only a dynamic function pays the [dologic] dispatch. *)
let render_alu ids (a : Component.alu) =
  let l () = render_expr ids a.Component.left
  and r () = render_expr ids a.Component.right in
  match Lower.alu_const_function a with
  | Some (Component.Fn_zero | Component.Fn_unused) -> "0"
  | Some Component.Fn_right -> r ()
  | Some Component.Fn_left -> l ()
  | Some Component.Fn_not -> Printf.sprintf "(mask - %s)" (l ())
  | Some Component.Fn_add -> Printf.sprintf "(%s + %s)" (l ()) (r ())
  | Some Component.Fn_sub -> Printf.sprintf "(%s - %s)" (l ()) (r ())
  | Some Component.Fn_shift_left -> Printf.sprintf "(dologic 6 %s %s)" (l ()) (r ())
  | Some Component.Fn_mul -> Printf.sprintf "(%s * %s)" (l ()) (r ())
  | Some Component.Fn_and -> Printf.sprintf "(%s land %s)" (l ()) (r ())
  | Some Component.Fn_or ->
      Printf.sprintf "(let a = %s and b = %s in a + b - (a land b))" (l ()) (r ())
  | Some Component.Fn_xor ->
      Printf.sprintf "(let a = %s and b = %s in a + b - (2 * (a land b)))" (l ())
        (r ())
  | Some Component.Fn_eq -> Printf.sprintf "(if %s = %s then 1 else 0)" (l ()) (r ())
  | Some Component.Fn_lt -> Printf.sprintf "(if %s < %s then 1 else 0)" (l ()) (r ())
  | None ->
      Printf.sprintf "(dologic %s %s %s)" (render_expr ids a.Component.fn) (l ())
        (r ())

let render_selector ids ~id ~select ~(cases : Expr.t array) =
  let n = Array.length cases in
  match Lower.lower select with
  | [ Lower.Const c ] when c >= 0 && c < n -> render_expr ids cases.(c)
  | [ Lower.Const c ] ->
      (* Constant but out of range: preserve the per-cycle runtime error. *)
      Printf.sprintf "(sel_error %d %s %d)" id (int_lit c) n
  | _ ->
      let arms =
        Array.to_list cases
        |> List.mapi (fun i e -> Printf.sprintf "| %d -> %s" i (render_expr ids e))
      in
      Printf.sprintf "(match %s with %s| i -> sel_error %d i %d)"
        (render_expr ids select)
        (String.concat " " arms ^ " ")
        id n

let dologic_text =
  [
    "let mask = 2147483647";
    "";
    "let dologic funct left right =";
    "  match funct land 15 with";
    "  | 1 -> right";
    "  | 2 -> left";
    "  | 3 -> mask - left";
    "  | 4 -> left + right";
    "  | 5 -> left - right";
    "  | 6 ->";
    "      let rec go v n = if n <= 0 || v = 0 then v else go ((v + v) land mask) (n - 1) in";
    "      go (left land mask) right";
    "  | 7 -> left * right";
    "  | 8 -> left land right";
    "  | 9 -> left + right - (left land right)";
    "  | 10 -> left + right - (2 * (left land right))";
    "  | 12 -> if left = right then 1 else 0";
    "  | 13 -> if left < right then 1 else 0";
    "  | _ -> 0";
  ]

let ctx_fields =
  [
    "vals"; "cells"; "faulted"; "fault"; "io_input"; "io_output"; "trace_active";
    "trace_cycle"; "trace_write"; "trace_read"; "reads"; "writes"; "inputs";
    "outputs"; "sel_error"; "addr_error";
  ]

let generate_source (analysis : Analysis.t) =
  let spec = analysis.Analysis.spec in
  let ids = Hashtbl.create 64 in
  List.iteri
    (fun i (c : Component.t) -> Hashtbl.replace ids c.name i)
    spec.Spec.components;
  let mems, _cells_len = layout_memories analysis ids in
  let e = Emitter.create () in
  let line = Emitter.line e and linef fmt = Emitter.linef e fmt in
  linef "(* %s.ml — generated by asim_jit; do not edit. *)"
    (plugin_unit (spec_md5 analysis));
  Emitter.blank e;
  List.iter line dologic_text;
  Emitter.blank e;
  line "let make (ctx : Asim_jit_runtime.ctx) =";
  List.iter
    (fun f -> linef "  let %s = ctx.Asim_jit_runtime.%s in" f f)
    ctx_fields;
  line "  fun () ->";
  let body fmt = Printf.ksprintf (fun s -> Emitter.line e ("    " ^ s)) fmt in
  (* Combinational phase, in topological evaluation order; the fault hook is
     config-dependent so it is always emitted, gated on the per-slot flag. *)
  List.iter
    (fun (c : Component.t) ->
      let id = slot ids c.name in
      (match c.kind with
      | Component.Alu a -> body "let v = %s in" (render_alu ids a)
      | Component.Selector { select; cases } ->
          body "let v = %s in" (render_selector ids ~id ~select ~cases)
      | Component.Memory _ -> assert false);
      body "let v = if Array.unsafe_get faulted %d then fault %d v else v in" id id;
      body "Array.unsafe_set vals %d v;" id)
    analysis.Analysis.order;
  body "if trace_active then trace_cycle ();";
  (* Address and op snapshots for every memory happen before any update (the
     paper's two-phase cycle); data expressions are evaluated lazily inside
     the update so they see earlier memories' freshly latched outputs. *)
  Array.iter
    (fun g ->
      body "let a%d = %s in" g.g_index (render_expr ids g.g_mem.Component.addr);
      match Lower.memory_const_op g.g_mem with
      | Some _ -> ()
      | None -> body "let o%d = %s in" g.g_index (render_expr ids g.g_mem.Component.op))
    mems;
  Array.iter
    (fun g ->
      let k = g.g_index and id = g.g_id in
      let a = Printf.sprintf "a%d" k in
      let cell =
        if g.g_off = 0 then a else Printf.sprintf "(%s + %d)" a g.g_off
      in
      let bounds_check =
        Printf.sprintf "if %s < 0 || %s >= %d then addr_error %d %s" a a g.g_len k a
      in
      let bump counter =
        Printf.sprintf "Array.unsafe_set %s %d (Array.unsafe_get %s %d + 1)"
          counter k counter k
      in
      let read_arm =
        String.concat "; "
          [
            bounds_check;
            Printf.sprintf "Array.unsafe_set vals %d (Array.unsafe_get cells %s)" id
              cell;
            bump "reads";
          ]
      and write_arm =
        String.concat "; "
          [
            bounds_check;
            Printf.sprintf "let d = %s in Array.unsafe_set vals %d d; \
                            Array.unsafe_set cells %s d; %s"
              (render_expr ids g.g_mem.Component.data)
              id cell (bump "writes");
          ]
      and input_arm =
        String.concat "; "
          [
            Printf.sprintf "Array.unsafe_set vals %d (io_input %s)" id a;
            bump "inputs";
          ]
      and output_arm =
        Printf.sprintf "let d = %s in Array.unsafe_set vals %d d; io_output %s d; %s"
          (render_expr ids g.g_mem.Component.data)
          id a (bump "outputs")
      in
      let trace_write_stmt =
        Printf.sprintf "trace_write %d %s (Array.unsafe_get vals %d)" k a id
      and trace_read_stmt =
        Printf.sprintf "trace_read %d %s (Array.unsafe_get vals %d)" k a id
      in
      (match Lower.memory_const_op g.g_mem with
      | Some op ->
          (* §4.4 memory specialization: the op is spec-constant, so only the
             live arm and the statically decided trace lines are emitted. *)
          (match op land 3 with
          | 0 -> body "%s;" read_arm
          | 1 -> body "(%s);" write_arm
          | 2 -> body "%s;" input_arm
          | _ -> body "(%s);" output_arm);
          if Component.traces_writes op then
            body "if trace_active then %s;" trace_write_stmt;
          if Component.traces_reads op then
            body "if trace_active then %s;" trace_read_stmt
      | None ->
          body "(match o%d land 3 with" k;
          body " | 0 -> %s" read_arm;
          body " | 1 -> %s" write_arm;
          body " | 2 -> %s" input_arm;
          body " | _ -> %s);" output_arm;
          body "if trace_active then begin";
          body "  if o%d land 5 = 5 then %s;" k trace_write_stmt;
          body "  if o%d land 9 = 8 then %s" k trace_read_stmt;
          body "end;");
      body
        "if Array.unsafe_get faulted %d then Array.unsafe_set vals %d (fault %d \
         (Array.unsafe_get vals %d));"
        id id id id)
    mems;
  body "()";
  Emitter.blank e;
  line "let () = Asim_jit_runtime.register make";
  Emitter.contents e

(* --- compile, cache, Dynlink -------------------------------------------------- *)

(* One lock serializes builds and memo access across domains; the lock file
   extends the single-flight guarantee across processes (batch workers,
   parallel fuzz campaigns sharing a cache directory). *)
let memo : (string, Runtime.ctx -> unit -> unit) Hashtbl.t = Hashtbl.create 8
let memo_lock = Mutex.create ()

let clear_memory_cache () = Mutex.protect memo_lock (fun () -> Hashtbl.reset memo)

let with_file_lock path f =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd (* releases the lockf region *))
    (fun () ->
      Unix.lockf fd Unix.F_LOCK 0;
      f ())

let rec remove_tree path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun entry -> remove_tree (Filename.concat path entry)) (Sys.readdir path);
      (try Sys.rmdir path with Sys_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

(* Build directories are removed on the spot; the at_exit sweep covers builds
   interrupted by an exception that unwinds past the engine (e.g. a user ^C
   turned into an exit). *)
let live_build_dirs : (string, unit) Hashtbl.t = Hashtbl.create 4

let () =
  at_exit (fun () -> Hashtbl.iter (fun dir () -> remove_tree dir) live_build_dirs)

let read_log_excerpt path =
  try
    let ic = open_in path in
    let rec go acc n =
      if n = 0 then acc
      else match input_line ic with
        | l -> go (acc @ [ l ]) (n - 1)
        | exception End_of_file -> acc
    in
    let lines = go [] 3 in
    close_in ic;
    String.concat " | " lines
  with _ -> ""

let compile_artifact ~cc ~include_dir ~subdir ~unit ~source ~artifact =
  let build_dir =
    Filename.concat subdir (Printf.sprintf "build-%s-%d" unit (Unix.getpid ()))
  in
  ensure_dir build_dir;
  Hashtbl.replace live_build_dirs build_dir ();
  Fun.protect
    ~finally:(fun () ->
      remove_tree build_dir;
      Hashtbl.remove live_build_dirs build_dir)
    (fun () ->
      let src = Filename.concat build_dir (unit ^ ".ml") in
      let oc = open_out src in
      output_string oc source;
      close_out oc;
      let log = Filename.concat build_dir "compile.log" in
      let out = Filename.concat build_dir (unit ^ artifact_ext) in
      let cmd =
        if Dynlink.is_native then
          Printf.sprintf "%s -shared -w -a -I %s -o %s %s > %s 2>&1" cc
            (Filename.quote include_dir) (Filename.quote out) (Filename.quote src)
            (Filename.quote log)
        else
          Printf.sprintf "cd %s && %s -c -w -a -I %s %s > %s 2>&1"
            (Filename.quote build_dir) cc (Filename.quote include_dir)
            (Filename.quote src) (Filename.quote log)
      in
      if Sys.command cmd <> 0 then
        Error.failf Error.Runtime
          "native engine: plugin compilation failed (%s): %s" cc
          (read_log_excerpt log);
      (* Publish atomically so concurrent readers only ever see a complete
         artifact. *)
      Sys.rename out artifact)

exception Retry_compile

let dynlink_factory ~tracer ~key ~cache artifact =
  Tracer.span tracer
    ~args:[ ("key", key); ("cache", cache) ]
    "codegen.native.dynlink"
    (fun () ->
      ignore (Runtime.take ());
      (match Dynlink.loadfile_private artifact with
      | () -> ()
      | exception Dynlink.Error err ->
          if String.equal cache "hit" then raise Retry_compile
          else
            Error.failf Error.Runtime "native engine: Dynlink failed: %s"
              (Dynlink.error_message err));
      match Runtime.take () with
      | Some make -> make
      | None ->
          Error.failf Error.Runtime
            "native engine: plugin %s did not register a step function" key)

let obtain_factory ~tracer ~cache_dir (analysis : Analysis.t) =
  let md5 = spec_md5 analysis in
  Mutex.protect memo_lock (fun () ->
      match Hashtbl.find_opt memo md5 with
      | Some make -> make
      | None ->
          let cc = require_toolchain () in
          let include_dir = require_include_dir () in
          let subdir = version_dir ~cache_dir ~include_dir in
          ensure_dir subdir;
          let unit = plugin_unit md5 in
          let artifact = Filename.concat subdir (unit ^ artifact_ext) in
          let key = String.sub md5 0 8 in
          let build_once () =
            with_file_lock (Filename.concat subdir ("." ^ md5 ^ ".lock"))
              (fun () ->
                let cache = if Sys.file_exists artifact then "hit" else "miss" in
                Tracer.span tracer
                  ~args:[ ("key", key); ("cache", cache) ]
                  "codegen.native.compile"
                  (fun () ->
                    if String.equal cache "miss" then
                      compile_artifact ~cc ~include_dir ~subdir ~unit
                        ~source:(generate_source analysis) ~artifact);
                (cache, artifact))
          in
          let make =
            let cache, artifact = build_once () in
            match dynlink_factory ~tracer ~key ~cache artifact with
            | make -> make
            | exception Retry_compile ->
                (* A cached artifact that does not load (corrupted file,
                   partial write from a killed process) is discarded and
                   rebuilt once instead of crashing the run. *)
                (try Sys.remove artifact with Sys_error _ -> ());
                let cache, artifact = build_once () in
                dynlink_factory ~tracer ~key ~cache artifact
          in
          Hashtbl.replace memo md5 make;
          make)

let prepared (analysis : Analysis.t) =
  let md5 = spec_md5 analysis in
  Mutex.protect memo_lock (fun () -> Hashtbl.mem memo md5)

let prepare ?(tracer = Tracer.null) ?cache_dir (analysis : Analysis.t) =
  let cache_dir = match cache_dir with Some d -> d | None -> default_cache_dir () in
  ignore (obtain_factory ~tracer ~cache_dir analysis : Runtime.ctx -> unit -> unit)

(* --- the engine --------------------------------------------------------------- *)

let create ?(config = Machine.default_config) ?(tracer = Tracer.null) ?cache_dir
    ?state ?stats ?start_cycle (analysis : Analysis.t) =
  let cache_dir = match cache_dir with Some d -> d | None -> default_cache_dir () in
  let spec = analysis.Analysis.spec in
  let components = spec.Spec.components in
  let ncomp = List.length components in
  let ids = Hashtbl.create 64 in
  List.iteri (fun i (c : Component.t) -> Hashtbl.replace ids c.name i) components;
  let comp_names =
    Array.of_list (List.map (fun (c : Component.t) -> c.name) components)
  in
  let mems, cells_len = layout_memories analysis ids in
  let nmem = Array.length mems in
  let vals, cells =
    match state with
    | Some (vals, cells) ->
        (* Adopt another engine's live arrays (the tiered hot-swap): same
           layout by construction — slot per component in spec order, cells
           concatenated in memory declaration order — so only the shape is
           checked, and the cell images are already live (no init blit). *)
        if
          Array.length vals <> max 1 ncomp
          || Array.length cells <> max 1 cells_len
        then
          Error.failf Error.Runtime
            "native engine: adopted state shape mismatch (%d/%d slots, %d/%d \
             cells)"
            (Array.length vals) (max 1 ncomp) (Array.length cells)
            (max 1 cells_len);
        (vals, cells)
    | None ->
        let vals = Array.make (max 1 ncomp) 0 in
        let cells = Array.make (max 1 cells_len) 0 in
        Array.iter
          (fun g ->
            match g.g_init with
            | Some init -> Array.blit init 0 cells g.g_off (Array.length init)
            | None -> ())
          mems;
        (vals, cells)
  in
  let stats =
    match stats with
    | Some s -> s
    | None ->
        Stats.create
          ~memories:(Array.to_list (Array.map (fun g -> g.g_name) mems))
  in
  let mcount = Array.map (fun g -> Stats.memory stats g.g_name) mems in
  let reads = Array.make (max 1 nmem) 0
  and writes = Array.make (max 1 nmem) 0
  and inputs = Array.make (max 1 nmem) 0
  and outputs = Array.make (max 1 nmem) 0 in
  (* The per-cycle flush below writes these counters into [stats]
     absolutely, so an adopted Stats.t seeds them with its current totals
     instead of silently rewinding history at the handoff. *)
  Array.iteri
    (fun k c ->
      reads.(k) <- c.Stats.reads;
      writes.(k) <- c.Stats.writes;
      inputs.(k) <- c.Stats.inputs;
      outputs.(k) <- c.Stats.outputs)
    mcount;
  let cycle = ref (Option.value start_cycle ~default:0) in
  let io = config.Machine.io in
  let trace = config.Machine.trace in
  let faults = config.Machine.faults in
  let fault_targets = Fault.targets faults in
  let faulted = Array.make (max 1 ncomp) false in
  Array.iteri
    (fun i name -> if List.mem name fault_targets then faulted.(i) <- true)
    comp_names;
  let traced =
    Spec.traced_names spec
    |> List.map (fun name -> (name, slot ids name))
    |> Array.of_list
  in
  let mem_names = Array.map (fun g -> g.g_name) mems in
  let ctx =
    {
      Runtime.vals;
      cells;
      faulted;
      fault =
        (fun id v ->
          Fault.apply faults ~cycle:!cycle ~component:comp_names.(id) v);
      io_input = (fun address -> io.Io.input ~address);
      io_output = (fun address data -> io.Io.output ~address ~data);
      trace_active = not (trace == Trace.null_sink);
      trace_cycle =
        (fun () ->
          trace
            (Trace.cycle_line ~cycle:!cycle
               (Array.to_list
                  (Array.map (fun (name, id) -> (name, vals.(id))) traced))));
      trace_write =
        (fun k address data ->
          trace (Trace.write_line ~memory:mem_names.(k) ~address ~data));
      trace_read =
        (fun k address data ->
          trace (Trace.read_line ~memory:mem_names.(k) ~address ~data));
      reads;
      writes;
      inputs;
      outputs;
      sel_error =
        (fun id index cases ->
          Machine.selector_out_of_range ~component:comp_names.(id) ~cycle:!cycle
            ~index ~cases);
      addr_error =
        (fun k address ->
          Machine.address_out_of_range ~component:mem_names.(k) ~cycle:!cycle
            ~address ~cells:mems.(k).g_len);
    }
  in
  let make = obtain_factory ~tracer ~cache_dir analysis in
  let plugin_step = make ctx in
  let flush () =
    for k = 0 to nmem - 1 do
      let c = mcount.(k) in
      c.Stats.reads <- reads.(k);
      c.Stats.writes <- writes.(k);
      c.Stats.inputs <- inputs.(k);
      c.Stats.outputs <- outputs.(k)
    done
  in
  let step () =
    (match plugin_step () with
    | () -> ()
    | exception e ->
        (* Keep the per-memory counters observable even when the cycle dies on
           a runtime error, exactly like the in-process engines. *)
        flush ();
        raise e);
    flush ();
    incr cycle;
    Stats.bump_cycle stats
  in
  let mem_by_name name =
    match Array.find_opt (fun g -> String.equal g.g_name name) mems with
    | Some g -> g
    | None -> Error.failf Error.Runtime "Component <%s> is not a memory." name
  in
  let read_cell name index =
    let g = mem_by_name name in
    if index < 0 || index >= g.g_len then invalid_arg "Jit: cell index out of range"
    else cells.(g.g_off + index)
  in
  let write_cell name index value =
    let g = mem_by_name name in
    if index < 0 || index >= g.g_len then invalid_arg "Jit: cell index out of range"
    else cells.(g.g_off + index) <- value
  in
  {
    Machine.analysis;
    step;
    read =
      (fun name ->
        match Hashtbl.find_opt ids name with
        | Some i -> vals.(i)
        | None -> Error.failf Error.Runtime "Component <%s> not found." name);
    read_cell;
    write_cell;
    current_cycle = (fun () -> !cycle);
    stats;
  }

let of_spec ?config ?tracer ?cache_dir spec =
  create ?config ?tracer ?cache_dir (Analysis.analyze spec)
