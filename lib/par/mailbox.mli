(** Preallocated batched mailbox for cross-partition signal exchange.

    One int per state slot, allocated once at machine construction.  A
    producer partition {!post}s a batch of its slots after finishing a sync
    group; consumer partitions {!import} the batch after the barrier,
    copying each value into their private state and invoking [changed] only
    for slots whose value actually differs — which is exactly the flat
    engine's activity rule, so an unchanged cross-partition signal wakes
    nobody on the far side.

    Neither operation allocates.  Safety relies on the BSP discipline, not
    on the mailbox itself: each slot has a single writer, and readers only
    run after a barrier orders them behind the post. *)

type t

val create : int -> t
(** [create nslots] — all values start 0, matching the engines' initial
    component values. *)

val length : t -> int

val post : t -> src:int array -> slots:int array -> lo:int -> hi:int -> unit
(** Copy [src.(s)] into the mailbox for each slot [s] in
    [slots.(lo .. hi-1)]. *)

val import :
  t ->
  dst:int array ->
  slots:int array ->
  lo:int ->
  hi:int ->
  changed:(int -> unit) ->
  unit
(** Copy mailbox values for [slots.(lo .. hi-1)] into [dst], calling
    [changed s] for each slot whose [dst] value was actually updated. *)

val get : t -> int -> int
(** Read one mailbox value (tests). *)

val set : t -> int -> int -> unit
(** Write one mailbox value directly (tests). *)
