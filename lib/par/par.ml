open Asim_core
open Asim_sim
module Analysis = Asim_analysis.Analysis
module Flat = Asim_flat.Flat

let domains_env = "ASIM_PAR_DOMAINS"
let skew_env = "ASIM_PAR_SKEW"

(* A hard cap on partitions: the process-wide worker pool below never spawns
   more than [max_domains - 1] domains, far under the runtime's Max_domains
   limit even with the main domain and stray test domains counted. *)
let max_domains = 16

let default_domains () =
  (* [Some ""] counts as unset: [Unix.putenv] cannot remove a variable, so
     an empty value is how this codebase spells "absent". *)
  match Sys.getenv_opt domains_env with
  | Some s when String.trim s <> "" -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> min n max_domains
      | Some _ | None ->
          Error.failf Error.Analysis "%s must be a positive integer, got %S."
            domains_env s)
  | Some _ | None -> max 1 (min 8 (Domain.recommended_domain_count ()))

(* --- worker pool -------------------------------------------------------- *)

(* One process-wide pool of worker domains shared by every partitioned
   machine.  Machines are created in droves (the fuzz oracle builds one per
   spec per engine) while the runtime caps the number of domains ever
   spawned, so machines must not own domains; instead each [step] dispatches
   one generation of work to the pool.  [job_lock] serializes whole
   dispatches: concurrent machines take turns stepping, which is the
   semantics a batch server wants anyway (jobs are independent simulations,
   each one still fans out over the pool). *)
module Pool = struct
  let job_lock = Mutex.create ()
  let lock = Mutex.create ()
  let work_cond = Condition.create ()
  let done_cond = Condition.create ()
  let gen = Atomic.make 0
  let ndone = Atomic.make 0
  let current : (unit -> unit) array ref = ref [||]
  let spawned = ref 0
  let spin_limit = 200

  (* [seen0] is the generation already published when the worker was spawned
     (read under [job_lock], before the spawning dispatch increments [gen]):
     a fresh worker must park until the generation it was spawned into
     appears, not chase generations that completed before it existed —
     starting from 0 would make a late-grown pool run a spurious wave
     against whatever [current] happens to hold. *)
  let worker idx seen0 () =
    let seen = ref seen0 in
    while true do
      let spins = ref spin_limit in
      while Atomic.get gen = !seen && !spins > 0 do
        decr spins;
        Domain.cpu_relax ()
      done;
      if Atomic.get gen = !seen then begin
        Mutex.lock lock;
        while Atomic.get gen = !seen do
          Condition.wait work_cond lock
        done;
        Mutex.unlock lock
      end;
      seen := Atomic.get gen;
      let fs = !current in
      (* Participant closures handle their own errors (see the BSP loop);
         nothing may escape here — a dead worker would deadlock the pool. *)
      if idx + 1 < Array.length fs then ( try fs.(idx + 1) () with _ -> ());
      if 1 + Atomic.fetch_and_add ndone 1 = !spawned then begin
        Mutex.lock lock;
        Condition.signal done_cond;
        Mutex.unlock lock
      end
    done

  (* Run [fs.(0)] on the calling domain and [fs.(1 ..)] on pool workers.
     Returns only once every spawned worker is parked again (idle workers
     ack each generation too), so the caller may then touch shared state
     without synchronization. *)
  let run fs =
    Mutex.lock job_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock job_lock)
      (fun () ->
        while !spawned < Array.length fs - 1 do
          ignore (Domain.spawn (worker !spawned (Atomic.get gen)));
          incr spawned
        done;
        current := fs;
        Atomic.set ndone 0;
        Atomic.incr gen;
        Mutex.lock lock;
        Condition.broadcast work_cond;
        Mutex.unlock lock;
        fs.(0) ();
        let spins = ref (spin_limit * 10) in
        while Atomic.get ndone <> !spawned && !spins > 0 do
          decr spins;
          Domain.cpu_relax ()
        done;
        if Atomic.get ndone <> !spawned then begin
          Mutex.lock lock;
          while Atomic.get ndone <> !spawned do
            Condition.wait done_cond lock
          done;
          Mutex.unlock lock
        end)
end

(* --- partitioning ------------------------------------------------------- *)

type plan = {
  p_domains : int;  (** effective partition count *)
  p_assign : int array;  (** partition, by topological position *)
  p_groups : int array;  (** sync group, by topological position *)
  p_ngroups : int;
  p_loads : float array;  (** modelled cost per partition *)
  p_cut : int;  (** cross-partition combinational edges *)
}

(* Combinational components in topological order, with deduplicated
   combinational dependency edges as topological positions. *)
let comb_graph (analysis : Analysis.t) =
  let order = Array.of_list analysis.Analysis.order in
  let n = Array.length order in
  let pos = Hashtbl.create (max 16 n) in
  Array.iteri (fun o (c : Component.t) -> Hashtbl.replace pos c.name o) order;
  let deps =
    Array.map
      (fun (c : Component.t) ->
        let seen = Hashtbl.create 8 in
        List.filter_map
          (fun name ->
            if Hashtbl.mem seen name then None
            else begin
              Hashtbl.add seen name ();
              Hashtbl.find_opt pos name
            end)
          (List.concat_map Expr.names (Component.combinational_inputs c))
        |> Array.of_list)
      order
  in
  (order, pos, deps)

(* Static cost fallback: flat program words per component, from a throwaway
   default-layout compile (positions there are topological positions). *)
let static_costs (analysis : Analysis.t) =
  let p = Flat.compile analysis in
  let ncomb = Array.length p.Flat.p_comb_entry in
  let code_len = Array.length p.Flat.p_code in
  let nmem = Array.length p.Flat.p_mems in
  Array.init ncomb (fun i ->
      let stop =
        if i + 1 < ncomb then p.Flat.p_comb_entry.(i + 1)
        else if nmem > 0 then p.Flat.p_mems.(0).Flat.m_addr_pc
        else code_len
      in
      float_of_int (max 1 (stop - p.Flat.p_comb_entry.(i))))

let costs_by_pos ?costs (analysis : Analysis.t) (order : Component.t array) =
  (* The static fallback costs a throwaway [Flat.compile]; force it only if
     some component is actually missing from the measured model. *)
  let static = lazy (static_costs analysis) in
  match costs with
  | None -> Lazy.force static
  | Some model ->
      let table = Hashtbl.create (max 16 (List.length model)) in
      List.iter
        (fun (name, c) -> if c > 0.0 then Hashtbl.replace table name c)
        model;
      Array.mapi
        (fun o (c : Component.t) ->
          match Hashtbl.find_opt table c.name with
          | Some c -> c
          | None -> (Lazy.force static).(o))
        order

(* Greedy seed: walk components in *declaration* order (the natural module
   grouping — generated workloads declare core-by-core / row-by-row) and cut
   contiguous blocks of roughly [total/domains] cost. *)
let greedy_assign ~domains ~decl_pos ~cost =
  let n = Array.length cost in
  let assign = Array.make n 0 in
  let total = Array.fold_left ( +. ) 0.0 cost in
  let target = total /. float_of_int domains in
  let part = ref 0 in
  let load = ref 0.0 in
  Array.iter
    (fun o ->
      if !load >= target && !part < domains - 1 then begin
        incr part;
        load := 0.0
      end;
      assign.(o) <- !part;
      load := !load +. cost.(o))
    decl_pos;
  assign

(* KL-style refinement: move a component to a neighbouring partition when
   that strictly reduces the number of cut edges and keeps the destination
   under 110% of the average load.  Deterministic (fixed scan order, strict
   improvement only). *)
let refine ~domains ~cost ~deps ~assign ~passes =
  let n = Array.length assign in
  if domains > 1 && n > 0 then begin
    let outs = Array.make n [] in
    Array.iteri
      (fun i ds -> Array.iter (fun d -> outs.(d) <- i :: outs.(d)) ds)
      deps;
    let loads = Array.make domains 0.0 in
    Array.iteri (fun o t -> loads.(t) <- loads.(t) +. cost.(o)) assign;
    let total = Array.fold_left ( +. ) 0.0 loads in
    let cap = 1.1 *. total /. float_of_int domains in
    for _pass = 1 to passes do
      for o = 0 to n - 1 do
        let here = assign.(o) in
        let best_gain = ref 0 and best_to = ref here in
        let consider q =
          if q <> here && q <> !best_to && loads.(q) +. cost.(o) <= cap then begin
            let gain = ref 0 in
            Array.iter
              (fun d ->
                let p = assign.(d) in
                if p = here then decr gain else if p = q then incr gain)
              deps.(o);
            List.iter
              (fun j ->
                let p = assign.(j) in
                if p = here then decr gain else if p = q then incr gain)
              outs.(o);
            if !gain > !best_gain then begin
              best_gain := !gain;
              best_to := q
            end
          end
        in
        Array.iter (fun d -> consider assign.(d)) deps.(o);
        List.iter (fun j -> consider assign.(j)) outs.(o);
        if !best_gain > 0 then begin
          loads.(here) <- loads.(here) -. cost.(o);
          loads.(!best_to) <- loads.(!best_to) +. cost.(o);
          assign.(o) <- !best_to
        end
      done
    done
  end

(* Sync group of a component: the earliest BSP phase in which all its inputs
   are available — same-partition inputs as soon as computed, cross-partition
   inputs one barrier after their producer's group. *)
let compute_groups ~deps ~assign =
  let n = Array.length assign in
  let g = Array.make n 0 in
  for o = 0 to n - 1 do
    let m = ref 0 in
    Array.iter
      (fun d ->
        let need = if assign.(d) = assign.(o) then g.(d) else g.(d) + 1 in
        if need > !m then m := need)
      deps.(o);
    g.(o) <- !m
  done;
  g

let make_plan ?costs ?assign ~domains (analysis : Analysis.t) =
  let order, pos, deps = comb_graph analysis in
  let n = Array.length order in
  let domains = max 1 (min (min domains max_domains) (max 1 n)) in
  let cost = costs_by_pos ?costs analysis order in
  let assign =
    match assign with
    | Some a ->
        if Array.length a <> n then
          invalid_arg "Par: assignment length must equal combinational count";
        Array.map (fun t -> ((t mod domains) + domains) mod domains) a
    | None ->
        let decl_pos =
          analysis.Analysis.spec.Spec.components
          |> List.filter (fun (c : Component.t) -> not (Component.is_memory c))
          |> List.map (fun (c : Component.t) -> Hashtbl.find pos c.name)
          |> Array.of_list
        in
        let a = greedy_assign ~domains ~decl_pos ~cost in
        refine ~domains ~cost ~deps ~assign:a ~passes:2;
        a
  in
  let groups = compute_groups ~deps ~assign in
  let ngroups = 1 + Array.fold_left max 0 groups in
  let loads = Array.make domains 0.0 in
  for o = 0 to n - 1 do
    loads.(assign.(o)) <- loads.(assign.(o)) +. cost.(o)
  done;
  let cut = ref 0 in
  for o = 0 to n - 1 do
    Array.iter (fun d -> if assign.(d) <> assign.(o) then incr cut) deps.(o)
  done;
  ( {
      p_domains = domains;
      p_assign = assign;
      p_groups = groups;
      p_ngroups = ngroups;
      p_loads = loads;
      p_cut = !cut;
    },
    order,
    deps )

let plan ?costs ?assign ~domains analysis =
  let pl, _, _ = make_plan ?costs ?assign ~domains analysis in
  pl

(* --- the machine -------------------------------------------------------- *)

let skew_enabled () =
  match Sys.getenv_opt skew_env with Some "1" -> true | _ -> false

let create ?(config = Machine.default_config)
    ?(tracer = Asim_obs.Tracer.null) ?domains ?costs ?assign
    (analysis : Analysis.t) =
  let domains =
    match domains with Some d -> d | None -> default_domains ()
  in
  let pl, order, deps = make_plan ?costs ?assign ~domains analysis in
  let nd = pl.p_domains in
  let ngroups = pl.p_ngroups in
  let ncomb = Array.length order in
  let spec = analysis.Analysis.spec in
  let ncomp = List.length spec.Spec.components in
  (* Partition-major evaluation order: all of partition 0's components (by
     sync group, then topological position), then partition 1's, and so on.
     Compiling with slot = position makes each partition's code *and* state
     a contiguous range — a domain publishes its whole cycle with one
     [Array.blit]. *)
  let topo_of_pos = Array.init ncomb (fun o -> o) in
  Array.sort
    (fun a b ->
      match compare pl.p_assign.(a) pl.p_assign.(b) with
      | 0 -> (
          match compare pl.p_groups.(a) pl.p_groups.(b) with
          | 0 -> compare a b
          | c -> c)
      | c -> c)
    topo_of_pos;
  let pos_of_topo = Array.make (max 1 ncomb) 0 in
  Array.iteri (fun i o -> pos_of_topo.(o) <- i) topo_of_pos;
  let comb_order =
    Array.to_list (Array.map (fun o -> order.(o)) topo_of_pos)
  in
  let slots = Hashtbl.create (max 16 ncomp) in
  Array.iteri
    (fun i o -> Hashtbl.replace slots order.(o).Component.name i)
    topo_of_pos;
  List.iteri
    (fun k (c : Component.t) -> Hashtbl.replace slots c.name (ncomb + k))
    analysis.Analysis.memories;
  let p = Flat.compile ~tracer ~slots ~comb_order analysis in
  for i = 0 to ncomb - 1 do
    (* slot = position, the invariant everything below leans on *)
    assert (p.Flat.p_comb_id.(i) = i)
  done;
  (* partition position ranges and per-group segments *)
  let lo = Array.make (nd + 1) 0 in
  Array.iter
    (fun o -> lo.(pl.p_assign.(o) + 1) <- lo.(pl.p_assign.(o) + 1) + 1)
    topo_of_pos;
  for t = 0 to nd - 1 do
    lo.(t + 1) <- lo.(t + 1) + lo.(t)
  done;
  let seg = Array.make_matrix nd (ngroups + 1) 0 in
  for t = 0 to nd - 1 do
    let i = ref lo.(t) in
    for g = 0 to ngroups do
      while !i < lo.(t + 1) && pl.p_groups.(topo_of_pos.(!i)) < g do
        incr i
      done;
      seg.(t).(g) <- !i
    done
  done;
  (* cross-partition traffic: which slots each partition imports (and at
     which group), which slots each partition exports (and after which
     group).  Values travel through one preallocated mailbox; memory slots
     are refreshed from the master at the top of each cycle instead (the
     coordinator is their only writer). *)
  let imp_sets = Array.init nd (fun _ -> Hashtbl.create 16) in
  let exp_set = Hashtbl.create 16 in
  let mem_sets = Array.init nd (fun _ -> Hashtbl.create 8) in
  for o = 0 to ncomb - 1 do
    let t = pl.p_assign.(o) in
    Array.iter
      (fun d ->
        if pl.p_assign.(d) <> t then begin
          let s = pos_of_topo.(d) in
          Hashtbl.replace imp_sets.(t) s (pl.p_groups.(d) + 1);
          Hashtbl.replace exp_set s ()
        end)
      deps.(o);
    List.iter
      (fun e ->
        List.iter
          (fun name ->
            let s = Hashtbl.find slots name in
            if s >= ncomb then Hashtbl.replace mem_sets.(t) s ())
          (Expr.names e))
      (Component.combinational_inputs order.(o))
  done;
  let flatten_by_group items =
    (* items : (group, slot) list -> slots sorted by (group, slot) with a
       prefix index per group *)
    let arr = Array.of_list (List.sort compare items) in
    let slots = Array.map snd arr in
    let start = Array.make (ngroups + 2) 0 in
    let i = ref 0 in
    for g = 0 to ngroups + 1 do
      while !i < Array.length arr && fst arr.(!i) < g do
        incr i
      done;
      start.(g) <- !i
    done;
    (slots, start)
  in
  let imp_slots = Array.make nd [||] and imp_start = Array.make nd [||] in
  let exp_slots = Array.make nd [||] and exp_start = Array.make nd [||] in
  let mem_imp = Array.make nd [||] in
  let exp_by_owner = Array.make nd [] in
  Hashtbl.iter
    (fun s () ->
      let o = topo_of_pos.(s) in
      exp_by_owner.(pl.p_assign.(o)) <-
        (pl.p_groups.(o), s) :: exp_by_owner.(pl.p_assign.(o)))
    exp_set;
  for t = 0 to nd - 1 do
    let islots, istart =
      flatten_by_group (Hashtbl.fold (fun s g acc -> (g, s) :: acc) imp_sets.(t) [])
    in
    imp_slots.(t) <- islots;
    imp_start.(t) <- istart;
    let eslots, estart = flatten_by_group exp_by_owner.(t) in
    exp_slots.(t) <- eslots;
    exp_start.(t) <- estart;
    mem_imp.(t) <-
      Hashtbl.fold (fun s () acc -> s :: acc) mem_sets.(t) []
      |> List.sort compare |> Array.of_list
  done;
  (* master state: what [read]/traces/the memory phase observe; domains
     publish into it at end of cycle *)
  let master = Array.make (max 1 ncomp) 0 in
  let cells = Array.make (max 1 p.Flat.p_cells_len) 0 in
  Array.iter
    (fun m ->
      match m.Flat.m_init with
      | Some init -> Array.blit init 0 cells m.Flat.m_off (Array.length init)
      | None -> ())
    p.Flat.p_mems;
  let cycle = ref 0 in
  let exec_master = Flat.make_exec p ~vals:master ~cycle in
  let names = p.Flat.p_names in
  let dirty = Bytes.make (max 1 ncomb) '\001' in
  let dirty_snap = Bytes.make (max 1 ncomb) '\001' in
  let comb_fault = Bytes.make (max 1 ncomb) '\000' in
  let faults = config.Machine.faults in
  let fault_targets = Fault.targets faults in
  for i = 0 to ncomb - 1 do
    if List.mem names.(i) fault_targets then Bytes.set comb_fault i '\001'
  done;
  let dep_off = p.Flat.p_dep_off
  and dep_len = p.Flat.p_dep_len
  and gdeps = p.Flat.p_deps in
  let wake_all id =
    let o = Array.unsafe_get dep_off id in
    let stop = o + Array.unsafe_get dep_len id in
    for j = o to stop - 1 do
      Bytes.unsafe_set dirty (Array.unsafe_get gdeps j) '\001'
    done
  in
  (* mailbox + barrier + skew plant *)
  let mailbox = Mailbox.create ncomp in
  let barrier = Barrier.create nd in
  let err = Atomic.make false in
  let skew_t =
    if not (nd > 1 && skew_enabled ()) then -1
    else begin
      (* the planted lost update: the first partition with any cross-
         partition imports silently drops its whole import phase — it runs
         on stale inputs every cycle, which is exactly what a missing
         barrier would let happen *)
      let found = ref (-1) in
      (try
         for t = 0 to nd - 1 do
           if imp_start.(t).(ngroups + 1) > 0 then begin
             found := t;
             raise Exit
           end
         done
       with Exit -> ());
      !found
    end
  in
  let participant t =
    let vals_t = Array.make (max 1 ncomp) 0 in
    let exec_t = Flat.make_exec p ~vals:vals_t ~cycle in
    let h = Barrier.handle barrier in
    let lo_t = lo.(t) and hi_t = lo.(t + 1) in
    let wake_local id =
      let o = Array.unsafe_get dep_off id in
      let stop = o + Array.unsafe_get dep_len id in
      for j = o to stop - 1 do
        let i = Array.unsafe_get gdeps j in
        if i >= lo_t && i < hi_t then Bytes.unsafe_set dirty i '\001'
      done
    in
    let entry = p.Flat.p_comb_entry in
    let eval_seg g =
      for i = seg.(t).(g) to seg.(t).(g + 1) - 1 do
        if Bytes.unsafe_get dirty i <> '\000' then begin
          let v = exec_t (Array.unsafe_get entry i) 0 0 0 in
          Bytes.unsafe_set dirty i (Bytes.unsafe_get comb_fault i);
          let v =
            if Bytes.unsafe_get comb_fault i = '\000' then v
            else
              Fault.apply faults ~cycle:!cycle
                ~component:(Array.unsafe_get names i)
                v
          in
          if Array.unsafe_get vals_t i <> v then begin
            Array.unsafe_set vals_t i v;
            wake_local i
          end
        end
      done
    in
    let istart = imp_start.(t)
    and islots = imp_slots.(t)
    and estart = exp_start.(t)
    and eslots = exp_slots.(t)
    and mimp = mem_imp.(t) in
    fun () ->
      let attended = ref 0 in
      (try
         (* refresh private copies of memory outputs latched last cycle (the
            coordinator already marked our dependents dirty) *)
         for k = 0 to Array.length mimp - 1 do
           let s = Array.unsafe_get mimp k in
           Array.unsafe_set vals_t s (Array.unsafe_get master s)
         done;
         for g = 0 to ngroups - 1 do
           if g > 0 && t <> skew_t then
             Mailbox.import mailbox ~dst:vals_t ~slots:islots ~lo:istart.(g)
               ~hi:(istart.(g + 1))
               ~changed:wake_local;
           eval_seg g;
           if g < ngroups - 1 then begin
             Mailbox.post mailbox ~src:vals_t ~slots:eslots ~lo:estart.(g)
               ~hi:(estart.(g + 1));
             Barrier.wait h;
             incr attended
           end
         done
       with _ ->
         (* remember only that *some* domain failed; the coordinator replays
            the cycle sequentially to recover the canonical first error *)
         Atomic.set err true);
      (* keep meeting the barriers the failed wave still owes, or peers
         would wait forever *)
      for _ = !attended to ngroups - 2 do
        Barrier.wait h
      done;
      Barrier.wait h;
      if not (Atomic.get err) then
        Array.blit vals_t lo_t master lo_t (hi_t - lo_t)
  in
  let fns = if nd > 1 then Array.init nd participant else [||] in
  (* coordinator-side memory phase over the master state — the same
     latch-then-update sequence as the flat engine *)
  let mems = p.Flat.p_mems in
  let nmem = Array.length mems in
  let stats =
    Stats.create
      ~memories:(Array.to_list (Array.map (fun m -> m.Flat.m_name) mems))
  in
  let maddr = Array.make (max 1 nmem) 0 and mop = Array.make (max 1 nmem) 0 in
  let mcount = Array.map (fun m -> Stats.memory stats m.Flat.m_name) mems in
  let mfault = Array.map (fun m -> List.mem m.Flat.m_name fault_targets) mems in
  let io = config.Machine.io in
  let trace = config.Machine.trace in
  let trace_active = not (trace == Trace.null_sink) in
  let snap k =
    let m = Array.unsafe_get mems k in
    Array.unsafe_set maddr k (exec_master m.Flat.m_addr_pc 0 0 0);
    Array.unsafe_set mop k (exec_master m.Flat.m_op_pc 0 0 0)
  in
  let update k =
    let m = Array.unsafe_get mems k in
    let id = m.Flat.m_id in
    let old = Array.unsafe_get master id in
    let a = Array.unsafe_get maddr k in
    let op = Array.unsafe_get mop k in
    let c = Array.unsafe_get mcount k in
    (match op land 3 with
    | 0 ->
        if a < 0 || a >= m.Flat.m_len then
          Machine.address_out_of_range ~component:m.Flat.m_name ~cycle:!cycle
            ~address:a ~cells:m.Flat.m_len;
        Array.unsafe_set master id (Array.unsafe_get cells (m.Flat.m_off + a));
        c.Stats.reads <- c.Stats.reads + 1
    | 1 ->
        if a < 0 || a >= m.Flat.m_len then
          Machine.address_out_of_range ~component:m.Flat.m_name ~cycle:!cycle
            ~address:a ~cells:m.Flat.m_len;
        let v = exec_master m.Flat.m_data_pc 0 0 0 in
        Array.unsafe_set master id v;
        Array.unsafe_set cells (m.Flat.m_off + a) v;
        c.Stats.writes <- c.Stats.writes + 1
    | 2 ->
        Array.unsafe_set master id (io.Io.input ~address:a);
        c.Stats.inputs <- c.Stats.inputs + 1
    | _ ->
        let v = exec_master m.Flat.m_data_pc 0 0 0 in
        Array.unsafe_set master id v;
        io.Io.output ~address:a ~data:v;
        c.Stats.outputs <- c.Stats.outputs + 1);
    if trace_active then (
      if Component.traces_writes op then
        trace (Trace.write_line ~memory:m.Flat.m_name ~address:a ~data:master.(id));
      if Component.traces_reads op then
        trace (Trace.read_line ~memory:m.Flat.m_name ~address:a ~data:master.(id)));
    (if Array.unsafe_get mfault k then begin
       let before = Array.unsafe_get master id in
       let v = Fault.apply faults ~cycle:!cycle ~component:m.Flat.m_name before in
       Array.unsafe_set master id v
     end);
    if Array.unsafe_get master id <> old then wake_all id
  in
  let traced =
    Spec.traced_names spec
    |> List.map (fun name -> (name, Hashtbl.find p.Flat.p_ids name))
    |> Array.of_list
  in
  let emit_cycle_line =
    if not trace_active then fun () -> ()
    else fun () ->
      trace
        (Trace.cycle_line ~cycle:!cycle
           (Array.to_list
              (Array.map (fun (name, id) -> (name, master.(id))) traced)))
  in
  let finish_cycle () =
    emit_cycle_line ();
    for k = 0 to nmem - 1 do
      snap k
    done;
    for k = 0 to nmem - 1 do
      update k
    done;
    incr cycle;
    Stats.bump_cycle stats
  in
  (* the sequential path: the flat engine's activity loop over the master,
     visiting positions in topological order — used as the whole step when
     [nd = 1] (the honest par@1 ablation) and as the replay after a wave
     error *)
  let entry = p.Flat.p_comb_entry in
  let seq_comb () =
    for o = 0 to ncomb - 1 do
      let i = Array.unsafe_get pos_of_topo o in
      if Bytes.unsafe_get dirty i <> '\000' then begin
        let v = exec_master (Array.unsafe_get entry i) 0 0 0 in
        Bytes.unsafe_set dirty i (Bytes.unsafe_get comb_fault i);
        let v =
          if Bytes.unsafe_get comb_fault i = '\000' then v
          else
            Fault.apply faults ~cycle:!cycle
              ~component:(Array.unsafe_get names i)
              v
        in
        if Array.unsafe_get master i <> v then begin
          Array.unsafe_set master i v;
          wake_all i
        end
      end
    done
  in
  let seq_step () =
    seq_comb ();
    finish_cycle ()
  in
  let broken = ref false in
  let step =
    if nd = 1 then seq_step
    else fun () ->
      if !broken then seq_step ()
      else begin
        Bytes.blit dirty 0 dirty_snap 0 (Bytes.length dirty);
        Pool.run fns;
        if Atomic.get err then begin
          (* Some domain raised mid-wave; partition state is not
             trustworthy and the first-failing component is order
             dependent.  The master is untouched (publishes were skipped),
             so restore the cycle-start dirty bits and replay sequentially:
             this raises exactly the error the flat engine would, leaves
             exactly its partial state, and the machine stays sequential
             from here on (re-stepping re-raises, like flat). *)
          broken := true;
          Bytes.blit dirty_snap 0 dirty 0 (Bytes.length dirty);
          seq_step ()
        end
        else finish_cycle ()
      end
  in
  let component_slot name =
    match Hashtbl.find_opt p.Flat.p_ids name with
    | Some id -> id
    | None -> Error.failf Error.Analysis "Component <%s> not found." name
  in
  let mem_by_name name =
    match Array.find_opt (fun m -> String.equal m.Flat.m_name name) mems with
    | Some m -> m
    | None -> Error.failf Error.Runtime "Component <%s> is not a memory." name
  in
  let read_cell name index =
    let m = mem_by_name name in
    if index < 0 || index >= m.Flat.m_len then
      invalid_arg "Par: cell index out of range"
    else cells.(m.Flat.m_off + index)
  in
  let write_cell name index value =
    let m = mem_by_name name in
    if index < 0 || index >= m.Flat.m_len then
      invalid_arg "Par: cell index out of range"
    else cells.(m.Flat.m_off + index) <- value
  in
  {
    Machine.analysis;
    step;
    read = (fun name -> master.(component_slot name));
    read_cell;
    write_cell;
    current_cycle = (fun () -> !cycle);
    stats;
  }
