(** The partitioned engine: the flat kernel run bulk-synchronously across
    domains.

    The specification's combinational components are split into
    cost-balanced partitions ({!plan}): a greedy pass cuts contiguous
    declaration-order blocks of roughly equal modelled cost (the lib/prof
    measured cost model when supplied, otherwise the flat program's words
    per component), then KL-style refinement moves components across the
    boundaries while that strictly reduces cut edges and keeps partitions
    within 110% of the average load.

    The program is compiled ({!Asim_flat.Flat.compile}) with a
    partition-major slot layout, so each domain owns a contiguous slice of
    the opcode array and of the int-array state.  A cycle is a BSP wave:
    components are scheduled into {e sync groups} (a component's group is
    the maximum of its same-partition inputs' groups and one more than its
    cross-partition inputs' groups), and every domain evaluates its group-g
    segment with the flat engine's activity rule, posts the group's
    cross-partition values into a preallocated {!Mailbox}, and meets a
    sense-reversing {!Barrier} — one barrier per group, which degenerates to
    one per cycle when no combinational edge crosses a partition.  Each
    domain then publishes its slice into the master state with one blit; the
    coordinator runs the sequential memory phase (latch, update, I/O,
    traces, statistics) exactly as the flat engine does.  Nothing on this
    path allocates per cycle.

    Runtime errors: a wave that raises (selector out of range) is discarded
    — publishes are skipped, the cycle-start dirty bits are restored, and
    the cycle is replayed sequentially over the master state, raising
    exactly the error the flat engine would raise and leaving exactly its
    partial state; the machine stays sequential afterwards (re-stepping
    re-raises, like flat).  The differential oracle holds this engine to
    cycle-for-cycle equality with the other eight.

    Domains come from one process-wide worker pool shared by all
    partitioned machines (the runtime caps total domains; machines are
    created by the hundreds), so concurrent machines serialize their steps
    against each other.  With one partition no pool, barrier or mailbox is
    involved at all: the step is the flat activity loop plus one indirection
    — the honest par@1 ablation the benchmarks record. *)

val default_domains : unit -> int
(** [ASIM_PAR_DOMAINS] when set (clamped to 1..16; anything unparsable is
    an analysis error), otherwise
    [min 8 (Domain.recommended_domain_count ())]. *)

val domains_env : string

val skew_env : string
(** Setting [ASIM_PAR_SKEW=1] plants a lost update: the first partition
    with any cross-partition imports silently drops its whole import phase
    and runs on stale inputs — the bug the barrier + mailbox discipline
    exists to prevent.  The differential oracle must catch it (a must-fail
    check, like the tiered engine's swap skew).  A no-op with one partition
    or no cross-partition edges. *)

(** A partitioning decision, exposed for tests and diagnostics. *)
type plan = {
  p_domains : int;  (** effective partition count *)
  p_assign : int array;  (** partition, by topological position *)
  p_groups : int array;  (** sync group, by topological position *)
  p_ngroups : int;  (** barriers per cycle (plus the end-of-wave one) *)
  p_loads : float array;  (** modelled cost per partition *)
  p_cut : int;  (** cross-partition combinational edges *)
}

val plan :
  ?costs:(string * float) list ->
  ?assign:int array ->
  domains:int ->
  Asim_analysis.Analysis.t ->
  plan
(** Partition the spec's combinational components.  [costs] is a measured
    per-component cost model (e.g. {!Asim_prof.Prof} evals x words);
    components it does not cover fall back to static flat-program word
    counts.  [assign] overrides the partitioner entirely with an explicit
    partition per topological position (values taken mod [domains]) — the
    equivalence tests drive random assignments through this.  [domains] is
    clamped to [1 ..min 16 ncomb].  Deterministic for equal inputs. *)

val create :
  ?config:Asim_sim.Machine.config ->
  ?tracer:Asim_obs.Tracer.t ->
  ?domains:int ->
  ?costs:(string * float) list ->
  ?assign:int array ->
  Asim_analysis.Analysis.t ->
  Asim_sim.Machine.t
(** Build the partitioned machine.  [domains] defaults to
    {!default_domains}; observable behavior (state, traces, I/O, statistics,
    errors) is identical for every domain count — only the schedule differs.
    No profiling support: the per-eval counters would race across domains
    (use the flat engine to collect a profile, then feed its cost model back
    here via [costs]). *)
