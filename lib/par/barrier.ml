type t = {
  n : int;
  count : int Atomic.t;
  sense : bool Atomic.t;
  lock : Mutex.t;
  cond : Condition.t;
}

type handle = { b : t; mutable local : bool }

let create n =
  if n < 1 then invalid_arg "Barrier.create: need at least one party";
  {
    n;
    count = Atomic.make 0;
    sense = Atomic.make false;
    lock = Mutex.create ();
    cond = Condition.create ();
  }

let parties b = b.n

let handle b = { b; local = true }

(* Short enough that an oversubscribed box (fewer cores than parties)
   degrades to the blocking path quickly instead of burning a scheduling
   quantum spinning against a descheduled peer. *)
let spin_limit = 2000

let wait h =
  let b = h.b in
  let target = h.local in
  h.local <- not target;
  if b.n > 1 then
    if Atomic.fetch_and_add b.count 1 = b.n - 1 then begin
      (* Last arrival: reset the count *before* flipping the sense, so a
         fast peer re-entering the next round finds it zeroed. *)
      Atomic.set b.count 0;
      Mutex.lock b.lock;
      Atomic.set b.sense target;
      Condition.broadcast b.cond;
      Mutex.unlock b.lock
    end
    else begin
      let spins = ref spin_limit in
      while Atomic.get b.sense <> target && !spins > 0 do
        decr spins;
        Domain.cpu_relax ()
      done;
      if Atomic.get b.sense <> target then begin
        Mutex.lock b.lock;
        while Atomic.get b.sense <> target do
          Condition.wait b.cond b.lock
        done;
        Mutex.unlock b.lock
      end
    end
