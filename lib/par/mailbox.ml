type t = { values : int array }

let create n = { values = Array.make (max 1 n) 0 }

let length t = Array.length t.values

let post t ~src ~slots ~lo ~hi =
  let values = t.values in
  for k = lo to hi - 1 do
    let s = Array.unsafe_get slots k in
    Array.unsafe_set values s (Array.unsafe_get src s)
  done

let import t ~dst ~slots ~lo ~hi ~changed =
  let values = t.values in
  for k = lo to hi - 1 do
    let s = Array.unsafe_get slots k in
    let v = Array.unsafe_get values s in
    if Array.unsafe_get dst s <> v then begin
      Array.unsafe_set dst s v;
      changed s
    end
  done

let get t s = t.values.(s)

let set t s v = t.values.(s) <- v
