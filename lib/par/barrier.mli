(** Reusable sense-reversing barrier.

    A classic two-phase barrier for a fixed party count: arrivals count up
    on one atomic, the last arrival resets the count and flips the shared
    {e sense}, and everyone else waits for the sense to match the value
    their private handle expects — which inverts every round, so the same
    barrier object is reused cycle after cycle with no reinitialization and
    no allocation in {!wait}.

    Waiters spin briefly with [Domain.cpu_relax] and then fall back to a
    mutex/condition sleep, so the barrier is correct (if slow) even when the
    machine has fewer cores than parties — including the one-core CI case.

    Memory ordering: everything a party wrote before its {!wait} is visible
    to every party after the same barrier round (the atomic
    increment-then-sense-read chain gives the happens-before edge). *)

type t

type handle
(** One party's view: carries the private expected sense.  Each party must
    use its own handle, and every party must call {!wait} the same number
    of times. *)

val create : int -> t
(** [create n] makes a barrier for [n] parties.  Raises [Invalid_argument]
    for [n < 1]. *)

val parties : t -> int

val handle : t -> handle

val wait : handle -> unit
(** Block until all [n] parties have arrived.  With [n = 1] this returns
    immediately. *)
