(** The tiered engine: flat-first execution with a background JIT hot-swap.

    BENCH_engines.json states the paper's Figure 5.1 tension precisely: the
    native Dynlink engine is two orders of magnitude faster than the
    interpreter steady-state but slower than the flat kernel until a
    ~128 ms compile has amortized.  This engine refuses the choice.  It
    starts executing immediately on the flat kernel
    ({!Asim_flat.Flat.create_exposed}), spawns one background domain that
    drives the existing {!Asim_jit.Jit} pipeline (same content-addressed
    artifact cache, same single-flight locks), and — once the plugin is
    compiled and Dynlinked — hands execution to the native engine at the
    next cycle boundary.

    {b The handoff.}  Both engines run over the identical flat state
    layout: one [int] slot per component in specification order, every
    memory's cells concatenated in declaration order.  The swap therefore
    builds the native machine directly {e over} the flat machine's live
    arrays ({!Asim_jit.Jit.create}'s [state]/[stats]/[start_cycle]
    adoption): a pointer/closure exchange, no copying.  At a cycle boundary
    those arrays plus the cycle count and statistics are the entire
    future-determining state — combinational slots are recomputed at the
    top of every cycle, and the flat kernel's dirty bits and latched
    address/op temporaries never cross a boundary, so they are simply
    abandoned.  The swap-point lockstep harness (test/test_tiered.ml)
    forces the handoff at adversarial cycles and asserts every observable
    (trace text, I/O events, memory images, statistics, faults, runtime
    errors) is byte-identical to single-engine runs.

    {b Fallbacks.}  Without a toolchain on PATH no domain is spawned: the
    run completes on the flat kernel, one process-wide warning is emitted
    (never per-cycle or per-machine), and the status reports
    [Unavailable].  If the background compile fails, the run likewise
    completes on flat with status [Failed].  Either way the observables
    are unchanged — only the speed differs.

    {b Observability.}  Every swap decision emits a [tiered.swap] span
    with [cycle] (the boundary index), [mode] ([ready] when the plugin was
    already compiled, [wait] when a forced swap blocked on the compile)
    and [outcome] ([swapped], [failed] or [unavailable]) args.

    {b Test hooks.}  [ASIM_TIERED_SWAP_AT] (a cycle number, [auto], or
    [never]) sets the default swap policy for machines created without an
    explicit [swap_at] — this is how the CLI, batch jobs and CI force a
    deterministic handoff.  [ASIM_TIERED_SKEW=1] deliberately mis-numbers
    the native engine's first cycle by one at the swap — a planted
    off-by-one that the lockstep harness (and CI's must-fail check) must
    catch; never set it outside tests. *)

(** When to hand off from the flat kernel to the native engine. *)
type policy =
  | Auto
      (** swap at a cycle boundary shortly after the background compile
          finishes (completion is polled every few hundred cycles so the
          per-cycle hot path stays a single countdown); never blocks
          (default).  The compile domain is spawned
          lazily, once the run has executed {!auto_spawn_cycles} cycles on
          the flat kernel: a run too short to amortize the compile never
          pays domain startup or (on single-core hosts) compiler CPU
          contention.  If the plugin is already in the in-process memo, the
          swap happens at cycle 0 with no domain at all. *)
  | At of int
      (** force the swap at exactly this cycle boundary ([At 0] runs every
          cycle on the native engine), blocking on the compile if it has
          not finished — the deterministic [swap_at_cycle] test hook *)
  | Never  (** stay on the flat kernel; no background compile is started *)

val policy_of_string : string -> policy option
(** ["auto"], ["never"]/["off"], or a non-negative cycle number. *)

val auto_spawn_cycles : int
(** How many cycles an [Auto] run executes on the flat kernel before the
    background compile domain is spawned (16384 ≈ 10 ms of flat execution
    against a ~100 ms compile).  Runs that halt earlier never start a
    compile; forced policies ([At n]) spawn at machine creation instead so
    the deterministic test hook can block at any cycle. *)

val policy_to_string : policy -> string

(** Where the swap ended up. *)
type swap_state =
  | Pending  (** still on flat; the background compile has not finished *)
  | Swapped of int  (** running native since this cycle boundary *)
  | Unavailable  (** no toolchain: the whole run stays on flat *)
  | Failed of string  (** the background compile failed: stays on flat *)
  | Disabled  (** policy [Never] *)

val swap_state_to_string : swap_state -> string
(** ["pending"], ["swapped"], ["unavailable"], ["failed"] or ["disabled"]
    — the value the CLI records under ["swap"] in [--stats-json]. *)

type status = {
  state : swap_state;
  engine : string;  (** the engine currently executing: ["flat"] or ["native"] *)
}

val create_status :
  ?config:Asim_sim.Machine.config ->
  ?tracer:Asim_obs.Tracer.t ->
  ?cache_dir:string ->
  ?swap_at:policy ->
  ?on_warning:(string -> unit) ->
  ?prof:Asim_prof.Prof.t ->
  Asim_analysis.Analysis.t ->
  Asim_sim.Machine.t * (unit -> status)
(** Build a tiered machine plus an inspection function reporting which
    engine is executing and how the swap resolved.  [swap_at] defaults to
    [ASIM_TIERED_SWAP_AT] when set (raising [Asim_core.Error.Error] on a
    malformed value), else [Auto].  [on_warning] receives the single
    no-toolchain warning line (default: stderr, once per process).
    [cache_dir] routes the background compile's artifact cache exactly as
    for {!Asim_jit.Jit.create}.

    [prof] attaches an {!Asim_prof.Prof} profile {e and pins the run to
    the instrumented flat kernel} (policy forced to [Never], status
    [Disabled]): the native plugin carries no counters, so swapping would
    silently stop the profile mid-run.  Profiled runs trade the JIT
    speedup for complete attribution. *)

val create :
  ?config:Asim_sim.Machine.config ->
  ?tracer:Asim_obs.Tracer.t ->
  ?cache_dir:string ->
  ?swap_at:policy ->
  ?on_warning:(string -> unit) ->
  ?prof:Asim_prof.Prof.t ->
  Asim_analysis.Analysis.t ->
  Asim_sim.Machine.t
(** {!create_status} without the inspection function. *)
