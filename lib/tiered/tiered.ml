(* The tiered engine: run on the flat kernel from cycle 0, compile the
   native plugin in a background domain, and hand execution over at a cycle
   boundary once Dynlink has finished.

   The handoff leans on one invariant, checked by the swap-point lockstep
   harness: at a cycle boundary, a machine's future is fully determined by
   its memory cells, latched memory outputs (both live in the shared
   [vals]/[cells] arrays), the cycle count and the statistics.  The flat
   kernel and the native engine use the identical array layout, so the
   native machine is built directly over the flat machine's arrays
   ([Jit.create ~state ~stats ~start_cycle]) and simply continues.  The
   flat kernel's dirty bits are abandoned — the generated code re-evaluates
   every combinational component each cycle, so no flush is needed. *)

open Asim_sim
module Analysis = Asim_analysis.Analysis
module Error = Asim_core.Error
module Tracer = Asim_obs.Tracer
module Clock = Asim_obs.Clock
module Flat = Asim_flat.Flat
module Jit = Asim_jit.Jit

type policy = Auto | At of int | Never

let policy_of_string s =
  match String.lowercase_ascii s with
  | "auto" -> Some Auto
  | "never" | "off" -> Some Never
  | s -> (
      match int_of_string_opt s with
      | Some n when n >= 0 -> Some (At n)
      | _ -> None)

let policy_to_string = function
  | Auto -> "auto"
  | Never -> "never"
  | At n -> string_of_int n

let swap_at_env = "ASIM_TIERED_SWAP_AT"
let skew_env = "ASIM_TIERED_SKEW"

let env_policy () =
  match Sys.getenv_opt swap_at_env with
  | None | Some "" -> None
  | Some s -> (
      match policy_of_string s with
      | Some p -> Some p
      | None ->
          Error.failf Error.Runtime
            "bad %s value %S (expected a cycle number, \"auto\" or \"never\")"
            swap_at_env s)

(* Test-only: mis-number the native engine's first cycle by one at the swap,
   so the lockstep harness (and CI's must-fail leg) can prove it detects a
   skewed handoff. *)
let skew_requested () =
  match Sys.getenv_opt skew_env with Some "1" -> true | _ -> false

type swap_state =
  | Pending
  | Swapped of int
  | Unavailable
  | Failed of string
  | Disabled

let swap_state_to_string = function
  | Pending -> "pending"
  | Swapped _ -> "swapped"
  | Unavailable -> "unavailable"
  | Failed _ -> "failed"
  | Disabled -> "disabled"

type status = { state : swap_state; engine : string }

(* Under [Auto], the background compile domain is not spawned until the run
   has executed this many cycles on the flat kernel.  A run shorter than
   ~10 ms of flat execution (~16k cycles at the measured ~600 ns/cycle)
   cannot possibly swap early enough for the ~100 ms compile to pay off —
   spawning eagerly would only tax short runs with domain startup and, on
   single-core hosts, with compiler CPU contention.  Long runs reach the
   threshold within milliseconds, so the swap point is still dominated by
   the compile duration.  Forced policies ([At n]) spawn at creation: the
   deterministic test hook must be able to block on the compile at any
   cycle, including 0. *)
let auto_spawn_cycles = 16_384

(* --- background compile domains --------------------------------------------- *)

type compile_result = Pending_r | Ready_r | Failed_r of string

(* Spawned domains are reaped (joined) opportunistically before the next
   spawn rather than at swap time: a run that halts before its compile
   finishes — or never swaps — must not strand a domain slot, or a batch of
   tiered jobs would exhaust the runtime's domain limit. *)
let spawned : (bool Atomic.t * unit Domain.t) list ref = ref []
let spawned_lock = Mutex.create ()

let reap () =
  Mutex.protect spawned_lock (fun () ->
      spawned :=
        List.filter
          (fun (finished, d) ->
            if Atomic.get finished then (
              Domain.join d;
              false)
            else true)
          !spawned)

let track finished d =
  Mutex.protect spawned_lock (fun () -> spawned := (finished, d) :: !spawned)

let describe_exn = function
  | Error.Error e -> Error.to_string e
  | e -> Printexc.to_string e

(* One process-wide warning when the toolchain is absent, not one per
   machine: a fuzz campaign or batch run over many specs stays readable. *)
let warned_unavailable = Atomic.make false

let default_warn msg =
  if not (Atomic.exchange warned_unavailable true) then
    prerr_endline ("asim: " ^ msg)

(* --- the engine -------------------------------------------------------------- *)

let create_status ?(config = Machine.default_config) ?(tracer = Tracer.null)
    ?cache_dir ?swap_at ?(on_warning = default_warn) ?prof
    (analysis : Analysis.t) =
  let policy =
    match swap_at with
    | Some p -> p
    | None -> ( match env_policy () with Some p -> p | None -> Auto)
  in
  (* A profiled run is pinned to the flat kernel: the native plugin carries
     no counters, so a hot-swap would silently stop the profile mid-run.
     Attribution beats speed when the caller asked to measure. *)
  let policy = match prof with None -> policy | Some _ -> Never in
  let skew = skew_requested () in
  let flat, st = Flat.create_exposed ~config ~tracer ?prof analysis in
  (match prof with
  | None -> ()
  | Some p -> p.Asim_prof.Prof.engine <- "tiered(flat-pinned)");
  let current = ref flat in
  let current_step = ref flat.Machine.step in
  let state = ref Pending in
  (* The hot path is one countdown: [step] decrements [togo] and only
     enters the policy machinery when it hits zero.  [max_int] means
     settled — nothing will ever happen again; the flat kernel runs a cycle
     in a few hundred ns, so anything beyond a decrement-and-branch here is
     measurable against it. *)
  let togo = ref max_int in
  let result = Atomic.make Pending_r in
  let mu = Mutex.create () in
  let cv = Condition.create () in
  let spawn_compile () =
    reap ();
    let finished = Atomic.make false in
    let d =
      Domain.spawn (fun () ->
          (try
             Jit.prepare ~tracer ?cache_dir analysis;
             Atomic.set result Ready_r
           with e -> Atomic.set result (Failed_r (describe_exn e)));
          Mutex.protect mu (fun () -> Condition.broadcast cv);
          Atomic.set finished true)
    in
    track finished d
  in
  (* [Auto] defers the spawn (see [auto_spawn_cycles]); this flag hands the
     decision to [step].  Only the machine's own domain touches it. *)
  let spawn_pending = ref false in
  (match policy with
  | Never -> state := Disabled
  | Auto | At _ ->
      (if not (Jit.available ()) then begin
         state := Unavailable;
         on_warning
           "tiered engine: no OCaml toolchain answered on PATH — running on \
            the flat kernel for the whole run (swap=unavailable)";
         Tracer.span_at tracer "tiered.swap" ~ts:(Clock.now ()) ~dur:0.0
           ~args:
             [ ("cycle", "0"); ("mode", "ready"); ("outcome", "unavailable") ]
       end
       else if Jit.prepared analysis then
         (* The plugin is already Dynlinked in this process (an earlier
            machine over the same spec): no domain, swap-ready at once. *)
         Atomic.set result Ready_r
       else
         match policy with
         | At _ -> spawn_compile ()
         | Auto | Never -> spawn_pending := true);
      (* Arm the countdown: [At n] fires at boundary [n]; [Auto] fires at
         the spawn threshold when cold, at the first boundary when the
         plugin is already in the memo. *)
      if !state = Pending then
        togo :=
          (match policy with
          | At n -> n + 1
          | Auto | Never ->
              if !spawn_pending then auto_spawn_cycles + 1 else 1));
  let wait_decided () =
    Mutex.lock mu;
    while Atomic.get result = Pending_r do
      Condition.wait cv mu
    done;
    Mutex.unlock mu
  in
  let emit_span ~t0 ~cycle ~mode ~outcome extra =
    Tracer.span_at tracer "tiered.swap" ~ts:t0 ~dur:(Clock.now () -. t0)
      ~args:
        ([ ("cycle", string_of_int cycle); ("mode", mode); ("outcome", outcome) ]
        @ extra)
  in
  let settle_failed ~t0 ~mode msg =
    state := Failed msg;
    togo := max_int;
    emit_span ~t0 ~cycle:(flat.Machine.current_cycle ()) ~mode ~outcome:"failed"
      [ ("error", msg) ]
  in
  let swap ~t0 ~mode =
    let cycle = flat.Machine.current_cycle () in
    let start_cycle = if skew then cycle + 1 else cycle in
    match
      Jit.create ~config ~tracer ?cache_dir
        ~state:(st.Flat.s_vals, st.Flat.s_cells)
        ~stats:flat.Machine.stats ~start_cycle analysis
    with
    | native ->
        current := native;
        current_step := native.Machine.step;
        state := Swapped cycle;
        togo := max_int;
        emit_span ~t0 ~cycle ~mode ~outcome:"swapped" []
    | exception e -> settle_failed ~t0 ~mode (describe_exn e)
  in
  (* Coarse polling while the background compile is in flight: the compile
     lasts ~10^5 flat cycles, so re-checking every 256 keeps the handoff
     prompt to within a fraction of a millisecond without paying an atomic
     read on every cycle. *)
  let poll_interval = 256 in
  let slow () =
    match policy with
    | Never -> ()
    | Auto ->
        if !spawn_pending then begin
          spawn_pending := false;
          spawn_compile ();
          togo := poll_interval
        end
        else (
          match Atomic.get result with
          | Pending_r -> togo := poll_interval
          | Ready_r -> swap ~t0:(Clock.now ()) ~mode:"ready"
          | Failed_r msg -> settle_failed ~t0:(Clock.now ()) ~mode:"ready" msg)
    | At _ -> (
        let t0 = Clock.now () in
        let mode = if Atomic.get result = Pending_r then "wait" else "ready" in
        wait_decided ();
        match Atomic.get result with
        | Ready_r -> swap ~t0 ~mode
        | Failed_r msg -> settle_failed ~t0 ~mode msg
        | Pending_r -> assert false)
  in
  let step () =
    let t = !togo - 1 in
    togo := t;
    if t = 0 then slow ();
    !current_step ()
  in
  let machine =
    {
      Machine.analysis;
      step;
      read = (fun name -> (!current).Machine.read name);
      read_cell = (fun name i -> (!current).Machine.read_cell name i);
      write_cell = (fun name i v -> (!current).Machine.write_cell name i v);
      current_cycle = (fun () -> (!current).Machine.current_cycle ());
      stats = flat.Machine.stats;
    }
  in
  let status () =
    {
      state = !state;
      engine = (match !state with Swapped _ -> "native" | _ -> "flat");
    }
  in
  (machine, status)

let create ?config ?tracer ?cache_dir ?swap_at ?on_warning ?prof analysis =
  fst (create_status ?config ?tracer ?cache_dir ?swap_at ?on_warning ?prof analysis)
