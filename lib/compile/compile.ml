open Asim_core
open Asim_sim

(* A compiled expression is either a literal or a thunk over the value
   array.  Keeping the distinction lets the component compilers see
   constants (the paper's [numeric] test) and fold them away. *)
type compiled =
  | Cst of int
  | Fn of (unit -> int)

let force = function Cst v -> (fun () -> v) | Fn f -> f

let value_of = function Cst v -> Some v | Fn _ -> None

type ctx = {
  ids : (string, int) Hashtbl.t;
  vals : int array;
  cycle : int ref;
  fold : bool;
}

let component_id ctx name =
  match Hashtbl.find_opt ctx.ids name with
  | Some id -> id
  | None -> Error.failf Error.Analysis "Component <%s> not found." name

(* One atom, placed with its least-significant bit at [numbits]; returns the
   compiled contribution and the new bit position. *)
let compile_atom ctx numbits atom =
  match atom with
  | Expr.Const { number; width } -> (
      let v = Number.value number in
      match width with
      | None -> (Cst (v lsl numbits), Bits.word_bits)
      | Some w ->
          let w = Number.value w in
          (Cst ((v land Bits.ones w) lsl numbits), numbits + w))
  | Expr.Bitstring s ->
      let v = String.fold_left (fun acc c -> (acc * 2) + if c = '1' then 1 else 0) 0 s in
      (Cst (v lsl numbits), numbits + String.length s)
  | Expr.Ref { name; field } -> (
      let id = component_id ctx name in
      let vals = ctx.vals in
      match field with
      | Expr.Whole ->
          let f =
            if numbits = 0 then fun () -> vals.(id)
            else fun () -> vals.(id) lsl numbits
          in
          (Fn f, Bits.word_bits)
      | Expr.Bit fnum ->
          let lo = Number.value fnum in
          let mask = Bits.field_mask ~lo ~hi:lo in
          let f =
            if numbits >= lo then
              let s = numbits - lo in
              fun () -> (vals.(id) land mask) lsl s
            else
              let s = lo - numbits in
              fun () -> (vals.(id) land mask) lsr s
          in
          (Fn f, numbits + 1)
      | Expr.Range (fnum, tnum) ->
          let lo = Number.value fnum and hi = Number.value tnum in
          let mask = Bits.field_mask ~lo ~hi in
          let f =
            if numbits >= lo then
              let s = numbits - lo in
              fun () -> (vals.(id) land mask) lsl s
            else
              let s = lo - numbits in
              fun () -> (vals.(id) land mask) lsr s
          in
          (Fn f, numbits + (hi - lo + 1)))

let compile_expr ctx (e : Expr.t) =
  let rec build numbits = function
    | [] -> []
    | atom :: rest ->
        let compiled, numbits = compile_atom ctx numbits atom in
        compiled :: build numbits rest
  in
  let parts = build 0 (List.rev e) in
  let constant = List.fold_left (fun acc p -> match p with Cst v -> acc + v | Fn _ -> acc) 0 parts in
  let fns = List.filter_map (fun p -> match p with Fn f -> Some f | Cst _ -> None) parts in
  if ctx.fold then
    match (fns, constant) with
    | [], c -> Cst c
    | [ f ], 0 -> Fn f
    | [ f ], c -> Fn (fun () -> f () + c)
    | [ f; g ], 0 -> Fn (fun () -> f () + g ())
    | [ f; g ], c -> Fn (fun () -> f () + g () + c)
    | fns, c ->
        let fns = Array.of_list fns in
        Fn (fun () -> Array.fold_left (fun acc f -> acc + f ()) c fns)
  else
    (* Unoptimized: keep a thunk per atom, summed at run time. *)
    let thunks = Array.of_list (List.map force parts) in
    Fn (fun () -> Array.fold_left (fun acc f -> acc + f ()) 0 thunks)

(* --- components --------------------------------------------------------- *)

let compile_alu ctx name ({ fn; left; right } : Component.alu) =
  let l = force (compile_expr ctx left) and r = force (compile_expr ctx right) in
  let fc = compile_expr ctx fn in
  match (ctx.fold, value_of fc) with
  | true, Some code -> (
      (* §4.4: constant function — generate the operation inline instead of
         calling the generic dologic. *)
      match Component.alu_function_of_code code with
      | Component.Fn_zero | Component.Fn_unused -> fun () -> 0
      | Component.Fn_right -> r
      | Component.Fn_left -> l
      | Component.Fn_not -> fun () -> Bits.mask - l ()
      | Component.Fn_add -> fun () -> l () + r ()
      | Component.Fn_sub -> fun () -> l () - r ()
      | Component.Fn_shift_left -> fun () -> Bits.shift_left_masked (l ()) (r ())
      | Component.Fn_mul -> fun () -> l () * r ()
      | Component.Fn_and -> fun () -> l () land r ()
      | Component.Fn_or ->
          fun () ->
            let a = l () and b = r () in
            a + b - (a land b)
      | Component.Fn_xor ->
          fun () ->
            let a = l () and b = r () in
            a + b - (2 * (a land b))
      | Component.Fn_eq -> fun () -> if l () = r () then 1 else 0
      | Component.Fn_lt -> fun () -> if l () < r () then 1 else 0)
  | _ ->
      ignore name;
      let f = force fc in
      fun () -> Component.apply_alu_code (f ()) ~left:(l ()) ~right:(r ())

let compile_selector ctx name ({ select; cases } : Component.selector) =
  let sel = force (compile_expr ctx select) in
  let compiled = Array.map (fun case -> force (compile_expr ctx case)) cases in
  let n = Array.length compiled in
  let cycle = ctx.cycle in
  fun () ->
    let index = sel () in
    if index < 0 || index >= n then
      Machine.selector_out_of_range ~component:name ~cycle:!cycle ~index ~cases:n
    else compiled.(index) ()

type compiled_memory = {
  cm_name : string;
  cm_id : int;  (** slot of the temporary (registered output) *)
  cm_cells : int array;
  mutable cm_addr : int;
  mutable cm_op : int;
  mutable cm_snap : unit -> unit;
  mutable cm_update : unit -> unit;
}

let compile_memory ctx ~config ~stats (c_name : string) (m : Component.memory) =
  let id = component_id ctx c_name in
  let cells =
    match m.init with Some values -> Array.copy values | None -> Array.make m.cells 0
  in
  let addr = force (compile_expr ctx m.addr) in
  let op_c = compile_expr ctx m.op in
  let data = force (compile_expr ctx m.data) in
  let vals = ctx.vals and cycle = ctx.cycle in
  let ncells = Array.length cells in
  let io = config.Machine.io and trace = config.Machine.trace in
  let check_address a =
    if a < 0 || a >= ncells then
      Machine.address_out_of_range ~component:c_name ~cycle:!cycle ~address:a ~cells:ncells
  in
  let rec cm =
    {
      cm_name = c_name;
      cm_id = id;
      cm_cells = cells;
      cm_addr = 0;
      cm_op = 0;
      cm_snap = (fun () -> ());
      cm_update = (fun () -> ());
    }
  and do_read () =
    let a = cm.cm_addr in
    check_address a;
    vals.(id) <- cells.(a);
    Stats.count_op stats c_name Component.Op_read
  and do_write () =
    let a = cm.cm_addr in
    check_address a;
    let v = data () in
    vals.(id) <- v;
    cells.(a) <- v;
    Stats.count_op stats c_name Component.Op_write
  and do_input () =
    vals.(id) <- io.Io.input ~address:cm.cm_addr;
    Stats.count_op stats c_name Component.Op_input
  and do_output () =
    let v = data () in
    vals.(id) <- v;
    io.Io.output ~address:cm.cm_addr ~data:v;
    Stats.count_op stats c_name Component.Op_output
  in
  let action_of = function
    | Component.Op_read -> do_read
    | Component.Op_write -> do_write
    | Component.Op_input -> do_input
    | Component.Op_output -> do_output
  in
  let trace_write () =
    trace (Trace.write_line ~memory:c_name ~address:cm.cm_addr ~data:vals.(id))
  in
  let trace_read () =
    trace (Trace.read_line ~memory:c_name ~address:cm.cm_addr ~data:vals.(id))
  in
  let update =
    match (ctx.fold, value_of op_c) with
    | true, Some op ->
        (* §4.4: constant operation — no runtime case dispatch, and the
           trace decision is made now. *)
        let action = action_of (Component.memory_op_of_code op) in
        let steps =
          [ Some action;
            (if Component.traces_writes op then Some trace_write else None);
            (if Component.traces_reads op then Some trace_read else None) ]
          |> List.filter_map Fun.id
        in
        (match steps with
        | [ f ] -> f
        | fs -> fun () -> List.iter (fun f -> f ()) fs)
    | _ ->
        fun () ->
          let op = cm.cm_op in
          (action_of (Component.memory_op_of_code op)) ();
          if Component.traces_writes op then trace_write ();
          if Component.traces_reads op then trace_read ()
  in
  (* Address and operation are snapshotted before any memory latches
     (§4.3 step 3); only the data expression is evaluated live. *)
  let snap =
    match (ctx.fold, value_of op_c) with
    | true, Some _ -> fun () -> cm.cm_addr <- addr ()
    | _ ->
        let op_f = force op_c in
        fun () ->
          cm.cm_addr <- addr ();
          cm.cm_op <- op_f ()
  in
  cm.cm_snap <- snap;
  cm.cm_update <- update;
  cm

let create ?(config = Machine.default_config) ?(optimize = true) ?prof
    (analysis : Asim_analysis.Analysis.t) =
  let spec = analysis.Asim_analysis.Analysis.spec in
  let components = spec.Spec.components in
  let ids = Hashtbl.create 64 in
  List.iteri (fun i (c : Component.t) -> Hashtbl.replace ids c.name i) components;
  let vals = Array.make (List.length components) 0 in
  let cycle = ref 0 in
  let ctx = { ids; vals; cycle; fold = optimize } in
  (* Profiling is decided at compile time: instrumented closures are only
     built when a profile is attached, so the off path is the same closure
     graph as always. *)
  let config =
    match prof with
    | None -> config
    | Some p ->
        { config with Machine.io = Asim_prof.Prof.instrument_io p config.Machine.io }
  in
  let stats =
    Stats.create
      ~memories:
        (List.map
           (fun (c : Component.t) -> c.name)
           analysis.Asim_analysis.Analysis.memories)
  in
  (match prof with
  | None -> ()
  | Some p ->
      Asim_prof.Prof.attach_stats p stats;
      p.Asim_prof.Prof.engine <- "compiled");
  let count_fault =
    match prof with
    | None -> fun (_ : int) -> ()
    | Some p ->
        let pf = p.Asim_prof.Prof.faults in
        fun id -> pf.(id) <- pf.(id) + 1
  in
  let count_eval =
    match prof with
    | None -> fun _ f -> f
    | Some p ->
        let pe = p.Asim_prof.Prof.evals in
        fun id f () ->
          f ();
          pe.(id) <- pe.(id) + 1
  in
  let fault_targets = Fault.targets config.Machine.faults in
  let with_fault name f =
    if List.mem name fault_targets then (fun () ->
      f ();
      let id = component_id ctx name in
      let old = vals.(id) in
      let v =
        Fault.apply config.Machine.faults ~cycle:!cycle ~component:name old
      in
      if v <> old then count_fault id;
      vals.(id) <- v)
    else f
  in
  (* Combinational steps, in dependency order. *)
  let comb_steps =
    analysis.Asim_analysis.Analysis.order
    |> List.map (fun (c : Component.t) ->
           let id = component_id ctx c.name in
           let body =
             match c.kind with
             | Component.Alu alu -> compile_alu ctx c.name alu
             | Component.Selector sel -> compile_selector ctx c.name sel
             | Component.Memory _ -> assert false
           in
           with_fault c.name (count_eval id (fun () -> vals.(id) <- body ())))
    |> Array.of_list
  in
  let memories =
    List.map
      (fun (c : Component.t) ->
        match c.kind with
        | Component.Memory m ->
            let cm = compile_memory ctx ~config ~stats c.name m in
            { cm with cm_update = with_fault c.name cm.cm_update }
        | Component.Alu _ | Component.Selector _ -> assert false)
      analysis.Asim_analysis.Analysis.memories
    |> Array.of_list
  in
  (* Trace emitter for the per-cycle line. *)
  let trace = config.Machine.trace in
  let traced =
    Spec.traced_names spec
    |> List.map (fun name -> (name, component_id ctx name))
    |> Array.of_list
  in
  let emit_cycle_line =
    if trace == Trace.null_sink then fun () -> ()
    else fun () ->
      trace
        (Trace.cycle_line ~cycle:!cycle
           (Array.to_list (Array.map (fun (name, id) -> (name, vals.(id))) traced)))
  in
  let n_mem = Array.length memories in
  let bump_prof =
    match prof with
    | None -> fun () -> ()
    | Some p -> fun () -> p.Asim_prof.Prof.cycles <- p.Asim_prof.Prof.cycles + 1
  in
  let step () =
    Array.iter (fun f -> f ()) comb_steps;
    emit_cycle_line ();
    for i = 0 to n_mem - 1 do
      memories.(i).cm_snap ()
    done;
    for i = 0 to n_mem - 1 do
      memories.(i).cm_update ()
    done;
    bump_prof ();
    incr cycle;
    Stats.bump_cycle stats
  in
  let memory_by_name name =
    match Array.find_opt (fun cm -> String.equal cm.cm_name name) memories with
    | Some cm -> cm
    | None -> Error.failf Error.Runtime "Component <%s> is not a memory." name
  in
  let read_cell name index =
    let cm = memory_by_name name in
    if index < 0 || index >= Array.length cm.cm_cells then
      invalid_arg "Compile: cell index out of range"
    else cm.cm_cells.(index)
  in
  let write_cell name index value =
    let cm = memory_by_name name in
    if index < 0 || index >= Array.length cm.cm_cells then
      invalid_arg "Compile: cell index out of range"
    else cm.cm_cells.(index) <- value
  in
  {
    Machine.analysis;
    step;
    read = (fun name -> vals.(component_id ctx name));
    read_cell;
    write_cell;
    current_cycle = (fun () -> !cycle);
    stats;
  }

let of_spec ?config ?optimize spec =
  create ?config ?optimize (Asim_analysis.Analysis.analyze spec)
