(** The ASIM II engine: specification → compiled simulator.

    Where the paper emits Pascal and runs it through a Pascal compiler, this
    engine compiles the specification *in process* to OCaml closures: every
    component becomes a specialized thunk over flat integer arrays, with all
    names resolved to indices at compile time.  The paper's optimizations
    (§4.4) are applied:

    - an ALU whose function expression is constant is inlined as the concrete
      operation instead of dispatching through the generic [dologic];
    - a memory whose operation expression is constant loses its runtime
      [case] dispatch and performs just the one action;
    - constant expressions are folded to literals.

    [~optimize:false] disables all three (every ALU dispatches generically,
    every memory keeps its four-way case), which is the ablation measured by
    the benchmark harness.

    The source-to-source backends that mirror the paper's actual Pascal
    output live in [Asim_codegen]. *)

val create :
  ?config:Asim_sim.Machine.config ->
  ?optimize:bool ->
  ?prof:Asim_prof.Prof.t ->
  Asim_analysis.Analysis.t ->
  Asim_sim.Machine.t
(** Compile to a runnable machine.  [optimize] defaults to [true].
    [prof] attaches an {!Asim_prof.Prof} profile: each combinational thunk
    is wrapped with an evaluation counter and the I/O handler with a wait
    timer; without it the closure graph is built uninstrumented. *)

val of_spec :
  ?config:Asim_sim.Machine.config ->
  ?optimize:bool ->
  Asim_core.Spec.t ->
  Asim_sim.Machine.t
