(** The shard router: a pure, deterministic map from spec digests to worker
    shards.

    Every job carrying the same digest lands on the same shard for the
    lifetime of the server, so each shard's compiled-spec cache (and the
    native engine's JIT-artifact cache behind it) stays hot for the specs
    it owns — the CVC/GSIM "keep compiled artifacts warm" play, applied to
    shard placement. *)

val shard_of_digest : shards:int -> string -> int
(** [shard_of_digest ~shards digest] is in [0, max 1 shards).  The digest's
    leading hex digits are read as an integer and reduced mod [shards];
    non-hex strings fall back to a structural hash.  Pure: equal digests
    always answer the same shard. *)

val digest_of_source : Asim_batch.Proto.source -> string
(** The routing digest for a job: the spec hash itself for submit-by-hash
    jobs (so they provably colocate with their uploaded spec), and a cheap
    MD5 of the source identity (text, path or example name) otherwise. *)
