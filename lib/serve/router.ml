let shard_of_digest ~shards digest =
  let shards = max 1 shards in
  let n = min 15 (String.length digest) in
  let rec hex acc i =
    if i >= n then Some acc
    else
      match digest.[i] with
      | '0' .. '9' as c -> hex ((acc * 16) + (Char.code c - Char.code '0')) (i + 1)
      | 'a' .. 'f' as c -> hex ((acc * 16) + (Char.code c - Char.code 'a' + 10)) (i + 1)
      | 'A' .. 'F' as c -> hex ((acc * 16) + (Char.code c - Char.code 'A' + 10)) (i + 1)
      | _ -> None
  in
  let h = match if n = 0 then None else hex 0 0 with
    | Some v -> v
    | None -> Hashtbl.hash digest
  in
  h mod shards

let digest_of_source = function
  | Asim_batch.Proto.Hash h -> String.lowercase_ascii h
  | Asim_batch.Proto.Inline s -> Digest.to_hex (Digest.string s)
  | Asim_batch.Proto.File p -> Digest.to_hex (Digest.string ("file:" ^ p))
  | Asim_batch.Proto.Example e -> Digest.to_hex (Digest.string ("example:" ^ e))
