(** The network simulation service: many concurrent JSONL clients, a
    content-addressed spec store, and hash-sharded worker domains.

    One [t] is one service instance.  Requests arrive as JSONL lines (the
    {!Asim_batch.Proto} schema plus the [upload] control request and
    [spec_hash] job source); each non-blank line is numbered per
    connection and its reply carries that number as ["index"].  Job
    replies stream back in {e completion} order — a fast job on one shard
    is never stuck behind a slow job on another — while control replies
    (upload, metrics, admission rejections) are immediate.

    {2 Admission control}

    A job passes three gates before it reaches a worker:
    - the per-client in-flight quota ([max_in_flight]) — exceeding it gets
      a ["rejected"] reply;
    - the routed shard's bounded queue ([queue_depth]) — a full queue gets
      an ["overload"] reply (explicit backpressure, never silent buffering);
    - a draining server answers ["overload"] with ["server draining"].
    Rejections are immediate, cost no worker time, and echo the job's
    ["id"].  Jobs that pass run under a cooperative deadline
    ({!Asim.Machine.run_bounded}) of [timeout_s], defaulted from
    [default_timeout_s].

    {2 Sharding}

    Spec digests are routed by {!Router.shard_of_digest} across [shards]
    worker domains, each owning a private compiled-spec cache
    ({!Asim_batch.Cache}) — so repeat work on one spec always lands where
    its artifacts are already warm.  Job metrics accumulate in one shared
    {!Asim_batch.Metrics} across shards.

    {2 Shutdown}

    {!shutdown} is signal-handler-safe: it sets a flag and pokes a
    self-pipe; a watcher thread then stops the listener and unblocks
    readers.  {!drain} (called by {!serve} on exit, idempotent) runs every
    admitted job dry, joins the shard domains and reader threads, and
    flushes a final metrics-file snapshot. *)

type config = {
  shards : int;  (** worker domains, one compiled-spec cache each *)
  queue_depth : int;  (** bounded per-shard job queue *)
  max_in_flight : int;  (** per-client admitted-but-unanswered job quota *)
  max_line_bytes : int;  (** longer request lines get a structured error *)
  cache_capacity : int;  (** compiled-spec cache entries per shard *)
  store_capacity : int;  (** content-addressed spec store entries *)
  default_timeout_s : float option;  (** deadline for jobs that name none *)
  opt : Asim.Opt.level;  (** middle-end level for jobs that name none *)
  tracer : Asim_obs.Tracer.t;
}

val default_config : config
(** 1 shard, queue 256, quota 64, 1 MiB lines, cache 64, store 1024, no
    default timeout, middle-end at [O2], null tracer. *)

type t

val create : ?config:config -> unit -> t
val config : t -> config
val store : t -> Store.t

(** {2 Listening} *)

val listen : t -> Unix.sockaddr -> int
(** Bind and listen.  Returns the bound TCP port (handy with port 0), or 0
    for Unix-domain sockets.  Call once, before {!serve}. *)

val serve : t -> unit
(** Accept connections and spawn a reader thread per client; returns after
    {!shutdown} (having called {!drain}). *)

val attach : t -> Unix.file_descr -> Unix.file_descr -> unit
(** Run one client session over an (input, output) descriptor pair in the
    calling thread — the stdio mode of [asim serve] is exactly this over
    (stdin, stdout).  Returns once the input hits EOF {e and} every job
    this client admitted has been answered; the descriptors are not
    closed.  The caller should then {!drain}. *)

val shutdown : t -> unit
(** Request shutdown: stop accepting, unblock readers, start draining.
    Safe to call from a signal handler and more than once. *)

val drain : t -> unit
(** Finish all admitted jobs, join workers and readers, flush the final
    metrics snapshot.  Idempotent; {!serve} calls it on the way out. *)

val on_drain : t -> (unit -> unit) -> unit
(** Register a hook to run exactly once when {!drain} completes — after
    every admitted job has been answered and every worker joined, before
    control returns.  This is how [asim serve --trace-out] flushes its
    Chrome-trace buffer on a SIGTERM/SIGINT drain: at hook time the span
    buffer is complete.  Hooks run in registration order; exceptions are
    swallowed.  A hook registered after the drain already completed never
    runs. *)

val log_json : t -> out_channel -> unit
(** Switch on structured logging: one JSON object per line on [oc] for
    every lifecycle event — [accept] (client id, transport), [reject]
    (admission refusals with reason and status), [disconnect], [drain] /
    [drained].  Each line carries a ["ts"] from {!Asim_obs.Clock.now}, so
    logs are deterministic under a mock clock.  Lines are serialized
    under a mutex; write failures are ignored (logging must never take
    the service down). *)

(** {2 Observability} *)

val prometheus : t -> string
(** The full scrape: serve-layer families ([asim_serve_*], with per-shard
    labels) followed by the shared job/cache families ([asim_jobs_total],
    [asim_job_duration_seconds], [asim_cache_*] aggregated over shards). *)

val metrics_file : t -> path:string -> interval:float -> unit
(** Spawn a writer thread that atomically (write + rename) refreshes
    [path] with {!prometheus} every [interval] seconds until drained;
    {!drain} writes one final snapshot. *)

val summary : t -> Asim_batch.Metrics.summary
(** Shared job metrics plus shard-aggregated cache counters, with wall
    time measured from {!create}. *)
