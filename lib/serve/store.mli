(** The content-addressed spec store: upload a specification once, submit
    jobs by hash forever after.

    The key is the MD5 of the spec's canonical pretty-printed form — the
    same digest {!Asim_batch.Runner.cache_key} builds its compiled-spec
    cache key from — so any source text that parses to the same spec lands
    on the same entry, and a submit-by-hash job is guaranteed to hit the
    warm compiled-spec cache of whichever shard its digest routes to.

    Uploads are parsed eagerly: a spec that does not parse is rejected at
    upload time with the parser's error, never at job time.  The store is
    thread-safe and bounded; at capacity, fresh uploads are refused (an
    explicit, client-visible limit rather than silent unbounded growth). *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 1024 specs) is clamped to at least 1. *)

type uploaded = {
  digest : string;  (** lowercase MD5 hex of the canonical form *)
  components : int;  (** component count of the parsed spec *)
  fresh : bool;  (** false when the digest was already stored *)
}

val upload : t -> string -> (uploaded, string) result
(** Parse, canonicalize, digest and remember a spec source.  [Error] for
    specs that fail to parse and for a full store. *)

val find : t -> string -> string option
(** The canonical source stored under a digest. *)

val count : t -> int
val capacity : t -> int
val uploads : t -> int
(** Total accepted upload requests, fresh or duplicate. *)
