(** The load generator behind [asim loadgen]: open many concurrent TCP
    connections, upload one spec per connection (exercising the
    content-addressed store's dedup), pipeline submit-by-hash jobs, and
    measure end-to-end latency from submission to reply.

    Every reply is matched back to its request by index, so dropped and
    duplicated results are counted exactly — the bench's "zero
    dropped/duplicated" claim is measured, not assumed. *)

type config = {
  host : string;
  port : int;
  connections : int;
  jobs_per_connection : int;
  spec : string;  (** spec source text, uploaded once per connection *)
  cycles : int option;  (** per-job cycle count; [None] uses the spec's *)
  engine : Asim.engine;
  scrape : bool;  (** fetch a final metrics scrape on one extra connection *)
}

val default_config : config
(** 127.0.0.1, port 0 (caller must set), 256 connections x 4 jobs of the
    bundled counter example, compiled engine, scrape on. *)

type report = {
  connections : int;
  jobs_sent : int;
  ok : int;
  errors : int;
  timeouts : int;
  rejected : int;  (** quota refusals *)
  overloaded : int;  (** queue-full / draining refusals *)
  dropped : int;  (** requests that never got a reply *)
  duplicates : int;  (** indices answered more than once *)
  upload_failures : int;
  wall_s : float;
  jobs_per_sec : float;  (** completed (ok) jobs over wall time *)
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
  cache_hit_rate : float option;  (** scraped [asim_cache_hit_ratio] *)
}

val run : config -> report
(** Blocks until every connection has finished.  Raises [Unix.Unix_error]
    if the very first connection cannot be established. *)

val report_to_json : report -> Asim_batch.Json.t
val report_to_string : report -> string
