module Json = Asim_batch.Json

type config = {
  host : string;
  port : int;
  connections : int;
  jobs_per_connection : int;
  spec : string;
  cycles : int option;
  engine : Asim.engine;
  scrape : bool;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    connections = 256;
    jobs_per_connection = 4;
    spec =
      (match List.assoc_opt "counter" Asim.Specs.all with
      | Some s -> s
      | None -> "# counter\n= 8\ncount* inc .\nA inc 4 count 1\nM count 0 inc 1 1\n.\n");
    cycles = None;
    engine = Asim.Compiled;
    scrape = true;
  }

type report = {
  connections : int;
  jobs_sent : int;
  ok : int;
  errors : int;
  timeouts : int;
  rejected : int;
  overloaded : int;
  dropped : int;
  duplicates : int;
  upload_failures : int;
  wall_s : float;
  jobs_per_sec : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
  cache_hit_rate : float option;
}

(* one connection's tally, merged under the run mutex when it finishes *)
type tally = {
  mutable t_sent : int;
  mutable t_ok : int;
  mutable t_errors : int;
  mutable t_timeouts : int;
  mutable t_rejected : int;
  mutable t_overloaded : int;
  mutable t_dropped : int;
  mutable t_duplicates : int;
  mutable t_upload_failures : int;
  mutable t_latencies : float list;  (** seconds, submit -> reply *)
}

let fresh_tally () =
  {
    t_sent = 0;
    t_ok = 0;
    t_errors = 0;
    t_timeouts = 0;
    t_rejected = 0;
    t_overloaded = 0;
    t_dropped = 0;
    t_duplicates = 0;
    t_upload_failures = 0;
    t_latencies = [];
  }

let connect ~host ~port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
      | { Unix.ai_addr = Unix.ADDR_INET (a, _); _ } :: _ -> a
      | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))
  in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (addr, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  fd

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* a minimal blocking line reader; loadgen connections are one thread each *)
let line_reader fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 8192 in
  let pending = ref [] in
  let rec next () =
    match !pending with
    | line :: rest ->
        pending := rest;
        Some line
    | [] -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> next ()
        | exception Unix.Unix_error (_, _, _) -> None
        | 0 ->
            if Buffer.length buf = 0 then None
            else begin
              let line = Buffer.contents buf in
              Buffer.clear buf;
              Some line
            end
        | n ->
            let pos = ref 0 in
            for i = 0 to n - 1 do
              if Bytes.get chunk i = '\n' then begin
                Buffer.add_subbytes buf chunk !pos (i - !pos);
                pending := Buffer.contents buf :: !pending;
                Buffer.clear buf;
                pos := i + 1
              end
            done;
            Buffer.add_subbytes buf chunk !pos (n - !pos);
            pending := List.rev !pending;
            next ())
  in
  next

let job_line ~cid ~j ~hash ~cycles ~engine =
  let fields =
    [
      ("spec_hash", Json.String hash);
      ("engine", Json.String (Asim.engine_to_string engine));
      ("id", Json.String (Printf.sprintf "c%d-%d" cid j));
      ("want", Json.List []);
    ]
    @ match cycles with Some n -> [ ("cycles", Json.Int n) ] | None -> []
  in
  Json.to_string (Json.Obj fields)

let drive (cfg : config) ~cid tally =
  match connect ~host:cfg.host ~port:cfg.port with
  | exception _ ->
      tally.t_upload_failures <- tally.t_upload_failures + 1;
      tally.t_dropped <- tally.t_dropped + cfg.jobs_per_connection
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let next = line_reader fd in
          (* index 0: upload the spec, learn its hash *)
          write_all fd
            (Json.to_string
               (Json.Obj
                  [
                    ("control", Json.String "upload");
                    ("spec", Json.String cfg.spec);
                  ])
            ^ "\n");
          let hash =
            match next () with
            | None -> None
            | Some line -> (
                match Json.parse line with
                | exception Json.Parse_error _ -> None
                | json -> (
                    match
                      (Json.member "status" json, Json.member "hash" json)
                    with
                    | Some (Json.String "ok"), Some (Json.String h) -> Some h
                    | _ -> None))
          in
          match hash with
          | None ->
              tally.t_upload_failures <- tally.t_upload_failures + 1;
              tally.t_dropped <- tally.t_dropped + cfg.jobs_per_connection
          | Some hash ->
              let jobs = cfg.jobs_per_connection in
              let sent_at = Array.make (jobs + 1) 0.0 in
              let answered = Array.make (jobs + 1) 0 in
              answered.(0) <- 1 (* the upload reply *);
              for j = 1 to jobs do
                sent_at.(j) <- Unix.gettimeofday ();
                write_all fd
                  (job_line ~cid ~j ~hash ~cycles:cfg.cycles ~engine:cfg.engine
                  ^ "\n");
                tally.t_sent <- tally.t_sent + 1
              done;
              let remaining = ref jobs in
              let rec collect () =
                if !remaining > 0 then
                  match next () with
                  | None -> ()
                  | Some line ->
                      (match Json.parse line with
                      | exception Json.Parse_error _ -> ()
                      | json -> (
                          match Json.member "index" json with
                          | Some (Json.Int i) when i >= 1 && i <= jobs ->
                              answered.(i) <- answered.(i) + 1;
                              if answered.(i) > 1 then
                                tally.t_duplicates <- tally.t_duplicates + 1
                              else begin
                                decr remaining;
                                tally.t_latencies <-
                                  (Unix.gettimeofday () -. sent_at.(i))
                                  :: tally.t_latencies;
                                match Json.member "status" json with
                                | Some (Json.String "ok") ->
                                    tally.t_ok <- tally.t_ok + 1
                                | Some (Json.String "timeout") ->
                                    tally.t_timeouts <- tally.t_timeouts + 1
                                | Some (Json.String "rejected") ->
                                    tally.t_rejected <- tally.t_rejected + 1
                                | Some (Json.String "overload") ->
                                    tally.t_overloaded <- tally.t_overloaded + 1
                                | _ -> tally.t_errors <- tally.t_errors + 1
                              end
                          | _ -> ()));
                      collect ()
              in
              collect ();
              for j = 1 to jobs do
                if answered.(j) = 0 then tally.t_dropped <- tally.t_dropped + 1
              done)

let scrape_hit_rate (cfg : config) =
  match connect ~host:cfg.host ~port:cfg.port with
  | exception _ -> None
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          write_all fd "{\"control\":\"metrics\"}\n";
          let next = line_reader fd in
          match next () with
          | None -> None
          | Some line -> (
              match Json.parse line with
              | exception Json.Parse_error _ -> None
              | json -> (
                  match Json.member "metrics" json with
                  | Some (Json.String text) ->
                      String.split_on_char '\n' text
                      |> List.find_map (fun l ->
                             match String.split_on_char ' ' l with
                             | [ "asim_cache_hit_ratio"; v ] ->
                                 float_of_string_opt v
                             | _ -> None)
                  | _ -> None)))

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let run (cfg : config) =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let connections = max 1 cfg.connections in
  let t0 = Unix.gettimeofday () in
  let tallies = Array.init connections (fun _ -> fresh_tally ()) in
  let threads =
    Array.mapi
      (fun cid tally -> Thread.create (fun () -> drive cfg ~cid tally) ())
      tallies
  in
  Array.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let cache_hit_rate = if cfg.scrape then scrape_hit_rate cfg else None in
  let sum f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
  let latencies =
    Array.fold_left (fun acc t -> List.rev_append t.t_latencies acc) [] tallies
    |> Array.of_list
  in
  Array.sort compare latencies;
  let ms p = percentile latencies p *. 1000.0 in
  let ok = sum (fun t -> t.t_ok) in
  {
    connections;
    jobs_sent = sum (fun t -> t.t_sent);
    ok;
    errors = sum (fun t -> t.t_errors);
    timeouts = sum (fun t -> t.t_timeouts);
    rejected = sum (fun t -> t.t_rejected);
    overloaded = sum (fun t -> t.t_overloaded);
    dropped = sum (fun t -> t.t_dropped);
    duplicates = sum (fun t -> t.t_duplicates);
    upload_failures = sum (fun t -> t.t_upload_failures);
    wall_s;
    jobs_per_sec = (if wall_s > 0.0 then float_of_int ok /. wall_s else 0.0);
    p50_ms = ms 50.0;
    p90_ms = ms 90.0;
    p99_ms = ms 99.0;
    max_ms =
      (if Array.length latencies = 0 then 0.0
       else latencies.(Array.length latencies - 1) *. 1000.0);
    cache_hit_rate;
  }

let report_to_json r =
  Json.Obj
    ([
       ("connections", Json.Int r.connections);
       ("jobs_sent", Json.Int r.jobs_sent);
       ("ok", Json.Int r.ok);
       ("errors", Json.Int r.errors);
       ("timeouts", Json.Int r.timeouts);
       ("rejected", Json.Int r.rejected);
       ("overloaded", Json.Int r.overloaded);
       ("dropped", Json.Int r.dropped);
       ("duplicates", Json.Int r.duplicates);
       ("upload_failures", Json.Int r.upload_failures);
       ("wall_s", Json.Float r.wall_s);
       ("jobs_per_sec", Json.Float r.jobs_per_sec);
       ("p50_ms", Json.Float r.p50_ms);
       ("p90_ms", Json.Float r.p90_ms);
       ("p99_ms", Json.Float r.p99_ms);
       ("max_ms", Json.Float r.max_ms);
     ]
    @
    match r.cache_hit_rate with
    | Some v -> [ ("cache_hit_rate", Json.Float v) ]
    | None -> [])

let report_to_string r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "loadgen: %d connections, %d jobs (%d ok, %d errors, %d timeouts, %d \
        rejected, %d overload) in %.3fs — %.1f jobs/sec\n"
       r.connections r.jobs_sent r.ok r.errors r.timeouts r.rejected
       r.overloaded r.wall_s r.jobs_per_sec);
  Buffer.add_string buf
    (Printf.sprintf
       "integrity: %d dropped, %d duplicated, %d upload failures\n" r.dropped
       r.duplicates r.upload_failures);
  Buffer.add_string buf
    (Printf.sprintf "latency: p50 %.2f ms  p90 %.2f ms  p99 %.2f ms  max %.2f ms\n"
       r.p50_ms r.p90_ms r.p99_ms r.max_ms);
  (match r.cache_hit_rate with
  | Some v ->
      Buffer.add_string buf
        (Printf.sprintf "server cache hit rate: %.1f%%\n" (100.0 *. v))
  | None -> ());
  Buffer.contents buf
