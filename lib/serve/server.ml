module Json = Asim_batch.Json
module Proto = Asim_batch.Proto
module Runner = Asim_batch.Runner
module Cache = Asim_batch.Cache
module Metrics = Asim_batch.Metrics
module Registry = Asim_obs.Registry
module Clock = Asim_obs.Clock
module Tracer = Asim_obs.Tracer

type config = {
  shards : int;
  queue_depth : int;
  max_in_flight : int;
  max_line_bytes : int;
  cache_capacity : int;
  store_capacity : int;
  default_timeout_s : float option;
  opt : Asim.Opt.level;
  tracer : Tracer.t;
}

let default_config =
  {
    shards = 1;
    queue_depth = 256;
    max_in_flight = 64;
    max_line_bytes = 1 lsl 20;
    cache_capacity = 64;
    store_capacity = 1024;
    default_timeout_s = None;
    opt = Asim.Opt.O2;
    tracer = Tracer.null;
  }

type client = {
  cid : int;
  rfd : Unix.file_descr;
  wfd : Unix.file_descr;
  wmutex : Mutex.t;  (** guards [alive], all writes to [wfd], and the close *)
  mutable alive : bool;
  mutable in_flight : int;  (** admitted jobs not yet answered; under [t.mutex] *)
  tcp : bool;
  close_on_exit : bool;
}

type task = {
  t_client : client;
  t_index : int;
  t_job : Proto.job;
  t_admitted : float;
}

type shard = {
  sid : int;
  runner : Runner.t;
  smutex : Mutex.t;  (** guards [queue] and [stopping] — admission and exit
                         decide under the same lock, so no task is ever
                         enqueued after its worker has gone *)
  scond : Condition.t;
  queue : task Queue.t;
  mutable stopping : bool;
  mutable domain : unit Domain.t option;
}

type t = {
  cfg : config;
  registry : Registry.t;  (** serve-layer [asim_serve_*] families *)
  metrics : Metrics.t;  (** job metrics shared by every shard runner *)
  store : Store.t;
  shards : shard array;
  mutex : Mutex.t;  (** guards [clients], [readers], [draining], [drained]
                        and every [client.in_flight] *)
  cond : Condition.t;  (** broadcast whenever an in-flight count drops *)
  mutable clients : client list;
  mutable readers : Thread.t list;
  mutable listeners : Unix.file_descr list;
  mutable draining : bool;
  mutable drained : bool;
  stop : bool Atomic.t;
  wake_w : Unix.file_descr;  (** self-pipe: {!shutdown} writes, watcher reads *)
  wake_r : Unix.file_descr;
  mutable watcher : Thread.t option;
  mutable metrics_path : string option;
  mutable metrics_writer : Thread.t option;
  writer_stop : bool Atomic.t;
  mutable drain_hooks : (unit -> unit) list;  (** run once, when drain completes *)
  log_mutex : Mutex.t;  (** serializes structured log lines *)
  mutable log : (string -> (string * Json.t) list -> unit) option;
  started : float;
  next_cid : int Atomic.t;
  connections_c : Registry.counter;
  connected_g : Registry.gauge;
  dropped_c : Registry.counter;
}

let config t = t.cfg
let store t = t.store

let on_drain t hook =
  Mutex.lock t.mutex;
  t.drain_hooks <- hook :: t.drain_hooks;
  Mutex.unlock t.mutex

let log_event t event fields =
  match t.log with
  | None -> ()
  | Some emit -> emit event fields

let log_json t oc =
  t.log <-
    Some
      (fun event fields ->
        let line =
          Json.to_string
            (Json.Obj
               (("ts", Json.Float (Clock.now ()))
               :: ("event", Json.String event)
               :: fields))
        in
        Mutex.lock t.log_mutex;
        (try
           output_string oc line;
           output_char oc '\n';
           flush oc
         with Sys_error _ -> ());
        Mutex.unlock t.log_mutex)

let shard_label sid = [ ("shard", string_of_int sid) ]

let requests_c t kind =
  Registry.counter t.registry ~help:"Requests received, by kind"
    ~labels:[ ("kind", kind) ]
    "asim_serve_requests_total"

let rejected_c t reason =
  Registry.counter t.registry ~help:"Jobs refused at admission, by reason"
    ~labels:[ ("reason", reason) ]
    "asim_serve_rejected_total"

let shard_jobs_c t sid status =
  Registry.counter t.registry ~help:"Jobs finished per shard, by status"
    ~labels:(shard_label sid @ [ ("status", status) ])
    "asim_serve_jobs_total"

let shard_duration_h t sid =
  Registry.histogram t.registry ~help:"Job execution wall time per shard"
    ~labels:(shard_label sid) "asim_serve_job_duration_seconds"

let queue_wait_h t sid =
  Registry.histogram t.registry ~help:"Admission-to-pickup wait per shard"
    ~labels:(shard_label sid) "asim_serve_queue_wait_seconds"

let queue_depth_g t sid =
  Registry.gauge t.registry ~help:"Queued jobs per shard" ~labels:(shard_label sid)
    "asim_serve_queue_depth"

(* --- writing replies -------------------------------------------------------- *)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Send one reply line.  A client whose connection broke stays registered
   (its jobs still run and decrement in-flight) but is marked dead so no
   write ever touches a possibly-reused descriptor. *)
let send client line =
  Mutex.lock client.wmutex;
  let ok =
    client.alive
    &&
    match write_all client.wfd (line ^ "\n") with
    | () -> true
    | exception (Unix.Unix_error _ | Sys_error _) ->
        client.alive <- false;
        false
  in
  Mutex.unlock client.wmutex;
  ok

let send_result t client line =
  if not (send client line) then Registry.inc t.dropped_c

(* --- reply shapes ----------------------------------------------------------- *)

let obj_line fields = Json.to_string (Json.Obj fields)

let with_id id fields =
  match id with Some i -> ("id", Json.String i) :: fields | None -> fields

let malformed_line t ~index ~lineno msg =
  Metrics.record t.metrics ~engine:"manifest" ~status:`Error ~elapsed:0.0;
  obj_line
    [
      ("index", Json.Int index);
      ("line", Json.Int lineno);
      ("status", Json.String "error");
      ("error", Json.String (Printf.sprintf "line %d: %s" lineno msg));
    ]

let refusal_line ~index ~id ~status msg =
  obj_line
    (("index", Json.Int index)
    :: with_id id
         [ ("status", Json.String status); ("error", Json.String msg) ])

(* --- the shard workers ------------------------------------------------------ *)

let finish_job t client =
  Mutex.lock t.mutex;
  client.in_flight <- client.in_flight - 1;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let run_task t shard task =
  let tr = t.cfg.tracer in
  let attrs =
    ("shard", string_of_int shard.sid)
    :: ("index", string_of_int task.t_index)
    :: ((match task.t_job.Proto.id with Some id -> [ ("id", id) ] | None -> [])
       @
       match task.t_job.Proto.trace_id with
       | Some x -> [ ("trace_id", x) ]
       | None -> [])
  in
  let picked = Clock.now () in
  Registry.observe (queue_wait_h t shard.sid) (picked -. task.t_admitted);
  if Tracer.is_active tr then
    Tracer.span_at tr ~args:attrs "serve.queue_wait" ~ts:task.t_admitted
      ~dur:(picked -. task.t_admitted);
  let line, status =
    match
      Tracer.span tr ~args:attrs "serve.execute" (fun () ->
          Runner.run_job shard.runner task.t_job)
    with
    | outcome ->
        ( Json.to_string (Proto.result_to_json ~index:task.t_index outcome),
          (match outcome.Proto.status with
          | Proto.Ok_ -> "ok"
          | Proto.Error_ _ -> "error"
          | Proto.Timeout _ -> "timeout") )
    | exception exn ->
        (* crash isolation: a worker survives anything a job throws *)
        Metrics.record t.metrics ~engine:"internal" ~status:`Error ~elapsed:0.0;
        ( obj_line
            [
              ("index", Json.Int task.t_index);
              ("status", Json.String "error");
              ("error", Json.String ("internal: " ^ Printexc.to_string exn));
            ],
          "error" )
  in
  Registry.inc (shard_jobs_c t shard.sid status);
  Registry.observe (shard_duration_h t shard.sid) (Clock.now () -. picked);
  send_result t task.t_client line;
  finish_job t task.t_client

let worker t shard =
  let rec loop () =
    Mutex.lock shard.smutex;
    while Queue.is_empty shard.queue && not shard.stopping do
      Condition.wait shard.scond shard.smutex
    done;
    if Queue.is_empty shard.queue then Mutex.unlock shard.smutex
      (* stopping with a dry queue: every admitted job is answered *)
    else begin
      let task = Queue.pop shard.queue in
      Registry.set (queue_depth_g t shard.sid) (float_of_int (Queue.length shard.queue));
      Mutex.unlock shard.smutex;
      run_task t shard task;
      loop ()
    end
  in
  loop ()

(* --- admission -------------------------------------------------------------- *)

let admit t client ~index (job : Proto.job) =
  Registry.inc (requests_c t "job");
  let id = job.Proto.id in
  let refuse ~reason ~status msg =
    Registry.inc (rejected_c t reason);
    log_event t "reject"
      (("client", Json.Int client.cid)
      :: ("index", Json.Int index)
      :: ("reason", Json.String reason)
      :: ("status", Json.String status)
      :: (match id with Some i -> [ ("id", Json.String i) ] | None -> []));
    send client (refusal_line ~index ~id ~status msg) |> ignore
  in
  (* resolve the spec store up front: unknown hashes fail fast, and workers
     never need the store at all *)
  let job =
    match job.Proto.source with
    | Proto.Hash h -> (
        match Store.find t.store h with
        | Some canonical -> Ok { job with Proto.source = Proto.Inline canonical }
        | None -> Error h)
    | _ -> Ok job
  in
  match job with
  | Error h ->
      refuse ~reason:"unknown_hash" ~status:"error"
        (Printf.sprintf "unknown spec hash %s (upload it first)" h)
  | Ok job -> (
      let job =
        match job.Proto.timeout_s with
        | Some _ -> job
        | None -> { job with Proto.timeout_s = t.cfg.default_timeout_s }
      in
      let digest = Router.digest_of_source job.Proto.source in
      let shard = t.shards.(Router.shard_of_digest ~shards:t.cfg.shards digest) in
      Mutex.lock t.mutex;
      let verdict =
        if t.draining then `Draining
        else if client.in_flight >= t.cfg.max_in_flight then `Quota
        else begin
          client.in_flight <- client.in_flight + 1;
          `Admitted
        end
      in
      Mutex.unlock t.mutex;
      match verdict with
      | `Draining ->
          refuse ~reason:"draining" ~status:"overload" "server draining"
      | `Quota ->
          refuse ~reason:"quota" ~status:"rejected"
            (Printf.sprintf
               "in-flight quota exceeded (%d jobs); wait for results before \
                submitting more"
               t.cfg.max_in_flight)
      | `Admitted -> (
          let task =
            { t_client = client; t_index = index; t_job = job; t_admitted = Clock.now () }
          in
          Mutex.lock shard.smutex;
          let pushed =
            if shard.stopping then `Draining
            else if Queue.length shard.queue >= t.cfg.queue_depth then `Full
            else begin
              Queue.push task shard.queue;
              Registry.set (queue_depth_g t shard.sid)
                (float_of_int (Queue.length shard.queue));
              Condition.signal shard.scond;
              `Pushed
            end
          in
          Mutex.unlock shard.smutex;
          match pushed with
          | `Pushed -> ()
          | `Draining ->
              finish_job t client;
              refuse ~reason:"draining" ~status:"overload" "server draining"
          | `Full ->
              finish_job t client;
              refuse ~reason:"queue_full" ~status:"overload"
                (Printf.sprintf
                   "shard %d queue full (%d jobs queued); retry later" shard.sid
                   t.cfg.queue_depth)))

(* --- observability ---------------------------------------------------------- *)

let aggregate_cache_stats t =
  Array.fold_left
    (fun (acc : Cache.stats) s ->
      let st = Runner.cache_stats s.runner in
      {
        Cache.hits = acc.Cache.hits + st.Cache.hits;
        misses = acc.Cache.misses + st.Cache.misses;
        evictions = acc.Cache.evictions + st.Cache.evictions;
        entries = acc.Cache.entries + st.Cache.entries;
        capacity = acc.Cache.capacity + st.Cache.capacity;
      })
    { Cache.hits = 0; misses = 0; evictions = 0; entries = 0; capacity = 0 }
    t.shards

let refresh_gauges t =
  Array.iter
    (fun s ->
      let st = Runner.cache_stats s.runner in
      let g name help =
        Registry.gauge t.registry ~help ~labels:(shard_label s.sid) name
      in
      Registry.set
        (g "asim_serve_shard_cache_hits" "Compiled-spec cache hits per shard")
        (float_of_int st.Cache.hits);
      Registry.set
        (g "asim_serve_shard_cache_misses" "Compiled-spec cache misses per shard")
        (float_of_int st.Cache.misses);
      Registry.set
        (g "asim_serve_shard_cache_entries" "Compiled-spec cache entries per shard")
        (float_of_int st.Cache.entries))
    t.shards;
  let g name help = Registry.gauge t.registry ~help name in
  Registry.set
    (g "asim_serve_store_specs" "Specs held by the content-addressed store")
    (float_of_int (Store.count t.store));
  Registry.set
    (g "asim_serve_store_capacity" "Spec store capacity")
    (float_of_int (Store.capacity t.store));
  Registry.set
    (g "asim_serve_store_uploads" "Upload requests accepted, fresh or duplicate")
    (float_of_int (Store.uploads t.store));
  Metrics.set_cache t.metrics (aggregate_cache_stats t)

let prometheus t =
  refresh_gauges t;
  Registry.to_prometheus t.registry
  ^ Registry.to_prometheus (Metrics.registry t.metrics)

let summary t =
  Metrics.summarize t.metrics ~cache:(aggregate_cache_stats t)
    ~wall_s:(Clock.now () -. t.started)

let write_metrics_file t path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (prometheus t));
  Sys.rename tmp path

(* --- request handling ------------------------------------------------------- *)

(* The metrics barrier: a control request only answers once every job this
   client already admitted has been answered, so a pipelined
   job-then-metrics script observes its own jobs in the counters — the
   sequential semantics the stdio loop always had. *)
let metrics_reply t client ~index =
  Registry.inc (requests_c t "metrics");
  Mutex.lock t.mutex;
  while client.in_flight > 0 do
    Condition.wait t.cond t.mutex
  done;
  Mutex.unlock t.mutex;
  obj_line
    [
      ("index", Json.Int index);
      ("control", Json.String "metrics");
      ("status", Json.String "ok");
      ("metrics", Json.String (prometheus t));
    ]

let upload_reply t ~index (u : Proto.upload) =
  Registry.inc (requests_c t "upload");
  match Store.upload t.store u.Proto.source_text with
  | Ok { Store.digest; components; fresh } ->
      obj_line
        (("index", Json.Int index)
        :: with_id u.Proto.upload_id
             [
               ("control", Json.String "upload");
               ("status", Json.String "ok");
               ("hash", Json.String digest);
               ("components", Json.Int components);
               ("fresh", Json.Bool fresh);
             ])
  | Error msg ->
      obj_line
        (("index", Json.Int index)
        :: with_id u.Proto.upload_id
             [
               ("control", Json.String "upload");
               ("status", Json.String "error");
               ("error", Json.String msg);
             ])

let handle_line t client ~index ~lineno line =
  match Json.parse line with
  | exception Json.Parse_error msg ->
      Registry.inc (requests_c t "malformed");
      send client (malformed_line t ~index ~lineno msg) |> ignore
  | json -> (
      match Proto.request_of_json json with
      | Error msg ->
          Registry.inc (requests_c t "malformed");
          send client (malformed_line t ~index ~lineno msg) |> ignore
      | Ok Proto.Metrics -> send client (metrics_reply t client ~index) |> ignore
      | Ok (Proto.Upload u) -> send client (upload_reply t ~index u) |> ignore
      | Ok (Proto.Run job) -> admit t client ~index job)

(* --- the per-client reader -------------------------------------------------- *)

let is_blank line = String.trim line = ""

(* Bounded line reader over a raw descriptor.  A line past the limit is
   discarded byte-by-byte until its newline and answered with a structured
   error — the connection survives. *)
let read_loop t client =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 8192 in
  let oversized = ref false in
  let lineno = ref 0 in
  let index = ref 0 in
  let finish_line () =
    incr lineno;
    let line = Buffer.contents buf in
    Buffer.clear buf;
    if !oversized then begin
      oversized := false;
      Registry.inc (requests_c t "malformed");
      Registry.inc (rejected_c t "oversized");
      let reply =
        malformed_line t ~index:!index ~lineno:!lineno
          (Printf.sprintf "request line exceeds %d bytes" t.cfg.max_line_bytes)
      in
      send client reply |> ignore;
      incr index
    end
    else if not (is_blank line) then begin
      let line =
        let n = String.length line in
        if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
      in
      handle_line t client ~index:!index ~lineno:!lineno line;
      incr index
    end
  in
  let append s =
    if not !oversized then begin
      Buffer.add_string buf s;
      if Buffer.length buf > t.cfg.max_line_bytes then begin
        oversized := true;
        Buffer.clear buf
      end
    end
  in
  let rec loop () =
    match Unix.read client.rfd chunk 0 (Bytes.length chunk) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        (* a signal interrupted the read; the brief sleep is a safe point
           where the OCaml-level handler (which calls {!shutdown}) runs
           before we test the flag — without it a stdio reader could block
           again with the stop request still pending *)
        Thread.delay 0.001;
        if Atomic.get t.stop then () else loop ()
    | exception Unix.Unix_error (_, _, _) -> ()
    | 0 -> if Buffer.length buf > 0 || !oversized then finish_line ()
    | n ->
        let pos = ref 0 in
        for i = 0 to n - 1 do
          if Bytes.get chunk i = '\n' then begin
            append (Bytes.sub_string chunk !pos (i - !pos));
            finish_line ();
            pos := i + 1
          end
        done;
        append (Bytes.sub_string chunk !pos (n - !pos));
        loop ()
  in
  loop ()

let register_client t ~tcp ~close_on_exit rfd wfd =
  let client =
    {
      cid = Atomic.fetch_and_add t.next_cid 1;
      rfd;
      wfd;
      wmutex = Mutex.create ();
      alive = true;
      in_flight = 0;
      tcp;
      close_on_exit;
    }
  in
  Registry.inc t.connections_c;
  Registry.gauge_add t.connected_g 1.0;
  log_event t "accept"
    [
      ("client", Json.Int client.cid);
      ("transport", Json.String (if tcp then "tcp" else "pipe"));
    ];
  Mutex.lock t.mutex;
  t.clients <- client :: t.clients;
  let draining = t.draining in
  Mutex.unlock t.mutex;
  (* a client that slipped in while shutdown was unblocking readers would
     otherwise block drain forever *)
  if (draining || Atomic.get t.stop) && tcp then
    (try Unix.shutdown rfd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ());
  client

let session t client =
  read_loop t client;
  (* EOF (or shutdown): the request stream is over, but admitted jobs still
     owe replies — stream them out before hanging up *)
  Mutex.lock t.mutex;
  while client.in_flight > 0 do
    Condition.wait t.cond t.mutex
  done;
  Mutex.unlock t.mutex;
  Mutex.lock client.wmutex;
  client.alive <- false;
  if client.close_on_exit then begin
    (try Unix.close client.rfd with Unix.Unix_error _ -> ());
    if client.wfd <> client.rfd then
      try Unix.close client.wfd with Unix.Unix_error _ -> ()
  end;
  Mutex.unlock client.wmutex;
  Registry.gauge_add t.connected_g (-1.0);
  log_event t "disconnect" [ ("client", Json.Int client.cid) ];
  Mutex.lock t.mutex;
  t.clients <- List.filter (fun c -> c.cid <> client.cid) t.clients;
  Mutex.unlock t.mutex

(* --- lifecycle -------------------------------------------------------------- *)

let unblock t =
  Mutex.lock t.mutex;
  t.draining <- true;
  let listeners = t.listeners in
  t.listeners <- [];
  let clients = t.clients in
  Mutex.unlock t.mutex;
  List.iter
    (fun fd ->
      (* shutdown first: close alone does not wake a thread already blocked
         in accept, so a quiet server would never notice the stop request *)
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ())
    listeners;
  List.iter
    (fun c ->
      if c.tcp then
        try Unix.shutdown c.rfd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    clients

let watcher_loop t =
  let b = Bytes.create 1 in
  let rec wait () =
    match Unix.read t.wake_r b 0 1 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
    | exception Unix.Unix_error (_, _, _) -> ()
    | 0 -> ()
    | _ -> ()
  in
  wait ();
  if Atomic.get t.stop then unblock t

let shutdown t =
  Atomic.set t.stop true;
  (* a self-pipe poke is all a signal handler may safely do; the watcher
     thread does the mutex-taking work *)
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error _ -> ()

let create ?(config = default_config) () =
  let config =
    {
      config with
      shards = max 1 config.shards;
      queue_depth = max 1 config.queue_depth;
      max_in_flight = max 1 config.max_in_flight;
      max_line_bytes = max 64 config.max_line_bytes;
    }
  in
  (* broken pipes must surface as EPIPE on the write, not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let metrics = Metrics.create () in
  let registry = Registry.create () in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  let shards =
    Array.init config.shards (fun sid ->
        {
          sid;
          runner =
            Runner.create ~cache_capacity:config.cache_capacity ~metrics
              ~tracer:config.tracer ~opt:config.opt ();
          smutex = Mutex.create ();
          scond = Condition.create ();
          queue = Queue.create ();
          stopping = false;
          domain = None;
        })
  in
  let t =
    {
      cfg = config;
      registry;
      metrics;
      store = Store.create ~capacity:config.store_capacity ();
      shards;
      mutex = Mutex.create ();
      cond = Condition.create ();
      clients = [];
      readers = [];
      listeners = [];
      draining = false;
      drained = false;
      stop = Atomic.make false;
      wake_w;
      wake_r;
      watcher = None;
      metrics_path = None;
      metrics_writer = None;
      writer_stop = Atomic.make false;
      drain_hooks = [];
      log_mutex = Mutex.create ();
      log = None;
      started = Clock.now ();
      next_cid = Atomic.make 0;
      connections_c =
        Registry.counter registry ~help:"Client connections accepted"
          "asim_serve_connections_total";
      connected_g =
        Registry.gauge registry ~help:"Clients currently connected"
          "asim_serve_clients_connected";
      dropped_c =
        Registry.counter registry
          ~help:"Job results that could not be delivered (client gone)"
          "asim_serve_dropped_results_total";
    }
  in
  Array.iter (fun s -> s.domain <- Some (Domain.spawn (fun () -> worker t s))) shards;
  t.watcher <- Some (Thread.create watcher_loop t);
  t

let metrics_file t ~path ~interval =
  t.metrics_path <- Some path;
  let interval = Float.max 0.05 interval in
  let writer () =
    let rec loop () =
      if not (Atomic.get t.writer_stop) then begin
        (* sleep in short slices so drain never waits a full interval *)
        let rec nap left =
          if left > 0.0 && not (Atomic.get t.writer_stop) then begin
            Thread.delay (Float.min 0.1 left);
            nap (left -. 0.1)
          end
        in
        nap interval;
        if not (Atomic.get t.writer_stop) then begin
          (try write_metrics_file t path with Sys_error _ -> ());
          loop ()
        end
      end
    in
    loop ()
  in
  t.metrics_writer <- Some (Thread.create writer ())

(* Registered drain hooks run exactly once, after every job is answered and
   every worker joined — the point where a trace buffer is complete and safe
   to flush (the [--trace-out] file survives a SIGTERM drain this way). *)
let run_drain_hooks t =
  Mutex.lock t.mutex;
  let hooks = t.drain_hooks in
  t.drain_hooks <- [];
  Mutex.unlock t.mutex;
  List.iter (fun hook -> try hook () with _ -> ()) (List.rev hooks)

let drain t =
  Mutex.lock t.mutex;
  if t.drained then Mutex.unlock t.mutex
  else if t.draining && t.clients = [] && t.readers = [] && t.listeners = []
          && Array.for_all (fun s -> s.domain = None) t.shards
  then begin
    t.drained <- true;
    Mutex.unlock t.mutex;
    run_drain_hooks t
  end
  else begin
    Mutex.unlock t.mutex;
    log_event t "drain" [];
    unblock t;
    (* run every admitted job dry, then retire the workers *)
    Array.iter
      (fun s ->
        Mutex.lock s.smutex;
        s.stopping <- true;
        Condition.broadcast s.scond;
        Mutex.unlock s.smutex)
      t.shards;
    Array.iter
      (fun s ->
        match s.domain with
        | Some d ->
            Domain.join d;
            s.domain <- None
        | None -> ())
      t.shards;
    Mutex.lock t.mutex;
    let readers = t.readers in
    t.readers <- [];
    Mutex.unlock t.mutex;
    List.iter Thread.join readers;
    (* the watcher may still be parked on the pipe *)
    Atomic.set t.stop true;
    (try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
     with Unix.Unix_error _ -> ());
    (match t.watcher with
    | Some w ->
        Thread.join w;
        t.watcher <- None
    | None -> ());
    Atomic.set t.writer_stop true;
    (match t.metrics_writer with
    | Some w ->
        Thread.join w;
        t.metrics_writer <- None
    | None -> ());
    (match t.metrics_path with
    | Some path -> ( try write_metrics_file t path with Sys_error _ -> ())
    | None -> ());
    (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
    (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
    run_drain_hooks t;
    log_event t "drained" [];
    Mutex.lock t.mutex;
    t.drained <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex
  end

let listen t addr =
  let domain = Unix.domain_of_sockaddr addr in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try Unix.setsockopt fd Unix.SO_REUSEADDR true with Unix.Unix_error _ -> ());
  (match addr with
  | Unix.ADDR_UNIX path when Sys.file_exists path -> (
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | _ -> ());
  Unix.bind fd addr;
  Unix.listen fd 128;
  Mutex.lock t.mutex;
  t.listeners <- fd :: t.listeners;
  Mutex.unlock t.mutex;
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, port) -> port
  | Unix.ADDR_UNIX _ -> 0

let spawn_reader t client =
  let th = Thread.create (fun () -> session t client) () in
  Mutex.lock t.mutex;
  t.readers <- th :: t.readers;
  Mutex.unlock t.mutex

let accept_loop t fd =
  let rec loop () =
    match Unix.accept ~cloexec:true fd with
    | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
        if Atomic.get t.stop then () else loop ()
    | exception Unix.Unix_error (_, _, _) -> ()
    | cfd, _addr ->
        if Atomic.get t.stop then (
          try Unix.close cfd with Unix.Unix_error _ -> ())
        else begin
          (try Unix.setsockopt cfd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
          spawn_reader t (register_client t ~tcp:true ~close_on_exit:true cfd cfd);
          loop ()
        end
  in
  loop ()

let serve t =
  let listeners = Mutex.lock t.mutex; let l = t.listeners in Mutex.unlock t.mutex; l in
  (match listeners with
  | [] -> invalid_arg "Server.serve: no listener (call listen first)"
  | [ fd ] -> accept_loop t fd
  | fds ->
      let threads = List.map (fun fd -> Thread.create (accept_loop t) fd) fds in
      List.iter Thread.join threads);
  drain t

let attach t rfd wfd =
  let client = register_client t ~tcp:false ~close_on_exit:false rfd wfd in
  session t client
