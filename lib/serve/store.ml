type t = {
  mutex : Mutex.t;
  table : (string, string * int) Hashtbl.t;  (** digest -> canonical, components *)
  capacity : int;
  mutable uploads : int;
}

let create ?(capacity = 1024) () =
  { mutex = Mutex.create (); table = Hashtbl.create 64; capacity = max 1 capacity; uploads = 0 }

type uploaded = { digest : string; components : int; fresh : bool }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let upload t source =
  match Asim_syntax.Parser.parse_string source with
  | exception Asim_core.Error.Error e -> Error (Asim_core.Error.to_string e)
  | exception Failure msg -> Error msg
  | spec ->
      let canonical = Asim_core.Pretty.spec spec in
      let digest = Digest.to_hex (Digest.string canonical) in
      let components = List.length spec.Asim_core.Spec.components in
      locked t (fun () ->
          if Hashtbl.mem t.table digest then begin
            t.uploads <- t.uploads + 1;
            Ok { digest; components; fresh = false }
          end
          else if Hashtbl.length t.table >= t.capacity then
            Error
              (Printf.sprintf "spec store full (%d specs); refusing fresh upload"
                 t.capacity)
          else begin
            Hashtbl.replace t.table digest (canonical, components);
            t.uploads <- t.uploads + 1;
            Ok { digest; components; fresh = true }
          end)

let find t digest =
  locked t (fun () -> Option.map fst (Hashtbl.find_opt t.table digest))

let count t = locked t (fun () -> Hashtbl.length t.table)
let capacity t = t.capacity
let uploads t = locked t (fun () -> t.uploads)
