(** Simulation statistics (§1.4: "execution cycles required, memory accesses,
    and other related information"). *)

type memory_counters = {
  mutable reads : int;
  mutable writes : int;
  mutable inputs : int;
  mutable outputs : int;
}

type t

val create : memories:string list -> t

val cycles : t -> int

val bump_cycle : t -> unit

val memory : t -> string -> memory_counters
(** Counters for one memory.  Raises [Not_found] for unknown names. *)

val count_op : t -> string -> Asim_core.Component.memory_op -> unit
(** Record one memory operation of the given kind. *)

val per_memory : t -> (string * memory_counters) list
(** All memory counters in declaration order — the structured view behind
    {!to_string}, for exporters (JSON results, metrics) that need the raw
    numbers. *)

val total_accesses : t -> int
(** Sum of all memory reads/writes/inputs/outputs. *)

val to_string : t -> string
(** Multi-line human-readable report. *)

val pp : Format.formatter -> t -> unit
