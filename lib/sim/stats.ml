open Asim_core

type memory_counters = {
  mutable reads : int;
  mutable writes : int;
  mutable inputs : int;
  mutable outputs : int;
}

type t = { mutable cycle_count : int; memories : (string * memory_counters) list }

let create ~memories =
  {
    cycle_count = 0;
    memories =
      List.map (fun name -> (name, { reads = 0; writes = 0; inputs = 0; outputs = 0 })) memories;
  }

let cycles t = t.cycle_count

let bump_cycle t = t.cycle_count <- t.cycle_count + 1

let memory t name = List.assoc name t.memories

let count_op t name op =
  let c = memory t name in
  match op with
  | Component.Op_read -> c.reads <- c.reads + 1
  | Component.Op_write -> c.writes <- c.writes + 1
  | Component.Op_input -> c.inputs <- c.inputs + 1
  | Component.Op_output -> c.outputs <- c.outputs + 1

let per_memory t = t.memories

let total_accesses t =
  List.fold_left
    (fun acc (_, c) -> acc + c.reads + c.writes + c.inputs + c.outputs)
    0 t.memories

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "cycles executed: %d\n" t.cycle_count);
  List.iter
    (fun (name, c) ->
      Buffer.add_string buf
        (Printf.sprintf "memory %-12s reads %8d  writes %8d  inputs %6d  outputs %6d\n"
           name c.reads c.writes c.inputs c.outputs))
    t.memories;
  Buffer.add_string buf (Printf.sprintf "total memory accesses: %d" (total_accesses t));
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)
