(** The engine-agnostic face of a running simulation.

    Both the ASIM-style interpreter ([Asim_interp]) and the ASIM II-style
    compiler ([Asim_compile]) produce a value of this type; everything else
    (runner, CLI, VCD, examples, benches) works against it, so engines are
    interchangeable and directly comparable. *)

type config = {
  io : Io.handler;
  trace : Trace.sink;
  faults : Fault.plan;
}

val default_config : config
(** Console I/O, trace to stdout, no faults. *)

val quiet_config : config
(** Null I/O, no trace, no faults — for benchmarks. *)

type t = {
  analysis : Asim_analysis.Analysis.t;
  step : unit -> unit;  (** execute one full clock cycle *)
  read : string -> int;
      (** current output of a component: combinational value for ALUs and
          selectors, latched (temporary) value for memories *)
  read_cell : string -> int -> int;  (** memory cell content *)
  write_cell : string -> int -> int -> unit;
      (** poke a memory cell (testing / loading) *)
  current_cycle : unit -> int;  (** cycles completed so far *)
  stats : Stats.t;
}

val run : t -> cycles:int -> unit
(** [run m ~cycles] executes exactly [cycles] steps. *)

type bounded_outcome =
  | Completed  (** all requested cycles ran *)
  | Stopped of int  (** [should_stop] held after this many cycles *)

val run_bounded :
  t -> cycles:int -> ?check_every:int -> should_stop:(unit -> bool) -> unit -> bounded_outcome
(** Like {!run}, but polls [should_stop] every [check_every] cycles
    (default 1024) — the cooperative cancellation point that wall-clock
    timeouts (e.g. [Asim_batch]'s per-job deadlines) hang off.  The predicate
    is also consulted once before the first cycle, so an already-expired
    deadline runs nothing. *)

val run_until : t -> max_cycles:int -> stop:(t -> bool) -> int
(** Step until [stop] holds (checked after each step) or [max_cycles] steps
    have run; returns the number of steps executed. *)

val spec_cycles : t -> default:int -> int
(** The spec's [= N] cycle count, or [default]. *)

val selector_out_of_range : component:string -> cycle:int -> index:int -> cases:int -> 'a
(** Shared runtime error: selector index beyond the value list (the paper's
    documented runtime error). *)

val address_out_of_range : component:string -> cycle:int -> address:int -> cells:int -> 'a
(** Shared runtime error: memory address outside [0, cells). *)
