open Asim_core

type config = {
  io : Io.handler;
  trace : Trace.sink;
  faults : Fault.plan;
}

let default_config =
  { io = Io.console; trace = Trace.channel_sink stdout; faults = Fault.none }

let quiet_config = { io = Io.null; trace = Trace.null_sink; faults = Fault.none }

type t = {
  analysis : Asim_analysis.Analysis.t;
  step : unit -> unit;
  read : string -> int;
  read_cell : string -> int -> int;
  write_cell : string -> int -> int -> unit;
  current_cycle : unit -> int;
  stats : Stats.t;
}

let run t ~cycles =
  for _ = 1 to cycles do
    t.step ()
  done

type bounded_outcome =
  | Completed
  | Stopped of int

let run_bounded t ~cycles ?(check_every = 1024) ~should_stop () =
  let check_every = max 1 check_every in
  let rec go done_ =
    if done_ >= cycles then Completed
    else if should_stop () then Stopped done_
    else begin
      let chunk = min check_every (cycles - done_) in
      for _ = 1 to chunk do
        t.step ()
      done;
      go (done_ + chunk)
    end
  in
  go 0

let run_until t ~max_cycles ~stop =
  let rec go n =
    if n >= max_cycles then n
    else begin
      t.step ();
      let n = n + 1 in
      if stop t then n else go n
    end
  in
  go 0

let spec_cycles t ~default =
  match t.analysis.Asim_analysis.Analysis.spec.Spec.cycles with
  | Some n -> n
  | None -> default

let selector_out_of_range ~component ~cycle ~index ~cases =
  Error.failf ~component Error.Runtime
    "cycle %d: selector value %d exceeds the number of sources (%d)" cycle index cases

let address_out_of_range ~component ~cycle ~address ~cells =
  Error.failf ~component Error.Runtime
    "cycle %d: memory address %d outside declared range 0..%d" cycle address (cells - 1)
