module Oracle = Asim_fuzz.Oracle
module Json = Asim_batch.Json
module Tiered = Asim_tiered.Tiered

type engine_run = {
  engine : string;
  build_s : float;
  wall_s : float;
  ns_per_cycle : float;
  compiler : string option;
  domains : int option;
}

type profiling = {
  prof_cycles : int;
  off_ns_per_cycle : float;
  on_ns_per_cycle : float;
  overhead : float;
  off_zero_alloc : bool;
}

type workload = {
  name : string;
  cycles : int;
  components : int;
  flat_words : int;
  flat_words_raw : int;
  flat_skip_rate : float;
  agreement : string option;
  tiered_swap : string;
  engines : engine_run list;
  profiling : profiling;
}

type par_run = {
  pr_domains : int;
  pr_build_s : float;
  pr_wall_s : float;
  pr_ns_per_cycle : float;
  pr_ngroups : int;
  pr_cut : int;
  pr_speedup_vs_par1 : float;
  pr_scaling_valid : bool;
}

type par_scaling = {
  ps_workload : string;
  ps_components : int;
  ps_cycles : int;
  ps_cores_online : int;
  ps_compile_span_ms : float;
  ps_flat_wall_s : float;
  ps_par1_overhead_vs_flat : float;
  ps_lockstep : bool;
  ps_runs : par_run list;
}

type opt_step = {
  os_label : string;
  os_passes : string list;
  os_flat_words : int;
  os_delta_words : int;
      (* words saved vs the previous step; <= 0 allowed and reported *)
  os_flat_ns_per_cycle : float;
}

type opt_ablation = {
  oa_workload : string;
  oa_components : int;
  oa_cycles : int;
  oa_cores_online : int;
  oa_dead_components : int;
  oa_scheduled : bool;
  oa_steps : opt_step list;  (* first step is the -O0 baseline *)
  oa_flat_speedup_o2_vs_o0 : float;
  oa_native_o0_ns : float option;  (* None without a toolchain *)
  oa_native_o2_ns : float option;
  oa_native_speedup_o2_vs_o0 : float option;
  oa_lockstep : bool;  (* flat -O2 vs flat -O0 observables agree *)
}

type t = {
  cycles : int;
  reps : int;
  cores_online : int;
  workloads : workload list;
  par_scaling : par_scaling list;
  opt_ablation : opt_ablation list;
}

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* The engines the harness times.  [Unoptimized] is the closure engine's
   own ablation and already covered by bench/main.ml's §4.4 figure;
   [FlatFull] is the activity-scheduling ablation; [Native] joins only
   when an OCaml toolchain answers on PATH.  The tiered engine needs its
   own cache choreography and is benched separately (see [bench_tiered]
   below), not through this list. *)
let measured () =
  [
    Oracle.Interp;
    Oracle.Compiled;
    Oracle.Lowered;
    Oracle.Flat;
    Oracle.FlatFull;
    (* default domain count — ASIM_PAR_DOMAINS, else the core count; on a
       one-core box this row is the par@1 overhead ablation *)
    Oracle.Par;
  ]
  @ (if Oracle.available Oracle.Native then [ Oracle.Native ] else [])

let rec remove_tree path =
  match Sys.is_directory path with
  | true ->
      Array.iter
        (fun entry -> remove_tree (Filename.concat path entry))
        (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

(* The native engine benches against a fresh, empty artifact cache so its
   [build_s] is an honest cold compile+dynlink — the prep the paper's
   Figure 5.1 amortization argument is about — rather than a warm
   cache hit that would flatter [speedup_incl_prep]. *)
let with_temp_jit_cache f =
  let dir = Filename.temp_file "asim-bench-jit" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> remove_tree dir) (fun () -> f dir)

let build_machine ~config ~jit_cache_dir analysis = function
  | Oracle.Native -> Asim_jit.Jit.create ~config ~cache_dir:jit_cache_dir analysis
  | e -> Oracle.build e ~config analysis

let bench_engine ~reps ~cycles ~jit_cache_dir analysis engine =
  let config = Asim.Machine.quiet_config in
  let build () = build_machine ~config ~jit_cache_dir analysis engine in
  if engine = Oracle.Native then Asim_jit.Jit.clear_memory_cache ();
  let first, build_s = time build in
  (* Warm the code paths once, then take the best of [reps] fresh machines
     (state is cumulative, so each rep needs its own).  Rep rebuilds for
     the native engine hit the in-memory plugin cache, so only the first
     build above pays — and records — the compile. *)
  Asim.Machine.run first ~cycles:(min cycles 64);
  let wall = ref infinity in
  for _ = 1 to max 1 reps do
    let m = build () in
    let (), t = time (fun () -> Asim.Machine.run m ~cycles) in
    wall := Float.min !wall t
  done;
  {
    engine = Oracle.engine_to_string engine;
    build_s;
    wall_s = !wall;
    ns_per_cycle = !wall /. float_of_int (max 1 cycles) *. 1e9;
    compiler =
      (match engine with
      | Oracle.Native -> Asim_jit.Jit.toolchain_description ()
      | _ -> None);
    domains =
      (match engine with
      | Oracle.Par -> Some (Asim_par.Par.default_domains ())
      | _ -> None);
  }

(* The tiered row benches the engine exactly as a user hits it cold: empty
   artifact cache, empty in-process memo, default [Auto] policy.  Every rep
   re-colds both caches — a warm rep would measure the native engine with
   extra steps (that steady state gets its own ["tiered-warm"] row).  The
   claim this row exists to check is tiered ≈ max(flat, native) including
   prep: short runs must ride flat (the [Auto] deferral never spawns the
   compile), long runs must swap and converge on native.  Returns the final
   rep's swap state alongside the timing so the report can say which side
   of the threshold the budget landed on. *)
let bench_tiered ~reps ~cycles ~jit_cache_dir analysis =
  let config = Asim.Machine.quiet_config in
  let swap = ref Tiered.Pending in
  let bench rep =
    Asim_jit.Jit.clear_memory_cache ();
    let dir =
      Filename.concat jit_cache_dir (Printf.sprintf "tiered-cold-%d" rep)
    in
    remove_tree dir;
    (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let (m, status), build_s =
      time (fun () ->
          Tiered.create_status ~config ~cache_dir:dir ~swap_at:Tiered.Auto
            ~on_warning:(fun _ -> ())
            analysis)
    in
    let (), wall = time (fun () -> Asim.Machine.run m ~cycles) in
    swap := (status ()).Tiered.state;
    (build_s, wall)
  in
  ignore (bench 0);
  let build_s = ref infinity and wall = ref infinity in
  for rep = 1 to max 1 reps do
    let b, w = bench rep in
    build_s := Float.min !build_s b;
    wall := Float.min !wall w
  done;
  ( {
      engine = "tiered";
      build_s = !build_s;
      wall_s = !wall;
      ns_per_cycle = !wall /. float_of_int (max 1 cycles) *. 1e9;
      compiler = Asim_jit.Jit.toolchain_description ();
      domains = None;
    },
    Tiered.swap_state_to_string !swap )

(* The steady state the content-addressed artifact cache buys: the spec was
   compiled on an earlier run (here: by the native row, into the shared
   bench cache), so the tiered machine finds the plugin ready and swaps at
   cycle 0 — the whole run executes native.  [build_s] charges the
   artifact-hit dynlink and machine construction, not a compile. *)
let bench_tiered_warm ~reps ~cycles ~jit_cache_dir analysis =
  let config = Asim.Machine.quiet_config in
  let build () =
    Tiered.create ~config ~cache_dir:jit_cache_dir ~swap_at:Tiered.Auto
      ~on_warning:(fun _ -> ())
      analysis
  in
  Asim_jit.Jit.clear_memory_cache ();
  let first, build_s =
    time (fun () ->
        Asim_jit.Jit.prepare ~cache_dir:jit_cache_dir analysis;
        build ())
  in
  Asim.Machine.run first ~cycles:(min cycles 64);
  let wall = ref infinity in
  for _ = 1 to max 1 reps do
    let m = build () in
    let (), t = time (fun () -> Asim.Machine.run m ~cycles) in
    wall := Float.min !wall t
  done;
  {
    engine = "tiered-warm";
    build_s;
    wall_s = !wall;
    ns_per_cycle = !wall /. float_of_int (max 1 cycles) *. 1e9;
    compiler = Asim_jit.Jit.toolchain_description ();
    domains = None;
  }

(* Profiling overhead: the flat kernel with per-component counters on
   versus off.  The engine-comparison budget (5545 cycles by default, as
   low as 300 in CI) is too short for a stable percentage — a single
   timer quantum swamps it — so this row gets its own budget with a
   50k-cycle floor and the min of at least three repetitions a side.
   The off side also re-asserts the hot loop's zero-allocation property
   (the same bound test_flat enforces: a fixed allowance that must not
   scale with the cycle count), so the "profiling off costs nothing"
   claim ships next to the overhead number it justifies. *)
let bench_profiling ~reps ~cycles analysis =
  let config = Asim.Machine.quiet_config in
  let prof_cycles = max 50_000 cycles in
  let reps = max 5 reps in
  let one prof_on =
    let prof = if prof_on then Some (Asim.Prof.create analysis) else None in
    let m = Asim_flat.Flat.create ~config ?prof analysis in
    Asim.Machine.run m ~cycles:64;
    let (), t = time (fun () -> Asim.Machine.run m ~cycles:prof_cycles) in
    t /. float_of_int prof_cycles *. 1e9
  in
  (* Interleave the off/on reps: measuring all of one side first would
     let clock-frequency and cache drift masquerade as (even negative)
     overhead. *)
  ignore (one false);
  ignore (one true);
  let off = ref infinity and on = ref infinity in
  for _ = 1 to reps do
    off := Float.min !off (one false);
    on := Float.min !on (one true)
  done;
  let off = !off and on = !on in
  let off_zero_alloc =
    let m = Asim_flat.Flat.create ~config analysis in
    Asim.Machine.run m ~cycles:64;
    let before = Gc.minor_words () in
    for _ = 1 to 2000 do
      m.Asim.Machine.step ()
    done;
    Gc.minor_words () -. before <= 256.0
  in
  {
    prof_cycles;
    off_ns_per_cycle = off;
    on_ns_per_cycle = on;
    overhead = (if off > 0.0 then (on -. off) /. off else 0.0);
    off_zero_alloc;
  }

let run_workload ~reps ~cycles ~check_cycles ~jit_cache_dir ~name
    (spec : Asim.Spec.t) =
  let analysis = Asim.Analysis.analyze spec in
  (* Measured before the engine rows: the native and tiered benches spawn
     compiler processes and background domains whose tail can pollute a
     timing taken right after them. *)
  let profiling = bench_profiling ~reps ~cycles analysis in
  let base =
    List.map (bench_engine ~reps ~cycles ~jit_cache_dir analysis) (measured ())
  in
  let tiered, tiered_swap = bench_tiered ~reps ~cycles ~jit_cache_dir analysis in
  let warm =
    if Oracle.available Oracle.Native then
      [ bench_tiered_warm ~reps ~cycles ~jit_cache_dir analysis ]
    else []
  in
  let engines = base @ (tiered :: warm) in
  let flat_words = Asim_flat.Flat.program_size analysis in
  let flat_words_raw = Asim_flat.Flat.program_size ~peephole:false analysis in
  let flat_skip_rate =
    let m, counts =
      Asim_flat.Flat.create_debug ~config:Asim.Machine.quiet_config analysis
    in
    Asim.Machine.run m ~cycles;
    let per_component = counts () in
    let ncomb = List.length per_component in
    let total = List.fold_left (fun acc (_, n) -> acc + n) 0 per_component in
    if ncomb = 0 || cycles = 0 then 0.0
    else 1.0 -. (float_of_int total /. float_of_int (ncomb * cycles))
  in
  let agreement =
    Oracle.check ~cycles:check_cycles spec |> Option.map Oracle.divergence_to_string
  in
  {
    name;
    cycles;
    components = List.length spec.Asim.Spec.components;
    flat_words;
    flat_words_raw;
    flat_skip_rate;
    agreement;
    tiered_swap;
    engines;
    profiling;
  }

(* The partitioned engine's scaling figure: a generated 10k-component spec
   (far past the fixed workloads' ~40 components — the regime the BSP
   engine exists for), the flat kernel as the baseline, then par at 1, 2, 4
   and 8 domains.  The par@1 row is the overhead ablation: the same
   partition-major program through the engine's dispatch with no pool,
   barrier or mailbox — recorded even when it loses to flat.  Rows where
   the host has fewer cores than the row has domains are tagged
   [pr_scaling_valid = false]: timing domains the scheduler must
   time-slice says nothing about the algorithm, and the figure must not
   pretend otherwise.  A short lockstep check against flat rides along so
   the speedup curve always travels with a correctness witness. *)
let bench_par_scaling ~reps ~name (spec : Asim.Spec.t) =
  let cores_online = Domain.recommended_domain_count () in
  let cycles = Option.value spec.Asim.Spec.cycles ~default:200 in
  (* the compile span the observatory records for this spec — satellite
     evidence that building a 10k-component flat program is milliseconds *)
  let tracer = Asim_obs.Tracer.create () in
  let analysis = Asim.Analysis.analyze spec in
  ignore (Asim_flat.Flat.compile ~tracer analysis);
  let compile_span_ms =
    List.fold_left
      (fun acc (e : Asim_obs.Tracer.event) ->
        if e.name = "codegen.flat.compile" then acc +. (e.dur_us /. 1000.0)
        else acc)
      0.0
      (Asim_obs.Tracer.events tracer)
  in
  let config = Asim.Machine.quiet_config in
  let bench build =
    let first, build_s = time build in
    Asim.Machine.run first ~cycles:(min cycles 64);
    let wall = ref infinity in
    for _ = 1 to max 1 reps do
      let m = build () in
      let (), t = time (fun () -> Asim.Machine.run m ~cycles) in
      wall := Float.min !wall t
    done;
    (build_s, !wall)
  in
  let _, flat_wall = bench (fun () -> Asim_flat.Flat.create ~config analysis) in
  let runs =
    List.map
      (fun domains ->
        let plan = Asim_par.Par.plan ~domains analysis in
        let build_s, wall =
          bench (fun () -> Asim_par.Par.create ~config ~domains analysis)
        in
        {
          pr_domains = domains;
          pr_build_s = build_s;
          pr_wall_s = wall;
          pr_ns_per_cycle = wall /. float_of_int (max 1 cycles) *. 1e9;
          pr_ngroups = plan.Asim_par.Par.p_ngroups;
          pr_cut = plan.Asim_par.Par.p_cut;
          pr_speedup_vs_par1 = 0.0 (* filled below *);
          pr_scaling_valid = domains <= cores_online;
        })
      [ 1; 2; 4; 8 ]
  in
  let par1_wall =
    match runs with r :: _ -> r.pr_wall_s | [] -> infinity
  in
  let runs =
    List.map
      (fun r ->
        {
          r with
          pr_speedup_vs_par1 =
            (if r.pr_wall_s > 0.0 then par1_wall /. r.pr_wall_s else 0.0);
        })
      runs
  in
  let lockstep =
    let check = min cycles 50 in
    let mflat = Asim_flat.Flat.create ~config analysis in
    let mpar = Asim_par.Par.create ~config ~domains:4 analysis in
    let names =
      List.map (fun (c : Asim.Component.t) -> c.name) spec.Asim.Spec.components
    in
    (try
       for _ = 1 to check do
         mflat.Asim.Machine.step ();
         mpar.Asim.Machine.step ();
         List.iter
           (fun n ->
             if mflat.Asim.Machine.read n <> mpar.Asim.Machine.read n then
               raise Exit)
           names
       done;
       true
     with Exit -> false)
  in
  {
    ps_workload = name;
    ps_components = List.length spec.Asim.Spec.components;
    ps_cycles = cycles;
    ps_cores_online = cores_online;
    ps_compile_span_ms = compile_span_ms;
    ps_flat_wall_s = flat_wall;
    ps_par1_overhead_vs_flat =
      (if flat_wall > 0.0 then par1_wall /. flat_wall else 0.0);
    ps_lockstep = lockstep;
    ps_runs = runs;
  }

(* The middle-end ablation: each pass added cumulatively on top of the
   previous ones (the pipeline's own order), measured as flat program words
   and flat ns/cycle per step, plus the native engine at the -O0/-O2
   endpoints (each endpoint is a separate plugin compile — the optimizer
   changes the generated source).  Deltas are reported signed: a pass that
   buys nothing on a workload shows 0 (or a regression shows negative
   savings) instead of being dropped.  A short flat -O2 vs -O0 lockstep
   check over the live (non-DCE'd) components rides along as the
   correctness witness. *)
let cumulative_passes =
  List.rev
    (List.fold_left
       (fun acc p ->
         let prev = match acc with [] -> [] | ps :: _ -> ps in
         (prev @ [ p ]) :: acc)
       [] Asim.Opt.all_passes)

let bench_opt_ablation ~reps ~jit_cache_dir ~name (spec : Asim.Spec.t) =
  let cycles = Option.value spec.Asim.Spec.cycles ~default:200 in
  let config = Asim.Machine.quiet_config in
  let analysis = Asim.Analysis.analyze spec in
  let flat_ns analysis =
    let build () = Asim_flat.Flat.create ~config analysis in
    let first = build () in
    Asim.Machine.run first ~cycles:(min cycles 64);
    let wall = ref infinity in
    for _ = 1 to max 1 reps do
      let m = build () in
      let (), t = time (fun () -> Asim.Machine.run m ~cycles) in
      wall := Float.min !wall t
    done;
    !wall /. float_of_int (max 1 cycles) *. 1e9
  in
  let o0_words = Asim_flat.Flat.program_size analysis in
  let o0_ns = flat_ns analysis in
  let steps, _ =
    List.fold_left
      (fun (acc, prev_words) passes ->
        let r = Asim.Opt.run_result ~passes analysis in
        let words = Asim_flat.Flat.program_size r.Asim.Opt.analysis in
        let step =
          {
            os_label =
              "+"
              ^ Asim.Opt.pass_to_string (List.nth passes (List.length passes - 1));
            os_passes = List.map Asim.Opt.pass_to_string passes;
            os_flat_words = words;
            os_delta_words = prev_words - words;
            os_flat_ns_per_cycle = flat_ns r.Asim.Opt.analysis;
          }
        in
        (step :: acc, words))
      ( [
          {
            os_label = "O0";
            os_passes = [];
            os_flat_words = o0_words;
            os_delta_words = 0;
            os_flat_ns_per_cycle = o0_ns;
          };
        ],
        o0_words )
      cumulative_passes
  in
  let steps = List.rev steps in
  let full = Asim.Opt.run_result ~level:Asim.Opt.O2 analysis in
  let o2_ns =
    match List.rev steps with last :: _ -> last.os_flat_ns_per_cycle | [] -> o0_ns
  in
  let native_ns analysis =
    if not (Oracle.available Oracle.Native) then None
    else begin
      Asim_jit.Jit.clear_memory_cache ();
      let build () =
        Asim_jit.Jit.create ~config ~cache_dir:jit_cache_dir analysis
      in
      let first = build () in
      Asim.Machine.run first ~cycles:(min cycles 64);
      let wall = ref infinity in
      for _ = 1 to max 1 reps do
        let m = build () in
        let (), t = time (fun () -> Asim.Machine.run m ~cycles) in
        wall := Float.min !wall t
      done;
      Some (!wall /. float_of_int (max 1 cycles) *. 1e9)
    end
  in
  let native_o0 = native_ns analysis in
  let native_o2 = native_ns full.Asim.Opt.analysis in
  let lockstep =
    let masked = Hashtbl.create 16 in
    List.iter (fun n -> Hashtbl.replace masked n ()) full.Asim.Opt.dead;
    let check = min cycles 50 in
    let m0 = Asim_flat.Flat.create ~config analysis in
    let m2 = Asim_flat.Flat.create ~config full.Asim.Opt.analysis in
    let names =
      List.filter
        (fun n -> not (Hashtbl.mem masked n))
        (List.map (fun (c : Asim.Component.t) -> c.name) spec.Asim.Spec.components)
    in
    try
      for _ = 1 to check do
        m0.Asim.Machine.step ();
        m2.Asim.Machine.step ();
        List.iter
          (fun n ->
            if m0.Asim.Machine.read n <> m2.Asim.Machine.read n then raise Exit)
          names
      done;
      true
    with Exit -> false
  in
  {
    oa_workload = name;
    oa_components = List.length spec.Asim.Spec.components;
    oa_cycles = cycles;
    oa_cores_online = Domain.recommended_domain_count ();
    oa_dead_components = List.length full.Asim.Opt.dead;
    oa_scheduled = full.Asim.Opt.stats.Asim.Opt.scheduled;
    oa_steps = steps;
    oa_flat_speedup_o2_vs_o0 = (if o2_ns > 0.0 then o0_ns /. o2_ns else 0.0);
    oa_native_o0_ns = native_o0;
    oa_native_o2_ns = native_o2;
    oa_native_speedup_o2_vs_o0 =
      (match (native_o0, native_o2) with
      | Some a, Some b when b > 0.0 -> Some (a /. b)
      | _ -> None);
    oa_lockstep = lockstep;
  }

(* Both workloads park in halt spins, so any cycle budget is safe. *)
let sieve_spec () =
  Asim_stackm.Microcode.spec ~program:Asim_stackm.Demos.sieve_reassembled ()

let tinyc_spec () =
  Asim_tinyc.Machine.spec ~program:Asim_tinyc.Machine.demo_image ()

let run ?(cycles = Asim_stackm.Programs.sieve_cycles) ?(reps = 3)
    ?(check_cycles = 300) ?(par_cycles = 200) () =
  with_temp_jit_cache (fun jit_cache_dir ->
      {
        cycles;
        reps;
        cores_online = Domain.recommended_domain_count ();
        workloads =
          [
            run_workload ~reps ~cycles ~check_cycles ~jit_cache_dir
              ~name:"stackm-sieve" (sieve_spec ());
            run_workload ~reps ~cycles ~check_cycles ~jit_cache_dir
              ~name:"tinyc-demo" (tinyc_spec ());
          ];
        par_scaling =
          [
            (* 100 rows x (99 nodes + 1 register): inter-row traffic flows
               through registers, so a row-aligned partition has no
               cross-partition combinational edges — the engine's best case *)
            bench_par_scaling ~reps ~name:"genspec-mesh-10k"
              (Asim_fuzz.Gen.mesh ~cycles:par_cycles ~width:99 ~height:100
                 ~seed:1 ());
            (* 100 cores x 100 stages with combinational cross-core edges:
               partition boundaries cost sync groups, the engine's hard
               case *)
            bench_par_scaling ~reps ~name:"genspec-pipeline-10k"
              (Asim_fuzz.Gen.pipeline ~cycles:par_cycles ~cores:100 ~depth:99
                 ~seed:1 ());
          ];
        opt_ablation =
          [
            bench_opt_ablation ~reps ~jit_cache_dir ~name:"genspec-mesh-10k"
              (Asim_fuzz.Gen.mesh ~cycles:par_cycles ~width:99 ~height:100
                 ~seed:1 ());
            bench_opt_ablation ~reps ~jit_cache_dir
              ~name:"genspec-pipeline-10k"
              (Asim_fuzz.Gen.pipeline ~cycles:par_cycles ~cores:100 ~depth:99
                 ~seed:1 ());
          ];
      })

let engine_row w engine =
  List.find_opt (fun (e : engine_run) -> e.engine = engine) w.engines

let wall w engine = Option.map (fun e -> e.wall_s) (engine_row w engine)

let ratio w a b =
  match (wall w a, wall w b) with
  | Some x, Some y when y > 0.0 -> Some (x /. y)
  | _ -> None

(* Figure 5.1's second column: the speedup once the engine's preparation
   (machine construction — for the native engine, generating, compiling
   and dynlinking the plugin) is charged to the run.  The paper reports
   ~20x raw and ~2.5x including translate+compile for the 5545-cycle
   sieve; this is the same honesty applied to every engine here. *)
let incl_prep_ratio w engine =
  match (engine_row w "interp", engine_row w engine) with
  | Some i, Some e when e.build_s +. e.wall_s > 0.0 ->
      Some ((i.build_s +. i.wall_s) /. (e.build_s +. e.wall_s))
  | _ -> None

(* Cycles after which the engine's extra prep over the interpreter is paid
   back by its faster per-cycle rate; [Some 0.] when prep is no more
   expensive, [None] when the engine is not faster per cycle (the debt is
   never repaid). *)
let amortization_cycles w engine =
  match (engine_row w "interp", engine_row w engine) with
  | Some i, Some e when e.ns_per_cycle < i.ns_per_cycle ->
      let extra = e.build_s -. i.build_s in
      if extra <= 0.0 then Some 0.0
      else Some (extra /. ((i.ns_per_cycle -. e.ns_per_cycle) *. 1e-9))
  | _ -> None

(* Acceptance ratio for the tiered row: its prep-inclusive speedup against
   the better of flat and native — "tiered ≈ max(flat, native)" made a
   number.  The driver's floor is 0.95: below that the engine taxed the run
   it was supposed to protect (eager compile contention, swap overhead). *)
let tiered_vs_best w =
  match incl_prep_ratio w "tiered" with
  | None -> None
  | Some t ->
      let best =
        List.filter_map (incl_prep_ratio w) [ "flat"; "native" ]
        |> List.fold_left Float.max 0.0
      in
      if best > 0.0 then Some (t /. best) else None

let agree t =
  List.for_all (fun w -> w.agreement = None) t.workloads
  && List.for_all (fun p -> p.ps_lockstep) t.par_scaling
  && List.for_all (fun o -> o.oa_lockstep) t.opt_ablation

let opt_ratio_str w a b =
  match ratio w a b with Some r -> Printf.sprintf "%.2fx" r | None -> "-"

let table t =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun w ->
      pr "workload %s: %d cycles, %d components, flat program %d words (%d before peephole)\n"
        w.name w.cycles w.components w.flat_words w.flat_words_raw;
      pr "  %-10s %12s %12s %12s %10s %10s\n" "engine" "build (s)" "wall (s)"
        "ns/cycle" "vs interp" "incl prep";
      List.iter
        (fun e ->
          pr "  %-10s %12.6f %12.4f %12.0f %10s %10s\n" e.engine e.build_s
            e.wall_s e.ns_per_cycle
            (opt_ratio_str w "interp" e.engine)
            (match incl_prep_ratio w e.engine with
            | Some r -> Printf.sprintf "%.2fx" r
            | None -> "-"))
        w.engines;
      pr "  flat vs compiled: %s   activity ablation (full/activity): %s   skip rate: %.1f%%\n"
        (opt_ratio_str w "compiled" "flat")
        (opt_ratio_str w "flat-full" "flat")
        (100.0 *. w.flat_skip_rate);
      (match engine_row w "native" with
      | None ->
          pr "  native engine: unavailable (no OCaml toolchain on PATH), skipped\n"
      | Some e ->
          pr "  native%s: %s raw, %s incl prep%s\n"
            (match e.compiler with Some c -> " (" ^ c ^ ")" | None -> "")
            (opt_ratio_str w "interp" "native")
            (match incl_prep_ratio w "native" with
            | Some r -> Printf.sprintf "%.2fx" r
            | None -> "-")
            (match amortization_cycles w "native" with
            | Some n when n > 0.0 -> Printf.sprintf ", amortizes after ~%.0f cycles" n
            | Some _ -> ", prep already cheaper than interp's"
            | None -> ", never amortizes here"));
      (match engine_row w "tiered" with
      | None -> ()
      | Some _ ->
          pr "  tiered: swap=%s%s%s\n" w.tiered_swap
            (match tiered_vs_best w with
            | Some r ->
                Printf.sprintf ", incl prep vs best(flat, native): %.2fx (floor 0.95)"
                  r
            | None -> "")
            (match incl_prep_ratio w "tiered-warm" with
            | Some r -> Printf.sprintf "; warm artifact cache: %.2fx incl prep" r
            | None -> ""));
      pr
        "  profiling (flat, %d cycles): off %.0f ns/cycle, on %.0f ns/cycle, \
         overhead %.1f%%; zero-alloc with counters off: %s\n"
        w.profiling.prof_cycles w.profiling.off_ns_per_cycle
        w.profiling.on_ns_per_cycle
        (100.0 *. w.profiling.overhead)
        (if w.profiling.off_zero_alloc then "yes" else "NO");
      (match w.agreement with
      | None -> pr "  differential check: all engines agree\n"
      | Some d -> pr "  differential check FAILED: %s\n" d);
      pr "\n")
    t.workloads;
  List.iter
    (fun p ->
      pr
        "par scaling %s: %d components, %d cycles, %d core%s online, flat \
         compile %.1f ms\n"
        p.ps_workload p.ps_components p.ps_cycles p.ps_cores_online
        (if p.ps_cores_online = 1 then "" else "s")
        p.ps_compile_span_ms;
      pr "  %-10s %12s %12s %12s %10s %8s %8s\n" "engine" "wall (s)" "ns/cycle"
        "vs par@1" "scaling?" "groups" "cut";
      pr "  %-10s %12.4f %12.0f %12s %10s %8s %8s\n" "flat" p.ps_flat_wall_s
        (p.ps_flat_wall_s /. float_of_int (max 1 p.ps_cycles) *. 1e9)
        "-" "-" "-" "-";
      List.iter
        (fun r ->
          pr "  %-10s %12.4f %12.0f %11.2fx %10s %8d %8d\n"
            (Printf.sprintf "par@%d" r.pr_domains)
            r.pr_wall_s r.pr_ns_per_cycle r.pr_speedup_vs_par1
            (if r.pr_scaling_valid then "valid" else "INVALID")
            r.pr_ngroups r.pr_cut)
        p.ps_runs;
      pr "  par@1 overhead vs flat: %.2fx (recorded even when >1.0)\n"
        p.ps_par1_overhead_vs_flat;
      pr "  lockstep with flat (par@4, %d cycles): %s\n"
        (min p.ps_cycles 50)
        (if p.ps_lockstep then "yes" else "NO — DIVERGED");
      if p.ps_cores_online = 1 then
        pr
          "  note: one core online — every multi-domain row is time-sliced, \
           so the speedup column is tagged invalid rather than claimed\n";
      pr "\n")
    t.par_scaling;
  List.iter
    (fun o ->
      pr
        "opt ablation %s: %d components, %d cycles, %d core%s online, %d dead \
         component%s at O2, scheduler %s\n"
        o.oa_workload o.oa_components o.oa_cycles o.oa_cores_online
        (if o.oa_cores_online = 1 then "" else "s")
        o.oa_dead_components
        (if o.oa_dead_components = 1 then "" else "s")
        (if o.oa_scheduled then "ran" else "gated off");
      pr "  %-12s %12s %12s %14s\n" "step" "flat words" "words saved"
        "flat ns/cycle";
      List.iter
        (fun s ->
          pr "  %-12s %12d %12d %14.0f\n" s.os_label s.os_flat_words
            s.os_delta_words s.os_flat_ns_per_cycle)
        o.oa_steps;
      pr "  flat O2 vs O0: %.2fx\n" o.oa_flat_speedup_o2_vs_o0;
      (match (o.oa_native_o0_ns, o.oa_native_o2_ns) with
      | Some a, Some b ->
          pr "  native: O0 %.0f ns/cycle, O2 %.0f ns/cycle%s\n" a b
            (match o.oa_native_speedup_o2_vs_o0 with
            | Some r -> Printf.sprintf " (%.2fx)" r
            | None -> "")
      | _ -> pr "  native endpoints: unavailable (no OCaml toolchain), skipped\n");
      pr "  lockstep flat O2 vs O0 (%d cycles, live components): %s\n"
        (min o.oa_cycles 50)
        (if o.oa_lockstep then "yes" else "NO — DIVERGED");
      pr "\n")
    t.opt_ablation;
  (match List.find_opt (fun w -> w.name = "stackm-sieve") t.workloads with
  | Some w ->
      (match ratio w "interp" "compiled" with
      | Some r ->
          pr
            "paper Figure 5.1 context: interp vs compiled here %.1fx (paper: ~20.7x)\n"
            r
      | None -> ());
      (match (ratio w "interp" "native", incl_prep_ratio w "native") with
      | Some raw, Some prep ->
          pr
            "paper Figure 5.1, native: %.1fx raw, %.2fx incl compile+dynlink \
             (paper: ~20.7x raw, ~2.5x incl translate+compile)\n"
            raw prep
      | _ -> ())
  | None -> ());
  Buffer.contents buf

let engine_json w (e : engine_run) =
  Json.Obj
    [
      ("engine", Json.String e.engine);
      ("build_s", Json.Float e.build_s);
      ("wall_s", Json.Float e.wall_s);
      ("ns_per_cycle", Json.Float e.ns_per_cycle);
      ( "speedup_vs_interp",
        match ratio w "interp" e.engine with
        | Some r -> Json.Float r
        | None -> Json.Null );
      ( "speedup_incl_prep",
        match incl_prep_ratio w e.engine with
        | Some r -> Json.Float r
        | None -> Json.Null );
      ( "amortization_cycles",
        match amortization_cycles w e.engine with
        | Some n -> Json.Float n
        | None -> Json.Null );
      ( "compiler",
        match e.compiler with Some c -> Json.String c | None -> Json.Null );
      ( "domains",
        match e.domains with Some d -> Json.Int d | None -> Json.Null );
    ]

let workload_json w =
  let r name a b =
    (name, match ratio w a b with Some r -> Json.Float r | None -> Json.Null)
  in
  Json.Obj
    [
      ("workload", Json.String w.name);
      ("cycles", Json.Int w.cycles);
      ("components", Json.Int w.components);
      ("flat_program_words", Json.Int w.flat_words);
      ("flat_program_words_raw", Json.Int w.flat_words_raw);
      ("engines", Json.List (List.map (engine_json w) w.engines));
      r "interp_vs_compiled" "interp" "compiled";
      r "interp_vs_flat" "interp" "flat";
      r "flat_vs_compiled" "compiled" "flat";
      r "activity_ablation_speedup" "flat-full" "flat";
      ("tiered_swap", Json.String w.tiered_swap);
      ( "tiered_vs_best_incl_prep",
        match tiered_vs_best w with Some r -> Json.Float r | None -> Json.Null );
      ("flat_skip_rate", Json.Float w.flat_skip_rate);
      ("profiling_overhead", Json.Float w.profiling.overhead);
      ("prof_off_zero_alloc", Json.Bool w.profiling.off_zero_alloc);
      ( "profiling",
        Json.Obj
          [
            ("engine", Json.String "flat");
            ("cycles", Json.Int w.profiling.prof_cycles);
            ("off_ns_per_cycle", Json.Float w.profiling.off_ns_per_cycle);
            ("on_ns_per_cycle", Json.Float w.profiling.on_ns_per_cycle);
            ("overhead", Json.Float w.profiling.overhead);
            ("off_zero_alloc", Json.Bool w.profiling.off_zero_alloc);
          ] );
      ("agree", Json.Bool (w.agreement = None));
      ( "divergence",
        match w.agreement with Some d -> Json.String d | None -> Json.Null );
    ]

let par_run_json (r : par_run) =
  Json.Obj
    [
      ("domains", Json.Int r.pr_domains);
      ("build_s", Json.Float r.pr_build_s);
      ("wall_s", Json.Float r.pr_wall_s);
      ("ns_per_cycle", Json.Float r.pr_ns_per_cycle);
      ("sync_groups", Json.Int r.pr_ngroups);
      ("cut_edges", Json.Int r.pr_cut);
      ("speedup_vs_par1", Json.Float r.pr_speedup_vs_par1);
      ("scaling_valid", Json.Bool r.pr_scaling_valid);
    ]

let par_scaling_json (p : par_scaling) =
  Json.Obj
    [
      ("workload", Json.String p.ps_workload);
      ("engine", Json.String "par");
      ("components", Json.Int p.ps_components);
      ("cycles", Json.Int p.ps_cycles);
      ("cores_online", Json.Int p.ps_cores_online);
      ("flat_compile_span_ms", Json.Float p.ps_compile_span_ms);
      ("flat_wall_s", Json.Float p.ps_flat_wall_s);
      ("par1_overhead_vs_flat", Json.Float p.ps_par1_overhead_vs_flat);
      ("lockstep_with_flat", Json.Bool p.ps_lockstep);
      ("runs", Json.List (List.map par_run_json p.ps_runs));
    ]

let opt_step_json (s : opt_step) =
  Json.Obj
    [
      ("step", Json.String s.os_label);
      ("passes", Json.List (List.map (fun p -> Json.String p) s.os_passes));
      ("flat_program_words", Json.Int s.os_flat_words);
      (* signed: a pass that buys nothing (or loses) on this workload is
         reported, not dropped *)
      ("words_saved_vs_prev", Json.Int s.os_delta_words);
      ("flat_ns_per_cycle", Json.Float s.os_flat_ns_per_cycle);
    ]

let opt_ablation_json (o : opt_ablation) =
  Json.Obj
    [
      ("workload", Json.String o.oa_workload);
      ("components", Json.Int o.oa_components);
      ("cycles", Json.Int o.oa_cycles);
      ("cores_online", Json.Int o.oa_cores_online);
      ("dead_components", Json.Int o.oa_dead_components);
      ("scheduler_ran", Json.Bool o.oa_scheduled);
      ("steps", Json.List (List.map opt_step_json o.oa_steps));
      ("flat_speedup_o2_vs_o0", Json.Float o.oa_flat_speedup_o2_vs_o0);
      ( "native_o0_ns_per_cycle",
        match o.oa_native_o0_ns with Some v -> Json.Float v | None -> Json.Null );
      ( "native_o2_ns_per_cycle",
        match o.oa_native_o2_ns with Some v -> Json.Float v | None -> Json.Null );
      ( "native_speedup_o2_vs_o0",
        match o.oa_native_speedup_o2_vs_o0 with
        | Some v -> Json.Float v
        | None -> Json.Null );
      ("lockstep_with_o0", Json.Bool o.oa_lockstep);
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.String "asim-bench-engines/1");
      ("cycles", Json.Int t.cycles);
      ("reps", Json.Int t.reps);
      ("cores_online", Json.Int t.cores_online);
      ("workloads", Json.List (List.map workload_json t.workloads));
      ("par_scaling", Json.List (List.map par_scaling_json t.par_scaling));
      ("opt_ablation", Json.List (List.map opt_ablation_json t.opt_ablation));
      ( "paper",
        Json.Obj
          [
            ("figure", Json.String "5.1");
            ("interp_vs_compiled_paper", Json.Float (310.6 /. 15.0));
            ( "note",
              Json.String
                "Paper timings are VAX 11/780 seconds for the 5545-cycle \
                 sieve; compare ratios, not absolute times.  The flat \
                 kernel is the rung below the paper's compiled simulator: \
                 same semantics, no per-component closures, and \
                 activity-driven scheduling on top." );
          ] );
    ]

let write_json t ~path =
  let oc = open_out path in
  output_string oc (Json.to_string (to_json t));
  output_char oc '\n';
  close_out oc
