module Oracle = Asim_fuzz.Oracle
module Json = Asim_batch.Json

type engine_run = {
  engine : string;
  build_s : float;
  wall_s : float;
  ns_per_cycle : float;
}

type workload = {
  name : string;
  cycles : int;
  components : int;
  flat_words : int;
  flat_skip_rate : float;
  agreement : string option;
  engines : engine_run list;
}

type t = { cycles : int; reps : int; workloads : workload list }

let time f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* The five engines the harness times.  [Unoptimized] is the closure
   engine's own ablation and already covered by bench/main.ml's §4.4
   figure; [FlatFull] is the activity-scheduling ablation this harness is
   about. *)
let measured =
  [ Oracle.Interp; Oracle.Compiled; Oracle.Lowered; Oracle.Flat; Oracle.FlatFull ]

let bench_engine ~reps ~cycles analysis engine =
  let config = Asim.Machine.quiet_config in
  let build () = Oracle.build engine ~config analysis in
  let first, build_s = time build in
  (* Warm the code paths once, then take the best of [reps] fresh machines
     (state is cumulative, so each rep needs its own). *)
  Asim.Machine.run first ~cycles:(min cycles 64);
  let wall = ref infinity in
  for _ = 1 to max 1 reps do
    let m = build () in
    let (), t = time (fun () -> Asim.Machine.run m ~cycles) in
    wall := Float.min !wall t
  done;
  {
    engine = Oracle.engine_to_string engine;
    build_s;
    wall_s = !wall;
    ns_per_cycle = !wall /. float_of_int (max 1 cycles) *. 1e9;
  }

let run_workload ~reps ~cycles ~check_cycles ~name (spec : Asim.Spec.t) =
  let analysis = Asim.Analysis.analyze spec in
  let engines = List.map (bench_engine ~reps ~cycles analysis) measured in
  let flat_words = Asim_flat.Flat.program_size analysis in
  let flat_skip_rate =
    let m, counts =
      Asim_flat.Flat.create_debug ~config:Asim.Machine.quiet_config analysis
    in
    Asim.Machine.run m ~cycles;
    let per_component = counts () in
    let ncomb = List.length per_component in
    let total = List.fold_left (fun acc (_, n) -> acc + n) 0 per_component in
    if ncomb = 0 || cycles = 0 then 0.0
    else 1.0 -. (float_of_int total /. float_of_int (ncomb * cycles))
  in
  let agreement =
    Oracle.check ~cycles:check_cycles spec |> Option.map Oracle.divergence_to_string
  in
  {
    name;
    cycles;
    components = List.length spec.Asim.Spec.components;
    flat_words;
    flat_skip_rate;
    agreement;
    engines;
  }

(* Both workloads park in halt spins, so any cycle budget is safe. *)
let sieve_spec () =
  Asim_stackm.Microcode.spec ~program:Asim_stackm.Demos.sieve_reassembled ()

let tinyc_spec () =
  Asim_tinyc.Machine.spec ~program:Asim_tinyc.Machine.demo_image ()

let run ?(cycles = Asim_stackm.Programs.sieve_cycles) ?(reps = 3)
    ?(check_cycles = 300) () =
  {
    cycles;
    reps;
    workloads =
      [
        run_workload ~reps ~cycles ~check_cycles ~name:"stackm-sieve" (sieve_spec ());
        run_workload ~reps ~cycles ~check_cycles ~name:"tinyc-demo" (tinyc_spec ());
      ];
  }

let wall w engine =
  List.find_opt (fun (e : engine_run) -> e.engine = engine) w.engines
  |> Option.map (fun e -> e.wall_s)

let ratio w a b =
  match (wall w a, wall w b) with
  | Some x, Some y when y > 0.0 -> Some (x /. y)
  | _ -> None

let agree t = List.for_all (fun w -> w.agreement = None) t.workloads

let opt_ratio_str w a b =
  match ratio w a b with Some r -> Printf.sprintf "%.2fx" r | None -> "-"

let table t =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun w ->
      pr "workload %s: %d cycles, %d components, flat program %d words\n" w.name
        w.cycles w.components w.flat_words;
      pr "  %-10s %12s %12s %12s %10s\n" "engine" "build (s)" "wall (s)"
        "ns/cycle" "vs interp";
      List.iter
        (fun e ->
          pr "  %-10s %12.6f %12.4f %12.0f %10s\n" e.engine e.build_s e.wall_s
            e.ns_per_cycle
            (opt_ratio_str w "interp" e.engine))
        w.engines;
      pr "  flat vs compiled: %s   activity ablation (full/activity): %s   skip rate: %.1f%%\n"
        (opt_ratio_str w "compiled" "flat")
        (opt_ratio_str w "flat-full" "flat")
        (100.0 *. w.flat_skip_rate);
      (match w.agreement with
      | None -> pr "  differential check: all engines agree\n"
      | Some d -> pr "  differential check FAILED: %s\n" d);
      pr "\n")
    t.workloads;
  (match
     List.find_opt (fun w -> w.name = "stackm-sieve") t.workloads
     |> fun o -> Option.bind o (fun w -> ratio w "interp" "compiled")
   with
  | Some r ->
      pr
        "paper Figure 5.1 context: interp vs compiled here %.1fx (paper: ~20.7x)\n"
        r
  | None -> ());
  Buffer.contents buf

let engine_json w (e : engine_run) =
  Json.Obj
    [
      ("engine", Json.String e.engine);
      ("build_s", Json.Float e.build_s);
      ("wall_s", Json.Float e.wall_s);
      ("ns_per_cycle", Json.Float e.ns_per_cycle);
      ( "speedup_vs_interp",
        match ratio w "interp" e.engine with
        | Some r -> Json.Float r
        | None -> Json.Null );
    ]

let workload_json w =
  let r name a b =
    (name, match ratio w a b with Some r -> Json.Float r | None -> Json.Null)
  in
  Json.Obj
    [
      ("workload", Json.String w.name);
      ("cycles", Json.Int w.cycles);
      ("components", Json.Int w.components);
      ("flat_program_words", Json.Int w.flat_words);
      ("engines", Json.List (List.map (engine_json w) w.engines));
      r "interp_vs_compiled" "interp" "compiled";
      r "interp_vs_flat" "interp" "flat";
      r "flat_vs_compiled" "compiled" "flat";
      r "activity_ablation_speedup" "flat-full" "flat";
      ("flat_skip_rate", Json.Float w.flat_skip_rate);
      ("agree", Json.Bool (w.agreement = None));
      ( "divergence",
        match w.agreement with Some d -> Json.String d | None -> Json.Null );
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.String "asim-bench-engines/1");
      ("cycles", Json.Int t.cycles);
      ("reps", Json.Int t.reps);
      ("workloads", Json.List (List.map workload_json t.workloads));
      ( "paper",
        Json.Obj
          [
            ("figure", Json.String "5.1");
            ("interp_vs_compiled_paper", Json.Float (310.6 /. 15.0));
            ( "note",
              Json.String
                "Paper timings are VAX 11/780 seconds for the 5545-cycle \
                 sieve; compare ratios, not absolute times.  The flat \
                 kernel is the rung below the paper's compiled simulator: \
                 same semantics, no per-component closures, and \
                 activity-driven scheduling on top." );
          ] );
    ]

let write_json t ~path =
  let oc = open_out path in
  output_string oc (Json.to_string (to_json t));
  output_char oc '\n';
  close_out oc
