(** The engine-comparison harness behind [asim bench] and
    [BENCH_engines.json].

    Runs the repo's engines (interpreter, closure compiler, lowered-IR
    evaluator, flat kernel, the flat kernel's full-re-evaluation ablation,
    and — when an OCaml toolchain is on PATH — the native Dynlink-JIT
    engine) over two fixed workloads — the Itty Bitty Stack Machine
    running the sieve of Eratosthenes (the paper's Figure 5.1
    configuration) and the Appendix F tiny computer running its demo
    program — and reports wall-clock per run, ns/cycle, raw and
    prep-inclusive speedups versus the interpreter (the paper's two
    Figure 5.1 columns), the cycle count at which each engine's prep
    amortizes, the activity-scheduling skip rate, and a
    differential-oracle agreement check, so a performance claim and its
    correctness witness travel together.

    The native engine is benched against a fresh empty artifact cache, so
    its [build_s] is an honest cold generate+compile+dynlink.

    The tiered engine gets two rows.  ["tiered"] is fully cold on every
    rep (empty artifact cache and in-process memo, default [Auto] policy):
    the acceptance claim tiered ≈ max(flat, native) including prep, as a
    user hits it the first time.  ["tiered-warm"] (toolchain only) reuses
    the artifact the native row compiled, so the machine swaps at cycle 0
    — the steady state the content-addressed cache buys across runs. *)

type engine_run = {
  engine : string;  (** oracle engine name, e.g. ["flat"] *)
  build_s : float;  (** seconds to construct the machine *)
  wall_s : float;  (** best-of-reps seconds for the full cycle budget *)
  ns_per_cycle : float;
  compiler : string option;
      (** the toolchain that produced the engine's code — the probed
          compiler and its version for ["native"], [None] otherwise *)
  domains : int option;
      (** domain count for the ["par"] row (its default — ASIM_PAR_DOMAINS,
          else the core count), [None] for single-domain engines *)
}

type profiling = {
  prof_cycles : int;
      (** dedicated budget for the profiling-overhead row — the workload
          budget with a 50k-cycle floor, long enough for the percentage
          to be stable *)
  off_ns_per_cycle : float;  (** flat kernel, no profiler attached *)
  on_ns_per_cycle : float;  (** flat kernel with per-component counters *)
  overhead : float;
      (** [(on - off) / off] — the cost of leaving counters on, as a
          fraction; the driver's ceiling is 0.05 *)
  off_zero_alloc : bool;
      (** the counters-off hot loop allocated nothing beyond test_flat's
          fixed allowance — the witness that profiling off costs nothing *)
}

type workload = {
  name : string;
  cycles : int;
  components : int;
  flat_words : int;  (** flat-program size in instruction words *)
  flat_words_raw : int;  (** same, with the peephole pass disabled *)
  flat_skip_rate : float;
      (** fraction of combinational evaluations the activity scheduler
          skipped over the run, in [0, 1] *)
  agreement : string option;
      (** [None] when every engine agreed on the differential check;
          [Some divergence] otherwise *)
  tiered_swap : string;
      (** how the cold tiered row's swap resolved at this cycle budget
          (["pending"] below the [Auto] spawn threshold, ["swapped"] past
          it, ["unavailable"] without a toolchain) *)
  engines : engine_run list;
  profiling : profiling;
      (** flat-kernel counters-on-vs-off overhead (its own cycle budget,
          min of at least 3 reps a side) plus the counters-off
          zero-allocation witness *)
}

(** One row of the partitioned engine's scaling curve. *)
type par_run = {
  pr_domains : int;
  pr_build_s : float;
  pr_wall_s : float;
  pr_ns_per_cycle : float;
  pr_ngroups : int;  (** barriers per cycle under this partitioning *)
  pr_cut : int;  (** cross-partition combinational edges *)
  pr_speedup_vs_par1 : float;
  pr_scaling_valid : bool;
      (** false when the host has fewer cores than this row has domains —
          the timing then measures the OS time-slicing domains, not the
          algorithm, and must not be read as a speedup *)
}

(** The partitioned engine's figure: flat baseline plus par at 1/2/4/8
    domains over a generated 10k-component spec, with the par@1-vs-flat
    overhead ablation (recorded even when unfavourable), the
    [codegen.flat.compile] span for the spec, and a short flat-vs-par@4
    lockstep check as the correctness witness. *)
type par_scaling = {
  ps_workload : string;
  ps_components : int;
  ps_cycles : int;
  ps_cores_online : int;  (** [Domain.recommended_domain_count ()] *)
  ps_compile_span_ms : float;
      (** duration of the flat compiler's [codegen.flat.compile] span on
          this spec *)
  ps_flat_wall_s : float;
  ps_par1_overhead_vs_flat : float;  (** par@1 wall / flat wall *)
  ps_lockstep : bool;
  ps_runs : par_run list;
}

(** One cumulative step of the middle-end ablation. *)
type opt_step = {
  os_label : string;  (** ["O0"], then ["+constprop"], ["+fuse"], ... *)
  os_passes : string list;  (** the cumulative pass set this step ran *)
  os_flat_words : int;
  os_delta_words : int;
      (** flat words saved versus the previous step — signed, so a pass
          with no (or negative) gain on this workload is reported, not
          dropped *)
  os_flat_ns_per_cycle : float;
}

(** The optimizing middle-end's figure: each {!Asim.Opt} pass added
    cumulatively in pipeline order over a generated 10k-component spec,
    measured as flat program size and flat ns/cycle per step, plus the
    native engine at the [-O0]/[-O2] endpoints (separate plugin compiles —
    the optimizer changes the generated source), with a flat [-O2]-vs-[-O0]
    lockstep check over the live components as the correctness witness. *)
type opt_ablation = {
  oa_workload : string;
  oa_components : int;
  oa_cycles : int;
  oa_cores_online : int;
  oa_dead_components : int;  (** components DCE stubbed at [-O2] *)
  oa_scheduled : bool;
      (** whether the cost-driven scheduler ran (it gates itself off when
          any selector could raise at run time) *)
  oa_steps : opt_step list;  (** first step is the [-O0] baseline *)
  oa_flat_speedup_o2_vs_o0 : float;
  oa_native_o0_ns : float option;  (** [None] without a toolchain *)
  oa_native_o2_ns : float option;
  oa_native_speedup_o2_vs_o0 : float option;
  oa_lockstep : bool;
}

type t = {
  cycles : int;
  reps : int;
  cores_online : int;
  workloads : workload list;
  par_scaling : par_scaling list;
  opt_ablation : opt_ablation list;
}

val run :
  ?cycles:int -> ?reps:int -> ?check_cycles:int -> ?par_cycles:int -> unit -> t
(** Run the harness.  [cycles] is the per-run budget (default: the sieve's
    5545 — both workloads park in halt spins, so any budget is safe);
    [reps] timed repetitions per engine, best kept (default 3);
    [check_cycles] the differential-oracle budget (default 300);
    [par_cycles] the budget for the 10k-component par-scaling workloads
    (default 200 — each cycle there is ~250x a sieve cycle). *)

val ratio : workload -> string -> string -> float option
(** [ratio w a b] is [wall(a) /. wall(b)] — how many times faster engine
    [b] is than engine [a] on this workload; [None] if either is absent. *)

val incl_prep_ratio : workload -> string -> float option
(** Speedup of the engine over the interpreter once machine-construction
    time (for ["native"]: codegen, compile and dynlink) is charged to
    both sides — Figure 5.1's second column. *)

val amortization_cycles : workload -> string -> float option
(** Cycles after which the engine's extra prep over the interpreter is
    repaid by its faster per-cycle rate.  [Some 0.] when prep is not more
    expensive; [None] when the engine is no faster per cycle. *)

val tiered_vs_best : workload -> float option
(** The cold tiered row's prep-inclusive speedup divided by the better of
    flat's and native's — tiered ≈ max(flat, native) as a single number,
    with 0.95 the accepted floor. *)

val agree : t -> bool
(** All workloads passed the differential check, every par-scaling
    workload stayed in lockstep with flat, and every opt-ablation workload
    stayed in lockstep across [-O0]/[-O2]. *)

val table : t -> string
(** Human-readable report, one block per workload. *)

val to_json : t -> Asim_batch.Json.t
(** The [BENCH_engines.json] document: per-workload engine rows plus the
    derived ratios, and where the paper's Figure 5.1 20x interp-vs-compiled
    gap lands here. *)

val write_json : t -> path:string -> unit
