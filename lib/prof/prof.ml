open Asim_core
module Analysis = Asim_analysis.Analysis
module Depgraph = Asim_analysis.Depgraph
module Stats = Asim_sim.Stats
module Io = Asim_sim.Io
module Clock = Asim_obs.Clock
module Tracer = Asim_obs.Tracer
module Registry = Asim_obs.Registry

type t = {
  names : string array;
  kinds : char array;
  levels : int array;
  nlevels : int;
  sample_every : int;
  evals : int array;
  faults : int array;
  skips : int array;
  reads : int array;
  writes : int array;
  inputs : int array;
  outputs : int array;
  words : int array;
  level_ns : float array;
  mutable mem_ns : float;
  mutable sampled_ns : float;
  mutable sampled_cycles : int;
  mutable io_ns : float;
  mutable io_events : int;
  mutable cycles : int;
  mutable engine : string;
  mutable schedule : string;
  mutable stats : Stats.t option;
}

(* The slot map is reconstructed on demand (reports, never the hot path);
   keeping it out of [t] keeps the record free of non-counter state. *)
let ids t =
  let h = Hashtbl.create (Array.length t.names) in
  Array.iteri (fun i name -> Hashtbl.replace h name i) t.names;
  h

let slot t name =
  let rec go i =
    if i >= Array.length t.names then raise Not_found
    else if String.equal t.names.(i) name then i
    else go (i + 1)
  in
  go 0

let attach_stats t stats = t.stats <- Some stats

let create ?(sample_every = 256) (analysis : Analysis.t) =
  if sample_every < 1 then invalid_arg "Prof.create: sample_every must be >= 1";
  let spec = analysis.Analysis.spec in
  let comps = Array.of_list spec.Spec.components in
  let n = Array.length comps in
  let names = Array.map (fun (c : Component.t) -> c.name) comps in
  let kinds =
    Array.map
      (fun (c : Component.t) ->
        match c.kind with
        | Component.Alu _ -> 'A'
        | Component.Selector _ -> 'S'
        | Component.Memory _ -> 'M')
      comps
  in
  let id = Hashtbl.create (max 16 n) in
  Array.iteri (fun i name -> Hashtbl.replace id name i) names;
  (* Topological level: 0 = reads no combinational outputs; memories stay
     at -1 (their outputs are one-cycle-delayed temporaries, outside the
     combinational wavefront).  [Analysis.order] is dependency-sorted, so
     every dependency's level is settled before its readers. *)
  let levels = Array.make (max 1 n) (-1) in
  List.iter
    (fun (c : Component.t) ->
      let deps = Depgraph.dependencies spec c in
      let lvl =
        List.fold_left
          (fun acc dep ->
            match Hashtbl.find_opt id dep with
            | Some s -> max acc (levels.(s) + 1)
            | None -> acc)
          0 deps
      in
      levels.(Hashtbl.find id c.Component.name) <- lvl)
    analysis.Analysis.order;
  let nlevels = 1 + Array.fold_left max (-1) levels in
  let zeros () = Array.make (max 1 n) 0 in
  {
    names;
    kinds;
    levels;
    nlevels;
    sample_every;
    evals = zeros ();
    faults = zeros ();
    skips = zeros ();
    reads = zeros ();
    writes = zeros ();
    inputs = zeros ();
    outputs = zeros ();
    words = zeros ();
    level_ns = Array.make (max 1 nlevels) 0.0;
    mem_ns = 0.0;
    sampled_ns = 0.0;
    sampled_cycles = 0;
    io_ns = 0.0;
    io_events = 0;
    cycles = 0;
    engine = "";
    schedule = "";
    stats = None;
  }

let instrument_io t (h : Io.handler) =
  {
    Io.input =
      (fun ~address ->
        let t0 = Clock.now () in
        let v = h.Io.input ~address in
        t.io_ns <- t.io_ns +. ((Clock.now () -. t0) *. 1e9);
        t.io_events <- t.io_events + 1;
        v);
    Io.output =
      (fun ~address ~data ->
        let t0 = Clock.now () in
        h.Io.output ~address ~data;
        t.io_ns <- t.io_ns +. ((Clock.now () -. t0) *. 1e9);
        t.io_events <- t.io_events + 1);
  }

let finalize t =
  let id = ids t in
  (match t.stats with
  | None -> ()
  | Some stats ->
      List.iter
        (fun (name, (c : Stats.memory_counters)) ->
          match Hashtbl.find_opt id name with
          | None -> ()
          | Some s ->
              t.reads.(s) <- c.Stats.reads;
              t.writes.(s) <- c.Stats.writes;
              t.inputs.(s) <- c.Stats.inputs;
              t.outputs.(s) <- c.Stats.outputs)
        (Stats.per_memory stats));
  (* Every combinational component is considered exactly once per cycle:
     it either evaluated or its dirty bit was clear. *)
  Array.iteri
    (fun s kind ->
      if kind <> 'M' then t.skips.(s) <- max 0 (t.cycles - t.evals.(s)))
    t.kinds

(* --- reports ------------------------------------------------------------- *)

type row = {
  r_slot : int;
  r_name : string;
  r_kind : char;
  r_level : int;
  r_line : int;
  r_evals : int;
  r_skips : int;
  r_reads : int;
  r_writes : int;
  r_inputs : int;
  r_outputs : int;
  r_faults : int;
  r_words : int;
  r_cost : int;
}

(* Best-effort definition-line lookup: a component definition line reads
   [A|S|M <name> ...] after macro stripping; the first match wins.  Names
   produced by macro expansion may not appear verbatim — those report 0. *)
let source_line_table source =
  let table = Hashtbl.create 64 in
  let lineno = ref 0 in
  String.split_on_char '\n' source
  |> List.iter (fun line ->
         incr lineno;
         let fields =
           String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) line)
           |> List.filter (fun s -> s <> "")
         in
         match fields with
         | head :: name :: _
           when (match head with
                | "A" | "S" | "M" | "a" | "s" | "m" -> true
                | _ -> false)
                && not (Hashtbl.mem table name) ->
             Hashtbl.replace table name !lineno
         | _ -> ());
  table

let rows ?source t =
  finalize t;
  let lines =
    match source with
    | Some s -> source_line_table s
    | None -> Hashtbl.create 0
  in
  List.init (Array.length t.names) (fun s ->
      let accesses = t.reads.(s) + t.writes.(s) + t.inputs.(s) + t.outputs.(s) in
      let dynamic = if t.kinds.(s) = 'M' then accesses else t.evals.(s) in
      {
        r_slot = s;
        r_name = t.names.(s);
        r_kind = t.kinds.(s);
        r_level = t.levels.(s);
        r_line = Option.value (Hashtbl.find_opt lines t.names.(s)) ~default:0;
        r_evals = t.evals.(s);
        r_skips = t.skips.(s);
        r_reads = t.reads.(s);
        r_writes = t.writes.(s);
        r_inputs = t.inputs.(s);
        r_outputs = t.outputs.(s);
        r_faults = t.faults.(s);
        r_words = t.words.(s);
        r_cost = dynamic * max 1 t.words.(s);
      })

let hot ?(top = 10) ?source t =
  rows ?source t
  |> List.stable_sort (fun a b -> compare b.r_cost a.r_cost)
  |> List.filteri (fun i _ -> i < top)

let cost_model t =
  rows t
  |> List.filter_map (fun r ->
         if r.r_kind = 'M' then None
         else Some (r.r_name, float_of_int r.r_cost))

let report ?(top = 10) ?source t =
  let b = Buffer.create 1024 in
  let all = rows ?source t in
  let total_cost = List.fold_left (fun acc r -> acc + r.r_cost) 0 all in
  Printf.bprintf b
    "profile: engine=%s schedule=%s cycles=%d sampled=%d (every %d)\n"
    (if t.engine = "" then "?" else t.engine)
    (if t.schedule = "" then "-" else t.schedule)
    t.cycles t.sampled_cycles t.sample_every;
  if t.io_events > 0 then
    Printf.bprintf b "io: %d transfers, %.3f ms waiting\n" t.io_events
      (t.io_ns /. 1e6);
  Printf.bprintf b "hot components (cost = evaluations x program words):\n";
  Printf.bprintf b "  %-4s %-12s %-4s %5s %5s %9s %6s %6s %9s %6s\n" "rank"
    "name" "kind" "level" "line" "evals" "skip%" "words" "cost" "share";
  List.iteri
    (fun i r ->
      let considered = r.r_evals + r.r_skips in
      let skip_pct =
        if considered = 0 then 0.0
        else 100.0 *. float_of_int r.r_skips /. float_of_int considered
      in
      Printf.bprintf b "  %-4d %-12s %-4s %5s %5s %9d %5.1f%% %6d %9d %5.1f%%\n"
        (i + 1) r.r_name (String.make 1 r.r_kind)
        (if r.r_level < 0 then "mem" else string_of_int r.r_level)
        (if r.r_line = 0 then "-" else string_of_int r.r_line)
        r.r_evals skip_pct r.r_words r.r_cost
        (if total_cost = 0 then 0.0
         else 100.0 *. float_of_int r.r_cost /. float_of_int total_cost))
    (hot ~top ?source t);
  if t.sampled_cycles > 0 then begin
    let comb_ns = Array.fold_left ( +. ) 0.0 t.level_ns in
    let total = comb_ns +. t.mem_ns in
    Printf.bprintf b "sampled cycle time (%d cycles):\n" t.sampled_cycles;
    Array.iteri
      (fun l ns ->
        let members =
          Array.fold_left
            (fun acc lvl -> if lvl = l then acc + 1 else acc)
            0 t.levels
        in
        Printf.bprintf b "  level %-2d %3d components %10.0f ns %5.1f%%\n" l
          members ns
          (if total = 0.0 then 0.0 else 100.0 *. ns /. total))
      t.level_ns;
    Printf.bprintf b "  memory phase          %10.0f ns %5.1f%%\n" t.mem_ns
      (if total = 0.0 then 0.0 else 100.0 *. t.mem_ns /. total)
  end;
  let mems = List.filter (fun r -> r.r_kind = 'M') all in
  if mems <> [] then begin
    Printf.bprintf b "memories:\n";
    List.iter
      (fun r ->
        Printf.bprintf b "  %-12s reads=%d writes=%d inputs=%d outputs=%d\n"
          r.r_name r.r_reads r.r_writes r.r_inputs r.r_outputs)
      mems
  end;
  Buffer.contents b

let to_flame ?source t =
  let b = Buffer.create 512 in
  List.iter
    (fun r ->
      if r.r_cost > 0 then
        if r.r_kind = 'M' then
          Printf.bprintf b "asim;%s;memory;%s %d\n"
            (if t.engine = "" then "?" else t.engine)
            r.r_name r.r_cost
        else
          Printf.bprintf b "asim;%s;level_%d;%s %d\n"
            (if t.engine = "" then "?" else t.engine)
            r.r_level r.r_name r.r_cost)
    (rows ?source t);
  Buffer.contents b

let emit_spans t tracer =
  if Tracer.is_active tracer && t.sampled_cycles > 0 then begin
    finalize t;
    let comb_ns = Array.fold_left ( +. ) 0.0 t.level_ns in
    let total = comb_ns +. t.mem_ns in
    let base = Clock.now () in
    let cursor = ref base in
    let emit name ns args =
      let dur = ns /. 1e9 in
      Tracer.span_at tracer name ~ts:!cursor ~dur
        ~args:
          (( "sampled_ns", Printf.sprintf "%.0f" ns )
          :: ( "share",
               Printf.sprintf "%.3f" (if total = 0.0 then 0.0 else ns /. total)
             )
          :: args);
      cursor := !cursor +. dur
    in
    Array.iteri
      (fun l ns ->
        let members =
          Array.fold_left
            (fun acc lvl -> if lvl = l then acc + 1 else acc)
            0 t.levels
        in
        emit
          (Printf.sprintf "prof.level.%d" l)
          ns
          [ ("components", string_of_int members) ])
      t.level_ns;
    emit "prof.mem" t.mem_ns
      [ ("sampled_cycles", string_of_int t.sampled_cycles) ]
  end

let export t ~spec reg =
  finalize t;
  let labels = [ ("spec", spec) ] in
  let addc name extra v =
    if v > 0 then
      Registry.add
        (Registry.counter reg ~labels:(labels @ extra) name)
        (float_of_int v)
  in
  Array.iteri
    (fun s name ->
      let comp = [ ("component", name) ] in
      if t.kinds.(s) = 'M' then begin
        let mem = [ ("memory", name) ] in
        addc "asim_prof_mem_reads_total" mem t.reads.(s);
        addc "asim_prof_mem_writes_total" mem t.writes.(s);
        addc "asim_prof_mem_inputs_total" mem t.inputs.(s);
        addc "asim_prof_mem_outputs_total" mem t.outputs.(s)
      end
      else begin
        addc "asim_prof_evals_total" comp t.evals.(s);
        addc "asim_prof_skips_total" comp t.skips.(s)
      end;
      addc "asim_prof_faults_total" comp t.faults.(s))
    t.names;
  addc "asim_prof_cycles_total" [] t.cycles;
  addc "asim_prof_sampled_cycles_total" [] t.sampled_cycles;
  addc "asim_prof_io_events_total" [] t.io_events;
  if t.io_ns > 0.0 then
    Registry.add
      (Registry.counter reg ~labels "asim_prof_io_wait_seconds_total")
      (t.io_ns /. 1e9)
