(** Performance counters for the *simulated* machine.

    lib/obs watches the simulator process (spans, RED metrics); this module
    watches the simulated design: which ALUs/selectors actually evaluate,
    which dirty bits never fire, where the memory traffic goes, and — via a
    sampled cycle profiler — where the wall time of a cycle is spent across
    the topological levels of the combinational network.  The measured
    eval counts double as the per-component cost model that a static
    partitioner (GSIM-style, see ROADMAP) consumes.

    A profile is wired into an engine at construction time
    ([Asim.machine ~prof]); with no profile the engines build exactly the
    code they always built, so the profiling-off path costs nothing (the
    zero-allocation assertion in test_flat covers it).  With a profile
    attached the hot path grows by one preallocated-int-array increment per
    component evaluation — everything else is derived:

    - dirty skips: every combinational component is considered exactly once
      per cycle, so [skips = cycles - evals] per component;
    - memory reads/writes/inputs/outputs: copied from the engine's
      {!Asim_sim.Stats} counters, which every engine already maintains;
    - fault triggers: counted only when an injected fault actually perturbs
      a value (fault paths are off the benchmark hot loop);
    - I/O waits: the handler is wrapped with a {!Asim_obs.Clock} timer.

    Counter arrays are indexed by component {e slot} — the component's
    position in spec declaration order, which is also the flat kernel's
    value-array layout. *)

type t = {
  names : string array;  (** by slot (spec declaration order) *)
  kinds : char array;  (** ['A'] alu, ['S'] selector, ['M'] memory *)
  levels : int array;
      (** topological level of each combinational slot (0 = reads no
          combinational outputs); [-1] for memories *)
  nlevels : int;
  sample_every : int;  (** cycle-profiler sampling period *)
  (* Hot counters, written by the engines. *)
  evals : int array;  (** combinational evaluations, by slot *)
  faults : int array;  (** fault-perturbed values, by slot *)
  (* Derived counters, filled by [finalize] (any report entry point). *)
  skips : int array;  (** dirty-bit skips, by slot *)
  reads : int array;  (** memory reads, by slot *)
  writes : int array;
  inputs : int array;
  outputs : int array;
  words : int array;
      (** static cost: flat-program words per component block (filled by the
          flat kernel; 0 under other engines) *)
  (* Sampled cycle profiler. *)
  level_ns : float array;  (** sampled comb wall time, by level *)
  mutable mem_ns : float;  (** sampled memory-phase wall time *)
  mutable sampled_ns : float;  (** total wall time of sampled cycles *)
  mutable sampled_cycles : int;
  mutable io_ns : float;  (** wall time inside the I/O handler *)
  mutable io_events : int;
  mutable cycles : int;  (** cycles executed with this profile attached *)
  mutable engine : string;
  mutable schedule : string;
  mutable stats : Asim_sim.Stats.t option;
      (** engine statistics, source of the per-memory counters *)
}

val create : ?sample_every:int -> Asim_analysis.Analysis.t -> t
(** A zeroed profile for one analyzed spec.  [sample_every] (default 256)
    is the cycle-profiler period: every Nth cycle is timed per topological
    level.  Raises [Invalid_argument] if [sample_every < 1]. *)

val slot : t -> string -> int
(** Slot of a component name; raises [Not_found] for unknown names. *)

val attach_stats : t -> Asim_sim.Stats.t -> unit
(** Point the profile at the engine's statistics so [finalize] can copy the
    per-memory operation counts.  Engines call this at construction. *)

val instrument_io : t -> Asim_sim.Io.handler -> Asim_sim.Io.handler
(** Wrap an I/O handler so transfer latency accumulates into [io_ns] /
    [io_events].  Engines apply this when a profile is attached. *)

val finalize : t -> unit
(** Fill the derived counters ([skips], memory ops from the attached
    stats).  Idempotent; every report entry point below calls it. *)

(** {2 Reports} *)

type row = {
  r_slot : int;
  r_name : string;
  r_kind : char;
  r_level : int;  (** -1 for memories *)
  r_line : int;  (** 1-based spec source line, 0 when unknown *)
  r_evals : int;
  r_skips : int;
  r_reads : int;
  r_writes : int;
  r_inputs : int;
  r_outputs : int;
  r_faults : int;
  r_words : int;
  r_cost : int;
      (** estimated dynamic cost in word-evaluations:
          [evals * max 1 words] for combinational components,
          [accesses * max 1 words] for memories *)
}

val rows : ?source:string -> t -> row list
(** One row per component in slot order.  When the spec [source] text is
    given, definition lines are located by scanning for
    [A|S|M <name> ...] heads. *)

val hot : ?top:int -> ?source:string -> t -> row list
(** Rows sorted by descending [r_cost] (ties by slot), truncated to [top]
    (default 10). *)

val cost_model : t -> (string * float) list
(** The measured per-combinational-component cost model
    ([evals x max 1 words], memories excluded) in the shape the partitioned
    engine's balancer consumes ([Asim.machine ~par_costs], [asim run
    --par-profile]): profile a spec under the flat engine once, then feed
    the result back so partition loads reflect observed activity instead of
    static program size. *)

val report : ?top:int -> ?source:string -> t -> string
(** Human-readable profile: run header, top-N hot components, sampled
    per-level timings and memory traffic. *)

val to_flame : ?source:string -> t -> string
(** Folded flame stacks (one [frame;frame;frame count] line per component,
    collapsed-stack format consumed by flamegraph tools).  Combinational
    components are weighted by estimated cost under their topological
    level; memories by access count. *)

val emit_spans : t -> Asim_obs.Tracer.t -> unit
(** Emit the sampled cycle profile as synthetic Chrome-trace spans
    ([prof.level.N] / [prof.mem]) so a [--trace-out] file shows the
    simulated machine's time breakdown next to the pipeline spans. *)

val export : t -> spec:string -> Asim_obs.Registry.t -> unit
(** Add this profile's counts to [asim_prof_*] registry counters labeled
    with [spec] (and per-series [component]/[memory]).  Adding — not
    setting — so repeated profiled jobs accumulate, Prometheus-style. *)
