(** The optimizing middle-end over the codegen IR.

    [run] rewrites an analyzed spec into an observably equivalent one that
    every backend (interp, closure-compiled, flat, native, tiered, par, and
    the source generators) consumes unchanged: traces, I/O events, memory
    cells, statistics, fault behaviour and runtime errors are preserved
    byte-for-byte; only the values of components proved unobservable (see
    {!result.dead}) may change.

    Internally each combinational component is translated into a hash-consed
    dataflow node (an enriched form of [Lower.term]: constants, state slots,
    bit extracts, shifts, sums, ALU applications, selections) mirroring
    {!Asim_core.Expr.eval}'s placement arithmetic exactly — including
    unmasked totals and negative intermediates.  Structural sharing over
    that DAG drives constant propagation and common-subexpression
    elimination; the rewrites are materialized back into ordinary spec
    components (constant wires, forwarding wires, pruned selectors), so no
    engine needs to know the optimizer exists. *)

type level = O0 | O1 | O2

val level_of_string : string -> level option
(** Accepts ["0"]/["1"]/["2"] and ["O0"]/["o1"]/... forms. *)

val level_to_string : level -> string
(** ["0"], ["1"] or ["2"]. *)

val env_var : string
(** ["ASIM_OPT"] — the CLI default when [-O] is not given. *)

val skew_env_var : string
(** ["ASIM_OPT_SKEW"] — set to [1] to plant the deliberate miscompile (CSE
    value reuse across the evaluation-order boundary, realized as a reversed
    combinational order) used by the must-fail oracle checks.  Only takes
    effect when the {!Cse} pass is active and the spec has at least two
    combinational components. *)

val env_level : unit -> level
(** [ASIM_OPT] when set (raising {!Asim_core.Error.Error} on junk), else
    {!O2}. *)

type pass =
  | Constprop  (** fold constant components/selector cases, drop dead operands *)
  | Fuse  (** merge adjacent constant atoms and contiguous same-name fields *)
  | Narrow  (** width-driven mask elision, field trimming, case truncation *)
  | Cse  (** rewire duplicate computations to a forwarding wire *)
  | Dce  (** stub components whose values are provably unobservable *)
  | Schedule  (** cost-driven level-major reordering of the evaluation order *)

val all_passes : pass list

val passes_of_level : level -> pass list
(** [O0] = none; [O1] = constprop, fuse, narrow; [O2] = all. *)

val pass_to_string : pass -> string

type stats = {
  folded : int;  (** components replaced by a constant wire *)
  rewired : int;  (** components replaced by a forwarding wire (CSE) *)
  stubbed : int;  (** dead components stubbed to constant zero *)
  fused : int;  (** atom merges, dead-operand drops, selector folds *)
  narrowed : int;  (** mask elisions, field trims/drops, case truncations *)
  scheduled : bool;  (** whether the scheduler ran (it gates itself off when
                         any selector could raise at run time) *)
}

type result = {
  analysis : Asim_analysis.Analysis.t;
  dead : string list;
      (** names stubbed by {!Dce}: their per-cycle values are no longer
          meaningful (everything else is bit-identical).  Oracles comparing
          raw component snapshots across opt levels must mask these. *)
  stats : stats;
}

val run_result :
  ?level:level ->
  ?passes:pass list ->
  ?keep:string list ->
  ?costs:(string * float) list ->
  Asim_analysis.Analysis.t ->
  result
(** Optimize an analyzed spec.  [passes] overrides [level]'s pass set (for
    per-pass ablation); [level] defaults to {!O2}.  [keep] names components
    whose values must be preserved exactly and whose width claims cannot be
    trusted — engines pass the fault-plan targets, batch passes every name
    when raw outputs are requested.  Traced components are always kept
    verbatim.  [costs] is a measured per-component cost model (as produced
    by [Prof.cost_model]) used by {!Schedule}; omitted, a static flat-word
    estimate is used. *)

val run :
  ?level:level ->
  ?passes:pass list ->
  ?keep:string list ->
  ?costs:(string * float) list ->
  Asim_analysis.Analysis.t ->
  Asim_analysis.Analysis.t
(** [run_result] without the report. *)
