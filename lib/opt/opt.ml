open Asim_core
module Analysis = Asim_analysis.Analysis
module Width = Asim_analysis.Width

type level = O0 | O1 | O2

let level_of_string s =
  match String.trim s with
  | "0" | "O0" | "o0" -> Some O0
  | "1" | "O1" | "o1" -> Some O1
  | "2" | "O2" | "o2" -> Some O2
  | _ -> None

let level_to_string = function O0 -> "0" | O1 -> "1" | O2 -> "2"

let env_var = "ASIM_OPT"

let skew_env_var = "ASIM_OPT_SKEW"

let env_level () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> O2
  | Some s -> (
      match level_of_string s with
      | Some l -> l
      | None ->
          Error.failf Error.Analysis "%s must be 0, 1 or 2 (got %S)" env_var s)

type pass = Constprop | Fuse | Narrow | Cse | Dce | Schedule

let all_passes = [ Constprop; Fuse; Narrow; Cse; Dce; Schedule ]

let passes_of_level = function
  | O0 -> []
  | O1 -> [ Constprop; Fuse; Narrow ]
  | O2 -> all_passes

let pass_to_string = function
  | Constprop -> "constprop"
  | Fuse -> "fuse"
  | Narrow -> "narrow"
  | Cse -> "cse"
  | Dce -> "dce"
  | Schedule -> "schedule"

type stats = {
  folded : int;
  rewired : int;
  stubbed : int;
  fused : int;
  narrowed : int;
  scheduled : bool;
}

type result = { analysis : Analysis.t; dead : string list; stats : stats }

(* ------------------------------------------------------------------ *)
(* The dataflow IR: one hash-consed node per distinct computation.  Node
   construction mirrors [Expr.eval]'s placement arithmetic exactly — sums
   are unmasked, shifts are plain [lsl], extracts are two's-complement —
   so a [Cst] node is the precise value every engine would compute. *)

type node = { id : int; shape : shape }

and shape =
  | Cst of int
  | Slot of string
      (* a value opaque to the optimizer: memory output, traced or kept
         component, or any not-yet-defined name *)
  | Ext of node * int * int  (* bits lo..hi, shifted down to bit 0 *)
  | Shl of node * int  (* k >= 1, plain [lsl] *)
  | Sum of node list  (* flattened; at most one constant, kept last *)
  | Fn of node * node * node  (* ALU: function, left, right *)
  | Sel of node * node array

type key =
  | KCst of int
  | KSlot of string
  | KExt of int * int * int
  | KShl of int * int
  | KSum of int list
  | KFn of int * int * int
  | KSel of int * int list

type builder = { tbl : (key, node) Hashtbl.t; mutable next : int }

let new_builder () = { tbl = Hashtbl.create 1024; next = 0 }

let mk b shape key =
  match Hashtbl.find_opt b.tbl key with
  | Some n -> n
  | None ->
      let n = { id = b.next; shape } in
      b.next <- b.next + 1;
      Hashtbl.add b.tbl key n;
      n

let cst b v = mk b (Cst v) (KCst v)

let slot b name = mk b (Slot name) (KSlot name)

let rec ext b x lo hi =
  match x.shape with
  | Cst v -> cst b ((v land Bits.field_mask ~lo ~hi) lsr lo)
  | Ext (y, lo2, hi2) ->
      (* bits lo..hi of (bits lo2..hi2 of y): bit i of the inner value is
         bit lo2+i of y for i <= hi2-lo2, and 0 above. *)
      if lo2 + lo > hi2 then cst b 0
      else ext b y (lo2 + lo) (min (lo2 + hi) hi2)
  | _ -> mk b (Ext (x, lo, hi)) (KExt (x.id, lo, hi))

let rec shl b x k =
  if k <= 0 then x
  else
    match x.shape with
    | Cst v -> cst b (v lsl k)
    | Shl (y, j) -> shl b y (j + k)
    | _ -> mk b (Shl (x, k)) (KShl (x.id, k))

let sum b nodes =
  let parts =
    List.concat_map
      (fun n -> match n.shape with Sum xs -> xs | _ -> [ n ])
      nodes
  in
  let is_cst n = match n.shape with Cst _ -> true | _ -> false in
  let consts, rest = List.partition is_cst parts in
  let c =
    List.fold_left
      (fun acc n -> match n.shape with Cst v -> acc + v | _ -> acc)
      0 consts
  in
  let rest = List.sort (fun a a' -> compare a.id a'.id) rest in
  let parts = if c = 0 then rest else rest @ [ cst b c ] in
  match parts with
  | [] -> cst b 0
  | [ n ] -> n
  | ns -> mk b (Sum ns) (KSum (List.map (fun n -> n.id) ns))

(* ALU folding.  [apply_alu] is total, so folding never hides an error; the
   identities below hold for raw (unmasked, possibly negative) operands.
   There is deliberately no shift-by-zero identity: function 6 masks its
   left operand even for a zero count. *)
let alu b f l r =
  let symbolic () = mk b (Fn (f, l, r)) (KFn (f.id, l.id, r.id)) in
  match f.shape with
  | Cst code -> (
      let fn = Component.alu_function_of_code code in
      match (fn, l.shape, r.shape) with
      | (Component.Fn_zero | Component.Fn_unused), _, _ -> cst b 0
      | Component.Fn_right, _, _ -> r
      | Component.Fn_left, _, _ -> l
      | Component.Fn_not, Cst lv, _ -> cst b (Bits.mask - lv)
      | _, Cst lv, Cst rv -> cst b (Component.apply_alu fn ~left:lv ~right:rv)
      | Component.Fn_add, Cst 0, _ -> r
      | Component.Fn_add, _, Cst 0 -> l
      | Component.Fn_sub, _, Cst 0 -> l
      | Component.Fn_or, Cst 0, _ -> r
      | Component.Fn_or, _, Cst 0 -> l
      | Component.Fn_xor, Cst 0, _ -> r
      | Component.Fn_xor, _, Cst 0 -> l
      | Component.Fn_and, Cst 0, _ | Component.Fn_and, _, Cst 0 -> cst b 0
      | Component.Fn_mul, Cst 0, _ | Component.Fn_mul, _, Cst 0 -> cst b 0
      | Component.Fn_mul, Cst 1, _ -> r
      | Component.Fn_mul, _, Cst 1 -> l
      | _ -> symbolic ())
  | _ -> symbolic ()

(* A constant in-range select folds to its case — such a selector can never
   raise.  Anything else (including a constant *out-of-range* select) stays
   symbolic so the runtime error is preserved. *)
let sel b s cases =
  match s.shape with
  | Cst v when v >= 0 && v < Array.length cases -> cases.(v)
  | _ ->
      mk b
        (Sel (s, cases))
        (KSel (s.id, Array.to_list (Array.map (fun n -> n.id) cases)))

let bitstring_value s =
  String.fold_left (fun acc c -> (acc * 2) + if c = '1' then 1 else 0) 0 s

let field_bounds = function
  | Expr.Whole -> None
  | Expr.Bit f ->
      let f = Number.value f in
      Some (f, f)
  | Expr.Range (f, t) -> Some (Number.value f, Number.value t)

(* Expression -> node, tracking the running bit position exactly as
   [Expr.atom_contribution] does (filling atoms jump it to the word). *)
let node_of_expr b ~use atoms =
  let contribution numbits = function
    | Expr.Const { number; width = None } ->
        (cst b (Number.value number lsl numbits), Bits.word_bits)
    | Expr.Const { number; width = Some w } ->
        let w = Number.value w in
        (cst b ((Number.value number land Bits.ones w) lsl numbits), numbits + w)
    | Expr.Bitstring s ->
        (cst b (bitstring_value s lsl numbits), numbits + String.length s)
    | Expr.Ref { name; field } -> (
        match field_bounds field with
        | None -> (shl b (use name) numbits, Bits.word_bits)
        | Some (lo, hi) ->
            (shl b (ext b (use name) lo hi) numbits, numbits + (hi - lo + 1)))
  in
  let rec go acc numbits = function
    | [] -> sum b acc
    | atom :: rest ->
        let v, numbits = contribution numbits atom in
        go (v :: acc) numbits rest
  in
  go [] 0 (List.rev atoms)

(* ------------------------------------------------------------------ *)
(* Width facts.  [Width.infer] is sound — value in [0, 2^w) whenever the
   claimed width is below the word — except for components whose value a
   fault plan may perturb.  Taint every component transitively reachable
   (in the reader direction) from a kept name and refuse width claims on
   tainted components, and on memories initialized with negative cells
   (which escape the accounting's non-negative value model). *)

let input_names (c : Component.t) =
  List.concat_map Expr.names (Component.inputs c)

let taint_closure (components : Component.t list) keep =
  let tainted = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace tainted n ()) keep;
  if keep <> [] then begin
    let deps =
      List.map
        (fun (c : Component.t) -> (c.Component.name, input_names c))
        components
    in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (name, ins) ->
          if
            (not (Hashtbl.mem tainted name))
            && List.exists (Hashtbl.mem tainted) ins
          then begin
            Hashtbl.replace tainted name ();
            changed := true
          end)
        deps
    done
  end;
  tainted

let make_bounded_width (spec : Spec.t) tainted =
  let wenv = Width.infer spec in
  let tbl = Hashtbl.create (max 16 (List.length wenv)) in
  List.iter (fun (name, w) -> Hashtbl.replace tbl name w) wenv;
  List.iter
    (fun (c : Component.t) ->
      match c.Component.kind with
      | Component.Memory { init = Some cells; _ }
        when Array.exists (fun v -> v < 0) cells ->
          Hashtbl.replace tbl c.Component.name Bits.word_bits
      | _ -> ())
    spec.Spec.components;
  fun name ->
    if Hashtbl.mem tainted name then None
    else
      match Hashtbl.find_opt tbl name with
      | Some w when w < Bits.word_bits -> Some w
      | _ -> None

(* A sound upper bound on an expression's value under the current width
   facts; [None] when no bound is provable (the value may even be
   negative).  Mirrors the evaluator's placement arithmetic. *)
let expr_ubound ~bw atoms =
  let clamp = function
    | Some v when v >= 0 && v <= Bits.mask -> Some v
    | _ -> None
  in
  let contribution numbits = function
    | Expr.Const { number; width = None } ->
        let v = Number.value number in
        ((if v >= 0 then Some (v lsl numbits) else None), Bits.word_bits)
    | Expr.Const { number; width = Some w } ->
        let w = Number.value w in
        (Some ((Number.value number land Bits.ones w) lsl numbits), numbits + w)
    | Expr.Bitstring s ->
        (Some (bitstring_value s lsl numbits), numbits + String.length s)
    | Expr.Ref { name; field } -> (
        match field_bounds field with
        | None ->
            ( (match bw name with
              | Some w -> Some (Bits.ones w lsl numbits)
              | None -> None),
              Bits.word_bits )
        | Some (lo, hi) ->
            let fw = hi - lo + 1 in
            let bound =
              match bw name with
              | Some w when w <= lo -> 0
              | Some w when w - lo < fw -> Bits.ones (w - lo)
              | _ -> Bits.ones fw
            in
            (Some (bound lsl numbits), numbits + fw))
  in
  let rec go acc numbits = function
    | [] -> clamp acc
    | atom :: rest -> (
        let v, numbits = contribution numbits atom in
        match (acc, clamp v) with
        | Some a, Some v -> go (Some (a + v)) numbits rest
        | _ -> None)
  in
  go (Some 0) 0 (List.rev atoms)

(* Can evaluating this component itself raise?  ALUs are total (reads never
   fail either); a selector raises iff its select can leave the case
   range.  Memory address errors belong to the memory phase, which the
   optimizer never reorders. *)
let never_errors ~bw (c : Component.t) =
  match c.Component.kind with
  | Component.Alu _ -> true
  | Component.Selector { select; cases } -> (
      match expr_ubound ~bw select with
      | Some bound -> bound < Array.length cases
      | None -> false)
  | Component.Memory _ -> false

(* ------------------------------------------------------------------ *)
(* Materialization: constant and forwarding wires are plain ALUs (function
   1 passes the right operand through, function 0 is constant zero). *)

let const_atom v =
  if v >= 0 && v <= Bits.mask then Expr.num_w v ~width:(Bits.width_needed v)
  else Expr.num v

let wire_kind right =
  Component.Alu { fn = [ Expr.num 1 ]; left = [ Expr.num 0 ]; right }

let stub_kind =
  Component.Alu
    { fn = [ Expr.num 0 ]; left = [ Expr.num 0 ]; right = [ Expr.num 0 ] }

type decision = Keep | FoldedConst of int | WiredTo of string

(* ------------------------------------------------------------------ *)

let run_result ?(level = O2) ?passes ?(keep = []) ?(costs = [])
    (analysis : Analysis.t) =
  let passes =
    match passes with Some ps -> ps | None -> passes_of_level level
  in
  let has p = List.mem p passes in
  let skew =
    has Cse
    &&
    match Sys.getenv_opt skew_env_var with
    | None | Some "" | Some "0" -> false
    | Some _ -> true
  in
  if passes = [] then
    {
      analysis;
      dead = [];
      stats =
        {
          folded = 0;
          rewired = 0;
          stubbed = 0;
          fused = 0;
          narrowed = 0;
          scheduled = false;
        };
    }
  else begin
    let spec = analysis.Analysis.spec in
    let folded = ref 0
    and rewired = ref 0
    and stubbed = ref 0
    and fused = ref 0
    and narrowed = ref 0 in
    (* Opaque components are kept verbatim: traced ones (their widths feed
       VCD headers, their values the per-cycle trace), fault-plan targets,
       and every memory. *)
    let opaque = Hashtbl.create 64 in
    List.iter (fun n -> Hashtbl.replace opaque n ()) (Spec.traced_names spec);
    List.iter (fun n -> Hashtbl.replace opaque n ()) keep;
    List.iter
      (fun (c : Component.t) -> Hashtbl.replace opaque c.Component.name ())
      analysis.Analysis.memories;
    let is_opaque n = Hashtbl.mem opaque n in
    let tainted = taint_closure spec.Spec.components keep in
    (* --- constant propagation + CSE over the node DAG ---------------- *)
    let decisions : (string, decision) Hashtbl.t = Hashtbl.create 64 in
    let decision name =
      match Hashtbl.find_opt decisions name with Some d -> d | None -> Keep
    in
    if has Constprop || has Cse then begin
      let b = new_builder () in
      let defs : (string, node) Hashtbl.t = Hashtbl.create 64 in
      let use name =
        if is_opaque name then slot b name
        else
          match Hashtbl.find_opt defs name with
          | Some n -> n
          | None -> slot b name
      in
      let reps : (int, string) Hashtbl.t = Hashtbl.create 64 in
      List.iter
        (fun (c : Component.t) ->
          if not (is_opaque c.Component.name) then begin
            let node =
              match c.Component.kind with
              | Component.Alu { fn; left; right } ->
                  alu b (node_of_expr b ~use fn) (node_of_expr b ~use left)
                    (node_of_expr b ~use right)
              | Component.Selector { select; cases } ->
                  sel b
                    (node_of_expr b ~use select)
                    (Array.map (node_of_expr b ~use) cases)
              | Component.Memory _ -> assert false
            in
            Hashtbl.replace defs c.Component.name node;
            match node.shape with
            | Cst v when has Constprop && v >= 0 ->
                (* A constant node implies the component can never raise
                   (selectors only fold through in-range selects), so a
                   constant wire is observably identical.  Negative
                   constants are left alone: they cannot be written back as
                   source literals. *)
                Hashtbl.replace decisions c.Component.name (FoldedConst v);
                incr folded
            | _ ->
                if has Cse then (
                  match Hashtbl.find_opt reps node.id with
                  | Some rep ->
                      (* [rep] evaluates earlier in the same phase, and
                         every slot either reads is frozen between the two
                         evaluations (combinational slots are written once,
                         memory slots only in the later phase), so
                         forwarding is value- and error-exact. *)
                      Hashtbl.replace decisions c.Component.name (WiredTo rep);
                      incr rewired
                  | None -> Hashtbl.replace reps node.id c.Component.name)
          end)
        analysis.Analysis.order
    end;
    (* Substitution through the decisions: reads of a folded component
       become literal constants, reads of a forwarded component follow the
       wire to its (always-Keep, earlier) representative. *)
    let rewrite_atom atom =
      match atom with
      | Expr.Ref { name; field } -> (
          match decision name with
          | Keep -> atom
          | WiredTo rep -> Expr.Ref { name = rep; field }
          | FoldedConst v -> (
              match field_bounds field with
              | None -> const_atom v
              | Some (lo, hi) ->
                  Expr.num_w
                    ((v land Bits.field_mask ~lo ~hi) lsr lo)
                    ~width:(hi - lo + 1)))
      | _ -> atom
    in
    let rewrite_expr e = List.map rewrite_atom e in
    (* --- fuse: merge adjacent constants and contiguous fields --------- *)
    (* Cells carry the canonical mergeable form plus the original atom when
       exactly one atom produced the cell (emitted unchanged: zero churn).
       [CConst (v, None)] is a filling constant — only ever leftmost, and
       only mergeable as the upper half of a merge, so it stays filling. *)
    let fuse_expr e =
      if not (has Fuse) then e
      else begin
        let canon = function
          | Expr.Const { number; width = None } ->
              let v = Number.value number in
              if v >= 0 then Some (v, None) else None
          | Expr.Const { number; width = Some w } ->
              let w = Number.value w in
              Some (Number.value number land Bits.ones w, Some w)
          | Expr.Bitstring s -> Some (bitstring_value s, Some (String.length s))
          | Expr.Ref _ -> None
        in
        let emit (orig, cell) acc =
          match orig with
          | Some atom -> atom :: acc
          | None -> (
              match cell with
              | `Const (v, Some w) -> Expr.num_w v ~width:w :: acc
              | `Const (v, None) -> Expr.num v :: acc
              | `Range (name, lo, hi) -> Expr.ref_range name lo hi :: acc)
        in
        (* Walk low-to-high (reversed atom list); each new atom sits
           immediately above the pending cell. *)
        let rec go pending acc = function
          | [] -> ( match pending with None -> acc | Some p -> emit p acc)
          | atom :: rest -> (
              let merged =
                match pending with
                | Some (_, `Const (v0, Some w0)) -> (
                    match canon atom with
                    | Some (v, w) ->
                        Some (`Const ((v lsl w0) + v0, Option.map (( + ) w0) w))
                    | None -> None)
                | Some (_, `Range (n0, lo0, hi0)) -> (
                    match atom with
                    | Expr.Ref { name; field } when name = n0 -> (
                        match field_bounds field with
                        | Some (lo, hi) when lo = hi0 + 1 ->
                            Some (`Range (n0, lo0, hi))
                        | _ -> None)
                    | _ -> None)
                | _ -> None
              in
              match merged with
              | Some cell ->
                  incr fused;
                  go (Some (None, cell)) acc rest
              | None ->
                  let acc =
                    match pending with None -> acc | Some p -> emit p acc
                  in
                  let cell =
                    match canon atom with
                    | Some (v, w) -> Some (Some atom, `Const (v, w))
                    | None -> (
                        match atom with
                        | Expr.Ref { name; field } -> (
                            match field_bounds field with
                            | Some (lo, hi) ->
                                Some (Some atom, `Range (name, lo, hi))
                            | None -> None)
                        | _ -> None)
                  in
                  (match cell with
                  | Some p -> go (Some p) acc rest
                  | None -> go None (atom :: acc) rest))
        in
        go None [] (List.rev e)
      end
    in
    (* --- constprop extras on kept components -------------------------- *)
    let drop_unused_operand fn_value (alu : Component.alu) =
      if not (has Constprop) then alu
      else
        let zero = [ Expr.num_w 0 ~width:1 ] in
        let has_refs e = Expr.names e <> [] in
        match Component.alu_function_of_code fn_value with
        | Component.Fn_left | Component.Fn_not ->
            if has_refs alu.Component.right then begin
              incr fused;
              { alu with Component.right = zero }
            end
            else alu
        | Component.Fn_right ->
            if has_refs alu.Component.left then begin
              incr fused;
              { alu with Component.left = zero }
            end
            else alu
        | Component.Fn_zero | Component.Fn_unused ->
            let alu =
              if has_refs alu.Component.left then begin
                incr fused;
                { alu with Component.left = zero }
              end
              else alu
            in
            if has_refs alu.Component.right then begin
              incr fused;
              { alu with Component.right = zero }
            end
            else alu
        | _ -> alu
    in
    let rewrite_component (c : Component.t) =
      if is_opaque c.Component.name then
        match c.Component.kind with
        | Component.Memory { addr; data; op; cells; init } ->
            (* Memory expressions are rewritten (value-exactly) even though
               the memory itself is untouchable state. *)
            {
              c with
              Component.kind =
                Component.Memory
                  {
                    addr = fuse_expr (rewrite_expr addr);
                    data = fuse_expr (rewrite_expr data);
                    op = fuse_expr (rewrite_expr op);
                    cells;
                    init;
                  };
            }
        | _ -> c
      else
        match decision c.Component.name with
        | FoldedConst v -> { c with Component.kind = wire_kind [ const_atom v ] }
        | WiredTo rep -> { c with Component.kind = wire_kind [ Expr.ref_ rep ] }
        | Keep -> (
            match c.Component.kind with
            | Component.Alu { fn; left; right } -> (
                let fn = fuse_expr (rewrite_expr fn) in
                let left = fuse_expr (rewrite_expr left) in
                let right = fuse_expr (rewrite_expr right) in
                let a = { Component.fn; left; right } in
                match Expr.const_value fn with
                | Some code ->
                    { c with Component.kind = Component.Alu (drop_unused_operand code a) }
                | None -> { c with Component.kind = Component.Alu a })
            | Component.Selector { select; cases } -> (
                let select = fuse_expr (rewrite_expr select) in
                let cases = Array.map (fun e -> fuse_expr (rewrite_expr e)) cases in
                match Expr.const_value select with
                | Some s when has Constprop && s >= 0 && s < Array.length cases ->
                    (* Constant in-range select: the selector can never
                       raise, so it degrades to a wire of the chosen
                       case. *)
                    incr fused;
                    { c with Component.kind = wire_kind cases.(s) }
                | _ -> { c with Component.kind = Component.Selector { select; cases } })
            | Component.Memory _ -> assert false)
    in
    let components = List.map rewrite_component spec.Spec.components in
    (* --- narrow: width-driven mask elision, trims, case truncation ---- *)
    let current_spec components = { spec with Spec.components = components } in
    let components =
      if not (has Narrow) then components
      else begin
        let sweep components =
          let changed = ref false in
          let bw = make_bounded_width (current_spec components) tainted in
          let narrow_expr e =
            (* Position-independent rewrite: a field provably beyond the
               producer's width is constant zero of the same width.  The
               leftmost atom additionally allows layout changes: dropping a
               zero field outright, trimming the high bound, or — when the
               field covers the whole producer — eliding the mask into a
               plain (filling) reference, which is the cheap case for every
               backend. *)
            let rewrite_at ~leftmost ~rest atom =
              match atom with
              | Expr.Ref { name; field } -> (
                  match (field_bounds field, bw name) with
                  | Some (lo, hi), Some w ->
                      if w <= lo then
                        if leftmost && rest then begin
                          changed := true;
                          incr narrowed;
                          None (* drop: contributes nothing above *)
                        end
                        else begin
                          changed := true;
                          incr narrowed;
                          Some (Expr.num_w 0 ~width:(hi - lo + 1))
                        end
                      else if leftmost && lo = 0 && w <= hi + 1 && hi < Bits.word_bits - 1
                      then begin
                        (* mask elision: value < 2^w <= 2^(hi+1) *)
                        changed := true;
                        incr narrowed;
                        Some (Expr.ref_ name)
                      end
                      else if leftmost && hi > w - 1 then begin
                        changed := true;
                        incr narrowed;
                        Some (Expr.ref_range name lo (w - 1))
                      end
                      else Some atom
                  | _ -> Some atom)
              | _ -> Some atom
            in
            match e with
            | [] -> e
            | leftmost :: rest ->
                let rest' =
                  List.filter_map (rewrite_at ~leftmost:false ~rest:false) rest
                in
                let head =
                  rewrite_at ~leftmost:true ~rest:(rest' <> []) leftmost
                in
                let e' =
                  match head with Some a -> a :: rest' | None -> rest'
                in
                if e' == e then e else fuse_expr e'
          in
          let narrow_component (c : Component.t) =
            match c.Component.kind with
            | Component.Memory { addr; data; op; cells; init } ->
                {
                  c with
                  Component.kind =
                    Component.Memory
                      {
                        addr = narrow_expr addr;
                        data = narrow_expr data;
                        op = narrow_expr op;
                        cells;
                        init;
                      };
                }
            | _ when is_opaque c.Component.name -> c
            | Component.Alu { fn; left; right } ->
                {
                  c with
                  Component.kind =
                    Component.Alu
                      {
                        fn = narrow_expr fn;
                        left = narrow_expr left;
                        right = narrow_expr right;
                      };
                }
            | Component.Selector { select; cases } ->
                let select = narrow_expr select in
                let cases = Array.map narrow_expr cases in
                let cases =
                  match expr_ubound ~bw select with
                  | Some bound when bound + 1 < Array.length cases ->
                      (* Unreachable cases: the select provably stays below
                         the truncated length, so the (absence of an)
                         overrun error is preserved. *)
                      changed := true;
                      incr narrowed;
                      Array.sub cases 0 (bound + 1)
                  | _ -> cases
                in
                { c with Component.kind = Component.Selector { select; cases } }
          in
          (List.map narrow_component components, !changed)
        in
        (* Widths only shrink under these rewrites, so the loop reaches a
           fixpoint; the cap is a safety net. *)
        let rec fix components rounds =
          if rounds = 0 then components
          else
            let components', changed = sweep components in
            if changed then fix components' (rounds - 1) else components'
        in
        fix components 32
      end
    in
    (* --- dce: stub components no observable path can reach ------------ *)
    let bw_final = make_bounded_width (current_spec components) tainted in
    let components, dead =
      if not (has Dce) then (components, [])
      else begin
        let by_name = Hashtbl.create 64 in
        List.iter
          (fun (c : Component.t) -> Hashtbl.replace by_name c.Component.name c)
          components;
        let live = Hashtbl.create 64 in
        let queue = Queue.create () in
        let mark n =
          if (not (Hashtbl.mem live n)) && Hashtbl.mem by_name n then begin
            Hashtbl.replace live n ();
            Queue.add n queue
          end
        in
        (* Roots: state and I/O (memories), everything the trace prints,
           fault targets, and any component whose own evaluation might
           raise (its error — and therefore its input values — is
           observable even if its output is not). *)
        List.iter
          (fun (c : Component.t) ->
            let n = c.Component.name in
            if is_opaque n || not (never_errors ~bw:bw_final c) then mark n)
          components;
        while not (Queue.is_empty queue) do
          let n = Queue.pop queue in
          match Hashtbl.find_opt by_name n with
          | Some c -> List.iter mark (input_names c)
          | None -> ()
        done;
        let dead = ref [] in
        let components =
          List.map
            (fun (c : Component.t) ->
              let n = c.Component.name in
              if
                Hashtbl.mem live n || is_opaque n
                || Component.is_memory c
              then c
              else begin
                dead := n :: !dead;
                incr stubbed;
                { c with Component.kind = stub_kind }
              end)
            components
        in
        (components, List.rev !dead)
      end
    in
    (* --- rebuild the analysis (order, memories) ----------------------- *)
    let by_name = Hashtbl.create 64 in
    List.iter
      (fun (c : Component.t) -> Hashtbl.replace by_name c.Component.name c)
      components;
    let find n = Hashtbl.find by_name n in
    let base_order =
      List.map (fun (c : Component.t) -> find c.Component.name) analysis.Analysis.order
    in
    (* --- schedule: cost-driven level-major reordering ----------------- *)
    let comb_names = Hashtbl.create 64 in
    List.iter
      (fun (c : Component.t) -> Hashtbl.replace comb_names c.Component.name ())
      base_order;
    let order, scheduled =
      if not (has Schedule) then (base_order, false)
      else if
        (* Reordering is only observation-safe when no combinational
           component can raise: otherwise which partial state an error
           leaves behind depends on the order. *)
        not (List.for_all (never_errors ~bw:bw_final) base_order)
      then (base_order, false)
      else begin
        let cost_tbl = Hashtbl.create 16 in
        List.iter (fun (n, c) -> Hashtbl.replace cost_tbl n c) costs;
        let cost (c : Component.t) =
          match Hashtbl.find_opt cost_tbl c.Component.name with
          | Some f -> f
          | None ->
              float_of_int
                (List.fold_left
                   (fun acc e -> acc + List.length e)
                   0
                   (Component.inputs c))
        in
        (* [base_order] is topological, so one forward pass computes the
           dependency depth of every component. *)
        let depth = Hashtbl.create 64 in
        List.iter
          (fun (c : Component.t) ->
            let d =
              List.fold_left
                (fun acc n ->
                  match Hashtbl.find_opt depth n with
                  | Some d when Hashtbl.mem comb_names n -> max acc (d + 1)
                  | _ -> acc)
                0 (input_names c)
            in
            Hashtbl.replace depth c.Component.name d)
          base_order;
        let indexed =
          List.mapi
            (fun i (c : Component.t) ->
              (Hashtbl.find depth c.Component.name, -.cost c, i, c))
            base_order
        in
        let sorted =
          List.sort
            (fun (d1, c1, i1, _) (d2, c2, i2, _) ->
              compare (d1, c1, i1) (d2, c2, i2))
            indexed
        in
        (List.map (fun (_, _, _, c) -> c) sorted, true)
      end
    in
    (* --- planted miscompile: stale reads across the order boundary ---- *)
    let order =
      if skew && List.length order >= 2 then List.rev order else order
    in
    let memories =
      List.filter (fun (c : Component.t) -> Component.is_memory c) components
    in
    let analysis' =
      {
        Analysis.spec = { spec with Spec.components = components };
        order;
        memories;
        warnings = analysis.Analysis.warnings;
      }
    in
    {
      analysis = analysis';
      dead;
      stats =
        {
          folded = !folded;
          rewired = !rewired;
          stubbed = !stubbed;
          fused = !fused;
          narrowed = !narrowed;
          scheduled;
        };
    }
  end

let run ?level ?passes ?keep ?costs analysis =
  (run_result ?level ?passes ?keep ?costs analysis).analysis
