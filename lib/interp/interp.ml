open Asim_core
open Asim_sim

(* ASIM "reads the specification into tables, and produces a simulation run
   by interpreting the symbols in the table" (§3.1).  Faithfully, then: the
   tables below hold each expression as its source *string*; every
   evaluation re-scans that string — classifying atoms, converting numbers
   ([str2num]), resolving component names by linear search through the
   symbol table ([findname] in Appendix C) — exactly the per-cycle work the
   ASIM II compiler eliminates.  This engine is the Figure 5.1 baseline. *)

type symbol = { sym_name : string; mutable value : int }

type memory_state = {
  m_name : string;
  m_slot : int;  (** spec-declaration-order slot, for profiling *)
  m_symbol : symbol;  (** registered output (the temporary) *)
  addr_s : string;
  data_s : string;
  op_s : string;
  cells : int array;
  mutable addr_snapshot : int;
  mutable op_snapshot : int;
}

type table_entry =
  | T_alu of { t_name : string; t_slot : int; t_symbol : symbol; fn_s : string; left_s : string; right_s : string }
  | T_selector of { t_name : string; t_slot : int; t_symbol : symbol; select_s : string; case_s : string array }

type state = {
  analysis : Asim_analysis.Analysis.t;
  config : Machine.config;
  stats : Stats.t;
  symbols : symbol list;  (** the name table; looked up linearly *)
  entries : table_entry list;  (** combinational, in dependency order *)
  memories : memory_state list;  (** in declaration order *)
  traced : string list;
  has_faults : bool;
  prof : Asim_prof.Prof.t option;
  mutable cycle : int;
}

(* --- the symbol interpreter ------------------------------------------------ *)

let find_symbol st name =
  let rec go = function
    | [] -> Error.failf Error.Runtime "Component <%s> not found." name
    | sym :: rest -> if String.equal sym.sym_name name then sym else go rest
  in
  go st.symbols

let read_value st name = (find_symbol st name).value


(* Evaluate one comma-separated piece placed at bit position [numbits];
   returns the contribution and the new position. *)
let eval_atom st piece numbits =
  let len = String.length piece in
  if len = 0 then Error.failf Error.Runtime "Malformed expression %s." piece
  else if piece.[0] = '#' then begin
    let v = ref 0 in
    for i = 1 to len - 1 do
      v := (!v * 2) + if piece.[i] = '1' then 1 else 0
    done;
    (!v lsl numbits, numbits + len - 1)
  end
  else if Number.is_number_start piece.[0] then begin
    match String.index_opt piece '.' with
    | None -> (Number.parse_value piece lsl numbits, Bits.word_bits)
    | Some dot ->
        let v = Number.parse_value (String.sub piece 0 dot) in
        let w = Number.parse_value (String.sub piece (dot + 1) (len - dot - 1)) in
        ((v land Bits.ones w) lsl numbits, numbits + w)
  end
  else begin
    let name_end =
      match String.index_opt piece '.' with Some i -> i | None -> len
    in
    let v = read_value st (String.sub piece 0 name_end) in
    if name_end = len then (v lsl numbits, Bits.word_bits)
    else
      let rest = String.sub piece (name_end + 1) (len - name_end - 1) in
      let lo, hi =
        match String.index_opt rest '.' with
        | None ->
            let f = Number.parse_value rest in
            (f, f)
        | Some dot ->
            ( Number.parse_value (String.sub rest 0 dot),
              Number.parse_value
                (String.sub rest (dot + 1) (String.length rest - dot - 1)) )
      in
      let masked = v land Bits.field_mask ~lo ~hi in
      let shifted =
        if numbits >= lo then masked lsl (numbits - lo) else masked lsr (lo - numbits)
      in
      (shifted, numbits + (hi - lo + 1))
  end

let eval_symbols st expr_s =
  let pieces = String.split_on_char ',' expr_s in
  let rec go acc numbits = function
    | [] -> acc
    | piece :: rest ->
        let v, numbits = eval_atom st piece numbits in
        go (acc + v) numbits rest
  in
  go 0 0 (List.rev pieces)

(* --- cycle execution --------------------------------------------------------- *)

let fault st slot name value =
  if st.has_faults then begin
    let v =
      Fault.apply st.config.Machine.faults ~cycle:st.cycle ~component:name value
    in
    (match st.prof with
    | Some p when v <> value ->
        p.Asim_prof.Prof.faults.(slot) <- p.Asim_prof.Prof.faults.(slot) + 1
    | _ -> ());
    v
  end
  else value

let count_eval st slot =
  match st.prof with
  | None -> ()
  | Some p -> p.Asim_prof.Prof.evals.(slot) <- p.Asim_prof.Prof.evals.(slot) + 1

let eval_entry st = function
  | T_alu { t_name; t_slot; t_symbol; fn_s; left_s; right_s } ->
      let v =
        Component.apply_alu_code (eval_symbols st fn_s)
          ~left:(eval_symbols st left_s) ~right:(eval_symbols st right_s)
      in
      count_eval st t_slot;
      t_symbol.value <- fault st t_slot t_name v
  | T_selector { t_name; t_slot; t_symbol; select_s; case_s } ->
      let index = eval_symbols st select_s in
      if index < 0 || index >= Array.length case_s then
        Machine.selector_out_of_range ~component:t_name ~cycle:st.cycle ~index
          ~cases:(Array.length case_s)
      else begin
        count_eval st t_slot;
        t_symbol.value <- fault st t_slot t_name (eval_symbols st case_s.(index))
      end

let update_memory st ms =
  let address = ms.addr_snapshot in
  let op = ms.op_snapshot in
  let check_address () =
    if address < 0 || address >= Array.length ms.cells then
      Machine.address_out_of_range ~component:ms.m_name ~cycle:st.cycle ~address
        ~cells:(Array.length ms.cells)
  in
  let kind = Component.memory_op_of_code op in
  (match kind with
  | Component.Op_read ->
      check_address ();
      ms.m_symbol.value <- ms.cells.(address)
  | Component.Op_write ->
      check_address ();
      (* Data is evaluated live, after earlier memories latched (§4.3). *)
      ms.m_symbol.value <- eval_symbols st ms.data_s;
      ms.cells.(address) <- ms.m_symbol.value
  | Component.Op_input -> ms.m_symbol.value <- st.config.Machine.io.Io.input ~address
  | Component.Op_output ->
      ms.m_symbol.value <- eval_symbols st ms.data_s;
      st.config.Machine.io.Io.output ~address ~data:ms.m_symbol.value);
  Stats.count_op st.stats ms.m_name kind;
  if Component.traces_writes op then
    st.config.Machine.trace
      (Trace.write_line ~memory:ms.m_name ~address ~data:ms.m_symbol.value);
  if Component.traces_reads op then
    st.config.Machine.trace
      (Trace.read_line ~memory:ms.m_name ~address ~data:ms.m_symbol.value);
  (* Faults perturb the registered output as seen from the next cycle on;
     the trace shows what the healthy cell transferred. *)
  ms.m_symbol.value <- fault st ms.m_slot ms.m_name ms.m_symbol.value

let step st () =
  (* 1. Combinational components in dependency order. *)
  List.iter (eval_entry st) st.entries;
  (* 2. Trace line: memories still show their pre-update temporaries. *)
  if st.traced <> [] || st.config.Machine.trace != Trace.null_sink then
    st.config.Machine.trace
      (Trace.cycle_line ~cycle:st.cycle
         (List.map (fun name -> (name, read_value st name)) st.traced));
  (* 3. Snapshot every memory's address and operation. *)
  List.iter
    (fun ms ->
      ms.addr_snapshot <- eval_symbols st ms.addr_s;
      ms.op_snapshot <- eval_symbols st ms.op_s)
    st.memories;
  (* 4. Latch memories in declaration order. *)
  List.iter (update_memory st) st.memories;
  (match st.prof with
  | None -> ()
  | Some p -> p.Asim_prof.Prof.cycles <- p.Asim_prof.Prof.cycles + 1);
  st.cycle <- st.cycle + 1;
  Stats.bump_cycle st.stats

(* --- construction ------------------------------------------------------------- *)

let create ?(config = Machine.default_config) ?prof
    (analysis : Asim_analysis.Analysis.t) =
  let spec = analysis.Asim_analysis.Analysis.spec in
  let symbol_of (c : Component.t) = { sym_name = c.name; value = 0 } in
  let symbols = List.map symbol_of spec.Spec.components in
  let symbol name = List.find (fun s -> String.equal s.sym_name name) symbols in
  (* Slot = position in declaration order, the same layout every profiled
     engine indexes its counter arrays by. *)
  let slots = Hashtbl.create 64 in
  List.iteri
    (fun i (c : Component.t) -> Hashtbl.replace slots c.name i)
    spec.Spec.components;
  let slot name = Hashtbl.find slots name in
  let entries =
    List.map
      (fun (c : Component.t) ->
        match c.kind with
        | Component.Alu { fn; left; right } ->
            T_alu
              {
                t_name = c.name;
                t_slot = slot c.name;
                t_symbol = symbol c.name;
                fn_s = Expr.to_string fn;
                left_s = Expr.to_string left;
                right_s = Expr.to_string right;
              }
        | Component.Selector { select; cases } ->
            T_selector
              {
                t_name = c.name;
                t_slot = slot c.name;
                t_symbol = symbol c.name;
                select_s = Expr.to_string select;
                case_s = Array.map Expr.to_string cases;
              }
        | Component.Memory _ -> assert false)
      analysis.Asim_analysis.Analysis.order
  in
  let memories =
    List.map
      (fun (c : Component.t) ->
        match c.kind with
        | Component.Memory m ->
            {
              m_name = c.name;
              m_slot = slot c.name;
              m_symbol = symbol c.name;
              addr_s = Expr.to_string m.addr;
              data_s = Expr.to_string m.data;
              op_s = Expr.to_string m.op;
              cells =
                (match m.init with
                | Some values -> Array.copy values
                | None -> Array.make m.cells 0);
              addr_snapshot = 0;
              op_snapshot = 0;
            }
        | Component.Alu _ | Component.Selector _ -> assert false)
      analysis.Asim_analysis.Analysis.memories
  in
  let config =
    match prof with
    | None -> config
    | Some p ->
        { config with Machine.io = Asim_prof.Prof.instrument_io p config.Machine.io }
  in
  let st =
    {
      analysis;
      config;
      stats = Stats.create ~memories:(List.map (fun ms -> ms.m_name) memories);
      symbols;
      entries;
      memories;
      traced = Spec.traced_names spec;
      has_faults = config.Machine.faults <> [];
      prof;
      cycle = 0;
    }
  in
  (match prof with
  | None -> ()
  | Some p ->
      Asim_prof.Prof.attach_stats p st.stats;
      p.Asim_prof.Prof.engine <- "interpreter");
  let memory_by_name name =
    match List.find_opt (fun ms -> String.equal ms.m_name name) st.memories with
    | Some ms -> ms
    | None -> Error.failf Error.Runtime "Component <%s> is not a memory." name
  in
  let read_cell name index =
    let ms = memory_by_name name in
    if index < 0 || index >= Array.length ms.cells then
      invalid_arg "Interp: cell index out of range"
    else ms.cells.(index)
  in
  let write_cell name index value =
    let ms = memory_by_name name in
    if index < 0 || index >= Array.length ms.cells then
      invalid_arg "Interp: cell index out of range"
    else ms.cells.(index) <- value
  in
  {
    Machine.analysis;
    step = step st;
    read = read_value st;
    read_cell;
    write_cell;
    current_cycle = (fun () -> st.cycle);
    stats = st.stats;
  }

let of_spec ?config spec = create ?config (Asim_analysis.Analysis.analyze spec)
