(** The ASIM-style interpreter — the paper's baseline.

    ASIM "reads the specification into tables, and produces a simulation run
    by interpreting the symbols in the table" (§3.1).  Accordingly this
    engine keeps every expression as its source string and re-interprets the
    symbols on each evaluation: atoms are re-classified, numbers re-converted
    ([str2num]), and component names resolved by linear search through the
    symbol table ([findname]) — once per reference, every cycle.  That
    per-cycle symbol handling is precisely what the ASIM II compiler
    removes, and is what Figure 5.1 measures.  Observable behaviour (trace
    lines, I/O events, statistics) is identical to [Asim_compile]. *)

val create :
  ?config:Asim_sim.Machine.config ->
  ?prof:Asim_prof.Prof.t ->
  Asim_analysis.Analysis.t ->
  Asim_sim.Machine.t
(** Build an interpreted machine.  Default config is
    {!Asim_sim.Machine.default_config}.  [prof] attaches an
    {!Asim_prof.Prof} profile (per-component evaluation and fault
    counters; memory traffic is finalized from the machine statistics).
    This engine re-evaluates every combinational component every cycle, so
    a profiled interpreter run is the independent recount the flat
    kernel's counters are cross-checked against. *)

val of_spec : ?config:Asim_sim.Machine.config -> Asim_core.Spec.t -> Asim_sim.Machine.t
(** [create] after [Asim_analysis.Analysis.analyze]. *)
