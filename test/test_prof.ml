(* The simulated-machine profiler: cross-engine count identity, the
   activity-schedule accounting invariant, memory counters against the
   engine statistics, the report surfaces, and the profiled hot path's
   allocation discipline. *)

open Asim

let quiet = Machine.quiet_config

let sieve_analysis () =
  Analysis.analyze
    (Asim_stackm.Microcode.spec ~program:Asim_stackm.Demos.sieve_reassembled ())

let cycles = Asim_stackm.Programs.sieve_cycles

(* Build a machine with a fresh profile attached, run the sieve to
   completion, finalize, and hand back both. *)
let profiled build =
  let analysis = sieve_analysis () in
  let prof = Prof.create analysis in
  let m = build prof analysis in
  Machine.run m ~cycles;
  Prof.finalize prof;
  (prof, m)

(* The acceptance identity: under full re-evaluation every engine
   considers every combinational component exactly once per cycle, so the
   flat kernel's per-slot evaluation counts must equal an independent
   interpreter recount of the same run — and the memory traffic must
   agree too, since the simulations are semantically identical. *)
let test_cross_engine_identity () =
  let flat, _ =
    profiled (fun prof a ->
        Flat.create ~config:quiet ~schedule:Flat.Full ~prof a)
  in
  let interp, _ = profiled (fun prof a -> Interp.create ~config:quiet ~prof a) in
  let compiled, _ =
    profiled (fun prof a -> Compile.create ~config:quiet ~prof a)
  in
  Alcotest.(check (array int))
    "flat(full) evals == interp recount" interp.Prof.evals flat.Prof.evals;
  Alcotest.(check (array int))
    "compiled evals == interp recount" interp.Prof.evals compiled.Prof.evals;
  Alcotest.(check (array int)) "reads agree" interp.Prof.reads flat.Prof.reads;
  Alcotest.(check (array int))
    "writes agree" interp.Prof.writes flat.Prof.writes;
  Alcotest.(check int) "cycles recorded" cycles flat.Prof.cycles;
  (* and the run did real work: some component evaluated every cycle *)
  Alcotest.(check bool) "hot component exists" true
    (Array.exists (fun n -> n = cycles) flat.Prof.evals)

(* Under activity scheduling every combinational slot is considered
   exactly once per cycle — evaluated or skipped — so evals + skips must
   equal the cycle count, and the schedule must actually skip something
   on this workload (the flat kernel's whole premise). *)
let test_activity_accounting () =
  let prof, _ =
    profiled (fun prof a ->
        Flat.create ~config:quiet ~schedule:Flat.Activity ~prof a)
  in
  Array.iteri
    (fun slot kind ->
      if kind <> 'M' then
        Alcotest.(check int)
          (Printf.sprintf "evals+skips=cycles for %s" prof.Prof.names.(slot))
          cycles
          (prof.Prof.evals.(slot) + prof.Prof.skips.(slot)))
    prof.Prof.kinds;
  Alcotest.(check bool) "something was skipped" true
    (Array.exists (fun s -> s > 0) prof.Prof.skips)

(* The per-memory counters are copied from the engine's Stats at finalize
   time; both views of the same run must agree exactly. *)
let test_memory_counters_match_stats () =
  let prof, m =
    profiled (fun prof a -> Flat.create ~config:quiet ~prof a)
  in
  let some_traffic = ref false in
  Array.iteri
    (fun slot kind ->
      if kind = 'M' then begin
        let name = prof.Prof.names.(slot) in
        let c = Stats.memory m.Machine.stats name in
        Alcotest.(check int) (name ^ " reads") c.Stats.reads
          prof.Prof.reads.(slot);
        Alcotest.(check int) (name ^ " writes") c.Stats.writes
          prof.Prof.writes.(slot);
        Alcotest.(check int) (name ^ " inputs") c.Stats.inputs
          prof.Prof.inputs.(slot);
        Alcotest.(check int) (name ^ " outputs") c.Stats.outputs
          prof.Prof.outputs.(slot);
        if c.Stats.reads + c.Stats.writes > 0 then some_traffic := true
      end)
    prof.Prof.kinds;
  Alcotest.(check bool) "the sieve touches memory" true !some_traffic

(* Report surfaces: the human report names the hottest component, the
   flame stacks parse as [frames count] lines, the registry export grows
   asim_prof_* families, the JSON document carries one object per
   component, and the sampled cycle profiler emits spans. *)
let test_report_surfaces () =
  let prof, _ =
    profiled (fun prof a -> Flat.create ~config:quiet ~prof a)
  in
  let report = Prof.report prof in
  Alcotest.(check bool) "report has header" true
    (String.length report > 0
    && String.sub report 0 8 = "profile:");
  (match Prof.hot ~top:1 prof with
  | [ hottest ] ->
      let contains needle hay =
        let n = String.length needle and h = String.length hay in
        let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool)
        ("report names " ^ hottest.Prof.r_name)
        true
        (contains hottest.Prof.r_name report)
  | rows -> Alcotest.failf "hot ~top:1 returned %d rows" (List.length rows));
  let flame = Prof.to_flame prof in
  String.split_on_char '\n' flame
  |> List.filter (fun l -> l <> "")
  |> List.iter (fun line ->
         match String.rindex_opt line ' ' with
         | None -> Alcotest.failf "flame line without count: %S" line
         | Some i -> (
             let count = String.sub line (i + 1) (String.length line - i - 1) in
             match int_of_string_opt count with
             | Some n when n >= 0 -> ()
             | _ -> Alcotest.failf "flame count not a number: %S" line));
  let reg = Asim_obs.Registry.create () in
  Prof.export prof ~spec:"testspec" reg;
  let text = Asim_obs.Registry.to_prometheus reg in
  Alcotest.(check bool) "asim_prof_* exported" true
    (let needle = "asim_prof_" in
     let n = String.length needle and h = String.length text in
     let rec at i = i + n <= h && (String.sub text i n = needle || at (i + 1)) in
     at 0);
  let json = Asim_batch.Runner.prof_to_json prof in
  (match Asim_batch.Json.member "components" json with
  | Some comps -> (
      match Asim_batch.Json.to_list comps with
      | Some l ->
          Alcotest.(check int) "one JSON object per component"
            (Array.length prof.Prof.names)
            (List.length l)
      | None -> Alcotest.fail "components is not a list")
  | None -> Alcotest.fail "profile JSON lacks components");
  (match Asim_batch.Json.(Option.bind (member "engine" json) to_string_opt) with
  | Some e -> Alcotest.(check string) "engine label" "flat" e
  | None -> Alcotest.fail "profile JSON lacks engine");
  let tr = Asim_obs.Tracer.create () in
  Prof.emit_spans prof tr;
  Alcotest.(check bool) "sampled spans emitted" true
    (Asim_obs.Tracer.event_count tr > 0
    && prof.Prof.sampled_cycles > 0)

(* The instrumented hot path is one int-array increment per evaluation:
   off the sampled cycles it must allocate nothing beyond test_flat's
   fixed allowance (a sampling period longer than the loop keeps the
   clock reads out of the window). *)
let test_profiled_step_zero_alloc () =
  let analysis = sieve_analysis () in
  let prof = Prof.create ~sample_every:1_000_000 analysis in
  let m = Flat.create ~config:quiet ~prof analysis in
  Machine.run m ~cycles:64;
  let before = Gc.minor_words () in
  for _ = 1 to 2000 do
    m.Machine.step ()
  done;
  let delta = Gc.minor_words () -. before in
  if delta > 256.0 then
    Alcotest.failf "profiled flat step allocated %.0f minor words over 2000 cycles"
      delta

(* The native engine's generated plugin carries no counters; asking for a
   profiled native machine is a structured runtime error, and a profiled
   tiered machine pins itself to the instrumented flat kernel instead of
   swapping from under the counters. *)
let test_engine_dispatch () =
  let analysis = sieve_analysis () in
  let prof = Prof.create analysis in
  (match
     Asim.machine ~config:quiet ~engine:Asim.Native ~prof analysis
   with
  | (_ : Machine.t) -> Alcotest.fail "native accepted a profile"
  | exception Error.Error { phase = Error.Runtime; _ } -> ());
  let prof = Prof.create analysis in
  let m = Asim.machine ~config:quiet ~engine:Asim.TieredEngine ~prof analysis in
  Machine.run m ~cycles:100;
  Prof.finalize prof;
  Alcotest.(check string) "tiered pins to flat" "tiered(flat-pinned)"
    prof.Prof.engine;
  Alcotest.(check int) "tiered counted its cycles" 100 prof.Prof.cycles

let () =
  Alcotest.run "prof"
    [
      ( "counters",
        [
          Alcotest.test_case "cross-engine identity" `Quick
            test_cross_engine_identity;
          Alcotest.test_case "activity accounting" `Quick
            test_activity_accounting;
          Alcotest.test_case "memory counters match stats" `Quick
            test_memory_counters_match_stats;
        ] );
      ( "reports",
        [ Alcotest.test_case "report surfaces" `Quick test_report_surfaces ] );
      ( "discipline",
        [
          Alcotest.test_case "profiled step zero-alloc" `Quick
            test_profiled_step_zero_alloc;
          Alcotest.test_case "engine dispatch" `Quick test_engine_dispatch;
        ] );
    ]
