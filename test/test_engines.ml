(* Cycle semantics of every engine: registers delay one cycle, memories
   snapshot address/op before latching, trace output matches the generated-
   Pascal format, runtime errors fire, faults apply.  The engine list comes
   from the fuzz oracle (Asim_fuzz.Oracle.all), so any engine added to the
   differential-fuzzing set automatically inherits these semantic tests —
   including the lowered-IR evaluator that stands in for the generated
   simulators. *)

open Asim

let builders =
  List.map
    (fun engine ->
      ( Asim_fuzz.Oracle.engine_to_string engine,
        fun config analysis -> Asim_fuzz.Oracle.build engine ~config analysis ))
    Asim_fuzz.Oracle.all

let machines ?(config = Machine.quiet_config) source =
  let analysis = load_string source in
  List.map (fun (label, build) -> (label, build config analysis)) builders

let each ?config source f =
  List.iter (fun (label, m) -> f label m) (machines ?config source)

let counter = "#c\ncount* inc .\nA inc 4 count 1\nM count 0 inc 1 1\n.\n"

let test_register_delay () =
  each counter (fun label m ->
      (* Before any step everything is zero. *)
      Alcotest.(check int) (label ^ " initial") 0 (m.Machine.read "count");
      m.Machine.step ();
      (* After one cycle the register latched inc = 0+1, but its *output*
         (the temp) shows the value written during that cycle. *)
      Alcotest.(check int) (label ^ " after 1") 1 (m.Machine.read "count");
      Machine.run m ~cycles:9;
      Alcotest.(check int) (label ^ " after 10") 10 (m.Machine.read "count");
      Alcotest.(check int) (label ^ " cell") 10 (m.Machine.read_cell "count" 0);
      Alcotest.(check int) (label ^ " cycle count") 10 (m.Machine.current_cycle ()))

let test_trace_format () =
  let reference = ref None in
  List.iter
    (fun (label, build) ->
      let analysis = load_string counter in
      let buf = Buffer.create 256 in
      let config = { Machine.quiet_config with trace = Trace.buffer_sink buf } in
      let m : Machine.t = build config analysis in
      Machine.run m ~cycles:3;
      let got = Buffer.contents buf in
      Alcotest.(check string)
        (label ^ " trace")
        "Cycle   0 count= 0\nCycle   1 count= 1\nCycle   2 count= 2\n" got;
      (match !reference with
      | None -> reference := Some got
      | Some r -> Alcotest.(check string) (label ^ " agrees") r got))
    builders

let test_selector_out_of_range () =
  let source = "#c\nsel count inc .\nA inc 4 count 1\nS sel count 10 20\nM count 0 inc 1 1\n.\n" in
  each source (fun label m ->
      (* count reaches 2 after two cycles; the 2-case selector then traps. *)
      match Machine.run m ~cycles:5 with
      | exception Error.Error { phase = Error.Runtime; _ } -> ()
      | () -> Alcotest.failf "%s: expected selector range error" label)

let test_memory_address_out_of_range () =
  let source = "#c\nm inc .\nA inc 4 m 1\nM m inc inc 1 2\n.\n" in
  each source (fun label m ->
      match Machine.run m ~cycles:8 with
      | exception Error.Error { phase = Error.Runtime; _ } -> ()
      | () -> Alcotest.failf "%s: expected address range error" label)

(* Memory operation semantics: a 4-cell memory cycling read/write. *)
let test_memory_write_then_read () =
  (* addr alternates 0/1 via counter bit 0; op = write always; data = counter. *)
  let source =
    "#c\nc inc m .\nA inc 4 c 1\nM m c.0 c 1 2\nM c 0 inc 1 1\n.\n"
  in
  each source (fun label m ->
      Machine.run m ~cycles:4;
      (* cycle k writes c(temp)=k at address k land 1 *)
      Alcotest.(check int) (label ^ " cell0") 2 (m.Machine.read_cell "m" 0);
      Alcotest.(check int) (label ^ " cell1") 3 (m.Machine.read_cell "m" 1))

let test_memory_mapped_io () =
  (* op=3: outputs data each cycle at address 2. *)
  let source = "#c\nc inc out .\nA inc 4 c 1\nM out 2 c 3 1\nM c 0 inc 1 1\n.\n" in
  List.iter
    (fun (label, build) ->
      let analysis = load_string source in
      let io, events = Io.recording () in
      let config = { Machine.quiet_config with io } in
      let m : Machine.t = build config analysis in
      Machine.run m ~cycles:3;
      let outs =
        List.filter_map
          (function Io.Output { address; data } -> Some (address, data) | _ -> None)
          (events ())
      in
      Alcotest.(check (list (pair int int)))
        (label ^ " outputs")
        [ (2, 0); (2, 1); (2, 2) ]
        outs)
    builders

let test_memory_input () =
  let source = "#c\nc inc m .\nA inc 4 c 1\nM m 1 0 2 1\nM c 0 inc 1 1\n.\n" in
  List.iter
    (fun (label, build) ->
      let analysis = load_string source in
      let io, events = Io.recording ~feed:[ 7; 8; 9 ] () in
      let config = { Machine.quiet_config with io } in
      let m : Machine.t = build config analysis in
      Machine.run m ~cycles:2;
      Alcotest.(check int) (label ^ " latched input") 8 (m.Machine.read "m");
      Alcotest.(check int) (label ^ " events") 2 (List.length (events ())))
    builders

let test_write_trace_lines () =
  (* op 5 = write + trace-writes. *)
  let source = "#c\nc inc m .\nA inc 4 c 1\nM m 0 c 5 1\nM c 0 inc 1 1\n.\n" in
  List.iter
    (fun (label, build) ->
      let analysis = load_string source in
      let buf = Buffer.create 256 in
      let config = { Machine.quiet_config with trace = Trace.buffer_sink buf } in
      let m : Machine.t = build config analysis in
      Machine.run m ~cycles:2;
      Alcotest.(check string)
        (label ^ " write trace")
        "Cycle   0\nWrite to m at 0: 0\nCycle   1\nWrite to m at 0: 1\n"
        (Buffer.contents buf))
    builders

let test_read_trace_runtime_condition () =
  (* op = c.0.3: alternates 0 (read, no trace) and 8 (read + trace). *)
  let source = "#c\nc inc m .\nA inc 4 c 8\nM m 0 0 c.0.3 1\nM c 0 inc 1 1\n.\n" in
  List.iter
    (fun (label, build) ->
      let analysis = load_string source in
      let buf = Buffer.create 256 in
      let config = { Machine.quiet_config with trace = Trace.buffer_sink buf } in
      let m : Machine.t = build config analysis in
      Machine.run m ~cycles:2;
      Alcotest.(check string)
        (label ^ " read trace on cycle 1 only")
        "Cycle   0\nCycle   1\nRead from m at 0: 0\n"
        (Buffer.contents buf))
    builders

let test_stats () =
  each counter (fun label m ->
      Machine.run m ~cycles:7;
      Alcotest.(check int) (label ^ " cycles") 7 (Stats.cycles m.Machine.stats);
      let c = Stats.memory m.Machine.stats "count" in
      Alcotest.(check int) (label ^ " writes") 7 c.Stats.writes;
      Alcotest.(check int) (label ^ " reads") 0 c.Stats.reads;
      Alcotest.(check int) (label ^ " total") 7 (Stats.total_accesses m.Machine.stats))

let test_alu_functions () =
  (* One ALU per function over register inputs; checks dologic end to end. *)
  let source =
    "#c\na b f0 f1 f2 f3 f4 f5 f6 f7 f8 f9 f10 f11 f12 f13 .\n\
     A f0 0 a b\nA f1 1 a b\nA f2 2 a b\nA f3 3 a b\nA f4 4 a b\nA f5 5 a b\n\
     A f6 6 a b\nA f7 7 a b\nA f8 8 a b\nA f9 9 a b\nA f10 10 a b\nA f11 11 a b\n\
     A f12 12 a b\nA f13 13 a b\n\
     M a 0 12 1 1\nM b 0 5 1 1\n.\n"
  in
  each source (fun label m ->
      Machine.run m ~cycles:2;
      (* a=12, b=5 after the first cycle *)
      let f n = m.Machine.read (Printf.sprintf "f%d" n) in
      let mask = Asim_core.Bits.mask in
      List.iter
        (fun (fn, expected) ->
          Alcotest.(check int) (Printf.sprintf "%s f%d" label fn) expected (f fn))
        [
          (0, 0); (1, 5); (2, 12); (3, mask - 12); (4, 17); (5, 7); (6, 12 * 32);
          (7, 60); (8, 4); (9, 13); (10, 9); (11, 0); (12, 0); (13, 0);
        ])

let test_comparison_functions () =
  let source = "#c\neq lt a .\nA eq 12 a 3 \nA lt 13 a 4\nM a 0 3 1 1\n.\n" in
  each source (fun label m ->
      Machine.run m ~cycles:2;
      Alcotest.(check int) (label ^ " eq") 1 (m.Machine.read "eq");
      Alcotest.(check int) (label ^ " lt") 1 (m.Machine.read "lt"))

let test_dynamic_alu_function () =
  (* The ALU function itself computed by the circuit: f = a.0.3 cycles
     through dologic codes. *)
  let source = "#c\ninc a f .\nA inc 4 a 1\nA f a.0.3 6 3\nM a 0 inc 1 1\n.\n" in
  each source (fun label m ->
      m.Machine.step ();
      (* a=1 -> function 1 -> right = 3 *)
      m.Machine.step ();
      Alcotest.(check int) (label ^ " fn1") 3 (m.Machine.read "f");
      m.Machine.step ();
      (* a=2 -> pass left *)
      Alcotest.(check int) (label ^ " fn2") 6 (m.Machine.read "f");
      m.Machine.step ();
      (* a=3 -> NOT left *)
      Alcotest.(check int)
        (label ^ " fn3")
        (Asim_core.Bits.mask - 6)
        (m.Machine.read "f"))

let test_exotic_literals () =
  (* Field indices written in binary/hex, summed numbers, powers of two:
     every engine must read them identically. *)
  let source =
    "#x\nc inc a b s m .\n\
     A inc 4 c 1\n\
     A a 4 c.%10.$3 ^2\n\
     A b 8 c.0.7 $F+%10000\n\
     S s c.%0 a.0.3 b.0.3\n\
     M m 0 a 1 1\n\
     M c 0 inc 1 1\n\
     .\n"
  in
  let run build =
    let analysis = load_string source in
    let m : Machine.t = build analysis in
    Machine.run m ~cycles:12;
    List.map m.Machine.read [ "a"; "b"; "s"; "m" ]
  in
  let interp = run (fun a -> Interp.create ~config:Machine.quiet_config a) in
  List.iter
    (fun (label, build) ->
      Alcotest.(check (list int))
        (label ^ " agrees on exotic literals")
        interp
        (run (fun a -> build Machine.quiet_config a)))
    builders;
  (* sanity: the last evaluation sees c = 11: a = bits 2..3 of 11 (= 2) + 4;
     b = 11 land 31; s = (bit 0 of 11 = 1) -> b.0.3; m latched a *)
  Alcotest.(check (list int)) "expected values" [ 6; 11; 11; 6 ] interp

let test_fault_injection_equivalence () =
  let run faults build =
    let analysis = load_string counter in
    let buf = Buffer.create 256 in
    let config =
      { Machine.quiet_config with trace = Trace.buffer_sink buf; faults }
    in
    let m : Machine.t = build config analysis in
    Machine.run m ~cycles:10;
    Buffer.contents buf
  in
  let faults =
    [
      Fault.stuck_at ~first_cycle:2 ~last_cycle:4 "inc" 0;
      Fault.flip_bit ~first_cycle:6 "count" 1;
    ]
  in
  let interp = run faults (fun config a -> Interp.create ~config a) in
  List.iter
    (fun (label, build) ->
      Alcotest.(check string) (label ^ " faulty trace agrees") interp (run faults build))
    builders;
  let healthy = run Fault.none (fun config a -> Interp.create ~config a) in
  Alcotest.(check bool) "fault changes the trace" true (interp <> healthy)

let test_stuck_at_fault_behaviour () =
  let analysis = load_string counter in
  let config =
    { Machine.quiet_config with faults = [ Fault.stuck_at "inc" 42 ] }
  in
  let m = Compile.create ~config analysis in
  Machine.run m ~cycles:2;
  Alcotest.(check int) "register latched the stuck value" 42 (m.Machine.read "count")

let test_run_until () =
  let analysis = load_string counter in
  let m = Compile.create ~config:Machine.quiet_config analysis in
  let steps =
    Machine.run_until m ~max_cycles:100 ~stop:(fun m -> m.Machine.read "count" >= 5)
  in
  Alcotest.(check int) "stopped at 5" 5 steps

let test_write_cell () =
  (* A 4-cell ROM scanned by a counter: poke a cell, see it stream out. *)
  let source = "#c\nc inc r .\nA inc 4 c 1\nM r c.0.1 0 0 4\nM c 0 inc 1 1\n.\n" in
  let analysis = load_string source in
  let m = Compile.create ~config:Machine.quiet_config analysis in
  m.Machine.write_cell "r" 2 55;
  Machine.run m ~cycles:3;
  Alcotest.(check int) "poked value streamed out" 55 (m.Machine.read "r");
  Alcotest.(check int) "read_cell sees it too" 55 (m.Machine.read_cell "r" 2)

let () =
  Alcotest.run "engines"
    [
      ( "semantics",
        [
          Alcotest.test_case "register delay" `Quick test_register_delay;
          Alcotest.test_case "trace format" `Quick test_trace_format;
          Alcotest.test_case "memory write/read" `Quick test_memory_write_then_read;
          Alcotest.test_case "memory-mapped output" `Quick test_memory_mapped_io;
          Alcotest.test_case "memory-mapped input" `Quick test_memory_input;
          Alcotest.test_case "write trace lines" `Quick test_write_trace_lines;
          Alcotest.test_case "runtime read trace" `Quick test_read_trace_runtime_condition;
          Alcotest.test_case "statistics" `Quick test_stats;
        ] );
      ( "alu",
        [
          Alcotest.test_case "all functions" `Quick test_alu_functions;
          Alcotest.test_case "comparisons" `Quick test_comparison_functions;
          Alcotest.test_case "dynamic function" `Quick test_dynamic_alu_function;
        ] );
      ( "errors",
        [
          Alcotest.test_case "selector range" `Quick test_selector_out_of_range;
          Alcotest.test_case "address range" `Quick test_memory_address_out_of_range;
        ] );
      ( "faults and control",
        [
          Alcotest.test_case "exotic literals" `Quick test_exotic_literals;
          Alcotest.test_case "fault equivalence" `Quick test_fault_injection_equivalence;
          Alcotest.test_case "stuck-at behaviour" `Quick test_stuck_at_fault_behaviour;
          Alcotest.test_case "run_until" `Quick test_run_until;
          Alcotest.test_case "write_cell" `Quick test_write_cell;
        ] );
    ]
