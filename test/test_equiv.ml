(* Engine equivalence, now driven by the asim_fuzz library: the random
   well-formed-spec generator, the multi-engine oracle and the shrinker live
   in lib/fuzz and are shared with the `asim fuzz` CLI; these properties are
   the in-tree consumers.

   For random well-formed specifications, the ASIM-style interpreter, the
   ASIM II closure compiler (with and without the §4.4 optimizations) and
   the lowered-IR evaluator must be observationally identical — same
   per-cycle traces, same I/O event streams, same final memory images, same
   statistics. *)

open Asim_core
module Gen = Asim_fuzz.Gen
module Oracle = Asim_fuzz.Oracle
module Shrink = Asim_fuzz.Shrink

let narrow = Gen.default_size

let wide = { narrow with Gen.wide = true }

(* A [Random.State.t -> 'a] function is a QCheck generator as-is. *)
let arbitrary_spec = QCheck.make ~print:Pretty.spec (Gen.spec narrow)

let arbitrary_spec_wide = QCheck.make ~print:Pretty.spec (Gen.spec wide)

(* The QCheck campaigns run the oracle on hundreds of distinct random
   specs; the native engine would pay a fresh compiler invocation for every
   one of them, and the tiered engine would launch the same compile in the
   background.  Both are excluded here and covered by their own
   differential tests (test_jit.ml, test_tiered.ml) and by test_flat's
   fixed-seed sweep through [Oracle.all]. *)
let fast_engines =
  List.filter (fun e -> e <> Oracle.Native && e <> Oracle.Tiered) Oracle.all

let no_divergence spec =
  match Oracle.check ~engines:fast_engines spec with
  | None -> true
  | Some d -> QCheck.Test.fail_reportf "%s" (Oracle.divergence_to_string d)

let equivalence_test =
  QCheck.Test.make ~name:"engines are observationally equivalent" ~count:300
    arbitrary_spec no_divergence

let wide_equivalence_test =
  QCheck.Test.make ~name:"engines agree on full-word expressions" ~count:200
    arbitrary_spec_wide no_divergence

(* The gate level must also agree, on width-masked values, for every spec it
   can represent (no update-order hazards). *)
let gate_equivalence_test =
  QCheck.Test.make ~name:"gate level matches RTL on random specs" ~count:150
    arbitrary_spec
    (fun spec ->
      let analysis = Asim_analysis.Analysis.analyze spec in
      let hazardous =
        List.exists
          (function Error.Memory_update_order _ -> true | _ -> false)
          analysis.Asim_analysis.Analysis.warnings
      in
      QCheck.assume (not hazardous);
      let feed = Oracle.default_feed in
      let rtl_io, rtl_events = Asim_sim.Io.recording ~feed () in
      let rtl =
        Asim_compile.Compile.create
          ~config:{ Asim_sim.Machine.quiet_config with io = rtl_io }
          analysis
      in
      let gate_io, gate_events = Asim_sim.Io.recording ~feed () in
      let gates = Asim_gates.Circuit.of_analysis ~io:gate_io analysis in
      let ok = ref true in
      for _ = 1 to 20 do
        Asim_sim.Machine.run rtl ~cycles:1;
        Asim_gates.Circuit.step gates;
        List.iter
          (fun (c : Component.t) ->
            let w = max 1 (min 31 (Asim_gates.Circuit.width gates c.name)) in
            let expected = rtl.Asim_sim.Machine.read c.name land Bits.ones w in
            if expected <> Asim_gates.Circuit.read gates c.name then ok := false)
          spec.Spec.components
      done;
      if !ok && rtl_events () = gate_events () then true
      else
        QCheck.Test.fail_reportf "gate level diverges on:@.%s" (Pretty.spec spec))

(* Determinism: observing the same engine twice gives the same observation. *)
let determinism_test =
  QCheck.Test.make ~name:"simulation is deterministic" ~count:100 arbitrary_spec
    (fun spec -> Oracle.observe Oracle.Compiled spec = Oracle.observe Oracle.Compiled spec)

(* The pretty-printed spec parses back to the same structure. *)
let roundtrip_structure_test =
  QCheck.Test.make ~name:"print/parse round-trip preserves structure" ~count:200
    arbitrary_spec
    (fun spec -> Asim_syntax.Parser.parse_string (Pretty.spec spec) = spec)

(* The pretty-printed spec parses back and still behaves identically. *)
let roundtrip_behaviour_test =
  QCheck.Test.make ~name:"print/parse round-trip preserves behaviour" ~count:100
    arbitrary_spec
    (fun spec ->
      let reparsed = Asim_syntax.Parser.parse_string (Pretty.spec spec) in
      Oracle.observe Oracle.Compiled spec = Oracle.observe Oracle.Compiled reparsed)

(* --- deterministic-seed properties (alcotest, no QCheck randomness) -------- *)

(* Every campaign spec pretty-prints and reparses to an equal spec, and
   regenerating the same (seed, index) yields byte-identical source. *)
let test_fixed_seed_roundtrip () =
  List.iter
    (fun size ->
      for seed = 0 to 4 do
        for index = 0 to 19 do
          let spec = Gen.spec_at size ~seed ~index in
          let again = Gen.spec_at size ~seed ~index in
          Alcotest.(check string)
            (Printf.sprintf "seed %d index %d regenerates identically" seed index)
            (Pretty.spec spec) (Pretty.spec again);
          if Asim_syntax.Parser.parse_string (Pretty.spec spec) <> spec then
            Alcotest.failf "seed %d index %d does not round-trip:\n%s" seed index
              (Pretty.spec spec)
        done
      done)
    [ narrow; wide ]

(* The buggy engine (constant add computes sub) is caught by the oracle and
   the shrinker reduces the witness to a handful of components. *)
let test_injected_bug_is_caught_and_shrunk () =
  let engines = Oracle.all @ [ Oracle.Buggy ] in
  (* A spec the corruption certainly perturbs: an adder fed by a counter. *)
  let source = "#adder\n= 8\ncount inc sum .\nA inc 4 count 1\nA sum 4 count 3\nM count 0 inc 1 1\n.\n" in
  let spec = Asim_syntax.Parser.parse_string source in
  match Oracle.check ~engines spec with
  | None -> Alcotest.fail "oracle missed the injected add->sub bug"
  | Some d ->
      Alcotest.(check bool) "buggy engine is the culprit" true (d.Oracle.engine_b = Oracle.Buggy);
      let keep s = Oracle.check ~engines s <> None in
      let shrunk = Shrink.spec ~keep spec in
      let n = List.length shrunk.Spec.components in
      if n > 5 then
        Alcotest.failf "shrunk witness still has %d components:\n%s" n
          (Pretty.spec shrunk);
      Alcotest.(check bool) "shrunk witness still diverges" true (keep shrunk)

(* The shrinker never returns a spec that stopped diverging or does not
   analyze. *)
let test_shrink_preserves_property () =
  let engines = fast_engines @ [ Oracle.Buggy ] in
  let keep s = Oracle.check ~engines s <> None in
  let checked = ref 0 in
  for index = 0 to 99 do
    let spec = Gen.spec_at narrow ~seed:1 ~index in
    if keep spec then begin
      incr checked;
      let shrunk = Shrink.spec ~keep spec in
      Alcotest.(check bool)
        (Printf.sprintf "index %d shrunk spec still diverges" index)
        true (keep shrunk);
      Alcotest.(check bool)
        (Printf.sprintf "index %d shrink did not grow the spec" index)
        true
        (Shrink.weight shrunk <= Shrink.weight spec)
    end
  done;
  if !checked = 0 then
    Alcotest.fail "no diverging spec in the first 100 indices — weak self-test"

let () =
  Alcotest.run "equiv"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            equivalence_test; wide_equivalence_test; gate_equivalence_test;
            determinism_test; roundtrip_structure_test; roundtrip_behaviour_test;
          ] );
      ( "fuzz library",
        [
          Alcotest.test_case "fixed-seed generate/print/parse round-trip" `Quick
            test_fixed_seed_roundtrip;
          Alcotest.test_case "injected bug caught and shrunk" `Quick
            test_injected_bug_is_caught_and_shrunk;
          Alcotest.test_case "shrinking preserves divergence" `Quick
            test_shrink_preserves_property;
        ] );
    ]
