(* The optimizing middle-end: every pass (and every pass prefix) must
   preserve observables — traces, I/O, cells, stats, errors, and the
   per-cycle values of everything DCE did not prove dead — across engines,
   opt levels, fault plans and generated specs.  The planted ASIM_OPT_SKEW
   miscompile must be caught. *)

open Asim
module Opt = Asim_opt.Opt
module Gen = Asim_fuzz.Gen
module Oracle = Asim_fuzz.Oracle

let with_env var value f =
  let old = Sys.getenv_opt var in
  Unix.putenv var value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv var (Option.value old ~default:""))
    f

(* Observe one engine over [spec]: per-cycle snapshots of every component
   (dead names masked to a fixed marker), the trace stream, I/O events,
   final cells, statistics and any runtime error. *)
type obs = {
  snaps : (string * int) list list;
  trace : string;
  events : Io.event list;
  cells : (string * int list) list;
  accesses : int;
  error : string option;
}

let observe ?(faults = []) ?(cycles = 20) ~engine ~dead analysis' (spec : Spec.t) =
  let buf = Buffer.create 256 in
  let io, events = Io.recording ~feed:[ 3; 1; 4; 1; 5; 9; 2; 6 ] () in
  let config = { Machine.io; trace = Trace.buffer_sink buf; faults } in
  let m = Asim.machine ~config ~engine analysis' in
  let masked = Hashtbl.create 8 in
  List.iter (fun n -> Hashtbl.replace masked n ()) dead;
  let names = List.map (fun (c : Component.t) -> c.name) spec.Spec.components in
  let snaps = ref [] in
  let error = ref None in
  (try
     for _ = 1 to cycles do
       Machine.run m ~cycles:1;
       snaps :=
         List.map
           (fun n -> (n, if Hashtbl.mem masked n then 0 else m.Machine.read n))
           names
         :: !snaps
     done
   with Error.Error { phase = Error.Runtime; message; _ } -> error := Some message);
  let cells =
    List.filter_map
      (fun (c : Component.t) ->
        match c.kind with
        | Component.Memory { cells; _ } ->
            Some (c.name, List.init cells (fun i -> m.Machine.read_cell c.name i))
        | _ -> None)
      spec.Spec.components
  in
  {
    snaps = List.rev !snaps;
    trace = Buffer.contents buf;
    events = events ();
    cells;
    accesses = Stats.total_accesses m.Machine.stats;
    error = !error;
  }

let gen_spec ~wide ~seed ~index =
  Gen.spec_at { Gen.default_size with Gen.wide } ~seed ~index

(* Reference: interpreter over the raw analysis.  Candidate: [engine] over
   the pass-optimized analysis.  Dead components are masked on both
   sides. *)
let observations ?(faults = []) ~passes ~engine spec =
  let analysis = Analysis.analyze spec in
  let keep = Fault.targets faults in
  let r = Opt.run_result ~passes ~keep analysis in
  let reference =
    observe ~faults ~engine:Asim.Interpreter ~dead:r.Opt.dead analysis spec
  in
  let candidate = observe ~faults ~engine ~dead:r.Opt.dead r.Opt.analysis spec in
  (reference, candidate)

let check_equiv ?faults ~passes ~engine spec =
  let reference, candidate = observations ?faults ~passes ~engine spec in
  if reference <> candidate then
    Alcotest.failf "divergence (%s, passes [%s]):\nref trace:\n%s\nopt trace:\n%s\nerrors: %s vs %s"
      (Asim.engine_to_string engine)
      (String.concat "," (List.map Opt.pass_to_string passes))
      reference.trace candidate.trace
      (Option.value ~default:"-" reference.error)
      (Option.value ~default:"-" candidate.error)

let pass_prefixes =
  [
    [ Opt.Constprop ];
    [ Opt.Constprop; Opt.Fuse ];
    [ Opt.Constprop; Opt.Fuse; Opt.Narrow ];
    [ Opt.Constprop; Opt.Fuse; Opt.Narrow; Opt.Cse ];
    [ Opt.Constprop; Opt.Fuse; Opt.Narrow; Opt.Cse; Opt.Dce ];
    Opt.all_passes;
    (* each pass alone, too *)
    [ Opt.Fuse ];
    [ Opt.Narrow ];
    [ Opt.Cse ];
    [ Opt.Dce ];
    [ Opt.Schedule ];
  ]

let test_per_pass_equivalence () =
  for seed = 1 to 3 do
    for index = 0 to 11 do
      let wide = index mod 2 = 1 in
      let spec = gen_spec ~wide ~seed ~index in
      List.iter
        (fun passes ->
          check_equiv ~passes ~engine:Asim.FlatKernel spec;
          check_equiv ~passes ~engine:Asim.Compiled spec)
        pass_prefixes
    done
  done

let test_equivalence_examples () =
  List.iter
    (fun source ->
      let spec = Parser.parse_string source in
      List.iter
        (fun passes ->
          check_equiv ~passes ~engine:Asim.FlatKernel spec;
          check_equiv ~passes ~engine:Asim.Partitioned spec)
        [ Opt.all_passes; [ Opt.Constprop; Opt.Fuse; Opt.Narrow ] ])
    [ Specs.counter; Specs.traffic_light; Specs.divider ]

let test_structured_specs () =
  let mesh = Gen.mesh ~cycles:12 ~width:6 ~height:5 ~seed:3 () in
  let pipe = Gen.pipeline ~cycles:12 ~cores:5 ~depth:6 ~seed:3 () in
  List.iter
    (fun spec ->
      check_equiv ~passes:Opt.all_passes ~engine:Asim.FlatKernel spec;
      check_equiv ~passes:Opt.all_passes ~engine:Asim.Partitioned spec)
    [ mesh; pipe ]

(* Fault plans force kept (and width-untrusted) components: observables
   must survive optimization with the targets perturbed mid-run. *)
let test_faults_preserved () =
  for seed = 1 to 2 do
    for index = 0 to 5 do
      let spec = gen_spec ~wide:false ~seed ~index in
      let target =
        match spec.Spec.components with
        | c :: _ -> c.Component.name
        | [] -> assert false
      in
      let faults =
        [
          Fault.flip_bit ~first_cycle:3 ~last_cycle:9 target 2;
          Fault.stuck_at ~first_cycle:11 target 5;
        ]
      in
      check_equiv ~faults ~passes:Opt.all_passes ~engine:Asim.FlatKernel spec
    done
  done

(* DCE must never stub observable state: every traced component, fault
   target and memory input survives verbatim value-wise (checked by
   equivalence above); here we check the dead report is disjoint from the
   roots. *)
let test_dce_respects_roots () =
  for index = 0 to 9 do
    let spec = gen_spec ~wide:false ~seed:7 ~index in
    let analysis = Analysis.analyze spec in
    let keep = [ (List.hd spec.Spec.components).Component.name ] in
    let r = Opt.run_result ~level:Opt.O2 ~keep analysis in
    let traced = Spec.traced_names spec in
    List.iter
      (fun d ->
        if List.mem d traced then Alcotest.failf "DCE stubbed traced %s" d;
        if List.mem d keep then Alcotest.failf "DCE stubbed kept %s" d)
      r.Opt.dead
  done

(* Width narrowing is idempotent: a second run over an already-narrowed
   spec changes nothing. *)
let test_narrow_idempotent () =
  for index = 0 to 9 do
    let spec = gen_spec ~wide:(index mod 2 = 0) ~seed:5 ~index in
    let analysis = Analysis.analyze spec in
    let once = Opt.run ~passes:[ Opt.Narrow ] analysis in
    let twice = Opt.run ~passes:[ Opt.Narrow ] once in
    Alcotest.(check string)
      "narrow fixpoint" (Pretty.spec once.Analysis.spec)
      (Pretty.spec twice.Analysis.spec)
  done

(* O0 is the identity. *)
let test_o0_identity () =
  let spec = gen_spec ~wide:true ~seed:2 ~index:4 in
  let analysis = Analysis.analyze spec in
  let r = Opt.run_result ~level:Opt.O0 analysis in
  Alcotest.(check bool) "same analysis" true (r.Opt.analysis == analysis);
  Alcotest.(check (list string)) "no dead" [] r.Opt.dead

(* The planted miscompile: with ASIM_OPT_SKEW=1 and CSE active, a
   multi-component spec must diverge from the reference (the deliberate
   stale-read across the evaluation-order boundary), and without the env
   the very same spec must agree.  [Gen.pipeline] chains combinational
   stages, so the reversed order is guaranteed to read stale values. *)
let test_skew_must_fail () =
  let spec = Gen.pipeline ~cycles:12 ~cores:3 ~depth:5 ~seed:1 () in
  check_equiv ~passes:Opt.all_passes ~engine:Asim.FlatKernel spec;
  with_env Opt.skew_env_var "1" (fun () ->
      let reference, candidate =
        observations ~passes:Opt.all_passes ~engine:Asim.FlatKernel spec
      in
      if reference = candidate then
        Alcotest.fail
          "ASIM_OPT_SKEW=1 was not observable — dead must-fail harness")

(* The skew rides the oracle too (the CI must-fail path). *)
let test_skew_oracle () =
  let spec = Gen.pipeline ~cycles:10 ~cores:2 ~depth:4 ~seed:2 () in
  (match Oracle.check ~opt:Opt.O2 ~engines:[ Oracle.Interp; Oracle.Flat ] spec with
  | None -> ()
  | Some d ->
      Alcotest.failf "unexpected divergence without skew: %s"
        (Oracle.divergence_to_string d));
  with_env Opt.skew_env_var "1" (fun () ->
      match
        Oracle.check ~opt:Opt.O2 ~engines:[ Oracle.Interp; Oracle.Flat ] spec
      with
      | Some _ -> ()
      | None -> Alcotest.fail "oracle missed the planted skew")

(* Levels honour the env default and reject junk. *)
let test_env_level () =
  with_env Opt.env_var "" (fun () ->
      Alcotest.(check string) "default" "2" (Opt.level_to_string (Opt.env_level ())));
  with_env Opt.env_var "1" (fun () ->
      Alcotest.(check string) "env" "1" (Opt.level_to_string (Opt.env_level ())));
  with_env Opt.env_var "chaos" (fun () ->
      match Opt.env_level () with
      | exception Error.Error _ -> ()
      | _ -> Alcotest.fail "junk ASIM_OPT accepted")

(* The optimizer actually does something on the structured workloads: the
   flat program shrinks at O2 (honest floor: strictly smaller). *)
let test_optimizer_wins () =
  let spec = Gen.mesh ~cycles:8 ~width:12 ~height:8 ~seed:1 () in
  let analysis = Analysis.analyze spec in
  let raw = Flat.program_size analysis in
  let opt = Flat.program_size (Opt.run ~level:Opt.O2 analysis) in
  if opt >= raw then
    Alcotest.failf "O2 did not shrink the flat program (%d -> %d words)" raw opt

let () =
  Alcotest.run "opt"
    [
      ( "equivalence",
        [
          Alcotest.test_case "per-pass generated specs" `Quick
            test_per_pass_equivalence;
          Alcotest.test_case "examples" `Quick test_equivalence_examples;
          Alcotest.test_case "structured specs" `Quick test_structured_specs;
          Alcotest.test_case "fault plans" `Quick test_faults_preserved;
        ] );
      ( "passes",
        [
          Alcotest.test_case "dce respects roots" `Quick test_dce_respects_roots;
          Alcotest.test_case "narrow idempotent" `Quick test_narrow_idempotent;
          Alcotest.test_case "O0 identity" `Quick test_o0_identity;
          Alcotest.test_case "optimizer wins" `Quick test_optimizer_wins;
        ] );
      ( "honesty",
        [
          Alcotest.test_case "skew must-fail" `Quick test_skew_must_fail;
          Alcotest.test_case "skew oracle" `Quick test_skew_oracle;
          Alcotest.test_case "env level" `Quick test_env_level;
        ] );
    ]
