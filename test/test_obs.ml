(* The observability core: mockable clock, metrics registry, span tracer —
   and the determinism the mock clock buys in the layers built on top. *)

open Asim_obs

let feq = Alcotest.(check (float 1e-9))

(* --- clock ----------------------------------------------------------------- *)

let test_clock_manual () =
  let c = Clock.manual ~start:100.0 () in
  Clock.with_source (Clock.manual_source c) (fun () ->
      feq "frozen now" 100.0 (Clock.now ());
      feq "frozen elapsed" 0.0 (Clock.elapsed (Clock.now ()));
      Clock.advance c 2.5;
      feq "advanced" 102.5 (Clock.now ());
      feq "elapsed since start" 2.5 (Clock.elapsed 100.0))

let test_clock_restores () =
  let c = Clock.manual ~start:7.0 () in
  (try
     Clock.with_source (Clock.manual_source c) (fun () -> failwith "boom")
   with Failure _ -> ());
  (* Back on the real clock: two reads straddle real time, not 7.0. *)
  Alcotest.(check bool) "real clock restored" true (Clock.now () > 1e9)

let test_clock_set_reset () =
  Clock.set_source (fun () -> 42.0);
  feq "overridden" 42.0 (Clock.now ());
  Clock.reset ();
  Alcotest.(check bool) "reset to real time" true (Clock.now () > 1e9)

(* A frozen clock makes a deadline-driven fuzz campaign fully deterministic:
   with the budget already exhausted, every index is skipped and the elapsed
   time is exactly zero — on every run, on every machine. *)
let test_fuzz_deterministic_under_mock_clock () =
  let c = Clock.manual ~start:1000.0 () in
  Clock.with_source (Clock.manual_source c) (fun () ->
      let size = { Asim_fuzz.Gen.max_comb = 3; max_mem = 1; cycles = 5; wide = false } in
      let outcome =
        Asim_fuzz.Runner.run ~time_budget:(-1.0) ~seed:0 ~count:10 ~size ()
      in
      Alcotest.(check int) "no spec started" 0 outcome.Asim_fuzz.Runner.tested;
      feq "elapsed exactly zero" 0.0 outcome.Asim_fuzz.Runner.elapsed;
      (* and with time, the same clock still never advances mid-campaign *)
      Clock.advance c 50.0;
      let outcome2 =
        Asim_fuzz.Runner.run ~seed:0 ~count:3 ~size ()
      in
      Alcotest.(check int) "all specs tested" 3 outcome2.Asim_fuzz.Runner.tested;
      feq "frozen campaign elapsed" 0.0 outcome2.Asim_fuzz.Runner.elapsed)

let counter_spec = "# counter\n= 4\ncount* inc .\nA inc 4 count 1\nM count 0 inc 1 1\n.\n"

let test_batch_job_deterministic_under_mock_clock () =
  let c = Clock.manual ~start:500.0 () in
  Clock.with_source (Clock.manual_source c) (fun () ->
      let t = Asim_batch.Runner.create () in
      let job =
        {
          Asim_batch.Proto.id = Some "frozen";
          source = Asim_batch.Proto.Inline counter_spec;
          engine = Asim.Compiled;
          optimize = true;
          cycles = None;
          inputs = [];
          want = [ Asim_batch.Proto.Outputs ];
          timeout_s = Some 10.0;
        }
      in
      let outcome = Asim_batch.Runner.run_job t job in
      (match outcome.Asim_batch.Proto.status with
      | Asim_batch.Proto.Ok_ -> ()
      | Asim_batch.Proto.Error_ e -> Alcotest.failf "job errored: %s" e
      | Asim_batch.Proto.Timeout c -> Alcotest.failf "job timed out at cycle %d" c);
      feq "elapsed_s exactly zero" 0.0 outcome.Asim_batch.Proto.elapsed_s)

(* --- registry -------------------------------------------------------------- *)

let test_counter () =
  let reg = Registry.create () in
  let jobs = Registry.counter reg "asim_test_total" ~help:"h" in
  Registry.inc jobs;
  Registry.add jobs 2.5;
  Registry.add jobs (-10.0);
  feq "monotonic" 3.5 (Registry.counter_value jobs);
  (* same identity -> same instrument *)
  let again = Registry.counter reg "asim_test_total" in
  Registry.inc again;
  feq "shared series" 4.5 (Registry.counter_value jobs)

let test_kind_clash () =
  let reg = Registry.create () in
  ignore (Registry.counter reg "asim_clash" : Registry.counter);
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Registry: asim_clash already registered as a counter, not a gauge")
    (fun () -> ignore (Registry.gauge reg "asim_clash" : Registry.gauge))

let test_gauge () =
  let reg = Registry.create () in
  let g = Registry.gauge reg "asim_depth" ~labels:[ ("pool", "a") ] in
  Registry.set g 5.0;
  Registry.gauge_add g (-2.0);
  feq "gauge value" 3.0 (Registry.gauge_value g)

let test_histogram_quantiles () =
  let reg = Registry.create () in
  let empty = Registry.histogram reg "asim_empty_seconds" in
  feq "empty p50" 0.0 (Registry.quantile empty 0.5);
  feq "empty max" 0.0 (Registry.hist_max empty);
  Alcotest.(check int) "empty count" 0 (Registry.hist_count empty);
  let one = Registry.histogram reg "asim_one_seconds" in
  Registry.observe one 0.037;
  List.iter
    (fun q -> feq (Printf.sprintf "single sample at q=%g" q) 0.037 (Registry.quantile one q))
    [ 0.0; 0.5; 0.9; 0.99; 1.0 ];
  let many = Registry.histogram reg "asim_many_seconds" in
  for i = 1 to 100 do
    Registry.observe many (0.001 *. float_of_int i)
  done;
  feq "q=1 is the exact max" 0.1 (Registry.quantile many 1.0);
  Alcotest.(check bool) "p50 in a sane bucket" true
    (let p50 = Registry.quantile many 0.5 in
     p50 >= 0.05 && p50 <= 0.1);
  Alcotest.(check int) "count" 100 (Registry.hist_count many);
  feq "sum" 5.05 (Registry.hist_sum many)

let test_prometheus_export () =
  let reg = Registry.create () in
  let jobs = Registry.counter reg "asim_jobs_total" ~help:"Jobs" ~labels:[ ("status", "ok") ] in
  Registry.add jobs 3.0;
  let g = Registry.gauge reg "asim_cache_entries" ~help:"Entries" in
  Registry.set g 2.0;
  let h =
    Registry.histogram reg "asim_lat_seconds" ~buckets:[| 0.1; 1.0 |] ~help:"Latency"
  in
  Registry.observe h 0.05;
  Registry.observe h 5.0;
  let text = Registry.to_prometheus reg in
  let has needle =
    Alcotest.(check bool) ("export contains " ^ needle) true
      (let len = String.length needle in
       let n = String.length text in
       let rec at i = i + len <= n && (String.sub text i len = needle || at (i + 1)) in
       at 0)
  in
  has "# TYPE asim_jobs_total counter";
  has "# HELP asim_jobs_total Jobs";
  has "asim_jobs_total{status=\"ok\"} 3";
  has "# TYPE asim_cache_entries gauge";
  has "asim_cache_entries 2";
  has "# TYPE asim_lat_seconds histogram";
  has "asim_lat_seconds_bucket{le=\"0.1\"} 1";
  has "asim_lat_seconds_bucket{le=\"+Inf\"} 2";
  has "asim_lat_seconds_count 2";
  (* deterministic: same state renders byte-identically *)
  Alcotest.(check string) "stable render" text (Registry.to_prometheus reg)

(* --- tracer ---------------------------------------------------------------- *)

let test_null_tracer () =
  Alcotest.(check bool) "inactive" false (Tracer.is_active Tracer.null);
  let r = Tracer.span Tracer.null "anything" (fun () -> 41 + 1) in
  Alcotest.(check int) "thunk result" 42 r;
  Tracer.span_at Tracer.null "marker" ~ts:0.0 ~dur:1.0;
  Alcotest.(check int) "nothing recorded" 0 (Tracer.event_count Tracer.null)

let test_span_records () =
  let c = Clock.manual ~start:10.0 () in
  Clock.with_source (Clock.manual_source c) (fun () ->
      let tr = Tracer.create () in
      let v =
        Tracer.span tr "stage" ~args:[ ("k", "v") ] (fun () ->
            Clock.advance c 0.25;
            "done")
      in
      Alcotest.(check string) "result" "done" v;
      (try Tracer.span tr "failing" (fun () -> failwith "boom") with Failure _ -> ());
      Tracer.span_at tr "wait" ~ts:5.0 ~dur:0.5;
      match Tracer.events tr with
      | [ a; b; m ] ->
          Alcotest.(check string) "first name" "stage" a.Tracer.name;
          feq "ts us" 10_000_000.0 a.Tracer.ts_us;
          feq "dur us" 250_000.0 a.Tracer.dur_us;
          Alcotest.(check (list (pair string string))) "args" [ ("k", "v") ] a.Tracer.args;
          Alcotest.(check string) "raise still recorded" "failing" b.Tracer.name;
          Alcotest.(check string) "span_at" "wait" m.Tracer.name;
          feq "span_at dur" 500_000.0 m.Tracer.dur_us
      | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs))

let test_chrome_json () =
  let tr = Tracer.create () in
  Tracer.span tr "a\"quoted\"" ~args:[ ("file", "x\\y") ] (fun () -> ());
  Tracer.span_at tr "b" ~ts:1.0 ~dur:2.0;
  let json = Asim_batch.Json.parse (Tracer.to_chrome_json tr) in
  match Asim_batch.Json.to_list json with
  | Some [ a; b ] ->
      let str field j =
        match Asim_batch.Json.(Option.bind (member field j) to_string_opt) with
        | Some s -> s
        | None -> Alcotest.failf "missing %s" field
      in
      let num field j =
        match Asim_batch.Json.(Option.bind (member field j) to_float) with
        | Some f -> f
        | None -> Alcotest.failf "missing %s" field
      in
      Alcotest.(check string) "escaped name" "a\"quoted\"" (str "name" a);
      Alcotest.(check string) "ph" "X" (str "ph" a);
      Alcotest.(check string) "cat" "asim" (str "cat" a);
      ignore (num "ts" a);
      ignore (num "dur" a);
      ignore (num "pid" a);
      ignore (num "tid" a);
      (match Asim_batch.Json.member "args" a with
      | Some args -> Alcotest.(check string) "escaped arg" "x\\y" (str "file" args)
      | None -> Alcotest.fail "missing args");
      feq "explicit ts" 1_000_000.0 (num "ts" b);
      feq "explicit dur" 2_000_000.0 (num "dur" b)
  | _ -> Alcotest.fail "expected a 2-event array"

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [
          Alcotest.test_case "manual source" `Quick test_clock_manual;
          Alcotest.test_case "with_source restores" `Quick test_clock_restores;
          Alcotest.test_case "set/reset" `Quick test_clock_set_reset;
          Alcotest.test_case "fuzz deterministic" `Quick
            test_fuzz_deterministic_under_mock_clock;
          Alcotest.test_case "batch job deterministic" `Quick
            test_batch_job_deterministic_under_mock_clock;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "kind clash" `Quick test_kind_clash;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "prometheus export" `Quick test_prometheus_export;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "null is free" `Quick test_null_tracer;
          Alcotest.test_case "span records" `Quick test_span_records;
          Alcotest.test_case "chrome json" `Quick test_chrome_json;
        ] );
    ]
