(* The observability core: mockable clock, metrics registry, span tracer —
   and the determinism the mock clock buys in the layers built on top. *)

open Asim_obs

let feq = Alcotest.(check (float 1e-9))

(* --- clock ----------------------------------------------------------------- *)

let test_clock_manual () =
  let c = Clock.manual ~start:100.0 () in
  Clock.with_source (Clock.manual_source c) (fun () ->
      feq "frozen now" 100.0 (Clock.now ());
      feq "frozen elapsed" 0.0 (Clock.elapsed (Clock.now ()));
      Clock.advance c 2.5;
      feq "advanced" 102.5 (Clock.now ());
      feq "elapsed since start" 2.5 (Clock.elapsed 100.0))

let test_clock_restores () =
  let c = Clock.manual ~start:7.0 () in
  (try
     Clock.with_source (Clock.manual_source c) (fun () -> failwith "boom")
   with Failure _ -> ());
  (* Back on the real clock: two reads straddle real time, not 7.0. *)
  Alcotest.(check bool) "real clock restored" true (Clock.now () > 1e9)

let test_clock_set_reset () =
  Clock.set_source (fun () -> 42.0);
  feq "overridden" 42.0 (Clock.now ());
  Clock.reset ();
  Alcotest.(check bool) "reset to real time" true (Clock.now () > 1e9)

(* A frozen clock makes a deadline-driven fuzz campaign fully deterministic:
   with the budget already exhausted, every index is skipped and the elapsed
   time is exactly zero — on every run, on every machine. *)
let test_fuzz_deterministic_under_mock_clock () =
  let c = Clock.manual ~start:1000.0 () in
  Clock.with_source (Clock.manual_source c) (fun () ->
      let size = { Asim_fuzz.Gen.max_comb = 3; max_mem = 1; cycles = 5; wide = false } in
      let outcome =
        Asim_fuzz.Runner.run ~time_budget:(-1.0) ~seed:0 ~count:10 ~size ()
      in
      Alcotest.(check int) "no spec started" 0 outcome.Asim_fuzz.Runner.tested;
      feq "elapsed exactly zero" 0.0 outcome.Asim_fuzz.Runner.elapsed;
      (* and with time, the same clock still never advances mid-campaign *)
      Clock.advance c 50.0;
      let outcome2 =
        Asim_fuzz.Runner.run ~seed:0 ~count:3 ~size ()
      in
      Alcotest.(check int) "all specs tested" 3 outcome2.Asim_fuzz.Runner.tested;
      feq "frozen campaign elapsed" 0.0 outcome2.Asim_fuzz.Runner.elapsed)

let counter_spec = "# counter\n= 4\ncount* inc .\nA inc 4 count 1\nM count 0 inc 1 1\n.\n"

let test_batch_job_deterministic_under_mock_clock () =
  let c = Clock.manual ~start:500.0 () in
  Clock.with_source (Clock.manual_source c) (fun () ->
      let t = Asim_batch.Runner.create () in
      let job =
        {
          Asim_batch.Proto.id = Some "frozen";
          trace_id = None;
          source = Asim_batch.Proto.Inline counter_spec;
          engine = Asim.Compiled;
          optimize = true;
          cycles = None;
          inputs = [];
          want = [ Asim_batch.Proto.Outputs ];
          timeout_s = Some 10.0;
          opt = None;
        }
      in
      let outcome = Asim_batch.Runner.run_job t job in
      (match outcome.Asim_batch.Proto.status with
      | Asim_batch.Proto.Ok_ -> ()
      | Asim_batch.Proto.Error_ e -> Alcotest.failf "job errored: %s" e
      | Asim_batch.Proto.Timeout c -> Alcotest.failf "job timed out at cycle %d" c);
      feq "elapsed_s exactly zero" 0.0 outcome.Asim_batch.Proto.elapsed_s)

(* --- registry -------------------------------------------------------------- *)

let test_counter () =
  let reg = Registry.create () in
  let jobs = Registry.counter reg "asim_test_total" ~help:"h" in
  Registry.inc jobs;
  Registry.add jobs 2.5;
  Registry.add jobs (-10.0);
  feq "monotonic" 3.5 (Registry.counter_value jobs);
  (* same identity -> same instrument *)
  let again = Registry.counter reg "asim_test_total" in
  Registry.inc again;
  feq "shared series" 4.5 (Registry.counter_value jobs)

let test_kind_clash () =
  let reg = Registry.create () in
  ignore (Registry.counter reg "asim_clash" : Registry.counter);
  Alcotest.check_raises "gauge over counter"
    (Invalid_argument "Registry: asim_clash already registered as a counter, not a gauge")
    (fun () -> ignore (Registry.gauge reg "asim_clash" : Registry.gauge))

let test_gauge () =
  let reg = Registry.create () in
  let g = Registry.gauge reg "asim_depth" ~labels:[ ("pool", "a") ] in
  Registry.set g 5.0;
  Registry.gauge_add g (-2.0);
  feq "gauge value" 3.0 (Registry.gauge_value g)

let test_histogram_quantiles () =
  let reg = Registry.create () in
  let empty = Registry.histogram reg "asim_empty_seconds" in
  feq "empty p50" 0.0 (Registry.quantile empty 0.5);
  feq "empty max" 0.0 (Registry.hist_max empty);
  Alcotest.(check int) "empty count" 0 (Registry.hist_count empty);
  let one = Registry.histogram reg "asim_one_seconds" in
  Registry.observe one 0.037;
  List.iter
    (fun q -> feq (Printf.sprintf "single sample at q=%g" q) 0.037 (Registry.quantile one q))
    [ 0.0; 0.5; 0.9; 0.99; 1.0 ];
  let many = Registry.histogram reg "asim_many_seconds" in
  for i = 1 to 100 do
    Registry.observe many (0.001 *. float_of_int i)
  done;
  feq "q=1 is the exact max" 0.1 (Registry.quantile many 1.0);
  Alcotest.(check bool) "p50 in a sane bucket" true
    (let p50 = Registry.quantile many 0.5 in
     p50 >= 0.05 && p50 <= 0.1);
  Alcotest.(check int) "count" 100 (Registry.hist_count many);
  feq "sum" 5.05 (Registry.hist_sum many)

let test_prometheus_export () =
  let reg = Registry.create () in
  let jobs = Registry.counter reg "asim_jobs_total" ~help:"Jobs" ~labels:[ ("status", "ok") ] in
  Registry.add jobs 3.0;
  let g = Registry.gauge reg "asim_cache_entries" ~help:"Entries" in
  Registry.set g 2.0;
  let h =
    Registry.histogram reg "asim_lat_seconds" ~buckets:[| 0.1; 1.0 |] ~help:"Latency"
  in
  Registry.observe h 0.05;
  Registry.observe h 5.0;
  let text = Registry.to_prometheus reg in
  let has needle =
    Alcotest.(check bool) ("export contains " ^ needle) true
      (let len = String.length needle in
       let n = String.length text in
       let rec at i = i + len <= n && (String.sub text i len = needle || at (i + 1)) in
       at 0)
  in
  has "# TYPE asim_jobs_total counter";
  has "# HELP asim_jobs_total Jobs";
  has "asim_jobs_total{status=\"ok\"} 3";
  has "# TYPE asim_cache_entries gauge";
  has "asim_cache_entries 2";
  has "# TYPE asim_lat_seconds histogram";
  has "asim_lat_seconds_bucket{le=\"0.1\"} 1";
  has "asim_lat_seconds_bucket{le=\"+Inf\"} 2";
  has "asim_lat_seconds_count 2";
  (* deterministic: same state renders byte-identically *)
  Alcotest.(check string) "stable render" text (Registry.to_prometheus reg)

(* Percentile export must stay sound while writers are mid-flight: four
   domains hammer one histogram while a scraper thread renders the
   registry and reads quantiles the whole time.  The scraper records any
   violation (exception, non-monotone p50/p90/p99) instead of raising —
   an exception inside a Thread would only kill that thread, not fail
   the test — and the main thread asserts afterwards. *)
let test_concurrent_histogram () =
  let reg = Registry.create () in
  let h = Registry.histogram reg "asim_conc_seconds" ~help:"h" in
  let writers = 4 and per = 5_000 in
  let stop = Atomic.make false in
  let bad = ref None in
  let scrapes = ref 0 in
  let scraper =
    Thread.create
      (fun () ->
        try
          while not (Atomic.get stop) do
            ignore (String.length (Registry.to_prometheus reg));
            let p50 = Registry.quantile h 0.5 in
            let p90 = Registry.quantile h 0.9 in
            let p99 = Registry.quantile h 0.99 in
            if not (p50 <= p90 && p90 <= p99) then
              bad :=
                Some
                  (Printf.sprintf "non-monotone quantiles: %g / %g / %g" p50
                     p90 p99);
            incr scrapes;
            Thread.yield ()
          done
        with e -> bad := Some ("scraper raised: " ^ Printexc.to_string e))
      ()
  in
  let domains =
    List.init writers (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per do
              Registry.observe h
                (0.001 *. float_of_int ((((d * per) + i) mod 97) + 1))
            done))
  in
  List.iter Domain.join domains;
  Atomic.set stop true;
  Thread.join scraper;
  (match !bad with Some msg -> Alcotest.fail msg | None -> ());
  Alcotest.(check bool) "scraper ran" true (!scrapes > 0);
  Alcotest.(check int) "no observation lost" (writers * per)
    (Registry.hist_count h);
  Alcotest.(check bool) "final quantiles monotone" true
    (Registry.quantile h 0.5 <= Registry.quantile h 0.99)

(* --- tracer ---------------------------------------------------------------- *)

let test_null_tracer () =
  Alcotest.(check bool) "inactive" false (Tracer.is_active Tracer.null);
  let r = Tracer.span Tracer.null "anything" (fun () -> 41 + 1) in
  Alcotest.(check int) "thunk result" 42 r;
  Tracer.span_at Tracer.null "marker" ~ts:0.0 ~dur:1.0;
  Alcotest.(check int) "nothing recorded" 0 (Tracer.event_count Tracer.null)

let test_span_records () =
  let c = Clock.manual ~start:10.0 () in
  Clock.with_source (Clock.manual_source c) (fun () ->
      let tr = Tracer.create () in
      let v =
        Tracer.span tr "stage" ~args:[ ("k", "v") ] (fun () ->
            Clock.advance c 0.25;
            "done")
      in
      Alcotest.(check string) "result" "done" v;
      (try Tracer.span tr "failing" (fun () -> failwith "boom") with Failure _ -> ());
      Tracer.span_at tr "wait" ~ts:5.0 ~dur:0.5;
      match Tracer.events tr with
      | [ a; b; m ] ->
          Alcotest.(check string) "first name" "stage" a.Tracer.name;
          feq "ts us" 10_000_000.0 a.Tracer.ts_us;
          feq "dur us" 250_000.0 a.Tracer.dur_us;
          Alcotest.(check (list (pair string string))) "args" [ ("k", "v") ] a.Tracer.args;
          Alcotest.(check string) "raise still recorded" "failing" b.Tracer.name;
          Alcotest.(check string) "span_at" "wait" m.Tracer.name;
          feq "span_at dur" 500_000.0 m.Tracer.dur_us
      | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs))

let test_chrome_json () =
  let tr = Tracer.create () in
  Tracer.span tr "a\"quoted\"" ~args:[ ("file", "x\\y") ] (fun () -> ());
  Tracer.span_at tr "b" ~ts:1.0 ~dur:2.0;
  let json = Asim_batch.Json.parse (Tracer.to_chrome_json tr) in
  match Asim_batch.Json.to_list json with
  | Some [ a; b ] ->
      let str field j =
        match Asim_batch.Json.(Option.bind (member field j) to_string_opt) with
        | Some s -> s
        | None -> Alcotest.failf "missing %s" field
      in
      let num field j =
        match Asim_batch.Json.(Option.bind (member field j) to_float) with
        | Some f -> f
        | None -> Alcotest.failf "missing %s" field
      in
      Alcotest.(check string) "escaped name" "a\"quoted\"" (str "name" a);
      Alcotest.(check string) "ph" "X" (str "ph" a);
      Alcotest.(check string) "cat" "asim" (str "cat" a);
      ignore (num "ts" a);
      ignore (num "dur" a);
      ignore (num "pid" a);
      ignore (num "tid" a);
      (match Asim_batch.Json.member "args" a with
      | Some args -> Alcotest.(check string) "escaped arg" "x\\y" (str "file" args)
      | None -> Alcotest.fail "missing args");
      feq "explicit ts" 1_000_000.0 (num "ts" b);
      feq "explicit dur" 2_000_000.0 (num "dur" b)
  | _ -> Alcotest.fail "expected a 2-event array"

(* [with_args] derives a tagged view over the same buffer: every span it
   records carries the context pairs after its own args, deriving again
   accumulates, and the degenerate cases (null tracer, empty list) are
   identities. *)
let test_with_args () =
  let c = Clock.manual ~start:0.0 () in
  Clock.with_source (Clock.manual_source c) (fun () ->
      Alcotest.(check bool) "null stays null" false
        (Tracer.is_active (Tracer.with_args Tracer.null [ ("id", "x") ]));
      let tr = Tracer.create () in
      Alcotest.(check bool) "empty args is identity" true
        (Tracer.with_args tr [] == tr);
      let tagged = Tracer.with_args tr [ ("job", "j1") ] in
      Alcotest.(check bool) "tagged view active" true (Tracer.is_active tagged);
      Tracer.span tagged "work" ~args:[ ("k", "v") ] (fun () ->
          Clock.advance c 0.1);
      let more = Tracer.with_args tagged [ ("trace", "t9") ] in
      Tracer.span_at more "mark" ~ts:1.0 ~dur:0.5;
      Alcotest.(check int) "one shared buffer" 2 (Tracer.event_count tr);
      match Tracer.events tr with
      | [ a; b ] ->
          Alcotest.(check (list (pair string string)))
            "own args first, then the tag"
            [ ("k", "v"); ("job", "j1") ]
            a.Tracer.args;
          Alcotest.(check (list (pair string string)))
            "derived view accumulates tags"
            [ ("job", "j1"); ("trace", "t9") ]
            b.Tracer.args
      | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs))

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [
          Alcotest.test_case "manual source" `Quick test_clock_manual;
          Alcotest.test_case "with_source restores" `Quick test_clock_restores;
          Alcotest.test_case "set/reset" `Quick test_clock_set_reset;
          Alcotest.test_case "fuzz deterministic" `Quick
            test_fuzz_deterministic_under_mock_clock;
          Alcotest.test_case "batch job deterministic" `Quick
            test_batch_job_deterministic_under_mock_clock;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "kind clash" `Quick test_kind_clash;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "prometheus export" `Quick test_prometheus_export;
          Alcotest.test_case "concurrent writers vs scraper" `Quick
            test_concurrent_histogram;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "null is free" `Quick test_null_tracer;
          Alcotest.test_case "span records" `Quick test_span_records;
          Alcotest.test_case "chrome json" `Quick test_chrome_json;
          Alcotest.test_case "with_args tagging" `Quick test_with_args;
        ] );
    ]
