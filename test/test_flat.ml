(* Tests specific to the flat-kernel engine ([Asim_flat.Flat]): cycle-level
   differential checks against the closure compiler and the interpreter on
   the two big demo machines, activity-scheduling (dirty-bit) behavior on a
   hand-built diamond dependency graph, the zero-per-cycle-allocation
   guarantee, and the codegen spans.  The generic cross-engine semantics
   matrix lives in test_engines.ml / test_equiv.ml, which iterate over
   [Oracle.all] and so cover the flat engine too. *)

module Machine = Asim.Machine
module Flat = Asim.Flat
module Oracle = Asim_fuzz.Oracle

let quiet = Machine.quiet_config

(* ------------------------------------------------------------------ *)
(* Cycle-for-cycle differentials on the goldens                       *)
(* ------------------------------------------------------------------ *)

(* Step [cycles] cycles with all engines in lockstep; after every cycle every
   component output must agree, and at the end the memory images must too. *)
let lockstep name (spec : Asim.Spec.t) ~cycles =
  let analysis = Asim.Analysis.analyze spec in
  let names =
    List.map (fun (c : Asim.Component.t) -> c.Asim.Component.name)
      spec.Asim.Spec.components
  in
  let engines =
    [
      ("interp", Asim.Interp.create ~config:quiet analysis);
      ("compiled", Asim.Compile.create ~config:quiet analysis);
      ("flat", Flat.create ~config:quiet ~schedule:Flat.Activity analysis);
      ("flat-full", Flat.create ~config:quiet ~schedule:Flat.Full analysis);
    ]
  in
  let reference = snd (List.hd engines) in
  for cycle = 1 to cycles do
    List.iter (fun (_, m) -> m.Machine.step ()) engines;
    List.iter
      (fun comp ->
        let expect = reference.Machine.read comp in
        List.iter
          (fun (ename, m) ->
            let got = m.Machine.read comp in
            if got <> expect then
              Alcotest.failf "%s: cycle %d, component %s: %s=%d, interp=%d"
                name cycle comp ename got expect)
          (List.tl engines))
      names
  done;
  (* Final memory images. *)
  List.iter
    (fun (c : Asim.Component.t) ->
      match c.Asim.Component.kind with
      | Asim.Component.Memory { cells; _ } ->
          for i = 0 to cells - 1 do
            let expect = reference.Machine.read_cell c.Asim.Component.name i in
            List.iter
              (fun (ename, m) ->
                Alcotest.(check int)
                  (Printf.sprintf "%s: %s cell %s[%d]" name ename
                     c.Asim.Component.name i)
                  expect
                  (m.Machine.read_cell c.Asim.Component.name i))
              (List.tl engines)
          done
      | _ -> ())
    spec.Asim.Spec.components

let test_lockstep_sieve () =
  lockstep "stackm-sieve"
    (Asim_stackm.Microcode.spec ~program:Asim_stackm.Demos.sieve_reassembled ())
    ~cycles:1500

let test_lockstep_tinyc () =
  lockstep "tinyc-demo"
    (Asim_tinyc.Machine.spec ~program:Asim_tinyc.Machine.demo_image ())
    ~cycles:800

(* ------------------------------------------------------------------ *)
(* Fuzz oracle with the flat engines in the lineup                    *)
(* ------------------------------------------------------------------ *)

(* A small deterministic sweep of generated specs through [Oracle.check]
   with the default engine list, which now includes [Flat] and [FlatFull].
   The full QCheck campaign lives in test_equiv.ml; this pins the flat
   engine's membership in the oracle regardless of that suite's config. *)
let test_oracle_generated () =
  assert (List.mem Oracle.Flat Oracle.all);
  assert (List.mem Oracle.FlatFull Oracle.all);
  for index = 0 to 19 do
    let spec = Asim_fuzz.Gen.(spec_at default_size) ~seed:0xf1a7 ~index in
    match Oracle.check ~cycles:40 spec with
    | None -> ()
    | Some d ->
        Alcotest.failf "generated spec %d diverged: %s" index
          (Oracle.divergence_to_string d)
  done

let test_oracle_examples () =
  List.iter
    (fun (name, source) ->
      let spec = Asim.Parser.parse_string source in
      match Oracle.check ~cycles:200 spec with
      | None -> ()
      | Some d ->
          Alcotest.failf "example %s diverged: %s" name
            (Oracle.divergence_to_string d))
    Asim.Specs.all

(* ------------------------------------------------------------------ *)
(* Activity scheduling on a diamond dependency graph                  *)
(* ------------------------------------------------------------------ *)

(* r is a register counting every cycle; [a] watches its low bit (changes
   every cycle); [z] = r AND 0 is re-evaluated every cycle but its *value*
   never changes, so the diamond b/c/d downstream of z must stay asleep
   after the initial full evaluation.  [q] depends on nothing at all. *)
let diamond =
  "# diamond\n\
   r rinc a z b c d q .\n\
   A rinc 4 r 1\n\
   A a 2 r.0 0\n\
   A z 8 r 0\n\
   A b 2 z 0\n\
   A c 2 z 0\n\
   A d 4 b c\n\
   A q 2 7 0\n\
   M r 0 rinc 1 1\n\
   .\n"

let eval_counts ~schedule source ~cycles =
  let analysis = Asim.load_string source in
  let m, counts = Flat.create_debug ~config:quiet ~schedule analysis in
  Machine.run m ~cycles;
  counts ()

let count name counts =
  match List.assoc_opt name counts with
  | Some n -> n
  | None -> Alcotest.failf "no eval count for %s" name

let test_dirty_seeding () =
  let cycles = 50 in
  let counts = eval_counts ~schedule:Flat.Activity diamond ~cycles in
  (* Components fed by the always-changing register re-evaluate every
     cycle... *)
  List.iter
    (fun n -> Alcotest.(check int) (n ^ " evals") cycles (count n counts))
    [ "rinc"; "a"; "z" ];
  (* ...but z's output is constant, so the diamond below it — and the
     input-free q — run exactly once (the initial dirty seeding). *)
  List.iter
    (fun n -> Alcotest.(check int) (n ^ " evals") 1 (count n counts))
    [ "b"; "c"; "d"; "q" ]

let test_full_ablation_counts () =
  let cycles = 50 in
  let counts = eval_counts ~schedule:Flat.Full diamond ~cycles in
  List.iter
    (fun (n, c) -> Alcotest.(check int) (n ^ " evals") cycles c)
    counts

(* Activity scheduling must not change what the machine computes. *)
let test_diamond_semantics () =
  lockstep "diamond" (Asim.Parser.parse_string diamond) ~cycles:50

(* ------------------------------------------------------------------ *)
(* Zero per-cycle allocation                                          *)
(* ------------------------------------------------------------------ *)

(* With quiet I/O and no tracing, the flat step loop must not allocate:
   run 2000 cycles of the sieve machine and require the minor-heap delta to
   stay under a small epsilon (Gc.minor_words itself returns a boxed float,
   and the allowance absorbs such one-off boxes — what matters is that the
   delta does not scale with the cycle count). *)
let minor_words_for schedule =
  let analysis =
    Asim.Analysis.analyze
      (Asim_stackm.Microcode.spec ~program:Asim_stackm.Demos.sieve_reassembled ())
  in
  let m = Flat.create ~config:quiet ~schedule analysis in
  Machine.run m ~cycles:64;
  (* warm-up *)
  let before = Gc.minor_words () in
  for _ = 1 to 2000 do
    m.Machine.step ()
  done;
  Gc.minor_words () -. before

let test_zero_allocation () =
  List.iter
    (fun (name, schedule) ->
      let delta = minor_words_for schedule in
      if delta > 256.0 then
        Alcotest.failf "flat (%s) allocated %.0f minor words over 2000 cycles"
          name delta)
    [ ("activity", Flat.Activity); ("full", Flat.Full) ]

(* Contrast: the interpreter allocates per cycle, proving the measurement
   would catch an allocating step loop. *)
let test_interp_allocates () =
  let analysis =
    Asim.Analysis.analyze
      (Asim_stackm.Microcode.spec ~program:Asim_stackm.Demos.sieve_reassembled ())
  in
  let m = Asim.Interp.create ~config:quiet analysis in
  Machine.run m ~cycles:64;
  let before = Gc.minor_words () in
  for _ = 1 to 2000 do
    m.Machine.step ()
  done;
  let delta = Gc.minor_words () -. before in
  Alcotest.(check bool) "interp allocates" true (delta > 2000.0)

(* ------------------------------------------------------------------ *)
(* Compile-time metrics and spans                                     *)
(* ------------------------------------------------------------------ *)

let test_program_size () =
  let analysis =
    Asim.Analysis.analyze
      (Asim_stackm.Microcode.spec ~program:Asim_stackm.Demos.sieve_reassembled ())
  in
  Alcotest.(check bool) "non-trivial program" true
    (Flat.program_size analysis > 100)

let test_codegen_spans () =
  let tracer = Asim_obs.Tracer.create () in
  let analysis = Asim.load_string diamond in
  let (_ : Machine.t) = Flat.create ~config:quiet ~tracer analysis in
  let names =
    List.map (fun (e : Asim_obs.Tracer.event) -> e.Asim_obs.Tracer.name)
      (Asim_obs.Tracer.events tracer)
  in
  List.iter
    (fun span ->
      Alcotest.(check bool) (span ^ " span emitted") true (List.mem span names))
    [ "codegen.flat.layout"; "codegen.flat.emit"; "codegen.flat.wire" ]

let () =
  Alcotest.run "flat"
    [
      ( "lockstep",
        [
          Alcotest.test_case "stackm sieve" `Slow test_lockstep_sieve;
          Alcotest.test_case "tinyc demo" `Slow test_lockstep_tinyc;
          Alcotest.test_case "diamond" `Quick test_diamond_semantics;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "generated specs" `Slow test_oracle_generated;
          Alcotest.test_case "example specs" `Quick test_oracle_examples;
        ] );
      ( "activity",
        [
          Alcotest.test_case "dirty-bit seeding" `Quick test_dirty_seeding;
          Alcotest.test_case "full ablation" `Quick test_full_ablation_counts;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "flat step loop is allocation-free" `Quick
            test_zero_allocation;
          Alcotest.test_case "interp contrast" `Quick test_interp_allocates;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "program size" `Quick test_program_size;
          Alcotest.test_case "spans" `Quick test_codegen_spans;
        ] );
    ]
