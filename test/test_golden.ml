(* Golden tests: the source backends' complete output is locked against
   checked-in files (test/goldens/).  A deliberate codegen change means
   regenerating the goldens with `asim codegen` and reviewing the diff. *)

open Asim
module Codegen = Asim_codegen.Codegen

let golden_dir =
  (* test binaries run in _build/default/test; the goldens are copied there
     as test dependencies *)
  "goldens"

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let first_diff a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go i = function
    | [], [] -> None
    | x :: xs, y :: ys -> if x = y then go (i + 1) (xs, ys) else Some (i, x, y)
    | x :: _, [] -> Some (i, x, "<end of golden>")
    | [], y :: _ -> Some (i, "<end of output>", y)
  in
  go 1 (la, lb)

let check_golden ~lang ~source ~golden () =
  let analysis = load_string source in
  let generated = Codegen.generate lang analysis in
  let expected = read_file (Filename.concat golden_dir golden) in
  match first_diff generated expected with
  | None -> ()
  | Some (line, got, want) ->
      Alcotest.failf "%s: first difference at line %d:\n  generated: %s\n  golden:    %s"
        golden line got want

let () =
  Alcotest.run "golden"
    [
      ( "backends",
        [
          Alcotest.test_case "counter pascal" `Quick
            (check_golden ~lang:Codegen.Pascal ~source:Specs.counter
               ~golden:"counter.p");
          Alcotest.test_case "counter ocaml" `Quick
            (check_golden ~lang:Codegen.Ocaml ~source:Specs.counter
               ~golden:"counter.ml.golden");
          Alcotest.test_case "counter c" `Quick
            (check_golden ~lang:Codegen.C ~source:Specs.counter
               ~golden:"counter.c.golden");
          Alcotest.test_case "traffic light pascal" `Quick
            (check_golden ~lang:Codegen.Pascal ~source:Specs.traffic_light
               ~golden:"traffic.p");
          Alcotest.test_case "counter verilog" `Quick
            (check_golden ~lang:Codegen.Verilog ~source:Specs.counter
               ~golden:"counter.v");
          Alcotest.test_case "traffic light ocaml" `Quick
            (check_golden ~lang:Codegen.Ocaml ~source:Specs.traffic_light
               ~golden:"traffic.ml.golden");
          Alcotest.test_case "traffic light c" `Quick
            (check_golden ~lang:Codegen.C ~source:Specs.traffic_light
               ~golden:"traffic.c.golden");
          Alcotest.test_case "traffic light verilog" `Quick
            (check_golden ~lang:Codegen.Verilog ~source:Specs.traffic_light
               ~golden:"traffic.v");
        ] );
      ( "microcode",
        [
          (* Locks the generated stack-machine specification itself: the ROM
             tables, data path and RAM wiring of Appendix D/E, as printed by
             the canonical pretty-printer. *)
          Alcotest.test_case "stack machine spec" `Quick (fun () ->
              let generated =
                Asim_core.Pretty.spec
                  (Asim_stackm.Microcode.spec
                     ~program:Asim_stackm.Programs.sieve ())
              in
              let expected =
                read_file (Filename.concat golden_dir "stackm.asim.golden")
              in
              match first_diff generated expected with
              | None -> ()
              | Some (line, got, want) ->
                  Alcotest.failf
                    "stackm.asim.golden: first difference at line %d:\n\
                    \  generated: %s\n\
                    \  golden:    %s"
                    line got want);
        ] );
    ]
