(* Tests for the native-compiled engine ([Asim_jit.Jit]): the spec lowered
   to an OCaml module, compiled by the host toolchain and Dynlinked back in.
   Covered here: cycle-level lockstep with the interpreter and the flat
   kernel on the two big demo machines, observable equality (trace text,
   I/O events, final memories, statistics, faults) through the fuzz
   oracle, span-verified artifact-cache hits, and recovery from a
   corrupted on-disk artifact.  Every test no-ops when no OCaml toolchain
   answers on PATH — the engine's own availability probe is the gate. *)

module Machine = Asim.Machine
module Jit = Asim.Jit
module Oracle = Asim_fuzz.Oracle
module Tracer = Asim_obs.Tracer

let quiet = Machine.quiet_config

(* One shared artifact cache for the whole binary, so each distinct spec
   pays the out-of-process compiler exactly once; routed through the
   environment so oracle-built native machines land in it too. *)
let cache_dir =
  let dir = Filename.temp_file "asim-test-jit" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Unix.putenv "ASIM_JIT_CACHE_DIR" dir;
  dir

let rec remove_tree path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> remove_tree (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

let () = at_exit (fun () -> remove_tree cache_dir)

let if_toolchain f () = if Jit.available () then f ()

(* ------------------------------------------------------------------ *)
(* Cycle-for-cycle lockstep on the goldens                            *)
(* ------------------------------------------------------------------ *)

let lockstep name (spec : Asim.Spec.t) ~cycles =
  let analysis = Asim.Analysis.analyze spec in
  let names =
    List.map
      (fun (c : Asim.Component.t) -> c.Asim.Component.name)
      spec.Asim.Spec.components
  in
  let engines =
    [
      ("interp", Asim.Interp.create ~config:quiet analysis);
      ("flat", Asim.Flat.create ~config:quiet analysis);
      ("native", Jit.create ~config:quiet ~cache_dir analysis);
    ]
  in
  let reference = snd (List.hd engines) in
  for cycle = 1 to cycles do
    List.iter (fun (_, m) -> m.Machine.step ()) engines;
    List.iter
      (fun comp ->
        let expect = reference.Machine.read comp in
        List.iter
          (fun (ename, m) ->
            let got = m.Machine.read comp in
            if got <> expect then
              Alcotest.failf "%s: cycle %d, component %s: %s=%d, interp=%d" name
                cycle comp ename got expect)
          (List.tl engines))
      names
  done;
  List.iter
    (fun (c : Asim.Component.t) ->
      match c.Asim.Component.kind with
      | Asim.Component.Memory { cells; _ } ->
          for i = 0 to cells - 1 do
            let expect = reference.Machine.read_cell c.Asim.Component.name i in
            List.iter
              (fun (ename, m) ->
                Alcotest.(check int)
                  (Printf.sprintf "%s: %s cell %s[%d]" name ename
                     c.Asim.Component.name i)
                  expect
                  (m.Machine.read_cell c.Asim.Component.name i))
              (List.tl engines)
          done
      | _ -> ())
    spec.Asim.Spec.components

let test_lockstep_sieve =
  if_toolchain (fun () ->
      lockstep "stackm-sieve"
        (Asim_stackm.Microcode.spec ~program:Asim_stackm.Demos.sieve_reassembled ())
        ~cycles:1200)

let test_lockstep_tinyc =
  if_toolchain (fun () ->
      lockstep "tinyc-demo"
        (Asim_tinyc.Machine.spec ~program:Asim_tinyc.Machine.demo_image ())
        ~cycles:800)

(* ------------------------------------------------------------------ *)
(* Full observable equality through the oracle                        *)
(* ------------------------------------------------------------------ *)

(* [Oracle.check] compares everything the paper treats as observable:
   per-cycle outputs, trace text, I/O event streams, final memory images,
   access statistics and runtime errors. *)
let test_oracle_examples =
  if_toolchain (fun () ->
      assert (List.mem Oracle.Native Oracle.all);
      List.iter
        (fun (name, source) ->
          let spec = Asim.Parser.parse_string source in
          match Oracle.check ~engines:[ Oracle.Interp; Oracle.Native ] spec with
          | None -> ()
          | Some d ->
              Alcotest.failf "example %s diverged: %s" name
                (Oracle.divergence_to_string d))
        Asim.Specs.all)

let test_oracle_generated =
  if_toolchain (fun () ->
      for index = 0 to 11 do
        let spec = Asim_fuzz.Gen.(spec_at default_size) ~seed:0x1217 ~index in
        match
          Oracle.check ~cycles:40 ~engines:[ Oracle.Interp; Oracle.Native ] spec
        with
        | None -> ()
        | Some d ->
            Alcotest.failf "generated spec %d diverged: %s" index
              (Oracle.divergence_to_string d)
      done)

(* Fault injection enters the generated code through a host closure; the
   faulty trace must match the interpreter's character for character. *)
let counter = "#c\n= 8\ncount* inc .\nA inc 4 count 1\nM count 0 inc 1 1\n.\n"

let test_fault_differential =
  if_toolchain (fun () ->
      let run build =
        let analysis = Asim.load_string counter in
        let buf = Buffer.create 256 in
        let config =
          {
            quiet with
            Machine.trace = Asim.Trace.buffer_sink buf;
            faults =
              [
                Asim.Fault.stuck_at ~first_cycle:2 ~last_cycle:4 "inc" 0;
                Asim.Fault.flip_bit ~first_cycle:6 "count" 1;
              ];
          }
        in
        let m : Machine.t = build config analysis in
        Machine.run m ~cycles:10;
        Buffer.contents buf
      in
      let interp = run (fun config a -> Asim.Interp.create ~config a) in
      let native = run (fun config a -> Jit.create ~config ~cache_dir a) in
      Alcotest.(check string) "faulty trace agrees" interp native;
      Alcotest.(check bool) "fault changed the trace" true
        (interp <> run (fun config a ->
             Asim.Interp.create ~config:{ config with Machine.faults = [] } a)))

(* ------------------------------------------------------------------ *)
(* Artifact cache: spans, hits, and corruption recovery               *)
(* ------------------------------------------------------------------ *)

let span_cache tracer span_name =
  List.filter_map
    (fun (e : Tracer.event) ->
      if e.Tracer.name = span_name then List.assoc_opt "cache" e.Tracer.args
      else None)
    (Tracer.events tracer)

(* A spec of its own so this test controls the artifact's cache state. *)
let cache_spec = "#cachehit\n= 6\nr* n .\nA n 4 r 3\nM r 0 n 1 1\n.\n"

let test_cache_hit_spans =
  if_toolchain (fun () ->
      let analysis = Asim.load_string cache_spec in
      let artifact = Jit.artifact_path ~cache_dir analysis in
      if Sys.file_exists artifact then Sys.remove artifact;
      Jit.clear_memory_cache ();
      let t1 = Tracer.create () in
      let m1 = Jit.create ~config:quiet ~tracer:t1 ~cache_dir analysis in
      Alcotest.(check (list string))
        "first build compiles (cache miss)" [ "miss" ]
        (span_cache t1 "codegen.native.compile");
      Alcotest.(check bool) "dynlink span present" true
        (span_cache t1 "codegen.native.dynlink" <> []);
      (* Drop the in-process memo so the next create must go back to disk;
         the artifact is there now, so the compile span reports a hit. *)
      Jit.clear_memory_cache ();
      let t2 = Tracer.create () in
      let m2 = Jit.create ~config:quiet ~tracer:t2 ~cache_dir analysis in
      Alcotest.(check (list string))
        "second build reuses the artifact (cache hit)" [ "hit" ]
        (span_cache t2 "codegen.native.compile");
      Machine.run m1 ~cycles:6;
      Machine.run m2 ~cycles:6;
      Alcotest.(check int) "hit-built machine agrees" (m1.Machine.read "r")
        (m2.Machine.read "r"))

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* A stale cache file from a crashed or killed writer: garbage already
   sits at the artifact path when this process first looks.  (The spec
   must be one this binary has never Dynlinked: the system loader caches
   loaded plugins by path, so corruption of an already-loaded artifact is
   invisible until a fresh process.)  The engine must notice the load
   failure, rebuild once, and leave a good artifact behind. *)
let corrupt_spec = "#stale\n= 6\nr* n .\nA n 4 r 5\nM r 0 n 1 1\n.\n"

let test_corrupted_artifact_recompiles =
  if_toolchain (fun () ->
      let analysis = Asim.load_string corrupt_spec in
      let artifact = Jit.artifact_path ~cache_dir analysis in
      mkdir_p (Filename.dirname artifact);
      let oc = open_out artifact in
      output_string oc "not a plugin";
      close_out oc;
      Jit.clear_memory_cache ();
      let t = Tracer.create () in
      let m = Jit.create ~config:quiet ~tracer:t ~cache_dir analysis in
      let i = Asim.Interp.create ~config:quiet analysis in
      Machine.run m ~cycles:6;
      Machine.run i ~cycles:6;
      Alcotest.(check int) "recompiled plugin behaves" (i.Machine.read "r")
        (m.Machine.read "r");
      (* The spans tell the story: a hit on the stale bytes, then the
         rebuild's miss. *)
      Alcotest.(check (list string))
        "stale hit, then recompile" [ "hit"; "miss" ]
        (span_cache t "codegen.native.compile");
      (* The corrupt bytes were replaced by a working artifact. *)
      Alcotest.(check bool) "artifact repaired" true
        (Sys.file_exists artifact
        && (let ic = open_in_bin artifact in
            let n = in_channel_length ic in
            close_in ic;
            n > String.length "not a plugin")))

(* The generated source is deterministic: the cache key (canonical form)
   and the cached artifact stay honest across runs. *)
let test_generated_source_deterministic =
  if_toolchain (fun () ->
      let analysis = Asim.load_string cache_spec in
      Alcotest.(check string) "same source twice"
        (Jit.generate_source analysis)
        (Jit.generate_source analysis))

let () =
  Alcotest.run "jit"
    [
      ( "lockstep",
        [
          Alcotest.test_case "stackm-sieve vs interp+flat" `Slow test_lockstep_sieve;
          Alcotest.test_case "tinyc-demo vs interp+flat" `Slow test_lockstep_tinyc;
        ] );
      ( "observables",
        [
          Alcotest.test_case "embedded examples through the oracle" `Slow
            test_oracle_examples;
          Alcotest.test_case "generated specs through the oracle" `Slow
            test_oracle_generated;
          Alcotest.test_case "fault-injection differential" `Quick
            test_fault_differential;
        ] );
      ( "artifact cache",
        [
          Alcotest.test_case "compile spans report miss then hit" `Quick
            test_cache_hit_spans;
          Alcotest.test_case "corrupted artifact triggers recompile" `Quick
            test_corrupted_artifact_recompiles;
          Alcotest.test_case "generated source is deterministic" `Quick
            test_generated_source_deterministic;
        ] );
    ]
