(* The swap-point lockstep harness for the tiered engine
   ([Asim_tiered.Tiered]): flat-first execution with a background JIT
   hot-swap.  The engine's one load-bearing claim is that the handoff is
   invisible — at any cycle boundary, swapping from the flat kernel to the
   native engine changes no observable.  These tests force the swap at
   adversarial cycles (0, 1, mid-I/O, the final cycle, past the end, and
   never) on the demo machines and on generated fuzz specs, and compare
   every observable the paper recognizes (per-cycle outputs, trace text,
   I/O event streams, final memory images, access statistics, faults,
   runtime errors) against single-engine runs.  A planted off-by-one
   ([ASIM_TIERED_SKEW=1]) proves the harness has teeth.

   The tiered engine is always available — without a toolchain it degrades
   to flat-only with identical observables — so the lockstep legs run
   unconditionally; only the assertions about a *successful* swap (status,
   spans, native lockstep) gate on the toolchain like test_jit does. *)

module Machine = Asim.Machine
module Tiered = Asim.Tiered
module Jit = Asim.Jit
module Io = Asim.Io
module Gen = Asim_fuzz.Gen
module Oracle = Asim_fuzz.Oracle
module Runner = Asim_batch.Runner
module Proto = Asim_batch.Proto
module Tracer = Asim_obs.Tracer

let quiet = Machine.quiet_config

(* One shared artifact cache for the whole binary (the test_jit idiom),
   routed through the environment so oracle- and batch-built machines land
   in it too. *)
let cache_dir =
  let dir = Filename.temp_file "asim-test-tiered" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Unix.putenv "ASIM_JIT_CACHE_DIR" dir;
  dir

let rec remove_tree path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun e -> remove_tree (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

let () = at_exit (fun () -> remove_tree cache_dir)

let toolchain = Jit.available ()

let if_toolchain f () = if toolchain then f ()

(* Scoped environment override.  An empty value is how this codebase spells
   "unset" (the engine treats [""] like an absent variable). *)
let with_env var value f =
  let old = Sys.getenv_opt var in
  Unix.putenv var value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv var (Option.value old ~default:""))
    f

let swap_env = "ASIM_TIERED_SWAP_AT"

(* ------------------------------------------------------------------ *)
(* The swap-point lockstep harness                                    *)
(* ------------------------------------------------------------------ *)

(* Flat-only is the reference; native-only (when the toolchain answers) and
   tiered must agree with it on everything.  [Native] before [Tiered] warms
   the in-process plugin memo, so the tiered observation swaps without
   spawning a compile domain. *)
let lineup () =
  Oracle.Flat :: (if toolchain then [ Oracle.Native ] else []) @ [ Oracle.Tiered ]

let check_at ~what ~cycles spec swap =
  with_env swap_env swap (fun () ->
      match Oracle.check ~cycles ~engines:(lineup ()) spec with
      | None -> ()
      | Some d ->
          Alcotest.failf "%s, swap at %s: %s" what swap
            (Oracle.divergence_to_string d))

(* The adversarial swap points for an [n]-cycle run: the very first
   boundary, the second, the middle, the last boundary before the run ends,
   one past the end (the forced swap never fires: the run must still
   terminate on flat), and an explicit [never]. *)
let swap_points ~cycles =
  [
    "0"; "1";
    string_of_int (cycles / 2);
    string_of_int (cycles - 1);
    string_of_int cycles;
    "never";
  ]

let sweep ~what ~cycles spec =
  List.iter (check_at ~what ~cycles spec) (swap_points ~cycles)

let counter = "#c\n= 8\ncount* inc .\nA inc 4 count 1\nM count 0 inc 1 1\n.\n"

let test_swap_points_counter () =
  sweep ~what:"counter" ~cycles:8 (Asim.Parser.parse_string counter)

let test_swap_points_sieve () =
  sweep ~what:"stackm-sieve" ~cycles:1200
    (Asim_stackm.Microcode.spec ~program:Asim_stackm.Demos.sieve_reassembled ())

let test_swap_points_tinyc () =
  sweep ~what:"tinyc-demo" ~cycles:800
    (Asim_tinyc.Machine.spec ~program:Asim_tinyc.Machine.demo_image ())

(* Generated fuzz specs: each sweeps the same adversarial points.  Runtime
   errors are in the oracle's observation record, so specs that trap midway
   check that the tiered engine traps at the same cycle with the same
   message. *)
let test_swap_points_generated () =
  for index = 0 to 5 do
    let spec = Gen.(spec_at default_size) ~seed:0x5a1d ~index in
    sweep ~what:(Printf.sprintf "generated spec %d" index) ~cycles:24 spec
  done

(* Mid-I/O: pick a spec that performs memory-mapped I/O and force the swap
   at a boundary strictly between two I/O events, so the recorded event
   stream must stitch together across the handoff. *)
let io_cycles spec ~cycles =
  let analysis = Asim.Analysis.analyze spec in
  let io, events = Io.recording ~feed:Oracle.default_feed () in
  let m = Asim.Flat.create ~config:{ quiet with Machine.io } analysis in
  let cycles_with_io = ref [] in
  let seen = ref 0 in
  for cycle = 0 to cycles - 1 do
    Machine.run m ~cycles:1;
    let n = List.length (events ()) in
    if n > !seen then begin
      seen := n;
      cycles_with_io := cycle :: !cycles_with_io
    end
  done;
  List.rev !cycles_with_io

let test_swap_mid_io () =
  (* Scan the generated-campaign specs for ones that do I/O on at least two
     distinct cycles; swap strictly between the first and last I/O cycle. *)
  let tested = ref 0 in
  for index = 0 to 19 do
    let spec = Gen.(spec_at default_size) ~seed:0x10a7 ~index in
    match io_cycles spec ~cycles:24 with
    | first :: (_ :: _ as rest) ->
        let last = List.nth rest (List.length rest - 1) in
        if last > first + 1 then begin
          incr tested;
          check_at
            ~what:(Printf.sprintf "generated spec %d mid-I/O" index)
            ~cycles:24 spec
            (string_of_int ((first + last + 1) / 2))
        end
    | _ -> ()
  done;
  if !tested = 0 then
    Alcotest.fail "no generated spec with two I/O cycles — weak self-test"

(* Embedded examples under the default (Auto) policy: whenever the
   background compile lands is whenever it lands — the result must not
   depend on it. *)
let test_auto_policy_examples () =
  List.iter
    (fun (name, source) ->
      let spec = Asim.Parser.parse_string source in
      match Oracle.check ~cycles:120 ~engines:(lineup ()) spec with
      | None -> ()
      | Some d ->
          Alcotest.failf "example %s diverged: %s" name
            (Oracle.divergence_to_string d))
    Asim.Specs.all

(* Fault injection crosses the swap: faults enter both engines through the
   same host closures, so a fault window straddling the handoff must
   produce the interpreter-identical trace, character for character. *)
let test_fault_across_swap =
  if_toolchain (fun () ->
      let run build =
        let analysis = Asim.load_string counter in
        let buf = Buffer.create 256 in
        let config =
          {
            quiet with
            Machine.trace = Asim.Trace.buffer_sink buf;
            faults =
              [
                Asim.Fault.stuck_at ~first_cycle:2 ~last_cycle:4 "inc" 0;
                Asim.Fault.flip_bit ~first_cycle:6 "count" 1;
              ];
          }
        in
        let m : Machine.t = build config analysis in
        Machine.run m ~cycles:10;
        Buffer.contents buf
      in
      let interp = run (fun config a -> Asim.Interp.create ~config a) in
      (* Swap at cycle 3: inside the stuck-at window, before the bit flip. *)
      let tiered =
        run (fun config a ->
            Tiered.create ~config ~cache_dir ~swap_at:(Tiered.At 3) a)
      in
      Alcotest.(check string) "faulty trace agrees across the swap" interp tiered)

(* The planted skew: ASIM_TIERED_SKEW=1 mis-numbers the native engine's
   first cycle by one at the handoff.  The harness must catch it — if this
   test fails, the lockstep comparisons above prove nothing. *)
let test_skew_is_caught =
  if_toolchain (fun () ->
      with_env "ASIM_TIERED_SKEW" "1" (fun () ->
          with_env swap_env "3" (fun () ->
              let spec = Asim.Parser.parse_string counter in
              match
                Oracle.check ~engines:[ Oracle.Flat; Oracle.Tiered ] spec
              with
              | Some _ -> ()
              | None ->
                  Alcotest.fail
                    "harness failed to catch a deliberately skewed handoff")))

(* ------------------------------------------------------------------ *)
(* Status, spans, and policy plumbing                                 *)
(* ------------------------------------------------------------------ *)

let swap_spans tracer =
  List.filter
    (fun (e : Tracer.event) -> e.Tracer.name = "tiered.swap")
    (Tracer.events tracer)

let arg name (e : Tracer.event) = List.assoc_opt name e.Tracer.args

let test_status_swapped =
  if_toolchain (fun () ->
      let analysis = Asim.load_string counter in
      let tracer = Tracer.create () in
      let m, status =
        Tiered.create_status ~config:quiet ~tracer ~cache_dir
          ~swap_at:(Tiered.At 3) analysis
      in
      Alcotest.(check string) "starts on flat" "flat" (status ()).Tiered.engine;
      Machine.run m ~cycles:8;
      (match (status ()).Tiered.state with
      | Tiered.Swapped 3 -> ()
      | s ->
          Alcotest.failf "expected swapped at 3, got %s"
            (Tiered.swap_state_to_string s));
      Alcotest.(check string) "now on native" "native" (status ()).Tiered.engine;
      Alcotest.(check int) "cycle count carried over" 8
        (m.Machine.current_cycle ());
      match swap_spans tracer with
      | [ e ] ->
          Alcotest.(check (option string)) "span cycle" (Some "3") (arg "cycle" e);
          Alcotest.(check (option string))
            "span outcome" (Some "swapped") (arg "outcome" e);
          (match arg "mode" e with
          | Some ("wait" | "ready") -> ()
          | m ->
              Alcotest.failf "span mode %S"
                (Option.value m ~default:"<missing>"))
      | spans -> Alcotest.failf "expected exactly one swap span, got %d"
                   (List.length spans))

let test_never_policy () =
  let analysis = Asim.load_string counter in
  let m, status =
    Tiered.create_status ~config:quiet ~cache_dir ~swap_at:Tiered.Never analysis
  in
  Machine.run m ~cycles:8;
  Alcotest.(check bool) "disabled" true ((status ()).Tiered.state = Tiered.Disabled);
  Alcotest.(check string) "stays on flat" "flat" (status ()).Tiered.engine;
  let flat = Asim.run_string ~config:quiet ~engine:Asim.FlatKernel counter in
  Alcotest.(check int) "same result as flat" (flat.Machine.read "count")
    (m.Machine.read "count")

let test_swap_past_end_stays_pending =
  if_toolchain (fun () ->
      (* A forced swap point beyond the run: the handoff never fires, the
         run completes on flat, and nothing blocks on the compile. *)
      let analysis = Asim.load_string counter in
      let m, status =
        Tiered.create_status ~config:quiet ~cache_dir ~swap_at:(Tiered.At 100)
          analysis
      in
      Machine.run m ~cycles:8;
      (match (status ()).Tiered.state with
      | Tiered.Pending | Tiered.Swapped _ -> ()
      (* Pending is the expected terminal state here; Swapped cannot
         actually occur with At 100 but the match keeps the assertion about
         what must NOT happen: Failed/Unavailable/Disabled. *)
      | s ->
          Alcotest.failf "unexpected state %s" (Tiered.swap_state_to_string s));
      Alcotest.(check string) "still on flat" "flat" (status ()).Tiered.engine)

(* The Auto policy defers the compile: a run shorter than
   [Tiered.auto_spawn_cycles] must never spawn the background domain (no
   compile span, state still Pending), and a run that crosses the
   threshold must eventually swap and keep flat's observables. *)
let test_auto_defers_then_swaps =
  if_toolchain (fun () ->
      let defer_spec = "#defer\n= 6\nr* n .\nA n 4 r 5\nM r 0 n 1 1\n.\n" in
      let analysis = Asim.load_string defer_spec in
      let artifact = Jit.artifact_path ~cache_dir analysis in
      if Sys.file_exists artifact then Sys.remove artifact;
      Jit.clear_memory_cache ();
      let tracer = Tracer.create () in
      let m, status =
        Tiered.create_status ~config:quiet ~tracer ~cache_dir
          ~swap_at:Tiered.Auto analysis
      in
      Machine.run m ~cycles:2048;
      Alcotest.(check bool) "short run stays pending" true
        ((status ()).Tiered.state = Tiered.Pending);
      Alcotest.(check int) "no compile span before the threshold" 0
        (List.length
           (List.filter
              (fun (e : Tracer.event) ->
                e.Tracer.name = "codegen.native.compile")
              (Tracer.events tracer)));
      (* Cross the threshold: the spawn fires, and within the deadline the
         compile lands and some later boundary swaps. *)
      Machine.run m ~cycles:Tiered.auto_spawn_cycles;
      let deadline = Unix.gettimeofday () +. 120.0 in
      let rec wait_for_swap () =
        match (status ()).Tiered.state with
        | Tiered.Swapped _ -> ()
        | Tiered.Pending when Unix.gettimeofday () < deadline ->
            Machine.run m ~cycles:1024;
            wait_for_swap ()
        | s ->
            Alcotest.failf "auto swap did not land: %s"
              (Tiered.swap_state_to_string s)
      in
      wait_for_swap ();
      Alcotest.(check string) "now on native" "native" (status ()).Tiered.engine;
      (* The swap cycle depends on compile timing, but the observable must
         not: replay the same cycle count flat-only. *)
      let total = m.Machine.current_cycle () in
      let flat = Asim.Flat.create ~config:quiet analysis in
      Machine.run flat ~cycles:total;
      Alcotest.(check int) "agrees with flat after the auto swap"
        (flat.Machine.read "r") (m.Machine.read "r"))

let test_policy_strings () =
  List.iter
    (fun (s, p) ->
      Alcotest.(check bool) ("parse " ^ s) true (Tiered.policy_of_string s = Some p))
    [ ("auto", Tiered.Auto); ("never", Tiered.Never); ("off", Tiered.Never);
      ("0", Tiered.At 0); ("42", Tiered.At 42) ];
  List.iter
    (fun s ->
      Alcotest.(check bool) ("reject " ^ s) true (Tiered.policy_of_string s = None))
    [ "-1"; "later"; "1.5"; "" ];
  List.iter
    (fun p ->
      Alcotest.(check bool) "round trip" true
        (Tiered.policy_of_string (Tiered.policy_to_string p) = Some p))
    [ Tiered.Auto; Tiered.Never; Tiered.At 7 ]

let test_malformed_env_rejected () =
  with_env swap_env "sideways" (fun () ->
      let analysis = Asim.load_string counter in
      match Tiered.create ~config:quiet ~cache_dir analysis with
      | exception Asim.Error.Error { phase = Asim.Error.Runtime; message; _ } ->
          Alcotest.(check bool) "names the variable" true
            (let needle = swap_env in
             let nl = String.length needle and hl = String.length message in
             let rec go i =
               i + nl <= hl && (String.sub message i nl = needle || go (i + 1))
             in
             go 0)
      | _ -> Alcotest.fail "malformed ASIM_TIERED_SWAP_AT accepted")

(* ------------------------------------------------------------------ *)
(* QCheck: swap timing is observably irrelevant                       *)
(* ------------------------------------------------------------------ *)

(* Random (spec index, swap cycle, halt cycle) triples: tiered under a
   forced swap must equal flat-only and native-only however the three
   numbers land — including swaps at 0, at the halt cycle, and far past it.
   The spec space is a fixed-seed slice of the fuzz generator's campaign
   (so QCheck shrinks over a small index domain and every counterexample is
   replayable as [Gen.spec_at ~seed:0x71e6 ~index]); the triple itself
   shrinks through QCheck's integer shrinkers. *)
let swap_equivalence_test =
  QCheck.Test.make ~name:"tiered = flat-only = native-only at random swap points"
    ~count:40
    QCheck.(triple (int_bound 7) (int_bound 30) (int_range 1 24))
    (fun (index, swap, halt) ->
      if not toolchain then true
      else begin
        let spec = Gen.(spec_at default_size) ~seed:0x71e6 ~index in
        with_env swap_env (string_of_int swap) (fun () ->
            match Oracle.check ~cycles:halt ~engines:(lineup ()) spec with
            | None -> true
            | Some d ->
                QCheck.Test.fail_reportf
                  "spec %d, swap at %d, halt at %d: %s" index swap halt
                  (Oracle.divergence_to_string d))
      end)

(* ------------------------------------------------------------------ *)
(* Concurrency: single-flight and crash isolation                     *)
(* ------------------------------------------------------------------ *)

(* A spec of its own so this test controls its cold-cache state. *)
let sflight_spec = "#sflight\n= 6\nr* n .\nA n 4 r 3\nM r 0 n 1 1\n.\n"

let test_single_flight =
  if_toolchain (fun () ->
      (* Four workers race tiered machines on the same cold spec, each
         forcing the swap at cycle 0 (so each blocks until the compile is
         decided).  The single-flight locks must run the out-of-process
         compiler exactly once, and everyone must finish with the flat
         kernel's answer. *)
      let analysis = Asim.load_string sflight_spec in
      let artifact = Jit.artifact_path ~cache_dir analysis in
      if Sys.file_exists artifact then Sys.remove artifact;
      Jit.clear_memory_cache ();
      let tracers = List.init 4 (fun _ -> Tracer.create ()) in
      let workers =
        List.map
          (fun tracer ->
            Domain.spawn (fun () ->
                let m =
                  Tiered.create ~config:quiet ~tracer ~cache_dir
                    ~swap_at:(Tiered.At 0) analysis
                in
                Machine.run m ~cycles:6;
                m.Machine.read "r"))
          tracers
      in
      let results = List.map Domain.join workers in
      let flat = Asim.run_string ~config:quiet ~engine:Asim.FlatKernel sflight_spec in
      List.iter
        (fun r ->
          Alcotest.(check int) "worker agrees with flat" (flat.Machine.read "r") r)
        results;
      let misses =
        List.concat_map
          (fun tracer ->
            List.filter_map
              (fun (e : Tracer.event) ->
                if e.Tracer.name = "codegen.native.compile" then
                  match arg "cache" e with Some "miss" -> Some () | _ -> None
                else None)
              (Tracer.events tracer))
          tracers
      in
      Alcotest.(check int) "exactly one compile across four workers" 1
        (List.length misses))

(* A spec this process has never compiled, so the batch crash-isolation
   test below really exercises a failing background compile. *)
let crash_spec = "#crashy\n= 6\nr* n .\nA n 4 r 7\nM r 0 n 1 1\n.\n"

let batch_drive ~jobs lines =
  let t = Runner.create () in
  let remaining = ref lines in
  let next () =
    match !remaining with
    | [] -> None
    | l :: rest ->
        remaining := rest;
        Some l
  in
  let out = ref [] in
  let n = Runner.process t ~jobs ~next ~emit:(fun l -> out := l :: !out) in
  (n, List.rev !out)

let job_line ?(engine = "tiered") spec =
  Asim_batch.Json.to_string
    (Asim_batch.Json.Obj
       [
         ("spec", Asim_batch.Json.String spec);
         ("engine", Asim_batch.Json.String engine);
         ("want", Asim_batch.Json.List [ Asim_batch.Json.String "outputs" ]);
       ])

let test_batch_crash_isolation () =
  (* The background compile fails mid-batch (the artifact cache points
     inside /dev/null, so mkdir traps).  Every tiered job must still
     complete on the flat kernel — no deadlock, no dead worker — and render
     the same results as flat-engine jobs. *)
  Jit.clear_memory_cache ();
  with_env "ASIM_JIT_CACHE_DIR" "/dev/null/nowhere" (fun () ->
      with_env swap_env "2" (fun () ->
          let lines = List.init 4 (fun _ -> job_line crash_spec) in
          let n, tiered_out = batch_drive ~jobs:2 lines in
          Alcotest.(check int) "all jobs completed" 4 n;
          List.iter
            (fun line ->
              Alcotest.(check bool) "job ok" true
                (let needle = {|"status":"ok"|} in
                 let nl = String.length needle and hl = String.length line in
                 let rec go i =
                   i + nl <= hl && (String.sub line i nl = needle || go (i + 1))
                 in
                 go 0))
            tiered_out;
          (* Strip per-line indices aside: tiered-under-failure must render
             exactly what the flat engine renders. *)
          let _, flat_out =
            batch_drive ~jobs:2
              (List.init 4 (fun _ -> job_line ~engine:"flat" crash_spec))
          in
          Alcotest.(check (list string)) "identical to flat results" flat_out
            tiered_out))

let test_batch_jobs_no_double_compile =
  if_toolchain (fun () ->
      (* Tiered under a parallel batch: same spec, forced cycle-0 swap,
         four workers.  Must terminate, agree with jobs=1, and leave a
         single artifact behind. *)
      with_env swap_env "0" (fun () ->
          let lines = List.init 8 (fun _ -> job_line sflight_spec) in
          let n1, seq = batch_drive ~jobs:1 lines in
          let n4, par = batch_drive ~jobs:4 lines in
          Alcotest.(check int) "sequential count" 8 n1;
          Alcotest.(check int) "parallel count" 8 n4;
          Alcotest.(check (list string)) "byte-identical results" seq par))

let () =
  Alcotest.run "tiered"
    [
      ( "swap points",
        [
          Alcotest.test_case "counter at adversarial cycles" `Quick
            test_swap_points_counter;
          Alcotest.test_case "stackm-sieve at adversarial cycles" `Slow
            test_swap_points_sieve;
          Alcotest.test_case "tinyc-demo at adversarial cycles" `Slow
            test_swap_points_tinyc;
          Alcotest.test_case "generated specs at adversarial cycles" `Slow
            test_swap_points_generated;
          Alcotest.test_case "swap between I/O events" `Slow test_swap_mid_io;
          Alcotest.test_case "auto policy on the examples" `Slow
            test_auto_policy_examples;
          Alcotest.test_case "fault window straddles the swap" `Quick
            test_fault_across_swap;
          Alcotest.test_case "planted skew is caught" `Quick test_skew_is_caught;
        ] );
      ( "status and policy",
        [
          Alcotest.test_case "status and span after a forced swap" `Quick
            test_status_swapped;
          Alcotest.test_case "never policy stays on flat" `Quick test_never_policy;
          Alcotest.test_case "swap point past the end" `Quick
            test_swap_past_end_stays_pending;
          Alcotest.test_case "auto defers the compile, then swaps" `Slow
            test_auto_defers_then_swaps;
          Alcotest.test_case "policy strings" `Quick test_policy_strings;
          Alcotest.test_case "malformed env rejected" `Quick
            test_malformed_env_rejected;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest swap_equivalence_test ] );
      ( "concurrency",
        [
          Alcotest.test_case "single flight across domains" `Quick
            test_single_flight;
          Alcotest.test_case "compile failure mid-batch" `Quick
            test_batch_crash_isolation;
          Alcotest.test_case "parallel batch determinism" `Quick
            test_batch_jobs_no_double_compile;
        ] );
    ]
