(* The network simulation service: content-addressed spec store, shard
   router, TCP frontend (upload / submit-by-hash, admission control,
   streaming completion order), and graceful shutdown of the CLI. *)

open Asim_serve

let counter = "# counter\n= 8\ncount* inc .\nA inc 4 count 1\nM count 0 inc 1 1\n.\n"

(* The same machine reformatted: must canonicalize to the same digest. *)
let counter_reformatted =
  "# counter\n\n=   8\n  count*    inc  .\n\nA inc 4 count 1   { the adder }\nM count 0 inc 1 1\n.\n"

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

module Json = Asim_batch.Json

(* --- spec store ------------------------------------------------------------- *)

let test_store_roundtrip () =
  let store = Store.create () in
  let u1 =
    match Store.upload store counter with
    | Ok u -> u
    | Error e -> Alcotest.failf "upload failed: %s" e
  in
  Alcotest.(check bool) "fresh" true u1.Store.fresh;
  Alcotest.(check int) "components" 2 u1.Store.components;
  Alcotest.(check bool) "md5 hex digest" true (Asim_batch.Proto.is_md5_hex u1.Store.digest);
  (* the reformatted source is the same spec: same digest, not fresh *)
  (match Store.upload store counter_reformatted with
  | Ok u2 ->
      Alcotest.(check string) "same canonical digest" u1.Store.digest u2.Store.digest;
      Alcotest.(check bool) "dedup" false u2.Store.fresh
  | Error e -> Alcotest.failf "re-upload failed: %s" e);
  Alcotest.(check int) "one stored spec" 1 (Store.count store);
  Alcotest.(check int) "two accepted uploads" 2 (Store.uploads store);
  (match Store.find store u1.Store.digest with
  | Some canonical ->
      Alcotest.(check bool) "stores the canonical form" true
        (contains canonical "A inc 4 count 1")
  | None -> Alcotest.fail "digest not found");
  Alcotest.(check (option string)) "unknown digest" None
    (Store.find store (String.make 32 '0'))

let test_store_rejects_bad_spec () =
  let store = Store.create () in
  match Store.upload store "this is not a spec" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> Alcotest.(check int) "nothing stored" 0 (Store.count store)

let test_store_capacity () =
  let store = Store.create ~capacity:1 () in
  (match Store.upload store counter with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "first upload failed: %s" e);
  let other = "# other\n= 4\nx* y .\nA y 4 x 1\nM x 0 y 1 1\n.\n" in
  (match Store.upload store other with
  | Ok _ -> Alcotest.fail "exceeded capacity"
  | Error msg -> Alcotest.(check bool) "names the limit" true (contains msg "full"));
  (* duplicates of a stored spec still land at capacity *)
  match Store.upload store counter_reformatted with
  | Ok u -> Alcotest.(check bool) "duplicate accepted" false u.Store.fresh
  | Error e -> Alcotest.failf "duplicate refused: %s" e

(* --- shard router ----------------------------------------------------------- *)

let test_router_deterministic () =
  let digest s = Digest.to_hex (Digest.string s) in
  for i = 0 to 199 do
    let d = digest (string_of_int i) in
    for shards = 1 to 7 do
      let a = Router.shard_of_digest ~shards d in
      let b = Router.shard_of_digest ~shards d in
      Alcotest.(check int) "same digest, same shard" a b;
      if a < 0 || a >= shards then Alcotest.failf "shard %d out of range" a
    done
  done;
  (* a hash job and the inline canonical it resolves to route together *)
  let spec = Asim_syntax.Parser.parse_string counter in
  let canonical = Asim_core.Pretty.spec spec in
  let h = digest canonical in
  Alcotest.(check int) "hash and inline colocate"
    (Router.shard_of_digest ~shards:5 (Router.digest_of_source (Asim_batch.Proto.Hash h)))
    (Router.shard_of_digest ~shards:5
       (Router.digest_of_source (Asim_batch.Proto.Inline canonical)))

let test_router_spreads () =
  (* not a uniformity proof, just: 64 random digests on 4 shards must not
     all collapse onto one *)
  let used = Array.make 4 false in
  for i = 0 to 63 do
    used.(Router.shard_of_digest ~shards:4 (Digest.to_hex (Digest.string (string_of_int i))))
    <- true
  done;
  Alcotest.(check bool) "more than one shard used" true
    (Array.to_list used |> List.filter (fun b -> b) |> List.length > 1)

(* --- in-process TCP server --------------------------------------------------- *)

let with_server ?(config = Server.default_config) f =
  let server = Server.create ~config () in
  let port = Server.listen server (Unix.ADDR_INET (Unix.inet_addr_loopback, 0)) in
  let th = Thread.create Server.serve server in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown server;
      Thread.join th)
    (fun () -> f server port)

let connect port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let send fd line =
  let b = Bytes.of_string (line ^ "\n") in
  let rec go off =
    if off < Bytes.length b then go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

(* blocking reader; returns the next reply line *)
let reader fd =
  let ic = Unix.in_channel_of_descr fd in
  fun () -> input_line ic

let int_field json key =
  match Json.member key json with Some (Json.Int i) -> Some i | _ -> None

let str_field json key =
  match Json.member key json with Some (Json.String s) -> Some s | _ -> None

let test_upload_submit_roundtrip () =
  with_server (fun _server port ->
      let fd = connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let next = reader fd in
          send fd (Printf.sprintf {|{"control":"upload","spec":%s,"id":"up"}|}
                     (Json.to_string (Json.String counter)));
          let up = Json.parse (next ()) in
          Alcotest.(check (option string)) "upload ok" (Some "ok") (str_field up "status");
          Alcotest.(check (option string)) "echoes id" (Some "up") (str_field up "id");
          let hash = Option.get (str_field up "hash") in
          (* duplicate upload: same hash, fresh=false *)
          send fd (Printf.sprintf {|{"control":"upload","spec":%s}|}
                     (Json.to_string (Json.String counter_reformatted)));
          let up2 = Json.parse (next ()) in
          Alcotest.(check (option string)) "same hash" (Some hash) (str_field up2 "hash");
          Alcotest.(check bool) "not fresh" true
            (Json.member "fresh" up2 = Some (Json.Bool false));
          (* submit by hash, twice: the second run must hit the warm shard cache *)
          send fd (Printf.sprintf {|{"spec_hash":"%s"}|} hash);
          let r1 = Json.parse (next ()) in
          Alcotest.(check (option string)) "job ok" (Some "ok") (str_field r1 "status");
          Alcotest.(check (option int)) "counter runs 8 cycles" (Some 8)
            (int_field r1 "cycles");
          send fd (Printf.sprintf {|{"spec_hash":"%s"}|} hash);
          let r2 = Json.parse (next ()) in
          Alcotest.(check (option string)) "second job ok" (Some "ok")
            (str_field r2 "status");
          (* metrics scrape shows the warm hit on the shard cache *)
          send fd {|{"control":"metrics"}|};
          let m = Json.parse (next ()) in
          let text = Option.get (str_field m "metrics") in
          Alcotest.(check bool) "served from shard cache" true
            (contains text "asim_serve_shard_cache_hits{shard=\"0\"} 1");
          Alcotest.(check bool) "store gauge" true
            (contains text "asim_serve_store_specs 1")))

let test_cache_warm_span () =
  (* tracer-level proof that a repeat submit-by-hash is a cache hit *)
  let tracer = Asim_obs.Tracer.create () in
  let config = { Server.default_config with Server.tracer } in
  with_server ~config (fun _server port ->
      let fd = connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let next = reader fd in
          send fd (Printf.sprintf {|{"control":"upload","spec":%s}|}
                     (Json.to_string (Json.String counter)));
          let hash = Option.get (str_field (Json.parse (next ())) "hash") in
          send fd (Printf.sprintf {|{"spec_hash":"%s"}|} hash);
          ignore (next ());
          send fd (Printf.sprintf {|{"spec_hash":"%s"}|} hash);
          ignore (next ())));
  let lookups =
    List.filter
      (fun (e : Asim_obs.Tracer.event) -> e.name = "batch.cache_lookup")
      (Asim_obs.Tracer.events tracer)
  in
  let outcome (e : Asim_obs.Tracer.event) = List.assoc_opt "outcome" e.args in
  Alcotest.(check int) "two lookups" 2 (List.length lookups);
  Alcotest.(check bool) "first is the compile" true
    (List.exists (fun e -> outcome e = Some "miss") lookups);
  Alcotest.(check bool) "second hits warm" true
    (List.exists (fun e -> outcome e = Some "hit") lookups)

let test_unknown_hash () =
  with_server (fun _server port ->
      let fd = connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let next = reader fd in
          let bogus = String.make 32 'a' in
          send fd (Printf.sprintf {|{"spec_hash":"%s","id":"j1"}|} bogus);
          let r = Json.parse (next ()) in
          Alcotest.(check (option string)) "status error" (Some "error")
            (str_field r "status");
          Alcotest.(check (option string)) "echoes id" (Some "j1") (str_field r "id");
          Alcotest.(check bool) "names the hash" true
            (contains (Option.get (str_field r "error")) bogus);
          (* the connection survives and still serves jobs *)
          send fd {|{"example":"counter"}|};
          Alcotest.(check (option string)) "next job ok" (Some "ok")
            (str_field (Json.parse (next ())) "status")))

let slow_job ?id () =
  (* an interpreter job big enough to occupy a worker, bounded so tests
     never hang: it ends as ok or timeout, either is fine *)
  Printf.sprintf
    {|{"example":"counter","engine":"interp","cycles":100000000,"timeout_s":0.3%s}|}
    (match id with Some i -> Printf.sprintf {|,"id":"%s"|} i | None -> "")

let test_quota_exceeded () =
  let config =
    { Server.default_config with Server.max_in_flight = 1; queue_depth = 16 }
  in
  with_server ~config (fun _server port ->
      let fd = connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let next = reader fd in
          send fd (slow_job ~id:"slow" ());
          send fd {|{"example":"counter","id":"fast"}|};
          (* the quota refusal is immediate, so it streams back first *)
          let r1 = Json.parse (next ()) in
          Alcotest.(check (option string)) "rejected" (Some "rejected")
            (str_field r1 "status");
          Alcotest.(check (option string)) "the second job" (Some "fast")
            (str_field r1 "id");
          Alcotest.(check bool) "names the quota" true
            (contains (Option.get (str_field r1 "error")) "quota");
          (* the admitted job still answers *)
          let r2 = Json.parse (next ()) in
          Alcotest.(check (option string)) "slow job replies" (Some "slow")
            (str_field r2 "id")))

let test_queue_full () =
  let config =
    { Server.default_config with Server.shards = 1; queue_depth = 1 }
  in
  with_server ~config (fun _server port ->
      let fd = connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let next = reader fd in
          send fd (slow_job ~id:"a" ());
          send fd (slow_job ~id:"b" ());
          send fd (slow_job ~id:"c" ());
          let replies = List.init 3 (fun _ -> Json.parse (next ())) in
          let statuses = List.filter_map (fun r -> str_field r "status") replies in
          Alcotest.(check int) "every job answered" 3 (List.length statuses);
          Alcotest.(check bool) "backpressure surfaced" true
            (List.mem "overload" statuses);
          Alcotest.(check bool) "admitted work finished" true
            (List.exists (fun s -> s = "ok" || s = "timeout") statuses)))

let test_mid_job_disconnect () =
  let server = Server.create () in
  let port = Server.listen server (Unix.ADDR_INET (Unix.inet_addr_loopback, 0)) in
  let th = Thread.create Server.serve server in
  let fd = connect port in
  send fd (slow_job ());
  (* SO_LINGER 0: close sends RST, so the server's reply write fails fast *)
  Unix.setsockopt_optint fd Unix.SO_LINGER (Some 0);
  Unix.close fd;
  (* the server survives the loss and keeps serving other clients *)
  let fd2 = connect port in
  send fd2 {|{"example":"counter"}|};
  let r = Json.parse (reader fd2 ()) in
  Alcotest.(check (option string)) "other client unaffected" (Some "ok")
    (str_field r "status");
  Unix.close fd2;
  Server.shutdown server;
  Thread.join th;
  (* the orphaned result was counted, not silently lost *)
  let text = Server.prometheus server in
  let dropped =
    String.split_on_char '\n' text
    |> List.find_map (fun l ->
           match String.split_on_char ' ' l with
           | [ "asim_serve_dropped_results_total"; v ] -> int_of_string_opt v
           | _ -> None)
  in
  match dropped with
  | Some n when n >= 1 -> ()
  | Some n -> Alcotest.failf "dropped counter is %d, want >= 1" n
  | None -> Alcotest.fail "no dropped-results counter in scrape"

let test_oversized_and_malformed_lines () =
  let config = { Server.default_config with Server.max_line_bytes = 128 } in
  with_server ~config (fun _server port ->
      let fd = connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let next = reader fd in
          (* far past the limit, and not even JSON *)
          send fd (String.make 500 'x');
          let r0 = Json.parse (next ()) in
          Alcotest.(check (option string)) "oversized is an error reply"
            (Some "error") (str_field r0 "status");
          Alcotest.(check bool) "names the limit" true
            (contains (Option.get (str_field r0 "error")) "128 bytes");
          (* malformed JSON *)
          send fd "{nope";
          let r1 = Json.parse (next ()) in
          Alcotest.(check (option string)) "parse error reply" (Some "error")
            (str_field r1 "status");
          (* well-formed JSON, unknown field *)
          send fd {|{"example":"counter","bogus":1}|};
          let r2 = Json.parse (next ()) in
          Alcotest.(check bool) "names the field" true
            (contains (Option.get (str_field r2 "error")) "bogus");
          (* line numbers kept counting: 3 requests -> line 3 *)
          Alcotest.(check (option int)) "line numbering survives" (Some 3)
            (int_field r2 "line");
          (* and the connection still works *)
          send fd {|{"example":"counter"}|};
          Alcotest.(check (option string)) "still serving" (Some "ok")
            (str_field (Json.parse (next ())) "status")))

let test_completion_order_streaming () =
  (* two shards: a fast job behind a slow one on the other shard must not
     wait for it.  Pick two specs that provably route to different shards. *)
  let slow_spec = counter in
  let slow_digest = Router.digest_of_source (Asim_batch.Proto.Inline slow_spec) in
  let shards = 2 in
  let slow_shard = Router.shard_of_digest ~shards slow_digest in
  let fast_spec =
    let rec hunt i =
      if i > 50 then Alcotest.fail "no differently-routed spec found"
      else
        let s =
          Printf.sprintf "# v%d\n= 8\ncount* inc .\nA inc 4 count 1\nM count 0 inc 1 1\n.\n" i
        in
        if
          Router.shard_of_digest ~shards (Router.digest_of_source (Asim_batch.Proto.Inline s))
          <> slow_shard
        then s
        else hunt (i + 1)
    in
    hunt 0
  in
  let config = { Server.default_config with Server.shards } in
  with_server ~config (fun _server port ->
      let fd = connect port in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let next = reader fd in
          send fd
            (Printf.sprintf
               {|{"spec":%s,"engine":"interp","cycles":100000000,"timeout_s":0.5,"id":"slow"}|}
               (Json.to_string (Json.String slow_spec)));
          send fd
            (Printf.sprintf {|{"spec":%s,"id":"fast"}|}
               (Json.to_string (Json.String fast_spec)));
          let first = Json.parse (next ()) in
          Alcotest.(check (option string)) "fast job streams back first"
            (Some "fast") (str_field first "id");
          Alcotest.(check (option int)) "with its own index" (Some 1)
            (int_field first "index");
          let second = Json.parse (next ()) in
          Alcotest.(check (option string)) "slow job follows" (Some "slow")
            (str_field second "id")))

(* --- CLI: graceful shutdown -------------------------------------------------- *)

let binary =
  let dir = Filename.dirname Sys.executable_name in
  Filename.concat (Filename.concat (Filename.concat dir Filename.parent_dir_name) "bin")
    "main.exe"

let test_cli_sigterm_graceful () =
  let port_file = Filename.temp_file "asim-serve" ".port" in
  Sys.remove port_file;
  let out = Filename.temp_file "asim-serve" ".out" in
  let out_fd = Unix.openfile out [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let pid =
    Unix.create_process binary
      [| binary; "serve"; "--tcp"; "0"; "--port-file"; port_file |]
      Unix.stdin out_fd out_fd
  in
  Unix.close out_fd;
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove port_file with Sys_error _ -> ());
      try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let rec await n =
        if n = 0 then Alcotest.fail "server never wrote its port file"
        else if Sys.file_exists port_file && (Unix.stat port_file).Unix.st_size > 0
        then ()
        else begin
          Unix.sleepf 0.1;
          await (n - 1)
        end
      in
      await 100;
      let ic = open_in port_file in
      let port = int_of_string (String.trim (input_line ic)) in
      close_in ic;
      (* run one real job through the TCP frontend *)
      let fd = connect port in
      send fd {|{"example":"counter"}|};
      let r = Json.parse (reader fd ()) in
      Alcotest.(check (option string)) "job served over TCP" (Some "ok")
        (str_field r "status");
      Unix.close fd;
      Unix.kill pid Sys.sigterm;
      let _, status = Unix.waitpid [] pid in
      (match status with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED n -> Alcotest.failf "server exited %d" n
      | Unix.WSIGNALED s -> Alcotest.failf "server killed by signal %d" s
      | Unix.WSTOPPED _ -> Alcotest.fail "server stopped");
      (* the drain printed the final metrics summary *)
      let ic = open_in out in
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      Alcotest.(check bool) "final summary emitted" true (contains text "batch:"))

let () =
  Alcotest.run "serve"
    [
      ( "store",
        [
          Alcotest.test_case "upload round trip and dedup" `Quick test_store_roundtrip;
          Alcotest.test_case "rejects unparsable specs" `Quick test_store_rejects_bad_spec;
          Alcotest.test_case "bounded capacity" `Quick test_store_capacity;
        ] );
      ( "router",
        [
          Alcotest.test_case "deterministic placement" `Quick test_router_deterministic;
          Alcotest.test_case "spreads across shards" `Quick test_router_spreads;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "upload / submit-by-hash round trip" `Quick
            test_upload_submit_roundtrip;
          Alcotest.test_case "repeat hash submit hits warm cache" `Quick
            test_cache_warm_span;
          Alcotest.test_case "unknown hash is a structured error" `Quick
            test_unknown_hash;
          Alcotest.test_case "per-client quota" `Quick test_quota_exceeded;
          Alcotest.test_case "queue-full backpressure" `Quick test_queue_full;
          Alcotest.test_case "mid-job disconnect" `Quick test_mid_job_disconnect;
          Alcotest.test_case "oversized and malformed lines" `Quick
            test_oversized_and_malformed_lines;
          Alcotest.test_case "results stream in completion order" `Quick
            test_completion_order_streaming;
        ] );
      ( "cli",
        [
          Alcotest.test_case "SIGTERM drains and exits 0" `Quick
            test_cli_sigterm_graceful;
        ] );
    ]
