(* End-to-end tests of the `asim` command-line interface: each case execs
   the built binary and inspects its output. *)

(* The CLI binary lives next to this test inside _build; resolve it from the
   test executable's own location so the tests work under both `dune
   runtest` and `dune exec`. *)
let binary =
  let dir = Filename.dirname Sys.executable_name in
  Filename.concat (Filename.concat (Filename.concat dir Filename.parent_dir_name) "bin")
    "main.exe"

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* Run the CLI; returns (exit_code, combined stdout+stderr).  [env] is a
   space-separated list of VAR=value assignments applied to the child only
   (an empty value like PATH= clears the variable). *)
let run_cli ?(env = "") ?stdin_text args =
  let out = Filename.temp_file "asim-cli" ".out" in
  let stdin_redirect =
    match stdin_text with
    | None -> "< /dev/null"
    | Some text ->
        let path = Filename.temp_file "asim-cli" ".in" in
        write_file path text;
        "< " ^ Filename.quote path
  in
  let cmd =
    Printf.sprintf "%s%s %s %s > %s 2>&1"
      (if env = "" then "" else "env " ^ env ^ " ")
      (Filename.quote binary) args stdin_redirect (Filename.quote out)
  in
  let code = Sys.command cmd in
  let text = read_file out in
  Sys.remove out;
  (code, text)

let with_spec source f =
  let path = Filename.temp_file "asim-cli" ".asim" in
  write_file path source;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let counter = "# counter\n= 8\ncount* inc .\nA inc 4 count 1\nM count 0 inc 1 1\n.\n"

let check_ok label (code, text) needles =
  if code <> 0 then Alcotest.failf "%s: exit %d:\n%s" label code text;
  List.iter
    (fun needle ->
      if not (contains text needle) then
        Alcotest.failf "%s: missing %S in:\n%s" label needle text)
    needles

let test_example_listing () =
  check_ok "example" (run_cli "example")
    [ "counter"; "stack-machine-sieve"; "tiny-computer"; "divider-modular" ]

let test_example_dump () =
  let code, text = run_cli "example counter" in
  Alcotest.(check int) "exit" 0 code;
  Alcotest.(check bool) "is a spec" true (contains text "A inc 4 count 1")

let test_run_trace () =
  with_spec counter (fun path ->
      check_ok "run trace"
        (run_cli (Printf.sprintf "run %s" (Filename.quote path)))
        [ "Cycle   0 count= 0"; "Cycle   7 count= 7" ])

let test_run_stats () =
  with_spec counter (fun path ->
      check_ok "run stats"
        (run_cli (Printf.sprintf "run %s -q --stats" (Filename.quote path)))
        [ "cycles executed: 8"; "memory count" ])

let test_run_engines_agree () =
  with_spec counter (fun path ->
      let _, interp = run_cli (Printf.sprintf "run %s -e interp" (Filename.quote path)) in
      let _, compiled =
        run_cli (Printf.sprintf "run %s -e compiled" (Filename.quote path))
      in
      let _, flat = run_cli (Printf.sprintf "run %s -e flat" (Filename.quote path)) in
      Alcotest.(check string) "same trace" interp compiled;
      Alcotest.(check string) "flat trace" interp flat)

let test_bench () =
  let out = Filename.temp_file "asim-cli" ".json" in
  check_ok "bench"
    (run_cli
       (Printf.sprintf "bench -n 120 --reps 1 --check-cycles 120 -o %s"
          (Filename.quote out)))
    [
      "workload stackm-sieve";
      "flat vs compiled:";
      "differential check: all engines agree";
    ];
  let j = Asim_batch.Json.parse (read_file out) in
  Sys.remove out;
  Alcotest.(check (option string)) "schema"
    (Some "asim-bench-engines/1")
    (Option.bind (Asim_batch.Json.member "schema" j) Asim_batch.Json.to_string_opt)

let test_run_fault () =
  with_spec counter (fun path ->
      check_ok "run fault"
        (run_cli (Printf.sprintf "run %s --fault inc=stuck@42" (Filename.quote path)))
        [ "Cycle   2 count= 42" ])

let test_run_vcd () =
  with_spec counter (fun path ->
      let vcd = Filename.temp_file "asim-cli" ".vcd" in
      let _ =
        run_cli (Printf.sprintf "run %s -q --vcd %s" (Filename.quote path) (Filename.quote vcd))
      in
      let text = read_file vcd in
      Sys.remove vcd;
      Alcotest.(check bool) "vcd header" true (contains text "$enddefinitions $end"))

let test_check () =
  with_spec counter (fun path ->
      check_ok "check"
        (run_cli (Printf.sprintf "check %s" (Filename.quote path)))
        [ "2 components read."; "combinational order: inc" ])

let test_fmt_roundtrip () =
  with_spec counter (fun path ->
      let code, text = run_cli (Printf.sprintf "fmt %s" (Filename.quote path)) in
      Alcotest.(check int) "exit" 0 code;
      (* canonical output must itself parse *)
      let spec = Asim.Parser.parse_string text in
      Alcotest.(check int) "components" 2 (List.length spec.Asim.Spec.components))

let test_codegen () =
  with_spec counter (fun path ->
      check_ok "codegen pascal"
        (run_cli (Printf.sprintf "codegen %s -l pascal" (Filename.quote path)))
        [ "program simulator(input, output);"; "ljbinc := tempcount + 1;" ];
      check_ok "codegen ocaml"
        (run_cli (Printf.sprintf "codegen %s -l ocaml" (Filename.quote path)))
        [ "let dologic funct left right =" ];
      check_ok "codegen c"
        (run_cli (Printf.sprintf "codegen %s -l c" (Filename.quote path)))
        [ "#include <stdio.h>" ])

let test_netlist () =
  with_spec counter (fun path ->
      check_ok "netlist"
        (run_cli (Printf.sprintf "netlist %s" (Filename.quote path)))
        [ "4 bit adder" ];
      check_ok "netlist dot"
        (run_cli (Printf.sprintf "netlist %s -f dot" (Filename.quote path)))
        [ "digraph asim {" ])

let test_gates () =
  with_spec counter (fun path ->
      check_ok "gates"
        (run_cli (Printf.sprintf "gates %s --verify 10" (Filename.quote path)))
        [ "flip-flops"; "gate level matches the RTL engine over 10 cycles" ])

let test_pipeline () =
  with_spec counter (fun path ->
      check_ok "pipeline"
        (run_cli (Printf.sprintf "pipeline %s -l ocaml" (Filename.quote path)))
        [ "Generate code"; "Compile"; "Simulation time" ])

let test_asm () =
  let source =
    "nop\nenter 2\npush 3\nstore 1\nloop: load 1\nout\nload 1\npush 1\nneg\n\
     add\ndupe\nstore 1\nbz done\njmp loop\ndone: jmp done\n"
  in
  let path = Filename.temp_file "asim-cli" ".s" in
  write_file path source;
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      check_ok "asm run"
        (run_cli (Printf.sprintf "asm %s --run -n 1500" (Filename.quote path)))
        [ "output[1] <- 3"; "output[1] <- 2"; "output[1] <- 1" ];
      let code, text = run_cli (Printf.sprintf "asm %s" (Filename.quote path)) in
      Alcotest.(check int) "emits a spec" 0 code;
      let spec = Asim.Parser.parse_string text in
      Alcotest.(check bool) "spec has the machine" true
        (Asim.Spec.find spec "rom" <> None))

let test_profile () =
  with_spec counter (fun path ->
      check_ok "profile"
        (run_cli (Printf.sprintf "profile %s -c count -n 4" (Filename.quote path)))
        [ "4 cycles"; "count (4 samples):" ])

(* The default profiler mode: the human report names the spec's
   components, and the --json cost-model document's per-component eval
   counts under full scheduling exactly match an independent
   interp-engine recount — the acceptance identity, end-to-end through
   the CLI. *)
let test_profile_counters () =
  with_spec counter (fun path ->
      check_ok "profile report"
        (run_cli (Printf.sprintf "profile %s" (Filename.quote path)))
        [ "profile: engine=flat"; "inc"; "count" ];
      let evals_of args =
        let code, text =
          run_cli
            (Printf.sprintf "profile %s --json %s" (Filename.quote path) args)
        in
        if code <> 0 then Alcotest.failf "profile --json: exit %d:\n%s" code text;
        let j = Asim_batch.Json.parse text in
        match
          Option.bind (Asim_batch.Json.member "components" j)
            Asim_batch.Json.to_list
        with
        | None -> Alcotest.failf "profile --json: no components in:\n%s" text
        | Some comps ->
            List.map
              (fun c ->
                let str f =
                  Option.get
                    (Option.bind (Asim_batch.Json.member f c)
                       Asim_batch.Json.to_string_opt)
                in
                let num f =
                  Option.get
                    (Option.bind (Asim_batch.Json.member f c)
                       Asim_batch.Json.to_int)
                in
                (str "name", num "evals"))
              comps
      in
      let flat_full = evals_of "--schedule full" in
      let interp = evals_of "-e interp" in
      Alcotest.(check (list (pair string int)))
        "flat(full) evals match interp recount" interp flat_full)

let test_coverage () =
  with_spec counter (fun path ->
      check_ok "coverage"
        (run_cli (Printf.sprintf "coverage %s --bits 4" (Filename.quote path)))
        [ "fault coverage:"; "detected" ])

let test_wavediff () =
  with_spec counter (fun path ->
      let h = Filename.temp_file "asim-cli" ".vcd" in
      let f = Filename.temp_file "asim-cli" ".vcd" in
      Fun.protect
        ~finally:(fun () ->
          Sys.remove h;
          Sys.remove f)
        (fun () ->
          let _ = run_cli (Printf.sprintf "run %s -q --vcd %s" (Filename.quote path) (Filename.quote h)) in
          let _ =
            run_cli
              (Printf.sprintf "run %s -q --vcd %s --fault count=flip@0:3-5"
                 (Filename.quote path) (Filename.quote f))
          in
          let code, text =
            run_cli (Printf.sprintf "wavediff %s %s" (Filename.quote h) (Filename.quote h))
          in
          Alcotest.(check int) "identical dumps exit 0" 0 code;
          Alcotest.(check bool) "equivalent" true (contains text "equivalent");
          let code, text =
            run_cli (Printf.sprintf "wavediff %s %s" (Filename.quote h) (Filename.quote f))
          in
          Alcotest.(check int) "divergent dumps exit 1" 1 code;
          Alcotest.(check bool) "names the signal" true (contains text "count")))

let test_interactive () =
  with_spec counter (fun path ->
      check_ok "interactive dialogue"
        (run_cli ~stdin_text:"3\n6\n0\n"
           (Printf.sprintf "run %s -n 0 -i" (Filename.quote path)))
        [
          "Number of cycles to trace"; "Cycle   2 count= 2";
          "Continue to cycle (0 to quit)"; "Cycle   5 count= 5";
        ])

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> remove_tree (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let test_fuzz_clean () =
  check_ok "fuzz clean"
    (run_cli "fuzz --seed 42 --count 50 -q")
    [ "50 specs tested (seed 42"; "no divergences" ]

let test_fuzz_replay_deterministic () =
  (* The same seed must replay the identical spec sequence byte for byte,
     including single-spec replay via --start. *)
  let code_a, a = run_cli "fuzz --seed 9 --count 3 --print-specs -q" in
  let code_b, b = run_cli "fuzz --seed 9 --count 3 --print-specs -q" in
  Alcotest.(check int) "first run exit" 0 code_a;
  Alcotest.(check int) "second run exit" 0 code_b;
  Alcotest.(check string) "byte-identical replay" a b;
  let _, single = run_cli "fuzz --seed 9 --start 2 --count 1 --print-specs -q" in
  (* Per-index seed derivation: replaying index 2 alone reprints the very
     spec the full campaign generated (modulo the differing summary line). *)
  String.split_on_char '\n' single
  |> List.iter (fun line ->
         if line <> "" && not (contains line "specs tested") then
           Alcotest.(check bool)
             (Printf.sprintf "replayed line %S appears in the sequence" line)
             true (contains a line))

let test_fuzz_divergence_bundle () =
  (* The fault-injected engine forces a divergence; the campaign must report
     it, exit non-zero, and emit a shrunk reproducer bundle. *)
  let dir = Filename.temp_file "asim-fuzz" ".artifacts" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then remove_tree dir)
    (fun () ->
      let code, text =
        run_cli
          (Printf.sprintf "fuzz --seed 42 --count 60 --inject-bug --artifacts-dir %s -q"
             (Filename.quote dir))
      in
      Alcotest.(check int) "divergence exits 1" 1 code;
      Alcotest.(check bool) "names the buggy engine" true (contains text "buggy");
      Alcotest.(check bool) "reports a divergence" true (contains text "diverge");
      let bundles = Sys.readdir dir in
      Alcotest.(check bool) "bundle written" true (Array.length bundles > 0);
      let bundle = Filename.concat dir bundles.(0) in
      let repro = read_file (Filename.concat bundle "repro.asim") in
      let spec = Asim.Parser.parse_string repro in
      let n = List.length spec.Asim.Spec.components in
      if n > 5 then
        Alcotest.failf "reproducer not minimal (%d components):\n%s" n repro;
      Alcotest.(check bool) "bundle has metadata" true
        (Sys.file_exists (Filename.concat bundle "META.txt"));
      Alcotest.(check bool) "bundle keeps the original" true
        (Sys.file_exists (Filename.concat bundle "original.asim")))

let manifest_lines =
  [
    {|{"example":"counter","id":"a"}|};
    {|{"example":"counter","engine":"interp","id":"b","want":["outputs","stats"]}|};
    "not json at all";
    {|{"example":"counter","cycles":3,"id":"d"}|};
  ]

let with_manifest f =
  let path = Filename.temp_file "asim-cli" ".jsonl" in
  write_file path (String.concat "\n" manifest_lines ^ "\n");
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_batch_smoke () =
  with_manifest (fun path ->
      let code, text = run_cli (Printf.sprintf "batch %s --jobs 2" (Filename.quote path)) in
      (* The malformed line makes the whole run exit 1, but every job still
         gets its result line and the metrics summary still prints. *)
      Alcotest.(check int) "malformed line fails the run" 1 code;
      List.iter
        (fun needle -> Alcotest.(check bool) needle true (contains text needle))
        [
          {|{"index":0,"id":"a","status":"ok","cycles":8,"outputs":|};
          {|"index":2,"line":3,"status":"error"|};
          {|{"index":3,"id":"d","status":"ok","cycles":3,|};
          "batch: 4 jobs (3 ok, 1 errors, 0 timeouts)"; "cache:"; "hit rate";
        ])

let test_batch_jobs_byte_identical () =
  (* The acceptance bar: the same manifest at --jobs 1 and --jobs 2 writes
     byte-identical result files. *)
  with_manifest (fun path ->
      let out1 = Filename.temp_file "asim-cli" ".out1" in
      let out2 = Filename.temp_file "asim-cli" ".out2" in
      Fun.protect
        ~finally:(fun () ->
          Sys.remove out1;
          Sys.remove out2)
        (fun () ->
          let _ =
            run_cli
              (Printf.sprintf "batch %s --jobs 1 -o %s" (Filename.quote path)
                 (Filename.quote out1))
          in
          let _ =
            run_cli
              (Printf.sprintf "batch %s --jobs 2 -o %s" (Filename.quote path)
                 (Filename.quote out2))
          in
          Alcotest.(check string) "byte-identical results" (read_file out1)
            (read_file out2)))

let test_batch_missing_manifest () =
  let code, _ = run_cli "batch /nonexistent/manifest.jsonl" in
  Alcotest.(check bool) "unopenable manifest fails" true (code <> 0)

let test_serve_stdin () =
  let code, text =
    run_cli
      ~stdin_text:{|{"example":"counter"}
{"example":"stack-machine-sieve","want":[]}
|}
      "serve --no-metrics"
  in
  Alcotest.(check int) "clean session" 0 code;
  Alcotest.(check bool) "first result" true (contains text {|{"index":0,"status":"ok","cycles":8,"outputs":|});
  Alcotest.(check bool) "sieve ran its cycle directive" true
    (contains text {|{"index":1,"status":"ok","cycles":5545}|})

let test_fuzz_jobs_deterministic () =
  (* The parallel fuzz driver must report exactly what the sequential one
     does; only the timing in the summary line may differ. *)
  let strip text =
    String.split_on_char '\n' text |> List.filter (fun l -> not (contains l "specs tested"))
  in
  let code_seq, seq = run_cli "fuzz --seed 11 --count 40 --print-specs -q" in
  let code_par, par = run_cli "fuzz --seed 11 --count 40 --print-specs -q --jobs 2" in
  Alcotest.(check int) "sequential exit" 0 code_seq;
  Alcotest.(check int) "parallel exit" 0 code_par;
  Alcotest.(check (list string)) "identical output" (strip seq) (strip par);
  let code_bug_seq, bug_seq = run_cli "fuzz --seed 42 --count 60 --inject-bug -q" in
  let code_bug_par, bug_par = run_cli "fuzz --seed 42 --count 60 --inject-bug -q --jobs 3" in
  Alcotest.(check int) "sequential divergence exit" 1 code_bug_seq;
  Alcotest.(check int) "parallel divergence exit" 1 code_bug_par;
  Alcotest.(check (list string)) "identical divergence reports" (strip bug_seq)
    (strip bug_par)

(* --- observability flags ---------------------------------------------------- *)

let in_temp suffix f =
  let path = Filename.temp_file "asim-cli" suffix in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* Parse a Chrome trace file and return its events, checking the envelope
   every event must carry (complete spans with microsecond ts/dur on a
   pid/tid track). *)
let trace_events path =
  let json = Asim_batch.Json.parse (read_file path) in
  let events =
    match Asim_batch.Json.to_list json with
    | Some evs -> evs
    | None -> Alcotest.failf "%s: trace is not a JSON array" path
  in
  List.iter
    (fun ev ->
      let field name = Asim_batch.Json.member name ev in
      (match Option.bind (field "ph") Asim_batch.Json.to_string_opt with
      | Some ("X" | "B" | "E") -> ()
      | _ -> Alcotest.failf "%s: event without a span phase" path);
      List.iter
        (fun name ->
          if Option.bind (field name) Asim_batch.Json.to_float = None then
            Alcotest.failf "%s: event missing %s" path name)
        [ "ts"; "dur"; "pid"; "tid" ])
    events;
  events

let span_names events =
  List.filter_map
    (fun ev ->
      Option.bind (Asim_batch.Json.member "name" ev) Asim_batch.Json.to_string_opt)
    events

let check_spans label events needed =
  let names = span_names events in
  List.iter
    (fun span ->
      Alcotest.(check bool)
        (Printf.sprintf "%s has %s" label span)
        true
        (List.mem span names))
    needed

let test_run_trace_and_stats_json () =
  with_spec counter (fun spec ->
      in_temp ".trace" (fun trace ->
          in_temp ".stats" (fun stats ->
              let code, text =
                run_cli
                  (Printf.sprintf "run %s -q -n 2500 --trace-out %s --stats-json %s"
                     (Filename.quote spec) (Filename.quote trace) (Filename.quote stats))
              in
              if code <> 0 then Alcotest.failf "run failed: %s" text;
              check_spans "run trace" (trace_events trace)
                [ "pipeline.parse"; "pipeline.analyze"; "pipeline.build"; "pipeline.simulate" ];
              let j = Asim_batch.Json.parse (read_file stats) in
              Alcotest.(check (option int)) "cycle count"
                (Some 2500)
                (Option.bind (Asim_batch.Json.member "cycles" j) Asim_batch.Json.to_int);
              (match Asim_batch.Json.member "stats" j with
              | Some s ->
                  Alcotest.(check bool) "per-memory stats" true
                    (Asim_batch.Json.member "memories" s <> None)
              | None -> Alcotest.fail "missing stats object");
              match Asim_batch.Json.member "timings" j with
              | Some t ->
                  List.iter
                    (fun stage ->
                      match
                        Option.bind (Asim_batch.Json.member stage t) Asim_batch.Json.to_float
                      with
                      | Some s when s >= 0.0 -> ()
                      | _ -> Alcotest.failf "bad timing %s" stage)
                    [ "parse_s"; "analyze_s"; "build_s"; "run_s" ]
              | None -> Alcotest.fail "missing timings object")))

let test_batch_trace () =
  with_manifest (fun manifest ->
      in_temp ".trace" (fun trace ->
          let code, _ =
            run_cli
              (Printf.sprintf "batch %s --jobs 2 --no-metrics -o /dev/null --trace-out %s"
                 (Filename.quote manifest) (Filename.quote trace))
          in
          (* the manifest's malformed line makes the run exit 1; the trace
             must still be written *)
          Alcotest.(check int) "manifest exit" 1 code;
          let events = trace_events trace in
          check_spans "batch trace" events
            [
              "batch.cache_lookup"; "batch.queue_wait"; "batch.worker_execute";
              "batch.emit"; "pipeline.parse"; "pipeline.build"; "pipeline.simulate";
            ];
          (* cache-lookup spans carry their outcome; this manifest runs the
             counter example 3 times -> 1 miss then hits *)
          let outcomes =
            List.filter_map
              (fun ev ->
                match
                  Option.bind (Asim_batch.Json.member "name" ev)
                    Asim_batch.Json.to_string_opt
                with
                | Some "batch.cache_lookup" ->
                    Option.bind (Asim_batch.Json.member "args" ev) (fun args ->
                        Option.bind
                          (Asim_batch.Json.member "outcome" args)
                          Asim_batch.Json.to_string_opt)
                | _ -> None)
              events
          in
          Alcotest.(check bool) "records a miss" true (List.mem "miss" outcomes);
          Alcotest.(check bool) "records hits" true (List.mem "hit" outcomes)))

let test_fuzz_trace () =
  in_temp ".trace" (fun trace ->
      let code, text =
        run_cli (Printf.sprintf "fuzz --count 5 -q --trace-out %s" (Filename.quote trace))
      in
      if code <> 0 then Alcotest.failf "fuzz failed: %s" text;
      check_spans "fuzz trace" (trace_events trace) [ "fuzz.generate"; "fuzz.check" ])

let test_serve_metrics_request () =
  let code, text =
    run_cli
      ~stdin_text:{|{"example":"counter"}
{"control":"metrics"}
|}
      "serve --no-metrics"
  in
  Alcotest.(check int) "clean session" 0 code;
  let metrics_line =
    String.split_on_char '\n' text
    |> List.find_opt (fun l -> contains l {|"control":"metrics"|})
  in
  match metrics_line with
  | None -> Alcotest.failf "no metrics result line in:\n%s" text
  | Some line -> (
      let j = Asim_batch.Json.parse line in
      Alcotest.(check (option string)) "status"
        (Some "ok")
        (Option.bind (Asim_batch.Json.member "status" j) Asim_batch.Json.to_string_opt);
      match Option.bind (Asim_batch.Json.member "metrics" j) Asim_batch.Json.to_string_opt with
      | None -> Alcotest.fail "missing metrics text"
      | Some prom ->
          List.iter
            (fun needle ->
              Alcotest.(check bool) ("prometheus has " ^ needle) true (contains prom needle))
            [
              "# TYPE asim_jobs_total counter";
              {|asim_jobs_total{status="ok"} 1|};
              "# TYPE asim_job_duration_seconds histogram";
              "asim_cache_capacity 64";
            ])

(* --- the tiered engine through the CLI -------------------------------------- *)

let count_occurrences haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i acc =
    if i + nl > hl then acc
    else if String.sub haystack i nl = needle then go (i + nl) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let stats_field stats name =
  Option.bind
    (Asim_batch.Json.member name (Asim_batch.Json.parse (read_file stats)))
    Asim_batch.Json.to_string_opt

(* A forced swap (the ASIM_TIERED_SWAP_AT hook) must leave the trace
   byte-identical to the flat engine's and record the handoff in the stats
   JSON. *)
let test_tiered_forced_swap () =
  with_spec counter (fun path ->
      in_temp ".stats" (fun stats ->
          let _, flat = run_cli (Printf.sprintf "run %s -e flat" (Filename.quote path)) in
          let code, tiered =
            run_cli ~env:"ASIM_TIERED_SWAP_AT=3"
              (Printf.sprintf "run %s -e tiered --stats-json %s"
                 (Filename.quote path) (Filename.quote stats))
          in
          Alcotest.(check int) "exit" 0 code;
          Alcotest.(check string) "trace identical to flat" flat tiered;
          let j = Asim_batch.Json.parse (read_file stats) in
          if Asim.Jit.available () then begin
            Alcotest.(check (option string)) "swap recorded" (Some "swapped")
              (stats_field stats "swap");
            Alcotest.(check (option int)) "swap cycle" (Some 3)
              (Option.bind (Asim_batch.Json.member "swap_cycle" j)
                 Asim_batch.Json.to_int);
            Alcotest.(check (option string)) "executing engine" (Some "native")
              (stats_field stats "executing_engine")
          end))

(* Without a toolchain on PATH, `-e tiered` must run to completion on the
   flat kernel, warn exactly once (never per cycle), and record
   swap=unavailable. *)
let test_tiered_no_toolchain () =
  with_spec counter (fun path ->
      in_temp ".stats" (fun stats ->
          let _, flat = run_cli (Printf.sprintf "run %s -e flat" (Filename.quote path)) in
          let code, tiered =
            run_cli ~env:"PATH="
              (Printf.sprintf "run %s -e tiered --stats-json %s"
                 (Filename.quote path) (Filename.quote stats))
          in
          Alcotest.(check int) "degraded run still exits 0" 0 code;
          Alcotest.(check int) "exactly one warning" 1
            (count_occurrences tiered "no OCaml toolchain");
          let warning_stripped =
            String.split_on_char '\n' tiered
            |> List.filter (fun l -> not (contains l "no OCaml toolchain"))
            |> String.concat "\n"
          in
          Alcotest.(check string) "trace identical to flat" flat warning_stripped;
          Alcotest.(check (option string)) "swap unavailable" (Some "unavailable")
            (stats_field stats "swap");
          Alcotest.(check (option string)) "stays on flat" (Some "flat")
            (stats_field stats "executing_engine")))

(* --- the partitioned engine and its workload generator ---------------------- *)

(* `asim genspec` is byte-deterministic for a fixed seed, reports its shape,
   and its output runs under `-e par` in lockstep with the flat engine (the
   CLI face of the library-level tests in test_par.ml). *)
let test_genspec_deterministic () =
  let gen () = run_cli "genspec -k pipeline --cores 6 --depth 4 --seed 9" in
  let code_a, a = gen () in
  let code_b, b = gen () in
  Alcotest.(check int) "first exit" 0 code_a;
  Alcotest.(check int) "second exit" 0 code_b;
  Alcotest.(check string) "byte-identical regeneration" a b;
  let _, other = run_cli "genspec -k pipeline --cores 6 --depth 4 --seed 10" in
  Alcotest.(check bool) "seeds differ" true (a <> other);
  let spec = Asim.Parser.parse_string a in
  Alcotest.(check int) "cores*(depth+1) components" 30
    (List.length spec.Asim.Spec.components)

let test_genspec_runs_under_par () =
  in_temp ".asim" (fun path ->
      let code, text =
        run_cli
          (Printf.sprintf "genspec -k mesh --mesh-width 5 --mesh-height 4 -n 40 -o %s"
             (Filename.quote path))
      in
      if code <> 0 then Alcotest.failf "genspec failed: %s" text;
      Alcotest.(check bool) "reports the size" true (contains text "24 components");
      let _, flat = run_cli (Printf.sprintf "run %s -e flat" (Filename.quote path)) in
      let code, par =
        run_cli (Printf.sprintf "run %s -e par --domains 3" (Filename.quote path))
      in
      Alcotest.(check int) "par exit" 0 code;
      Alcotest.(check string) "par trace identical to flat" flat par)

(* The measured-cost loop: `profile --json` output feeds back through
   `run -e par --par-profile` and must not change observable behavior. *)
let test_par_profile_roundtrip () =
  with_spec counter (fun path ->
      in_temp ".json" (fun prof ->
          let code, text =
            run_cli (Printf.sprintf "profile %s --json" (Filename.quote path))
          in
          if code <> 0 then Alcotest.failf "profile failed: %s" text;
          write_file prof text;
          let _, flat = run_cli (Printf.sprintf "run %s -e flat" (Filename.quote path)) in
          let code, par =
            run_cli
              (Printf.sprintf "run %s -e par --par-profile %s" (Filename.quote path)
                 (Filename.quote prof))
          in
          Alcotest.(check int) "par exit" 0 code;
          Alcotest.(check string) "costed par trace identical to flat" flat par))

let test_errors () =
  let code, _ = run_cli "run /nonexistent/file.asim" in
  Alcotest.(check bool) "missing file fails" true (code <> 0);
  with_spec "# bad\nx .\nQ x\n.\n" (fun path ->
      let code, text = run_cli (Printf.sprintf "run %s" (Filename.quote path)) in
      Alcotest.(check bool) "parse error fails" true (code <> 0);
      Alcotest.(check bool) "diagnostic printed" true (contains text "Component expected"))

let () =
  Alcotest.run "cli"
    [
      ( "subcommands",
        [
          Alcotest.test_case "example listing" `Quick test_example_listing;
          Alcotest.test_case "example dump" `Quick test_example_dump;
          Alcotest.test_case "run trace" `Quick test_run_trace;
          Alcotest.test_case "run stats" `Quick test_run_stats;
          Alcotest.test_case "engines agree" `Quick test_run_engines_agree;
          Alcotest.test_case "bench smoke" `Quick test_bench;
          Alcotest.test_case "fault injection" `Quick test_run_fault;
          Alcotest.test_case "vcd output" `Quick test_run_vcd;
          Alcotest.test_case "check" `Quick test_check;
          Alcotest.test_case "fmt round-trip" `Quick test_fmt_roundtrip;
          Alcotest.test_case "codegen" `Quick test_codegen;
          Alcotest.test_case "netlist" `Quick test_netlist;
          Alcotest.test_case "gates" `Quick test_gates;
          Alcotest.test_case "asm" `Quick test_asm;
          Alcotest.test_case "profile" `Quick test_profile;
          Alcotest.test_case "profile counters" `Quick test_profile_counters;
          Alcotest.test_case "interactive" `Quick test_interactive;
          Alcotest.test_case "wavediff" `Quick test_wavediff;
          Alcotest.test_case "coverage" `Quick test_coverage;
          Alcotest.test_case "pipeline" `Quick test_pipeline;
          Alcotest.test_case "fuzz clean campaign" `Quick test_fuzz_clean;
          Alcotest.test_case "fuzz deterministic replay" `Quick
            test_fuzz_replay_deterministic;
          Alcotest.test_case "fuzz divergence bundle" `Quick
            test_fuzz_divergence_bundle;
          Alcotest.test_case "fuzz parallel determinism" `Quick
            test_fuzz_jobs_deterministic;
          Alcotest.test_case "batch smoke" `Quick test_batch_smoke;
          Alcotest.test_case "batch jobs byte-identical" `Quick
            test_batch_jobs_byte_identical;
          Alcotest.test_case "batch missing manifest" `Quick test_batch_missing_manifest;
          Alcotest.test_case "serve stdin" `Quick test_serve_stdin;
          Alcotest.test_case "run trace + stats json" `Quick
            test_run_trace_and_stats_json;
          Alcotest.test_case "batch trace" `Quick test_batch_trace;
          Alcotest.test_case "fuzz trace" `Quick test_fuzz_trace;
          Alcotest.test_case "serve metrics request" `Quick test_serve_metrics_request;
          Alcotest.test_case "tiered forced swap" `Quick test_tiered_forced_swap;
          Alcotest.test_case "tiered without a toolchain" `Quick
            test_tiered_no_toolchain;
          Alcotest.test_case "genspec deterministic" `Quick test_genspec_deterministic;
          Alcotest.test_case "genspec runs under par" `Quick
            test_genspec_runs_under_par;
          Alcotest.test_case "par profile round-trip" `Quick
            test_par_profile_roundtrip;
          Alcotest.test_case "errors" `Quick test_errors;
        ] );
    ]
