(* The batch subsystem: JSON codec, compiled-spec cache, worker pool,
   and the JSONL job runner (timeouts, crash isolation, malformed input). *)

open Asim_batch

let counter = "# counter\n= 8\ncount* inc .\nA inc 4 count 1\nM count 0 inc 1 1\n.\n"

(* The same machine, formatted differently: extra whitespace, blank lines
   and a brace comment that the lexer discards.  Parses to the same spec
   modulo the title, so it must hash to the same cache key. *)
let counter_reformatted =
  "# counter\n\n=   8\n  count*    inc  .\n\nA inc 4 count 1   { the adder }\nM count 0 inc 1 1\n.\n"

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* --- Json ------------------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\n\t");
        ("i", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.List []; Json.Obj [] ]);
      ]
  in
  Alcotest.(check bool) "print/parse round trip" true (Json.parse (Json.to_string v) = v);
  (* Field order is preserved, which is what byte-determinism rests on. *)
  Alcotest.(check string) "deterministic field order"
    {|{"b":2,"a":1}|}
    (Json.to_string (Json.Obj [ ("b", Json.Int 2); ("a", Json.Int 1) ]))

let test_json_parse_errors () =
  let fails s =
    match Json.parse s with
    | exception Json.Parse_error _ -> ()
    | v -> Alcotest.failf "%S parsed as %s" s (Json.to_string v)
  in
  List.iter fails [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "\"open"; "{} trailing"; "1 2" ];
  (match Json.parse "[1, x]" with
  | exception Json.Parse_error msg ->
      Alcotest.(check bool) "error names an offset" true (contains msg "offset")
  | _ -> Alcotest.fail "accepted [1, x]")

let test_json_accessors () =
  let v = Json.parse {|{"a":1,"b":"two","c":[true,null],"d":2.5}|} in
  Alcotest.(check (option int)) "int member" (Some 1)
    (Option.bind (Json.member "a" v) Json.to_int);
  Alcotest.(check (option string)) "string member" (Some "two")
    (Option.bind (Json.member "b" v) Json.to_string_opt);
  Alcotest.(check (option int)) "absent member" None
    (Option.bind (Json.member "z" v) Json.to_int);
  Alcotest.(check bool) "to_float accepts ints" true
    (Option.bind (Json.member "a" v) Json.to_float = Some 1.0);
  Alcotest.(check bool) "list member" true
    (Option.bind (Json.member "c" v) Json.to_list = Some [ Json.Bool true; Json.Null ])

(* --- cache key -------------------------------------------------------------- *)

let test_cache_key_stable () =
  let spec = Asim.Parser.parse_string counter in
  let key s = Runner.cache_key ~engine:Asim.Compiled ~optimize:true s in
  (* Pretty-print round trip: same spec, same key. *)
  let roundtripped = Asim.Parser.parse_string (Asim.Pretty.spec spec) in
  Alcotest.(check string) "stable across pretty-print round trip" (key spec)
    (key roundtripped);
  (* Reformatting the source (comments, blank lines) changes nothing. *)
  let reformatted = Asim.Parser.parse_string counter_reformatted in
  Alcotest.(check string) "stable across reformatting" (key spec) (key reformatted);
  (* Engine and optimization level are part of the key. *)
  Alcotest.(check bool) "engine qualifies the key" true
    (key spec <> Runner.cache_key ~engine:Asim.Interpreter ~optimize:true spec);
  Alcotest.(check bool) "optimize qualifies the key" true
    (key spec <> Runner.cache_key ~engine:Asim.Compiled ~optimize:false spec)

(* --- cache ------------------------------------------------------------------ *)

let test_cache_accounting () =
  let c = Cache.create ~capacity:4 in
  let computes = ref 0 in
  let get key =
    Cache.find_or_compute c ~key (fun () ->
        incr computes;
        String.uppercase_ascii key)
  in
  Alcotest.(check string) "computed" "A" (get "a");
  Alcotest.(check string) "cached" "A" (get "a");
  Alcotest.(check string) "second key" "B" (get "b");
  Alcotest.(check int) "compute ran once per key" 2 !computes;
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 1 s.Cache.hits;
  Alcotest.(check int) "misses" 2 s.Cache.misses;
  Alcotest.(check int) "entries" 2 s.Cache.entries;
  Alcotest.(check int) "no evictions yet" 0 s.Cache.evictions;
  Alcotest.(check bool) "hit rate" true (abs_float (Cache.hit_rate s -. (1.0 /. 3.0)) < 1e-9)

let test_cache_eviction () =
  let c = Cache.create ~capacity:2 in
  let get key = Cache.find_or_compute c ~key (fun () -> key) in
  ignore (get "a" : string);
  ignore (get "b" : string);
  ignore (get "c" : string);
  (* capacity 2, third key evicts *)
  let s = Cache.stats c in
  Alcotest.(check int) "evicted one" 1 s.Cache.evictions;
  Alcotest.(check int) "still at capacity" 2 s.Cache.entries;
  (* "a" was the least recently used, so it is the one gone. *)
  ignore (get "a" : string);
  Alcotest.(check int) "evicted key recomputes" 4 (Cache.stats c).Cache.misses;
  (* Touching an entry protects it: a-b-touch(a)-c evicts b, not a. *)
  let c = Cache.create ~capacity:2 in
  let get key = Cache.find_or_compute c ~key (fun () -> key) in
  ignore (get "a" : string);
  ignore (get "b" : string);
  ignore (get "a" : string);
  ignore (get "c" : string);
  ignore (get "a" : string);
  let s = Cache.stats c in
  Alcotest.(check int) "recently used survived" 2 s.Cache.hits

let test_cache_failure_retries () =
  let c = Cache.create ~capacity:4 in
  let attempts = ref 0 in
  let compute () =
    incr attempts;
    if !attempts = 1 then failwith "transient" else "ok"
  in
  (match Cache.find_or_compute c ~key:"k" compute with
  | exception Failure m -> Alcotest.(check string) "first compute raises" "transient" m
  | v -> Alcotest.failf "expected failure, got %S" v);
  (* The failed entry is not cached; the next call retries. *)
  Alcotest.(check string) "retry succeeds" "ok" (Cache.find_or_compute c ~key:"k" compute);
  Alcotest.(check string) "and is now cached" "ok"
    (Cache.find_or_compute c ~key:"k" compute);
  Alcotest.(check int) "two computes total" 2 !attempts

let test_cache_single_flight () =
  (* Four domains race on one cold key: exactly one compute runs.  The
     compute holds the in-flight entry open until every domain has reached
     [find_or_compute] — a deterministic race window (no wall-clock sleep):
     all four arrivals are guaranteed to land while the key is cold or
     in flight. *)
  let c = Cache.create ~capacity:4 in
  let computes = Atomic.make 0 in
  let arrived = Atomic.make 0 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            Atomic.incr arrived;
            Cache.find_or_compute c ~key:"shared" (fun () ->
                Atomic.incr computes;
                while Atomic.get arrived < 4 do
                  Domain.cpu_relax ()
                done;
                "value")))
  in
  let results = List.map Domain.join domains in
  Alcotest.(check int) "one compute" 1 (Atomic.get computes);
  List.iter (fun r -> Alcotest.(check string) "all see the value" "value" r) results;
  let s = Cache.stats c in
  Alcotest.(check int) "one miss" 1 s.Cache.misses;
  Alcotest.(check int) "three hits" 3 s.Cache.hits

(* --- pool ------------------------------------------------------------------- *)

let test_pool_ordered_emission () =
  (* Jobs finish in deliberately reversed order, but must emit in submission
     order.  With 4 workers and 4 jobs, every job runs concurrently; Atomic
     flags force job 3 to complete first, then 2, 1, 0 — a deterministic
     out-of-order completion, no wall-clock sleeps. *)
  let emitted = ref [] in
  let completed = Array.init 4 (fun _ -> Atomic.make false) in
  let pool =
    Pool.create ~jobs:4
      ~on_crash:(fun _ exn -> raise exn)
      ~emit:(fun index r -> emitted := (index, r) :: !emitted)
  in
  for i = 0 to 3 do
    Pool.submit pool (fun index ->
        (* wait until every later-submitted job has finished its compute *)
        for later = i + 1 to 3 do
          while not (Atomic.get completed.(later)) do
            Domain.cpu_relax ()
          done
        done;
        Atomic.set completed.(i) true;
        index * 10)
  done;
  Alcotest.(check int) "all processed" 4 (Pool.finish pool);
  let emitted = List.rev !emitted in
  Alcotest.(check (list (pair int int))) "consecutive indices, computed results"
    (List.init 4 (fun i -> (i, i * 10)))
    emitted

let test_pool_ordered_emission_realtime () =
  (* The one real-time smoke: finish order scrambled by actual sleeps,
     emission order still strict.  Kept tiny so a slow box cannot make it
     flaky — the deterministic variant above carries the ordering logic. *)
  let emitted = ref [] in
  let pool =
    Pool.create ~jobs:4
      ~on_crash:(fun _ exn -> raise exn)
      ~emit:(fun index r -> emitted := (index, r) :: !emitted)
  in
  for i = 0 to 15 do
    Pool.submit pool (fun index ->
        Unix.sleepf (float_of_int ((15 - i) mod 4) *. 0.002);
        index * 10)
  done;
  Alcotest.(check int) "all processed" 16 (Pool.finish pool);
  let emitted = List.rev !emitted in
  Alcotest.(check (list (pair int int))) "consecutive indices, computed results"
    (List.init 16 (fun i -> (i, i * 10)))
    emitted

let test_pool_crash_isolation () =
  (* A raising job becomes a structured result; its worker keeps going. *)
  let results =
    Pool.run_list ~jobs:2
      ~on_crash:(fun index exn -> Printf.sprintf "crash %d: %s" index (Printexc.to_string exn))
      (List.init 8 (fun i ->
           fun index ->
            if i = 3 then failwith "boom" else Printf.sprintf "ok %d" index))
  in
  Alcotest.(check int) "every job yields a result" 8 (List.length results);
  List.iteri
    (fun i r ->
      if i = 3 then Alcotest.(check bool) "crash is structured" true (contains r "boom")
      else Alcotest.(check string) "survivors unaffected" (Printf.sprintf "ok %d" i) r)
    results

let test_pool_sync_is_immediate () =
  (* jobs=1 runs in the calling domain: emit happens during submit. *)
  let emitted = ref [] in
  let pool =
    Pool.create ~jobs:1 ~on_crash:(fun _ e -> raise e)
      ~emit:(fun i r -> emitted := (i, r) :: !emitted)
  in
  Pool.submit pool (fun i -> i + 100);
  Alcotest.(check (list (pair int int))) "emitted synchronously" [ (0, 100) ] !emitted;
  Alcotest.(check int) "finish count" 1 (Pool.finish pool)

(* --- runner ----------------------------------------------------------------- *)

let job ?id ?(engine = Asim.Compiled) ?(optimize = true) ?cycles ?(inputs = [])
    ?(want = [ Proto.Outputs ]) ?timeout_s source =
  { Proto.id; trace_id = None; source; engine; optimize; opt = None; cycles; inputs; want;
    timeout_s }

let test_runner_cached_equals_fresh () =
  (* The same job through a warm cache must render the identical result line
     (trace included) as through a cold one. *)
  let render t j = Json.to_string (Proto.result_to_json ~index:0 (Runner.run_job t j)) in
  let j = job (Proto.Inline counter) ~want:[ Proto.Outputs; Proto.Memory; Proto.Trace; Proto.Stats ] in
  let cold = Runner.create () in
  let fresh = render cold j in
  let warm = Runner.create () in
  ignore (Runner.run_job warm j : Proto.outcome);
  let cached = render warm j in
  Alcotest.(check string) "cache does not change results" fresh cached;
  let s = (Runner.summary warm ~wall_s:1.0).Metrics.cache in
  Alcotest.(check int) "warm runner hit the cache" 1 s.Cache.hits

let test_runner_outputs () =
  let t = Runner.create () in
  let o = Runner.run_job t (job (Proto.Inline counter)) in
  Alcotest.(check bool) "ok" true (o.Proto.status = Proto.Ok_);
  Alcotest.(check int) "ran the spec's cycle directive" 8 o.Proto.cycles_run;
  Alcotest.(check (option int)) "counter wrapped to 8 mod 16" (Some 8)
    (List.assoc_opt "count" o.Proto.outputs)

let test_runner_timeout () =
  let t = Runner.create () in
  (* A zero budget expires before the first cycle: structured timeout. *)
  let o = Runner.run_job t (job (Proto.Inline counter) ~cycles:1_000_000 ~timeout_s:0.0) in
  (match o.Proto.status with
  | Proto.Timeout done_ -> Alcotest.(check int) "stopped before any cycle" 0 done_
  | _ -> Alcotest.fail "expected a timeout status");
  (* The runner (and its cache) is still healthy afterwards. *)
  let o2 = Runner.run_job t (job (Proto.Inline counter)) in
  Alcotest.(check bool) "next job runs fine" true (o2.Proto.status = Proto.Ok_);
  let line = Json.to_string (Proto.result_to_json ~index:7 o) in
  Alcotest.(check bool) "timeout line carries cycles_done" true
    (contains line {|"status":"timeout"|} && contains line {|"cycles_done":0|})

let test_runner_errors_are_structured () =
  let t = Runner.create () in
  let bad = Runner.run_job t (job (Proto.Example "no-such-example")) in
  (match bad.Proto.status with
  | Proto.Error_ msg -> Alcotest.(check bool) "names the example" true (contains msg "no-such-example")
  | _ -> Alcotest.fail "expected an error status");
  let unparsable = Runner.run_job t (job (Proto.Inline "# bad\nx .\nQ x\n.\n")) in
  Alcotest.(check bool) "parse failure is structured" true
    (Proto.status_class unparsable.Proto.status = `Error)

let drive t ~jobs lines =
  let remaining = ref lines in
  let next () =
    match !remaining with
    | [] -> None
    | l :: rest ->
        remaining := rest;
        Some l
  in
  let out = ref [] in
  let n = Runner.process t ~jobs ~next ~emit:(fun l -> out := l :: !out) in
  (n, List.rev !out)

let counter_job_line = {|{"spec":"# counter\n= 8\ncount* inc .\nA inc 4 count 1\nM count 0 inc 1 1\n.\n"}|}

let test_process_malformed_lines () =
  let t = Runner.create () in
  let n, out =
    drive t ~jobs:2
      [ counter_job_line; "this is not json"; ""; {|{"example":"counter","frobnicate":1}|};
        counter_job_line ]
  in
  Alcotest.(check int) "four results (blank line skipped)" 4 n;
  let line i = List.nth out i in
  Alcotest.(check bool) "good job before still ran" true (contains (line 0) {|"status":"ok"|});
  Alcotest.(check bool) "malformed names its line" true
    (contains (line 1) {|"line":2|} && contains (line 1) {|"status":"error"|});
  Alcotest.(check bool) "unknown field names its line" true
    (contains (line 2) {|"line":4|} && contains (line 2) "frobnicate");
  Alcotest.(check bool) "good job after still ran" true (contains (line 3) {|"status":"ok"|})

let test_process_byte_identical_across_jobs () =
  let lines =
    List.init 12 (fun i ->
        if i mod 3 = 2 then "garbage line " ^ string_of_int i else counter_job_line)
  in
  let run jobs =
    let t = Runner.create () in
    snd (drive t ~jobs lines)
  in
  let sequential = run 1 in
  Alcotest.(check (list string)) "jobs=2 byte-identical" sequential (run 2);
  Alcotest.(check (list string)) "jobs=4 byte-identical" sequential (run 4)

(* --- Metrics ---------------------------------------------------------------- *)

let feq = Alcotest.(check (float 1e-9))

let test_percentile_edge_cases () =
  (* 0 samples: every rank answers 0. *)
  feq "empty p50" 0.0 (Metrics.percentile [||] 50.0);
  feq "empty p99" 0.0 (Metrics.percentile [||] 99.0);
  (* 1 sample: every rank answers that sample. *)
  let one = [| 7.5 |] in
  List.iter
    (fun p -> feq (Printf.sprintf "single sample p%g" p) 7.5 (Metrics.percentile one p))
    [ 0.0; 50.0; 90.0; 99.0; 100.0 ];
  (* p99 with n < 100: the nearest rank is the last element, never out of
     bounds, and p50 is the conventional middle. *)
  let ten = Array.init 10 (fun i -> float_of_int (i + 1)) in
  feq "p99 of 10 is the max" 10.0 (Metrics.percentile ten 99.0);
  feq "p90 of 10" 9.0 (Metrics.percentile ten 90.0);
  feq "p50 of 10" 5.0 (Metrics.percentile ten 50.0)

let test_summary_zero_wall () =
  (* A frozen clock (or an instantaneous run) gives wall_s = 0; throughput
     must come back 0, not inf or nan. *)
  let m = Metrics.create () in
  Metrics.record m ~engine:"compiled" ~status:`Ok ~elapsed:0.0;
  let cache = Cache.stats (Cache.create ~capacity:4 : unit Cache.t) in
  let s = Metrics.summarize m ~cache ~wall_s:0.0 in
  Alcotest.(check int) "one job" 1 s.Metrics.jobs;
  feq "zero throughput, finite" 0.0 s.Metrics.jobs_per_sec;
  Alcotest.(check bool) "finite in JSON too" true
    (Float.is_finite s.Metrics.jobs_per_sec);
  let s' = Metrics.summarize m ~cache ~wall_s:(-1.0) in
  feq "negative wall also 0" 0.0 s'.Metrics.jobs_per_sec

let test_summary_latencies () =
  let m = Metrics.create () in
  List.iter
    (fun e -> Metrics.record m ~engine:"compiled" ~status:`Ok ~elapsed:e)
    [ 0.010; 0.020; 0.030 ];
  Metrics.record m ~engine:"interp" ~status:`Error ~elapsed:0.5;
  Metrics.record m ~engine:"interp" ~status:`Timeout ~elapsed:1.0;
  let cache = Cache.stats (Cache.create ~capacity:4 : unit Cache.t) in
  let s = Metrics.summarize m ~cache ~wall_s:2.0 in
  Alcotest.(check int) "jobs" 5 s.Metrics.jobs;
  Alcotest.(check int) "ok" 3 s.Metrics.ok;
  Alcotest.(check int) "errors" 1 s.Metrics.errors;
  Alcotest.(check int) "timeouts" 1 s.Metrics.timeouts;
  feq "throughput" 2.5 s.Metrics.jobs_per_sec;
  match s.Metrics.latencies with
  | [ a; b ] ->
      (* sorted by engine name *)
      Alcotest.(check string) "first engine" "compiled" a.Metrics.engine;
      Alcotest.(check int) "compiled count" 3 a.Metrics.count;
      feq "compiled p50 ms" 20.0 a.Metrics.p50_ms;
      feq "compiled max ms" 30.0 a.Metrics.max_ms;
      Alcotest.(check string) "second engine" "interp" b.Metrics.engine;
      feq "interp p99 ms (n<100)" 1000.0 b.Metrics.p99_ms
  | l -> Alcotest.failf "expected 2 engines, got %d" (List.length l)

let test_metrics_prometheus_names () =
  (* The live registry view follows the documented naming conventions. *)
  let m = Metrics.create () in
  Metrics.record m ~engine:"compiled" ~status:`Ok ~elapsed:0.004;
  let cache = Cache.stats (Cache.create ~capacity:4 : unit Cache.t) in
  Metrics.set_cache m cache;
  let text = Asim_obs.Registry.to_prometheus (Metrics.registry m) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("exports " ^ needle) true (contains text needle))
    [
      {|asim_jobs_total{status="ok"} 1|};
      "# TYPE asim_jobs_total counter";
      "# TYPE asim_job_duration_seconds histogram";
      {|asim_job_duration_seconds_count{engine="compiled"} 1|};
      "asim_cache_capacity 4";
      "# TYPE asim_cache_hits gauge";
    ]

let test_process_cache_hit_rate () =
  (* 64 identical jobs: 1 miss, 63 hits — the >90% acceptance bar. *)
  let t = Runner.create () in
  let n, _ = drive t ~jobs:4 (List.init 64 (fun _ -> counter_job_line)) in
  Alcotest.(check int) "all ran" 64 n;
  let s = (Runner.summary t ~wall_s:1.0).Metrics.cache in
  Alcotest.(check int) "one miss" 1 s.Cache.misses;
  Alcotest.(check int) "the rest hit" 63 s.Cache.hits;
  Alcotest.(check bool) "hit rate clears 90%" true (Cache.hit_rate s > 0.9)

let () =
  Alcotest.run "batch"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "cache",
        [
          Alcotest.test_case "key stability" `Quick test_cache_key_stable;
          Alcotest.test_case "hit/miss accounting" `Quick test_cache_accounting;
          Alcotest.test_case "eviction at capacity" `Quick test_cache_eviction;
          Alcotest.test_case "failed compute retries" `Quick test_cache_failure_retries;
          Alcotest.test_case "single flight" `Quick test_cache_single_flight;
        ] );
      ( "pool",
        [
          Alcotest.test_case "ordered emission" `Quick test_pool_ordered_emission;
          Alcotest.test_case "ordered emission (real-time smoke)" `Quick
            test_pool_ordered_emission_realtime;
          Alcotest.test_case "crash isolation" `Quick test_pool_crash_isolation;
          Alcotest.test_case "sync mode" `Quick test_pool_sync_is_immediate;
        ] );
      ( "runner",
        [
          Alcotest.test_case "outputs" `Quick test_runner_outputs;
          Alcotest.test_case "cached equals fresh" `Quick test_runner_cached_equals_fresh;
          Alcotest.test_case "timeout" `Quick test_runner_timeout;
          Alcotest.test_case "structured errors" `Quick test_runner_errors_are_structured;
          Alcotest.test_case "malformed lines" `Quick test_process_malformed_lines;
          Alcotest.test_case "byte-identical across jobs" `Quick
            test_process_byte_identical_across_jobs;
          Alcotest.test_case "cache hit rate" `Quick test_process_cache_hit_rate;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "percentile edge cases" `Quick test_percentile_edge_cases;
          Alcotest.test_case "zero wall clock" `Quick test_summary_zero_wall;
          Alcotest.test_case "latency summary" `Quick test_summary_latencies;
          Alcotest.test_case "prometheus names" `Quick test_metrics_prometheus_names;
        ] );
    ]
