(* Tests specific to the partitioned engine ([Asim_par.Par]): the
   sense-reversing barrier and batched mailbox in isolation, cycle-for-cycle
   equivalence of the BSP wave against the flat kernel under random and
   structured partition assignments, the sequential error-replay contract,
   the ASIM_PAR_SKEW must-fail (a planted lost update the barrier + mailbox
   discipline exists to prevent), the par@1 zero-allocation ablation, and
   partitioner/generator determinism.  The generic nine-engine matrix lives
   in test_equiv.ml via [Oracle.all]. *)

module Machine = Asim.Machine
module Par = Asim.Par
module Flat = Asim.Flat
module Barrier = Asim_par.Barrier
module Mailbox = Asim_par.Mailbox
module Gen = Asim_fuzz.Gen
module Oracle = Asim_fuzz.Oracle

let quiet = Machine.quiet_config

let with_env var value f =
  let old = Sys.getenv_opt var in
  Unix.putenv var value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv var (Option.value old ~default:""))
    f

(* ------------------------------------------------------------------ *)
(* Barrier                                                            *)
(* ------------------------------------------------------------------ *)

let test_barrier_single_party () =
  let b = Barrier.create 1 in
  Alcotest.(check int) "parties" 1 (Barrier.parties b);
  let h = Barrier.handle b in
  (* with one party every wait returns immediately, any number of times *)
  for _ = 1 to 100 do
    Barrier.wait h
  done

let test_barrier_rejects_zero () =
  match Barrier.create 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Barrier.create 0 should raise"

(* Many rounds over one barrier object: between two waits of the same round
   every party must observe all [n] increments of that round — this fails
   if the sense ever stops reversing or a party slips a round ahead. *)
let test_barrier_rounds () =
  let n = 3 and rounds = 200 in
  let b = Barrier.create n in
  let count = Atomic.make 0 in
  let failures = Atomic.make 0 in
  let party () =
    let h = Barrier.handle b in
    for round = 1 to rounds do
      Atomic.incr count;
      Barrier.wait h;
      if Atomic.get count <> n * round then Atomic.incr failures;
      (* second barrier: nobody starts round [r+1]'s increment before
         everyone has checked round [r] *)
      Barrier.wait h
    done
  in
  let workers = List.init (n - 1) (fun _ -> Domain.spawn party) in
  party ();
  List.iter Domain.join workers;
  Alcotest.(check int) "all rounds saw all parties" 0 (Atomic.get failures)

(* ------------------------------------------------------------------ *)
(* Mailbox                                                            *)
(* ------------------------------------------------------------------ *)

let test_mailbox_post_import () =
  let mb = Mailbox.create 8 in
  Alcotest.(check int) "length" 8 (Mailbox.length mb);
  let src = Array.init 8 (fun i -> 100 + i) in
  let slots = [| 1; 3; 5 |] in
  Mailbox.post mb ~src ~slots ~lo:0 ~hi:3;
  List.iter
    (fun s -> Alcotest.(check int) (Printf.sprintf "slot %d posted" s) (100 + s) (Mailbox.get mb s))
    [ 1; 3; 5 ];
  Alcotest.(check int) "unposted slot untouched" 0 (Mailbox.get mb 2);
  (* import into a dst that already holds slot 3's value: [changed] must
     fire for 1 and 5 only — the activity rule across partitions *)
  let dst = Array.make 8 0 in
  dst.(3) <- 103;
  let woken = ref [] in
  Mailbox.import mb ~dst ~slots ~lo:0 ~hi:3 ~changed:(fun s -> woken := s :: !woken);
  Alcotest.(check (list int)) "only real changes wake" [ 1; 5 ] (List.sort compare !woken);
  List.iter
    (fun s -> Alcotest.(check int) (Printf.sprintf "slot %d imported" s) (100 + s) dst.(s))
    [ 1; 3; 5 ]

let test_mailbox_window () =
  let mb = Mailbox.create 4 in
  let src = [| 7; 8; 9; 10 |] in
  let slots = [| 0; 1; 2; 3 |] in
  (* only the lo..hi-1 window of the slot list moves *)
  Mailbox.post mb ~src ~slots ~lo:1 ~hi:3;
  Alcotest.(check int) "below window" 0 (Mailbox.get mb 0);
  Alcotest.(check int) "in window" 8 (Mailbox.get mb 1);
  Alcotest.(check int) "in window" 9 (Mailbox.get mb 2);
  Alcotest.(check int) "above window" 0 (Mailbox.get mb 3);
  Mailbox.set mb 0 42;
  Alcotest.(check int) "set/get" 42 (Mailbox.get mb 0)

(* ------------------------------------------------------------------ *)
(* Flat-vs-par observation harness                                    *)
(* ------------------------------------------------------------------ *)

(* Everything the oracle treats as observable, recorded per machine so par
   variants with explicit [~domains]/[~assign] (which [Oracle.observe]
   cannot express) compare against flat with [=]. *)
type obs = {
  snapshots : (string * int) list array;
  trace : string;
  events : Asim.Io.event list;
  cells : (string * int list) list;
  outputs : (string * int) list;
  total_accesses : int;
  error : string option;
}

let observe_with build ?cycles (spec : Asim.Spec.t) =
  let cycles =
    match cycles with
    | Some n -> n
    | None -> Option.value spec.Asim.Spec.cycles ~default:20
  in
  let analysis = Asim.Analysis.analyze spec in
  let buf = Buffer.create 512 in
  let io, events = Asim.Io.recording ~feed:Oracle.default_feed () in
  let config = { Machine.io; trace = Asim.Trace.buffer_sink buf; faults = [] } in
  let m = build ~config analysis in
  let names =
    List.map (fun (c : Asim.Component.t) -> c.Asim.Component.name)
      spec.Asim.Spec.components
  in
  let snaps = ref [] in
  let error = ref None in
  (try
     for _ = 1 to cycles do
       m.Machine.step ();
       snaps := List.map (fun n -> (n, m.Machine.read n)) names :: !snaps
     done
   with Asim.Error.Error { phase = Asim.Error.Runtime; message; _ } ->
     error := Some message);
  let cells =
    List.filter_map
      (fun (c : Asim.Component.t) ->
        match c.Asim.Component.kind with
        | Asim.Component.Memory { cells; _ } ->
            Some
              ( c.Asim.Component.name,
                List.init cells (fun i -> m.Machine.read_cell c.Asim.Component.name i) )
        | _ -> None)
      spec.Asim.Spec.components
  in
  {
    snapshots = Array.of_list (List.rev !snaps);
    trace = Buffer.contents buf;
    events = events ();
    cells;
    outputs = List.map (fun n -> (n, m.Machine.read n)) names;
    total_accesses = Asim.Stats.total_accesses m.Machine.stats;
    error = !error;
  }

let observe_flat = observe_with (fun ~config a -> Flat.create ~config a)

let observe_par ?domains ?assign =
  observe_with (fun ~config a -> Par.create ~config ?domains ?assign a)

let ncomb (spec : Asim.Spec.t) =
  List.length
    (List.filter
       (fun c -> not (Asim.Component.is_memory c))
       spec.Asim.Spec.components)

(* ------------------------------------------------------------------ *)
(* Equivalence under random partition assignments                     *)
(* ------------------------------------------------------------------ *)

(* The partitioner's placement must never matter: any assignment of
   components to any number of domains yields the flat observation.  The
   random assignment drives the cross-partition import machinery much
   harder than the cost-balanced partitioner would. *)
let arbitrary_spec_and_assign =
  let gen st =
    let spec = Gen.spec Gen.default_size st in
    let assign = Array.init (ncomb spec) (fun _ -> Random.State.int st 4) in
    (spec, assign)
  in
  let print (spec, assign) =
    Printf.sprintf "%s\nassign: [%s]" (Asim.Pretty.spec spec)
      (String.concat ";" (Array.to_list (Array.map string_of_int assign)))
  in
  QCheck.make ~print gen

let random_assign_test =
  QCheck.Test.make ~name:"par matches flat under random assignments" ~count:60
    arbitrary_spec_and_assign (fun (spec, assign) ->
      let reference = observe_flat spec in
      List.for_all
        (fun domains ->
          let got = observe_par ~domains ~assign spec in
          got = reference
          || QCheck.Test.fail_reportf "par@%d diverges from flat" domains)
        [ 1; 2; 3; 4 ])

(* ------------------------------------------------------------------ *)
(* Equivalence on the structured genspec workloads                    *)
(* ------------------------------------------------------------------ *)

let test_structured_lockstep () =
  List.iter
    (fun (name, spec) ->
      let reference = observe_flat ~cycles:50 spec in
      Alcotest.(check bool) (name ^ " ran error-free") true (reference.error = None);
      List.iter
        (fun domains ->
          if observe_par ~domains ~cycles:50 spec <> reference then
            Alcotest.failf "%s: par@%d diverges from flat" name domains)
        [ 1; 2; 4 ])
    [
      ("pipeline", Gen.pipeline ~cores:6 ~depth:4 ~seed:3 ());
      ("mesh", Gen.mesh ~width:5 ~height:4 ~seed:3 ());
    ]

(* ------------------------------------------------------------------ *)
(* Runtime-error replay                                               *)
(* ------------------------------------------------------------------ *)

(* inc = m + 1 crosses a partition boundary into a two-case selector, and
   walks out of range on the second cycle.  The par machine must discard
   the wave, replay the cycle sequentially, and raise exactly the flat
   error with exactly the flat partial state; re-stepping re-raises. *)
let trap_spec =
  Asim.Parser.parse_string
    "#parerr\n= 8\ninc sel m .\nA inc 4 m 1\nS sel inc 5 6\nM m 0 inc 1 1\n.\n"

let runtime_error m =
  match m.Machine.step () with
  | () -> None
  | exception Asim.Error.Error { phase = Asim.Error.Runtime; message; _ } ->
      Some message

let test_error_replay () =
  let analysis = Asim.Analysis.analyze trap_spec in
  let flat = Flat.create ~config:quiet analysis in
  (* split the two combinational components across partitions so the
     failing selector's input arrives through the mailbox *)
  let par = Par.create ~config:quiet ~domains:2 ~assign:[| 0; 1 |] analysis in
  List.iter (fun m -> m.Machine.step ()) [ flat; par ];
  let flat_err = runtime_error flat and par_err = runtime_error par in
  if flat_err = None then Alcotest.fail "trap spec did not trap on flat";
  Alcotest.(check (option string)) "same runtime error" flat_err par_err;
  List.iter
    (fun name ->
      Alcotest.(check int)
        (name ^ " partial state matches")
        (flat.Machine.read name) (par.Machine.read name))
    [ "inc"; "sel"; "m" ];
  Alcotest.(check int) "cell matches" (flat.Machine.read_cell "m" 0)
    (par.Machine.read_cell "m" 0);
  Alcotest.(check int) "same cycle count" (flat.Machine.current_cycle ())
    (par.Machine.current_cycle ());
  (* a trapped machine stays trapped, on both engines *)
  Alcotest.(check (option string)) "re-step re-raises" flat_err (runtime_error par)

(* ------------------------------------------------------------------ *)
(* The skew must-fail                                                 *)
(* ------------------------------------------------------------------ *)

(* ASIM_PAR_SKEW=1 makes the first importing partition drop its import
   phase — the lost update a missing barrier would permit.  The harness is
   only trustworthy if that plant visibly diverges; the clean run of the
   same spec must stay in lockstep. *)
let skew_spec = Gen.pipeline ~cores:8 ~depth:6 ~seed:1 ()

let test_skew_diverges () =
  let reference = observe_flat ~cycles:100 skew_spec in
  with_env Par.skew_env "1" (fun () ->
      if observe_par ~domains:4 ~cycles:100 skew_spec = reference then
        Alcotest.fail "planted lost update was not observable — dead harness")

let test_no_skew_lockstep () =
  let reference = observe_flat ~cycles:100 skew_spec in
  if observe_par ~domains:4 ~cycles:100 skew_spec <> reference then
    Alcotest.fail "par@4 diverges from flat without skew"

(* skew touches nothing with a single partition: par@1 has no imports *)
let test_skew_noop_at_one_domain () =
  let reference = observe_flat ~cycles:50 skew_spec in
  with_env Par.skew_env "1" (fun () ->
      if observe_par ~domains:1 ~cycles:50 skew_spec <> reference then
        Alcotest.fail "skew perturbed the single-partition machine")

(* ------------------------------------------------------------------ *)
(* par@1 zero allocation                                              *)
(* ------------------------------------------------------------------ *)

(* The single-partition ablation is the flat activity loop plus one
   indirection, and must inherit its zero-per-cycle-allocation guarantee
   (same allowance as test_flat's: one-off boxes only, nothing scaling
   with the cycle count).  Multi-domain steps are exempt — a barrier
   falling back to [Condition.wait] may allocate in the runtime. *)
let test_par1_zero_allocation () =
  let analysis =
    Asim.Analysis.analyze
      (Asim_stackm.Microcode.spec ~program:Asim_stackm.Demos.sieve_reassembled ())
  in
  let m = Par.create ~config:quiet ~domains:1 analysis in
  Machine.run m ~cycles:64;
  let before = Gc.minor_words () in
  for _ = 1 to 2000 do
    m.Machine.step ()
  done;
  let delta = Gc.minor_words () -. before in
  if delta > 256.0 then
    Alcotest.failf "par@1 allocated %.0f minor words over 2000 cycles" delta

(* ------------------------------------------------------------------ *)
(* Partitioner plan                                                   *)
(* ------------------------------------------------------------------ *)

let plan_spec = Gen.pipeline ~cores:8 ~depth:6 ~seed:1 ()

let test_plan_deterministic () =
  let analysis = Asim.Analysis.analyze plan_spec in
  let a = Par.plan ~domains:4 analysis and b = Par.plan ~domains:4 analysis in
  Alcotest.(check bool) "same plan" true (a = b)

let test_plan_clamps_domains () =
  let analysis = Asim.Analysis.analyze plan_spec in
  let n = ncomb plan_spec in
  let pl = Par.plan ~domains:1000 analysis in
  Alcotest.(check bool) "clamped to min 16 ncomb" true
    (pl.Par.p_domains <= min 16 n);
  let one = Par.plan ~domains:(-3) analysis in
  Alcotest.(check int) "negative clamps to one" 1 one.Par.p_domains

let test_plan_accounts_all_components () =
  let analysis = Asim.Analysis.analyze plan_spec in
  let pl = Par.plan ~domains:4 analysis in
  Alcotest.(check int) "assign covers every comb component" (ncomb plan_spec)
    (Array.length pl.Par.p_assign);
  Array.iter
    (fun t ->
      if t < 0 || t >= pl.Par.p_domains then
        Alcotest.failf "partition %d out of range" t)
    pl.Par.p_assign;
  Alcotest.(check bool) "positive total load" true
    (Array.fold_left ( +. ) 0.0 pl.Par.p_loads > 0.0);
  Alcotest.(check bool) "at least one sync group" true (pl.Par.p_ngroups >= 1)

let test_plan_assign_override () =
  let analysis = Asim.Analysis.analyze plan_spec in
  let n = ncomb plan_spec in
  let forced = Array.init n (fun i -> i) in
  let pl = Par.plan ~assign:forced ~domains:3 analysis in
  Array.iteri
    (fun i t -> Alcotest.(check int) (Printf.sprintf "pos %d" i) (i mod 3) t)
    pl.Par.p_assign

(* A measured cost model shifts the balance but never the semantics: a plan
   under wildly skewed costs still matches flat. *)
let test_costed_plan_still_lockstep () =
  let spec = plan_spec in
  let costs =
    List.filteri (fun i _ -> i mod 7 = 0) (List.map (fun (c : Asim.Component.t) -> (c.Asim.Component.name, 1000.0)) spec.Asim.Spec.components)
  in
  let reference = observe_flat ~cycles:50 spec in
  let got =
    observe_with
      (fun ~config a -> Par.create ~config ~domains:4 ~costs a)
      ~cycles:50 spec
  in
  if got <> reference then Alcotest.fail "costed par@4 diverges from flat"

(* ------------------------------------------------------------------ *)
(* genspec determinism and oracle agreement                            *)
(* ------------------------------------------------------------------ *)

let test_genspec_deterministic () =
  let p seed = Asim.Pretty.spec (Gen.pipeline ~cores:4 ~depth:3 ~seed ()) in
  let m seed = Asim.Pretty.spec (Gen.mesh ~width:4 ~height:3 ~seed ()) in
  Alcotest.(check string) "pipeline regenerates identically" (p 7) (p 7);
  Alcotest.(check string) "mesh regenerates identically" (m 7) (m 7);
  Alcotest.(check bool) "pipeline seeds differ" true (p 7 <> p 8);
  Alcotest.(check bool) "mesh seeds differ" true (m 7 <> m 8)

let test_genspec_shape () =
  let spec = Gen.pipeline ~cores:5 ~depth:4 ~seed:2 () in
  Alcotest.(check int) "cores*(depth+1) components" 25
    (List.length spec.Asim.Spec.components);
  let mesh = Gen.mesh ~width:6 ~height:3 ~seed:2 () in
  Alcotest.(check int) "height*(width+1) components" 21
    (List.length mesh.Asim.Spec.components);
  (* both round-trip through the concrete syntax *)
  List.iter
    (fun s ->
      if Asim.Parser.parse_string (Asim.Pretty.spec s) <> s then
        Alcotest.fail "genspec spec does not print/parse round-trip")
    [ spec; mesh ]

let test_genspec_passes_oracle () =
  List.iter
    (fun spec ->
      match
        Oracle.check ~cycles:30
          ~engines:[ Oracle.Interp; Oracle.Flat; Oracle.Par ]
          spec
      with
      | None -> ()
      | Some d -> Alcotest.failf "%s" (Oracle.divergence_to_string d))
    [
      Gen.pipeline ~cores:4 ~depth:3 ~seed:5 ();
      Gen.mesh ~width:4 ~height:3 ~seed:5 ();
    ]

let () =
  Alcotest.run "par"
    [
      ( "barrier",
        [
          Alcotest.test_case "single party returns immediately" `Quick
            test_barrier_single_party;
          Alcotest.test_case "zero parties rejected" `Quick test_barrier_rejects_zero;
          Alcotest.test_case "many rounds, sense reversal" `Quick test_barrier_rounds;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "post/import, change detection" `Quick
            test_mailbox_post_import;
          Alcotest.test_case "windowed batches" `Quick test_mailbox_window;
        ] );
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest random_assign_test;
          Alcotest.test_case "structured workloads in lockstep" `Quick
            test_structured_lockstep;
          Alcotest.test_case "costed plan still in lockstep" `Quick
            test_costed_plan_still_lockstep;
        ] );
      ( "errors",
        [ Alcotest.test_case "sequential replay of a trapping wave" `Quick
            test_error_replay ] );
      ( "skew",
        [
          Alcotest.test_case "planted lost update diverges (must-fail)" `Quick
            test_skew_diverges;
          Alcotest.test_case "clean run stays in lockstep" `Quick
            test_no_skew_lockstep;
          Alcotest.test_case "no-op with one partition" `Quick
            test_skew_noop_at_one_domain;
        ] );
      ( "allocation",
        [ Alcotest.test_case "par@1 step loop allocates nothing" `Quick
            test_par1_zero_allocation ] );
      ( "plan",
        [
          Alcotest.test_case "deterministic" `Quick test_plan_deterministic;
          Alcotest.test_case "domain clamping" `Quick test_plan_clamps_domains;
          Alcotest.test_case "covers all components" `Quick
            test_plan_accounts_all_components;
          Alcotest.test_case "explicit assignment respected" `Quick
            test_plan_assign_override;
        ] );
      ( "genspec",
        [
          Alcotest.test_case "deterministic per seed" `Quick
            test_genspec_deterministic;
          Alcotest.test_case "documented shape, round-trips" `Quick
            test_genspec_shape;
          Alcotest.test_case "small instances pass the oracle" `Quick
            test_genspec_passes_oracle;
        ] );
    ]
