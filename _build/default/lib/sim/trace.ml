type sink = string -> unit

let null_sink _ = ()

let channel_sink oc line =
  output_string oc line;
  output_char oc '\n'

let buffer_sink buf line =
  Buffer.add_string buf line;
  Buffer.add_char buf '\n'

let list_sink () =
  let lines = ref [] in
  ((fun line -> lines := line :: !lines), fun () -> List.rev !lines)

let cycle_line ~cycle traced =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Printf.sprintf "Cycle %3d" cycle);
  List.iter
    (fun (name, value) -> Buffer.add_string buf (Printf.sprintf " %s= %d" name value))
    traced;
  Buffer.contents buf

let write_line ~memory ~address ~data =
  Printf.sprintf "Write to %s at %d: %d" memory address data

let read_line ~memory ~address ~data =
  Printf.sprintf "Read from %s at %d: %d" memory address data
