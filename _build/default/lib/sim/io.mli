(** Memory-mapped I/O (§4.5).

    A memory whose operation value is 2 reads its result from the input
    stream; 3 sends its data to the output stream.  The address selects the
    transfer format: 0 = character, 1 = integer, anything else = integer
    tagged with the address. *)

type event =
  | Input of { address : int; data : int }
  | Output of { address : int; data : int }

type handler = {
  input : address:int -> int;
  output : address:int -> data:int -> unit;
}

val console : handler
(** The paper's [sinput]/[soutput] on stdin/stdout: address 0 transfers a
    character (code/char), address 1 an integer, other addresses an integer
    with an ["Input from address N:"] prompt or ["Output to address N: d"]
    line. *)

val null : handler
(** Inputs return 0; outputs are discarded.  For benchmarks. *)

val recording : ?feed:int list -> unit -> handler * (unit -> event list)
(** A handler that records every transfer (returned in occurrence order by
    the second component) and serves inputs from [feed] (0 once exhausted).
    For tests. *)

val event_to_string : event -> string
