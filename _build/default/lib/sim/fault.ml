type kind =
  | Stuck_at of int
  | Flip_bit of int
  | Stuck_bit_high of int
  | Stuck_bit_low of int

type fault = {
  component : string;
  kind : kind;
  first_cycle : int;
  last_cycle : int option;
}

type plan = fault list

let none = []

let make ?(first_cycle = 0) ?last_cycle component kind =
  { component; kind; first_cycle; last_cycle }

let stuck_at ?first_cycle ?last_cycle component value =
  make ?first_cycle ?last_cycle component (Stuck_at value)

let flip_bit ?first_cycle ?last_cycle component bit =
  make ?first_cycle ?last_cycle component (Flip_bit bit)

let active fault ~cycle =
  cycle >= fault.first_cycle
  && match fault.last_cycle with None -> true | Some last -> cycle <= last

let apply_kind kind value =
  match kind with
  | Stuck_at v -> v
  | Flip_bit b -> value lxor (1 lsl b)
  | Stuck_bit_high b -> value lor (1 lsl b)
  | Stuck_bit_low b -> value land lnot (1 lsl b)

let apply plan ~cycle ~component value =
  List.fold_left
    (fun value fault ->
      if String.equal fault.component component && active fault ~cycle then
        apply_kind fault.kind value
      else value)
    value plan

let targets plan =
  List.fold_left
    (fun acc fault -> if List.mem fault.component acc then acc else fault.component :: acc)
    [] plan
  |> List.rev
