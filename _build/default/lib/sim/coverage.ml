open Asim_core

type observation_point =
  | Traced_values
  | All_values
  | Io_events

type result = {
  fault : Fault.fault;
  detected : bool;
  first_divergence : int option;
}

type report = {
  results : result list;
  total : int;
  detected_count : int;
}

let coverage r =
  if r.total = 0 then 1.0 else float_of_int r.detected_count /. float_of_int r.total

let stuck_at_faults ?(bits_per_component = 8) (analysis : Asim_analysis.Analysis.t) =
  let widths = Asim_analysis.Width.infer analysis.Asim_analysis.Analysis.spec in
  analysis.Asim_analysis.Analysis.spec.Spec.components
  |> List.concat_map (fun (c : Component.t) ->
         let width =
           min bits_per_component
             (match List.assoc_opt c.name widths with
             | Some w -> max 1 (min Bits.word_bits w)
             | None -> 1)
         in
         List.concat
           (List.init width (fun bit ->
                [
                  {
                    Fault.component = c.name;
                    kind = Fault.Stuck_bit_low bit;
                    first_cycle = 0;
                    last_cycle = None;
                  };
                  {
                    Fault.component = c.name;
                    kind = Fault.Stuck_bit_high bit;
                    first_cycle = 0;
                    last_cycle = None;
                  };
                ])))

let fault_to_string (f : Fault.fault) =
  let kind =
    match f.Fault.kind with
    | Fault.Stuck_at v -> Printf.sprintf "stuck-at %d" v
    | Fault.Flip_bit b -> Printf.sprintf "bit %d flipped" b
    | Fault.Stuck_bit_high b -> Printf.sprintf "bit %d stuck high" b
    | Fault.Stuck_bit_low b -> Printf.sprintf "bit %d stuck low" b
  in
  Printf.sprintf "%s: %s" f.Fault.component kind

(* One run: per-cycle observed value rows plus the I/O event stream. *)
let observe ~observe_point ~cycles ~engine ~faults (analysis : Asim_analysis.Analysis.t) =
  let io, events = Io.recording () in
  let config = { Machine.io; trace = Trace.null_sink; faults } in
  let machine : Machine.t = engine config analysis in
  let names =
    match observe_point with
    | Io_events -> []
    | Traced_values -> Spec.traced_names analysis.Asim_analysis.Analysis.spec
    | All_values ->
        List.map
          (fun (c : Component.t) -> c.name)
          analysis.Asim_analysis.Analysis.spec.Spec.components
  in
  let rows = Array.make cycles [] in
  (try
     for cycle = 0 to cycles - 1 do
       machine.Machine.step ();
       rows.(cycle) <- List.map machine.Machine.read names
     done
   with Error.Error { phase = Error.Runtime; _ } ->
     (* a fault may drive the machine into a runtime error (bad address,
        selector overrun): treat what was observed so far as the run *)
     ());
  (rows, events ())

let first_divergence a b =
  let n = min (Array.length a) (Array.length b) in
  let rec go i =
    if i >= n then if Array.length a <> Array.length b then Some n else None
    else if a.(i) <> b.(i) then Some i
    else go (i + 1)
  in
  go 0

let run ?observe:observe_opt ?cycles ~engine (analysis : Asim_analysis.Analysis.t)
    ~faults =
  let spec = analysis.Asim_analysis.Analysis.spec in
  let observe_point =
    match observe_opt with
    | Some o -> o
    | None -> if Spec.traced_names spec = [] then All_values else Traced_values
  in
  let cycles =
    match cycles with
    | Some n -> n
    | None -> ( match spec.Spec.cycles with Some n -> n | None -> 100)
  in
  let healthy_rows, healthy_events =
    observe ~observe_point ~cycles ~engine ~faults:[] analysis
  in
  let results =
    List.map
      (fun fault ->
        let rows, events =
          observe ~observe_point ~cycles ~engine ~faults:[ fault ] analysis
        in
        let value_div = first_divergence healthy_rows rows in
        let io_div = events <> healthy_events in
        {
          fault;
          detected = value_div <> None || io_div;
          first_divergence = value_div;
        })
      faults
  in
  {
    results;
    total = List.length results;
    detected_count = List.length (List.filter (fun r -> r.detected) results);
  }

let to_string r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "fault coverage: %d / %d detected (%.1f%%)\n" r.detected_count
       r.total
       (100. *. coverage r));
  let undetected = List.filter (fun x -> not x.detected) r.results in
  if undetected <> [] then begin
    Buffer.add_string buf "undetected faults:\n";
    List.iter
      (fun x -> Buffer.add_string buf ("  " ^ fault_to_string x.fault ^ "\n"))
      undetected
  end;
  Buffer.contents buf
