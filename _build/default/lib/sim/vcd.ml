open Asim_core

(* Printable VCD identifier codes: '!' .. '~', then two-character codes. *)
let identifier i =
  let base = 94 and first = 33 in
  if i < base then String.make 1 (Char.chr (first + i))
  else
    let hi = (i / base) - 1 and lo = i mod base in
    Printf.sprintf "%c%c" (Char.chr (first + hi)) (Char.chr (first + lo))

let default_names (m : Machine.t) =
  let spec = m.Machine.analysis.Asim_analysis.Analysis.spec in
  match Spec.traced_names spec with
  | [] -> List.map (fun (c : Component.t) -> c.name) spec.Spec.components
  | traced -> traced

let record ?names ?(timescale = "1 ns") (m : Machine.t) ~cycles =
  let names = match names with Some ns -> ns | None -> default_names m in
  let spec = m.Machine.analysis.Asim_analysis.Analysis.spec in
  let widths = Asim_analysis.Width.infer spec in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "$date\n  ASIM II reproduction\n$end\n";
  Buffer.add_string buf "$version\n  asim vcd dump\n$end\n";
  Buffer.add_string buf (Printf.sprintf "$timescale %s $end\n" timescale);
  Buffer.add_string buf "$scope module asim $end\n";
  let signals =
    List.mapi
      (fun i name ->
        let width = try List.assoc name widths with Not_found -> Bits.word_bits in
        let id = identifier i in
        Buffer.add_string buf
          (Printf.sprintf "$var wire %d %s %s $end\n" width id name);
        (name, id, width))
      names
  in
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  let last = Hashtbl.create 16 in
  let emit_time t = Buffer.add_string buf (Printf.sprintf "#%d\n" t) in
  let emit_value (name, id, width) =
    let v = m.Machine.read name land Bits.mask in
    let changed =
      match Hashtbl.find_opt last name with
      | Some prev -> prev <> v
      | None -> true
    in
    if changed then begin
      Hashtbl.replace last name v;
      if width = 1 then Buffer.add_string buf (Printf.sprintf "%d%s\n" (v land 1) id)
      else
        Buffer.add_string buf
          (Printf.sprintf "b%s %s\n" (Bits.to_binary_string ~width v) id)
    end
  in
  emit_time 0;
  List.iter emit_value signals;
  for cycle = 1 to cycles do
    m.Machine.step ();
    emit_time cycle;
    List.iter emit_value signals
  done;
  Buffer.contents buf

let record_to_file ?names ?timescale m ~cycles ~path =
  let text = record ?names ?timescale m ~cycles in
  let oc = open_out path in
  output_string oc text;
  close_out oc

(* --- parsing ------------------------------------------------------------- *)

type wave = {
  signal : string;
  bits : int;
  changes : (int * int) list;
}

let parse_fail fmt = Error.failf Error.Parsing fmt

let parse text =
  let tokens =
    String.split_on_char '\n' text
    |> List.concat_map (String.split_on_char ' ')
    |> List.filter (fun t -> t <> "" && t <> "\r")
  in
  let vars = Hashtbl.create 16 in
  (* id -> (signal, bits, rev changes) *)
  let time = ref 0 in
  let record_change id v =
    match Hashtbl.find_opt vars id with
    | Some (signal, bits, changes) ->
        Hashtbl.replace vars id (signal, bits, (!time, v) :: changes)
    | None -> parse_fail "VCD: value change for undeclared identifier %s" id
  in
  let order = ref [] in
  let rec scan = function
    | [] -> ()
    | "$var" :: _type :: bits :: id :: name :: rest ->
        let bits =
          match int_of_string_opt bits with
          | Some b when b > 0 -> b
          | _ -> parse_fail "VCD: bad width %s" bits
        in
        Hashtbl.replace vars id (name, bits, []);
        order := id :: !order;
        (* skip to $end *)
        let rec to_end = function
          | "$end" :: rest -> rest
          | _ :: rest -> to_end rest
          | [] -> parse_fail "VCD: unterminated $var"
        in
        scan (to_end rest)
    | tok :: rest when String.length tok > 0 && tok.[0] = '$' ->
        (* other directives: skip their body up to $end when they have one *)
        if
          List.mem tok
            [ "$date"; "$version"; "$timescale"; "$scope"; "$upscope"; "$comment" ]
        then
          let rec to_end = function
            | "$end" :: r -> r
            | _ :: r -> to_end r
            | [] -> []
          in
          scan (to_end rest)
        else if tok = "$enddefinitions" || tok = "$dumpvars" || tok = "$end" then
          scan rest
        else scan rest
    | tok :: rest when tok.[0] = '#' -> (
        match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
        | Some t ->
            time := t;
            scan rest
        | None -> parse_fail "VCD: bad timestamp %s" tok)
    | tok :: rest when tok.[0] = 'b' || tok.[0] = 'B' -> (
        (* vector: b1010 then the identifier as the next token *)
        let v =
          String.fold_left
            (fun acc c ->
              match c with
              | '0' -> acc * 2
              | '1' -> (acc * 2) + 1
              | 'b' | 'B' -> acc
              | _ -> parse_fail "VCD: bad vector digit %c" c)
            0 tok
        in
        match rest with
        | id :: rest ->
            record_change id v;
            scan rest
        | [] -> parse_fail "VCD: vector change without identifier")
    | tok :: rest when tok.[0] = '0' || tok.[0] = '1' ->
        (* scalar: 0! / 1! with the identifier attached *)
        let v = if tok.[0] = '1' then 1 else 0 in
        let id = String.sub tok 1 (String.length tok - 1) in
        if id = "" then parse_fail "VCD: scalar change without identifier"
        else begin
          record_change id v;
          scan rest
        end
    | tok :: _ -> parse_fail "VCD: unexpected token %s" tok
  in
  scan tokens;
  List.rev_map
    (fun id ->
      match Hashtbl.find_opt vars id with
      | Some (signal, bits, changes) -> { signal; bits; changes = List.rev changes }
      | None -> assert false)
    !order

let value_at wave t =
  List.fold_left (fun acc (time, v) -> if time <= t then v else acc) 0 wave.changes

let diff a b =
  let horizon waves =
    List.fold_left
      (fun acc w -> List.fold_left (fun acc (t, _) -> max acc t) acc w.changes)
      0 waves
  in
  let last = max (horizon a) (horizon b) in
  let find waves name = List.find_opt (fun w -> w.signal = name) waves in
  let names =
    List.sort_uniq compare (List.map (fun w -> w.signal) a @ List.map (fun w -> w.signal) b)
  in
  List.filter_map
    (fun name ->
      match (find a name, find b name) with
      | Some wa, Some wb ->
          let times = ref [] in
          for t = last downto 0 do
            if value_at wa t <> value_at wb t then times := t :: !times
          done;
          if !times = [] then None else Some (name, !times)
      | Some _, None | None, Some _ -> Some (name, [ -1 ])
      | None, None -> None)
    names
