(** Value-occupancy profiling.

    §1.4: the register-transfer simulation "will typically produce statistics
    about the actual simulation, such as execution cycles required, memory
    accesses, and other related information.  This extra output is invaluable
    when the designer desires to view the internal states of a
    microprocessor."  {!Stats} counts memory traffic; this module samples
    selected component outputs every cycle and reports how often each value
    occurred — state-occupancy histograms, duty cycles, hot addresses. *)

type histogram = (int * int) list
(** value → number of cycles it was observed, most frequent first. *)

val run :
  Machine.t -> cycles:int -> components:string list -> (string * histogram) list
(** Step the machine [cycles] times, sampling each listed component after
    every cycle. *)

val duty_cycle : histogram -> bit:int -> float
(** Fraction of samples with the given bit set. *)

val top : ?n:int -> histogram -> (int * int) list
(** The [n] (default 8) most frequent values. *)

val to_string : (string * histogram) list -> string
(** Multi-line report: per component, the top values with counts and
    percentages. *)
