type event =
  | Input of { address : int; data : int }
  | Output of { address : int; data : int }

type handler = {
  input : address:int -> int;
  output : address:int -> data:int -> unit;
}

let console =
  let input ~address =
    match address with
    | 0 -> ( try Char.code (input_char stdin) with End_of_file -> 0)
    | 1 -> ( try Scanf.scanf " %d" (fun d -> d) with Scanf.Scan_failure _ | End_of_file -> 0)
    | _ -> (
        Printf.printf "Input from address %d: " address;
        try Scanf.scanf " %d" (fun d -> d)
        with Scanf.Scan_failure _ | End_of_file -> 0)
  in
  let output ~address ~data =
    match address with
    | 0 -> print_char (Char.chr (data land 255))
    | 1 -> Printf.printf "%d\n" data
    | _ -> Printf.printf "Output to address %d: %d\n" address data
  in
  { input; output }

let null = { input = (fun ~address:_ -> 0); output = (fun ~address:_ ~data:_ -> ()) }

let recording ?(feed = []) () =
  let events = ref [] in
  let pending = ref feed in
  let input ~address =
    let data =
      match !pending with
      | [] -> 0
      | d :: rest ->
          pending := rest;
          d
    in
    events := Input { address; data } :: !events;
    data
  in
  let output ~address ~data = events := Output { address; data } :: !events in
  ({ input; output }, fun () -> List.rev !events)

let event_to_string = function
  | Input { address; data } -> Printf.sprintf "input[%d] -> %d" address data
  | Output { address; data } -> Printf.sprintf "output[%d] <- %d" address data
