(** Value Change Dump output.

    A modern convenience the 1986 tool lacked: record selected component
    outputs over a run and emit an IEEE 1364 VCD file loadable by any
    waveform viewer.  Signal widths come from [Asim_analysis.Width]. *)

val record :
  ?names:string list ->
  ?timescale:string ->
  Machine.t ->
  cycles:int ->
  string
(** Run the machine for [cycles] steps, sampling [names] (default: the
    spec's traced components, or every component when none are traced)
    after every step, and return the VCD text.  One VCD time unit per
    cycle. *)

val record_to_file :
  ?names:string list ->
  ?timescale:string ->
  Machine.t ->
  cycles:int ->
  path:string ->
  unit

(** {2 Reading waveforms back}

    Enough of IEEE 1364 to round-trip this module's own output (and any
    dump using scalar/vector value changes), supporting golden-waveform
    tests and fault-run comparison. *)

type wave = {
  signal : string;
  bits : int;
  changes : (int * int) list;  (** (time, new value), time-ascending *)
}

val parse : string -> wave list
(** Raises {!Asim_core.Error.Error} (phase [Parsing]) on malformed input. *)

val value_at : wave -> int -> int
(** The signal's value at a time (0 before its first change). *)

val diff : wave list -> wave list -> (string * int list) list
(** Signals present in both waveform sets whose values differ, with the
    times at which they do; signals present in only one set are reported
    with time [-1].  Empty means the dumps are equivalent. *)
