(** Trace-line formatting, byte-compatible with the generated Pascal's
    [write]/[writeln] calls, and sinks to direct the text somewhere. *)

type sink = string -> unit
(** Receives complete lines, without the trailing newline. *)

val null_sink : sink

val channel_sink : out_channel -> sink
(** Appends a newline per line. *)

val buffer_sink : Buffer.t -> sink
(** Appends lines separated by ['\n'] (with a trailing newline per line). *)

val list_sink : unit -> sink * (unit -> string list)
(** Collects lines; the second component returns them in emission order. *)

val cycle_line : cycle:int -> (string * int) list -> string
(** ["Cycle   7 state= 3 pc= 12"] — cycle right-justified to width 3, then
    [" name= value"] per traced component, exactly as Appendix E prints. *)

val write_line : memory:string -> address:int -> data:int -> string
(** ["Write to ram at 15: 42"]. *)

val read_line : memory:string -> address:int -> data:int -> string
(** ["Read from ram at 15: 42"]. *)
