type histogram = (int * int) list

let run (m : Machine.t) ~cycles ~components =
  let tables = List.map (fun name -> (name, Hashtbl.create 64)) components in
  for _ = 1 to cycles do
    m.Machine.step ();
    List.iter
      (fun (name, table) ->
        let v = m.Machine.read name in
        Hashtbl.replace table v (1 + try Hashtbl.find table v with Not_found -> 0))
      tables
  done;
  List.map
    (fun (name, table) ->
      let entries = Hashtbl.fold (fun v n acc -> (v, n) :: acc) table [] in
      (name, List.sort (fun (_, a) (_, b) -> compare b a) entries))
    tables

let total histogram = List.fold_left (fun acc (_, n) -> acc + n) 0 histogram

let duty_cycle histogram ~bit =
  let t = total histogram in
  if t = 0 then 0.
  else
    let set =
      List.fold_left
        (fun acc (v, n) -> if (v lsr bit) land 1 = 1 then acc + n else acc)
        0 histogram
    in
    float_of_int set /. float_of_int t

let top ?(n = 8) histogram = List.filteri (fun i _ -> i < n) histogram

let to_string profiles =
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, histogram) ->
      let t = total histogram in
      Buffer.add_string buf (Printf.sprintf "%s (%d samples):\n" name t);
      List.iter
        (fun (v, n) ->
          Buffer.add_string buf
            (Printf.sprintf "  %10d  %8d cycles  %5.1f%%\n" v n
               (100. *. float_of_int n /. float_of_int (max 1 t))))
        (top histogram))
    profiles;
  Buffer.contents buf
