lib/sim/vcd.ml: Asim_analysis Asim_core Bits Buffer Char Component Error Hashtbl List Machine Printf Spec String
