lib/sim/fault.mli:
