lib/sim/fault.ml: List String
