lib/sim/coverage.ml: Array Asim_analysis Asim_core Bits Buffer Component Error Fault Io List Machine Printf Spec Trace
