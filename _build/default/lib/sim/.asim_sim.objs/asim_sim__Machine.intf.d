lib/sim/machine.mli: Asim_analysis Fault Io Stats Trace
