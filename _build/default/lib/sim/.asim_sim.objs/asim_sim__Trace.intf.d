lib/sim/trace.mli: Buffer
