lib/sim/io.mli:
