lib/sim/profile.mli: Machine
