lib/sim/vcd.mli: Machine
