lib/sim/profile.ml: Buffer Hashtbl List Machine Printf
