lib/sim/coverage.mli: Asim_analysis Fault Machine
