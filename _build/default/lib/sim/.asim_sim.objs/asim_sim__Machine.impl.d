lib/sim/machine.ml: Asim_analysis Asim_core Error Fault Io Spec Stats Trace
