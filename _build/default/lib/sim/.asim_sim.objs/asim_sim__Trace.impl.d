lib/sim/trace.ml: Buffer List Printf
