lib/sim/io.ml: Char List Printf Scanf
