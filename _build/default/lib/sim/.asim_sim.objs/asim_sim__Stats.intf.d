lib/sim/stats.mli: Asim_core Format
