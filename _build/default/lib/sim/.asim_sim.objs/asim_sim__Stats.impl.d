lib/sim/stats.ml: Asim_core Buffer Component Format List Printf
