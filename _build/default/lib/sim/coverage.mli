(** Fault-coverage analysis (§2.3.2).

    "One way to [verify a design] is by fault injection, the process of
    inserting a fault in the specification to cause errors (by design) in
    the simulation run."  This module turns that idea into a measurement:
    enumerate single stuck-at faults over every component's output bits, run
    the workload once per fault, and report which faults the workload
    {e detects} — i.e. which ones change something observable (a traced
    value or an I/O event).  Undetected faults mark parts of the design the
    test program never exercises. *)

type observation_point =
  | Traced_values  (** the per-cycle values of the spec's traced components *)
  | All_values  (** every component's value, every cycle *)
  | Io_events  (** the input/output event stream only *)

type result = {
  fault : Fault.fault;
  detected : bool;
  first_divergence : int option;
      (** cycle of the first observable difference, when detected through
          values; [None] for I/O-stream detections and undetected faults *)
}

type report = {
  results : result list;
  total : int;
  detected_count : int;
}

val coverage : report -> float
(** Detected fraction, 0..1. *)

val stuck_at_faults :
  ?bits_per_component:int -> Asim_analysis.Analysis.t -> Fault.fault list
(** One stuck-at-0 and one stuck-at-1 fault per output bit of every
    component, bits bounded by the inferred width (and by
    [bits_per_component], default 8, to keep fault lists tractable). *)

val run :
  ?observe:observation_point ->
  ?cycles:int ->
  engine:
    (Machine.config -> Asim_analysis.Analysis.t -> Machine.t) ->
  Asim_analysis.Analysis.t ->
  faults:Fault.fault list ->
  report
(** Run the healthy reference, then one simulation per fault (default
    cycle budget: the spec's [= N] or 100).  [observe] defaults to
    [Traced_values] when the spec traces anything, [All_values]
    otherwise. *)

val to_string : report -> string
(** Summary plus the list of undetected faults. *)
