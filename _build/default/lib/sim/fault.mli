(** Fault injection (§2.3.2).

    "One way to [test a design] is by fault injection, the process of
    inserting a fault in the specification to cause errors (by design) in the
    simulation run."  A fault plan forces or perturbs the output of a named
    component over a cycle window; engines apply it to combinational outputs
    as they are computed and to memory outputs as they are latched. *)

type kind =
  | Stuck_at of int  (** output forced to a constant *)
  | Flip_bit of int  (** one output bit inverted (0 = LSB) *)
  | Stuck_bit_high of int
  | Stuck_bit_low of int

type fault = {
  component : string;
  kind : kind;
  first_cycle : int;  (** inclusive *)
  last_cycle : int option;  (** inclusive; [None] = forever *)
}

type plan = fault list

val none : plan

val stuck_at : ?first_cycle:int -> ?last_cycle:int -> string -> int -> fault

val flip_bit : ?first_cycle:int -> ?last_cycle:int -> string -> int -> fault

val active : fault -> cycle:int -> bool

val apply : plan -> cycle:int -> component:string -> int -> int
(** Transform a freshly computed output value through every active fault
    targeting [component]. *)

val targets : plan -> string list
(** Components named by the plan (deduplicated); engines may skip fault
    lookup entirely when this is empty. *)
