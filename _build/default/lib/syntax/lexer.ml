open Asim_core

type token = { text : string; pos : Error.position }

let is_whitespace c = c = ' ' || c = '\t' || c = '\r' || c = '\n'

let tokenize source =
  let len = String.length source in
  (* First line must be a [#] comment; it is echoed into generated code. *)
  if len = 0 || source.[0] <> '#' then
    Error.fail ~position:{ line = 1; column = 1 } Error.Lexing "Comment required."
  else
    let line_end =
      match String.index_opt source '\n' with Some i -> i | None -> len
    in
    let comment = String.sub source 1 (line_end - 1) in
    let tokens = ref [] in
    let line = ref 2 and column = ref 1 in
    let buf = Buffer.create 32 in
    let token_pos = ref { Error.line = 0; column = 0 } in
    let flush () =
      if Buffer.length buf > 0 then begin
        let text = Buffer.contents buf in
        Buffer.clear buf;
        (* Split a trailing period off multi-character tokens, as the
           paper's [gettoken] does, so ["4096."] reads as two tokens. *)
        let n = String.length text in
        if n > 1 && text.[n - 1] = '.' then begin
          tokens := { text = String.sub text 0 (n - 1); pos = !token_pos } :: !tokens;
          tokens :=
            { text = "."; pos = { !token_pos with column = !token_pos.column + n - 1 } }
            :: !tokens
        end
        else tokens := { text; pos = !token_pos } :: !tokens
      end
    in
    let advance c =
      if c = '\n' then begin
        incr line;
        column := 1
      end
      else incr column
    in
    let i = ref (if line_end < len then line_end + 1 else len) in
    while !i < len do
      let c = source.[!i] in
      if c = '{' then begin
        flush ();
        let start = { Error.line = !line; column = !column } in
        advance c;
        incr i;
        let rec skip () =
          if !i >= len then
            Error.fail ~position:start Error.Lexing "unterminated { comment"
          else
            let c = source.[!i] in
            advance c;
            incr i;
            if c <> '}' then skip ()
        in
        skip ()
      end
      else if is_whitespace c then begin
        flush ();
        advance c;
        incr i
      end
      else begin
        if Buffer.length buf = 0 then token_pos := { Error.line = !line; column = !column };
        Buffer.add_char buf c;
        advance c;
        incr i
      end
    done;
    flush ();
    (comment, List.rev !tokens)
