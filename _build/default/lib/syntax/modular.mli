(** Modules: the §5.4 extension.

    "ASIM II, however, does not have any high level modularity construct.
    The behavior of an electronic circuit is difficult to express in a
    modular fashion without providing the actual description of the module
    and expanding that description at compile time."  This implements
    exactly that compile-time expansion:

    {v
    B tflip clk .          { define module tflip with one port }
    A tflipn 10 tflipq clk
    M tflipq 0 tflipn 1 1
    E
    U bit0 tflip enable    { instantiate: ports bind to component names }
    U bit1 tflip bit0tflipq
    v}

    Inside a module body, names fall into two classes: {b ports} (free
    names listed in the [B] header) and {b internals} (components defined
    in the body).  Instantiation [U inst mod a1 ... an] splices the body
    into the surrounding specification with every internal [x] renamed to
    [inst ^ x] and every port replaced by its actual (which must be a plain
    component name; bit fields written on a port reference carry over to
    the actual).  Modules may instantiate previously defined modules;
    recursion is impossible by construction. *)

type def = {
  def_name : string;
  ports : string list;
  body : Asim_core.Component.t list;
      (** may contain references to ports and internals only *)
}

val validate_def : def -> unit
(** Check the definition: valid and distinct port names, and every name
    referenced in the body is a port or an internal.  Raises
    {!Asim_core.Error.Error} (phase [Parsing]). *)

val expand :
  def -> inst:string -> actuals:string list -> Asim_core.Component.t list
(** Instantiate.  Raises on arity mismatch or invalid instance name.
    Internal component [x] becomes [inst ^ x]. *)

val internal_names : def -> string list
(** Names defined by the body (before prefixing). *)
