open Asim_core

type def = {
  def_name : string;
  ports : string list;
  body : Component.t list;
}

let internal_names def = List.map (fun (c : Component.t) -> c.name) def.body

let validate_def def =
  let fail fmt = Error.failf ~component:def.def_name Error.Parsing fmt in
  if not (Spec.is_valid_name def.def_name) then
    fail "module name %s invalid" def.def_name;
  List.iter
    (fun p -> if not (Spec.is_valid_name p) then fail "port name %s invalid" p)
    def.ports;
  let rec dup = function
    | [] -> ()
    | p :: rest -> if List.mem p rest then fail "port %s listed twice" p else dup rest
  in
  dup def.ports;
  let internals = internal_names def in
  List.iter
    (fun p ->
      if List.mem p internals then fail "port %s shadows an internal component" p)
    def.ports;
  let known name = List.mem name def.ports || List.mem name internals in
  List.iter
    (fun (c : Component.t) ->
      List.iter
        (fun e ->
          List.iter
            (fun name ->
              if not (known name) then
                fail "module %s: <%s> is neither a port nor an internal component"
                  def.def_name name)
            (Expr.names e))
        (Component.inputs c))
    def.body

let rename_expr ~subst e =
  List.map
    (fun atom ->
      match atom with
      | Expr.Const _ | Expr.Bitstring _ -> atom
      | Expr.Ref { name; field } -> Expr.Ref { name = subst name; field })
    e

let rename_component ~subst (c : Component.t) =
  let e = rename_expr ~subst in
  let kind =
    match c.kind with
    | Component.Alu { fn; left; right } ->
        Component.Alu { fn = e fn; left = e left; right = e right }
    | Component.Selector { select; cases } ->
        Component.Selector { select = e select; cases = Array.map e cases }
    | Component.Memory { addr; data; op; cells; init } ->
        Component.Memory { addr = e addr; data = e data; op = e op; cells; init }
  in
  { Component.name = subst c.name; kind }

let expand def ~inst ~actuals =
  let fail fmt = Error.failf ~component:inst Error.Parsing fmt in
  if not (Spec.is_valid_name inst) then fail "instance name %s invalid" inst;
  if List.length actuals <> List.length def.ports then
    fail "module %s takes %d ports but %d given" def.def_name
      (List.length def.ports) (List.length actuals);
  List.iter
    (fun a ->
      if not (Spec.is_valid_name a) then
        fail "port actual %s must be a component name" a)
    actuals;
  let bindings = List.combine def.ports actuals in
  let internals = internal_names def in
  let subst name =
    match List.assoc_opt name bindings with
    | Some actual -> actual
    | None ->
        if List.mem name internals then inst ^ name
        else (* validate_def rules this out *) assert false
  in
  List.map (rename_component ~subst) def.body
