(** Tokenizer for ASIM II specification files.

    The format (Appendix A): the first line is a mandatory [#] comment;
    afterwards the file is a stream of whitespace-delimited tokens, with
    [{ ... }] comments (not nested) acting as whitespace.  A token whose last
    character is [.] is split into the token proper and a standalone [.], so
    the terminating period of a list may abut the preceding field. *)

type token = {
  text : string;
  pos : Asim_core.Error.position;  (** position of the token's first char *)
}

val tokenize : string -> string * token list
(** [tokenize source] returns the first-line comment (with the leading [#]
    stripped) and the token stream of the remainder.  Raises
    {!Asim_core.Error.Error} (phase [Lexing]) when the comment line is
    missing or a [{] comment is unterminated. *)
