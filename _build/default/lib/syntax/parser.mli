(** Parser: token stream → {!Asim_core.Spec.t}.

    File layout (Appendix A):
    {v
    # comment line
    ~macro body ...          (zero or more macro definitions)
    = 100                    (optional cycle count)
    name1* name2 name3 .     (declaration list; * marks traced components)
    A name fn left right
    S name select v0 v1 ... vn
    M name addr data op n [v0 ... v|n|-1]    (n < 0 supplies initial values)
    .
    v}

    A selector's value list extends until the next component letter
    ([A]/[S]/[M]/[B]/[E]/[U] as a standalone single-character token) or the
    final period; consequently those single-letter component names cannot be
    used as selector inputs (the original has the same restriction for its
    letters).

    The §5.4 modularity extension adds two forms (see {!Modular}):
    {v
    B name port1 ... portn .    components ...    E     (define a module)
    U inst name actual1 ... actualn                     (instantiate it)
    v} *)

val parse_string : string -> Asim_core.Spec.t
(** Parse a complete specification source.  Raises {!Asim_core.Error.Error}
    with phase [Lexing]/[Parsing] on malformed input.  The result is
    structurally validated ({!Asim_core.Spec.validate}). *)

val parse_file : string -> Asim_core.Spec.t
(** [parse_string] over a file's contents. *)

val parse_expr : string -> Asim_core.Expr.t
(** Parse a standalone expression token, e.g. ["mem.3.4,#01,count.1"]. *)

val parse_number : string -> Asim_core.Number.t
(** Parse a standalone number token, e.g. ["128+3+^8"]. *)
