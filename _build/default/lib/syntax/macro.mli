(** Macro definition and expansion (Appendix A).

    Macro definitions come first in the token stream: each is a marker-prefixed
    name token followed by one body token, e.g. [~pack #0000].  We accept both
    [~] and [-] as the definition marker (the thesis text uses both; its
    scanned appendices disagree).  References are always [~name] and may occur
    anywhere inside a later token; the name extends over letters and digits
    and is replaced by the body.  Bodies are themselves expanded at definition
    time, so a macro may use previously defined macros but can never be
    recursive. *)

type table
(** Name → body, in definition order. *)

val empty : table

val definitions : table -> (string * string) list

val consume : Lexer.token list -> table * Lexer.token list
(** Read leading macro definitions off the token stream. Raises
    {!Asim_core.Error.Error} (phase [Parsing]) on a malformed definition
    (bad name, missing body, duplicate, or use of an undefined macro in a
    body). *)

val expand_text : table -> pos:Asim_core.Error.position -> string -> string
(** Expand every [~name] occurrence in one token.  Raises on undefined
    macros, mirroring the paper's "Error. Macro <x> not defined." *)

val expand : table -> Lexer.token list -> Lexer.token list
(** {!expand_text} over a whole stream. *)
