open Asim_core

type table = (string * string) list
(* Most recent definition first. *)

let empty : table = []

let definitions t = List.rev t

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

let expand_text t ~pos text =
  let buf = Buffer.create (String.length text) in
  let len = String.length text in
  let i = ref 0 in
  while !i < len do
    if text.[!i] = '~' then begin
      let start = !i + 1 in
      let stop = ref start in
      while !stop < len && is_name_char text.[!stop] do
        incr stop
      done;
      let name = String.sub text start (!stop - start) in
      (match List.assoc_opt name t with
      | Some body -> Buffer.add_string buf body
      | None -> Error.failf ~position:pos Error.Parsing "Macro <%s> not defined." name);
      i := !stop
    end
    else begin
      Buffer.add_char buf text.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let is_definition_marker text =
  String.length text > 1 && (text.[0] = '~' || text.[0] = '-')

let consume tokens =
  let rec go table = function
    | { Lexer.text; pos } :: body :: rest when is_definition_marker text ->
        let name = String.sub text 1 (String.length text - 1) in
        if not (Spec.is_valid_name name) then
          Error.failf ~position:pos Error.Parsing
            "macro name %s invalid, use letters and numbers only." name;
        if List.mem_assoc name table then
          Error.failf ~position:pos Error.Parsing "macro %s defined twice" name;
        let body = expand_text table ~pos:body.Lexer.pos body.Lexer.text in
        go ((name, body) :: table) rest
    | [ { Lexer.text; pos } ] when is_definition_marker text ->
        Error.failf ~position:pos Error.Parsing "macro %s has no body" text
    | rest -> (table, rest)
  in
  go [] tokens

let expand t tokens =
  List.map
    (fun ({ Lexer.text; pos } as tok) ->
      if String.contains text '~' then { tok with Lexer.text = expand_text t ~pos text }
      else tok)
    tokens
