lib/syntax/lexer.ml: Asim_core Buffer Error List String
