lib/syntax/parser.mli: Asim_core
