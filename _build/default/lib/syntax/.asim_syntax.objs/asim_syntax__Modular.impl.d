lib/syntax/modular.ml: Array Asim_core Component Error Expr List Spec
