lib/syntax/macro.ml: Asim_core Buffer Error Lexer List Spec String
