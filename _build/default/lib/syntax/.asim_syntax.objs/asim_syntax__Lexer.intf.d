lib/syntax/lexer.mli: Asim_core
