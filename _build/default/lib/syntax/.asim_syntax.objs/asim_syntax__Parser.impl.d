lib/syntax/parser.ml: Array Asim_core Component Error Expr Hashtbl Lexer List Macro Modular Number Spec String
