lib/syntax/macro.mli: Asim_core Lexer
