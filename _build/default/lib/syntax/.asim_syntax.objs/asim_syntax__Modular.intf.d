lib/syntax/modular.mli: Asim_core
