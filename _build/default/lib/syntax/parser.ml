open Asim_core

let parse_number = Number.parse

(* --- expressions ------------------------------------------------------- *)

let split_on_char_nonempty ~what ?pos c s =
  let pieces = String.split_on_char c s in
  if List.exists (fun p -> p = "") pieces then
    Error.failf ?position:pos Error.Parsing "Malformed %s %s." what s
  else pieces

let parse_atom ?pos piece =
  let malformed () = Error.failf ?position:pos Error.Parsing "Malformed expression %s." piece in
  if piece = "" then malformed ()
  else if piece.[0] = '#' then begin
    let bits = String.sub piece 1 (String.length piece - 1) in
    if bits = "" || not (String.for_all (fun c -> c = '0' || c = '1') bits) then
      malformed ()
    else Expr.Bitstring bits
  end
  else if Number.is_number_start piece.[0] then
    match split_on_char_nonempty ~what:"expression" ?pos '.' piece with
    | [ number ] -> Expr.Const { number = Number.parse number; width = None }
    | [ number; width ] ->
        Expr.Const { number = Number.parse number; width = Some (Number.parse width) }
    | _ -> malformed ()
  else
    match split_on_char_nonempty ~what:"expression" ?pos '.' piece with
    | [ name ] when Spec.is_valid_name name -> Expr.Ref { name; field = Expr.Whole }
    | [ name; f ] when Spec.is_valid_name name ->
        Expr.Ref { name; field = Expr.Bit (Number.parse f) }
    | [ name; f; t ] when Spec.is_valid_name name ->
        Expr.Ref { name; field = Expr.Range (Number.parse f, Number.parse t) }
    | _ -> malformed ()

let parse_expr_at ?pos text =
  let pieces = split_on_char_nonempty ~what:"expression" ?pos ',' text in
  List.map (parse_atom ?pos) pieces

let parse_expr text = parse_expr_at text

(* --- token-stream helpers ---------------------------------------------- *)

type stream = { mutable tokens : Lexer.token list; mutable last : Error.position }

let peek s = match s.tokens with [] -> None | tok :: _ -> Some tok

let next s what =
  match s.tokens with
  | [] -> Error.failf ~position:s.last Error.Parsing "unexpected end of input, expected %s" what
  | tok :: rest ->
      s.tokens <- rest;
      s.last <- tok.Lexer.pos;
      tok

(* --- sections ----------------------------------------------------------- *)

let parse_cycles s =
  match peek s with
  | Some { Lexer.text = "="; _ } ->
      ignore (next s "=");
      let tok = next s "cycle count" in
      Some (Number.parse_value tok.Lexer.text)
  | _ -> None

let parse_decls s =
  let rec go acc =
    let tok = next s "component name or ." in
    if tok.Lexer.text = "." then List.rev acc
    else
      let text = tok.Lexer.text in
      let n = String.length text in
      let name, traced =
        if n > 1 && text.[n - 1] = '*' then (String.sub text 0 (n - 1), true)
        else (text, false)
      in
      if not (Spec.is_valid_name name) then
        Error.failf ~position:tok.Lexer.pos Error.Parsing
          "Component name %s invalid, use letters and numbers only." name;
      go ({ Spec.name; traced } :: acc)
  in
  go []

let is_component_letter text =
  text = "A" || text = "S" || text = "M" || text = "B" || text = "E" || text = "U"

let parse_name s =
  let tok = next s "component name" in
  if not (Spec.is_valid_name tok.Lexer.text) then
    Error.failf ~position:tok.Lexer.pos Error.Parsing
      "Component name %s invalid, use letters and numbers only." tok.Lexer.text;
  tok.Lexer.text

let parse_expr_token s what =
  let tok = next s what in
  parse_expr_at ~pos:tok.Lexer.pos tok.Lexer.text

let parse_alu s =
  let name = parse_name s in
  let fn = parse_expr_token s "ALU function" in
  let left = parse_expr_token s "ALU left operand" in
  let right = parse_expr_token s "ALU right operand" in
  { Component.name; kind = Component.Alu { fn; left; right } }

let parse_selector s =
  let name = parse_name s in
  let select = parse_expr_token s "selector input" in
  let rec cases acc =
    match peek s with
    | Some { Lexer.text; _ } when is_component_letter text || text = "." ->
        List.rev acc
    | Some _ -> cases (parse_expr_token s "selector value" :: acc)
    | None ->
        Error.failf ~position:s.last Error.Parsing
          "unexpected end of input in selector %s (missing final .?)" name
  in
  let cases = cases [] in
  if cases = [] then
    Error.failf ~position:s.last ~component:name Error.Parsing "selector has no values";
  { Component.name; kind = Component.Selector { select; cases = Array.of_list cases } }

let parse_memory s =
  let name = parse_name s in
  let addr = parse_expr_token s "memory address" in
  let data = parse_expr_token s "memory data" in
  let op = parse_expr_token s "memory operation" in
  let tok = next s "memory cell count" in
  let text = tok.Lexer.text in
  if String.length text > 1 && text.[0] = '-' then begin
    let cells = Number.parse_value (String.sub text 1 (String.length text - 1)) in
    if cells < 1 then
      Error.failf ~position:tok.Lexer.pos ~component:name Error.Parsing
        "memory must have at least one cell";
    let init =
      Array.init cells (fun _ ->
          Number.parse_value (next s "memory initial value").Lexer.text)
    in
    { Component.name; kind = Component.Memory { addr; data; op; cells; init = Some init } }
  end
  else
    let cells = Number.parse_value text in
    { Component.name; kind = Component.Memory { addr; data; op; cells; init = None } }

(* Component list with the §5.4 module extension: [B name ports... .] opens
   a module definition (terminated by [E]); [U inst module actuals...]
   splices an instance in, with internal names prefixed by the instance
   name.  Names created by expansion are also returned so the caller can
   declare them implicitly. *)
let parse_components s =
  let modules = Hashtbl.create 8 in
  let expanded = ref [] in
  let parse_ports () =
    let rec go acc =
      let tok = next s "port name or ." in
      if tok.Lexer.text = "." then List.rev acc
      else begin
        if not (Spec.is_valid_name tok.Lexer.text) then
          Error.failf ~position:tok.Lexer.pos Error.Parsing
            "port name %s invalid, use letters and numbers only." tok.Lexer.text;
        go (tok.Lexer.text :: acc)
      end
    in
    go []
  in
  let rec go ~in_module acc =
    let tok = next s "component (A, S, M, B, U) or terminator" in
    match tok.Lexer.text with
    | "." when not in_module -> List.rev acc
    | "E" when in_module -> List.rev acc
    | "." ->
        Error.failf ~position:tok.Lexer.pos Error.Parsing
          "module body must end with E, not ."
    | "E" ->
        Error.failf ~position:tok.Lexer.pos Error.Parsing "E without a matching B"
    | "A" -> go ~in_module (parse_alu s :: acc)
    | "S" -> go ~in_module (parse_selector s :: acc)
    | "M" -> go ~in_module (parse_memory s :: acc)
    | "B" when in_module ->
        Error.failf ~position:tok.Lexer.pos Error.Parsing
          "nested module definitions are not supported"
    | "B" ->
        let def_name = parse_name s in
        if Hashtbl.mem modules def_name then
          Error.failf ~position:tok.Lexer.pos Error.Parsing
            "module %s defined twice" def_name;
        let ports = parse_ports () in
        let body = go ~in_module:true [] in
        let def = { Modular.def_name; ports; body } in
        Modular.validate_def def;
        Hashtbl.add modules def_name def;
        go ~in_module acc
    | "U" ->
        let inst = parse_name s in
        let tok = next s "module name" in
        let def =
          match Hashtbl.find_opt modules tok.Lexer.text with
          | Some def -> def
          | None ->
              Error.failf ~position:tok.Lexer.pos Error.Parsing
                "module <%s> not defined" tok.Lexer.text
        in
        let actuals = List.map (fun _ -> parse_name s) def.Modular.ports in
        let components = Modular.expand def ~inst ~actuals in
        if not in_module then
          expanded :=
            List.rev_append
              (List.map (fun (c : Component.t) -> c.name) components)
              !expanded;
        go ~in_module (List.rev_append components acc)
    | text ->
        Error.failf ~position:tok.Lexer.pos Error.Parsing
          "Component expected. Got <%s> instead." text
  in
  let components = go ~in_module:false [] in
  (components, List.rev !expanded)

let parse_string source =
  let comment, tokens = Lexer.tokenize source in
  let macros, tokens = Macro.consume tokens in
  let tokens = Macro.expand macros tokens in
  let s = { tokens; last = { Error.line = 1; column = 1 } } in
  let cycles = parse_cycles s in
  let decls = parse_decls s in
  let components, expanded = parse_components s in
  (* Components spliced in by module instantiation are declared implicitly
     (untraced) unless the user listed them. *)
  let declared name = List.exists (fun (d : Spec.decl) -> d.Spec.name = name) decls in
  let decls =
    decls
    @ List.filter_map
        (fun name ->
          if declared name then None else Some { Spec.name; traced = false })
        expanded
  in
  (match peek s with
  | None -> ()
  | Some tok ->
      Error.failf ~position:tok.Lexer.pos Error.Parsing
        "trailing input after final period: <%s>" tok.Lexer.text);
  let spec = { Spec.comment; cycles; decls; components } in
  Spec.validate spec;
  spec

let parse_file path =
  let ic = open_in_bin path in
  let read () =
    let n = in_channel_length ic in
    really_input_string ic n
  in
  let source =
    try read ()
    with e ->
      close_in_noerr ic;
      raise e
  in
  close_in ic;
  parse_string source
