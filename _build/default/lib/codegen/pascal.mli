(** The Pascal backend — what ASIM II actually shipped.

    Generates a complete standalone Pascal program in the shape of
    Appendix E: [ljb]-prefixed value variables, [temp]/[adr]/[opn]
    temporaries per memory, the set-based [land] function, [initvalues],
    [dologic], [sinput]/[soutput], and a main loop applying the paper's
    optimizations (constant ALU functions inlined — Figure 4.1; constant
    memory operations specialized — Figure 4.3).

    Divergences from the original, recorded in DESIGN.md: the cycle loop runs
    exactly [cycles] iterations with no interactive continuation prompt, and
    write/read trace lines require the full [land 5 = 5] / [land 9 = 8]
    patterns even for constant operations. *)

val generate : Asim_analysis.Analysis.t -> string

val expression : ?memories:string list -> Asim_core.Expr.t -> string
(** Render one expression as Pascal (for Figure 4.x listings and tests).
    Names in [memories] read their [temp] registers; every other reference
    reads its [ljb] value variable, as inside the main loop. *)
