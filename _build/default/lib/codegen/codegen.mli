(** Backend dispatcher. *)

type lang =
  | Pascal  (** the original's output language (Appendix E shape) *)
  | Ocaml  (** compilable here; the Figure 5.1 pipeline target *)
  | C
  | Verilog  (** the §1.5 hand-off toward silicon tools (export only) *)

val lang_of_string : string -> lang option
(** ["pascal"], ["ocaml"], ["c"], ["verilog"] (case-insensitive). *)

val lang_to_string : lang -> string

val extension : lang -> string
(** [".p"], [".ml"], [".c"], [".v"]. *)

val generate : lang -> Asim_analysis.Analysis.t -> string
