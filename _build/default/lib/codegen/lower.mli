(** Backend-neutral lowering of expressions.

    An expression denotes a sum of shifted bit-fields plus a constant; every
    source backend renders that sum in its own syntax.  The lowering performs
    the same placement arithmetic as the engines, so generated simulators
    agree with them bit-for-bit. *)

type term =
  | Const of int  (** all constant atoms, folded *)
  | Field of {
      name : string;
      mask : int option;  (** [None] = whole value, no masking *)
      shift : int;  (** > 0 shift left, < 0 shift right *)
    }

val lower : Asim_core.Expr.t -> term list
(** Terms in source order (fields left to right, folded constant last when
    non-zero).  Never empty: a pure-constant expression yields [[Const c]]. *)

val alu_const_function :
  Asim_core.Component.alu -> Asim_core.Component.alu_function option
(** The decoded function when the ALU's function expression is constant —
    the trigger for §4.4's inline code generation. *)

val memory_const_op : Asim_core.Component.memory -> int option
(** The operation value when constant — the trigger for §4.4's memory
    specialization. *)

val temp_elidable : Asim_analysis.Analysis.t -> string -> bool
(** §5.4's heuristic: the memory's temporary can be omitted from generated
    code when (a) its registered output is never read (not referenced, not
    traced, no trace lines) and (b) its operation is a constant read or
    write (no I/O side channel needs the value). *)
