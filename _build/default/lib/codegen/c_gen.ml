open Asim_core
module Analysis = Asim_analysis.Analysis

let var is_memory name = (if is_memory name then "temp" else "ljb") ^ name

let term is_memory = function
  | Lower.Const c -> Printf.sprintf "%dLL" c
  | Lower.Field { name; mask; shift } ->
      let base =
        match mask with
        | None -> var is_memory name
        | Some m -> Printf.sprintf "(%s & %dLL)" (var is_memory name) m
      in
      if shift = 0 then base
      else if shift > 0 then Printf.sprintf "(%s << %d)" base shift
      else Printf.sprintf "(%s >> %d)" base (-shift)

let expr is_memory e =
  match Lower.lower e with
  | [ one ] -> term is_memory one
  | terms -> "(" ^ String.concat " + " (List.map (term is_memory) terms) ^ ")"

let expression ?(memories = []) e = expr (fun name -> List.mem name memories) e

let emit_prelude em =
  let l = Emitter.line em in
  l "#include <stdio.h>";
  l "#include <stdlib.h>";
  Emitter.blank em;
  Emitter.linef em "#define MASK %dLL" Bits.mask;
  Emitter.blank em;
  l "static long long dologic(long long funct, long long left, long long right) {";
  l "  switch (funct & 15) {";
  l "  case 0: return 0;";
  l "  case 1: return right;";
  l "  case 2: return left;";
  l "  case 3: return MASK - left;";
  l "  case 4: return left + right;";
  l "  case 5: return left - right;";
  l "  case 6: {";
  l "    long long v = left & MASK;";
  l "    long long n = right;";
  l "    while (n > 0 && v != 0) { v = (v + v) & MASK; n--; }";
  l "    return v;";
  l "  }";
  l "  case 7: return left * right;";
  l "  case 8: return left & right;";
  l "  case 9: return left + right - (left & right);";
  l "  case 10: return left + right - 2 * (left & right);";
  l "  case 12: return left == right ? 1 : 0;";
  l "  case 13: return left < right ? 1 : 0;";
  l "  default: return 0;";
  l "  }";
  l "}";
  Emitter.blank em;
  l "static long long sinput(long long address) {";
  l "  long long data = 0;";
  l "  if (address == 0) {";
  l "    int c = getchar();";
  l "    return c == EOF ? 0 : (long long)c;";
  l "  } else if (address == 1) {";
  l "    if (scanf(\"%lld\", &data) != 1) data = 0;";
  l "    return data;";
  l "  } else {";
  l "    printf(\"Input from address %lld: \", address);";
  l "    if (scanf(\"%lld\", &data) != 1) data = 0;";
  l "    return data;";
  l "  }";
  l "}";
  Emitter.blank em;
  l "static void soutput(long long address, long long data) {";
  l "  if (address == 0) putchar((int)(data & 255));";
  l "  else if (address == 1) printf(\"%lld\\n\", data);";
  l "  else printf(\"Output to address %lld: %lld\\n\", address, data);";
  l "}"

let memory_parts (a : Analysis.t) =
  List.filter_map
    (fun (c : Component.t) ->
      match c.kind with Component.Memory m -> Some (c.name, m) | _ -> None)
    a.Analysis.spec.Spec.components

let emit_state em (a : Analysis.t) =
  List.iter
    (fun (name, (m : Component.memory)) ->
      Emitter.linef em "static long long mem%s[%d];" name m.cells;
      if Lower.temp_elidable a name then
        Emitter.linef em "static long long adr%s, opn%s;" name name
      else Emitter.linef em "static long long temp%s, adr%s, opn%s;" name name name)
    (memory_parts a);
  List.iter
    (fun (c : Component.t) -> Emitter.linef em "static long long ljb%s;" c.name)
    a.Analysis.order;
  Emitter.blank em;
  Emitter.line em "static void initvalues(void) {";
  Emitter.indented em (fun () ->
      List.iter
        (fun (name, (m : Component.memory)) ->
          match m.init with
          | None -> ()
          | Some values ->
              let values =
                values |> Array.to_list |> List.map string_of_int |> String.concat ", "
              in
              Emitter.linef em "static const long long init%s[%d] = { %s };" name
                m.cells values;
              Emitter.linef em "for (int i = 0; i < %d; i++) mem%s[i] = init%s[i];"
                m.cells name name)
        (memory_parts a));
  Emitter.line em "}"

let alu_assignment is_memory name (alu : Component.alu) =
  let e = expr is_memory in
  match Lower.alu_const_function alu with
  | Some Component.Fn_zero | Some Component.Fn_unused ->
      Printf.sprintf "ljb%s = 0;" name
  | Some Component.Fn_right -> Printf.sprintf "ljb%s = %s;" name (e alu.right)
  | Some Component.Fn_left -> Printf.sprintf "ljb%s = %s;" name (e alu.left)
  | Some Component.Fn_not -> Printf.sprintf "ljb%s = MASK - %s;" name (e alu.left)
  | Some Component.Fn_add ->
      Printf.sprintf "ljb%s = %s + %s;" name (e alu.left) (e alu.right)
  | Some Component.Fn_sub ->
      Printf.sprintf "ljb%s = %s - %s;" name (e alu.left) (e alu.right)
  | Some Component.Fn_shift_left ->
      Printf.sprintf "ljb%s = dologic(6, %s, %s);" name (e alu.left) (e alu.right)
  | Some Component.Fn_mul ->
      Printf.sprintf "ljb%s = %s * %s;" name (e alu.left) (e alu.right)
  | Some Component.Fn_and ->
      Printf.sprintf "ljb%s = %s & %s;" name (e alu.left) (e alu.right)
  | Some Component.Fn_or ->
      Printf.sprintf "ljb%s = %s + %s - (%s & %s);" name (e alu.left) (e alu.right)
        (e alu.left) (e alu.right)
  | Some Component.Fn_xor ->
      Printf.sprintf "ljb%s = %s + %s - 2 * (%s & %s);" name (e alu.left)
        (e alu.right) (e alu.left) (e alu.right)
  | Some Component.Fn_eq ->
      Printf.sprintf "ljb%s = (%s == %s) ? 1 : 0;" name (e alu.left) (e alu.right)
  | Some Component.Fn_lt ->
      Printf.sprintf "ljb%s = (%s < %s) ? 1 : 0;" name (e alu.left) (e alu.right)
  | None ->
      Printf.sprintf "ljb%s = dologic(%s, %s, %s);" name (e alu.fn) (e alu.left)
        (e alu.right)

let emit_selector em is_memory name (sel : Component.selector) =
  let e = expr is_memory in
  Emitter.linef em "switch (%s) {" (e sel.select);
  Array.iteri
    (fun i case -> Emitter.linef em "case %d: ljb%s = %s; break;" i name (e case))
    sel.cases;
  Emitter.linef em
    "default: fprintf(stderr, \"selector %s out of range\\n\"); exit(2);" name;
  Emitter.line em "}"

let emit_trace_line em (a : Analysis.t) is_memory =
  Emitter.line em "printf(\"Cycle %3lld\", cyclecount);";
  List.iter
    (fun name ->
      Emitter.linef em "printf(\" %s= %%lld\", %s);" name (var is_memory name))
    (Spec.traced_names a.Analysis.spec);
  Emitter.line em "printf(\"\\n\");"

let emit_memory_update em is_memory ~elide name (m : Component.memory) =
  let e = expr is_memory in
  let read () = Emitter.linef em "temp%s = mem%s[adr%s];" name name name in
  let write () =
    Emitter.linef em "temp%s = %s;" name (e m.data);
    Emitter.linef em "mem%s[adr%s] = temp%s;" name name name
  in
  let input () = Emitter.linef em "temp%s = sinput(adr%s);" name name in
  let output () =
    Emitter.linef em "temp%s = %s;" name (e m.data);
    Emitter.linef em "soutput(adr%s, temp%s);" name name
  in
  match Lower.memory_const_op m with
  | Some op when elide -> (
      match Component.memory_op_of_code op with
      | Component.Op_read -> Emitter.linef em "/* %s: read result unused, temp elided */" name
      | Component.Op_write -> Emitter.linef em "mem%s[adr%s] = %s;" name name (e m.data)
      | Component.Op_input | Component.Op_output -> assert false)
  | Some op -> (
      match Component.memory_op_of_code op with
      | Component.Op_read -> read ()
      | Component.Op_write -> write ()
      | Component.Op_input -> input ()
      | Component.Op_output -> output ())
  | None ->
      Emitter.linef em "switch (opn%s & 3) {" name;
      Emitter.line em "case 0:";
      Emitter.indented em (fun () ->
          read ();
          Emitter.line em "break;");
      Emitter.line em "case 1:";
      Emitter.indented em (fun () ->
          write ();
          Emitter.line em "break;");
      Emitter.line em "case 2:";
      Emitter.indented em (fun () ->
          input ();
          Emitter.line em "break;");
      Emitter.line em "default:";
      Emitter.indented em (fun () ->
          output ();
          Emitter.line em "break;");
      Emitter.line em "}"

let emit_memory_trace em name (m : Component.memory) =
  let write_fmt =
    Printf.sprintf "printf(\"Write to %s at %%lld: %%lld\\n\", adr%s, temp%s);" name
      name name
  in
  let read_fmt =
    Printf.sprintf "printf(\"Read from %s at %%lld: %%lld\\n\", adr%s, temp%s);" name
      name name
  in
  (match Analysis.write_trace_condition m with
  | Analysis.Trace_never -> ()
  | Analysis.Trace_always -> Emitter.line em write_fmt
  | Analysis.Trace_runtime ->
      Emitter.linef em "if ((opn%s & 5) == 5)" name;
      Emitter.line em ("  " ^ write_fmt));
  match Analysis.read_trace_condition m with
  | Analysis.Trace_never -> ()
  | Analysis.Trace_always -> Emitter.line em read_fmt
  | Analysis.Trace_runtime ->
      Emitter.linef em "if ((opn%s & 9) == 8)" name;
      Emitter.line em ("  " ^ read_fmt)

let generate (a : Analysis.t) =
  let spec = a.Analysis.spec in
  let is_memory name =
    match Spec.find spec name with
    | Some c -> Component.is_memory c
    | None -> false
  in
  let em = Emitter.create () in
  Emitter.linef em "/* #%s */" spec.Spec.comment;
  Emitter.line em "/* generated by asim; do not edit */";
  Emitter.blank em;
  emit_prelude em;
  Emitter.blank em;
  emit_state em a;
  Emitter.blank em;
  Emitter.line em "int main(int argc, char **argv) {";
  Emitter.indented em (fun () ->
      Emitter.line em "initvalues();";
      Emitter.linef em "long long cycles = argc > 1 ? atoll(argv[1]) : %d;"
        (match spec.Spec.cycles with Some n -> n | None -> 0);
      Emitter.line em "for (long long cyclecount = 0; cyclecount < cycles; cyclecount++) {";
      Emitter.indented em (fun () ->
          List.iter
            (fun (c : Component.t) ->
              match c.kind with
              | Component.Alu alu -> Emitter.line em (alu_assignment is_memory c.name alu)
              | Component.Selector sel -> emit_selector em is_memory c.name sel
              | Component.Memory _ -> assert false)
            a.Analysis.order;
          emit_trace_line em a is_memory;
          let mems = memory_parts a in
          List.iter
            (fun (name, (m : Component.memory)) ->
              Emitter.linef em "adr%s = %s;" name (expr is_memory m.addr);
              match Lower.memory_const_op m with
              | Some _ -> ()
              | None -> Emitter.linef em "opn%s = %s;" name (expr is_memory m.op))
            mems;
          List.iter
            (fun (name, m) ->
              emit_memory_update em is_memory ~elide:(Lower.temp_elidable a name) name m;
              emit_memory_trace em name m)
            mems);
      Emitter.line em "}";
      Emitter.line em "return 0;");
  Emitter.line em "}";
  Emitter.contents em
