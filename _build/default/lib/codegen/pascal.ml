open Asim_core
module Analysis = Asim_analysis.Analysis

let var is_memory name = (if is_memory name then "temp" else "ljb") ^ name

let term is_memory = function
  | Lower.Const c -> string_of_int c
  | Lower.Field { name; mask; shift } ->
      let base =
        match mask with
        | None -> var is_memory name
        | Some m -> Printf.sprintf "land(%s, %d)" (var is_memory name) m
      in
      if shift = 0 then base
      else if shift > 0 then Printf.sprintf "%s * %d" base (1 lsl shift)
      else Printf.sprintf "%s div %d" base (1 lsl -shift)

let expr is_memory e = String.concat " + " (List.map (term is_memory) (Lower.lower e))

let expression ?(memories = []) e = expr (fun name -> List.mem name memories) e

(* --- fixed support routines (Appendix C/E shapes) ----------------------- *)

let emit_land em =
  let l = Emitter.line em in
  l "function land (a, b: integer): integer;";
  l "type bitnos = 0..31;";
  l "  bigset = set of bitnos;";
  l "var intset: record case boolean of";
  l "  false: (i, j: integer);";
  l "  true: (x, y: bigset)";
  l "end;";
  l "begin";
  l "  with intset do begin";
  l "    i := a;";
  l "    j := b;";
  l "    x := x * y;";
  l "    land := i";
  l "  end";
  l "end {land};"

let emit_dologic em =
  let l = Emitter.line em in
  l "function dologic (funct, left, right: integer): integer;";
  Emitter.linef em "const mask = %d;" Bits.mask;
  l "var value : integer;";
  l "begin";
  l "  value := 0;";
  l "  case funct of";
  l "  0 : value := 0;";
  l "  1 : value := right;";
  l "  2 : value := left;";
  l "  3 : value := mask - left;";
  l "  4 : value := left + right;";
  l "  5 : value := left - right;";
  l "  6 : begin";
  l "        value := land(left, mask);";
  l "        while (right > 0) and (value <> 0) do begin";
  l "          value := land(value + value, mask);";
  l "          right := right - 1";
  l "        end";
  l "      end;";
  l "  7 : value := left * right;";
  l "  8 : value := land(left, right);";
  l "  9 : value := left + right - land(left, right);";
  l "  10: value := left + right - land(left, right) * 2;";
  l "  11: value := 0;";
  l "  12: if left = right then value := 1;";
  l "  13: if left < right then value := 1";
  l "  end; {case}";
  l "  dologic := value;";
  l "end; {dologic}"

let emit_io em =
  let l = Emitter.line em in
  l "function sinput (address : integer): integer;";
  l "var datum: char;";
  l "  data: integer;";
  l "begin";
  l "  if address = 0 then begin";
  l "    read(input, datum);";
  l "    sinput := ord(datum)";
  l "  end";
  l "  else if address = 1 then begin";
  l "    read(input, data);";
  l "    sinput := data";
  l "  end";
  l "  else begin";
  l "    write(output, 'Input from address ', address:1, ': ');";
  l "    readln(input, data);";
  l "    sinput := data;";
  l "  end";
  l "end; {sinput}";
  Emitter.blank em;
  l "procedure soutput (address, data: integer);";
  l "begin";
  l "  if address = 0 then writeln(output, chr(data))";
  l "  else if address = 1 then writeln(output, data)";
  l "  else writeln(output, 'Output to address ', address:1, ': ', data:1)";
  l "end; {soutput}"

(* --- per-spec sections --------------------------------------------------- *)

let memory_parts (a : Analysis.t) =
  List.filter_map
    (fun (c : Component.t) ->
      match c.kind with Component.Memory m -> Some (c.name, m) | _ -> None)
    a.Analysis.spec.Spec.components

let emit_vars em (a : Analysis.t) =
  let comb_names =
    List.map (fun (c : Component.t) -> "ljb" ^ c.name) a.Analysis.order
  in
  let mem_names =
    List.concat_map
      (fun (name, _) ->
        (* §5.4 heuristic: no temporary for never-read outputs *)
        if Lower.temp_elidable a name then [ "adr" ^ name; "opn" ^ name ]
        else [ "temp" ^ name; "adr" ^ name; "opn" ^ name ])
      (memory_parts a)
  in
  (match comb_names @ mem_names with
  | [] -> ()
  | names -> Emitter.linef em "var %s: integer;" (String.concat ", " names));
  Emitter.line em "  cycles, cyclecount: integer;";
  List.iter
    (fun (name, (m : Component.memory)) ->
      Emitter.linef em "  ljb%s: array[0..%d] of integer;" name (m.cells - 1))
    (memory_parts a)

let emit_initvalues em (a : Analysis.t) =
  let l = Emitter.line em in
  l "procedure initvalues;";
  l "var i: integer;";
  l "begin";
  Emitter.indented em (fun () ->
      List.iter
        (fun (name, (m : Component.memory)) ->
          (match m.init with
          | Some values ->
              Array.iteri
                (fun i v -> Emitter.linef em "ljb%s[%d] := %d;" name i v)
                values
          | None ->
              Emitter.linef em "for i := 0 to %d do" (m.cells - 1);
              Emitter.linef em "  ljb%s[i] := 0;" name);
          if not (Lower.temp_elidable a name) then
            Emitter.linef em "temp%s := 0;" name)
        (memory_parts a));
  l "end; {initvalues}"

let alu_assignment is_memory name (alu : Component.alu) =
  let e = expr is_memory in
  let target = "ljb" ^ name in
  match Lower.alu_const_function alu with
  | Some Component.Fn_zero | Some Component.Fn_unused ->
      [ Printf.sprintf "%s := 0;" target ]
  | Some Component.Fn_right -> [ Printf.sprintf "%s := %s;" target (e alu.right) ]
  | Some Component.Fn_left -> [ Printf.sprintf "%s := %s;" target (e alu.left) ]
  | Some Component.Fn_not ->
      [ Printf.sprintf "%s := %d - %s;" target Bits.mask (e alu.left) ]
  | Some Component.Fn_add ->
      [ Printf.sprintf "%s := %s + %s;" target (e alu.left) (e alu.right) ]
  | Some Component.Fn_sub ->
      [ Printf.sprintf "%s := %s - %s;" target (e alu.left) (e alu.right) ]
  | Some Component.Fn_shift_left ->
      [ Printf.sprintf "%s := dologic(6, %s, %s);" target (e alu.left) (e alu.right) ]
  | Some Component.Fn_mul ->
      [ Printf.sprintf "%s := %s * %s;" target (e alu.left) (e alu.right) ]
  | Some Component.Fn_and ->
      [ Printf.sprintf "%s := land(%s, %s);" target (e alu.left) (e alu.right) ]
  | Some Component.Fn_or ->
      [ Printf.sprintf "%s := %s + %s - land(%s, %s);" target (e alu.left)
          (e alu.right) (e alu.left) (e alu.right) ]
  | Some Component.Fn_xor ->
      [ Printf.sprintf "%s := %s + %s - land(%s, %s) * 2;" target (e alu.left)
          (e alu.right) (e alu.left) (e alu.right) ]
  | Some Component.Fn_eq ->
      [ Printf.sprintf "if %s = %s then %s := 1" (e alu.left) (e alu.right) target;
        Printf.sprintf "else %s := 0;" target ]
  | Some Component.Fn_lt ->
      [ Printf.sprintf "if %s < %s then %s := 1" (e alu.left) (e alu.right) target;
        Printf.sprintf "else %s := 0;" target ]
  | None ->
      [ Printf.sprintf "%s := dologic(%s, %s, %s);" target (e alu.fn) (e alu.left)
          (e alu.right) ]

let emit_selector em is_memory name (sel : Component.selector) =
  let e = expr is_memory in
  Emitter.linef em "case %s of" (e sel.select);
  Array.iteri
    (fun i case -> Emitter.linef em "  %d: ljb%s := %s;" i name (e case))
    sel.cases;
  Emitter.line em "end;"

let emit_trace_line em (a : Analysis.t) is_memory =
  Emitter.line em "write('Cycle ', cyclecount:3);";
  List.iter
    (fun name ->
      Emitter.linef em "write(' %s= ', %s:1);" name (var is_memory name))
    (Spec.traced_names a.Analysis.spec);
  Emitter.line em "writeln;"

let emit_memory_update em is_memory ~elide name (m : Component.memory) =
  let e = expr is_memory in
  let read () =
    Emitter.linef em "temp%s := ljb%s[adr%s];" name name name
  in
  let write () =
    Emitter.linef em "temp%s := %s;" name (e m.data);
    Emitter.linef em "ljb%s[adr%s] := temp%s;" name name name
  in
  let input () = Emitter.linef em "temp%s := sinput(adr%s);" name name in
  let output () =
    Emitter.linef em "temp%s := %s;" name (e m.data);
    Emitter.linef em "soutput(adr%s, temp%s);" name name
  in
  match Lower.memory_const_op m with
  | Some op when elide -> (
      (* §5.4: the output is never read, so the temporary disappears. *)
      match Component.memory_op_of_code op with
      | Component.Op_read ->
          Emitter.linef em "{ %s: read result unused, temp elided }" name
      | Component.Op_write ->
          Emitter.linef em "ljb%s[adr%s] := %s;" name name (e m.data)
      | Component.Op_input | Component.Op_output -> assert false)
  | Some op -> (
      (* §4.4: constant operation, the case structure is eliminated. *)
      match Component.memory_op_of_code op with
      | Component.Op_read -> read ()
      | Component.Op_write -> write ()
      | Component.Op_input -> input ()
      | Component.Op_output -> output ())
  | None ->
      Emitter.linef em "case land(opn%s, 3) of" name;
      Emitter.indented em (fun () ->
          Emitter.line em "0: begin";
          Emitter.indented em (fun () -> read ());
          Emitter.line em "end;";
          Emitter.line em "1: begin";
          Emitter.indented em (fun () -> write ());
          Emitter.line em "end;";
          Emitter.line em "2: begin";
          Emitter.indented em (fun () -> input ());
          Emitter.line em "end;";
          Emitter.line em "3: begin";
          Emitter.indented em (fun () -> output ());
          Emitter.line em "end");
      Emitter.line em "end; {case}"

let emit_memory_trace em name (m : Component.memory) =
  let write_fmt =
    Printf.sprintf "writeln('Write to %s at ', adr%s:1, ': ', temp%s:1);" name name name
  in
  let read_fmt =
    Printf.sprintf "writeln('Read from %s at ', adr%s:1, ': ', temp%s:1);" name name name
  in
  (match Analysis.write_trace_condition m with
  | Analysis.Trace_never -> ()
  | Analysis.Trace_always -> Emitter.line em write_fmt
  | Analysis.Trace_runtime ->
      Emitter.linef em "if land(opn%s, 5) = 5 then" name;
      Emitter.line em ("  " ^ write_fmt));
  match Analysis.read_trace_condition m with
  | Analysis.Trace_never -> ()
  | Analysis.Trace_always -> Emitter.line em read_fmt
  | Analysis.Trace_runtime ->
      Emitter.linef em "if land(opn%s, 9) = 8 then" name;
      Emitter.line em ("  " ^ read_fmt)

let generate (a : Analysis.t) =
  let spec = a.Analysis.spec in
  let is_memory name =
    match Spec.find spec name with
    | Some c -> Component.is_memory c
    | None -> false
  in
  let em = Emitter.create () in
  Emitter.line em "program simulator(input, output);";
  Emitter.linef em "{#%s}" spec.Spec.comment;
  emit_vars em a;
  Emitter.blank em;
  emit_land em;
  Emitter.blank em;
  emit_initvalues em a;
  Emitter.blank em;
  emit_dologic em;
  Emitter.blank em;
  emit_io em;
  Emitter.blank em;
  Emitter.line em "begin";
  Emitter.indented em (fun () ->
      Emitter.line em "initvalues;";
      Emitter.linef em "cycles := %d;"
        (match spec.Spec.cycles with Some n -> n | None -> 0);
      Emitter.line em "cyclecount := 0;";
      Emitter.line em "while cyclecount < cycles do begin";
      Emitter.indented em (fun () ->
          List.iter
            (fun (c : Component.t) ->
              match c.kind with
              | Component.Alu alu ->
                  List.iter (Emitter.line em) (alu_assignment is_memory c.name alu)
              | Component.Selector sel -> emit_selector em is_memory c.name sel
              | Component.Memory _ -> assert false)
            a.Analysis.order;
          emit_trace_line em a is_memory;
          let mems = memory_parts a in
          List.iter
            (fun (name, (m : Component.memory)) ->
              Emitter.linef em "adr%s := %s;" name (expr is_memory m.addr);
              match Lower.memory_const_op m with
              | Some _ -> ()
              | None -> Emitter.linef em "opn%s := %s;" name (expr is_memory m.op))
            mems;
          List.iter
            (fun (name, m) ->
              emit_memory_update em is_memory ~elide:(Lower.temp_elidable a name) name m;
              emit_memory_trace em name m)
            mems;
          Emitter.line em "cyclecount := cyclecount + 1");
      Emitter.line em "end; {while}");
  Emitter.line em "end.";
  Emitter.contents em
