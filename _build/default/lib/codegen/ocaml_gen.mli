(** The OCaml backend: the Figure 5.1 "ASIM II" pipeline target.

    Generates a dependency-free standalone [.ml] program (stdlib only) that
    compiles with [ocamlfind ocamlopt] and reproduces, byte for byte, the
    trace and I/O behaviour of the in-process engines: same cycle lines, same
    read/write trace lines, same console I/O conventions.  The cycle count
    defaults to the spec's [= N] and can be overridden by [argv.(1)]. *)

val generate : Asim_analysis.Analysis.t -> string

val expression : ?memories:string list -> Asim_core.Expr.t -> string
(** Render one expression as OCaml over the generated program's variables
    (for the Figure 4.x listings and tests). *)
