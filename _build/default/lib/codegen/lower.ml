open Asim_core

type term =
  | Const of int
  | Field of { name : string; mask : int option; shift : int }

let lower (e : Expr.t) =
  let constant = ref 0 in
  let fields = ref [] in
  let place numbits atom =
    match atom with
    | Expr.Const { number; width } -> (
        let v = Number.value number in
        match width with
        | None ->
            constant := !constant + (v lsl numbits);
            Bits.word_bits
        | Some w ->
            let w = Number.value w in
            constant := !constant + ((v land Bits.ones w) lsl numbits);
            numbits + w)
    | Expr.Bitstring s ->
        let v = String.fold_left (fun acc c -> (acc * 2) + if c = '1' then 1 else 0) 0 s in
        constant := !constant + (v lsl numbits);
        numbits + String.length s
    | Expr.Ref { name; field } -> (
        match field with
        | Expr.Whole ->
            fields := Field { name; mask = None; shift = numbits } :: !fields;
            Bits.word_bits
        | Expr.Bit fnum ->
            let lo = Number.value fnum in
            fields :=
              Field { name; mask = Some (Bits.field_mask ~lo ~hi:lo); shift = numbits - lo }
              :: !fields;
            numbits + 1
        | Expr.Range (fnum, tnum) ->
            let lo = Number.value fnum and hi = Number.value tnum in
            fields :=
              Field { name; mask = Some (Bits.field_mask ~lo ~hi); shift = numbits - lo }
              :: !fields;
            numbits + (hi - lo + 1))
  in
  let rec go numbits = function
    | [] -> ()
    | atom :: rest -> go (place numbits atom) rest
  in
  go 0 (List.rev e);
  (* [fields] accumulated right-to-left, so it is already in source order. *)
  let fields = !fields in
  match (fields, !constant) with
  | [], c -> [ Const c ]
  | fs, 0 -> fs
  | fs, c -> fs @ [ Const c ]

let alu_const_function (alu : Component.alu) =
  Option.map Component.alu_function_of_code (Expr.const_value alu.fn)

let memory_const_op (m : Component.memory) = Expr.const_value m.op

let temp_elidable (analysis : Asim_analysis.Analysis.t) name =
  (not (Asim_analysis.Analysis.memory_output_used analysis name))
  &&
  match Spec.find analysis.Asim_analysis.Analysis.spec name with
  | Some { Component.kind = Component.Memory m; _ } -> (
      match memory_const_op m with
      | Some op -> op land 3 <= 1 (* read or write; no I/O side effects *)
      | None -> false)
  | Some _ | None -> false
