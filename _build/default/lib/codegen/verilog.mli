(** The Verilog export — §1.5's hand-off.

    "After the RTL specification has been designed and rigorously tested,
    the design may then be converted to a language suitable for a silicon
    compiler."  In 1986 that meant a proprietary layout language; today it
    means an HDL the open tool chains accept, so this backend emits
    synthesizable-style Verilog-2001:

    - every ALU/selector becomes an [always @*] block (selectors as [case]
      with a default of [x], matching the original's out-of-range runtime
      error);
    - every memory becomes a clocked [always @(posedge clk)] block holding
      both the cell array and the registered output [temp];
    - ASIM's concatenation expressions map directly onto Verilog
      concatenation, e.g. [mem.3.4,#01,count.1] → [{mem_q[4:3], 2'b01,
      count_q[1]}].

    Memory-mapped I/O is exposed as ports ([io_addr], [io_wdata],
    [io_write], ...) rather than hidden console calls.  The generated text
    is not simulated here (no Verilog simulator in this environment); it is
    locked by golden tests and intended for external tools. *)

val generate : Asim_analysis.Analysis.t -> string

val expression : ?memories:string list -> Asim_core.Expr.t -> string
(** Render one expression as a Verilog concatenation (for tests and
    documentation). *)
