lib/codegen/verilog.mli: Asim_analysis Asim_core
