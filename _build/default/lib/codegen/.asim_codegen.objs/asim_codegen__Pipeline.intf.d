lib/codegen/pipeline.mli: Asim_analysis Codegen Stdlib
