lib/codegen/verilog.ml: Array Asim_analysis Asim_core Bits Component Emitter Expr List Lower Number Printf Spec String
