lib/codegen/lower.mli: Asim_analysis Asim_core
