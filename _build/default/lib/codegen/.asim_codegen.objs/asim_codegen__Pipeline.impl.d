lib/codegen/pipeline.ml: Asim_analysis Asim_core Codegen Filename Printf Sys Unix
