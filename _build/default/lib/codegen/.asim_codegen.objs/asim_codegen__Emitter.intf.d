lib/codegen/emitter.mli:
