lib/codegen/codegen.mli: Asim_analysis
