lib/codegen/c_gen.ml: Array Asim_analysis Asim_core Bits Component Emitter List Lower Printf Spec String
