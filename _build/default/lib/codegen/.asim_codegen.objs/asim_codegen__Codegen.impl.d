lib/codegen/codegen.ml: C_gen Ocaml_gen Pascal String Verilog
