lib/codegen/pascal.mli: Asim_analysis Asim_core
