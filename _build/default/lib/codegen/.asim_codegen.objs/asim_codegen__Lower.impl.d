lib/codegen/lower.ml: Asim_analysis Asim_core Bits Component Expr List Number Option Spec String
