lib/codegen/c_gen.mli: Asim_analysis Asim_core
