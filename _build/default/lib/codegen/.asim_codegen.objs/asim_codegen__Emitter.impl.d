lib/codegen/emitter.ml: Buffer Printf
