lib/codegen/ocaml_gen.mli: Asim_analysis Asim_core
