(** Tiny indentation-aware code emitter shared by the source backends. *)

type t

val create : unit -> t

val line : t -> string -> unit
(** Emit one line at the current indentation. *)

val linef : t -> ('a, unit, string, unit) format4 -> 'a

val blank : t -> unit

val indented : t -> (unit -> unit) -> unit
(** Run the callback with indentation one level (two spaces) deeper. *)

val contents : t -> string
