(** The C backend.

    Generates a standalone C99 program (stdio only) with the same observable
    behaviour as the in-process engines and the OCaml backend.  Values are
    [long long] so that intermediate arithmetic (e.g. 31-bit × 31-bit
    products) matches the OCaml engines' 63-bit integers rather than
    trapping like the original's 32-bit Pascal. *)

val generate : Asim_analysis.Analysis.t -> string

val expression : ?memories:string list -> Asim_core.Expr.t -> string
(** Render one expression as C (for listings and tests). *)
