type t = { buf : Buffer.t; mutable indent : int }

let create () = { buf = Buffer.create 4096; indent = 0 }

let line t s =
  if s = "" then Buffer.add_char t.buf '\n'
  else begin
    for _ = 1 to t.indent do
      Buffer.add_string t.buf "  "
    done;
    Buffer.add_string t.buf s;
    Buffer.add_char t.buf '\n'
  end

let linef t fmt = Printf.ksprintf (line t) fmt

let blank t = Buffer.add_char t.buf '\n'

let indented t f =
  t.indent <- t.indent + 1;
  f ();
  t.indent <- t.indent - 1

let contents t = Buffer.contents t.buf
