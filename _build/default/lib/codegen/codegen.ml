type lang =
  | Pascal
  | Ocaml
  | C
  | Verilog

let lang_of_string s =
  match String.lowercase_ascii s with
  | "pascal" | "p" -> Some Pascal
  | "ocaml" | "ml" -> Some Ocaml
  | "c" -> Some C
  | "verilog" | "v" -> Some Verilog
  | _ -> None

let lang_to_string = function
  | Pascal -> "pascal"
  | Ocaml -> "ocaml"
  | C -> "c"
  | Verilog -> "verilog"

let extension = function Pascal -> ".p" | Ocaml -> ".ml" | C -> ".c" | Verilog -> ".v"

let generate lang analysis =
  match lang with
  | Pascal -> Pascal.generate analysis
  | Ocaml -> Ocaml_gen.generate analysis
  | C -> C_gen.generate analysis
  | Verilog -> Verilog.generate analysis
