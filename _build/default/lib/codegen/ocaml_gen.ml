open Asim_core
module Analysis = Asim_analysis.Analysis

(* Combinational values and memory registers are [int ref]s named [ljb<name>]
   and [temp<name>]; memory cell arrays are [mem<name>]. *)
let var is_memory name = "!" ^ (if is_memory name then "temp" else "ljb") ^ name

let term is_memory = function
  | Lower.Const c -> string_of_int c
  | Lower.Field { name; mask; shift } ->
      let base =
        match mask with
        | None -> var is_memory name
        | Some m -> Printf.sprintf "(%s land %d)" (var is_memory name) m
      in
      if shift = 0 then base
      else if shift > 0 then Printf.sprintf "(%s lsl %d)" base shift
      else Printf.sprintf "(%s lsr %d)" base (-shift)

let expr is_memory e =
  match Lower.lower e with
  | [ one ] -> term is_memory one
  | terms -> "(" ^ String.concat " + " (List.map (term is_memory) terms) ^ ")"

let expression ?(memories = []) e = expr (fun name -> List.mem name memories) e

let emit_prelude em =
  let l = Emitter.line em in
  Emitter.linef em "let mask = %d" Bits.mask;
  Emitter.blank em;
  l "let dologic funct left right =";
  l "  match funct land 15 with";
  l "  | 0 -> 0";
  l "  | 1 -> right";
  l "  | 2 -> left";
  l "  | 3 -> mask - left";
  l "  | 4 -> left + right";
  l "  | 5 -> left - right";
  l "  | 6 ->";
  l "      let rec go v n = if n <= 0 || v = 0 then v else go ((v + v) land mask) (n - 1) in";
  l "      go (left land mask) right";
  l "  | 7 -> left * right";
  l "  | 8 -> left land right";
  l "  | 9 -> left + right - (left land right)";
  l "  | 10 -> left + right - (2 * (left land right))";
  l "  | 12 -> if left = right then 1 else 0";
  l "  | 13 -> if left < right then 1 else 0";
  l "  | _ -> 0";
  Emitter.blank em;
  l "let sinput address =";
  l "  match address with";
  l "  | 0 -> (try Char.code (input_char stdin) with End_of_file -> 0)";
  l "  | 1 -> (try Scanf.scanf \" %d\" (fun d -> d) with Scanf.Scan_failure _ | End_of_file -> 0)";
  l "  | _ ->";
  l "      Printf.printf \"Input from address %d: \" address;";
  l "      (try Scanf.scanf \" %d\" (fun d -> d) with Scanf.Scan_failure _ | End_of_file -> 0)";
  Emitter.blank em;
  l "let soutput address data =";
  l "  match address with";
  l "  | 0 -> print_char (Char.chr (data land 255))";
  l "  | 1 -> Printf.printf \"%d\\n\" data";
  l "  | _ -> Printf.printf \"Output to address %d: %d\\n\" address data"

let memory_parts (a : Analysis.t) =
  List.filter_map
    (fun (c : Component.t) ->
      match c.kind with Component.Memory m -> Some (c.name, m) | _ -> None)
    a.Analysis.spec.Spec.components

let emit_state em (a : Analysis.t) =
  List.iter
    (fun (name, (m : Component.memory)) ->
      Emitter.linef em "let mem%s = Array.make %d 0" name m.cells;
      if not (Lower.temp_elidable a name) then
        Emitter.linef em "let temp%s = ref 0" name;
      Emitter.linef em "let adr%s = ref 0" name;
      Emitter.linef em "let opn%s = ref 0" name)
    (memory_parts a);
  List.iter
    (fun (c : Component.t) -> Emitter.linef em "let ljb%s = ref 0" c.name)
    a.Analysis.order;
  Emitter.blank em;
  Emitter.line em "let initvalues () =";
  Emitter.indented em (fun () ->
      let any = ref false in
      List.iter
        (fun (name, (m : Component.memory)) ->
          match m.init with
          | None -> ()
          | Some values ->
              any := true;
              let values =
                values |> Array.to_list |> List.map string_of_int |> String.concat "; "
              in
              Emitter.linef em "List.iteri (fun i v -> mem%s.(i) <- v) [ %s ];" name
                values)
        (memory_parts a);
      if not !any then Emitter.line em "();";
      Emitter.line em "()")

let alu_assignment is_memory name (alu : Component.alu) =
  let e = expr is_memory in
  match Lower.alu_const_function alu with
  | Some Component.Fn_zero | Some Component.Fn_unused ->
      Printf.sprintf "ljb%s := 0;" name
  | Some Component.Fn_right -> Printf.sprintf "ljb%s := %s;" name (e alu.right)
  | Some Component.Fn_left -> Printf.sprintf "ljb%s := %s;" name (e alu.left)
  | Some Component.Fn_not ->
      Printf.sprintf "ljb%s := %d - %s;" name Bits.mask (e alu.left)
  | Some Component.Fn_add ->
      Printf.sprintf "ljb%s := %s + %s;" name (e alu.left) (e alu.right)
  | Some Component.Fn_sub ->
      Printf.sprintf "ljb%s := %s - %s;" name (e alu.left) (e alu.right)
  | Some Component.Fn_shift_left ->
      Printf.sprintf "ljb%s := dologic 6 %s %s;" name (e alu.left) (e alu.right)
  | Some Component.Fn_mul ->
      Printf.sprintf "ljb%s := %s * %s;" name (e alu.left) (e alu.right)
  | Some Component.Fn_and ->
      Printf.sprintf "ljb%s := %s land %s;" name (e alu.left) (e alu.right)
  | Some Component.Fn_or ->
      Printf.sprintf "ljb%s := (let a = %s and b = %s in a + b - (a land b));" name
        (e alu.left) (e alu.right)
  | Some Component.Fn_xor ->
      Printf.sprintf "ljb%s := (let a = %s and b = %s in a + b - (2 * (a land b)));"
        name (e alu.left) (e alu.right)
  | Some Component.Fn_eq ->
      Printf.sprintf "ljb%s := (if %s = %s then 1 else 0);" name (e alu.left)
        (e alu.right)
  | Some Component.Fn_lt ->
      Printf.sprintf "ljb%s := (if %s < %s then 1 else 0);" name (e alu.left)
        (e alu.right)
  | None ->
      Printf.sprintf "ljb%s := dologic %s %s %s;" name (e alu.fn) (e alu.left)
        (e alu.right)

let emit_selector em is_memory name (sel : Component.selector) =
  let e = expr is_memory in
  Emitter.linef em "(match %s with" (e sel.select);
  Array.iteri
    (fun i case -> Emitter.linef em " | %d -> ljb%s := %s" i name (e case))
    sel.cases;
  Emitter.linef em
    " | i -> failwith (Printf.sprintf \"selector %s: value %%d exceeds the number of sources (%d)\" i));"
    name (Array.length sel.cases)

let emit_trace_line em (a : Analysis.t) is_memory =
  Emitter.line em "print_string (Printf.sprintf \"Cycle %3d\" cyclecount);";
  List.iter
    (fun name ->
      Emitter.linef em "print_string (Printf.sprintf \" %s= %%d\" %s);" name
        (var is_memory name))
    (Spec.traced_names a.Analysis.spec);
  Emitter.line em "print_newline ();"

let emit_memory_update em is_memory ~elide name (m : Component.memory) =
  let e = expr is_memory in
  let read () = Emitter.linef em "temp%s := mem%s.(!adr%s);" name name name in
  let write () =
    Emitter.linef em "temp%s := %s;" name (e m.data);
    Emitter.linef em "mem%s.(!adr%s) <- !temp%s;" name name name
  in
  let input () = Emitter.linef em "temp%s := sinput !adr%s;" name name in
  let output () =
    Emitter.linef em "temp%s := %s;" name (e m.data);
    Emitter.linef em "soutput !adr%s !temp%s;" name name
  in
  match Lower.memory_const_op m with
  | Some op when elide -> (
      match Component.memory_op_of_code op with
      | Component.Op_read -> Emitter.linef em "(* %s: read result unused, temp elided *)" name
      | Component.Op_write -> Emitter.linef em "mem%s.(!adr%s) <- %s;" name name (e m.data)
      | Component.Op_input | Component.Op_output -> assert false)
  | Some op -> (
      match Component.memory_op_of_code op with
      | Component.Op_read -> read ()
      | Component.Op_write -> write ()
      | Component.Op_input -> input ()
      | Component.Op_output -> output ())
  | None ->
      Emitter.linef em "(match !opn%s land 3 with" name;
      Emitter.indented em (fun () ->
          Emitter.line em "| 0 ->";
          Emitter.indented em (fun () -> read ());
          Emitter.line em "| 1 ->";
          Emitter.indented em (fun () -> write ());
          Emitter.line em "| 2 ->";
          Emitter.indented em (fun () -> input ());
          Emitter.line em "| _ ->";
          Emitter.indented em (fun () -> output ()));
      Emitter.line em ");"

let emit_memory_trace em name (m : Component.memory) =
  let write_fmt =
    Printf.sprintf
      "print_string (Printf.sprintf \"Write to %s at %%d: %%d\\n\" !adr%s !temp%s);"
      name name name
  in
  let read_fmt =
    Printf.sprintf
      "print_string (Printf.sprintf \"Read from %s at %%d: %%d\\n\" !adr%s !temp%s);"
      name name name
  in
  (match Analysis.write_trace_condition m with
  | Analysis.Trace_never -> ()
  | Analysis.Trace_always -> Emitter.line em write_fmt
  | Analysis.Trace_runtime ->
      Emitter.linef em "if !opn%s land 5 = 5 then" name;
      Emitter.line em ("  " ^ write_fmt));
  match Analysis.read_trace_condition m with
  | Analysis.Trace_never -> ()
  | Analysis.Trace_always -> Emitter.line em read_fmt
  | Analysis.Trace_runtime ->
      Emitter.linef em "if !opn%s land 9 = 8 then" name;
      Emitter.line em ("  " ^ read_fmt)

let generate (a : Analysis.t) =
  let spec = a.Analysis.spec in
  let is_memory name =
    match Spec.find spec name with
    | Some c -> Component.is_memory c
    | None -> false
  in
  let em = Emitter.create () in
  Emitter.linef em "(* #%s *)" spec.Spec.comment;
  Emitter.linef em "(* generated by asim; do not edit *)";
  Emitter.blank em;
  emit_prelude em;
  Emitter.blank em;
  emit_state em a;
  Emitter.blank em;
  Emitter.line em "let () =";
  Emitter.indented em (fun () ->
      Emitter.line em "initvalues ();";
      Emitter.linef em
        "let cycles = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else %d in"
        (match spec.Spec.cycles with Some n -> n | None -> 0);
      Emitter.line em "for cyclecount = 0 to cycles - 1 do";
      Emitter.indented em (fun () ->
          Emitter.line em "ignore cyclecount;";
          List.iter
            (fun (c : Component.t) ->
              match c.kind with
              | Component.Alu alu ->
                  Emitter.line em (alu_assignment is_memory c.name alu)
              | Component.Selector sel -> emit_selector em is_memory c.name sel
              | Component.Memory _ -> assert false)
            a.Analysis.order;
          emit_trace_line em a is_memory;
          let mems = memory_parts a in
          List.iter
            (fun (name, (m : Component.memory)) ->
              Emitter.linef em "adr%s := %s;" name (expr is_memory m.addr);
              match Lower.memory_const_op m with
              | Some _ -> ()
              | None -> Emitter.linef em "opn%s := %s;" name (expr is_memory m.op))
            mems;
          List.iter
            (fun (name, m) ->
              emit_memory_update em is_memory ~elide:(Lower.temp_elidable a name) name m;
              emit_memory_trace em name m)
            mems);
      Emitter.line em "done");
  Emitter.contents em
