open Isa

let countdown n =
  Asm.assemble
    (List.concat
       [
         [ Asm.op Nop ];
         Asm.enter_frame 2;
         [ Asm.push n ];
         Asm.store_local 1;
         [ Asm.label "loop" ];
         Asm.load_local 1;
         Asm.output_top;
         Asm.load_local 1;
         [ Asm.push 1; Asm.op Neg; Asm.op Add; Asm.op Dupe ];
         Asm.store_local 1;
         [ Asm.bz "done"; Asm.jmp "loop"; Asm.label "done"; Asm.jmp "done" ];
       ])

let countdown_cycles n = 400 + (n * 400)

let squares n =
  Asm.assemble
    (List.concat
       [
         [ Asm.op Nop ];
         Asm.enter_frame 2;
         [ Asm.push 1 ];
         Asm.store_local 1;
         [ Asm.label "loop" ];
         Asm.load_local 1;
         [ Asm.op Dupe; Asm.op Mpy ];
         Asm.output_top;
         Asm.load_local 1;
         [ Asm.push 1; Asm.op Add; Asm.op Dupe ];
         Asm.store_local 1;
         [ Asm.push (n + 1); Asm.op Equal; Asm.bz "loop" ];
         [ Asm.label "done"; Asm.jmp "done" ];
       ])

let squares_cycles n = 600 + (n * 600)

(* locals: 1 = a, 2 = b, 3 = counter *)
let fibonacci n =
  Asm.assemble
    (List.concat
       [
         [ Asm.op Nop ];
         Asm.enter_frame 4;
         [ Asm.push 0 ]; Asm.store_local 1;
         [ Asm.push 1 ]; Asm.store_local 2;
         [ Asm.push n ]; Asm.store_local 3;
         [ Asm.label "loop" ];
         Asm.load_local 1;
         Asm.output_top;
         (* t = a + b; a = b; b = t *)
         Asm.load_local 1;
         Asm.load_local 2;
         [ Asm.op Add ];
         Asm.load_local 2;
         Asm.store_local 1;
         Asm.store_local 2;
         (* counter loop *)
         Asm.load_local 3;
         [ Asm.push 1; Asm.op Neg; Asm.op Add; Asm.op Dupe ];
         Asm.store_local 3;
         [ Asm.bz "done"; Asm.jmp "loop"; Asm.label "done"; Asm.jmp "done" ];
       ])

let fibonacci_cycles n = 600 + (n * 600)

(* locals: 1 = a, 2 = b *)
let gcd a b =
  Asm.assemble
    (List.concat
       [
         [ Asm.op Nop ];
         Asm.enter_frame 3;
         [ Asm.push a ]; Asm.store_local 1;
         [ Asm.push b ]; Asm.store_local 2;
         [ Asm.label "loop" ];
         Asm.load_local 1;
         Asm.load_local 2;
         [ Asm.op Equal; Asm.bz "work"; Asm.jmp "done" ];
         [ Asm.label "work" ];
         Asm.load_local 1;
         Asm.load_local 2;
         [ Asm.op Less; Asm.bz "alarger" ];
         (* a < b: b := b - a *)
         Asm.load_local 2;
         Asm.load_local 1;
         [ Asm.op Neg; Asm.op Add ];
         Asm.store_local 2;
         [ Asm.jmp "loop" ];
         [ Asm.label "alarger" ];
         (* a > b: a := a - b *)
         Asm.load_local 1;
         Asm.load_local 2;
         [ Asm.op Neg; Asm.op Add ];
         Asm.store_local 1;
         [ Asm.jmp "loop" ];
         [ Asm.label "done" ];
         Asm.load_local 1;
         Asm.output_top;
         [ Asm.label "halt"; Asm.jmp "halt" ];
       ])

let gcd_cycles = 60_000

let sum_of_inputs =
  Asm.assemble
    (List.concat
       [
         [ Asm.op Nop ];
         Asm.enter_frame 2;
         [ Asm.push 0 ];
         Asm.store_local 1;
         [ Asm.label "loop" ];
         (* input device: frame offset 4096 reaches I/O address 1 (integer
            transfer), the same offset stores use for output *)
         [ Asm.push 4096; Asm.op Ld; Asm.op Dupe; Asm.bz "done" ];
         Asm.load_local 1;
         [ Asm.op Add ];
         Asm.store_local 1;
         [ Asm.jmp "loop" ];
         [ Asm.label "done" ];
         Asm.load_local 1;
         Asm.output_top;
         [ Asm.label "halt"; Asm.jmp "halt" ];
       ])

let sum_of_inputs_cycles = 6000

(* The Appendix D listing, re-expressed in assembler mnemonics.  Labels
   follow the thesis comments (FOR1, FOR2, FOR3, SKIP, ENDFOR3, INC).
   Locals: 1 = i, 2 = prime, 4 = count, 5 = scratch, 6..26 = flags. *)
let sieve_reassembled =
  Asm.assemble
    (List.concat
       [
         [ Asm.op Nop ];
         [ Asm.push 26; Asm.op Enter ];
         [ Asm.op Ldz ];
         Asm.store_local 4;
         [ Asm.push 5 ];
         (* for (i = 0; i <= size; i++) flags[i] := true *)
         [ Asm.label "for1" ];
         [ Asm.push 1; Asm.op Add; Asm.op Dupe; Asm.push 1; Asm.op Swap; Asm.op St ];
         [ Asm.op Dupe; Asm.push 26; Asm.op Equal; Asm.bz "for1" ];
         [ Asm.push 5; Asm.op St ];
         [ Asm.op Ldz ];
         Asm.store_local 1;
         (* for (i = 0; i <= size; i++) if (flags[i]) ... *)
         [ Asm.label "for2" ];
         Asm.load_local 1;
         [ Asm.push 6; Asm.op Add; Asm.op Ld; Asm.bz "inc" ];
         (* prime := i + i + 3; output and remember it *)
         Asm.load_local 1;
         [ Asm.op Dupe; Asm.op Dupe; Asm.op Add; Asm.push 3; Asm.op Add ];
         [ Asm.op Dupe ];
         Asm.output_top;
         [ Asm.op Dupe ];
         Asm.store_local 2;
         (* k := i + prime; while (k <= size) flags[k] := false, k += prime *)
         [ Asm.op Add ];
         [ Asm.label "for3" ];
         [ Asm.op Dupe; Asm.push 6; Asm.op Add; Asm.op Ldz; Asm.op Swap; Asm.op St ];
         Asm.load_local 2;
         [ Asm.op Add ];
         [ Asm.op Dupe; Asm.push 21; Asm.op Less; Asm.bz "endfor3"; Asm.jmp "for3" ];
         [ Asm.label "endfor3" ];
         [ Asm.push 5; Asm.op St ];
         (* count++ *)
         Asm.load_local 4;
         [ Asm.push 1; Asm.op Add ];
         Asm.store_local 4;
         (* i++; loop until i = size + 1 *)
         [ Asm.label "inc" ];
         Asm.load_local 1;
         [ Asm.push 1; Asm.op Add; Asm.op Dupe ];
         Asm.store_local 1;
         [ Asm.push 21; Asm.op Equal; Asm.bz "for2" ];
         [ Asm.label "halt"; Asm.jmp "halt" ];
       ])

let sieve_reassembled_cycles = 7000
