(** Instruction-set-level simulator of the stack machine.

    The thesis places ISP simulation one abstraction level above the RTL
    (§1.2, §2.2.4): "After the instruction set has been generated and
    tested, it can be converted to an RTL for further testing."  This module
    is that upper level for the Itty Bitty Stack Machine: it executes
    {!Isa.t} operations directly against an abstract machine state (program
    counter, stack, frame pointer, 4096-word data memory, memory-mapped
    I/O), with no microcode, states, or cycle accounting.

    Its purpose is cross-level validation in the style the thesis attributes
    to ADLIB (§2.1.5): "a system can be described at the behavior level and
    also at the structure level.  Both simulation results can then be
    compared to assure the designer of similar descriptions."  The test
    suite runs the same programs here and on the microcoded RTL machine and
    requires identical output streams. *)

type t

val create : ?io:Asim_sim.Io.handler -> int array -> t
(** A fresh machine loaded with the program image. *)

val step : t -> bool
(** Execute one instruction.  Returns [false] when the machine cannot
    proceed (pc past the program, malformed encoding, or an unimplemented
    operation), [true] otherwise. *)

val run : ?max_instructions:int -> t -> int
(** Step until stuck, a tight self-loop (halt idiom), or the instruction
    budget (default 100_000) runs out; returns instructions executed. *)

val pc : t -> int

val stack : t -> int list
(** Current stack, top first. *)

val peek : t -> int -> int
(** RAM cell contents (locals, frames, stack slots). *)

val sp : t -> int

val fp : t -> int

val instructions_executed : t -> int

val run_collect_outputs : ?max_instructions:int -> int array -> int list
(** Convenience mirror of {!Programs.run_collect_outputs}: run the image
    quietly and return the output-event data in order. *)

val output_address : int
(** Frame offsets at or above this value (4096) are memory-mapped I/O,
    matching the RTL machine. *)
