(** The Itty Bitty Stack Machine (Appendix D/E).

    A microcoded stack computer described entirely with the three ASIM II
    primitives: a 64-state control unit (two selector ROMs, [rom] for control
    bits and [parm] for next-state/write parameters), a data path (ALU,
    negate unit, stack pointer push/pop adder, frame-pointer logic), a 4096-
    word stack RAM with memory-mapped I/O on address bit 12, and a 133-word
    program ROM.  The tables below are transcribed from the generated Pascal
    simulator in Appendix E (the clean, compiled image of the hand-written
    specification in Appendix D). *)

val rom_table : int array
(** Control ROM, indexed by state (64 entries).  Bit assignments (macros of
    Appendix D): 0 [~v] load-fp-select, 1 [~o] pop, 2 [~z] sp adds (vs
    loads) and next-state offset, 3 [~l] load left, 4 [~r] load right,
    5 [~y] frame addressing, 6 [~i] pc update, 7 [~p] sp update, 8 [~w] ram
    write / condition select, 9 [~g] goto, 10 [~a] absolute, 11 [~f] fp
    update, 12 [~s] instruction fetch / escape, 13 [~x] condition test. *)

val parm_table : int array
(** Parameter ROM, indexed by state: bits 0-4 next state, bits 5-7 write-data
    select, bit 8 data-register load. *)

val op_table : int array
(** Opcode → ALU function (16 entries), from the Appendix D decode ROM. *)

val components : program:int array -> Asim_core.Component.t list
(** The full component list; [program] (at most 4095 words) initializes the
    program ROM. *)

val spec :
  ?traced:string list ->
  ?cycles:int ->
  program:int array ->
  unit ->
  Asim_core.Spec.t
(** Complete specification.  [traced] defaults to none; pass e.g.
    [["state"; "pc"; "ir"]] for a per-cycle trace. *)

val component_names : string list
(** All component names, in the declaration order used by [spec]. *)

val output_address : int
(** RAM addresses at or above this value (bit 12 set) are memory-mapped
    I/O: stores become output events, loads become input events. *)
