type t =
  | Ldz
  | Ld0 of int
  | Ld1 of int
  | Dupe
  | And_
  | Less
  | Equal
  | Not_
  | Neg
  | Add
  | Mpy
  | Ld
  | St
  | Bz
  | Glob
  | Nop
  | Ldc of int
  | Swap
  | Index
  | Enter
  | Exit_
  | Call

let check_nibble n =
  if n < 0 || n > 15 then invalid_arg "Isa: nibble operand out of range"

let encode = function
  | Ldz -> [ 1 ]
  | Ld0 n ->
      check_nibble n;
      [ 2; n ]
  | Ld1 n ->
      check_nibble n;
      [ 3; n ]
  | Dupe -> [ 4 ]
  | And_ -> [ 5 ]
  | Less -> [ 6 ]
  | Equal -> [ 7 ]
  | Not_ -> [ 8 ]
  | Neg -> [ 9 ]
  | Add -> [ 10 ]
  | Mpy -> [ 11 ]
  | Ld -> [ 12 ]
  | St -> [ 13 ]
  | Bz -> [ 14 ]
  | Glob -> [ 15 ]
  | Nop -> [ 0; 0 ]
  | Ldc v ->
      if v < 0 || v > 0xFFFF then invalid_arg "Isa: LDC constant out of range";
      [ 0; 1; (v lsr 12) land 15; (v lsr 8) land 15; (v lsr 4) land 15; v land 15 ]
  | Swap -> [ 0; 2 ]
  | Index -> [ 0; 3 ]
  | Enter -> [ 0; 4 ]
  | Exit_ -> [ 0; 5 ]
  | Call -> [ 0; 6 ]

let size t = List.length (encode t)

let name = function
  | Ldz -> "ldz"
  | Ld0 n -> Printf.sprintf "ld0 %d" n
  | Ld1 n -> Printf.sprintf "ld1 %d" n
  | Dupe -> "dupe"
  | And_ -> "and"
  | Less -> "less"
  | Equal -> "equal"
  | Not_ -> "not"
  | Neg -> "neg"
  | Add -> "add"
  | Mpy -> "mpy"
  | Ld -> "ld"
  | St -> "st"
  | Bz -> "bz"
  | Glob -> "glob"
  | Nop -> "nop"
  | Ldc v -> Printf.sprintf "ldc %d" v
  | Swap -> "swap"
  | Index -> "index"
  | Enter -> "enter"
  | Exit_ -> "exit"
  | Call -> "call"

let decode program i =
  let word j = if j < Array.length program then Some (program.(j) land 15) else None in
  match word i with
  | None -> None
  | Some 0 -> (
      match word (i + 1) with
      | Some 0 -> Some (Nop, i + 2)
      | Some 1 -> (
          match (word (i + 2), word (i + 3), word (i + 4), word (i + 5)) with
          | Some a, Some b, Some c, Some d ->
              Some (Ldc ((a lsl 12) lor (b lsl 8) lor (c lsl 4) lor d), i + 6)
          | _ -> None)
      | Some 2 -> Some (Swap, i + 2)
      | Some 3 -> Some (Index, i + 2)
      | Some 4 -> Some (Enter, i + 2)
      | Some 5 -> Some (Exit_, i + 2)
      | Some 6 -> Some (Call, i + 2)
      | Some _ | None -> None)
  | Some 1 -> Some (Ldz, i + 1)
  | Some 2 -> ( match word (i + 1) with Some n -> Some (Ld0 n, i + 2) | None -> None)
  | Some 3 -> ( match word (i + 1) with Some n -> Some (Ld1 n, i + 2) | None -> None)
  | Some 4 -> Some (Dupe, i + 1)
  | Some 5 -> Some (And_, i + 1)
  | Some 6 -> Some (Less, i + 1)
  | Some 7 -> Some (Equal, i + 1)
  | Some 8 -> Some (Not_, i + 1)
  | Some 9 -> Some (Neg, i + 1)
  | Some 10 -> Some (Add, i + 1)
  | Some 11 -> Some (Mpy, i + 1)
  | Some 12 -> Some (Ld, i + 1)
  | Some 13 -> Some (St, i + 1)
  | Some 14 -> Some (Bz, i + 1)
  | Some 15 -> Some (Glob, i + 1)
  | Some _ -> None

let disassemble program =
  let buf = Buffer.create 512 in
  let rec go i =
    if i < Array.length program then
      match decode program i with
      | Some (op, next) ->
          Buffer.add_string buf (Printf.sprintf "%4d: %s\n" i (name op));
          go next
      | None ->
          Buffer.add_string buf (Printf.sprintf "%4d: .word %d\n" i program.(i));
          go (i + 1)
  in
  go 0;
  Buffer.contents buf
