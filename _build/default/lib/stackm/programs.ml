open Asim_sim

(* Appendix E, procedure initvalues: ljbprog[0..132]. *)
let sieve =
  [|
    0; 0; 3; 10; 0; 4; 1; 2; 4; 13; 2; 5; 2; 1; 10; 4; 2; 1; 0; 2; 13; 4; 3;
    10; 7; 3; 1; 9; 14; 2; 5; 13; 1; 2; 1; 13; 2; 1; 12; 2; 6; 10; 12; 0; 1;
    0; 0; 3; 10; 14; 2; 1; 12; 4; 4; 10; 2; 3; 10; 4; 0; 1; 1; 0; 0; 0; 13; 4;
    2; 2; 13; 10; 4; 2; 6; 10; 1; 0; 2; 13; 2; 2; 12; 10; 4; 3; 5; 6; 2; 5;
    14; 1; 3; 8; 9; 14; 2; 5; 13; 2; 4; 12; 2; 1; 10; 2; 4; 13; 2; 1; 12; 2;
    1; 10; 4; 2; 1; 13; 3; 5; 7; 0; 1; 0; 0; 5; 13; 9; 14; 0; 0; 0; 0;
  |]

let sieve_cycles = 5545

let sieve_expected_primes = [ 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43 ]

let run_collect_outputs ?(engine = `Compiled) ?(cycles = sieve_cycles) program =
  let spec = Microcode.spec ~cycles ~program () in
  let analysis = Asim_analysis.Analysis.analyze spec in
  let io, events = Io.recording () in
  let config = { Machine.quiet_config with io } in
  let machine =
    match engine with
    | `Interp -> Asim_interp.Interp.create ~config analysis
    | `Compiled -> Asim_compile.Compile.create ~config analysis
  in
  Machine.run machine ~cycles;
  List.filter_map
    (function Io.Output { data; _ } -> Some data | Io.Input _ -> None)
    (events ())
