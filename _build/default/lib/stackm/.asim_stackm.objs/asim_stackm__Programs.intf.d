lib/stackm/programs.mli:
