lib/stackm/microcode.ml: Array Asim_core Component Expr List Spec
