lib/stackm/asmtext.mli: Asm
