lib/stackm/isa.mli:
