lib/stackm/ispsim.ml: Array Asim_core Asim_sim Bits Io Isa List
