lib/stackm/microcode.mli: Asim_core
