lib/stackm/isa.ml: Array Buffer List Printf
