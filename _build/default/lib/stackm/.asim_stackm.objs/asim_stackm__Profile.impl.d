lib/stackm/profile.ml: Array Asim_analysis Asim_compile Asim_interp Asim_sim Buffer Hashtbl List Microcode Printf
