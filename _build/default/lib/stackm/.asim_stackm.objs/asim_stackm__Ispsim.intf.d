lib/stackm/ispsim.mli: Asim_sim
