lib/stackm/profile.mli:
