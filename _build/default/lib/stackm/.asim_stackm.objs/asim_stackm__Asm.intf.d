lib/stackm/asm.mli: Isa
