lib/stackm/programs.ml: Asim_analysis Asim_compile Asim_interp Asim_sim Io List Machine Microcode
