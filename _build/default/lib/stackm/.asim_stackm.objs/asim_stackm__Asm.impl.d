lib/stackm/asm.ml: Array Asim_core Error Hashtbl Isa List
