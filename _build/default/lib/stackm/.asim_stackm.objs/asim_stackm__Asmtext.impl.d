lib/stackm/asmtext.ml: Asim_core Asm Error Isa List Spec String
