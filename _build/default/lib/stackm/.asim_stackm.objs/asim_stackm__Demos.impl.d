lib/stackm/demos.ml: Asm Isa List
