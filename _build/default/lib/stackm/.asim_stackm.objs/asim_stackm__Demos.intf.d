lib/stackm/demos.mli:
