open Asim_core
open Asim_sim

let output_address = 4096

type t = {
  program : int array;
  ram : int array;
  io : Io.handler;
  mutable pc : int;
  mutable sp : int;  (** index of the top of stack; slot 0 is reserved *)
  mutable fp : int;
  mutable executed : int;
  mutable last_spin : (int * int) option;
      (** (branch target, sp) of the last taken branch, for halt detection *)
  mutable effect_since_branch : bool;
      (** did a store or I/O happen since the last taken branch? *)
  mutable halted : bool;
}

let create ?(io = Io.null) program =
  {
    program = Array.copy program;
    ram = Array.make 4096 0;
    io;
    pc = 0;
    sp = 0;
    fp = 0;
    executed = 0;
    last_spin = None;
    effect_since_branch = true;
    halted = false;
  }

let pc t = t.pc

let instructions_executed t = t.executed

let stack t = List.init t.sp (fun i -> t.ram.(t.sp - i))

let peek t i = t.ram.(i)

let sp t = t.sp

let fp t = t.fp

let push t v =
  t.sp <- t.sp + 1;
  t.ram.(t.sp) <- v

let pop t =
  let v = t.ram.(t.sp) in
  t.sp <- t.sp - 1;
  v

(* Effective data address of a frame offset: local [k] lives at
   [fp + k]; when bit 12 of the sum is set the access is memory-mapped
   I/O at device [(fp + k) land 4095]. *)
let resolve t offset = t.fp + offset

let binary t f =
  let a = pop t in
  let b = pop t in
  push t (f b a)

let step t =
  if t.halted then false
  else
    match Isa.decode t.program t.pc with
    | None -> false
    | Some (op, next) -> (
        t.pc <- next;
        t.executed <- t.executed + 1;
        match op with
        | Isa.Nop -> true
        | Isa.Ldz ->
            push t 0;
            true
        | Isa.Ld0 n ->
            push t n;
            true
        | Isa.Ld1 n ->
            push t (16 + n);
            true
        | Isa.Ldc v ->
            push t v;
            true
        | Isa.Dupe ->
            let a = pop t in
            push t a;
            push t a;
            true
        | Isa.Swap ->
            let a = pop t in
            let b = pop t in
            push t a;
            push t b;
            true
        | Isa.Add ->
            binary t ( + );
            true
        | Isa.Mpy ->
            binary t ( * );
            true
        | Isa.And_ ->
            binary t ( land );
            true
        | Isa.Less ->
            binary t (fun b a -> if b < a then -1 else 0);
            true
        | Isa.Equal ->
            binary t (fun b a -> if b = a then -1 else 0);
            true
        | Isa.Neg ->
            push t (-pop t);
            true
        | Isa.Not_ ->
            push t (Bits.mask - pop t);
            true
        | Isa.Ld ->
            let offset = pop t in
            let address = resolve t offset in
            if address land output_address <> 0 then begin
              push t (t.io.Io.input ~address:(address land 4095));
              t.effect_since_branch <- true
            end
            else push t t.ram.(address land 4095);
            true
        | Isa.St ->
            let offset = pop t in
            let value = pop t in
            let address = resolve t offset in
            if address land output_address <> 0 then
              t.io.Io.output ~address:(address land 4095) ~data:value
            else t.ram.(address land 4095) <- value;
            t.effect_since_branch <- true;
            true
        | Isa.Bz ->
            let offset = pop t in
            let cond = pop t in
            if cond = 0 then begin
              let target = t.pc + offset in
              (* A taken branch landing where the previous one landed, with
                 the same stack depth and no store or I/O in between, is a
                 pure spin — the halt idiom. *)
              (match t.last_spin with
              | Some (prev_target, prev_sp)
                when prev_target = target && prev_sp = t.sp
                     && not t.effect_since_branch ->
                  t.halted <- true
              | _ -> ());
              t.last_spin <- Some (target, t.sp);
              t.effect_since_branch <- false;
              t.pc <- target
            end;
            true
        | Isa.Enter ->
            (* The frame size on top of the stack is replaced in place by
               the saved frame pointer; locals occupy [fp+1 .. fp+size]. *)
            let size = t.ram.(t.sp) in
            t.ram.(t.sp) <- t.fp;
            t.fp <- t.sp;
            t.sp <- t.sp + size;
            t.effect_since_branch <- true;
            true
        | Isa.Glob ->
            (* global addressing: convert an absolute address to the frame-
               relative form LD/ST expect by pre-subtracting fp *)
            t.ram.(t.sp) <- t.ram.(t.sp) - t.fp;
            true
        | Isa.Index ->
            (* observed microcode behaviour: pop the index a, store b+a at
               frame offset a, keep b on the stack *)
            let a = pop t in
            let b = t.ram.(t.sp) in
            let address = resolve t a in
            if address land output_address <> 0 then
              t.io.Io.output ~address:(address land 4095) ~data:(b + a)
            else t.ram.(address land 4095) <- b + a;
            t.effect_since_branch <- true;
            true
        | Isa.Call ->
            (* the return address replaces the top of stack; the microcode
               increments pc once more before the write (the word after the
               CALL is evidently reserved for the jump itself, which the
               control unit never performs) *)
            t.ram.(t.sp) <- t.pc + 1;
            t.pc <- t.pc + 1;
            t.effect_since_branch <- true;
            true
        | Isa.Exit_ ->
            (* deallocate the frame: sp <- fp, restore the saved fp, then
               pop the frame base slot *)
            t.sp <- t.fp;
            t.fp <- t.ram.(t.sp);
            t.sp <- t.sp - 1;
            t.effect_since_branch <- true;
            true)

let run ?(max_instructions = 100_000) t =
  let start = t.executed in
  let rec go () =
    if t.executed - start >= max_instructions then ()
    else if step t then go ()
  in
  go ();
  t.executed - start

let run_collect_outputs ?max_instructions program =
  let io, events = Io.recording () in
  let t = create ~io program in
  ignore (run ?max_instructions t);
  List.filter_map
    (function Io.Output { data; _ } -> Some data | Io.Input _ -> None)
    (events ())
