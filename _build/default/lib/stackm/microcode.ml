open Asim_core

(* Tables transcribed from Appendix E (the generated Pascal simulator). *)

let rom_table =
  [|
    4184; 256; 256; 256; 288; 256; 256; 256; 296; 256; 143; 1536; 256; 150;
    8326; 576; 256; 256; 396; 16; 320; 2182; 1792; 320; 320; 0; 0; 0; 0; 0; 0;
    4164; 0; 132; 196; 196; 132; 134; 134; 134; 256; 256; 134; 134; 32; 134;
    134; 256; 0; 196; 134; 134; 2437; 131; 64; 0; 0; 0; 0; 0; 0; 0; 0; 0;
  |]

let parm_table =
  [|
    0; 0; 387; 160; 25; 0; 224; 6; 9; 192; 11; 0; 0; 4; 15; 25; 416; 432; 9; 8;
    433; 10; 96; 436; 407; 0; 18; 14; 13; 7; 5; 0; 31; 1; 2; 2; 12; 30; 29; 29;
    0; 224; 30; 30; 12; 28; 27; 32; 0; 24; 26; 19; 64; 21; 22; 0; 0; 0; 0; 0;
    0; 0; 0; 0;
  |]

(* Opcode -> ALU function (Appendix D decode ROM): LD0 passes, LD1 adds,
   AND=8, LESS=13, EQUAL=12, NOT=3, ADD=4, MPY=7, LD=2, ST=1, BZ=12,
   GLOB=5. *)
let op_table = [| 0; 0; 1; 4; 1; 8; 13; 12; 3; 0; 4; 7; 2; 1; 12; 5 |]

let output_address = 4096

let num v = [ Expr.num v ]

let bit name i = [ Expr.ref_bit name i ]

let whole name = [ Expr.ref_ name ]

let alu name fn left right = { Component.name; kind = Component.Alu { fn; left; right } }

let sel name select cases =
  { Component.name; kind = Component.Selector { select; cases = Array.of_list cases } }

let mem name addr data op cells init =
  { Component.name; kind = Component.Memory { addr; data; op; cells; init } }

let table_selector name select values =
  sel name select (List.map num (Array.to_list values))

let components ~program =
  if Array.length program > 4095 then invalid_arg "Microcode.components: program too large";
  let e = Expr.of_atoms in
  [
    (* Control ROMs: 64-way selectors on the state register. *)
    table_selector "rom" (e [ Expr.ref_range "state" 0 5 ]) rom_table;
    table_selector "parm" (e [ Expr.ref_range "state" 0 5 ]) parm_table;
    (* Condition unit: compare RAM output with rom bit 8 scaled by 16;
       function is 12 (=) or 13 (<) depending on that same rom bit. *)
    alu "exit"
      (e [ Expr.bits "110"; Expr.ref_bit "rom" 8 ])
      (whole "ram")
      (e [ Expr.ref_bit "rom" 8; Expr.bits "000000000000" ]);
    (* Next state: from parm, or 32 + 16*rom.2 + opcode nibble of prog. *)
    sel "newst"
      (e [ Expr.ref_range "rom" 12 13; Expr.ref_bit "exit" 0 ])
      [
        e [ Expr.ref_range "parm" 0 4 ];
        e [ Expr.ref_range "parm" 0 4 ];
        e [ Expr.bits "1"; Expr.ref_bit "rom" 2; Expr.ref_range "prog" 0 3 ];
        e [ Expr.bits "1"; Expr.ref_bit "rom" 2; Expr.ref_range "prog" 0 3 ];
        num 0;
        e [ Expr.ref_range "parm" 0 4 ];
        num 0;
        e [ Expr.bits "1"; Expr.ref_bit "rom" 2; Expr.ref_range "prog" 0 3 ];
      ];
    (* Program counter path. *)
    sel "relpc" (bit "rom" 10) [ whole "pc"; num 0 ];
    sel "offset" (bit "rom" 9) [ num 1; whole "left" ];
    alu "newpc" (e [ Expr.bits "100" ]) (whole "relpc") (whole "offset");
    (* Stack pointer push/pop. *)
    sel "psp"
      (e [ Expr.ref_range "rom" 0 2 ])
      [ num 0; num 0; num 0; whole "fp"; num 1; whole "left"; num 1; whole "right" ];
    alu "pushpop"
      (e [ Expr.ref_bit "rom" 2; Expr.bits "0"; Expr.ref_bit "rom" 1 ])
      (whole "sp") (whole "psp");
    (* Frame pointer. *)
    sel "selfp" (bit "ir" 0) [ whole "sp"; whole "ram" ];
    alu "afp" (e [ Expr.bits "100" ]) (whole "fp") (whole "left");
    sel "addr" (bit "rom" 5) [ whole "sp"; whole "afp" ];
    (* Data path. *)
    alu "neg" (e [ Expr.bits "101" ]) (num 0) (whole "ram");
    table_selector "op" (e [ Expr.ref_range "ir" 0 3 ]) op_table;
    sel "selr" (bit "parm" 5) [ whole "right"; whole "fp" ];
    alu "alu" (whole "op") (whole "ram") (whole "selr");
    sel "write"
      (e [ Expr.ref_range "parm" 5 7 ])
      [
        whole "alu";
        whole "alu";
        whole "fp";
        whole "pc";
        bit "ir" 0;
        e [ Expr.ref_range "ram" 0 11; Expr.ref_range "data" 0 3 ];
        whole "left";
        whole "neg";
      ];
    (* Registers (1-cell memories) and RAMs. *)
    mem "state" (num 0) (whole "newst") (num 1) 1 None;
    mem "pc" (num 0) (whole "newpc") (bit "rom" 6) 1 None;
    mem "sp" (num 0) (whole "pushpop") (bit "rom" 7) 1 None;
    mem "fp" (num 0) (whole "selfp") (bit "rom" 11) 1 None;
    mem "left" (num 0) (whole "ram") (bit "rom" 3) 1 None;
    mem "right" (num 0) (whole "ram") (bit "rom" 4) 1 None;
    mem "ir" (num 0) (whole "prog") (bit "rom" 12) 1 None;
    mem "data" (num 0) (whole "prog") (bit "parm" 8) 1 None;
    mem "ram"
      (e [ Expr.ref_range "addr" 0 11 ])
      (whole "write")
      (e [ Expr.ref_bit "addr" 12; Expr.ref_bit "rom" 8 ])
      4096 None;
    (* Four zero words of headroom: the control unit prefetches past a
       branch before redirecting, exactly like the thesis's own image, which
       ends in spare zeros. *)
    (let cells = Array.length program + 4 in
     mem "prog" (whole "pc") (num 0) (num 0) cells
       (Some (Array.init cells (fun i -> if i < Array.length program then program.(i) else 0))));
  ]

let component_names =
  [
    "rom"; "parm"; "exit"; "newst"; "relpc"; "offset"; "newpc"; "psp";
    "pushpop"; "selfp"; "afp"; "addr"; "neg"; "op"; "selr"; "alu"; "write";
    "state"; "pc"; "sp"; "fp"; "left"; "right"; "ir"; "data"; "ram"; "prog";
  ]

let spec ?(traced = []) ?cycles ~program () =
  let decls =
    List.map
      (fun name -> { Spec.name; traced = List.mem name traced })
      component_names
  in
  Spec.make ~comment:" Itty Bitty Stack Machine Simulator Specification" ?cycles
    ~decls (components ~program)
