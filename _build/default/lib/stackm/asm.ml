open Asim_core

type item =
  | Op of Isa.t
  | Push of int
  | Bz_to of string
  | Jmp_to of string
  | Label of string

let fail fmt = Error.failf Error.Analysis fmt

let push_ops v =
  if v = 0 then [ Isa.Ldz ]
  else if v < 0 then [ Isa.Ldc (-v); Isa.Neg ]
  else if v <= 15 then [ Isa.Ld0 v ]
  else if v <= 31 then [ Isa.Ld1 (v - 16) ]
  else [ Isa.Ldc v ]

let ops_size ops = List.fold_left (fun acc op -> acc + Isa.size op) 0 ops

(* The branch displacement depends on the sequence's own length (the BZ sits
   at its end), so each candidate size is tried with an encoding of exactly
   that size — the 6-word LDC legally encodes small displacements too, which
   closes the gap where shrinking to a short form would change the delta. *)
let branch_ops_at ~addr ~target =
  let try_size size =
    let delta = target - (addr + size) in
    match size with
    | 2 when delta = 0 -> Some [ Isa.Ldz; Isa.Bz ]
    | 3 when delta >= 1 && delta <= 15 -> Some [ Isa.Ld0 delta; Isa.Bz ]
    | 3 when delta >= 16 && delta <= 31 -> Some [ Isa.Ld1 (delta - 16); Isa.Bz ]
    | 4 when delta <= -1 && delta >= -15 -> Some [ Isa.Ld0 (-delta); Isa.Neg; Isa.Bz ]
    | 4 when delta <= -16 && delta >= -31 ->
        Some [ Isa.Ld1 (-delta - 16); Isa.Neg; Isa.Bz ]
    | 7 when delta >= 0 && delta <= 0xFFFF -> Some [ Isa.Ldc delta; Isa.Bz ]
    | 8 when delta < 0 && delta >= -0xFFFF -> Some [ Isa.Ldc (-delta); Isa.Neg; Isa.Bz ]
    | _ -> None
  in
  let rec try_sizes = function
    | [] -> fail "assembler: cannot encode branch from %d to %d" addr target
    | size :: rest -> (
        match try_size size with Some ops -> ops | None -> try_sizes rest)
  in
  try_sizes [ 2; 3; 4; 7; 8 ]

let item_min_size = function
  | Op op -> Isa.size op
  | Push v -> ops_size (push_ops v)
  | Bz_to _ -> 2
  | Jmp_to _ -> 3
  | Label _ -> 0

let assemble items =
  (* Iterate: compute label addresses from current size estimates, then
     recompute sizes from the addresses, until stable. *)
  let n = List.length items in
  let sizes = Array.make n 0 in
  List.iteri (fun i item -> sizes.(i) <- item_min_size item) items;
  let labels = Hashtbl.create 16 in
  let compute_labels () =
    Hashtbl.reset labels;
    let addr = ref 0 in
    List.iteri
      (fun i item ->
        (match item with
        | Label name ->
            if Hashtbl.mem labels name then fail "assembler: label %s defined twice" name;
            Hashtbl.add labels name !addr
        | Op _ | Push _ | Bz_to _ | Jmp_to _ -> ());
        addr := !addr + sizes.(i))
      items
  in
  let lookup name =
    match Hashtbl.find_opt labels name with
    | Some a -> a
    | None -> fail "assembler: label %s undefined" name
  in
  let encode_item addr = function
    | Op op -> [ op ]
    | Push v -> push_ops v
    | Bz_to name -> branch_ops_at ~addr ~target:(lookup name)
    | Jmp_to name -> Isa.Ldz :: branch_ops_at ~addr:(addr + 1) ~target:(lookup name)
    | Label _ -> []
  in
  let rec settle fuel =
    if fuel = 0 then fail "assembler: sizes did not converge";
    compute_labels ();
    let changed = ref false in
    let addr = ref 0 in
    List.iteri
      (fun i item ->
        let ops = encode_item !addr item in
        let size = ops_size ops in
        if size <> sizes.(i) then begin
          sizes.(i) <- size;
          changed := true
        end;
        addr := !addr + sizes.(i))
      items;
    if !changed then settle (fuel - 1)
  in
  settle 16;
  compute_labels ();
  let words = ref [] in
  let addr = ref 0 in
  List.iteri
    (fun i item ->
      let ops = encode_item !addr item in
      List.iter (fun op -> words := List.rev_append (Isa.encode op) !words) ops;
      addr := !addr + sizes.(i))
    items;
  Array.of_list (List.rev !words)

let push v = Push v

let op o = Op o

let label name = Label name

let bz name = Bz_to name

let jmp name = Jmp_to name

let enter_frame size = [ Push size; Op Isa.Enter ]

let load_local offset = [ Push offset; Op Isa.Ld ]

let store_local offset = [ Push offset; Op Isa.St ]

let output_top = [ Push 4096; Op Isa.St ]
