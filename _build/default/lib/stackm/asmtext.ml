open Asim_core

let fail ~line fmt =
  Error.failf ~position:{ Error.line; column = 1 } Error.Parsing fmt

let strip_comment s =
  let cut =
    match (String.index_opt s ';', String.index_opt s '#') with
    | Some a, Some b -> Some (min a b)
    | Some a, None -> Some a
    | None, Some b -> Some b
    | None, None -> None
  in
  match cut with Some i -> String.sub s 0 i | None -> s

let tokens_of_line s =
  String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) s)
  |> List.filter (fun t -> t <> "")

let int_operand ~line = function
  | [ n ] -> (
      match int_of_string_opt n with
      | Some v -> v
      | None -> fail ~line "bad numeric operand %s" n)
  | _ -> fail ~line "expected one numeric operand"

let label_operand ~line = function
  | [ l ] when Spec.is_valid_name l -> l
  | _ -> fail ~line "expected one label operand"

let no_operand ~line items = function
  | [] -> items
  | _ -> fail ~line "unexpected operand"

let parse source =
  let lines = String.split_on_char '\n' source in
  let items = ref [] in
  let emit i = items := i :: !items in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      let text = String.trim (strip_comment raw) in
      if text <> "" then begin
        (* leading [name:] defines a label; the rest of the line continues *)
        let text =
          match String.index_opt text ':' with
          | Some i
            when i > 0 && Spec.is_valid_name (String.sub text 0 i) ->
              emit (Asm.label (String.sub text 0 i));
              String.trim (String.sub text (i + 1) (String.length text - i - 1))
          | _ -> text
        in
        match tokens_of_line text with
        | [] -> ()
        | mnemonic :: operands -> (
            let simple op = emit (Asm.op op) in
            match (String.lowercase_ascii mnemonic, operands) with
            | "push", ops -> emit (Asm.push (int_operand ~line ops))
            | "enter", [] -> simple Isa.Enter
            | "enter", ops ->
                emit (Asm.push (int_operand ~line ops));
                emit (Asm.op Isa.Enter)
            | "load", ops ->
                emit (Asm.push (int_operand ~line ops));
                emit (Asm.op Isa.Ld)
            | "store", ops ->
                emit (Asm.push (int_operand ~line ops));
                emit (Asm.op Isa.St)
            | "out", ops ->
                ignore (no_operand ~line () ops);
                emit (Asm.push 4096);
                emit (Asm.op Isa.St)
            | "in", ops ->
                ignore (no_operand ~line () ops);
                emit (Asm.push 4096);
                emit (Asm.op Isa.Ld)
            | "bz", ops -> emit (Asm.bz (label_operand ~line ops))
            | "jmp", ops -> emit (Asm.jmp (label_operand ~line ops))
            | "ldz", [] -> simple Isa.Ldz
            | "dupe", [] | "dup", [] -> simple Isa.Dupe
            | "swap", [] -> simple Isa.Swap
            | "add", [] -> simple Isa.Add
            | "mpy", [] | "mul", [] -> simple Isa.Mpy
            | "and", [] -> simple Isa.And_
            | "less", [] -> simple Isa.Less
            | "equal", [] | "eq", [] -> simple Isa.Equal
            | "not", [] -> simple Isa.Not_
            | "neg", [] -> simple Isa.Neg
            | "ld", [] -> simple Isa.Ld
            | "st", [] -> simple Isa.St
            | "nop", [] -> simple Isa.Nop
            | "index", [] -> simple Isa.Index
            | "glob", [] -> simple Isa.Glob
            | "exit", [] -> simple Isa.Exit_
            | "call", [] -> simple Isa.Call
            | "ld0", ops -> emit (Asm.op (Isa.Ld0 (int_operand ~line ops)))
            | "ld1", ops -> emit (Asm.op (Isa.Ld1 (int_operand ~line ops)))
            | "ldc", ops -> emit (Asm.op (Isa.Ldc (int_operand ~line ops)))
            | m, _ -> fail ~line "unknown or malformed instruction %s" m)
      end)
    lines;
  List.rev !items

let assemble source = Asm.assemble (parse source)
