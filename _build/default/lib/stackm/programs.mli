(** Canned stack machine programs. *)

val sieve : int array
(** The Sieve of Eratosthenes (Appendix D/E): 133 program-ROM words,
    transcribed verbatim from the generated simulator's [initvalues].
    Running it for {!sieve_cycles} cycles emits the primes below 45 as
    memory-mapped output stores. *)

val sieve_cycles : int
(** 5545 — "the maximum number of cycles allowable in this specification of
    the stack machine" (§5.2), the Figure 5.1 workload length. *)

val sieve_expected_primes : int list
(** [3; 5; 7; ...; 43] — what the run must output. *)

val run_collect_outputs :
  ?engine:[ `Interp | `Compiled ] ->
  ?cycles:int ->
  int array ->
  int list
(** Assemble a machine around the given program ROM, run it quietly, and
    return the data values of its output events in order. *)
