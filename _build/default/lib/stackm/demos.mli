(** Programs written with the assembler (beyond the verbatim Sieve),
    exercising the recovered instruction set. *)

val countdown : int -> int array
(** Outputs [n, n-1, ..., 1], then spins. *)

val countdown_cycles : int -> int
(** Ample cycle budget for [countdown n]. *)

val squares : int -> int array
(** Outputs [1, 4, 9, ..., n*n] using [MPY], then spins. *)

val squares_cycles : int -> int

val fibonacci : int -> int array
(** Outputs the first [n] Fibonacci numbers (0, 1, 1, 2, ...). *)

val fibonacci_cycles : int -> int

val gcd : int -> int -> int array
(** Outputs [gcd a b], computed by repeated subtraction — conditional
    control flow through the [LESS]/[EQUAL]/[NEG]/[BZ] idioms. *)

val gcd_cycles : int

val sum_of_inputs : int array
(** Reads integers from input (address 1) until a zero arrives, then outputs
    their sum: demonstrates memory-mapped {i input}. *)

val sum_of_inputs_cycles : int

val sieve_reassembled : int array
(** The Sieve of Eratosthenes rewritten in assembler mnemonics.  Produces
    the same primes as {!Programs.sieve} (the verbatim ROM), validating the
    recovered ISA against the thesis's own program. *)

val sieve_reassembled_cycles : int
