(** Assembler for the stack machine, with labels and constant-push
    selection.

    The assembler picks the shortest encoding for pushed constants ([LDZ],
    [LD0], [LD1], or an escaped [LDC]) and resolves branch targets to the
    pop-an-offset form the hardware expects: a branch to [label] assembles
    as {i push |delta|} (+ [NEG] when backward) followed by [BZ], where
    [delta] is relative to the word after the [BZ].  Because encoding sizes
    depend on the offsets and vice versa, assembly iterates to a fixpoint. *)

type item =
  | Op of Isa.t  (** a bare operation *)
  | Push of int  (** push a constant (encoding chosen automatically) *)
  | Bz_to of string  (** pop a condition; branch to the label when zero *)
  | Jmp_to of string  (** unconditional branch (pushes a zero condition) *)
  | Label of string

val assemble : item list -> int array
(** Raises {!Asim_core.Error.Error} (phase [Analysis]) on duplicate or
    undefined labels, or when assembly does not converge. *)

(** Shorthands for common idioms. *)

val push : int -> item

val op : Isa.t -> item

val label : string -> item

val bz : string -> item

val jmp : string -> item

val enter_frame : int -> item list
(** [push size; Op Enter] — allocate a frame with locals at [fp+1..]. *)

val load_local : int -> item list
(** [push offset; Op Ld]. *)

val store_local : int -> item list
(** [push offset; Op St] — stores the value below the offset. *)

val output_top : item list
(** Write the top of stack to the output device (address 4096) and pop it. *)
