(** Microarchitectural analysis of the stack machine.

    The control unit spends every cycle in one of 64 states; attributing
    cycles to states — and states to the instructions that own them —
    recovers the machine's timing behaviour, "information not available via
    an ISP" (§1.3).  State labels follow the comments in the Appendix D
    decode ROM. *)

val state_label : int -> string
(** Human name of a control state: ["fetch"], ["escape"], an instruction
    mnemonic like ["add"], a shared micro-sequence like ["push-immediate"],
    or ["state-NN"] for the unused states. *)

type report = {
  cycles : int;  (** cycles simulated *)
  instructions : int;  (** instructions dispatched (entries into opcode states) *)
  state_occupancy : (int * int) list;  (** state → cycles, busiest first *)
  label_occupancy : (string * int) list;  (** label → cycles, busiest first *)
  instruction_mix : (string * int) list;
      (** mnemonic → dispatch count, most frequent first *)
}

val analyze : ?engine:[ `Interp | `Compiled ] -> cycles:int -> int array -> report
(** Run the program image quietly and attribute every cycle. *)

val to_string : report -> string
(** Multi-line report: instruction mix, cycles per label, CPI. *)
