let opcode_mnemonics =
  [| "esc"; "ldz"; "ld0"; "ld1"; "dupe"; "and"; "less"; "equal"; "not"; "neg";
     "add"; "mpy"; "ld"; "st"; "bz"; "glob" |]

let escaped_mnemonics = [| "nop"; "ldc"; "swap"; "index"; "enter"; "exit"; "call" |]

(* Labels follow the Appendix D decode-ROM comments; states 0x21-0x2F and
   0x30-0x36 are the per-instruction entry points. *)
let state_label state =
  match state land 63 with
  | 0 -> "fetch"
  | 1 -> "ldz"
  | 2 | 3 -> "push-immediate"
  | 4 -> "st"
  | 5 -> "not"
  | 6 -> "neg"
  | 7 -> "alu-result"
  | 8 -> "index"
  | 9 -> "swap"
  | 10 -> "exit"
  | 12 -> "ld"
  | 13 -> "st"
  | 14 -> "bz"
  | 16 | 17 | 20 | 23 | 24 -> "ldc"
  | 18 -> "swap"
  | 19 -> "index"
  | 21 -> "exit"
  | 22 -> "call"
  | s when s >= 25 && s <= 30 -> "interim"
  | 31 -> "escape-fetch"
  | 32 -> "escape"
  | s when s >= 33 && s <= 47 -> opcode_mnemonics.(s - 32)
  | s when s >= 48 && s <= 54 -> escaped_mnemonics.(s - 48)
  | s -> Printf.sprintf "state-%d" s

type report = {
  cycles : int;
  instructions : int;
  state_occupancy : (int * int) list;
  label_occupancy : (string * int) list;
  instruction_mix : (string * int) list;
}

let is_dispatch state = (state >= 33 && state <= 47) || (state >= 48 && state <= 54)

let dispatch_mnemonic state =
  if state <= 47 then opcode_mnemonics.(state - 32) else escaped_mnemonics.(state - 48)

let analyze ?(engine = `Compiled) ~cycles program =
  let spec = Microcode.spec ~program () in
  let analysis = Asim_analysis.Analysis.analyze spec in
  let machine =
    match engine with
    | `Interp -> Asim_interp.Interp.create ~config:Asim_sim.Machine.quiet_config analysis
    | `Compiled ->
        Asim_compile.Compile.create ~config:Asim_sim.Machine.quiet_config analysis
  in
  let per_state = Array.make 64 0 in
  let mix = Hashtbl.create 32 in
  let instructions = ref 0 in
  for _ = 1 to cycles do
    (* Attribute the state the control unit occupied during this cycle:
       step () latches the next state, so sample before stepping. *)
    let state = machine.Asim_sim.Machine.read "state" land 63 in
    per_state.(state) <- per_state.(state) + 1;
    if is_dispatch state then begin
      incr instructions;
      let m = dispatch_mnemonic state in
      Hashtbl.replace mix m (1 + try Hashtbl.find mix m with Not_found -> 0)
    end;
    machine.Asim_sim.Machine.step ()
  done;
  let by_count l = List.sort (fun (_, a) (_, b) -> compare b a) l in
  let state_occupancy =
    Array.to_list (Array.mapi (fun s n -> (s, n)) per_state)
    |> List.filter (fun (_, n) -> n > 0)
    |> by_count
  in
  let labels = Hashtbl.create 32 in
  List.iter
    (fun (s, n) ->
      let l = state_label s in
      Hashtbl.replace labels l (n + try Hashtbl.find labels l with Not_found -> 0))
    state_occupancy;
  let label_occupancy = by_count (Hashtbl.fold (fun l n acc -> (l, n) :: acc) labels []) in
  let instruction_mix = by_count (Hashtbl.fold (fun m n acc -> (m, n) :: acc) mix []) in
  { cycles; instructions = !instructions; state_occupancy; label_occupancy;
    instruction_mix }

let to_string r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%d cycles, %d instructions dispatched (CPI %.2f)\n" r.cycles
       r.instructions
       (float_of_int r.cycles /. float_of_int (max 1 r.instructions)));
  Buffer.add_string buf "\ninstruction mix:\n";
  List.iter
    (fun (m, n) -> Buffer.add_string buf (Printf.sprintf "  %-8s %6d\n" m n))
    r.instruction_mix;
  Buffer.add_string buf "\ncycles by micro-sequence:\n";
  List.iter
    (fun (l, n) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-16s %6d  %5.1f%%\n" l n
           (100. *. float_of_int n /. float_of_int (max 1 r.cycles))))
    r.label_occupancy;
  Buffer.contents buf
