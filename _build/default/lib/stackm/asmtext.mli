(** Textual assembly for the stack machine.

    One operation per line; [;] or [#] start comments; a [name:] line (or
    prefix) defines a label.  Mnemonics are the {!Isa} names plus the
    assembler conveniences:

    {v
        push 26        ; any 0..65535, or negative (encoded via NEG)
        enter 2        ; sugar: push 2; enter
        load 1         ; sugar: push 1; ld      (frame offset)
        store 1        ; sugar: push 1; st
        out            ; sugar: push 4096; st   (integer output device)
        in             ; sugar: push 4096; ld   (integer input device)
        bz done        ; pop condition, branch if zero
        jmp loop       ; unconditional
    loop:
        dupe add mpy and less equal not neg ld st swap nop
        index glob exit call enter ldz
    v} *)

val parse : string -> Asm.item list
(** Raises {!Asim_core.Error.Error} (phase [Parsing]) with a line number on
    unknown mnemonics or malformed operands. *)

val assemble : string -> int array
(** [Asm.assemble] of {!parse}: source text → program ROM image. *)
