(** Instruction set of the Itty Bitty Stack Machine.

    Program words are small integers whose low four bits select the
    operation; word 0 is an escape prefix giving a second page of
    operations.  The encoding and semantics below were recovered from the
    microcode (Appendix E) and validated against the Sieve program:

    Single-word operations (low nibble):
    - 1 [LDZ]: push 0
    - 2 [LD0 n]: push the next word's low nibble (constants 0..15)
    - 3 [LD1 n]: push 16 + next word's low nibble (constants 16..31)
    - 4 [DUPE]: push a copy of the top of stack
    - 5 [AND], 6 [LESS], 7 [EQUAL], 10 [ADD], 11 [MPY]: pop the top [a] and
      the value [b] below it, push [b OP a].  The comparisons push the
      all-ones truth value -1 when true (the microcode routes the ALU's 1
      through the negate unit), 0 when false — which is why compiled code
      branches with the [NEG]-then-[BZ] idiom
    - 8 [NOT], 9 [NEG]: replace top of stack
    - 12 [LD]: pop a frame offset, push [ram[fp + offset]]
    - 13 [ST]: pop a frame offset, pop a value, store it at [fp + offset]
      (offsets with bit 12 set are memory-mapped I/O)
    - 14 [BZ]: pop an offset, pop a condition; when the condition is zero,
      [pc := pc + 1 + offset] (the offset may be negative via [NEG])
    - 15 [GLOB]: global (non-frame) addressing prefix

    - 15 [GLOB]: global addressing — top := top − fp, converting an
      absolute address into the frame-relative form [LD]/[ST] expect

    Escaped operations (word 0, then a second word's low nibble):
    - 0 [NOP]
    - 1 [LDC n]: push a 16-bit constant from the following four words'
      nibbles, most significant first
    - 2 [SWAP]
    - 3 [INDEX]: pop the index [a]; store [b + a] at frame offset [a]
      (where [b] is the value below), keeping [b] on the stack —
      behaviour recovered by probing the microcode
    - 4 [ENTER]: the frame size on top of the stack is replaced by the
      saved fp; fp := sp, sp := sp + size (locals live at [fp+1 ..])
    - 5 [EXIT]: deallocate the frame — sp := fp, fp := saved fp, pop the
      base slot.  No return jump: the microcode never reloads pc.
    - 6 [CALL]: the word following the CALL pair is skipped, and the
      address after it (the resume point) replaces the top of stack; the
      jump to the callee is never performed by the control unit — the
      operation was evidently left unfinished in the original microcode *)

type t =
  | Ldz
  | Ld0 of int  (** 0..15 *)
  | Ld1 of int  (** 0..15, pushes 16+n *)
  | Dupe
  | And_
  | Less
  | Equal
  | Not_
  | Neg
  | Add
  | Mpy
  | Ld
  | St
  | Bz
  | Glob
  | Nop
  | Ldc of int  (** 0..65535 *)
  | Swap
  | Index
  | Enter
  | Exit_
  | Call

val encode : t -> int list
(** Program words for one operation. *)

val size : t -> int
(** [List.length (encode t)]. *)

val name : t -> string

val decode : int array -> int -> (t * int) option
(** [decode program i] reads the operation at index [i] and returns it with
    the index just past it; [None] on a malformed or truncated encoding. *)

val disassemble : int array -> string
(** Whole-program listing, one operation per line with its address. *)
