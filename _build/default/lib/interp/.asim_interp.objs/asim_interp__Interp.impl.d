lib/interp/interp.ml: Array Asim_analysis Asim_core Asim_sim Bits Component Error Expr Fault Io List Machine Number Spec Stats String Trace
