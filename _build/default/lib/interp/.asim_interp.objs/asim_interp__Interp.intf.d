lib/interp/interp.mli: Asim_analysis Asim_core Asim_sim
