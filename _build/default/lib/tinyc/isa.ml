type opcode =
  | Ld
  | St
  | Bb
  | Br
  | Su

let opcode_code = function Ld -> 2 | St -> 3 | Bb -> 4 | Br -> 5 | Su -> 6

let opcode_of_code = function
  | 2 -> Some Ld
  | 3 -> Some St
  | 4 -> Some Bb
  | 5 -> Some Br
  | 6 -> Some Su
  | _ -> None

let opcode_name = function
  | Ld -> "LD"
  | St -> "ST"
  | Bb -> "BB"
  | Br -> "BR"
  | Su -> "SU"

let memory_size = 128

let cycles_per_instruction = 4

let encode op address =
  if address < 0 || address >= memory_size then invalid_arg "Isa.encode: address"
  else (opcode_code op lsl 7) lor address

let decode word =
  match opcode_of_code ((word lsr 7) land 7) with
  | Some op -> Some (op, word land (memory_size - 1))
  | None -> None

let disassemble word =
  match decode word with
  | Some (op, address) -> Printf.sprintf "%s %d" (opcode_name op) address
  | None -> string_of_int word
