(** A small symbolic assembler for the tiny computer. *)

type operand =
  | Abs of int  (** absolute address 0..127 *)
  | Label of string

type line =
  | Def of string  (** define a label at the current location *)
  | Instr of Isa.opcode * operand
  | Word of int  (** literal data word *)
  | Org of int  (** move the location counter *)

val assemble : line list -> int array
(** Produce the 128-word memory image.  Raises {!Asim_core.Error.Error}
    (phase [Analysis]) on duplicate/undefined labels, overlapping [Org]
    regions, or addresses out of range. *)

val disassemble : int array -> string
(** One line per non-zero word: ["  12: LD 30"]. *)

(** Shorthand constructors. *)

val ld : string -> line

val st : string -> line

val bb : string -> line

val br : string -> line

val su : string -> line

val label : string -> line

val word : int -> line

val org : int -> line
