open Asim_core

let num v = [ Expr.num v ]

let bit name i = [ Expr.ref_bit name i ]

let whole name = [ Expr.ref_ name ]

let alu name fn left right = { Component.name; kind = Component.Alu { fn; left; right } }

let sel name select cases =
  { Component.name; kind = Component.Selector { select; cases = Array.of_list cases } }

let mem name addr data op cells init =
  { Component.name; kind = Component.Memory { addr; data; op; cells; init } }

let components ~program =
  if Array.length program <> Isa.memory_size then
    invalid_arg "Tinyc.Machine.components: image must be 128 words";
  let e = Expr.of_atoms in
  [
    (* Two-bit phase counter, decoded one-hot. *)
    alu "nextstate" (e [ Expr.bits "0100" ]) (whole "state") (num 1);
    sel "phase"
      (e [ Expr.ref_range "state" 0 1 ])
      [
        e [ Expr.bits "0001" ];
        e [ Expr.bits "0010" ];
        e [ Expr.bits "0100" ];
        e [ Expr.bits "1000" ];
      ];
    (* Program counter: incremented, or loaded from ir on a taken branch. *)
    alu "incpc" (e [ Expr.bits "0100" ]) (whole "pc") (num 1);
    sel "newpc" (bit "decode" 1) [ whole "incpc"; whole "ir" ];
    (* Decode: bit 0 = memory write, bit 1 = branch, bit 2 = accumulator
       load, bit 3 = subtract. *)
    sel "decode"
      (e [ Expr.ref_range "ir" 7 9 ])
      [
        num 0;
        num 0;
        e [ Expr.ref_bit "phase" 3; Expr.bits "00" ];
        e [ Expr.ref_bit "phase" 2 ];
        e [ Expr.ref_ "borrow"; Expr.bits "0" ];
        e [ Expr.bits "10" ];
        e [ Expr.bits "1"; Expr.ref_bit "phase" 3; Expr.bits "00" ];
        num 0;
      ];
    (* ALU: pass memory (load) or subtract it from the accumulator. *)
    alu "alu"
      (e [ Expr.ref_bit "decode" 3; Expr.bits "01" ])
      (whole "ac")
      (e [ Expr.ref_range "memory" 0 9 ]);
    (* Borrow flip-flop plumbing (AND gates, §5.3 "gates must occasionally
       be simulated"). *)
    alu "sub" (num 12) (e [ Expr.bits "110" ]) (e [ Expr.ref_range "ir" 7 9 ]);
    alu "b2" (num 8) (bit "phase" 3) (whole "sub");
    alu "sell" (num 8) (bit "alu" 10) (bit "phase" 3);
    alu "sel" (num 8) (whole "sub") (whole "sell");
    (* Memory address mux: operand field during execute, pc otherwise. *)
    sel "ma" (bit "phase" 2) [ whole "pc"; whole "ir" ];
    (* State elements.  [ir] latches before [memory] and [memory] before
       [ac], so every memory-reading data expression observes the previous
       cycle's value — the update order carries no hidden dependency (the
       phases never write reader and source in the same cycle), which also
       keeps the spec representable at the gate level. *)
    mem "state" (num 0) (e [ Expr.ref_range "nextstate" 0 1 ]) (num 1) 1 None;
    mem "pc" (num 0) (e [ Expr.ref_range "newpc" 0 6 ]) (bit "phase" 2) 1 None;
    mem "ir" (num 0) (whole "memory") (bit "phase" 1) 1 None;
    mem "memory"
      (e [ Expr.ref_range "ma" 0 6 ])
      (whole "ac") (bit "decode" 0) Isa.memory_size (Some (Array.copy program));
    mem "ac" (num 0) (e [ Expr.ref_range "alu" 0 10 ]) (bit "decode" 2) 1 None;
    mem "borrow" (num 0) (whole "sel") (whole "b2") 1 None;
  ]

let component_names =
  [
    "nextstate"; "phase"; "incpc"; "newpc"; "decode"; "alu"; "sub"; "b2";
    "sell"; "sel"; "ma"; "state"; "pc"; "ir"; "memory"; "ac"; "borrow";
  ]

let spec ?(traced = []) ?cycles ~program () =
  let decls =
    List.map (fun name -> { Spec.name; traced = List.mem name traced }) component_names
  in
  Spec.make ~comment:" tiny computer specification (Appendix F)" ?cycles ~decls
    (components ~program)

let demo_program =
  Asm.
    [
      (* difference := a - b *)
      ld "a";
      su "b";
      st "difference";
      (* count difference down past zero; borrow exits the loop *)
      label "loop";
      ld "difference";
      su "one";
      st "difference";
      bb "done";
      br "loop";
      label "done";
      br "done";
      org 28;
      label "a";
      word 10;
      label "b";
      word 3;
      label "one";
      word 1;
      label "difference";
      word 0;
    ]

let demo_image = Asm.assemble demo_program

(* Five instructions suffice for multiplication: accumulate [a] into the
   product [b] times, adding with x + y = x - (0 - y) (two SUs through a
   zero cell) and counting down on the borrow branch.  The 10-bit operand
   path makes all arithmetic mod 1024. *)
let multiply_program a b =
  Asm.
    [
      label "loop";
      ld "bvar";
      su "one";
      st "bvar";
      bb "done";
      ld "zero";
      su "avar";
      st "nega";
      ld "product";
      su "nega";
      st "product";
      br "loop";
      label "done";
      br "done";
      org 20;
      label "avar";
      word a;
      label "bvar";
      word b;
      label "one";
      word 1;
      label "zero";
      word 0;
      label "product";
      word 0;
      label "nega";
      word 0;
    ]

let multiply_product_address = 24

(* 3 setup instructions + 8 countdown iterations of 5 instructions + slack. *)
let demo_cycles = 250

type observation = {
  ac : int;
  pc : int;
  borrow : int;
  memory : int array;
}

let run ?(engine = `Compiled) ?(cycles = demo_cycles) image =
  let spec = spec ~cycles ~program:image () in
  let analysis = Asim_analysis.Analysis.analyze spec in
  let machine =
    match engine with
    | `Interp -> Asim_interp.Interp.create ~config:Asim_sim.Machine.quiet_config analysis
    | `Compiled ->
        Asim_compile.Compile.create ~config:Asim_sim.Machine.quiet_config analysis
  in
  Asim_sim.Machine.run machine ~cycles;
  {
    ac = machine.Asim_sim.Machine.read "ac";
    pc = machine.Asim_sim.Machine.read "pc";
    borrow = machine.Asim_sim.Machine.read "borrow";
    memory =
      Array.init Isa.memory_size (fun i ->
          machine.Asim_sim.Machine.read_cell "memory" i);
  }
