lib/tinyc/asm.ml: Array Asim_core Buffer Error Hashtbl Isa List Printf
