lib/tinyc/asmtext.mli: Asm
