lib/tinyc/isa.mli:
