lib/tinyc/ispsim.mli: Machine
