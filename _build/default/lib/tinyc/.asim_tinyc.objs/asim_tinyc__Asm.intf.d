lib/tinyc/asm.mli: Isa
