lib/tinyc/machine.ml: Array Asim_analysis Asim_compile Asim_core Asim_interp Asim_sim Asm Component Expr Isa List Spec
