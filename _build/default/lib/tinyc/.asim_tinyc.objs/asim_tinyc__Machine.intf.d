lib/tinyc/machine.mli: Asim_core Asm
