lib/tinyc/ispsim.ml: Array Isa Machine
