lib/tinyc/asmtext.ml: Asim_core Asm Error Isa List Spec String
