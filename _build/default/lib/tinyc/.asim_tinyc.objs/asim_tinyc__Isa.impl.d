lib/tinyc/isa.ml: Printf
