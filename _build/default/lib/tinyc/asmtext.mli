(** Textual assembly for the tiny computer.

    {v
    ; comments with ; or #
    loop:  LD counter      ; operands are labels or absolute addresses
           SU one
           ST counter
           BB done
           BR loop
    done:  BR done
           .org 28
    counter: .word 5
    one:   .word 1
    v} *)

val parse : string -> Asm.line list
(** Raises {!Asim_core.Error.Error} (phase [Parsing]) with a line number on
    unknown mnemonics or malformed operands. *)

val assemble : string -> int array
(** [Asm.assemble] of {!parse}: source text → 128-word memory image. *)
