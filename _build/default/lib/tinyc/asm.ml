open Asim_core

type operand =
  | Abs of int
  | Label of string

type line =
  | Def of string
  | Instr of Isa.opcode * operand
  | Word of int
  | Org of int

let fail fmt = Error.failf Error.Analysis fmt

(* First pass: assign locations; second pass: resolve operands. *)
let assemble lines =
  let labels = Hashtbl.create 16 in
  let loc = ref 0 in
  let check_loc () =
    if !loc < 0 || !loc >= Isa.memory_size then
      fail "assembler: location %d outside memory (0..%d)" !loc (Isa.memory_size - 1)
  in
  List.iter
    (function
      | Def name ->
          if Hashtbl.mem labels name then fail "assembler: label %s defined twice" name;
          check_loc ();
          Hashtbl.add labels name !loc
      | Instr _ | Word _ ->
          check_loc ();
          incr loc
      | Org target ->
          loc := target;
          check_loc ())
    lines;
  let image = Array.make Isa.memory_size 0 in
  let written = Array.make Isa.memory_size false in
  let resolve = function
    | Abs a ->
        if a < 0 || a >= Isa.memory_size then fail "assembler: address %d out of range" a
        else a
    | Label name -> (
        match Hashtbl.find_opt labels name with
        | Some a -> a
        | None -> fail "assembler: label %s undefined" name)
  in
  let loc = ref 0 in
  let emit word =
    if written.(!loc) then fail "assembler: location %d assembled twice" !loc;
    written.(!loc) <- true;
    image.(!loc) <- word;
    incr loc
  in
  List.iter
    (function
      | Def _ -> ()
      | Instr (op, operand) -> emit (Isa.encode op (resolve operand))
      | Word w -> emit w
      | Org target -> loc := target)
    lines;
  image

let disassemble image =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i word ->
      if word <> 0 then Buffer.add_string buf (Printf.sprintf "%4d: %s\n" i (Isa.disassemble word)))
    image;
  Buffer.contents buf

let ld name = Instr (Isa.Ld, Label name)

let st name = Instr (Isa.St, Label name)

let bb name = Instr (Isa.Bb, Label name)

let br name = Instr (Isa.Br, Label name)

let su name = Instr (Isa.Su, Label name)

let label name = Def name

let word w = Word w

let org a = Org a
