(** Instruction set of the Appendix F tiny computer.

    A 10-bit, five-instruction accumulator machine with 128 words of unified
    program/data memory.  Words encode the opcode in bits 7-9 and a 7-bit
    absolute address in bits 0-6:

    - [LD a]  (opcode 2): accumulator := memory[a]
    - [ST a]  (opcode 3): memory[a] := accumulator
    - [BB a]  (opcode 4): branch to [a] when the borrow flag is set
    - [BR a]  (opcode 5): branch to [a]
    - [SU a]  (opcode 6): accumulator := accumulator - memory[a];
      borrow := sign of the 11-bit result

    Every instruction takes exactly four clock cycles (one per machine
    phase). *)

type opcode =
  | Ld
  | St
  | Bb
  | Br
  | Su

val opcode_code : opcode -> int
(** The value of instruction bits 7-9. *)

val opcode_of_code : int -> opcode option

val opcode_name : opcode -> string

val encode : opcode -> int -> int
(** [encode op address]; raises [Invalid_argument] unless
    [0 <= address < 128]. *)

val decode : int -> (opcode * int) option
(** [None] when bits 7-9 are not an opcode (a data word). *)

val disassemble : int -> string
(** ["LD 30"], or the decimal value for a data word. *)

val memory_size : int
(** 128 words. *)

val cycles_per_instruction : int
(** 4. *)
