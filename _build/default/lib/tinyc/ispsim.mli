(** Instruction-set-level simulator of the tiny computer.

    The behavioural counterpart of the Appendix F structure-level
    specification, mirroring [Asim_stackm.Ispsim] for the other machine:
    each {!Isa} instruction executes in one step against an abstract state
    (pc, 11-bit accumulator, borrow flag, 128-word memory).  Used for
    cross-level validation against the RTL machine. *)

type t = {
  mutable pc : int;
  mutable ac : int;  (** 11 bits; bit 10 doubles as the borrow indicator *)
  mutable borrow : int;
  memory : int array;
  mutable executed : int;
}

val create : int array -> t

val step : t -> bool
(** Execute one instruction; [false] on a data word (halt by convention
    never happens — the demo programs spin on [BR]). *)

val run : ?max_instructions:int -> t -> int
(** Step until a data word, a self-branch ([BR here] — the halt idiom), or
    the budget (default 10_000); returns instructions executed. *)

val observe : t -> Machine.observation
(** In the same shape the RTL helper reports, for direct comparison. *)
