(** The tiny computer specification (Appendix F).

    A 10-bit microprocessor with five instructions and 128 words of memory,
    described with 16 ASIM II components: a 2-bit phase counter, program
    counter with branch mux, instruction register, opcode decode selector,
    an ALU that either passes or subtracts, a borrow flip-flop built from
    AND gates, and the unified memory.  The thesis uses this machine to show
    how a specification maps one-to-one onto a hardware circuit (its parts
    list is reproduced by [Asim_netlist]). *)

val components : program:int array -> Asim_core.Component.t list
(** [program] is the 128-word memory image (see {!Asm.assemble}). *)

val spec :
  ?traced:string list ->
  ?cycles:int ->
  program:int array ->
  unit ->
  Asim_core.Spec.t

val component_names : string list

val demo_program : Asm.line list
(** The reconstructed demonstration program (the appendix's listing is not
    fully legible; this exercises every opcode): compute
    [mem[30] - mem[31]], store it, then count it down to below zero and
    halt via the borrow branch. *)

val demo_image : int array

val multiply_program : int -> int -> Asm.line list
(** [multiply_program a b]: computes [a * b mod 1024] with nothing but the
    five instructions — addition is synthesized as
    [x + y = x - (0 - y)] via two subtractions, and the loop terminates on
    the borrow branch.  The product lands in the [product] data word. *)

val multiply_product_address : int
(** Where {!multiply_program} leaves the product. *)

val demo_cycles : int
(** Enough cycles for the demo to reach its halt spin. *)

(** Observable state of a run, for tests and examples. *)
type observation = {
  ac : int;  (** accumulator (11-bit latch, includes the borrow bit) *)
  pc : int;
  borrow : int;
  memory : int array;
}

val run :
  ?engine:[ `Interp | `Compiled ] ->
  ?cycles:int ->
  int array ->
  observation
(** Build the machine around the image, run quietly, observe. *)
