open Asim_core

let fail ~line fmt =
  Error.failf ~position:{ Error.line; column = 1 } Error.Parsing fmt

let strip_comment s =
  let cut =
    match (String.index_opt s ';', String.index_opt s '#') with
    | Some a, Some b -> Some (min a b)
    | Some a, None -> Some a
    | None, Some b -> Some b
    | None, None -> None
  in
  match cut with Some i -> String.sub s 0 i | None -> s

let tokens_of_line s =
  String.split_on_char ' ' (String.map (fun c -> if c = '\t' then ' ' else c) s)
  |> List.filter (fun t -> t <> "")

let operand ~line = function
  | [ op ] -> (
      match int_of_string_opt op with
      | Some a -> Asm.Abs a
      | None ->
          if Spec.is_valid_name op then Asm.Label op
          else fail ~line "bad operand %s" op)
  | _ -> fail ~line "expected one operand"

let parse source =
  let lines = String.split_on_char '\n' source in
  let items = ref [] in
  let emit i = items := i :: !items in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      let text = String.trim (strip_comment raw) in
      if text <> "" then begin
        let text =
          match String.index_opt text ':' with
          | Some i when i > 0 && Spec.is_valid_name (String.sub text 0 i) ->
              emit (Asm.label (String.sub text 0 i));
              String.trim (String.sub text (i + 1) (String.length text - i - 1))
          | _ -> text
        in
        match tokens_of_line text with
        | [] -> ()
        | mnemonic :: operands -> (
            match (String.uppercase_ascii mnemonic, operands) with
            | "LD", ops -> emit (Asm.Instr (Isa.Ld, operand ~line ops))
            | "ST", ops -> emit (Asm.Instr (Isa.St, operand ~line ops))
            | "BB", ops -> emit (Asm.Instr (Isa.Bb, operand ~line ops))
            | "BR", ops -> emit (Asm.Instr (Isa.Br, operand ~line ops))
            | "SU", ops -> emit (Asm.Instr (Isa.Su, operand ~line ops))
            | ".WORD", [ n ] -> (
                match int_of_string_opt n with
                | Some v -> emit (Asm.word v)
                | None -> fail ~line "bad .word operand %s" n)
            | ".ORG", [ n ] -> (
                match int_of_string_opt n with
                | Some v -> emit (Asm.org v)
                | None -> fail ~line "bad .org operand %s" n)
            | m, _ -> fail ~line "unknown or malformed instruction %s" m)
      end)
    lines;
  List.rev !items

let assemble source = Asm.assemble (parse source)
