type t = {
  mutable pc : int;
  mutable ac : int;
  mutable borrow : int;
  memory : int array;
  mutable executed : int;
}

let create image =
  if Array.length image <> Isa.memory_size then
    invalid_arg "Tinyc.Ispsim.create: image must be 128 words";
  { pc = 0; ac = 0; borrow = 0; memory = Array.copy image; executed = 0 }

let mask11 = (1 lsl 11) - 1

let step t =
  match Isa.decode t.memory.(t.pc) with
  | None -> false
  | Some (op, address) ->
      t.executed <- t.executed + 1;
      let next = (t.pc + 1) land (Isa.memory_size - 1) in
      (match op with
      | Isa.Ld ->
          (* the memory operand enters the ALU through a 10-bit field *)
          t.ac <- t.memory.(address) land 1023;
          t.pc <- next
      | Isa.St ->
          t.memory.(address) <- t.ac;
          t.pc <- next
      | Isa.Su ->
          let diff = (t.ac - (t.memory.(address) land 1023)) land mask11 in
          t.ac <- diff;
          t.borrow <- (diff lsr 10) land 1;
          t.pc <- next
      | Isa.Br -> t.pc <- address
      | Isa.Bb -> t.pc <- (if t.borrow = 1 then address else next));
      true

let run ?(max_instructions = 10_000) t =
  let start = t.executed in
  let rec go () =
    if t.executed - start >= max_instructions then ()
    else begin
      let before = t.pc in
      if step t then
        if t.pc = before then () (* BR to itself: the halt idiom *)
        else go ()
    end
  in
  go ();
  t.executed - start

let observe t =
  {
    Machine.ac = t.ac;
    pc = t.pc;
    borrow = t.borrow;
    memory = Array.copy t.memory;
  }
