(** ASIM II expressions: comma-separated concatenations of bit fields.

    An expression like [mem.3.4,#01,count.1] (Figure 3.1) concatenates, from
    most significant to least significant: bits 3..4 of [mem], the literal
    bits [01], and bit 1 of [count].  Bit positions are zero-based from the
    least-significant end; a field [name.f.t] selects bits [f..t] inclusive.

    Width accounting follows the paper's [expr] procedure: atoms are laid out
    from the right; a number with a [.w] suffix occupies [w] bits (its low [w]
    bits are kept); a [#bits] literal occupies one bit per digit; a plain
    [name] or un-suffixed number fills the remaining word (31 bits) and must
    therefore be the leftmost atom.  A total width beyond 31 bits is the
    paper's "Too many bits" error. *)

type atom =
  | Const of { number : Number.t; width : Number.t option }
      (** numeric literal, optionally truncated to [width] low bits *)
  | Bitstring of string  (** [#]-literal; the string holds only ['0']/['1'] *)
  | Ref of { name : string; field : field }

and field =
  | Whole  (** [name] — the full 31-bit value *)
  | Bit of Number.t  (** [name.f] — single bit [f] *)
  | Range of Number.t * Number.t  (** [name.f.t] — bits [f..t], [f <= t] *)

type t = atom list
(** Leftmost atom is most significant.  Always non-empty for parsed input. *)

val atom_width : atom -> int option
(** Width in bits, or [None] for filling atoms (plain refs, un-suffixed
    numbers). Raises {!Error.Error} on an invalid field (e.g. [f > t]). *)

val width : t -> int
(** Total width using the paper's accounting (filling atoms count as the
    full 31 bits).  Raises {!Error.Error} ([Analysis]) when the result
    exceeds 31 or a filling atom is not leftmost. *)

val names : t -> string list
(** Component names referenced, in order of first occurrence, no duplicates. *)

val is_numeric : t -> bool
(** True when the expression contains no {!Ref} atom, i.e. it is a constant.
    (The paper's [numeric] test, used to drive code optimization.) *)

val const_value : t -> int option
(** The value of a numeric expression; [None] if any atom is a reference. *)

val eval : read:(string -> int) -> t -> int
(** Evaluate with [read] supplying current component outputs.  Bit extraction
    uses two's-complement semantics on negative values, as Pascal's set-based
    [land] did. *)

val to_string : t -> string
(** Render to source syntax. *)

val pp : Format.formatter -> t -> unit

(** {2 Convenience constructors} (used by machine builders and tests) *)

val num : int -> atom
(** Decimal constant, filling. *)

val num_w : int -> width:int -> atom
(** Decimal constant occupying exactly [width] bits. *)

val bits : string -> atom
(** [#]-literal from a ['0']/['1'] string. *)

val ref_ : string -> atom

val ref_bit : string -> int -> atom

val ref_range : string -> int -> int -> atom

val of_atoms : atom list -> t
