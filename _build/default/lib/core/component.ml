type alu_function =
  | Fn_zero
  | Fn_right
  | Fn_left
  | Fn_not
  | Fn_add
  | Fn_sub
  | Fn_shift_left
  | Fn_mul
  | Fn_and
  | Fn_or
  | Fn_xor
  | Fn_unused
  | Fn_eq
  | Fn_lt

let alu_function_of_code code =
  match code land 15 with
  | 0 -> Fn_zero
  | 1 -> Fn_right
  | 2 -> Fn_left
  | 3 -> Fn_not
  | 4 -> Fn_add
  | 5 -> Fn_sub
  | 6 -> Fn_shift_left
  | 7 -> Fn_mul
  | 8 -> Fn_and
  | 9 -> Fn_or
  | 10 -> Fn_xor
  | 12 -> Fn_eq
  | 13 -> Fn_lt
  | 11 | 14 | 15 -> Fn_unused
  | _ -> assert false

let alu_function_code = function
  | Fn_zero -> 0
  | Fn_right -> 1
  | Fn_left -> 2
  | Fn_not -> 3
  | Fn_add -> 4
  | Fn_sub -> 5
  | Fn_shift_left -> 6
  | Fn_mul -> 7
  | Fn_and -> 8
  | Fn_or -> 9
  | Fn_xor -> 10
  | Fn_unused -> 11
  | Fn_eq -> 12
  | Fn_lt -> 13

let apply_alu fn ~left ~right =
  match fn with
  | Fn_zero | Fn_unused -> 0
  | Fn_right -> right
  | Fn_left -> left
  | Fn_not -> Bits.mask - left
  | Fn_add -> left + right
  | Fn_sub -> left - right
  | Fn_shift_left -> Bits.shift_left_masked left right
  | Fn_mul -> left * right
  | Fn_and -> left land right
  | Fn_or -> left + right - (left land right)
  | Fn_xor -> left + right - (2 * (left land right))
  | Fn_eq -> if left = right then 1 else 0
  | Fn_lt -> if left < right then 1 else 0

let apply_alu_code code ~left ~right =
  apply_alu (alu_function_of_code code) ~left ~right

type memory_op =
  | Op_read
  | Op_write
  | Op_input
  | Op_output

let memory_op_of_code code =
  match code land 3 with
  | 0 -> Op_read
  | 1 -> Op_write
  | 2 -> Op_input
  | 3 -> Op_output
  | _ -> assert false

let traces_writes op = op land 5 = 5

let traces_reads op = op land 9 = 8

type alu = { fn : Expr.t; left : Expr.t; right : Expr.t }

type selector = { select : Expr.t; cases : Expr.t array }

type memory = {
  addr : Expr.t;
  data : Expr.t;
  op : Expr.t;
  cells : int;
  init : int array option;
}

type kind =
  | Alu of alu
  | Selector of selector
  | Memory of memory

type t = { name : string; kind : kind }

let kind_letter { kind; _ } =
  match kind with Alu _ -> 'A' | Selector _ -> 'S' | Memory _ -> 'M'

let inputs { kind; _ } =
  match kind with
  | Alu { fn; left; right } -> [ fn; left; right ]
  | Selector { select; cases } -> select :: Array.to_list cases
  | Memory { addr; data; op; _ } -> [ addr; data; op ]

let combinational_inputs t =
  match t.kind with Alu _ | Selector _ -> inputs t | Memory _ -> []

let is_memory t = match t.kind with Memory _ -> true | Alu _ | Selector _ -> false

let validate t =
  let check_width e = ignore (Expr.width e : int) in
  List.iter check_width (inputs t);
  match t.kind with
  | Alu _ -> ()
  | Selector { cases; _ } ->
      if Array.length cases = 0 then
        Error.failf ~component:t.name Error.Analysis "selector has no cases"
  | Memory { cells; init; _ } -> (
      if cells < 1 then
        Error.failf ~component:t.name Error.Analysis
          "memory must have at least one cell (got %d)" cells;
      match init with
      | None -> ()
      | Some values ->
          if Array.length values <> cells then
            Error.failf ~component:t.name Error.Analysis
              "memory declares %d cells but initializes %d" cells
              (Array.length values))
