type position = { line : int; column : int }

type phase =
  | Lexing
  | Parsing
  | Analysis
  | Runtime

type t = {
  phase : phase;
  message : string;
  position : position option;
  component : string option;
}

exception Error of t

let fail ?position ?component phase message =
  raise (Error { phase; message; position; component })

let failf ?position ?component phase fmt =
  Format.kasprintf (fun message -> fail ?position ?component phase message) fmt

let phase_to_string = function
  | Lexing -> "lex error"
  | Parsing -> "parse error"
  | Analysis -> "analysis error"
  | Runtime -> "runtime error"

let to_string { phase; message; position; component } =
  let pos =
    match position with
    | None -> ""
    | Some { line; column } -> Printf.sprintf " at line %d, column %d" line column
  in
  let comp =
    match component with
    | None -> ""
    | Some name -> Printf.sprintf " (component <%s>)" name
  in
  Printf.sprintf "%s%s%s: %s" (phase_to_string phase) pos comp message

let pp ppf e = Format.pp_print_string ppf (to_string e)

type warning =
  | Declared_not_defined of string
  | Defined_not_declared of string
  | Memory_update_order of { reader : string; written_before : string }

let warning_to_string = function
  | Declared_not_defined name ->
      Printf.sprintf "Warning: %s declared but not defined." name
  | Defined_not_declared name ->
      Printf.sprintf "Warning: %s defined but not declared." name
  | Memory_update_order { reader; written_before } ->
      Printf.sprintf
        "Warning: memory %s reads memory %s in its data expression; %s is \
         updated earlier in declaration order, so %s observes the new value."
        reader written_before written_before reader
