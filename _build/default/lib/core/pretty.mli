(** Canonical source rendering of a specification.

    [Pretty.spec] emits text that the parser reads back to an equal spec
    (macros are already expanded, comments dropped); this is the [asim fmt]
    output and the basis of parse/print round-trip property tests. *)

val component : Component.t -> string
(** One component definition line, e.g. ["A add 4 left 3048"]. *)

val spec : Spec.t -> string
(** The complete file: comment line, [= cycles] if present, declaration list
    terminated by [.], component definitions, final [.]. *)

val pp_spec : Format.formatter -> Spec.t -> unit
