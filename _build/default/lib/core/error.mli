(** Errors and warnings shared by every ASIM subsystem. *)

type position = { line : int; column : int }

type phase =
  | Lexing
  | Parsing
  | Analysis
  | Runtime

type t = {
  phase : phase;
  message : string;
  position : position option;
  component : string option;  (** component being processed, if known *)
}

exception Error of t

val fail : ?position:position -> ?component:string -> phase -> string -> 'a
(** Raise {!Error}. *)

val failf :
  ?position:position ->
  ?component:string ->
  phase ->
  ('a, Format.formatter, unit, 'b) format4 ->
  'a
(** Formatted variant of {!fail}. *)

val to_string : t -> string
(** Human-readable one-line rendering, e.g.
    ["parse error at line 3, column 7 (component <alu>): ..."]. *)

val pp : Format.formatter -> t -> unit

(** Non-fatal diagnostics (the paper prints these as [Warning:] lines and
    continues code generation). *)
type warning =
  | Declared_not_defined of string
  | Defined_not_declared of string
  | Memory_update_order of { reader : string; written_before : string }
      (** [reader]'s data expression reads memory [written_before], which is
          updated earlier in declaration order, so it observes the *new*
          value — ASIM II's declaration-order hazard. *)

val warning_to_string : warning -> string
