lib/core/bits.ml: String
