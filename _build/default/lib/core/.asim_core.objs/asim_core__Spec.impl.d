lib/core/spec.ml: Component Error Hashtbl List String
