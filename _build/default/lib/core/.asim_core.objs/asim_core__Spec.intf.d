lib/core/spec.mli: Component
