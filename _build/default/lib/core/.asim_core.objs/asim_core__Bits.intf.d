lib/core/bits.mli:
