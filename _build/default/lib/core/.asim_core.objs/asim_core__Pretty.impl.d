lib/core/pretty.ml: Array Buffer Component Expr Format List Printf Spec String
