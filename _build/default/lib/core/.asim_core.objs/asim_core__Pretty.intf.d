lib/core/pretty.mli: Component Format Spec
