lib/core/component.mli: Expr
