lib/core/expr.ml: Bits Error Format List Number String
