lib/core/number.mli: Format
