lib/core/number.ml: Bits Char Error Format List Printf String
