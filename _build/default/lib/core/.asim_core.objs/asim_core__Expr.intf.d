lib/core/expr.mli: Format Number
