lib/core/component.ml: Array Bits Error Expr List
