(** The three ASIM II primitives.

    Every piece of hardware is described by ALUs (combinational function
    units), Selectors (multiplexors) and Memories (registers, RAM, ROM,
    memory-mapped I/O).  Each component's [name] carries its output value for
    use as input to other components (§3.2). *)

(** ALU functions (Appendix A).  [Fn_unused] (code 11) evaluates to 0. *)
type alu_function =
  | Fn_zero  (** 0 *)
  | Fn_right  (** 1: pass right operand *)
  | Fn_left  (** 2: pass left operand *)
  | Fn_not  (** 3: NOT(left) = mask - left *)
  | Fn_add  (** 4 *)
  | Fn_sub  (** 5 *)
  | Fn_shift_left  (** 6: left * 2^right, 31-bit masked *)
  | Fn_mul  (** 7 *)
  | Fn_and  (** 8 *)
  | Fn_or  (** 9 *)
  | Fn_xor  (** 10 *)
  | Fn_unused  (** 11 *)
  | Fn_eq  (** 12: 1 if left = right else 0 *)
  | Fn_lt  (** 13: 1 if left < right else 0 *)

val alu_function_of_code : int -> alu_function
(** Decode [code land 15]; codes 14 and 15 behave like the generated Pascal's
    [case] fall-through (no arm matches): the result is 0, modeled as
    {!Fn_unused}. *)

val alu_function_code : alu_function -> int

val apply_alu : alu_function -> left:int -> right:int -> int
(** The paper's [dologic], given a decoded function. *)

val apply_alu_code : int -> left:int -> right:int -> int
(** The paper's [dologic] on a raw function value. *)

(** Memory operations.  The low two bits of a memory's operation value select
    the action; bit 2 ([land 5 = 5]) additionally traces writes and bit 3
    ([land 9 = 8]) traces reads. *)
type memory_op =
  | Op_read  (** 0 *)
  | Op_write  (** 1 *)
  | Op_input  (** 2: take data from the input stream *)
  | Op_output  (** 3: send data to the output stream *)

val memory_op_of_code : int -> memory_op
(** Decode [code land 3]. *)

val traces_writes : int -> bool
(** [op land 5 = 5]. *)

val traces_reads : int -> bool
(** [op land 9 = 8]. *)

type alu = { fn : Expr.t; left : Expr.t; right : Expr.t }

type selector = { select : Expr.t; cases : Expr.t array }

type memory = {
  addr : Expr.t;
  data : Expr.t;
  op : Expr.t;
  cells : int;  (** number of cells, >= 1 *)
  init : int array option;
      (** Some when the source gave a negative cell count with an initializer
          list; length = [cells] *)
}

type kind =
  | Alu of alu
  | Selector of selector
  | Memory of memory

type t = { name : string; kind : kind }

val kind_letter : t -> char
(** ['A'], ['S'] or ['M']. *)

val inputs : t -> Expr.t list
(** Every expression the component evaluates (for dependency analysis).  For
    a memory this is address, data and operation. *)

val combinational_inputs : t -> Expr.t list
(** Expressions contributing to the component's *combinational* output this
    cycle: everything for ALUs and selectors, nothing for memories (their
    output is the registered value from the previous cycle). *)

val is_memory : t -> bool

val validate : t -> unit
(** Structural checks: expression widths, selector has at least one case,
    memory cell count >= 1, initializer length matches.  Raises
    {!Error.Error}. *)
