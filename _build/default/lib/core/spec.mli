(** A complete ASIM II specification: the unit both simulators consume. *)

type decl = { name : string; traced : bool }
(** One entry of the name list; a trailing [*] in the source marks the
    component for per-cycle tracing. *)

type t = {
  comment : string;  (** first line of the file, without the leading [#] *)
  cycles : int option;  (** [= N] directive, if present *)
  decls : decl list;  (** in source order; trace output follows this order *)
  components : Component.t list;  (** in source order *)
}

val find : t -> string -> Component.t option

val find_exn : t -> string -> Component.t
(** Raises {!Error.Error} with the paper's "Component <x> not found."
    message. *)

val traced_names : t -> string list
(** Names to print each cycle, in declaration-list order. *)

val is_valid_name : string -> bool
(** Letters and digits only, starting with a letter (the paper's
    [checkname]). *)

val validate : t -> unit
(** Structural validation: component names well-formed and unique, every
    component structurally valid ({!Component.validate}).  Cross-reference
    and dependency checks live in [Asim_analysis]. *)

val make :
  ?comment:string ->
  ?cycles:int ->
  ?decls:decl list ->
  Component.t list ->
  t
(** Build a spec programmatically.  When [decls] is omitted, every component
    is declared untraced in definition order. *)
