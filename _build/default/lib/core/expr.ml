type atom =
  | Const of { number : Number.t; width : Number.t option }
  | Bitstring of string
  | Ref of { name : string; field : field }

and field =
  | Whole
  | Bit of Number.t
  | Range of Number.t * Number.t

type t = atom list

let field_bounds name = function
  | Whole -> None
  | Bit f ->
      let f = Number.value f in
      if f < 0 || f >= Bits.word_bits then
        Error.failf ~component:name Error.Analysis "bit index %d out of range" f
      else Some (f, f)
  | Range (f, t) ->
      let lo = Number.value f and hi = Number.value t in
      if lo < 0 || hi < lo || hi >= Bits.word_bits then
        Error.failf ~component:name Error.Analysis "bit range %d..%d invalid" lo hi
      else Some (lo, hi)

let atom_width = function
  | Const { width = None; _ } -> None
  | Const { width = Some w; _ } ->
      let w = Number.value w in
      if w < 0 || w > Bits.word_bits then
        Error.failf Error.Analysis "constant width %d out of range" w
      else Some w
  | Bitstring s -> Some (String.length s)
  | Ref { name; field } -> (
      match field_bounds name field with
      | None -> None
      | Some (lo, hi) -> Some (hi - lo + 1))

let atom_to_string = function
  | Const { number; width = None } -> Number.to_string number
  | Const { number; width = Some w } ->
      Number.to_string number ^ "." ^ Number.to_string w
  | Bitstring s -> "#" ^ s
  | Ref { name; field = Whole } -> name
  | Ref { name; field = Bit f } -> name ^ "." ^ Number.to_string f
  | Ref { name; field = Range (f, t) } ->
      name ^ "." ^ Number.to_string f ^ "." ^ Number.to_string t

let to_string atoms = String.concat "," (List.map atom_to_string atoms)

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* Widths accumulate from the rightmost (least significant) atom, as in the
   paper's [expr] procedure.  A filling atom (plain ref, un-suffixed number)
   occupies whatever remains of the word, so it is only legal leftmost. *)
let width atoms =
  let too_many () = Error.failf Error.Analysis "Too many bits in %s." (to_string atoms) in
  let rec go numbits = function
    | [] -> numbits
    | atom :: to_the_left -> (
        match atom_width atom with
        | Some w ->
            let numbits = numbits + w in
            if numbits > Bits.word_bits then too_many () else go numbits to_the_left
        | None ->
            if to_the_left <> [] then
              Error.failf Error.Analysis
                "filling atom %s must be leftmost in %s" (atom_to_string atom)
                (to_string atoms)
            else Bits.word_bits)
  in
  go 0 (List.rev atoms)

let names atoms =
  let add seen name = if List.mem name seen then seen else name :: seen in
  List.rev
    (List.fold_left
       (fun seen -> function
         | Const _ | Bitstring _ -> seen
         | Ref { name; _ } -> add seen name)
       [] atoms)

let is_numeric atoms =
  List.for_all (function Const _ | Bitstring _ -> true | Ref _ -> false) atoms

let bitstring_value s =
  String.fold_left (fun acc c -> (acc * 2) + if c = '1' then 1 else 0) 0 s

(* Contribution of one atom placed so that its least-significant bit lands at
   bit position [numbits] of the result; returns (value, new numbits). *)
let atom_contribution ~read numbits = function
  | Const { number; width } ->
      let v = Number.value number in
      (match width with
      | None -> (v lsl numbits, Bits.word_bits)
      | Some w ->
          let w = Number.value w in
          ((v land Bits.ones w) lsl numbits, numbits + w))
  | Bitstring s -> (bitstring_value s lsl numbits, numbits + String.length s)
  | Ref { name; field } -> (
      let v = read name in
      match field_bounds name field with
      | None -> (v lsl numbits, Bits.word_bits)
      | Some (lo, hi) ->
          let masked = v land Bits.field_mask ~lo ~hi in
          let shifted =
            if numbits >= lo then masked lsl (numbits - lo)
            else masked lsr (lo - numbits)
          in
          (shifted, numbits + (hi - lo + 1)))

let eval ~read atoms =
  let rec go acc numbits = function
    | [] -> acc
    | atom :: rest ->
        let v, numbits = atom_contribution ~read numbits atom in
        go (acc + v) numbits rest
  in
  go 0 0 (List.rev atoms)

let const_value atoms =
  if is_numeric atoms then Some (eval ~read:(fun _ -> 0) atoms) else None

let num v = Const { number = [ Number.Decimal v ]; width = None }

let num_w v ~width = Const { number = [ Number.Decimal v ]; width = Some [ Number.Decimal width ] }

let bits s =
  String.iter (fun c -> if c <> '0' && c <> '1' then invalid_arg "Expr.bits") s;
  Bitstring s

let ref_ name = Ref { name; field = Whole }

let ref_bit name f = Ref { name; field = Bit [ Number.Decimal f ] }

let ref_range name f t = Ref { name; field = Range ([ Number.Decimal f ], [ Number.Decimal t ]) }

let of_atoms atoms = atoms
