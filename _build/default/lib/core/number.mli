(** ASIM II numeric literals.

    A number is a [+]-joined sum of terms; each term is decimal ([123]),
    binary ([%1011]), hexadecimal ([$3F]), or a power of two ([^12] = 4096).
    This is the paper's [str2num] (Appendix C), including its behaviour of
    summing terms, e.g. ["128+3+^8"] = 387. *)

type term =
  | Decimal of int
  | Binary of int * int  (** value, digit count (kept for printing) *)
  | Hex of int
  | Pow2 of int  (** exponent *)

type t = term list
(** Terms in source order; the value is their sum. *)

val value : t -> int

val term_value : term -> int

val parse : string -> t
(** Parse a complete number literal.  Raises {!Error.Error} (phase
    [Parsing]) on malformed input, mirroring the paper's
    "Error. Malformed number" diagnostic. *)

val parse_value : string -> int
(** [value (parse s)]. *)

val is_number_start : char -> bool
(** True for characters that begin a numeric literal: digit, [$], [%], [^]. *)

val to_string : t -> string
(** Render back to source syntax ([Binary] keeps its digit count). *)

val pp : Format.formatter -> t -> unit
