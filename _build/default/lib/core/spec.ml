type decl = { name : string; traced : bool }

type t = {
  comment : string;
  cycles : int option;
  decls : decl list;
  components : Component.t list;
}

let find t name =
  List.find_opt (fun (c : Component.t) -> String.equal c.name name) t.components

let find_exn t name =
  match find t name with
  | Some c -> c
  | None -> Error.failf Error.Analysis "Component <%s> not found." name

let traced_names t =
  List.filter_map (fun d -> if d.traced then Some d.name else None) t.decls

let is_letter c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')

let is_digit c = c >= '0' && c <= '9'

let is_valid_name s =
  String.length s > 0
  && is_letter s.[0]
  && String.for_all (fun c -> is_letter c || is_digit c) s

let validate t =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (c : Component.t) ->
      if not (is_valid_name c.name) then
        Error.failf ~component:c.name Error.Analysis
          "Component name %s invalid, use letters and numbers only." c.name;
      if Hashtbl.mem seen c.name then
        Error.failf ~component:c.name Error.Analysis
          "component %s defined more than once" c.name;
      Hashtbl.add seen c.name ();
      Component.validate c)
    t.components

let make ?(comment = "generated specification") ?cycles ?decls components =
  let decls =
    match decls with
    | Some decls -> decls
    | None ->
        List.map (fun (c : Component.t) -> { name = c.name; traced = false }) components
  in
  { comment; cycles; decls; components }
