(** 31-bit word utilities.

    ASIM II inherits Pascal's 32-bit signed integers: every bitwise helper in
    the generated simulators works on the low 31 bits ([maxint] = 2^31 - 1),
    while plain arithmetic is ordinary signed arithmetic.  We reproduce that
    model on OCaml's native [int]: [land]-style helpers mask to 31 bits,
    arithmetic is left unmasked. *)

val word_bits : int
(** Number of value bits in a simulated word (31). *)

val mask : int
(** [2^word_bits - 1], the paper's [mask] constant (2147483647). *)

val ones : int -> int
(** [ones w] is a mask of [w] low bits set.  [ones 0 = 0]; requires
    [0 <= w <= word_bits]. *)

val bit : int -> int -> int
(** [bit v i] is bit [i] of [v] (0 = least significant), as 0 or 1. *)

val extract : int -> lo:int -> hi:int -> int
(** [extract v ~lo ~hi] are bits [lo..hi] of [v] inclusive, shifted down to
    bit 0.  Requires [0 <= lo <= hi < word_bits]. *)

val field_mask : lo:int -> hi:int -> int
(** Mask with bits [lo..hi] set (the paper's [highbits] sums). *)

val shift_left_masked : int -> int -> int
(** [shift_left_masked v n] is ASIM's ALU function 6: [v * 2^n] computed by
    repeated doubling with 31-bit masking at each step (so bits shifted past
    bit 30 are lost).  [n <= 0] leaves [v] unchanged; the loop also stops
    early once the accumulated value is 0, exactly as the generated Pascal. *)

val width_needed : int -> int
(** [width_needed v] is the number of bits needed to represent non-negative
    [v] ([width_needed 0 = 1]); used by the netlist width inference. *)

val is_power_of_two : int -> bool
(** True for 1, 2, 4, ... *)

val to_binary_string : width:int -> int -> string
(** Zero-padded binary rendering of the low [width] bits. *)
