let component (c : Component.t) =
  let e = Expr.to_string in
  match c.kind with
  | Alu { fn; left; right } ->
      Printf.sprintf "A %s %s %s %s" c.name (e fn) (e left) (e right)
  | Selector { select; cases } ->
      let cases = Array.to_list (Array.map e cases) in
      Printf.sprintf "S %s %s %s" c.name (e select) (String.concat " " cases)
  | Memory { addr; data; op; cells; init } -> (
      match init with
      | None -> Printf.sprintf "M %s %s %s %s %d" c.name (e addr) (e data) (e op) cells
      | Some values ->
          let values = Array.to_list (Array.map string_of_int values) in
          Printf.sprintf "M %s %s %s %s -%d %s" c.name (e addr) (e data) (e op)
            cells
            (String.concat " " values))

let spec (s : Spec.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("#" ^ s.comment ^ "\n");
  (match s.cycles with
  | None -> ()
  | Some n -> Buffer.add_string buf (Printf.sprintf "= %d\n" n));
  let decl (d : Spec.decl) = if d.traced then d.name ^ "*" else d.name in
  Buffer.add_string buf (String.concat " " (List.map decl s.decls) ^ " .\n");
  List.iter
    (fun c ->
      Buffer.add_string buf (component c);
      Buffer.add_char buf '\n')
    s.components;
  Buffer.add_string buf ".\n";
  Buffer.contents buf

let pp_spec ppf s = Format.pp_print_string ppf (spec s)
