let word_bits = 31

let mask = (1 lsl word_bits) - 1

let ones w =
  if w < 0 || w > word_bits then invalid_arg "Bits.ones"
  else (1 lsl w) - 1

let bit v i = (v lsr i) land 1

let extract v ~lo ~hi =
  if lo < 0 || hi < lo || hi >= word_bits then invalid_arg "Bits.extract"
  else (v lsr lo) land ones (hi - lo + 1)

let field_mask ~lo ~hi =
  if lo < 0 || hi < lo || hi >= word_bits then invalid_arg "Bits.field_mask"
  else ones (hi - lo + 1) lsl lo

(* Function 6 of the paper's [dologic]: repeated doubling, masking to 31 bits
   each step, stopping early when the left operand collapses to zero. *)
let shift_left_masked v n =
  let rec go v n = if n <= 0 || v = 0 then v else go ((v + v) land mask) (n - 1) in
  go (v land mask) n

let width_needed v =
  if v < 0 then word_bits
  else
    let rec go acc v = if v = 0 then max acc 1 else go (acc + 1) (v lsr 1) in
    go 0 v

let is_power_of_two v = v > 0 && v land (v - 1) = 0

let to_binary_string ~width v =
  if width <= 0 || width > word_bits then invalid_arg "Bits.to_binary_string"
  else String.init width (fun i -> if bit v (width - 1 - i) = 1 then '1' else '0')
