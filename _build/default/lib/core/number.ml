type term =
  | Decimal of int
  | Binary of int * int
  | Hex of int
  | Pow2 of int

type t = term list

let term_value = function
  | Decimal v | Hex v -> v
  | Binary (v, _) -> v
  | Pow2 e -> 1 lsl e

let value terms = List.fold_left (fun acc term -> acc + term_value term) 0 terms

let is_digit c = c >= '0' && c <= '9'

let is_hex_digit c = is_digit c || (c >= 'A' && c <= 'F')

let is_number_start c = is_digit c || c = '$' || c = '%' || c = '^'

let malformed s = Error.failf Error.Parsing "Malformed number %s." s

(* One term starting at [i]; returns the term and the index past it. *)
let parse_term s i =
  let len = String.length s in
  let digits ~accept ~base ~digit i0 =
    let rec go acc i =
      if i < len && accept s.[i] then go ((acc * base) + digit s.[i]) (i + 1)
      else (acc, i)
    in
    let v, j = go 0 i0 in
    if j = i0 then malformed s else (v, j)
  in
  let dec_digit c = Char.code c - Char.code '0' in
  let hex_digit c = if is_digit c then dec_digit c else Char.code c - Char.code 'A' + 10 in
  match s.[i] with
  | '%' ->
      let v, j = digits ~accept:(fun c -> c = '0' || c = '1') ~base:2 ~digit:dec_digit (i + 1) in
      (Binary (v, j - i - 1), j)
  | '$' ->
      let v, j = digits ~accept:is_hex_digit ~base:16 ~digit:hex_digit (i + 1) in
      (Hex v, j)
  | '^' ->
      let e, j = digits ~accept:is_digit ~base:10 ~digit:dec_digit (i + 1) in
      if e < 0 || e > Bits.word_bits then malformed s else (Pow2 e, j)
  | c when is_digit c ->
      let v, j = digits ~accept:is_digit ~base:10 ~digit:dec_digit i in
      (Decimal v, j)
  | _ -> malformed s

let parse s =
  let len = String.length s in
  if len = 0 then malformed s
  else
    let rec go acc i =
      let term, j = parse_term s i in
      let acc = term :: acc in
      if j = len then List.rev acc
      else if s.[j] = '+' && j + 1 < len then go acc (j + 1)
      else malformed s
    in
    go [] 0

let parse_value s = value (parse s)

let term_to_string = function
  | Decimal v -> string_of_int v
  | Hex v -> Printf.sprintf "$%X" v
  | Binary (v, n) ->
      let width = max (Bits.width_needed v) (max 1 (min n Bits.word_bits)) in
      "%" ^ Bits.to_binary_string ~width v
  | Pow2 e -> Printf.sprintf "^%d" e

let to_string terms = String.concat "+" (List.map term_to_string terms)

let pp ppf t = Format.pp_print_string ppf (to_string t)
