(** Gate-level simulation — the logic-gate level of §2.2.2.

    A specification is lowered to a boolean network: every combinational
    component becomes AND/OR/XOR/NOT gates over single-bit nets (ripple-carry
    adders and subtractors, XNOR-tree comparators, per-bit multiplexor
    trees), and every simple register becomes a bank of enabled D
    flip-flops.  Signal widths come from [Asim_analysis.Width].

    Following the thesis's own stance that a structural description "can
    describe hardware at the logic gate level, but generally only does so
    when necessary" (§2.2.3.1), constructs without a natural small gate
    realization stay behavioral {e macros}: multi-cell memories (RAM/ROM,
    including memory-mapped I/O), memories with multi-bit operation fields,
    ALUs with a computed function, multiplies and shifts.  The result is a
    mixed-level structural simulator, one abstraction step {e below} the RTL
    engines.

    Gate-level semantics are fixed-width and unsigned: a component's value
    is its net vector read as an unsigned integer, i.e. the RTL value masked
    to the inferred width.  Comparisons ([<]) are unsigned; designs relying
    on negative intermediate values belong to the macro fallbacks or the RTL
    level.  The test suite checks gate-level against RTL cycle-by-cycle on
    width-masked values. *)

type t

type stats = {
  gate_count : int;  (** two-input gates + inverters *)
  dff_count : int;  (** single-bit D flip-flops *)
  macro_count : int;  (** behavioral fallback blocks *)
}

val of_analysis : ?io:Asim_sim.Io.handler -> Asim_analysis.Analysis.t -> t
(** Lower and link the network.  Raises {!Asim_core.Error.Error} on specs the
    RTL engines would reject. *)

val step : t -> unit
(** One clock cycle: evaluate the combinational network in dependency order,
    then clock every flip-flop and macro. *)

val run : t -> cycles:int -> unit

val read : t -> string -> int
(** A component's current output as the unsigned value of its nets (for
    memories, the registered output). *)

val width : t -> string -> int
(** Nets allocated for the component. *)

val stats : t -> stats

val describe : t -> string
(** One line per component: its realization (gates / flip-flops / macro). *)
