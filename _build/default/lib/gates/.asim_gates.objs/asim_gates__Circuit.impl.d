lib/gates/circuit.ml: Array Asim_analysis Asim_core Asim_sim Bits Component Error Expr Hashtbl List Number Option Printf String
