lib/gates/circuit.mli: Asim_analysis Asim_sim
